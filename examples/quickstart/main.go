// Quickstart: build a small TPC-H database on the simulated server, run
// one query stream, and print a core-count sensitivity curve — the
// smallest end-to-end use of the library.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	opt := harness.DefaultOptions()
	opt.Density = 100            // generated lineitem rows per SF unit
	opt.Measure = 5 * sim.Second // simulated measurement window
	opt.Warmup = 1 * sim.Second
	opt.Streams = 2

	fmt.Println("TPC-H SF 10: throughput vs core allocation")
	curve := core.Curve{Name: "tpch-sf10"}
	for _, cores := range []int{2, 4, 8, 16, 32} {
		r := harness.RunTPCH(10, opt, harness.Knobs{Cores: cores})
		curve.Add(float64(cores), r.Throughput)
		fmt.Printf("  %2d cores: %6.2f queries/s  (MPKI %.2f, DRAM %.0f MB/s, SSD-R %.0f MB/s)\n",
			cores, r.Throughput, r.MPKI, r.DRAMMBps, r.SSDReadMBps)
	}

	if knee, ok := curve.Knee(); ok {
		fmt.Printf("\nknee of the curve at %d cores\n", int(knee.X))
	}
	if x90, ok := curve.SufficientCapacity(0.90); ok {
		fmt.Printf("90%% of peak throughput needs %d cores\n", int(x90))
	}
}
