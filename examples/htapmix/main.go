// Htapmix: run the hybrid workload and show the interplay between the
// transactional and analytical components plus the wait-statistics
// breakdown — the observability surface the paper reads from the DMVs.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload/htap"
)

func main() {
	d := htap.Build(htap.Config{Customers: 1000, ActualTradesPerCustomer: 4, Seed: 1})
	srv := engine.NewServer(engine.Config{Seed: 1})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()

	fmt.Printf("database: %.2f GB data, %.2f GB index (trade columnstore ratio %.2f)\n",
		float64(d.DB.DataBytes())/(1<<30), float64(d.DB.IndexBytes())/(1<<30),
		d.TradeCSI.Ix.AvgRatio())

	var st htap.Stats
	until := sim.Time(6 * sim.Second)
	htap.Run(srv, d, 99, until, &st)
	srv.Sim.Run(until)
	srv.Stop()
	srv.Sim.Run(until + sim.Time(600*sim.Second))

	secs := until.Seconds()
	fmt.Printf("\nOLTP component: %8.0f transactions/s (99 users)\n", float64(srv.Ctr.TxnCommits)/secs)
	fmt.Printf("DSS component:  %8.1f queries/h    (1 analytical user)\n", float64(srv.Ctr.QueriesDone)/secs*3600)
	fmt.Printf("columnstore delta: %d nominal trickle rows pending\n", d.TradeCSI.Ix.DeltaNominalRows())

	t := core.Table{Headers: []string{"wait type", "total ms", "share"}}
	var total float64
	for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
		total += float64(srv.Ctr.WaitNs[c])
	}
	for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
		ns := float64(srv.Ctr.WaitNs[c])
		if ns == 0 {
			continue
		}
		t.AddRow(c.String(), core.F(ns/1e6), fmt.Sprintf("%.1f%%", 100*ns/total))
	}
	fmt.Printf("\nwait statistics:\n%s", t.Render())
}
