// Maxdopadvisor: a per-query MAXDOP recommendation tool built on the
// paper's Figure 6 insight — parallelism sensitivity varies widely per
// query and per scale factor, and past a point more DOP wastes workers
// that could serve other queries.
//
// For each TPC-H query it measures elapsed time across MAXDOP settings
// and recommends the smallest DOP within 10% of the best time.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workload/tpch"
)

func main() {
	opt := harness.DefaultOptions()
	opt.Density = 100
	sf := 100

	fmt.Printf("measuring TPC-H SF %d across MAXDOP settings...\n", sf)
	res := harness.Fig6(sf, opt, []int{1, 4, 8, 16, 32})

	t := core.Table{Headers: []string{"query", "best dop", "recommended", "t(rec)/t(best)", "t(1)/t(best)"}}
	savedWorkers := 0
	for q := 1; q <= tpch.NumQueries; q++ {
		times := res.Elapsed[q]
		best, bestDop := sim.Duration(1<<62), 0
		for dop, el := range times {
			if el > 0 && el < best {
				best, bestDop = el, dop
			}
		}
		rec := bestDop
		for _, dop := range []int{1, 4, 8, 16, 32} {
			if el := times[dop]; el > 0 && float64(el) <= 1.1*float64(best) {
				rec = dop
				break
			}
		}
		t.AddRow(fmt.Sprintf("Q%d", q), fmt.Sprint(bestDop), fmt.Sprint(rec),
			core.F(float64(times[rec])/float64(best)),
			core.F(float64(times[1])/float64(best)))
		savedWorkers += bestDop - rec
	}
	fmt.Print(t.Render())
	fmt.Printf("\nworkers freed by right-sizing instead of max-DOP: %d across the query set\n", savedWorkers)
}
