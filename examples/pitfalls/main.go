// Pitfalls: demonstrations of the paper's Section 9 antipatterns on the
// simulated server.
//
//  1. Pitfall 2 — running analytical queries against a row-store layout:
//     the same TPC-H query template executes against the columnstore
//     (the correct DW configuration) and against the row image, showing
//     the batch-mode + compression gap.
//  2. Pitfall 1 — judging a design from a single scale factor: the same
//     query's parallelism sensitivity at SF 10 versus SF 300.
package main

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/workload/tpch"
)

func main() {
	fmt.Println("pitfall 2: analytical scan on row store vs columnstore")
	d := tpch.Build(tpch.Config{SF: 30, ActualLineitemPerSF: 150, Seed: 1})
	srv := engine.NewServer(engine.Config{Seed: 1})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()

	// A Q6-shaped aggregate authored twice: once letting the optimizer
	// use the columnstore, once forcing the row image.
	sd := d.L.Schema.Col("l_shipdate")
	mk := func(useCSI bool) *opt.LNode {
		scan := &opt.LNode{
			Kind: opt.LScan,
			Heap: access.Heap{T: d.L},
			Proj: []int{d.L.Schema.Col("l_extendedprice"), d.L.Schema.Col("l_discount")},
			Pred: func(r exec.Row) bool {
				return r[sd] >= tpch.Date(1994, 1, 1) && r[sd] < tpch.Date(1995, 1, 1)
			},
			NPred: 1, PredCols: []int{sd}, Sel: 365.0 / float64(tpch.DateHi),
			Name: "lineitem",
		}
		if useCSI {
			scan.CSI = d.DB.CSIOf(d.L)
		}
		return &opt.LNode{
			Kind: opt.LAgg, Left: scan,
			Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 0}, {Kind: exec.AggCount}},
			NGroups: 1, Name: "sum",
		}
	}
	var tCol, tRow sim.Duration
	srv.Sim.Spawn("q", func(p *sim.Proc) {
		sess := srv.Open(p)
		defer sess.Close()
		tCol = sess.Query(mk(true), engine.QueryOptions{}).Elapsed
		tRow = sess.Query(mk(false), engine.QueryOptions{}).Elapsed
	})
	srv.Sim.Run(srv.Sim.Now() + sim.Time(3600*sim.Second))
	fmt.Printf("  columnstore scan: %8.3f s\n", tCol.Seconds())
	fmt.Printf("  row-store scan:   %8.3f s  (%.1fx slower)\n",
		tRow.Seconds(), float64(tRow)/float64(tCol))
	srv.Stop()

	fmt.Println("\npitfall 1: single-scale-factor conclusions (Q6 DOP sensitivity)")
	for _, sf := range []int{10, 300} {
		d := tpch.Build(tpch.Config{SF: sf, ActualLineitemPerSF: 100, Seed: 1})
		s2 := engine.NewServer(engine.Config{Seed: 1})
		s2.AttachDB(d.DB)
		s2.WarmBufferPool()
		s2.Start()
		g := sim.NewRNG(1)
		t1 := tpch.QueryTiming(s2, d, 6, 1, 0, g)
		g2 := sim.NewRNG(1)
		t32 := tpch.QueryTiming(s2, d, 6, 32, 0, g2)
		fmt.Printf("  SF %-4d Q6: dop1 %8.3fs  dop32 %8.3fs  speedup %.1fx\n",
			sf, t1.Seconds(), t32.Seconds(), float64(t1)/float64(t32))
		s2.Stop()
	}
	fmt.Println("  a conclusion drawn at SF 10 alone would call Q6 parallelism-insensitive")
	fmt.Println("  (the optimizer keeps it serial there); at SF 300 it is anything but.")
}
