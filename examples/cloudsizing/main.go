// Cloudsizing: pick the cheapest I/O-bandwidth SLO that meets a QPS
// target — the paper's Figure 5 use case, including the pitfall of
// assuming a linear bandwidth-to-performance response.
//
// A DBaaS provider prices service tiers by provisioned read bandwidth.
// Because the QPS response curve is concave, a linear model derived from
// the top tier over-provisions; this example quantifies the gap.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	opt := harness.DefaultOptions()
	opt.Density = 80
	opt.Measure = 5 * sim.Second
	opt.Warmup = 1 * sim.Second
	opt.MinQueries = 6

	tiers := []float64{100, 400, 800, 1600, 2500}
	fmt.Println("measuring TPC-H SF 300 under read-bandwidth tiers...")
	curve := harness.Fig5(opt, tiers)
	lin := curve.LinearReference()

	t := core.Table{Headers: []string{"tier MB/s", "measured QPS", "linear-model QPS"}}
	for i, p := range curve.Points {
		t.AddRow(core.F(p.X), core.F(p.Y), core.F(lin.Points[i].Y))
	}
	fmt.Print(t.Render())

	for _, frac := range []float64{0.5, 0.8, 0.9} {
		target := curve.Last().Y * frac
		actual, linear, ok := curve.AllocationForTarget(target)
		if !ok {
			continue
		}
		fmt.Printf("target %.0f%% of peak QPS: buy the %4.0f MB/s tier; a linear model buys %4.0f MB/s (%+.0f%%)\n",
			frac*100, actual, linear, 100*(linear/actual-1))
	}
}
