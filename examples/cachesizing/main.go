// Cachesizing: a sufficient-LLC-capacity advisor across a workload mix —
// the paper's Table 4 use case. A server consolidating transactional and
// analytical tenants partitions its LLC with CAT; this example measures
// each tenant's sensitivity curve and reports the smallest allocation
// keeping each at >= 90% / 95% of full-cache performance, plus the
// leftover capacity the operator can repurpose.
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	opt := harness.DefaultOptions()
	opt.Density = 60
	opt.Measure = 2 * sim.Second
	opt.Warmup = 1 * sim.Second
	opt.Users = 32

	steps := []int{2, 8, 16, 40}
	tenants := []struct {
		w  harness.Workload
		sf int
	}{
		{harness.WAsdb, 2000},
		{harness.WTpce, 5000},
		{harness.WTpch, 100},
	}

	var results []harness.Fig2LLCResult
	totalNeed90 := 0.0
	for _, tn := range tenants {
		fmt.Printf("sweeping LLC for %s SF %d...\n", tn.w, tn.sf)
		res := harness.Fig2LLC(tn.w, []int{tn.sf}, steps, opt)
		results = append(results, res)
		c := res.PerfBySF[tn.sf]
		x90, _ := c.SufficientCapacity(0.90)
		totalNeed90 += x90
	}

	tb := harness.Table4(results)
	fmt.Printf("\n%s\n", tb.Render())
	fmt.Printf("sum of 90%% allocations: %.0f MB of 40 MB", totalNeed90)
	if totalNeed90 < 40 {
		fmt.Printf(" -> %.0f MB reclaimable for other uses (the paper's Section 10 question)\n", 40-totalNeed90)
	} else {
		fmt.Println(" -> consolidation would degrade at least one tenant")
	}
}
