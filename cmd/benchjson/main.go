// Command benchjson converts `go test -bench` output into a committed
// BENCH_<commit>.json snapshot and gates CI on regressions against the
// previous snapshot. The committed files form a performance trajectory:
// one point per merged change, diffable in-repo.
//
// Usage:
//
//	go test -bench . -benchmem ./... | tee bench.txt
//	go run ./cmd/benchjson -in bench.txt -dir . -commit $(git rev-parse --short HEAD) -write -check
//
// Gating rules (per metric, comparing against the newest previous
// BENCH_*.json in -dir):
//
//   - metrics whose name contains "wall" are never gated (wall-clock
//     noise from shared CI runners);
//   - ns/op, B/op and allocs/op are machine-sensitive and only gated
//     when -wall is passed;
//   - a metric is higher-better when its name contains "speedup" or
//     "gain" or ends in "_x", lower-better when it contains "sim_ms" or
//     "mpki"; everything else defaults to lower-better;
//   - a relative regression beyond -threshold (default 10%) fails.
//
// The first run (no previous snapshot) just seeds the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// snapshot is the on-disk BENCH_<commit>.json schema.
type snapshot struct {
	Schema     string                        `json:"schema"`
	Commit     string                        `json:"commit"`
	Seq        int64                         `json:"seq"`
	Go         string                        `json:"go"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBench extracts benchmark metrics from `go test -bench` output.
func parseBench(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		// Strip the -GOMAXPROCS suffix so snapshots compare across runners.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		fields := strings.Fields(m[3])
		metrics := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			out[name] = metrics
		}
	}
	return out, sc.Err()
}

// benchSchema is the snapshot schema this build reads and writes.
// previous() rejects a directory holding mixed schema values: comparing
// metrics recorded under different schemas gates on garbage.
const benchSchema = "dbsense-bench/v1"

// previous returns the newest committed snapshot in dir, or nil.
func previous(dir string) (*snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var newest *snapshot
	newestPath := ""
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var s snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if newest != nil && s.Schema != newest.Schema {
			return nil, fmt.Errorf("mixed snapshot schemas: %s has %q, %s has %q — prune one generation before comparing",
				p, s.Schema, newestPath, newest.Schema)
		}
		if newest == nil || s.Seq > newest.Seq {
			newest = &s
			newestPath = p
		}
	}
	if newest != nil && newest.Schema != benchSchema {
		return nil, fmt.Errorf("%s: snapshot schema %q does not match this build's %q",
			newestPath, newest.Schema, benchSchema)
	}
	return newest, nil
}

func higherBetter(metric string) bool {
	return strings.Contains(metric, "speedup") || strings.Contains(metric, "gain") ||
		strings.HasSuffix(metric, "_x")
}

func gated(metric string, wall bool) bool {
	if strings.Contains(metric, "wall") {
		return false
	}
	switch metric {
	case "ns/op", "B/op", "allocs/op", "MB/s":
		return wall
	}
	return true
}

func main() {
	in := flag.String("in", "bench.txt", "go test -bench output to parse")
	dir := flag.String("dir", ".", "directory holding BENCH_*.json snapshots")
	commit := flag.String("commit", "dev", "short commit hash for the snapshot name")
	write := flag.Bool("write", false, "write BENCH_<commit>.json")
	check := flag.Bool("check", false, "fail on regression vs the previous snapshot")
	threshold := flag.Float64("threshold", 0.10, "relative regression that fails the check")
	wall := flag.Bool("wall", false, "also gate machine-sensitive metrics (ns/op, B/op, allocs/op)")
	flag.Parse()

	benches, err := parseBench(*in)
	if err != nil {
		fatal("parse %s: %v", *in, err)
	}
	if len(benches) == 0 {
		fatal("no benchmark lines found in %s", *in)
	}

	prev, err := previous(*dir)
	if err != nil {
		fatal("scan %s: %v", *dir, err)
	}

	cur := &snapshot{
		Schema:     benchSchema,
		Commit:     *commit,
		Go:         runtime.Version(),
		Benchmarks: benches,
	}
	if prev != nil {
		cur.Seq = prev.Seq + 1
	}

	failed := false
	if *check && prev != nil {
		var names []string
		for n := range benches {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			base, ok := prev.Benchmarks[name]
			if !ok {
				fmt.Printf("new benchmark %s (no baseline)\n", name)
				continue
			}
			var metrics []string
			for m := range benches[name] {
				metrics = append(metrics, m)
			}
			sort.Strings(metrics)
			for _, m := range metrics {
				now := benches[name][m]
				was, ok := base[m]
				if !ok || !gated(m, *wall) || was == 0 {
					continue
				}
				delta := (now - was) / was
				worse := delta > *threshold
				if higherBetter(m) {
					worse = delta < -*threshold
				}
				status := "ok"
				if worse {
					status = "REGRESSION"
					failed = true
				}
				fmt.Printf("%-40s %-18s %12.4g -> %12.4g  (%+.1f%%)  %s\n",
					name, m, was, now, 100*delta, status)
			}
		}
	} else if *check {
		fmt.Println("no previous BENCH_*.json snapshot; seeding baseline")
	}

	if *write {
		b, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		out := filepath.Join(*dir, fmt.Sprintf("BENCH_%s.json", *commit))
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
		fmt.Printf("wrote %s (seq %d, %d benchmarks)\n", out, cur.Seq, len(benches))
	}
	if failed {
		fatal("benchmark regression beyond %.0f%% threshold", 100**threshold)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
