package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// seriesRec is the subset of the harness emitter's JSONL record schema
// the series renderer reads.
type seriesRec struct {
	Record        string  `json:"record"`
	Experiment    string  `json:"experiment"`
	Metric        string  `json:"metric"`
	Knob          string  `json:"knob"`
	X             float64 `json:"x"`
	Value         float64 `json:"value"`
	Unit          string  `json:"unit"`
	SchemaVersion int     `json:"schema_version"`
}

// sparkRunes is the eight-level sparkline alphabet.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled min..max into an eight-level bar string,
// resampled to at most width cells.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	n := len(vals)
	if n > width {
		n = width
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		// Average the bucket of samples this cell covers.
		from, to := i*len(vals)/n, (i+1)*len(vals)/n
		if to <= from {
			to = from + 1
		}
		sum := 0.0
		for _, v := range vals[from:to] {
			sum += v
		}
		v := sum / float64(to-from)
		lvl := 0
		if hi > lo {
			lvl = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[lvl])
	}
	return b.String()
}

// renderSeries reads an emitter JSONL file and prints one aligned
// summary row (n, min, mean, max, p99, sparkline) per telemetry series,
// grouped by experiment cell. Mixed schema_version streams are rejected:
// aggregating across schema generations silently misreads fields.
func renderSeries(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)

	type key struct{ cell, metric, unit string }
	var order []key
	groups := make(map[key][]float64)
	versions := make(map[int]bool)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec seriesRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("simstat: bad record: %v", err)
		}
		versions[rec.SchemaVersion] = true
		if len(versions) > 1 {
			var vs []string
			for v := range versions {
				if v == 0 {
					vs = append(vs, "pre-versioned")
				} else {
					vs = append(vs, fmt.Sprint(v))
				}
			}
			sort.Strings(vs)
			return fmt.Errorf("simstat: mixed schema_version values in input (%s): re-emit with one dbsense build",
				strings.Join(vs, " and "))
		}
		if rec.Record != "series" {
			continue
		}
		cell := rec.Experiment
		if rec.Knob != "" {
			cell += "/" + rec.Knob
		}
		k := key{cell: cell, metric: rec.Metric, unit: rec.Unit}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rec.Value)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("simstat: %v", err)
	}
	if len(order) == 0 {
		return fmt.Errorf("simstat: no series records in input (emit with dbsense -emit json)")
	}

	lastCell := ""
	for _, k := range order {
		if k.cell != lastCell {
			fmt.Fprintf(w, "== %s ==\n", k.cell)
			fmt.Fprintf(w, "%-28s %-6s %5s %12s %12s %12s %12s  %s\n",
				"series", "unit", "n", "min", "mean", "max", "p99", "trend")
			lastCell = k.cell
		}
		vals := groups[k]
		lo, hi, sum := vals[0], vals[0], 0.0
		for _, v := range vals {
			lo, hi, sum = math.Min(lo, v), math.Max(hi, v), sum+v
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		fmt.Fprintf(w, "%-28s %-6s %5d %12.4g %12.4g %12.4g %12.4g  %s\n",
			k.metric, k.unit, len(vals), lo, sum/float64(len(vals)), hi,
			telemetry.PercentileSorted(sorted, 99), sparkline(vals, 32))
	}
	return nil
}

// runSeries opens the -series file and renders it to stdout.
func runSeries(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := renderSeries(f, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
