// Command simstat validates the machine model with microbenchmarks:
// single-thread speed, SMT interference, turbo droop, LLC miss knees
// under CAT masks, and device bandwidth under throttles. Use it to sanity-
// check model changes before re-running workload experiments.
//
// With -series FILE it instead renders the telemetry time series from a
// dbsense -emit json run as aligned summary tables (n/min/mean/max/p99
// plus a sparkline per series), refusing mixed-schema-version inputs.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
)

var seriesIn = flag.String("series", "", "render telemetry series from an emitter JSONL file and exit")

func main() {
	flag.Parse()
	if *seriesIn != "" {
		runSeries(*seriesIn)
		return
	}
	fmt.Println("machine:", hw.PaperSpec().LogicalCores(), "logical cores")

	// CPU: single-thread and SMT pair.
	one := cpuRun([]int{0}, 0)
	pair := cpuRun([]int{0, 16}, 0)
	pairStall := cpuRun([]int{0, 16}, 0.7e9)
	fmt.Printf("1 thread x 1G instr:            %.3fs\n", one)
	fmt.Printf("SMT pair, compute-bound:        %.3fs (%.2fx single)\n", pair, pair/one)
	fmt.Printf("SMT pair, stall-heavy:          %.3fs\n", pairStall)
	eight := cpuRun([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	fmt.Printf("8 cores on socket 0 (turbo off): %.3fs (%.2fx single)\n", eight, eight/one)

	// LLC: miss ratio vs CAT allocation for a 12 MB working set.
	t := core.Table{Headers: []string{"CAT MB", "miss ratio (12MB WS)"}}
	for _, mb := range []int{2, 4, 8, 12, 16, 24, 40} {
		t.AddRow(fmt.Sprint(mb), core.F(llcMissRatio(mb)))
	}
	fmt.Printf("\n%s", t.Render())

	// SSD: throughput under throttles.
	t2 := core.Table{Headers: []string{"read limit MB/s", "achieved MB/s"}}
	for _, lim := range []float64{0, 2000, 1000, 500, 100} {
		t2.AddRow(core.F(lim), core.F(ssdThroughput(lim)))
	}
	fmt.Printf("\n%s", t2.Render())
}

func cpuRun(cores []int, stallNs float64) float64 {
	s := sim.New(1)
	m := hw.New(s, hw.PaperSpec(), &metrics.Counters{})
	var last sim.Time
	for _, c := range cores {
		c := c
		s.Spawn("w", func(p *sim.Proc) {
			m.Exec(p, c, 1_000_000_000, stallNs)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	s.Run(sim.Time(100 * sim.Second))
	return last.Seconds()
}

func llcMissRatio(mb int) float64 {
	s := sim.New(1)
	m := hw.New(s, hw.PaperSpec(), &metrics.Counters{})
	m.SetCATMask(m.CATMaskForMB(mb))
	base := m.ReserveRegion(1 << 30)
	llc := m.LLC(0)
	var ratio float64
	s.Spawn("w", func(p *sim.Proc) {
		const ws = 12 << 20
		m.TouchSeq(0, base, ws, false, 8) // warm
		llc.ResetStats()
		for i := 0; i < 4; i++ {
			m.TouchSeq(0, base, ws, false, 8)
		}
		ratio = llc.Stats().MissRatio()
	})
	s.Run(sim.Time(10 * sim.Second))
	return ratio
}

func ssdThroughput(limitMBps float64) float64 {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	d := iodev.New(iodev.PaperSSD(), ctr)
	if limitMBps > 0 {
		d.SetThrottles(iodev.NewThrottle(limitMBps), nil)
	}
	var end sim.Time
	s.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			d.Read(p, 10<<20)
		}
		end = p.Now()
	})
	s.Run(sim.Time(1000 * sim.Second))
	if end == 0 {
		return 0
	}
	return float64(ctr.SSDReadBytes) / 1e6 / end.Seconds()
}
