// Command dbsense runs the paper's experiments by id and prints
// paper-style tables.
//
// Usage:
//
//	dbsense run <experiment> [flags]   run one experiment (or "all")
//	dbsense serve [flags]              one serving cell at -rate conn/s
//	dbsense list                       list experiments
//	dbsense [flags] <experiment>       deprecated flat form of "run"
//
// The flat form keeps working for existing scripts (a deprecation note
// goes to stderr); flags are accepted before or after the experiment
// name in either form.
//
// Experiments: table2, fig2cores, fig2llc, table3, table4, fig3, fig4,
// fig5, fig5write, fig6, fig7, fig8, trace, qstats, serving,
// replication, chaos, all.
// With -faults, the resilience experiment sweeps a fault-intensity axis
// and reports throughput retention, the recovery experiment crashes the
// engine at seeded points, restarts it ARIES-style, and reports MTTR
// versus checkpoint interval and storage bandwidth plus a verified crash
// matrix, and the failover experiment crashes a replicated primary,
// promotes the most caught-up standby, and verifies a point-in-time
// restore from the WAL archive, and the chaos experiment runs the
// seeded matrix of net-fault schedules x primary crashes x arrival
// storms against a quorum-replicated cluster behind resilient clients,
// auditing that every acknowledged commit survives (see EXPERIMENTS.md,
// "Resilience experiments", "Crash recovery", "Replication & failover",
// and "Chaos & client resilience").
//
// Unknown experiment names and unknown -emit / -workload values are
// usage errors, rejected before any side effect (no output file is
// created, no sweep starts).
//
// With -emit json|csv, every result is also written as structured
// records (JSONL or fixed-column CSV) to the -o path, byte-identical
// across runs at the same seed and flags (see EXPERIMENTS.md,
// "Structured output").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload/tpch"
)

var (
	density  = flag.Int("density", 200, "scale-down density (generated rows per paper scale unit)")
	measure  = flag.Float64("measure", 8, "measurement window in simulated seconds")
	warmup   = flag.Float64("warmup", 2, "warmup in simulated seconds")
	seed     = flag.Int64("seed", 1, "simulation seed")
	workload = flag.String("workload", "", "restrict fig2*/fig4 to one workload (tpch|tpce|asdb|htap)")
	quick    = flag.Bool("quick", false, "reduced sweeps and scale factors for a fast pass")
	parallel = flag.Int("parallel", runtime.NumCPU(), "worker threads for experiment sweeps (results are identical at any setting)")
	progress = flag.Bool("progress", true, "report per-point sweep progress on stderr")
	faults   = flag.Bool("faults", false, "enable the resilience experiment (deterministic fault injection)")
	emitFmt  = flag.String("emit", "", "also write structured records: json (JSONL) or csv")
	emitOut  = flag.String("o", "", "structured-output path (default dbsense-out.jsonl or .csv)")
	traceQ   = flag.Int("trace", 14, "TPC-H query number for the trace experiment")
	rowExec  = flag.Bool("rowexec", false, "force row-at-a-time execution (default: vectorized batches)")

	servRate  = flag.Float64("rate", 16, "serve/chaos: mean connection arrivals per second")
	servStorm = flag.Bool("storm", false, "serve: drive a 6x arrival burst through the middle of the window")

	chaosSched = flag.String("schedule", "", "chaos: restrict the matrix to cells using one named fault schedule")

	metricsOut = flag.String("metrics-out", "", "write end-of-run telemetry as Prometheus text exposition to this file")
	profileDir = flag.String("profile", "", "write simulator self-profiles (pprof CPU/heap + per-subsystem overhead report) to this directory")
)

// em is the structured-record emitter (nil when -emit is unset; all
// harness.Emit* helpers no-op on nil).
var em *harness.Emitter

// promSnap is one telemetry snapshot queued for -metrics-out exposition,
// labelled with its experiment cell.
type promSnap struct {
	labels [][2]string
	snap   *telemetry.Snapshot
}

var promSnaps []promSnap

// recordProm queues a snapshot for the Prometheus exposition file (no-op
// without -metrics-out or for cells that carried no telemetry).
func recordProm(snap *telemetry.Snapshot, labels ...[2]string) {
	if *metricsOut == "" || snap == nil {
		return
	}
	promSnaps = append(promSnaps, promSnap{labels: labels, snap: snap})
}

// writeMetricsOut writes every queued snapshot as Prometheus text
// exposition, one block per experiment cell distinguished by labels.
func writeMetricsOut() {
	if *metricsOut == "" {
		return
	}
	f, err := os.Create(*metricsOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, ps := range promSnaps {
		if err := ps.snap.WriteProm(f, ps.labels...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "telemetry exposition written to %s\n", *metricsOut)
}

// cpuProfile is the open CPU-profile file between start and finish.
var cpuProfile *os.File

// startProfile arms simulator self-profiling and begins the host CPU
// profile. Runs before any experiment so the whole run is covered.
func startProfile() {
	if *profileDir == "" {
		return
	}
	if err := os.MkdirAll(*profileDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(filepath.Join(*profileDir, "cpu.pprof"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cpuProfile = f
	sim.EnableProfiling()
}

// finishProfile stops the CPU profile, writes the heap profile, and
// renders the per-subsystem wall-ms-per-sim-ms overhead report to stdout
// and DIR/overhead.txt.
func finishProfile() {
	if *profileDir == "" {
		return
	}
	pprof.StopCPUProfile()
	if err := cpuProfile.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hf, err := os.Create(filepath.Join(*profileDir, "heap.pprof"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(hf); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := hf.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	report := sim.ProfReport() +
		fmt.Sprintf("host allocations: %d objects, %.1f MB cumulative\n",
			ms.Mallocs, float64(ms.TotalAlloc)/1e6)
	if err := os.WriteFile(filepath.Join(*profileDir, "overhead.txt"), []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(report)
}

func opts() harness.Options {
	o := harness.DefaultOptions()
	o.Density = *density
	o.Measure = sim.DurationOf(*measure)
	o.Warmup = sim.DurationOf(*warmup)
	o.Seed = *seed
	o.Parallel = *parallel
	o.RowExec = *rowExec
	// Structured output and Prometheus exposition both consume telemetry
	// series, so either flag arms the registry; plain table runs stay
	// bit-identical to a telemetry-free build.
	o.Telemetry = *emitFmt != "" || *metricsOut != ""
	if *progress {
		o.Progress = printProgress
	}
	if *quick {
		o.Density = 120
		o.Measure = sim.DurationOf(2)
		o.Warmup = sim.DurationOf(1)
		o.Users = 32
	}
	return o
}

// printProgress overwrites one stderr status line per sweep as points
// complete, finishing the line when the sweep does.
func printProgress(done, total int, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr, "\r  sweep %d/%d points · %.1fs", done, total, elapsed.Seconds())
	if done == total {
		fmt.Fprintln(os.Stderr)
	}
}

func workloads() []harness.Workload {
	if *workload != "" {
		return []harness.Workload{harness.Workload(*workload)}
	}
	return []harness.Workload{harness.WAsdb, harness.WTpce, harness.WHtap, harness.WTpch}
}

func sfsFor(w harness.Workload) []int {
	return harness.PaperSFs(w)
}

// experiments is the canonical list of experiment names, in "all" order
// where applicable. The fault-gated ones (resilience, recovery,
// failover) and the replication sweep are not part of "all".
var experiments = []string{
	"table2", "fig2cores", "fig2llc", "table3", "table4", "fig3", "fig4",
	"fig5", "fig5write", "fig6", "fig7", "fig8", "trace", "qstats",
	"serving", "replication", "resilience", "recovery", "failover", "chaos", "all",
}

// expDesc gives each experiment a one-liner for `dbsense list`.
var expDesc = map[string]string{
	"table2":      "peak throughput per workload at paper scale",
	"fig2cores":   "throughput vs logical cores, per workload and SF",
	"fig2llc":     "throughput and MPKI vs LLC size (also derives Table 4)",
	"table3":      "wait-type ratios across scale factors",
	"table4":      "cache sensitivity classes (fig2llc's sweep, table only)",
	"fig3":        "resource-demand trends along core and cache sweeps",
	"fig4":        "bandwidth-demand distributions (SSD read/write, DRAM)",
	"fig5":        "TPC-H QPS vs SSD read limit, against a linear model",
	"fig5write":   "ASDB TPS vs SSD write limit",
	"fig6":        "TPC-H per-query speedup vs MAXDOP",
	"fig7":        "Q20 plan shapes at MAXDOP 1 vs 32",
	"fig8":        "TPC-H speedup vs memory-grant fraction",
	"trace":       "execution trace tree for one TPC-H query",
	"qstats":      "per-statement execution statistics, per workload",
	"serving":     "open-loop network serving sweep: latency/goodput/shed vs offered load",
	"replication": "WAL log-shipping throughput and commit-ack latency (-faults not required)",
	"resilience":  "throughput retention under fault injection (requires -faults)",
	"recovery":    "ARIES restart MTTR and crash matrix (requires -faults)",
	"failover":    "replica promotion RTO and PITR (requires -faults)",
	"chaos":       "acked-commit safety under net faults, crashes, and failover (requires -faults)",
	"all":         "every non-fault experiment in sequence",
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

func printList() {
	for _, e := range experiments {
		fmt.Printf("  %-11s %s\n", e, expDesc[e])
	}
}

func usage() {
	list := ""
	for i, e := range experiments {
		if i > 0 {
			list += "|"
		}
		list += e
	}
	fmt.Fprintf(os.Stderr, `usage:
  dbsense run <experiment> [flags]   run one experiment
  dbsense serve [flags]              one serving cell at -rate conn/s
  dbsense list                       list experiments
  dbsense [flags] <experiment>       deprecated flat form of "run"
experiments: %s
`, list)
	os.Exit(2)
}

// parseFlags parses a subcommand's arguments, accepting flags both
// before and after positional arguments (the standard flag package
// stops at the first positional), and returns the positionals in
// order.
func parseFlags(args []string) []string {
	var pos []string
	flag.CommandLine.Parse(args)
	rest := flag.Args()
	for len(rest) > 0 {
		pos = append(pos, rest[0])
		flag.CommandLine.Parse(rest[1:])
		rest = flag.Args()
	}
	return pos
}

func main() {
	args := os.Args[1:]
	mode, rest := "legacy", args
	if len(args) > 0 {
		switch args[0] {
		case "run", "serve", "list":
			mode, rest = args[0], args[1:]
		}
	}
	pos := parseFlags(rest)
	var exp string
	switch mode {
	case "list":
		if len(pos) != 0 {
			usage()
		}
		printList()
		return
	case "serve":
		if len(pos) != 0 {
			usage()
		}
	default: // "run" and the legacy flat form
		if len(pos) != 1 {
			usage()
		}
		exp = pos[0]
		if mode == "legacy" {
			fmt.Fprintf(os.Stderr, "note: flat `dbsense [flags] <experiment>` is deprecated; use `dbsense run %s [flags]`\n", exp)
		}
	}
	// Validate everything before any side effect: an unknown experiment
	// or -emit/-workload value must not create the output file or start
	// the default sweep.
	if mode != "serve" && !knownExperiment(exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		usage()
	}
	if *emitFmt != "" && *emitFmt != "json" && *emitFmt != "csv" {
		fmt.Fprintf(os.Stderr, "unknown -emit format %q (want json or csv)\n", *emitFmt)
		os.Exit(2)
	}
	switch *workload {
	case "", "tpch", "tpce", "asdb", "htap":
	default:
		fmt.Fprintf(os.Stderr, "unknown -workload %q (want tpch, tpce, asdb, or htap)\n", *workload)
		os.Exit(2)
	}
	if (exp == "resilience" || exp == "recovery" || exp == "failover" || exp == "chaos") && !*faults {
		fmt.Fprintf(os.Stderr, "the %s experiment requires -faults\n", exp)
		os.Exit(2)
	}
	if *chaosSched != "" {
		ok := false
		for _, n := range fault.ScheduleNames() {
			if n == *chaosSched {
				ok = true
				break
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -schedule %q (want one of %v)\n", *chaosSched, fault.ScheduleNames())
			os.Exit(2)
		}
	}
	if *emitFmt != "" {
		path := *emitOut
		if path == "" {
			ext := "jsonl"
			if *emitFmt == "csv" {
				ext = "csv"
			}
			path = "dbsense-out." + ext
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		em, err = harness.NewEmitter(f, *emitFmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			if err := em.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "structured records written to %s\n", path)
		}()
	}
	startProfile()
	switch {
	case mode == "serve":
		runServe()
	case exp == "all":
		// table4 derives from fig2llc's sweep, which run("fig2llc")
		// prints alongside the curves, so it is not repeated here.
		for _, e := range []string{"table2", "fig2cores", "fig2llc", "table3", "fig3", "fig4", "fig5", "fig5write", "fig6", "fig7", "fig8", "trace", "qstats"} {
			run(e)
		}
	default:
		run(exp)
	}
	finishProfile()
	writeMetricsOut()
}

func run(exp string) {
	o := opts()
	fmt.Printf("== %s (density=%d, measure=%.0fs) ==\n", exp, o.Density, o.Measure.Seconds())
	switch exp {
	case "table2":
		tb := harness.Table2(o)
		fmt.Print(tb.Render())
		harness.EmitTable(em, "table2", "table2", tb)
	case "fig2cores":
		for _, w := range workloads() {
			res := harness.Fig2Cores(w, sfsFor(w), coreSteps(), o)
			printCurves(fmt.Sprintf("Fig2 cores: %s (throughput vs logical cores)", w), res.PerfBySF, "cores")
			harness.EmitFamily(em, "fig2cores", string(w), "throughput", "cores", "per_sec", harness.CurveFamily(res.PerfBySF))
		}
	case "fig2llc":
		var all []harness.Fig2LLCResult
		for _, w := range workloads() {
			res := harness.Fig2LLC(w, sfsFor(w), llcSteps(), o)
			all = append(all, res)
			printCurves(fmt.Sprintf("Fig2 LLC: %s (throughput vs MB)", w), res.PerfBySF, "MB")
			printCurves(fmt.Sprintf("Fig2 MPKI: %s (MPKI vs MB)", w), res.MPKIBySF, "MB")
			harness.EmitFamily(em, "fig2llc", string(w), "throughput", "llc_mb", "per_sec", harness.CurveFamily(res.PerfBySF))
			harness.EmitFamily(em, "fig2llc", string(w), "mpki", "llc_mb", "mpki", harness.CurveFamily(res.MPKIBySF))
		}
		t4 := harness.Table4(all)
		fmt.Printf("-- Table 4 (derived from the same sweep) --\n%s", t4.Render())
		harness.EmitTable(em, "fig2llc", "table4", t4)
	case "table4":
		var all []harness.Fig2LLCResult
		for _, w := range workloads() {
			all = append(all, harness.Fig2LLC(w, sfsFor(w), llcSteps(), o))
		}
		tb := harness.Table4(all)
		fmt.Print(tb.Render())
		harness.EmitTable(em, "table4", "table4", tb)
	case "table3":
		small, large := 5000, 15000
		if *quick {
			small, large = 2000, 6000
		}
		res := harness.Table3(small, large, o)
		t := core.Table{Headers: []string{"Wait Type", fmt.Sprintf("SF%d/SF%d ratio", large, small)}}
		for _, r := range res.Ratios {
			t.AddRow(r.Label, core.F(r.Value()))
		}
		t.AddRow(res.SumLockLatchPage.Label, core.F(res.SumLockLatchPage.Value()))
		fmt.Print(t.Render())
		harness.EmitTable(em, "table3", "table3", t)
	case "fig3":
		for _, pair := range []struct {
			w  harness.Workload
			sf int
		}{{harness.WTpch, 100}, {harness.WAsdb, 2000}} {
			res := harness.Fig3(pair.w, pair.sf, o)
			t := core.Table{Headers: []string{"trend", "knob", "throughput", "SSD-R MB/s", "SSD-W MB/s", "DRAM MB/s"}}
			for _, p := range res.CoreDriven {
				t.AddRow("cores", core.F(p.Knob), core.F(p.Throughput), core.F(p.SSDReadMBps), core.F(p.SSDWriteMBps), core.F(p.DRAMMBps))
			}
			for _, p := range res.CacheDriven {
				t.AddRow("LLC-MB", core.F(p.Knob), core.F(p.Throughput), core.F(p.SSDReadMBps), core.F(p.SSDWriteMBps), core.F(p.DRAMMBps))
			}
			fmt.Printf("-- %s SF %d --\n%s", pair.w, pair.sf, t.Render())
			harness.EmitTable(em, "fig3", fmt.Sprintf("%s-sf%d", pair.w, pair.sf), t)
		}
	case "fig4":
		t := core.Table{Headers: []string{"workload", "SF", "metric", "p10", "p50", "p90", "p99", "mean"}}
		ws := workloads()
		results := harness.Sweep(o.Parallel, len(ws), func(i int) harness.Fig4Result {
			sfs := harness.PaperSFs(ws[i])
			return harness.Fig4(ws[i], sfs[len(sfs)-1], o)
		}, o.Progress)
		for i, w := range ws {
			res := results[i]
			sf := res.SF
			for _, row := range []struct {
				name string
				d    metrics.Distribution
			}{{"SSD-read", res.SSDRead}, {"SSD-write", res.SSDWrite}, {"DRAM", res.DRAM}} {
				t.AddRow(string(w), fmt.Sprint(sf), row.name,
					core.F(row.d.Percentile(10)), core.F(row.d.Percentile(50)),
					core.F(row.d.Percentile(90)), core.F(row.d.Percentile(99)), core.F(row.d.Mean()))
			}
			harness.EmitDistribution(em, "fig4", string(w), sf, "ssd_read_mbps", "MB/s", res.SSDRead)
			harness.EmitDistribution(em, "fig4", string(w), sf, "ssd_write_mbps", "MB/s", res.SSDWrite)
			harness.EmitDistribution(em, "fig4", string(w), sf, "dram_mbps", "MB/s", res.DRAM)
		}
		fmt.Print(t.Render())
	case "fig5":
		steps := harness.Fig5Steps
		if *quick {
			steps = []float64{100, 400, 800, 2500}
		}
		c := harness.Fig5(o, steps)
		lin := c.LinearReference()
		t := core.Table{Headers: []string{"read limit MB/s", "QPS", "linear-model QPS"}}
		for i, p := range c.Points {
			t.AddRow(core.F(p.X), core.F(p.Y), core.F(lin.Points[i].Y))
		}
		fmt.Print(t.Render())
		harness.EmitCurve(em, "fig5", "tpch", 300, "qps", "read_limit_mbps", "qps", c)
		harness.EmitCurve(em, "fig5", "tpch", 300, "qps_linear_model", "read_limit_mbps", "qps", lin)
		target := c.Last().Y * 0.8
		actual, linear, ok := c.AllocationForTarget(target)
		if ok {
			fmt.Printf("to reach %.3f QPS: actual needs %.0f MB/s; a linear model would provision %.0f MB/s (%.0f%% over)\n",
				target, actual, linear, 100*(linear/actual-1))
		}
	case "fig5write":
		c := harness.Fig5Write(o)
		base := c.Last().Y
		t := core.Table{Headers: []string{"write limit MB/s", "TPS", "vs unlimited"}}
		for _, p := range c.Points {
			t.AddRow(core.F(p.X), core.F(p.Y), fmt.Sprintf("%+.0f%%", 100*(p.Y/base-1)))
		}
		fmt.Print(t.Render())
		harness.EmitCurve(em, "fig5write", "asdb", 2000, "tps", "write_limit_mbps", "tps", c)
	case "fig6":
		sfs := []int{10, 30, 100, 300}
		for _, sf := range sfs {
			res := harness.Fig6(sf, o, nil)
			t := core.Table{Headers: []string{"query", "dop1", "dop2", "dop4", "dop8", "dop16", "dop32"}}
			for q := 1; q <= tpch.NumQueries; q++ {
				row := []string{fmt.Sprintf("Q%d", q)}
				for _, dop := range harness.DOPSteps {
					row = append(row, core.F(res.Speedup(q, dop)))
				}
				t.AddRow(row...)
			}
			fmt.Printf("-- TPC-H SF %d: speedup relative to MAXDOP=32 --\n%s", sf, t.Render())
			harness.EmitTable(em, "fig6", fmt.Sprintf("sf%d", sf), t)
		}
	case "fig7":
		for _, sf := range []int{10, 300} {
			res := harness.Fig7(sf, o)
			fmt.Printf("-- Q20 @ SF %d --\nMAXDOP=1:\n%s\nMAXDOP=32:\n%s\n", sf, res.SerialPlan, res.ParallelPlan)
			harness.EmitTable(em, "fig7", fmt.Sprintf("q20-sf%d", sf), core.Table{
				Headers: []string{"maxdop", "shape"},
				Rows:    [][]string{{"1", res.SerialShape}, {"32", res.ParShape}},
			})
		}
	case "resilience":
		steps := harness.FaultSteps
		if *quick {
			steps = []float64{0, 1, 4}
		}
		for _, pair := range resiliencePoints() {
			res := harness.Resilience(pair.w, pair.sf, o, steps)
			fmt.Print(res.String())
			for _, p := range res.Points {
				em.Emit(harness.Record{
					Record: "point", Experiment: "resilience", Workload: string(pair.w), SF: pair.sf,
					Knob: "fault_intensity", X: p.Intensity,
					Fields: map[string]float64{
						"throughput":      p.Throughput,
						"retention":       p.Retention,
						"faults_injected": float64(p.FaultsInjected),
						"fault_io_errors": float64(p.FaultIOErrors),
						"io_retries":      float64(p.IORetries),
						"txn_retries":     float64(p.TxnRetries),
						"query_retries":   float64(p.QueryRetries),
						"deadline_kills":  float64(p.DeadlineKills),
						"degraded_plans":  float64(p.DegradedPlans),
						"failed":          float64(p.DegradedFailed),
					},
				})
			}
		}
	case "recovery":
		sf := 2000
		intervals := harness.RecoveryCkptIntervals
		if *quick {
			sf = 1000
			intervals = []sim.Duration{500 * sim.Millisecond, 2 * sim.Second}
		}
		res := harness.Recovery(sf, o, intervals, nil)
		fmt.Print(res.String())
		for _, p := range res.Points {
			em.Emit(harness.Record{
				Record: "curve_point", Experiment: "recovery", Workload: "asdb", SF: sf,
				Metric: "mttr_ms", Name: fmt.Sprintf("bw%.0fMBps", p.BandwidthMBps),
				Knob: "ckpt_interval_ms", X: p.CkptInterval.Seconds() * 1e3,
				Value: p.MTTRMs, Unit: "ms",
			})
			em.Emit(harness.Record{
				Record: "point", Experiment: "recovery", Workload: "asdb", SF: sf,
				Name: fmt.Sprintf("bw%.0fMBps", p.BandwidthMBps),
				Knob: "ckpt_interval_ms", X: p.CkptInterval.Seconds() * 1e3,
				Fields: map[string]float64{
					"mttr_ms":        p.MTTRMs,
					"log_scanned_kb": p.LogScannedKB,
					"redo_pages":     float64(p.RedoPages),
					"undo_records":   float64(p.UndoRecords),
					"clrs":           float64(p.CLRs),
					"winners":        float64(p.Winners),
					"losers":         float64(p.Losers),
					"lost_txns":      float64(p.LostTxns),
				},
			})
		}
		if err := res.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := harness.CrashMatrix(sf, o, nil)
		fmt.Print(m.String())
		for _, c := range m.Cells {
			idem := 0.0
			if c.Run.Idempotent() {
				idem = 1
			}
			rep := c.Run.Report
			em.Emit(harness.Record{
				Record: "point", Experiment: "recovery_matrix", Workload: "asdb", SF: sf,
				Name: c.Plan.Point.String(), Knob: "nth", X: float64(c.Plan.Nth),
				Text: c.Run.InvariantErr,
				Fields: map[string]float64{
					"crash_lsn":    float64(rep.CrashLSN),
					"lost_records": float64(rep.LostRecords),
					"lost_txns":    float64(rep.LostTxns),
					"winners":      float64(rep.Winners),
					"losers":       float64(rep.Losers),
					"redo_pages":   float64(rep.RedoPages),
					"undo_records": float64(rep.UndoRecords),
					"clrs":         float64(rep.CLRs),
					"mttr_ms":      rep.Elapsed.Seconds() * 1e3,
					"passes":       float64(c.Run.Passes),
					"idempotent":   idem,
				},
			})
		}
		if err := m.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "replication":
		sf := 2000
		var bandwidths []float64
		var replicas []int
		if *quick {
			sf = 1000
			bandwidths = []float64{200}
			replicas = []int{1}
		}
		res := harness.Replication(sf, o, nil, bandwidths, replicas)
		fmt.Print(res.String())
		for _, p := range res.Points {
			em.Emit(harness.Record{
				Record: "point", Experiment: "replication", Workload: "asdb", SF: sf,
				Name: fmt.Sprintf("%s-r%d", p.Mode, p.Replicas),
				Knob: "bandwidth_mbps", X: p.BandwidthMBps,
				Text: p.Err,
				Fields: map[string]float64{
					"replicas":      float64(p.Replicas),
					"tps":           p.TPS,
					"commit_ack_ms": p.CommitAckMs,
					"max_lag_kb":    p.MaxLagKB,
					"shipped_mb":    p.ShippedMB,
					"applied_txns":  float64(p.AppliedTxns),
					"unacked":       float64(p.Unacked),
				},
			})
			cell := fmt.Sprintf("%s-r%d-bw%.0f", p.Mode, p.Replicas, p.BandwidthMBps)
			harness.EmitTelemetry(em, "replication", "asdb", sf, cell, p.Telemetry)
			for _, tr := range p.CommitSpans {
				harness.EmitTrace(em, "replication", "asdb", sf, tr)
			}
			recordProm(p.Telemetry,
				[2]string{"experiment", "replication"},
				[2]string{"mode", p.Mode.String()},
				[2]string{"replicas", fmt.Sprint(p.Replicas)},
				[2]string{"bw_mbps", fmt.Sprintf("%.0f", p.BandwidthMBps)})
		}
		if err := res.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "failover":
		sf := 2000
		if *quick {
			sf = 1000
		}
		res := harness.Failover(sf, o, nil)
		fmt.Print(res.String())
		for _, c := range res.Cells {
			em.Emit(harness.Record{
				Record: "point", Experiment: "failover", Workload: "asdb", SF: sf,
				Name: c.Mode.String(), Knob: "replicas", X: float64(c.Replicas),
				Text: c.Err,
				Fields: map[string]float64{
					"commits":         float64(c.Commits),
					"rto_ms":          c.Failover.RTO.Seconds() * 1e3,
					"detect_ms":       c.Failover.Detect.Seconds() * 1e3,
					"replay_ms":       c.Failover.Replay.Seconds() * 1e3,
					"promote_ms":      c.Failover.Promote.Seconds() * 1e3,
					"promoted":        float64(c.Failover.Promoted),
					"primary_lsn":     float64(c.Failover.PrimaryLSN),
					"promoted_lsn":    float64(c.Failover.PromotedLSN),
					"acked":           float64(c.Failover.AckedCommits),
					"lost_acked":      float64(c.Failover.LostAckedCommits),
					"lost_commits":    float64(c.Failover.LostCommits),
					"pitr_target_lsn": float64(c.PITR.TargetLSN),
					"pitr_landed_lsn": float64(c.PITR.LandedLSN),
					"pitr_segments":   float64(c.PITR.Segments),
					"pitr_records":    float64(c.PITR.Records),
					"pitr_txns":       float64(c.PITR.Txns),
					"pitr_ms":         c.PITR.Elapsed.Seconds() * 1e3,
				},
			})
			if c.Err == "" {
				harness.EmitTrace(em, "failover", "asdb", sf, c.Failover.TraceTree())
			}
		}
		if err := res.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "fig8":
		res := harness.Fig8(o, nil)
		t := core.Table{Headers: []string{"query", "M=15%", "M=5%", "M=2%"}}
		for q := 1; q <= tpch.NumQueries; q++ {
			t.AddRow(fmt.Sprintf("Q%d", q),
				core.F(res.Speedup(q, 0.15)), core.F(res.Speedup(q, 0.05)), core.F(res.Speedup(q, 0.02)))
		}
		fmt.Printf("-- TPC-H SF 100: speedup vs default 25%% grant --\n%s", t.Render())
		harness.EmitTable(em, "fig8", "sf100", t)
	case "trace":
		sf := 100
		if *quick {
			sf = 10
		}
		res := harness.TraceTPCH(sf, *traceQ, o)
		fmt.Print(res.Render())
		harness.EmitTrace(em, "trace", "tpch", sf, res.Trace)
		if res.Stmt != nil {
			harness.EmitWaits(em, "trace", "tpch", sf, "query", float64(*traceQ), res.Stmt.WaitNs)
		}
	case "qstats":
		ws := workloads()
		results := harness.Sweep(o.Parallel, len(ws), func(i int) harness.QStatsResult {
			return harness.RunQStats(ws[i], harness.PaperSFs(ws[i])[0], o)
		}, o.Progress)
		for _, res := range results {
			t := harness.QueryStatsTable(res.Result.QueryStats)
			fmt.Printf("-- query stats: %s SF %d --\n%s", res.Workload, res.SF, t.Render())
			harness.EmitResult(em, "qstats", string(res.Workload), res.SF, "", 0, res.Result)
			recordProm(res.Result.Telemetry,
				[2]string{"experiment", "qstats"},
				[2]string{"workload", string(res.Workload)},
				[2]string{"sf", fmt.Sprint(res.SF)})
		}
	case "chaos":
		var specs []harness.ChaosSpec
		if *chaosSched != "" {
			for _, sp := range harness.ChaosSpecs() {
				if sp.Schedule == *chaosSched {
					specs = append(specs, sp)
				}
			}
		}
		res := harness.Chaos(servingSF(), o, specs, *servRate)
		fmt.Print(res.String())
		harness.EmitChaos(em, res)
		for _, p := range res.Points {
			recordProm(p.Telemetry,
				[2]string{"experiment", "chaos"},
				[2]string{"cell", p.Spec.Name})
		}
		if err := res.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "serving":
		res := harness.Serving(servingSF(), o, harness.Knobs{}, nil)
		fmt.Print(res.String())
		harness.EmitServing(em, res)
		for _, p := range res.Points {
			recordProm(p.Telemetry,
				[2]string{"experiment", "serving"},
				[2]string{"offered_rps", fmt.Sprintf("%g", p.OfferedRPS)})
		}
		recordProm(res.Storm.Telemetry,
			[2]string{"experiment", "serving"},
			[2]string{"offered_rps", "storm"})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
	fmt.Println()
}

func servingSF() int {
	if *quick {
		return 1000
	}
	return 2000
}

// runServe boots the serving front end under open-loop traffic at one
// offered load and reports the cell — the single-run counterpart of
// `dbsense run serving`.
func runServe() {
	o := opts()
	sf := servingSF()
	fmt.Printf("== serve (density=%d, measure=%.0fs, rate=%g conn/s, storm=%v) ==\n",
		o.Density, o.Measure.Seconds(), *servRate, *servStorm)
	pt := harness.ServeOnce(sf, o, harness.Knobs{}, *servRate, *servStorm)
	fmt.Printf("offered %.1f rps -> goodput %.1f rps\n", pt.OfferedRPS, pt.GoodputRPS)
	fmt.Printf("latency p50 %.3f ms, p99 %.2f ms, p999 %.2f ms\n", pt.P50Ms, pt.P99Ms, pt.P999Ms)
	fmt.Printf("shed %.1f%% (%d), degraded %d, refused %d, dropped %d, conns %d\n",
		100*pt.ShedRate, pt.Shed, pt.Degraded, pt.Refused, pt.Dropped, pt.Accepted)
	for _, m := range []struct {
		name, unit string
		v          float64
	}{
		{"goodput", "rps", pt.GoodputRPS},
		{"p50", "ms", pt.P50Ms},
		{"p99", "ms", pt.P99Ms},
		{"p999", "ms", pt.P999Ms},
		{"shed_rate", "frac", pt.ShedRate},
		{"degraded", "requests", float64(pt.Degraded)},
	} {
		em.Emit(harness.Record{
			Record: "point", Experiment: "serve", Workload: "asdb", SF: sf,
			Metric: m.name, X: pt.OfferedRPS, Value: m.v, Unit: m.unit,
		})
	}
	harness.EmitTelemetry(em, "serve", "asdb", sf, fmt.Sprintf("rate=%g", *servRate), pt.Telemetry)
	recordProm(pt.Telemetry,
		[2]string{"experiment", "serve"},
		[2]string{"rate", fmt.Sprintf("%g", *servRate)})
}

// printCurves renders a family of curves via the harness report helper.
func printCurves(title string, bySF map[int]core.Curve, knob string) {
	fmt.Print(harness.RenderFamily(title, harness.CurveFamily(bySF), knob))
}

// resiliencePoints picks the workload/SF pairs the resilience sweep runs:
// TPC-H and TPC-E by default, or a single -workload override at its
// smallest paper scale factor.
func resiliencePoints() []struct {
	w  harness.Workload
	sf int
} {
	type pair = struct {
		w  harness.Workload
		sf int
	}
	if *workload != "" {
		w := harness.Workload(*workload)
		return []pair{{w, harness.PaperSFs(w)[0]}}
	}
	tpceSF := 5000
	if *quick {
		tpceSF = 2000
	}
	return []pair{{harness.WTpch, 100}, {harness.WTpce, tpceSF}}
}

func coreSteps() []int {
	if *quick {
		return []int{2, 8, 16, 32}
	}
	return harness.CoreSteps
}

func llcSteps() []int {
	if *quick {
		return []int{2, 8, 20, 40}
	}
	return harness.LLCSteps
}
