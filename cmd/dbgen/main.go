// Command dbgen builds the scaled databases and prints their nominal
// sizes — the reproduction of the paper's Table 2 — plus per-table
// detail and columnstore compression ratios.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload/tpch"
)

var (
	density = flag.Int("density", 200, "generated rows per paper scale unit")
	seed    = flag.Int64("seed", 1, "generation seed")
	detail  = flag.Bool("detail", false, "print per-table detail for TPC-H SF 100")
)

func main() {
	flag.Parse()
	opt := harness.DefaultOptions()
	opt.Density = *density
	opt.Seed = *seed

	fmt.Println("Table 2: database scale factors and nominal sizes")
	tb := harness.Table2(opt)
	fmt.Print(tb.Render())

	if *detail {
		d := tpch.Build(tpch.Config{SF: 100, ActualLineitemPerSF: *density, Seed: *seed})
		t := core.Table{Headers: []string{"table", "actual rows", "nominal rows", "nominal MB", "CSI MB", "ratio"}}
		for _, tab := range d.DB.Tables {
			csi := d.DB.CSIOf(tab)
			csiMB, ratio := 0.0, 1.0
			if csi != nil {
				csiMB = float64(csi.Ix.NominalBytes()) / (1 << 20)
				ratio = csi.Ix.AvgRatio()
			}
			t.AddRow(tab.Name,
				fmt.Sprint(tab.ActualRows()), fmt.Sprint(tab.NominalRows()),
				core.F(float64(tab.NominalDataBytes())/(1<<20)), core.F(csiMB), core.F(ratio))
		}
		fmt.Printf("\nTPC-H SF 100 detail:\n%s", t.Render())
	}
}
