// Package wal implements the engine's write-ahead log with group commit.
//
// Transactions append log records to an in-memory log buffer; committing
// waits until the log writer has flushed past the transaction's LSN. The
// log writer batches pending bytes into device writes, so many small
// commits share one flush (group commit). All flush I/O goes through the
// device's write channel, where it competes with checkpoint writes and is
// subject to the blkio write throttle — the mechanism behind the paper's
// finding that transactional throughput is sensitive to write bandwidth
// even when data fits in memory.
package wal

import (
	"errors"

	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrNotDurable is returned by Commit/WaitDurable when the log stops (or
// crashes) before the caller's records reach the device: the transaction
// is not durable and must be treated as aborted.
var ErrNotDurable = errors.New("wal: log stopped before commit record flushed")

// Log is a write-ahead log bound to one device.
type Log struct {
	sm  *sim.Sim
	dev *iodev.Device
	ctr *metrics.Counters

	// MaxFlushBytes caps one flush I/O (the 60 KB log-block limit).
	MaxFlushBytes int64

	// Recording retains typed logical records (records.go) for crash
	// recovery. Off by default: baseline runs keep the pure byte-count
	// behaviour and allocate nothing per record.
	Recording bool

	// MidFlushHook, when set, runs between the device write and the
	// flushedLSN advance — the seeded crash point that loses an
	// acknowledged-by-device-but-not-yet-visible flush batch.
	MidFlushHook func()

	// AppendGapHook, when set, runs after a commit lump is appended but
	// before its flush wait — the seeded crash point where records exist
	// in the log buffer only.
	AppendGapHook func()

	// FlushHist, when telemetry is armed, observes each flush's latency
	// (device write + penalty). Nil off: Observe on the nil histogram is
	// a no-op, so the writer loop pays one branch.
	FlushHist *telemetry.Hist

	appendedLSN int64 // bytes appended
	flushedLSN  int64 // bytes durably written
	flushes     int64 // completed flush I/Os

	records []*Record // simulated log image (Recording only)
	opSeq   int64     // global logical-op sequence

	writerIdle sim.WaitQueue // log writer parks here when nothing to do
	commitQ    sim.WaitQueue // committers park here until flushedLSN advances
	streamQ    sim.WaitQueue // stream readers park here until flushedLSN advances

	flushPenaltyNs float64 // fault-injected extra latency per flush

	stopped    bool
	crashed    bool
	writerDone bool // log-writer proc has exited (no further flush can land)
}

// New creates a log writing to dev.
func New(sm *sim.Sim, dev *iodev.Device, ctr *metrics.Counters) *Log {
	return &Log{sm: sm, dev: dev, ctr: ctr, MaxFlushBytes: 60 << 10}
}

// Start spawns the log-writer proc.
func (l *Log) Start() {
	l.writerDone = false
	l.sm.Spawn("log-writer", func(p *sim.Proc) {
		// Stream readers treat end-of-stream as "stopped AND writer
		// exited": a flush in flight at the stop instant still completes
		// and advances flushedLSN, so readers must not conclude the
		// durable stream is exhausted until no further flush can land.
		defer func() {
			l.writerDone = true
			l.streamQ.WakeAll(l.sm)
		}()
		for !l.stopped {
			if l.appendedLSN == l.flushedLSN {
				l.writerIdle.Wait(p)
				continue
			}
			batch := l.appendedLSN - l.flushedLSN
			if batch > l.MaxFlushBytes {
				batch = l.MaxFlushBytes
			}
			flushStart := p.Now()
			l.dev.Write(p, batch)
			if l.flushPenaltyNs > 0 {
				p.Sleep(sim.Duration(l.flushPenaltyNs))
			}
			l.FlushHist.Observe(sim.Duration(p.Now() - flushStart))
			l.flushes++
			if l.MidFlushHook != nil {
				l.MidFlushHook()
				if l.crashed {
					// The crash landed between the device write and the
					// LSN advance: the batch is lost.
					return
				}
			}
			l.flushedLSN += batch
			l.commitQ.WakeAll(l.sm)
			l.streamQ.WakeAll(l.sm)
		}
	})
}

// SetFlushPenalty installs (or clears, with 0) a per-flush latency
// penalty — the fault model for a slow or degraded log device, where
// every flush pays extra firmware/driver latency.
func (l *Log) SetFlushPenalty(ns float64) {
	if ns < 0 {
		ns = 0
	}
	l.flushPenaltyNs = ns
}

// Stop makes the log writer exit at its next wakeup and wakes parked
// committers so they can observe the shutdown (their commits resolve as
// ErrNotDurable instead of hanging forever). Stream readers parked in
// StreamReader.NextBatch are woken too, but they observe end-of-stream
// only after the writer has exited: a flush in flight at the stop
// instant still completes and advances the flushed LSN, and readers
// drain through it first. The durable stream is therefore frozen at the
// flushed LSN after that final flush, deterministically — a batch whose
// AppendBatch raced the stop is visible exactly up to the records whose
// end byte the final flush covered, and the rest of the batch never
// enters the stream (see StreamReader for the precise visibility rule).
func (l *Log) Stop() {
	l.stopped = true
	l.writerIdle.WakeAll(l.sm)
	l.commitQ.WakeAll(l.sm)
	l.streamQ.WakeAll(l.sm)
}

// Append adds bytes of log records and returns the record's LSN.
func (l *Log) Append(bytes int64) int64 {
	if bytes < 0 {
		bytes = 0
	}
	l.appendedLSN += bytes
	return l.appendedLSN
}

// Commit appends the commit record and blocks p until the log is durable
// past it, recording the wait as WRITELOG. It returns the wait duration
// and ErrNotDurable when the log stopped before the flush reached the
// commit record.
func (l *Log) Commit(p *sim.Proc, lastBytes int64) (sim.Duration, error) {
	lsn := l.Append(lastBytes + 96) // commit record overhead
	return l.WaitDurable(p, lsn)
}

// WaitDurable blocks p until the log is durable past lsn, charging the
// wait as WRITELOG. It returns ErrNotDurable when the log stopped (or
// crashed) first.
func (l *Log) WaitDurable(p *sim.Proc, lsn int64) (sim.Duration, error) {
	start := p.Now()
	for l.flushedLSN < lsn && !l.stopped {
		l.writerIdle.WakeAll(l.sm)
		l.commitQ.Wait(p)
	}
	wait := sim.Duration(p.Now() - start)
	metrics.ChargeWait(p, l.ctr, metrics.WaitWriteLog, wait)
	if l.flushedLSN < lsn {
		return wait, ErrNotDurable
	}
	return wait, nil
}

// FlushedLSN returns the durable LSN.
func (l *Log) FlushedLSN() int64 { return l.flushedLSN }

// AppendedLSN returns the in-memory LSN.
func (l *Log) AppendedLSN() int64 { return l.appendedLSN }

// Flushes returns the count of completed flush I/Os.
func (l *Log) Flushes() int64 { return l.flushes }
