package wal

import (
	"testing"

	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// rawLog builds a log without starting the writer, so tests control the
// flush timeline (or its absence) explicitly.
func rawLog() (*sim.Sim, *Log) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	dev := iodev.New(iodev.PaperSSD(), ctr)
	return s, New(s, dev, ctr)
}

// A committer parked on the group commit must be woken by Stop and
// resolve as not durable instead of hanging forever. The log writer is
// never started here, so nothing can flush: before the Stop wake this
// proc stayed parked past any horizon.
func TestStopWakesParkedCommitter(t *testing.T) {
	s, l := rawLog()
	var err error
	done := false
	s.Spawn("t", func(p *sim.Proc) {
		_, err = l.Commit(p, 1000)
		done = true
	})
	s.Run(sim.Time(sim.Second))
	if done {
		t.Fatal("commit resolved with no flusher running")
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
	if !done {
		t.Fatal("Stop did not wake the parked committer")
	}
	if err != ErrNotDurable {
		t.Fatalf("err = %v, want ErrNotDurable", err)
	}
	if n := s.Live(); n != 0 {
		t.Fatalf("%d procs still live after Stop", n)
	}
}

// Append still works during shutdown (late aborts account their bytes),
// and a commit attempted after Stop resolves immediately as not durable.
func TestAppendAndCommitDuringStop(t *testing.T) {
	s, l := rawLog()
	l.Start()
	l.Stop()
	if lsn := l.Append(500); lsn != 500 {
		t.Fatalf("append during stop returned LSN %d", lsn)
	}
	var err error
	var wait sim.Duration
	s.Spawn("t", func(p *sim.Proc) {
		wait, err = l.Commit(p, 100)
	})
	s.Run(sim.Time(sim.Second))
	if err != ErrNotDurable {
		t.Fatalf("err = %v, want ErrNotDurable", err)
	}
	if wait != 0 {
		t.Fatalf("stopped-log commit waited %v", wait)
	}
	if n := s.Live(); n != 0 {
		t.Fatalf("%d procs still live after Stop", n)
	}
}

// A backlog of exactly MaxFlushBytes flushes as one batch; one byte more
// takes two.
func TestFlushBatchingAtMaxFlushBytes(t *testing.T) {
	run := func(bytes int64) int {
		s, l := rawLog()
		l.MaxFlushBytes = 1000
		batches := 0
		l.MidFlushHook = func() { batches++ }
		l.Start()
		s.Spawn("t", func(p *sim.Proc) {
			lsn := l.Append(bytes)
			l.WaitDurable(p, lsn)
		})
		s.Run(sim.Time(10 * sim.Second))
		l.Stop()
		s.Run(sim.Time(20 * sim.Second))
		return batches
	}
	if n := run(1000); n != 1 {
		t.Fatalf("exactly MaxFlushBytes took %d flushes, want 1", n)
	}
	if n := run(1001); n != 2 {
		t.Fatalf("MaxFlushBytes+1 took %d flushes, want 2", n)
	}
}

// MidFlushHook observes flushedLSN before the advance, so per-batch
// boundaries are visible: the first batch of a 1001-byte backlog must end
// at exactly the 1000-byte cap.
func TestFlushBatchBoundaryAtCap(t *testing.T) {
	s, l := rawLog()
	l.MaxFlushBytes = 1000
	var boundaries []int64
	l.MidFlushHook = func() { boundaries = append(boundaries, l.FlushedLSN()) }
	l.Start()
	s.Spawn("t", func(p *sim.Proc) {
		lsn := l.Append(1001)
		l.WaitDurable(p, lsn)
	})
	s.Run(sim.Time(10 * sim.Second))
	l.Stop()
	s.Run(sim.Time(20 * sim.Second))
	if len(boundaries) != 2 || boundaries[0] != 0 || boundaries[1] != 1000 {
		t.Fatalf("flush boundaries = %v, want [0 1000]", boundaries)
	}
	if l.FlushedLSN() != 1001 {
		t.Fatalf("flushed = %d", l.FlushedLSN())
	}
}

// A crash mid-flush loses the in-flight batch: records above the durable
// boundary are truncated, their LSNs zeroed so stale references cannot
// resurrect them, and the append position rewinds to the flushed LSN.
func TestCrashTruncatesUnflushedRecords(t *testing.T) {
	s, l := rawLog()
	l.Recording = true
	l.MaxFlushBytes = 150
	recs := []*Record{
		{Type: RecUpdate, Txn: 1, Bytes: 100},
		{Type: RecUpdate, Txn: 1, Bytes: 100},
		{Type: RecCommit, Txn: 1, Bytes: 100},
	}
	flushes := 0
	l.MidFlushHook = func() {
		flushes++
		if flushes == 2 {
			l.Crash() // first 150-byte batch is durable, second is lost
		}
	}
	l.Start()
	s.Spawn("t", func(p *sim.Proc) {
		lsn := l.AppendBatch(recs)
		l.WaitDurable(p, lsn)
	})
	s.Run(sim.Time(10 * sim.Second))
	if recs[0].LSN != 100 || recs[1].LSN != 200 || recs[2].LSN != 300 {
		t.Fatalf("record LSNs = %d, %d, %d", recs[0].LSN, recs[1].LSN, recs[2].LSN)
	}
	if l.FlushedLSN() != 150 {
		t.Fatalf("flushed = %d, want 150 (one batch)", l.FlushedLSN())
	}
	if dropped := l.TruncateAtFlushed(); dropped != 2 {
		t.Fatalf("dropped %d records, want 2", dropped)
	}
	if len(l.Records()) != 1 || l.Records()[0].LSN != 100 {
		t.Fatalf("surviving records = %v", l.Records())
	}
	if recs[1].LSN != 0 || recs[2].LSN != 0 {
		t.Fatalf("truncated records keep LSNs %d, %d; want zeroed", recs[1].LSN, recs[2].LSN)
	}
	// The flush boundary (150) landed mid-record: the torn record is
	// discarded and both LSNs rewind to the last complete record's end.
	if l.AppendedLSN() != 100 {
		t.Fatalf("appended rewound to %d, want 100 (last complete record)", l.AppendedLSN())
	}
	if l.FlushedLSN() != 100 {
		t.Fatalf("flushed rewound to %d, want 100 (torn tail discarded)", l.FlushedLSN())
	}
	// Restart drains cleanly and accepts new appends.
	l.MidFlushHook = nil
	l.Restart()
	s.Spawn("t2", func(p *sim.Proc) {
		lsn := l.AppendBatch([]*Record{{Type: RecCLR, Txn: 1, Bytes: 100}, {Type: RecAbort, Txn: 1}})
		if _, err := l.WaitDurable(p, lsn); err != nil {
			t.Errorf("post-restart commit failed: %v", err)
		}
	})
	s.Run(sim.Time(20 * sim.Second))
	l.Stop()
	s.Run(sim.Time(30 * sim.Second))
	if n := s.Live(); n != 0 {
		t.Fatalf("%d procs still live", n)
	}
}

// Zero-byte records (begin, abort, checkpoint marks) share their
// predecessor's end LSN and are durable with it; byte accounting is
// untouched, preserving the untyped path's flush timeline bit for bit.
func TestZeroByteRecordsShareLSN(t *testing.T) {
	_, l := rawLog()
	l.Recording = true
	begin := &Record{Type: RecBegin, Txn: 1}
	upd := &Record{Type: RecUpdate, Txn: 1, Bytes: 400}
	commit := &Record{Type: RecCommit, Txn: 1, Bytes: RecHeaderBytes}
	lsn := l.AppendBatch([]*Record{begin, upd, commit})
	if lsn != 400+RecHeaderBytes {
		t.Fatalf("batch LSN = %d", lsn)
	}
	if begin.LSN != 0 {
		t.Fatalf("begin LSN = %d, want 0 (zero bytes at log start)", begin.LSN)
	}
	if upd.LSN != 400 || commit.LSN != 400+RecHeaderBytes {
		t.Fatalf("LSNs = %d, %d", upd.LSN, commit.LSN)
	}
	if l.AppendedLSN() != lsn {
		t.Fatalf("appended = %d, want %d", l.AppendedLSN(), lsn)
	}
}
