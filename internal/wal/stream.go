package wal

import (
	"sort"

	"repro/internal/sim"
)

// StreamReader cursors over the durable record stream of a Recording
// log — the log-shipping source for replication. The visibility rule is
// exactly durability: a record enters the stream when its end-byte LSN
// is <= flushedLSN, so a shipped prefix can never contain a record the
// primary itself could lose in a crash. Records with Bytes == 0 share
// their predecessor's end byte and enter the stream with it.
//
// Readers single-thread within one reader (one shipper proc per
// reader); multiple independent readers over the same log are fine.
// Returned record pointers are shared with the log image — callers that
// re-append them elsewhere (a standby log) must shallow-copy first,
// because AppendBatch assigns LSNs in place.
type StreamReader struct {
	l   *Log
	pos int // index into l.records of the next unread record
}

// NewStreamReader returns a reader positioned at the start of the log
// image. The log must be Recording, or the stream is forever empty.
func (l *Log) NewStreamReader() *StreamReader {
	return &StreamReader{l: l}
}

// WakeStream wakes parked stream readers. A reader whose cursor was
// rewound behind the flushed LSN (replication reconnect after a standby
// crash) has a durable tail to deliver but would otherwise park until
// the next flush advances the boundary.
func (l *Log) WakeStream() { l.streamQ.WakeAll(l.sm) }

// SeekLSN repositions the reader so the next record returned is the
// first with LSN > lsn. Note that zero-byte records share their
// predecessor's end LSN, so an LSN is ambiguous within such a run;
// replication reconnect uses SeekPos instead, which is exact.
func (r *StreamReader) SeekLSN(lsn int64) {
	recs := r.l.records
	r.pos = sort.Search(len(recs), func(i int) bool { return recs[i].LSN > lsn })
}

// Pos returns the reader's stream position: the index (in append order)
// of the next unread record.
func (r *StreamReader) Pos() int { return r.pos }

// SeekPos repositions the reader to an absolute stream position.
// Reconnect after a standby crash seeks to the standby's retained record
// count: the standby log is a strict positional prefix of the primary's
// record stream and TruncateAtFlushed drops a suffix, so position — not
// LSN, which zero-byte records share with their predecessors — is the
// exact resume point.
func (r *StreamReader) SeekPos(pos int) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(r.l.records) {
		pos = len(r.l.records)
	}
	r.pos = pos
}

// NextBatch blocks p until at least one unread durable record exists,
// then returns all of them plus the stream position of the batch's
// first record. It returns ok=false only when the log has stopped (or
// crashed), its writer proc has exited — so no in-flight flush can
// still advance the durable boundary — and the durable stream is
// exhausted; the final call before that may still deliver records — a
// batch whose AppendBatch raced the stop is visible exactly up to the
// records the final flush covered, and the rest never appear (their
// LSNs stay past the frozen flushedLSN, and a crash zeroes them via
// TruncateAtFlushed).
func (r *StreamReader) NextBatch(p *sim.Proc) ([]*Record, int, bool) {
	for {
		if batch, start := r.durableTail(); len(batch) > 0 {
			return batch, start, true
		}
		if r.l.stopped && r.l.writerDone {
			return nil, r.pos, false
		}
		r.l.streamQ.Wait(p)
	}
}

// Poll returns unread durable records without blocking (possibly none)
// plus the stream position of the first.
func (r *StreamReader) Poll() ([]*Record, int) {
	return r.durableTail()
}

// durableTail slices out unread records whose end byte is flushed and
// advances the cursor past them, returning the slice and its starting
// stream position.
func (r *StreamReader) durableTail() ([]*Record, int) {
	recs := r.l.records
	start := r.pos
	end := start
	for end < len(recs) && recs[end].LSN <= r.l.flushedLSN {
		end++
	}
	if end == start {
		return nil, start
	}
	r.pos = end
	return recs[start:end], start
}
