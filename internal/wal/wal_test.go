package wal

import (
	"testing"

	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func setup() (*sim.Sim, *Log, *metrics.Counters) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	dev := iodev.New(iodev.PaperSSD(), ctr)
	l := New(s, dev, ctr)
	l.Start()
	return s, l, ctr
}

func TestCommitWaitsForDurability(t *testing.T) {
	s, l, ctr := setup()
	committed := false
	s.Spawn("t", func(p *sim.Proc) {
		l.Append(500)
		l.Commit(p, 100)
		committed = true
	})
	s.Run(sim.Time(sim.Second))
	if !committed {
		t.Fatal("commit never completed")
	}
	if l.FlushedLSN() < 500+100 {
		t.Fatalf("flushed LSN = %d", l.FlushedLSN())
	}
	if ctr.SSDWriteBytes == 0 {
		t.Fatal("no log write issued")
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

func TestGroupCommitBatchesFlushes(t *testing.T) {
	s, l, ctr := setup()
	done := 0
	for i := 0; i < 50; i++ {
		s.Spawn("t", func(p *sim.Proc) {
			l.Commit(p, 200)
			done++
		})
	}
	s.Run(sim.Time(sim.Second))
	if done != 50 {
		t.Fatalf("committed %d of 50", done)
	}
	// 50 commits should need far fewer than 50 flush I/Os.
	if ctr.SSDWriteOps >= 25 {
		t.Fatalf("write ops = %d, expected group commit batching", ctr.SSDWriteOps)
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

func TestWriteThrottleDelaysCommit(t *testing.T) {
	run := func(limitMBps float64) float64 {
		s := sim.New(1)
		ctr := &metrics.Counters{}
		dev := iodev.New(iodev.PaperSSD(), ctr)
		if limitMBps > 0 {
			th := iodev.NewThrottle(limitMBps)
			dev.SetThrottles(nil, th)
		}
		l := New(s, dev, ctr)
		l.Start()
		var end sim.Time
		s.Spawn("t", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				l.Commit(p, 50_000) // 5 MB of log total
			}
			end = p.Now()
		})
		s.Run(sim.Time(100 * sim.Second))
		l.Stop()
		s.Run(sim.Time(200 * sim.Second))
		return end.Seconds()
	}
	fast := run(0)
	slow := run(1) // 1 MB/s write limit
	if slow < fast*10 {
		t.Fatalf("write throttle barely slowed commits: %.3fs vs %.3fs", slow, fast)
	}
}

func TestCommitRecordsWriteLogWait(t *testing.T) {
	s, l, ctr := setup()
	s.Spawn("t", func(p *sim.Proc) {
		l.Commit(p, 1000)
	})
	s.Run(sim.Time(sim.Second))
	if ctr.WaitNs[metrics.WaitWriteLog] == 0 {
		t.Fatal("commit recorded no WRITELOG wait")
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}
