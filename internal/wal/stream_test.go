package wal

import (
	"testing"

	"repro/internal/sim"
)

// TestStreamVisibilityIsDurability checks the stream's visibility rule:
// a record is delivered iff its end-byte LSN is flushed, zero-byte
// records enter with their predecessor, and delivery preserves append
// order and stream positions exactly.
func TestStreamVisibilityIsDurability(t *testing.T) {
	s, l, _ := setup()
	l.Recording = true
	rd := l.NewStreamReader()
	var got []*Record
	done := false
	s.Spawn("reader", func(p *sim.Proc) {
		for {
			batch, pos, ok := rd.NextBatch(p)
			if len(batch) > 0 && pos != len(got) {
				t.Errorf("batch at stream pos %d, expected %d", pos, len(got))
			}
			for _, r := range batch {
				if r.LSN > l.FlushedLSN() {
					t.Errorf("record LSN %d visible with flushed LSN %d", r.LSN, l.FlushedLSN())
				}
				got = append(got, r)
			}
			if !ok {
				done = true
				return
			}
		}
	})
	const txns = 20
	s.Spawn("appender", func(p *sim.Proc) {
		for i := 0; i < txns; i++ {
			id := int64(i + 1)
			end := l.AppendBatch([]*Record{
				{Type: RecBegin, Txn: id}, // zero bytes: shares predecessor's end LSN
				{Type: RecUpdate, Txn: id, Bytes: 700},
				{Type: RecCommit, Txn: id, Bytes: 96},
			})
			if _, err := l.WaitDurable(p, end); err != nil {
				t.Errorf("txn %d: %v", id, err)
			}
		}
		l.Stop()
	})
	s.Run(sim.Time(10 * sim.Second))
	if !done {
		t.Fatal("reader never observed end of stream")
	}
	if len(got) != 3*txns {
		t.Fatalf("reader got %d records, expected %d", len(got), 3*txns)
	}
	for i, r := range got {
		if r != l.Records()[i] {
			t.Fatalf("stream order diverges from append order at %d", i)
		}
	}
}

// TestStreamStopMidBatchDeterministic stops the log while a large
// multi-record AppendBatch is only partially flushed. The reader must
// drain exactly the records the final flush covered — including a flush
// that was in flight at the stop instant — then observe end-of-stream;
// the rest of the batch never appears. Two identical runs must observe
// the identical visible prefix.
func TestStreamStopMidBatchDeterministic(t *testing.T) {
	run := func() (visible []int64, flushed, appended int64) {
		s, l, _ := setup()
		l.Recording = true
		l.MaxFlushBytes = 1 << 10
		rd := l.NewStreamReader()
		done := false
		s.Spawn("reader", func(p *sim.Proc) {
			for {
				batch, _, ok := rd.NextBatch(p)
				for _, r := range batch {
					visible = append(visible, r.LSN)
				}
				if !ok {
					done = true
					return
				}
			}
		})
		const recs = 64
		s.Spawn("appender", func(p *sim.Proc) {
			batch := make([]*Record, recs)
			for i := range batch {
				batch[i] = &Record{Type: RecUpdate, Txn: 1, Bytes: 512}
			}
			end := l.AppendBatch(batch) // 32 KB: needs 32 separate 1 KB flushes
			if _, err := l.WaitDurable(p, end); err != ErrNotDurable {
				t.Errorf("in-flight batch durability wait returned %v, expected ErrNotDurable", err)
			}
		})
		s.Spawn("stopper", func(p *sim.Proc) {
			for l.FlushedLSN() == 0 {
				p.Sleep(10 * sim.Microsecond)
			}
			l.Stop() // first flush has landed, most of the batch has not
		})
		s.Run(sim.Time(10 * sim.Second))
		if !done {
			t.Fatal("reader never observed end of stream")
		}
		return visible, l.FlushedLSN(), l.AppendedLSN()
	}

	vis, flushed, appended := run()
	if flushed == 0 || flushed >= appended {
		t.Fatalf("stop did not land mid-batch: flushed %d of %d appended", flushed, appended)
	}
	if len(vis) == 0 || len(vis) >= 64 {
		t.Fatalf("visible prefix %d records, expected a strict non-empty prefix of 64", len(vis))
	}
	for i, lsn := range vis {
		if lsn != int64(i+1)*512 {
			t.Fatalf("visible record %d has LSN %d, expected %d", i, lsn, int64(i+1)*512)
		}
	}
	if last := vis[len(vis)-1]; last != flushed-flushed%512 {
		t.Fatalf("visible prefix ends at LSN %d with flushed %d", last, flushed)
	}

	vis2, flushed2, appended2 := run()
	if flushed2 != flushed || appended2 != appended || len(vis2) != len(vis) {
		t.Fatalf("stop-mid-batch not deterministic: (%d vis, %d/%d) vs (%d vis, %d/%d)",
			len(vis), flushed, appended, len(vis2), flushed2, appended2)
	}
	for i := range vis {
		if vis[i] != vis2[i] {
			t.Fatalf("visible LSN %d differs across identical runs: %d vs %d", i, vis[i], vis2[i])
		}
	}
}

// TestStreamSeekPosReplays checks the reconnect primitive: rewinding a
// parked reader with SeekPos and waking it via WakeStream re-delivers
// the durable tail from exactly that position.
func TestStreamSeekPosReplays(t *testing.T) {
	s, l, _ := setup()
	l.Recording = true
	rd := l.NewStreamReader()
	var got []*Record
	s.Spawn("reader", func(p *sim.Proc) {
		for {
			batch, _, ok := rd.NextBatch(p)
			got = append(got, batch...)
			if !ok {
				return
			}
		}
	})
	const txns = 5
	s.Spawn("appender", func(p *sim.Proc) {
		for i := 0; i < txns; i++ {
			end := l.AppendBatch([]*Record{
				{Type: RecUpdate, Txn: int64(i + 1), Bytes: 400},
				{Type: RecCommit, Txn: int64(i + 1), Bytes: 96},
			})
			l.WaitDurable(p, end)
		}
		p.Sleep(sim.Millisecond) // reader drains all 10 records and parks
		if len(got) != 2*txns {
			t.Errorf("reader drained %d records before rewind, expected %d", len(got), 2*txns)
		}
		rd.SeekPos(3)
		l.WakeStream() // no new flush is coming: the wake must come from here
		p.Sleep(sim.Millisecond)
		l.Stop()
	})
	s.Run(sim.Time(10 * sim.Second))
	want := 2*txns + (2*txns - 3)
	if len(got) != want {
		t.Fatalf("reader got %d records after rewind, expected %d", len(got), want)
	}
	for i := 0; i < 2*txns-3; i++ {
		if got[2*txns+i] != l.Records()[3+i] {
			t.Fatalf("replayed record %d is not log record %d", 2*txns+i, 3+i)
		}
	}
}
