package wal

import (
	"sort"

	"repro/internal/storage"
)

// This file adds typed logical records on top of the byte-count LSN
// space. Records are bookkeeping layered over the existing group-commit
// byte stream: appending a batch of records advances appendedLSN by the
// records' total byte size exactly as the pre-record Append(bytes) did,
// so the flush timeline — batch sizes, MaxFlushBytes splits, device
// competition — is bit-for-bit identical whether or not records are
// recorded. Recording is off by default and enabled only for
// crash-recovery experiments (Log.Recording).
//
// A record is durable iff its end-byte LSN is <= flushedLSN. On a crash
// the simulated durable log image is the record list truncated at the
// flushed LSN (TruncateAtFlushed).

// RecHeaderBytes is the per-record header overhead; it equals the commit
// record overhead built into Commit, so a commit lump of typed records
// totals exactly logBytes + RecHeaderBytes.
const RecHeaderBytes = 96

// RecType identifies a logical log record.
type RecType int

// Record types.
const (
	RecBegin     RecType = iota // transaction begin (zero bytes; folded into first lump)
	RecUpdate                   // row modification with page + undo info
	RecCommit                   // transaction commit
	RecAbort                    // transaction fully rolled back (end record)
	RecCLR                      // compensation log record for one undone update
	RecCkptBegin                // fuzzy checkpoint begin
	RecCkptEnd                  // fuzzy checkpoint end: carries DPT + ATT
)

// String returns the ARIES-style record-type name.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCLR:
		return "CLR"
	case RecCkptBegin:
		return "CKPT_BEGIN"
	case RecCkptEnd:
		return "CKPT_END"
	default:
		return "REC(?)"
	}
}

// PageID names a page globally: file ID plus page number within the file.
type PageID struct {
	File int
	Page int64
}

// Zero reports whether the PageID is unset (record touches no page).
func (p PageID) Zero() bool { return p.File == 0 && p.Page == 0 }

// OpKind classifies a logical undo payload.
type OpKind int

// Logical operation kinds.
const (
	OpSet    OpKind = iota // cell overwrite: undo restores Old
	OpInsert               // nominal-row insert: undo deletes the row
	OpDelete               // nominal-row delete: undo restores the row
)

// Op is one logical modification with enough information to undo it.
// Ops are pure data (no closures): Seq is a global monotonic sequence
// assigned at registration, which under strict 2PL totally orders the
// writes to any one cell.
type Op struct {
	Kind OpKind
	T    *storage.Table
	Row  int64 // actual row ID (OpSet)
	Col  int   // column (OpSet)
	Old  int64 // pre-image (OpSet)
	New  int64 // post-image (OpSet)
	Seq  int64

	// Redo payload for log-shipping replication (OpInsert only; captured
	// when Recording). Img is the inserted row image; Materialized records
	// whether this insert crossed a K boundary and appended an actual row
	// (Row then holds the position it was appended at), so a replica
	// replays the primary's materialization decision and placement instead
	// of re-deriving them from interleaving-sensitive counters; Indexed
	// records whether index/columnstore maintenance ran before the insert
	// completed (false for a victim killed between the nominal append and
	// its row lock).
	Img          []int64
	Materialized bool
	Indexed      bool
}

// Undo reverses the op against the in-memory table image. It is
// idempotent only through the caller's bookkeeping (recovery tracks how
// far each loser has been undone).
func (o Op) Undo() {
	switch o.Kind {
	case OpSet:
		o.T.Set(o.Row, o.Col, o.Old)
	case OpInsert:
		o.T.DeleteNominal()
	case OpDelete:
		o.T.UndeleteNominal()
	}
}

// PageRecLSN is one dirty-page-table entry: the page and the LSN of the
// first record that dirtied it since it was last clean (recLSN).
type PageRecLSN struct {
	Page   PageID
	RecLSN int64
}

// Record is one typed logical log record. LSN is the record's end-byte
// position in the byte-count LSN space (0 = not yet appended); records
// with Bytes == 0 share the end byte of their predecessor and become
// durable with it.
type Record struct {
	LSN   int64
	Type  RecType
	Txn   int64
	Bytes int64
	Page  PageID // page touched (RecUpdate / RecCLR)
	Ops   []Op   // logical payload (RecUpdate)

	// UndoOf is the LSN of the forward record this CLR compensates
	// (RecCLR only); analysis uses it to skip already-undone records on
	// recovery-after-crash-in-recovery.
	UndoOf int64

	// Residue carries an aborted transaction's insert ops (RecAbort only,
	// Recording). A rolled-back insert leaves a ghost: the nominal
	// high-water mark stays bumped and a materialized actual row survives
	// with its values (DeleteNominal only decrements the live count), so a
	// replica rebuilding state purely from the committed stream would
	// diverge from the primary image. Shipping the residue on the abort
	// end record lets replicas reproduce the ghosts without the forward
	// records ever entering the LSN byte space.
	Residue []Op

	// Fuzzy-checkpoint payload (RecCkptEnd only).
	DPT []PageRecLSN
	ATT []int64
}

// AppendBatch appends a batch of records as one lump, advancing the LSN
// space by the batch's total byte size — identical to a plain
// Append(total) — and, when Recording, assigning each record its
// end-byte LSN and retaining it in the simulated log image. It returns
// the batch's end LSN.
func (l *Log) AppendBatch(recs []*Record) int64 {
	var total int64
	for _, r := range recs {
		total += r.Bytes
	}
	end := l.Append(total)
	if l.Recording {
		pos := end - total
		for _, r := range recs {
			pos += r.Bytes
			r.LSN = pos
			l.records = append(l.records, r)
		}
	}
	return end
}

// Records returns the in-memory log image (records appended so far,
// durable or not). Recovery reads it after TruncateAtFlushed.
func (l *Log) Records() []*Record { return l.records }

// BoundaryStraddlesCommit reports whether the flushed boundary currently
// leaves some transaction partially durable: at least one of its update
// records is flushed while its commit record is appended but not yet
// durable. A crash at such an instant is guaranteed to leave an ARIES
// loser — a transaction restart must roll back with logged undo work.
// Whether any given flush lands this way depends on where the boundary
// falls inside the commit lumps, so crash plans that need undo work to
// exist (the during-undo point) poll this instead of trusting luck.
// Recording only. A transaction's records are contiguous in the image
// (they are appended as one batch at commit), which bounds the walk.
func (l *Log) BoundaryStraddlesCommit() bool {
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].LSN > l.flushedLSN })
	if i == 0 || i >= len(l.records) {
		return false
	}
	id := l.records[i].Txn
	if id == 0 {
		return false // checkpoint records belong to no transaction
	}
	durableUpdate := false
	for j := i - 1; j >= 0 && l.records[j].Txn == id; j-- {
		if l.records[j].Type == RecUpdate {
			durableUpdate = true
			break
		}
	}
	if !durableUpdate {
		return false
	}
	for j := i; j < len(l.records) && l.records[j].Txn == id; j++ {
		if l.records[j].Type == RecCommit {
			return true
		}
	}
	return false
}

// NextSeq hands out the next global op sequence number.
func (l *Log) NextSeq() int64 {
	l.opSeq++
	return l.opSeq
}

// TruncateAtFlushed models the crash: every record past the flushed LSN
// never reached the device and is dropped from the durable image (its
// LSN is zeroed so stale references cannot resurrect it). The flush
// boundary can land mid-record; the durable image ends at the last
// complete record and the torn bytes past it are discarded — as real
// WALs drop a torn tail record at restart — so both the append position
// and the flushed LSN rewind to that record's end. (Replication re-ship
// depends on this: records re-appended after the truncation land at
// byte-identical LSNs to the primary's.) It returns the number of
// records lost.
func (l *Log) TruncateAtFlushed() int {
	if !l.Recording {
		l.appendedLSN = l.flushedLSN
		return 0
	}
	n := len(l.records)
	keep := n
	for keep > 0 && l.records[keep-1].LSN > l.flushedLSN {
		keep--
		l.records[keep].LSN = 0
	}
	lost := n - keep
	l.records = l.records[:keep]
	var end int64
	if keep > 0 {
		end = l.records[keep-1].LSN
	}
	l.appendedLSN = end
	if l.flushedLSN > end {
		l.flushedLSN = end
	}
	return lost
}

// Crash freezes the log at the crash instant: the writer exits without
// completing its in-flight flush (a batch handed to the device but not
// yet acknowledged is lost), and parked committers are woken to observe
// the not-durable outcome.
func (l *Log) Crash() {
	l.crashed = true
	l.stopped = true
	l.writerIdle.WakeAll(l.sm)
	l.commitQ.WakeAll(l.sm)
	l.streamQ.WakeAll(l.sm)
}

// Restart clears the stop/crash flags and spawns a fresh log writer, so
// recovery can flush CLRs through the device under the same throttles as
// regular flushes.
func (l *Log) Restart() {
	l.stopped = false
	l.crashed = false
	l.Start()
}
