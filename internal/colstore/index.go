package colstore

import (
	"repro/internal/storage"
)

// NominalSegmentRows is the nominal rowgroup size (SQL Server compresses
// rowgroups of up to 2^20 rows).
const NominalSegmentRows = 1 << 20

// MinNominalRatio floors the compression ratio used for *nominal sizing*.
// The synthetic generator's columns compress better than real TPC data
// (tiny dictionaries, regular sequences); real columnstores land around
// 2.5-3x on these schemas (the paper's Table 2: 128 GB for ~330 GB raw at
// TPC-H SF 300). Measured ratios below the floor are still reported by
// Segment.Ratio; only on-disk sizing is floored.
const MinNominalRatio = 0.50

func nominalRatio(r float64) float64 {
	if r < MinNominalRatio {
		return MinNominalRatio
	}
	return r
}

// Index is a columnstore index over a table: per-column compressed
// segments plus an uncompressed delta store for trickle inserts (the
// updatable nonclustered columnstore of the HTAP configuration).
type Index struct {
	Table *storage.Table
	Cols  []int // column ordinals included in the index (all, typically)
	File  *storage.File

	segRowsActual int
	segs          [][]*Segment // [colIdx][segment]

	// Delta store: row-major recent inserts not yet compressed.
	delta        [][]int64
	deltaNominal int64
}

// Build compresses the table's current contents into a columnstore index.
// The per-segment actual row count is the nominal rowgroup size divided by
// the table's replication factor, so segment *boundaries* match nominal
// rowgroup boundaries.
func Build(id int, tbl *storage.Table, cols []int) *Index {
	segRows := int(NominalSegmentRows / tbl.K)
	if segRows < 64 {
		segRows = 64
	}
	ix := &Index{
		Table:         tbl,
		Cols:          cols,
		segRowsActual: segRows,
		File:          &storage.File{ID: id, Name: tbl.Name + ".ncci"},
	}
	n := int(tbl.ActualRows())
	ix.segs = make([][]*Segment, len(cols))
	for ci, col := range cols {
		data := tbl.Col(col)
		for start := 0; start < n; start += segRows {
			end := start + segRows
			if end > n {
				end = n
			}
			ix.segs[ci] = append(ix.segs[ci], Encode(data[start:end]))
		}
	}
	ix.refreshSize()
	return ix
}

// refreshSize recomputes the nominal compressed size from measured
// per-segment compression ratios.
func (ix *Index) refreshSize() {
	var nominal int64
	for ci, col := range ix.Cols {
		w := int64(ix.Table.Cols[col].Width)
		for _, s := range ix.segs[ci] {
			segNominalRaw := int64(s.N) * ix.Table.K * w
			nominal += int64(float64(segNominalRaw) * nominalRatio(s.Ratio()))
		}
	}
	// Delta store is uncompressed row-major pages.
	nominal += ix.deltaNominal * ix.Table.RowWidth()
	ix.File.Pages = (nominal + storage.PageBytes - 1) / storage.PageBytes
}

// Segments returns the number of segments (rowgroups).
func (ix *Index) Segments() int {
	if len(ix.segs) == 0 {
		return 0
	}
	return len(ix.segs[0])
}

// SegRowsActual returns the actual rows per full segment.
func (ix *Index) SegRowsActual() int { return ix.segRowsActual }

// Segment returns the compressed segment for a column ordinal (position
// in Cols) and segment index.
func (ix *Index) Segment(colPos, seg int) *Segment { return ix.segs[colPos][seg] }

// ColPos returns the position of table column `col` within the index, or
// -1 if the column is not indexed.
func (ix *Index) ColPos(col int) int {
	for i, c := range ix.Cols {
		if c == col {
			return i
		}
	}
	return -1
}

// NominalBytes returns the nominal compressed index size.
func (ix *Index) NominalBytes() int64 { return ix.File.Bytes() }

// SegmentNominalBytes returns the nominal compressed bytes of one
// column's segment — the I/O cost of scanning it at paper scale.
func (ix *Index) SegmentNominalBytes(colPos, seg int) int64 {
	s := ix.segs[colPos][seg]
	w := int64(ix.Table.Cols[ix.Cols[colPos]].Width)
	return int64(float64(int64(s.N)*ix.Table.K*w) * nominalRatio(s.Ratio()))
}

// AppendDelta adds one nominal row to the delta store (an OLTP insert
// maintained into the columnstore). Actual rows are materialized at the
// table's replication factor, mirroring Table.InsertNominal.
func (ix *Index) AppendDelta(row []int64) {
	ix.deltaNominal++
	if ix.deltaNominal%ix.Table.K == 0 || len(ix.delta) == 0 {
		r := make([]int64, len(ix.Cols))
		for i, c := range ix.Cols {
			if c < len(row) {
				r[i] = row[c]
			}
		}
		ix.delta = append(ix.delta, r)
	}
	ix.refreshSize()
}

// DeltaNominalRows returns the nominal delta-store cardinality.
func (ix *Index) DeltaNominalRows() int64 { return ix.deltaNominal }

// DeltaRows returns the actual delta rows (for scans).
func (ix *Index) DeltaRows() [][]int64 { return ix.delta }

// CompressDelta simulates the tuple mover: when the delta store reaches a
// nominal rowgroup, its rows are compressed into new segments. Returns
// true if a rowgroup was closed.
func (ix *Index) CompressDelta() bool {
	if ix.deltaNominal < NominalSegmentRows || len(ix.delta) == 0 {
		return false
	}
	for ci := range ix.Cols {
		col := make([]int64, len(ix.delta))
		for ri, r := range ix.delta {
			col[ri] = r[ci]
		}
		ix.segs[ci] = append(ix.segs[ci], Encode(col))
	}
	ix.delta = nil
	ix.deltaNominal = 0
	ix.refreshSize()
	return true
}

// AvgRatio returns the size-weighted average compression ratio.
func (ix *Index) AvgRatio() float64 {
	var raw, comp float64
	for ci := range ix.Cols {
		for _, s := range ix.segs[ci] {
			raw += float64(s.RawBytes)
			comp += float64(s.CompressedBytes())
		}
	}
	if raw == 0 {
		return 1
	}
	r := comp / raw
	if r > 1 {
		r = 1
	}
	return r
}
