package colstore

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		s := Encode(vals)
		got := s.Decode(nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingSelection(t *testing.T) {
	// Constant column: zero-width packing is optimal (0 payload bits).
	constant := make([]int64, 10000)
	for i := range constant {
		constant[i] = 42
	}
	if s := Encode(constant); s.CompressedBytes() > 128 {
		t.Fatalf("constant column compressed to %d bytes", s.CompressedBytes())
	}
	// Long runs of two distant values: RLE wins (packing needs 40 bits,
	// dictionary needs a bit per value).
	runs := make([]int64, 10000)
	for i := 5000; i < 10000; i++ {
		runs[i] = 1_000_000_000_000
	}
	if s := Encode(runs); s.Enc != EncRLE {
		t.Fatalf("run column encoded as %v", s.Enc)
	}
	// Low-cardinality scattered column: dictionary wins over packing when
	// values are large but few.
	lowCard := make([]int64, 10000)
	for i := range lowCard {
		lowCard[i] = int64(i%7) * 1_000_000_007
	}
	if s := Encode(lowCard); s.Enc != EncDict {
		t.Fatalf("low-cardinality column encoded as %v", s.Enc)
	}
	// Dense sequential ints: packing wins.
	seq := make([]int64, 10000)
	g := sim.NewRNG(5)
	for i := range seq {
		seq[i] = int64(i) + g.Int64n(3)
	}
	if s := Encode(seq); s.Enc != EncPacked {
		t.Fatalf("sequential column encoded as %v", s.Enc)
	}
}

func TestCompressionRatios(t *testing.T) {
	constant := make([]int64, 100000)
	s := Encode(constant)
	if r := s.Ratio(); r > 0.001 {
		t.Fatalf("constant column ratio = %f", r)
	}
	g := sim.NewRNG(7)
	random := make([]int64, 100000)
	for i := range random {
		random[i] = g.Int63()
	}
	s = Encode(random)
	if r := s.Ratio(); r < 0.9 {
		t.Fatalf("incompressible column ratio = %f", r)
	}
}

func TestZoneMaps(t *testing.T) {
	s := Encode([]int64{5, 2, 9, 7})
	if s.MinVal != 2 || s.MaxVal != 9 || s.N != 4 {
		t.Fatalf("zone map: min=%d max=%d n=%d", s.MinVal, s.MaxVal, s.N)
	}
	empty := Encode(nil)
	if empty.N != 0 || len(empty.Decode(nil)) != 0 {
		t.Fatal("empty segment wrong")
	}
}

func testTable(k int64, rows int) *storage.Table {
	sch := storage.NewSchema("t",
		storage.Column{Name: "a", Type: storage.TInt, Width: 8},
		storage.Column{Name: "b", Type: storage.TInt, Width: 4},
	)
	tb := storage.NewTable(1, sch, k)
	g := sim.NewRNG(11)
	for i := 0; i < rows; i++ {
		tb.AppendLoad([]int64{int64(i), g.Int64n(100)})
	}
	return tb
}

func TestIndexBuildAndScan(t *testing.T) {
	tb := testTable(1000, 500)
	ix := Build(100, tb, []int{0, 1})
	if ix.Segments() < 1 {
		t.Fatal("no segments")
	}
	// Decoding all segments of column 0 reproduces the column.
	var got []int64
	for sg := 0; sg < ix.Segments(); sg++ {
		got = append(got, ix.Segment(0, sg).Decode(nil)...)
	}
	want := tb.Col(0)
	if len(got) != len(want) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d != %d", i, got[i], want[i])
		}
	}
	if ix.ColPos(1) != 1 || ix.ColPos(5) != -1 {
		t.Fatal("ColPos wrong")
	}
}

func TestIndexNominalSizeReflectsCompression(t *testing.T) {
	tb := testTable(1000, 500)
	ix := Build(100, tb, []int{0, 1})
	nominalRaw := tb.NominalRows() * (8 + 4)
	if ix.NominalBytes() >= nominalRaw {
		t.Fatalf("compressed nominal %d should be under raw %d", ix.NominalBytes(), nominalRaw)
	}
	if ix.NominalBytes() <= 0 {
		t.Fatal("nominal size zero")
	}
	if r := ix.AvgRatio(); r <= 0 || r > 1 {
		t.Fatalf("avg ratio = %f", r)
	}
}

func TestDeltaStoreAndTupleMover(t *testing.T) {
	tb := testTable(1<<18, 4) // K = 262144 so 4 nominal rowgroups fit quickly
	ix := Build(100, tb, []int{0, 1})
	before := ix.Segments()
	row := []int64{7, 8}
	for i := int64(0); i < NominalSegmentRows; i++ {
		ix.deltaNominal++ // bulk-simulate trickle without per-row refresh
	}
	ix.delta = append(ix.delta, []int64{7, 8})
	if !ix.CompressDelta() {
		t.Fatal("tuple mover did not run at rowgroup boundary")
	}
	if ix.Segments() != before+1 {
		t.Fatalf("segments = %d, want %d", ix.Segments(), before+1)
	}
	if ix.DeltaNominalRows() != 0 {
		t.Fatal("delta not cleared")
	}
	// Normal AppendDelta path grows nominal size.
	sz := ix.NominalBytes()
	for i := 0; i < 10; i++ {
		ix.AppendDelta(row)
	}
	if ix.DeltaNominalRows() != 10 {
		t.Fatalf("delta rows = %d", ix.DeltaNominalRows())
	}
	if ix.NominalBytes() <= sz {
		t.Fatal("delta inserts should grow nominal size")
	}
}

func TestSegmentNominalBytes(t *testing.T) {
	tb := testTable(100, 1000)
	ix := Build(100, tb, []int{0, 1})
	var total int64
	for sg := 0; sg < ix.Segments(); sg++ {
		b := ix.SegmentNominalBytes(0, sg)
		if b <= 0 {
			t.Fatalf("segment %d nominal bytes = %d", sg, b)
		}
		total += b
	}
	rawCol := tb.NominalRows() * 8
	if total >= rawCol {
		t.Fatalf("column compressed %d >= raw %d", total, rawCol)
	}
}
