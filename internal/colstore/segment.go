// Package colstore implements columnar storage: compressed column
// segments (bit-packed, run-length, or dictionary encoded, whichever is
// smallest per segment) and an updatable nonclustered columnstore index
// with a delta store — the HTAP design of the paper's Table 1.
//
// Compression is performed for real on the actual (scaled-down) values;
// the measured compression ratio then scales the nominal raw bytes to get
// the nominal on-disk segment size, so analytical I/O volumes reflect the
// compressibility of the data rather than a fixed constant.
package colstore

import (
	"fmt"
	"math/bits"
)

// Encoding identifies a segment's physical encoding.
type Encoding int

// Encodings.
const (
	EncPacked Encoding = iota // frame-of-reference bit packing
	EncRLE                    // run-length encoding
	EncDict                   // dictionary + bit-packed codes
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case EncPacked:
		return "PACKED"
	case EncRLE:
		return "RLE"
	case EncDict:
		return "DICT"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// Segment is one compressed column segment with a zone map.
type Segment struct {
	N        int
	Enc      Encoding
	MinVal   int64
	MaxVal   int64
	RawBytes int64 // uncompressed size (N * 8)

	// EncPacked / EncDict payload.
	packed   []uint64
	bitWidth uint
	dict     []int64

	// EncRLE payload.
	runVals   []int64
	runCounts []int32
}

// packInts bit-packs vals-min into width-bit lanes.
func packInts(vals []int64, min int64, width uint) []uint64 {
	if width == 0 {
		return nil
	}
	out := make([]uint64, (uint(len(vals))*width+63)/64)
	bitPos := uint(0)
	for _, v := range vals {
		u := uint64(v - min)
		w := bitPos / 64
		off := bitPos % 64
		out[w] |= u << off
		if off+width > 64 {
			out[w+1] |= u >> (64 - off)
		}
		bitPos += width
	}
	return out
}

// unpackInts reverses packInts.
func unpackInts(packed []uint64, n int, min int64, width uint, dst []int64) []int64 {
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if width == 0 {
		for i := range dst {
			dst[i] = min
		}
		return dst
	}
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	bitPos := uint(0)
	for i := 0; i < n; i++ {
		w := bitPos / 64
		off := bitPos % 64
		u := packed[w] >> off
		if off+width > 64 {
			u |= packed[w+1] << (64 - off)
		}
		dst[i] = min + int64(u&mask)
		bitPos += width
	}
	return dst
}

// unpackIntsRange unpacks logical rows [lo,hi) without decoding the
// prefix: the bit cursor starts at lo*width.
func unpackIntsRange(packed []uint64, lo, hi int, min int64, width uint, dst []int64) []int64 {
	n := hi - lo
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if width == 0 {
		for i := range dst {
			dst[i] = min
		}
		return dst
	}
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	bitPos := uint(lo) * width
	for i := 0; i < n; i++ {
		w := bitPos / 64
		off := bitPos % 64
		u := packed[w] >> off
		if off+width > 64 {
			u |= packed[w+1] << (64 - off)
		}
		dst[i] = min + int64(u&mask)
		bitPos += width
	}
	return dst
}

func widthFor(span uint64) uint {
	if span == 0 {
		return 0
	}
	return uint(bits.Len64(span))
}

// Encode compresses vals into a segment, choosing the smallest of
// frame-of-reference packing, RLE, and dictionary encoding.
func Encode(vals []int64) *Segment {
	if len(vals) == 0 {
		return &Segment{}
	}
	min, max := vals[0], vals[0]
	runs := 1
	uniq := make(map[int64]int64)
	for i, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if i > 0 && v != vals[i-1] {
			runs++
		}
		if len(uniq) <= 4096 {
			if _, ok := uniq[v]; !ok {
				uniq[v] = int64(len(uniq))
			}
		}
	}
	s := &Segment{
		N:        len(vals),
		MinVal:   min,
		MaxVal:   max,
		RawBytes: int64(len(vals)) * 8,
	}

	packedWidth := widthFor(uint64(max - min))
	packedBytes := int64(packedWidth) * int64(len(vals)) / 8

	rleBytes := int64(runs) * 12 // 8B value + 4B count

	dictBytes := int64(1) << 62
	var dictWidth uint
	if len(uniq) <= 4096 {
		dictWidth = widthFor(uint64(len(uniq) - 1))
		dictBytes = int64(len(uniq))*8 + int64(dictWidth)*int64(len(vals))/8
	}

	switch {
	case rleBytes <= packedBytes && rleBytes <= dictBytes:
		s.Enc = EncRLE
		for i := 0; i < len(vals); {
			j := i
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			s.runVals = append(s.runVals, vals[i])
			s.runCounts = append(s.runCounts, int32(j-i))
			i = j
		}
	case dictBytes < packedBytes:
		s.Enc = EncDict
		s.dict = make([]int64, len(uniq))
		for v, code := range uniq {
			s.dict[code] = v
		}
		codes := make([]int64, len(vals))
		for i, v := range vals {
			codes[i] = uniq[v]
		}
		s.bitWidth = dictWidth
		s.packed = packInts(codes, 0, dictWidth)
	default:
		s.Enc = EncPacked
		s.bitWidth = packedWidth
		s.packed = packInts(vals, min, packedWidth)
	}
	return s
}

// Decode decompresses the segment into dst (reusing capacity) and returns
// the value slice.
func (s *Segment) Decode(dst []int64) []int64 {
	switch s.Enc {
	case EncRLE:
		if cap(dst) < s.N {
			dst = make([]int64, s.N)
		}
		dst = dst[:s.N]
		pos := 0
		for i, v := range s.runVals {
			for c := int32(0); c < s.runCounts[i]; c++ {
				dst[pos] = v
				pos++
			}
		}
		return dst
	case EncDict:
		codes := unpackInts(s.packed, s.N, 0, s.bitWidth, nil)
		if cap(dst) < s.N {
			dst = make([]int64, s.N)
		}
		dst = dst[:s.N]
		for i, c := range codes {
			dst[i] = s.dict[c]
		}
		return dst
	default:
		return unpackInts(s.packed, s.N, s.MinVal, s.bitWidth, dst)
	}
}

// DecodeRange decompresses rows [lo,hi) into dst (reusing capacity) and
// returns the value slice — the batch-at-a-time decode path, equal to
// Decode(nil)[lo:hi] for every encoding.
func (s *Segment) DecodeRange(lo, hi int, dst []int64) []int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > s.N {
		hi = s.N
	}
	if hi <= lo {
		return dst[:0]
	}
	n := hi - lo
	switch s.Enc {
	case EncRLE:
		if cap(dst) < n {
			dst = make([]int64, n)
		}
		dst = dst[:n]
		pos := 0 // logical row at the start of the current run
		out := 0
		for i, v := range s.runVals {
			runEnd := pos + int(s.runCounts[i])
			if runEnd > lo {
				from := pos
				if from < lo {
					from = lo
				}
				to := runEnd
				if to > hi {
					to = hi
				}
				for r := from; r < to; r++ {
					dst[out] = v
					out++
				}
				if to == hi {
					break
				}
			}
			pos = runEnd
		}
		return dst
	case EncDict:
		codes := unpackIntsRange(s.packed, lo, hi, 0, s.bitWidth, nil)
		if cap(dst) < n {
			dst = make([]int64, n)
		}
		dst = dst[:n]
		for i, c := range codes {
			dst[i] = s.dict[c]
		}
		return dst
	default:
		return unpackIntsRange(s.packed, lo, hi, s.MinVal, s.bitWidth, dst)
	}
}

// CompressedBytes returns the actual compressed payload size.
func (s *Segment) CompressedBytes() int64 {
	const header = 64
	switch s.Enc {
	case EncRLE:
		return header + int64(len(s.runVals))*12
	case EncDict:
		return header + int64(len(s.dict))*8 + int64(len(s.packed))*8
	default:
		return header + int64(len(s.packed))*8
	}
}

// Ratio returns compressed/raw (<= 1 for compressible data).
func (s *Segment) Ratio() float64 {
	if s.RawBytes == 0 {
		return 1
	}
	r := float64(s.CompressedBytes()) / float64(s.RawBytes)
	if r > 1 {
		r = 1
	}
	return r
}
