package harness

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload/asdb"
	"repro/internal/workload/htap"
	"repro/internal/workload/tpce"
)

// ReplModes is the default commit-mode axis of the replication sweep.
var ReplModes = []repl.Mode{repl.ModeAsync, repl.ModeQuorum, repl.ModeSync}

// ReplReplicaCounts is the default replica-count axis.
var ReplReplicaCounts = []int{1, 2}

// buildReplicated boots a replicated ASDB topology: a primary armed for
// typed-record logging (the replication stream) with rcfg.Replicas
// standby machines on the same sim clock. The storage knobs apply to
// every node — the paper's bandwidth throttle hits the replica WAL
// devices the commit modes wait on, not just the primary. Fault
// injection is wired here rather than in newServer so the replication
// axes can target the cluster.
func buildReplicated(sf int, opt Options, k Knobs, rcfg repl.Config, ro engine.RecoveryOptions) (*engine.Server, *repl.Cluster, *asdb.Dataset) {
	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	acfg := asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: opt.Seed}
	d := asdb.Build(acfg)
	kk := k
	kk.Faults = nil // wired below, with the cluster as a target
	srv := newServer(opt, kk)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.ArmRecovery(ro)
	rcfg.NewImage = func() *engine.Database { return asdb.Build(acfg).DB }
	cl := repl.New(srv, rcfg)
	for _, s := range cl.Standbys {
		if k.ReadLimitMBps > 0 {
			s.Srv.BlkIO.SetReadLimit(k.ReadLimitMBps)
		}
		if k.WriteLimitMBps > 0 {
			s.Srv.BlkIO.SetWriteLimit(k.WriteLimitMBps)
		}
	}
	if k.Faults != nil && k.Faults.Enabled() {
		inj := fault.New(srv.Sim, *k.Faults, fault.Targets{
			Dev: srv.Dev, Log: srv.Log, BP: srv.BP, CPUs: srv.CPUs,
			Grants: srv, Repl: cl, Ctr: srv.Ctr,
		})
		inj.Start()
		srv.AddStopHook(inj.Stop)
	}
	srv.Start()
	cl.Start()
	return srv, cl, d
}

// quiesceAndCheck drains the replication pipeline after the drivers have
// exited cleanly (every transaction ended: committed durable or aborted
// and undone) and compares primary and standby state digests.
func quiesceAndCheck(srv *engine.Server, cl *repl.Cluster, from sim.Time) (bool, string) {
	deadline := from + sim.Time(600*sim.Second)
	for t := from; t < deadline && !cl.Quiesced(); t += sim.Time(sim.Second) {
		srv.Sim.Run(t + sim.Time(sim.Second))
	}
	quiesced := cl.Quiesced()
	errStr := ""
	if !quiesced {
		errStr = "replication pipeline did not quiesce"
	} else if err := cl.CheckDigests(); err != nil {
		errStr = err.Error()
	}
	return quiesced, errStr
}

// ReplicationPoint is one (commit mode, storage bandwidth, replica
// count) cell of the replication sweep.
type ReplicationPoint struct {
	Mode          repl.Mode
	Replicas      int
	BandwidthMBps float64

	TPS         float64
	CommitAckMs float64 // mean sync/quorum ack wait per commit
	MaxLagKB    float64 // worst sampled replica lag
	ShippedMB   float64
	AppliedTxns int64
	Unacked     int64 // commits durable locally but never acknowledged

	// Telemetry is the primary's registry snapshot (engine series plus the
	// cluster's repl series) and CommitSpans the traced commits' cross-node
	// span trees; both nil/empty unless Options.Telemetry armed the cell.
	Telemetry   *telemetry.Snapshot
	CommitSpans []*trace.Trace

	Err string // digest mismatch / quiesce failure
}

// ReplicationResult is the commit-mode response surface.
type ReplicationResult struct {
	SF     int
	Points []ReplicationPoint
}

// Replication sweeps the ASDB write mix across commit modes, storage
// bandwidths, and replica counts: the commit path crosses the simulated
// link and the replica WAL devices, so sync/quorum latency responds to
// the same storage throttle the paper's sensitivity sweeps use. Every
// cell verifies primary/standby digest equality at quiesce. Nil axes
// take the defaults (ReplModes, RecoveryBandwidths, ReplReplicaCounts).
// Cells boot isolated simulations: results are bit-identical at any
// opt.Parallel.
func Replication(sf int, opt Options, modes []repl.Mode, bandwidths []float64, replicas []int) ReplicationResult {
	if modes == nil {
		modes = ReplModes
	}
	if bandwidths == nil {
		bandwidths = RecoveryBandwidths
	}
	if replicas == nil {
		replicas = ReplReplicaCounts
	}
	type cell struct {
		mode repl.Mode
		bw   float64
		n    int
	}
	var cells []cell
	for _, n := range replicas {
		for _, bw := range bandwidths {
			for _, m := range modes {
				cells = append(cells, cell{m, bw, n})
			}
		}
	}
	points := Sweep(opt.Parallel, len(cells), func(i int) ReplicationPoint {
		c := cells[i]
		k := Knobs{ReadLimitMBps: c.bw, WriteLimitMBps: c.bw}
		rcfg := repl.Config{
			Mode: c.mode, Quorum: (c.n + 1) / 2, Replicas: c.n,
			TraceCommits: opt.Telemetry,
		}
		srv, cl, d := buildReplicated(sf, opt, k, rcfg, engine.RecoveryOptions{})
		clients := opt.Users
		if clients <= 0 {
			clients = 128
		}
		end := sim.Time(opt.Warmup + opt.Measure)
		var st asdb.Stats
		asdb.RunClients(srv, d, clients, asdb.DefaultMix(), end, &st)
		srv.Sim.Run(sim.Time(opt.Warmup))
		before := *srv.Ctr
		srv.Sim.Run(end)
		delta := srv.Ctr.Sub(before)
		quiesced, errStr := quiesceAndCheck(srv, cl, end)
		srv.Stop()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
		cl.Shutdown()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(10*sim.Second))
		_ = quiesced

		secs := opt.Measure.Seconds()
		p := ReplicationPoint{
			Mode: c.mode, Replicas: c.n, BandwidthMBps: c.bw,
			TPS:       float64(delta.TxnCommits) / secs,
			MaxLagKB:  float64(cl.MaxLagBytes()) / 1024,
			ShippedMB: float64(srv.Ctr.ReplShippedBytes) / 1e6,
			Unacked:   srv.Ctr.ReplUnackedCommits,
			Err:       errStr,
		}
		for _, s := range cl.Standbys {
			p.AppliedTxns += s.Srv.Ctr.ReplAppliedTxns
		}
		if delta.TxnCommits > 0 {
			p.CommitAckMs = float64(delta.WaitNs[metrics.WaitReplAck]) / float64(delta.TxnCommits) / 1e6
		}
		p.Telemetry = srv.Tel.Snapshot()
		p.CommitSpans = cl.CommitTraces()
		return p
	}, opt.Progress)
	return ReplicationResult{SF: sf, Points: points}
}

// String renders the sweep as an aligned table.
func (r ReplicationResult) String() string {
	s := fmt.Sprintf("replication asdb sf=%d (commit mode x storage bandwidth x replicas)\n", r.SF)
	s += fmt.Sprintf("%-7s %4s %8s %9s %10s %10s %10s %9s %8s %s\n",
		"mode", "repl", "bw-MB/s", "tps", "ack-ms", "maxlag-KB", "shipped-MB", "applied", "unacked", "err")
	for _, p := range r.Points {
		s += fmt.Sprintf("%-7s %4d %8.0f %9.1f %10.3f %10.1f %10.2f %9d %8d %s\n",
			p.Mode, p.Replicas, p.BandwidthMBps, p.TPS, p.CommitAckMs,
			p.MaxLagKB, p.ShippedMB, p.AppliedTxns, p.Unacked, p.Err)
	}
	return s
}

// Err returns the first cell error, nil when every cell verified.
func (r ReplicationResult) Err() error {
	for _, p := range r.Points {
		if p.Err != "" {
			return fmt.Errorf("replication mode=%s repl=%d bw=%.0f: %s", p.Mode, p.Replicas, p.BandwidthMBps, p.Err)
		}
	}
	return nil
}

// FailoverCell is one crash → promotion → verification execution,
// with a point-in-time restore verified from the same run's archive.
type FailoverCell struct {
	Mode     repl.Mode
	Replicas int

	Commits  int64
	Failover repl.FailoverReport
	PITR     repl.PITRReport
	Err      string
}

// FailoverResult is the failover/RTO sweep.
type FailoverResult struct {
	SF    int
	Cells []FailoverCell
}

// Failover crashes a replicated primary mid-run at a seeded point,
// promotes the most caught-up standby, and verifies the failover
// invariants: the promoted image equals a pure replay of its durable
// log (committed-durable preserved, uncommitted undone) and no
// acknowledged commit is lost. The same run archives WAL segments and
// incremental snapshots; after promotion a point-in-time restore to a
// mid-run commit LSN is verified against an independent replay of the
// primary's durable log prefix. modes nil uses ReplModes.
func Failover(sf int, opt Options, modes []repl.Mode) FailoverResult {
	if modes == nil {
		modes = ReplModes
	}
	crashAt := opt.Warmup + opt.Measure
	cells := Sweep(opt.Parallel, len(modes), func(i int) FailoverCell {
		mode := modes[i]
		out := FailoverCell{Mode: mode, Replicas: 2}
		ro := engine.RecoveryOptions{
			MaxFlushBytes: 4 << 10,
			Crash:         fault.CrashPlan{Point: fault.CrashAtTime, At: crashAt},
		}
		rcfg := repl.Config{
			Mode: mode, Quorum: 1, Replicas: 2,
			ArchiveSegBytes: 32 << 10, SnapshotEvery: 2,
		}
		srv, cl, d := buildReplicated(sf, opt, Knobs{WriteLimitMBps: 50}, rcfg, ro)
		clients := opt.Users
		if clients <= 0 {
			clients = 128
		}
		until := driverHorizon(opt)
		var st asdb.Stats
		asdb.RunClients(srv, d, clients, asdb.DefaultMix(), until, &st)

		var frep *repl.FailoverReport
		var prep *repl.PITRReport
		var pitrErr error
		srv.Sim.Spawn("failover-driver", func(p *sim.Proc) {
			for !srv.Crashed() && p.Now() < until {
				p.Sleep(10 * sim.Millisecond)
			}
			if !srv.Crashed() {
				return
			}
			frep = cl.Failover(p)
			if cl.Arch != nil {
				// Restore to the commit nearest the middle of the archived
				// stream, charging restore I/O to the promoted node's device.
				lsn := cl.CommitLSNNear(0.5)
				if lsn > 0 && lsn <= cl.Arch.Horizon() {
					_, prep, pitrErr = cl.Arch.RecoverTo(p, cl.PromotedStandby().Srv.Dev, lsn)
					if pitrErr == nil {
						pitrErr = cl.Arch.VerifyPITR(prep)
					}
				}
			}
		})
		srv.Sim.Run(until + sim.Time(600*sim.Second))
		cl.Shutdown()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(10*sim.Second))

		out.Commits = srv.Ctr.TxnCommits
		if frep == nil {
			out.Err = "primary crash never fired"
			return out
		}
		out.Failover = *frep
		if err := cl.VerifyFailover(frep); err != nil {
			out.Err = err.Error()
			return out
		}
		if pitrErr != nil {
			out.Err = "pitr: " + pitrErr.Error()
			return out
		}
		if prep == nil {
			out.Err = "pitr restore did not run"
			return out
		}
		out.PITR = *prep
		return out
	}, opt.Progress)
	return FailoverResult{SF: sf, Cells: cells}
}

// String renders the sweep as an aligned table.
func (r FailoverResult) String() string {
	s := fmt.Sprintf("failover asdb sf=%d (crash -> promotion -> PITR)\n", r.SF)
	s += fmt.Sprintf("%-7s %4s %8s %8s %10s %10s %6s %9s %7s %9s %9s %s\n",
		"mode", "repl", "commits", "rto-ms", "crash-lsn", "promo-lsn", "acked",
		"lost-ack", "lost", "pitr-lsn", "pitr-txn", "err")
	for _, c := range r.Cells {
		f := c.Failover
		s += fmt.Sprintf("%-7s %4d %8d %8.1f %10d %10d %6d %9d %7d %9d %9d %s\n",
			c.Mode, c.Replicas, c.Commits, float64(f.RTO)/1e6, f.PrimaryLSN, f.PromotedLSN,
			f.AckedCommits, f.LostAckedCommits, f.LostCommits, c.PITR.LandedLSN, c.PITR.Txns, c.Err)
	}
	return s
}

// Err returns the first failed cell, nil when the whole sweep verified.
func (r FailoverResult) Err() error {
	for _, c := range r.Cells {
		if c.Err != "" {
			return fmt.Errorf("failover mode=%s: %s", c.Mode, c.Err)
		}
	}
	return nil
}

// HTAPRoutedResult measures the hybrid workload with its analytical half
// routed to read replicas under a staleness bound.
type HTAPRoutedResult struct {
	OLTPTps     float64
	DSSQps      float64
	ReplicaFrac float64 // fraction of analytical queries served by standbys
	MaxLagKB    float64
	Err         string
}

// ReplicatedHTAP runs the paper's hybrid workload on a replicated
// topology: the 99-user transactional component on the primary, the
// analytical user routed per query to the most caught-up standby when
// its apply lag fits the staleness bound (falling back to the primary
// when replicas trail too far). Standby images carry the updatable
// columnstore, so routed analytical scans exercise the replica's own
// buffer pool and device, and the cell verifies digest equality at
// quiesce — the columnstore delta replay path included.
func ReplicatedHTAP(customers int, opt Options, k Knobs, rcfg repl.Config) HTAPRoutedResult {
	density := opt.Density / 25
	if density < 2 {
		density = 2
	}
	hcfg := htap.Config{Customers: customers, ActualTradesPerCustomer: density, Seed: opt.Seed}
	d := htap.Build(hcfg)
	kk := k
	kk.Faults = nil
	srv := newServer(opt, kk)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.ArmRecovery(engine.RecoveryOptions{})
	byDB := make(map[*engine.Database]*tpce.Dataset)
	rcfg.NewImage = func() *engine.Database {
		dd := htap.Build(hcfg)
		byDB[dd.DB] = dd
		return dd.DB
	}
	cl := repl.New(srv, rcfg)
	srv.Start()
	cl.Start()

	users := opt.Users
	if users <= 0 {
		users = 99
	}
	end := sim.Time(opt.Warmup + opt.Measure)
	var st tpce.Stats
	tpce.RunUsers(srv, d, users, tpce.DefaultMix(), end, &st)
	var passes, passesWarm int64
	srv.Sim.Spawn("htap-analyst", func(p *sim.Proc) {
		g := srv.Sim.RNG().Fork()
		for qn := 0; !srv.Stopped() && p.Now() < end; qn++ {
			tsrv, td := srv, d
			if node := cl.RouteRead(0); node >= 0 {
				s := cl.Standbys[node]
				tsrv, td = s.Srv, byDB[s.DB]
			}
			// The read may route to a standby: open the session on
			// whichever server serves it (opening is free — no RNG draw).
			sess := tsrv.Open(p)
			res := sess.Query(td.AnalyticalQuery(qn, g), engine.QueryOptions{})
			sess.Close()
			if res.Err == nil {
				passes++
			}
		}
	})
	srv.Sim.Run(sim.Time(opt.Warmup))
	before := *srv.Ctr
	passesWarm = passes
	routedWarm := cl.RoutedReplica + cl.RoutedPrimary
	replicaWarm := cl.RoutedReplica
	srv.Sim.Run(end)
	delta := srv.Ctr.Sub(before)
	_, errStr := quiesceAndCheck(srv, cl, end)
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
	cl.Shutdown()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(10*sim.Second))

	secs := opt.Measure.Seconds()
	out := HTAPRoutedResult{
		OLTPTps:  float64(delta.TxnCommits) / secs,
		DSSQps:   float64(passes-passesWarm) / secs,
		MaxLagKB: float64(cl.MaxLagBytes()) / 1024,
		Err:      errStr,
	}
	if routed := (cl.RoutedReplica + cl.RoutedPrimary) - routedWarm; routed > 0 {
		out.ReplicaFrac = float64(cl.RoutedReplica-replicaWarm) / float64(routed)
	}
	return out
}
