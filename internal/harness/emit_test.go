package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func TestEmitterJSONDeterministicAndParsable(t *testing.T) {
	emitOnce := func() string {
		var b bytes.Buffer
		e, err := NewEmitter(&b, "json")
		if err != nil {
			t.Fatal(err)
		}
		e.Emit(Record{Record: "point", Experiment: "x", Fields: map[string]float64{"b": 2, "a": 1}})
		var waits [metrics.NumWaitClasses]int64
		waits[metrics.WaitLock] = 1e6
		EmitWaits(e, "x", "tpch", 100, "cores", 4, waits)
		EmitQueryStats(e, "x", "tpch", 100, []metrics.QueryStatRow{{Query: "tpch.Q14", Executions: 3}})
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := emitOnce(), emitOnce()
	if a != b {
		t.Fatal("JSON emission is not byte-deterministic")
	}

	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	want := 1 + int(metrics.NumWaitClasses) + 1
	if len(lines) != want {
		t.Fatalf("records = %d, want %d (wait records must cover every class)", len(lines), want)
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("unparsable line %q: %v", ln, err)
		}
		if m["record"] == "" || m["experiment"] != "x" {
			t.Fatalf("record missing identity fields: %q", ln)
		}
	}

	// query_stat rows carry a wait_<class>_ms field for every class, so
	// downstream schemas stay stable as waits appear and disappear.
	var qs struct {
		Fields map[string]float64 `json:"fields"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &qs); err != nil {
		t.Fatal(err)
	}
	for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
		k := "wait_" + strings.ToLower(c.String()) + "_ms"
		if _, ok := qs.Fields[k]; !ok {
			t.Fatalf("query_stat missing %s: %v", k, qs.Fields)
		}
	}
	for _, k := range []string{"executions", "p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"} {
		if _, ok := qs.Fields[k]; !ok {
			t.Fatalf("query_stat missing %s", k)
		}
	}
}

func TestEmitterCSVFixedColumns(t *testing.T) {
	var b bytes.Buffer
	e, err := NewEmitter(&b, "csv")
	if err != nil {
		t.Fatal(err)
	}
	e.Emit(Record{
		Record: "curve_point", Experiment: "fig5", Workload: "tpch", SF: 100,
		Metric: "throughput", Name: "measured", Knob: "read_limit_mbps",
		X: 200, Value: 1.5, Unit: "qps", Fields: map[string]float64{"z": 1, "a": 2},
	})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row", len(lines))
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Fatalf("header = %q", lines[0])
	}
	cols := strings.Split(lines[1], ",")
	if len(cols) != len(csvHeader) {
		t.Fatalf("columns = %d, want %d", len(cols), len(csvHeader))
	}
	if cols[11] != "a=2;z=1" {
		t.Fatalf("fields column = %q, want sorted k=v pairs", cols[11])
	}
}

func TestEmitterNilSafeAndUnknownFormat(t *testing.T) {
	if _, err := NewEmitter(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("unknown format should error")
	}
	// A nil emitter discards everywhere, so experiment code needs no guards.
	var e *Emitter
	e.Emit(Record{Record: "point"})
	EmitResult(e, "x", "tpch", 1, "", 0, Result{})
	EmitCurve(e, "x", "tpch", 1, "m", "k", "u", core.Curve{Points: []core.Point{{X: 1, Y: 2}}})
	EmitTable(e, "x", "t", core.Table{})
	EmitDistribution(e, "x", "tpch", 1, "m", "u", metrics.NewDistribution([]float64{1}))
	EmitTrace(e, "x", "tpch", 1, nil)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmitTableAndDistribution(t *testing.T) {
	var b bytes.Buffer
	e, err := NewEmitter(&b, "json")
	if err != nil {
		t.Fatal(err)
	}
	tab := core.Table{Headers: []string{"h1", "h2"}}
	tab.AddRow("a", "b")
	EmitTable(e, "x", "mytable", tab)
	EmitDistribution(e, "x", "asdb", 5, "dram_mbps", "MB/s", metrics.NewDistribution([]float64{1, 2, 3}))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"text":"h1=a; h2=b"`) {
		t.Fatalf("table row not packed: %s", out)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// 1 table_row + 3 cdf_point + 1 summary
	if len(lines) != 5 {
		t.Fatalf("records = %d: %s", len(lines), out)
	}
	var last struct {
		Metric string             `json:"metric"`
		Fields map[string]float64 `json:"fields"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Metric != "dram_mbps_summary" || last.Fields["p50"] != 2 || last.Fields["n"] != 3 {
		t.Fatalf("summary record = %+v", last)
	}
}
