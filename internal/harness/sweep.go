package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress receives sweep updates after each completed point: how many
// points are done out of the total, and the wall-clock time since the
// sweep started. Calls are serialized, so implementations need no
// locking of their own.
type Progress func(done, total int, elapsed time.Duration)

// Sweep runs fn(0), fn(1), ..., fn(n-1) on up to parallel worker
// goroutines (spread across GOMAXPROCS OS threads) and returns the
// results in input order. parallel <= 0 uses GOMAXPROCS.
//
// Every experiment point in this package boots its own sim.Sim,
// engine.Server, RNG, and Counters, so points share no mutable state and
// the schedule inside each point is untouched by how points are packed
// onto workers: a sweep's results are bit-identical at any parallelism.
// TestSweepSerialParallelIdentical asserts this, and CI runs the package
// under -race to prove the isolation claim.
func Sweep[T any](parallel, n int, fn func(i int) T, progress Progress) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	start := time.Now()
	var mu sync.Mutex
	done := 0
	report := func() {
		if progress == nil {
			return
		}
		mu.Lock()
		done++
		progress(done, n, time.Since(start))
		mu.Unlock()
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
			report()
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
				report()
			}
		}()
	}
	wg.Wait()
	return out
}

// Point is one experiment point: a workload at a scale factor under a
// knob setting.
type Point struct {
	Workload Workload
	SF       int
	Knobs    Knobs
}

// RunPoints measures every point, fanning them across opt.Parallel
// workers, and returns the Results in input order. opt.Progress, when
// set, receives per-point completion updates.
func RunPoints(points []Point, opt Options) []Result {
	return Sweep(opt.Parallel, len(points), func(i int) Result {
		p := points[i]
		return runWorkload(p.Workload, p.SF, opt, p.Knobs)
	}, opt.Progress)
}
