package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func chaosOpts() Options {
	opt := TestOptions()
	opt.Measure = 2 * sim.Second
	return opt
}

// TestChaosMatrixSafetyInvariants runs the full matrix and holds it to
// the acked-commit contract: every cell passes the safety checker (no
// lost acks, no double effects), crash cells actually fail over, and
// goodput recovers after the last disruption clears.
func TestChaosMatrixSafetyInvariants(t *testing.T) {
	r := Chaos(1, chaosOpts(), nil, 8)
	if err := r.Err(); err != nil {
		t.Fatalf("%v\n%s", err, r)
	}
	if len(r.Points) != len(ChaosSpecs()) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Acked == 0 {
			t.Fatalf("cell %s acked nothing: %+v", p.Spec.Name, p)
		}
		if p.LostAcks != 0 {
			t.Fatalf("cell %s lost %d acked commits", p.Spec.Name, p.LostAcks)
		}
		if p.Spec.Crash {
			if p.FailoverMs <= 0 {
				t.Fatalf("crash cell %s reported no RTO: %+v", p.Spec.Name, p)
			}
			if p.RecoveryMs < 0 {
				t.Fatalf("crash cell %s never recovered goodput: %+v", p.Spec.Name, p)
			}
		}
	}
	// The disruptive cells must actually disturb the client plane
	// somewhere: a matrix where no cell retries or reconnects is not
	// exercising the resilience machinery.
	var retries, reconnects int64
	for _, p := range r.Points {
		retries += p.Retries
		reconnects += p.Reconnects
	}
	if retries == 0 || reconnects == 0 {
		t.Fatalf("matrix too quiet: %d retries, %d reconnects\n%s", retries, reconnects, r)
	}
}

// TestChaosSafetyHoldsAcrossSeeds spot-checks the "any seed" claim on
// the two crash-bearing compound cells with a different seed.
func TestChaosSafetyHoldsAcrossSeeds(t *testing.T) {
	opt := chaosOpts()
	opt.Seed = 7
	specs := []ChaosSpec{
		{Name: "split-burst+crash", Schedule: "split-burst", Crash: true},
		{Name: "flaky+storm+crash", Schedule: "flaky", Crash: true, Storm: true},
	}
	r := Chaos(1, opt, specs, 8)
	if err := r.Err(); err != nil {
		t.Fatalf("seed 7: %v\n%s", err, r)
	}
}

// TestChaosSerialParallelIdentical: cells boot isolated simulations, so
// the emitted JSONL is byte-identical whether the matrix runs serially
// or on 4 workers.
func TestChaosSerialParallelIdentical(t *testing.T) {
	specs := []ChaosSpec{
		{Name: "baseline", Schedule: "none"},
		{Name: "crash", Schedule: "none", Crash: true},
		{Name: "flaky", Schedule: "flaky"},
		{Name: "reset-storm+storm", Schedule: "reset-storm", Storm: true},
	}
	emit := func(parallel int) []byte {
		opt := chaosOpts()
		opt.Parallel = parallel
		opt.Telemetry = true
		var b bytes.Buffer
		e, err := NewEmitter(&b, "json")
		if err != nil {
			t.Fatal(err)
		}
		EmitChaos(e, Chaos(1, opt, specs, 8))
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := emit(1)
	par := emit(4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("serial and parallel chaos matrices differ:\nserial %d bytes\nparallel %d bytes", len(serial), len(par))
	}
	if len(serial) == 0 {
		t.Fatal("empty emission")
	}
}

// TestChaosArmedButUnfiredMatchesBaseline is the chaos-off identity
// probe at the harness layer: a cell whose injector is armed with a
// schedule that never fires inside the run must produce exactly the
// baseline cell's results — walker procs, fault RNGs, and stop hooks
// may exist, but an unfired timeline cannot perturb the data path.
func TestChaosArmedButUnfiredMatchesBaseline(t *testing.T) {
	opt := chaosOpts()
	base := runChaosCell(1, opt, ChaosSpec{Name: "baseline", Schedule: "none"}, 8)
	armed := runChaosCell(1, opt, ChaosSpec{Name: "armed", Schedule: "none", Events: fault.Schedule{
		{At: 100000 * sim.Second, Dur: sim.Second, Axis: "net-partition", Magnitude: 1},
		{At: 100000 * sim.Second, Dur: sim.Second, Axis: "io-stall", Magnitude: 1e6},
	}}, 8)
	if base.Err != "" || armed.Err != "" {
		t.Fatalf("cells failed: base=%q armed=%q", base.Err, armed.Err)
	}
	// Normalize the fields that legitimately differ: the spec itself, and
	// recovery liveness (the armed cell's "disruption" clears after the
	// run ends, so no post-disruption sample exists by construction).
	armed.Spec, armed.RecoveryMs = base.Spec, base.RecoveryMs
	if !reflect.DeepEqual(base, armed) {
		t.Fatalf("armed-but-unfired cell diverged from baseline:\nbase  %+v\narmed %+v", base, armed)
	}
	if base.Acked == 0 {
		t.Fatal("baseline acked nothing; probe is vacuous")
	}
}
