package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload/tpch"
)

// Workload identifies one of the paper's four workload classes.
type Workload string

// Workloads.
const (
	WTpch Workload = "tpch"
	WTpce Workload = "tpce"
	WAsdb Workload = "asdb"
	WHtap Workload = "htap"
)

// PaperSFs returns the scale factors the paper uses for a workload.
func PaperSFs(w Workload) []int {
	switch w {
	case WTpch:
		return []int{10, 30, 100, 300}
	case WTpce, WHtap:
		return []int{5000, 15000}
	case WAsdb:
		return []int{2000, 6000}
	default:
		return nil
	}
}

// runWorkload dispatches one point.
func runWorkload(w Workload, sf int, opt Options, k Knobs) Result {
	switch w {
	case WTpch:
		return RunTPCH(sf, opt, k)
	case WTpce:
		return RunTPCE(sf, opt, k)
	case WAsdb:
		return RunASDB(sf, opt, k)
	case WHtap:
		return RunHTAP(sf, opt, k)
	default:
		panic("harness: unknown workload " + string(w))
	}
}

// CoreSteps is the paper's core-allocation sweep: socket 0's physical
// cores, then socket 1's, then all second hyperthreads.
var CoreSteps = []int{1, 2, 4, 8, 12, 16, 32}

// LLCSteps is the paper's CAT sweep in MB (2 MB granularity; a subset of
// the 20 steps keeps sweeps affordable — pass your own for finer grids).
var LLCSteps = []int{2, 4, 6, 8, 10, 12, 16, 20, 28, 40}

// Fig2CoresResult holds one workload's core-sensitivity curves.
type Fig2CoresResult struct {
	Workload Workload
	PerfBySF map[int]core.Curve // throughput vs logical cores
}

// Fig2Cores reproduces Figure 2 (a, d, g, j): throughput versus number
// of logical cores with the full 40 MB LLC.
func Fig2Cores(w Workload, sfs []int, steps []int, opt Options) Fig2CoresResult {
	if steps == nil {
		steps = CoreSteps
	}
	var pts []Point
	for _, sf := range sfs {
		for _, n := range steps {
			pts = append(pts, Point{Workload: w, SF: sf, Knobs: Knobs{Cores: n}})
		}
	}
	rs := RunPoints(pts, opt)
	out := Fig2CoresResult{Workload: w, PerfBySF: map[int]core.Curve{}}
	i := 0
	for _, sf := range sfs {
		c := core.Curve{Name: fmt.Sprintf("%s-sf%d", w, sf)}
		for _, n := range steps {
			c.Add(float64(n), rs[i].Throughput)
			i++
		}
		out.PerfBySF[sf] = c
	}
	return out
}

// Fig2LLCResult holds LLC-sensitivity curves: performance and MPKI.
type Fig2LLCResult struct {
	Workload Workload
	PerfBySF map[int]core.Curve // throughput vs LLC MB (b, e, h, k)
	MPKIBySF map[int]core.Curve // MPKI vs LLC MB (c, f, i, l)
}

// Fig2LLC reproduces Figure 2 (b/c, e/f, h/i, k/l): throughput and cache
// MPKI versus LLC allocation with all 32 cores.
func Fig2LLC(w Workload, sfs []int, steps []int, opt Options) Fig2LLCResult {
	if steps == nil {
		steps = LLCSteps
	}
	var pts []Point
	for _, sf := range sfs {
		for _, mb := range steps {
			pts = append(pts, Point{Workload: w, SF: sf, Knobs: Knobs{LLCMB: mb}})
		}
	}
	rs := RunPoints(pts, opt)
	out := Fig2LLCResult{Workload: w, PerfBySF: map[int]core.Curve{}, MPKIBySF: map[int]core.Curve{}}
	i := 0
	for _, sf := range sfs {
		perf := core.Curve{Name: fmt.Sprintf("%s-sf%d", w, sf)}
		mpki := core.Curve{Name: fmt.Sprintf("%s-sf%d-mpki", w, sf)}
		for _, mb := range steps {
			perf.Add(float64(mb), rs[i].Throughput)
			mpki.Add(float64(mb), rs[i].MPKI)
			i++
		}
		out.PerfBySF[sf] = perf
		out.MPKIBySF[sf] = mpki
	}
	return out
}

// Table4 derives the sufficient-LLC-capacity table from Fig2LLC results.
func Table4(results []Fig2LLCResult) core.Table {
	t := core.Table{Headers: []string{"Workload", "SF", "Perf>=90%", "Perf>=95%"}}
	for _, res := range results {
		for _, sf := range sortedKeys(res.PerfBySF) {
			c := res.PerfBySF[sf]
			x90, _ := c.SufficientCapacity(0.90)
			x95, _ := c.SufficientCapacity(0.95)
			t.AddRow(string(res.Workload), fmt.Sprint(sf),
				fmt.Sprintf("%.0f MB", x90), fmt.Sprintf("%.0f MB", x95))
		}
	}
	return t
}

func sortedKeys(m map[int]core.Curve) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Table3Result is the TPC-E wait-ratio comparison across scale factors.
type Table3Result struct {
	SmallSF, LargeSF int
	Ratios           []core.Ratio // LargeSF / SmallSF per wait class
	SumLockLatchPage core.Ratio
}

// Table3 reproduces the lock/latch wait-time ratios between TPC-E scale
// factors (paper: SF 15000 vs SF 5000).
func Table3(smallSF, largeSF int, opt Options) Table3Result {
	waits := Sweep(opt.Parallel, 2, func(i int) Result {
		sf := smallSF
		if i == 1 {
			sf = largeSF
		}
		r, _ := TPCEWaits(sf, opt, Knobs{})
		return r
	}, opt.Progress)
	rs, rl := waits[0], waits[1]
	classes := []metrics.WaitClass{
		metrics.WaitLock, metrics.WaitLatch, metrics.WaitPageLatch, metrics.WaitPageIOLatch,
	}
	res := Table3Result{SmallSF: smallSF, LargeSF: largeSF}
	for _, c := range classes {
		res.Ratios = append(res.Ratios, core.Ratio{
			Label: c.String(),
			Num:   float64(rl.WaitNs[c]),
			Den:   float64(rs.WaitNs[c]),
		})
	}
	sumL := float64(rl.WaitNs[metrics.WaitLock] + rl.WaitNs[metrics.WaitLatch] + rl.WaitNs[metrics.WaitPageLatch])
	sumS := float64(rs.WaitNs[metrics.WaitLock] + rs.WaitNs[metrics.WaitLatch] + rs.WaitNs[metrics.WaitPageLatch])
	res.SumLockLatchPage = core.Ratio{Label: "SUM(LOCK,LATCH,PAGELATCH)", Num: sumL, Den: sumS}
	return res
}

// Fig3Result pairs throughput with average bandwidths for the two trends
// the paper separates: performance driven by cores (bandwidth rises) and
// by cache (DRAM bandwidth falls).
type Fig3Result struct {
	CoreDriven  []BandwidthPoint
	CacheDriven []BandwidthPoint
}

// BandwidthPoint is one (throughput, bandwidth) observation.
type BandwidthPoint struct {
	Knob         float64
	Throughput   float64
	SSDReadMBps  float64
	SSDWriteMBps float64
	DRAMMBps     float64
}

// Fig3 reproduces the average-bandwidth-versus-performance study for one
// workload and scale factor.
func Fig3(w Workload, sf int, opt Options) Fig3Result {
	coreSteps := []int{2, 4, 8, 16, 32}
	cacheSteps := []int{2, 6, 12, 20, 40}
	var pts []Point
	for _, n := range coreSteps {
		pts = append(pts, Point{Workload: w, SF: sf, Knobs: Knobs{Cores: n}})
	}
	for _, mb := range cacheSteps {
		pts = append(pts, Point{Workload: w, SF: sf, Knobs: Knobs{LLCMB: mb}})
	}
	rs := RunPoints(pts, opt)
	var out Fig3Result
	for i, n := range coreSteps {
		out.CoreDriven = append(out.CoreDriven, bandwidthPoint(float64(n), rs[i]))
	}
	for i, mb := range cacheSteps {
		out.CacheDriven = append(out.CacheDriven, bandwidthPoint(float64(mb), rs[len(coreSteps)+i]))
	}
	return out
}

func bandwidthPoint(knob float64, r Result) BandwidthPoint {
	return BandwidthPoint{
		Knob: knob, Throughput: r.Throughput,
		SSDReadMBps: r.SSDReadMBps, SSDWriteMBps: r.SSDWriteMBps, DRAMMBps: r.DRAMMBps,
	}
}

// Fig4Result holds bandwidth distributions at full allocations.
type Fig4Result struct {
	Workload Workload
	SF       int
	SSDRead  metrics.Distribution
	SSDWrite metrics.Distribution
	DRAM     metrics.Distribution
}

// Fig4 reproduces the bandwidth CDFs with full core and LLC allocations.
func Fig4(w Workload, sf int, opt Options) Fig4Result {
	r := runWorkload(w, sf, opt, Knobs{})
	return Fig4Result{
		Workload: w, SF: sf,
		SSDRead:  metrics.NewDistribution(r.ReadBWSeries),
		SSDWrite: metrics.NewDistribution(r.WriteBWSeries),
		DRAM:     metrics.NewDistribution(r.DRAMBWSeries),
	}
}

// Fig5Steps is the read-bandwidth-limit sweep in MB/s.
var Fig5Steps = []float64{100, 200, 400, 600, 800, 1000, 1500, 2500}

// Fig5 reproduces the TPC-H SF 300 QPS response to SSD read-bandwidth
// limits, returning the measured curve (its LinearReference gives the
// dashed line, and AllocationForTarget the provisioning comparison).
func Fig5(opt Options, steps []float64) core.Curve {
	if steps == nil {
		steps = Fig5Steps
	}
	rs := Sweep(opt.Parallel, len(steps), func(i int) Result {
		return RunTPCH(300, opt, Knobs{ReadLimitMBps: steps[i]})
	}, opt.Progress)
	c := core.Curve{Name: "tpch-sf300-readbw"}
	for i, mbps := range steps {
		c.Add(mbps, rs[i].Throughput)
	}
	return c
}

// Fig5Write reproduces the ASDB SF 2000 write-bandwidth-limit result
// (paper: -6% at 100 MB/s, -44% at 50 MB/s).
func Fig5Write(opt Options) core.Curve {
	steps := []float64{50, 100, 0}
	rs := Sweep(opt.Parallel, len(steps), func(i int) Result {
		return RunASDB(2000, opt, Knobs{WriteLimitMBps: steps[i]})
	}, opt.Progress)
	c := core.Curve{Name: "asdb-sf2000-writebw"}
	for i, mbps := range steps {
		x := mbps
		if x == 0 {
			x = 1200 // device limit
		}
		c.Add(x, rs[i].Throughput)
	}
	return c
}

// DOPSteps is the MAXDOP sweep of Figure 6.
var DOPSteps = []int{1, 2, 4, 8, 16, 32}

// Fig6Result holds per-query elapsed times by MAXDOP for one SF.
type Fig6Result struct {
	SF      int
	Elapsed map[int]map[int]sim.Duration // query -> dop -> elapsed
}

// Speedup returns the Figure 6 metric: time(maxdop=32)/time(dop) —
// i.e., speedup of the baseline relative to the limited setting is
// inverted so bars >1 mean dop beats 32... The paper plots relative
// speedup with MAXDOP=32 as baseline: speedup(dop) = t(dop=32)/t(dop).
func (f Fig6Result) Speedup(query, dop int) float64 {
	base := f.Elapsed[query][32]
	t := f.Elapsed[query][dop]
	if t == 0 {
		return 0
	}
	return float64(base) / float64(t)
}

// Fig6 reproduces the per-query MAXDOP sensitivity: a single stream, the
// number of cores limited to MAXDOP, one measurement per (query, dop).
func Fig6(sf int, opt Options, dops []int) Fig6Result {
	if dops == nil {
		dops = DOPSteps
	}
	// Each DOP setting is one independent point: it builds its own
	// dataset and server, so points fan out across workers.
	perDop := Sweep(opt.Parallel, len(dops), func(di int) map[int]sim.Duration {
		dop := dops[di]
		elapsed := map[int]sim.Duration{}
		d := tpch.Build(tpch.Config{SF: sf, ActualLineitemPerSF: opt.Density, Seed: opt.Seed})
		srv := newServer(opt, Knobs{Cores: dop, MaxDOP: dop})
		srv.AttachDB(d.DB)
		srv.WarmBufferPool()
		srv.Start()
		g := sim.NewRNG(opt.Seed + int64(dop))
		for _, qi := range g.Perm(tpch.NumQueries) {
			q := qi + 1
			elapsed[q] = tpch.QueryTiming(srv, d, q, dop, 0, g)
		}
		srv.Stop()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
		return elapsed
	}, opt.Progress)
	out := Fig6Result{SF: sf, Elapsed: map[int]map[int]sim.Duration{}}
	for q := 1; q <= tpch.NumQueries; q++ {
		out.Elapsed[q] = map[int]sim.Duration{}
	}
	for di, dop := range dops {
		for q, t := range perDop[di] {
			out.Elapsed[q][dop] = t
		}
	}
	return out
}

// Fig7Result carries the rendered Q20 plans.
type Fig7Result struct {
	SF           int
	SerialPlan   string
	ParallelPlan string
	SerialShape  string
	ParShape     string
}

// Fig7 reproduces the Q20 plan-shape comparison: the same query explained
// at MAXDOP 1 and MAXDOP 32.
func Fig7(sf int, opt Options) Fig7Result {
	d := tpch.Build(tpch.Config{SF: sf, ActualLineitemPerSF: opt.Density, Seed: opt.Seed})
	srv := newServer(opt, Knobs{})
	srv.AttachDB(d.DB)
	g := sim.NewRNG(opt.Seed)
	q := d.Query(20, g)
	serial, _ := srv.ExplainQuery(q, 1)
	par, _ := srv.ExplainQuery(q, 32)
	srv.Stop()
	return Fig7Result{
		SF:           sf,
		SerialPlan:   serial.Render(),
		ParallelPlan: par.Render(),
		SerialShape:  serial.Shape(),
		ParShape:     par.Shape(),
	}
}

// GrantSteps are Figure 8's query-memory-grant settings (fractions).
var GrantSteps = []float64{0.25, 0.15, 0.05, 0.02}

// Fig8Result holds per-query elapsed times by grant fraction.
type Fig8Result struct {
	SF      int
	Elapsed map[int]map[float64]sim.Duration // query -> grantPct -> time
}

// Speedup returns t(grant=0.25)/t(grant) per the paper's presentation
// (values < 1 mean the smaller grant slowed the query down).
func (f Fig8Result) Speedup(query int, grant float64) float64 {
	base := f.Elapsed[query][0.25]
	t := f.Elapsed[query][grant]
	if t == 0 {
		return 0
	}
	return float64(base) / float64(t)
}

// Fig8 reproduces the query-memory-grant sensitivity on TPC-H SF 100.
func Fig8(opt Options, grants []float64) Fig8Result {
	if grants == nil {
		grants = GrantSteps
	}
	perGrant := Sweep(opt.Parallel, len(grants), func(gi int) map[int]sim.Duration {
		grant := grants[gi]
		elapsed := map[int]sim.Duration{}
		d := tpch.Build(tpch.Config{SF: 100, ActualLineitemPerSF: opt.Density, Seed: opt.Seed})
		srv := newServer(opt, Knobs{GrantPct: grant})
		srv.AttachDB(d.DB)
		srv.WarmBufferPool()
		srv.Start()
		g := sim.NewRNG(opt.Seed)
		for _, qi := range g.Perm(tpch.NumQueries) {
			q := qi + 1
			elapsed[q] = tpch.QueryTiming(srv, d, q, 0, grant, g)
		}
		srv.Stop()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
		return elapsed
	}, opt.Progress)
	out := Fig8Result{SF: 100, Elapsed: map[int]map[float64]sim.Duration{}}
	for q := 1; q <= tpch.NumQueries; q++ {
		out.Elapsed[q] = map[float64]sim.Duration{}
	}
	for gi, grant := range grants {
		for q, t := range perGrant[gi] {
			out.Elapsed[q][grant] = t
		}
	}
	return out
}

// Table2 regenerates the database-size table from the actual generated
// schemas and (for columnstores) measured compression ratios.
func Table2(opt Options) core.Table {
	t := core.Table{Headers: []string{"Database", "Scale Factor", "Data (GB)", "Index (GB)", "Fits 64GB"}}
	add := func(name string, sf int, db *engine.Database) {
		data := float64(db.DataBytes()) / (1 << 30)
		index := float64(db.IndexBytes()) / (1 << 30)
		fits := "yes"
		if data+index > 64 {
			fits = "NO"
		}
		t.AddRow(name, fmt.Sprint(sf), core.F(data), core.F(index), fits)
	}
	for _, sf := range PaperSFs(WAsdb) {
		d := RunlessASDB(sf, opt)
		add("ASDB", sf, d)
	}
	for _, sf := range PaperSFs(WTpce) {
		d := RunlessTPCE(sf, opt, false)
		add("TPC-E", sf, d)
	}
	for _, sf := range PaperSFs(WHtap) {
		d := RunlessTPCE(sf, opt, true)
		add("HTAP", sf, d)
	}
	for _, sf := range PaperSFs(WTpch) {
		d := tpch.Build(tpch.Config{SF: sf, ActualLineitemPerSF: opt.Density, Seed: opt.Seed})
		add("TPC-H", sf, d.DB)
	}
	return t
}

// RunlessASDB builds the ASDB database without running it (Table 2).
func RunlessASDB(sf int, opt Options) *engine.Database {
	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	return buildASDB(sf, density, opt.Seed)
}

// RunlessTPCE builds the TPC-E database without running it (Table 2).
func RunlessTPCE(customers int, opt Options, withCSI bool) *engine.Database {
	density := opt.Density / 25
	if density < 2 {
		density = 2
	}
	return buildTPCE(customers, density, opt.Seed, withCSI)
}
