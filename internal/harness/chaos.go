package harness

import (
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload/asdb"
	"repro/internal/workload/openloop"
)

// ChaosSpec is one cell of the chaos matrix: a named net-fault schedule
// crossed with an optional mid-window primary crash (followed by
// failover and promotion) and an optional open-loop arrival storm.
type ChaosSpec struct {
	Name     string
	Schedule string // fault.ScheduleNames entry
	Crash    bool   // crash the primary mid-window, fail over, promote
	Storm    bool   // 6x arrival burst through the middle half of the window

	// Events, when non-nil, is an explicit fault timeline used instead of
	// the named Schedule — custom scenarios and the armed-but-unfired
	// identity probe.
	Events fault.Schedule
}

// ChaosSpecs is the default matrix: every schedule alone, the pure
// failover cell, and the compound cells — partitions and reset storms
// during failover, and the marquee split-burst (serving partition +
// replication-link stall + reset wave) with a crash on top.
func ChaosSpecs() []ChaosSpec {
	return []ChaosSpec{
		{Name: "baseline", Schedule: "none"},
		{Name: "crash", Schedule: "none", Crash: true},
		{Name: "partition", Schedule: "partition"},
		{Name: "flaky", Schedule: "flaky"},
		{Name: "degrade", Schedule: "degrade"},
		{Name: "reset-storm", Schedule: "reset-storm"},
		{Name: "partition+crash", Schedule: "partition", Crash: true},
		{Name: "reset-storm+storm", Schedule: "reset-storm", Storm: true},
		{Name: "split-burst+crash", Schedule: "split-burst", Crash: true},
		{Name: "flaky+storm+crash", Schedule: "flaky", Crash: true, Storm: true},
	}
}

// ChaosPoint is one chaos cell's outcome: goodput and client-boundary
// accounting, the safety verdict, and liveness as time to the first
// acknowledged request after the last disruption.
type ChaosPoint struct {
	Spec ChaosSpec

	OfferedRPS float64
	GoodputRPS float64 // acked/OK replies per second over the measure window

	Acked       int64 // execs acknowledged at the client boundary
	Unknown     int64 // execs with ambiguous outcome (never retried)
	NotExecuted int64
	Retries     int64
	Reconnects  int64
	Rotations   int64
	Resets      int64
	DialFails   int64
	Hedges      int64
	BreakerOpen int64

	LostAcks   int64   // client-acked commits missing from the surviving log (must be 0)
	FailoverMs float64 // RTO when the cell crashed (0 otherwise)
	RecoveryMs float64 // last disruption -> first acked request (-1: none seen)

	// Telemetry is the primary's registry snapshot (nil unless
	// Options.Telemetry armed it).
	Telemetry *telemetry.Snapshot

	Err string // safety-checker verdict ("" = all invariants held)
}

// ChaosResult is the full matrix outcome.
type ChaosResult struct {
	SF     int
	Seed   int64
	Rate   float64
	Points []ChaosPoint
}

// chaosDisruptEnd is the instant the cell's last disruption clears:
// the crash time and every schedule event's end, whichever is latest.
func chaosDisruptEnd(spec ChaosSpec, sched fault.Schedule, crashAt sim.Duration) sim.Time {
	var last sim.Duration
	if spec.Crash {
		last = crashAt
	}
	for _, ev := range sched {
		if end := ev.At + ev.Dur; end > last {
			last = end
		}
	}
	return sim.Time(last)
}

// chaosSafetyCheck audits the client-boundary invariants after a cell
// drains:
//
//  1. acked-at-most-once: no request id is acked twice on either side,
//     and the client's ack log is a subset of the server's (an ack the
//     server never recorded would mean a reply was fabricated or a
//     retry double-charged);
//  2. acked-commit survival: every epoch-0 client-acked commit LSN is
//     inside the cluster's acknowledged set and — after a failover —
//     applied on the promoted standby; epoch-1 acks are durable on the
//     promoted node's own log;
//  3. ambiguity bookkeeping: every transport-interrupted exec was
//     reported Unknown and never resent (Metrics.Ambiguous agrees).
//
// It returns the number of lost acked commits and the first violated
// invariant ("" when all hold).
func chaosSafetyCheck(cl *repl.Cluster, cf *serve.ClusterFrontend, st *openloop.RStats, crashed bool) (int64, string) {
	srvAcks := make(map[client.AckKey]serve.Ack, len(cf.Acks))
	for _, a := range cf.Acks {
		k := client.AckKey{Pair: a.Pair, Req: a.Req}
		if _, dup := srvAcks[k]; dup {
			return 0, fmt.Sprintf("server acked pair=%d req=%d twice (double execution)", a.Pair, a.Req)
		}
		srvAcks[k] = a
	}
	if int64(len(st.Acks)) != st.M.AckedExecs || st.Acked != st.M.AckedExecs {
		return 0, fmt.Sprintf("ack bookkeeping skew: %d ack keys, %d acked outcomes, %d metric acks",
			len(st.Acks), st.Acked, st.M.AckedExecs)
	}
	if st.Unknown != st.M.Ambiguous {
		return 0, fmt.Sprintf("ambiguity skew: %d unknown outcomes vs %d ambiguous metric", st.Unknown, st.M.Ambiguous)
	}

	clusterAcked := make(map[int64]bool)
	for _, lsn := range cl.AckedLSNs() {
		clusterAcked[lsn] = true
	}
	promoted := cl.PromotedStandby()
	if crashed && promoted == nil {
		return 0, "cell crashed but no standby was promoted"
	}

	var lost int64
	seen := make(map[client.AckKey]bool, len(st.Acks))
	for _, k := range st.Acks {
		if seen[k] {
			return lost, fmt.Sprintf("client recorded pair=%d req=%d acked twice", k.Pair, k.Req)
		}
		seen[k] = true
		a, ok := srvAcks[k]
		if !ok {
			return lost, fmt.Sprintf("client-acked pair=%d req=%d missing from the server ack log", k.Pair, k.Req)
		}
		if a.LSN == 0 {
			continue // no durable effect to audit
		}
		switch {
		case a.Epoch == 0 && !clusterAcked[a.LSN]:
			lost++
		case a.Epoch == 0 && promoted != nil && a.LSN > promoted.AppliedLSN():
			lost++
		case a.Epoch == 1 && (promoted == nil || a.LSN > promoted.DurableLSN()):
			lost++
		case a.Epoch == 0 && promoted == nil && a.LSN > cl.Primary.Log.FlushedLSN():
			lost++
		}
	}
	if lost > 0 {
		return lost, fmt.Sprintf("%d client-acked commits did not survive", lost)
	}
	return 0, ""
}

// runChaosCell boots an isolated simulation — a quorum-replicated
// cluster fronted over the fault-injected transport, resilient clients
// replaying an open-loop plan, the scripted net-fault schedule, and
// (when the spec says so) a mid-window crash with failover — then runs
// the safety checker at the client boundary.
func runChaosCell(sf int, opt Options, spec ChaosSpec, rate float64) ChaosPoint {
	out := ChaosPoint{Spec: spec, RecoveryMs: -1}
	sched := spec.Events
	if sched == nil {
		var err error
		sched, err = fault.BuildNamedSchedule(spec.Schedule, opt.Seed, opt.Warmup, opt.Measure)
		if err != nil {
			out.Err = err.Error()
			return out
		}
	}
	fcfg := fault.Config{Schedule: sched}
	if verr := fcfg.Validate(); verr != nil {
		out.Err = verr.Error()
		return out
	}

	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	acfg := asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: opt.Seed}
	d := asdb.Build(acfg)
	srv := newServer(opt, Knobs{WriteLimitMBps: 50})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	crashAt := opt.Warmup + opt.Measure/2
	ro := engine.RecoveryOptions{MaxFlushBytes: 4 << 10}
	if spec.Crash {
		ro.Crash = fault.CrashPlan{Point: fault.CrashAtTime, At: crashAt}
	}
	srv.ArmRecovery(ro)

	byDB := make(map[*engine.Database]*asdb.Dataset)
	rcfg := repl.Config{
		Mode: repl.ModeQuorum, Quorum: 1, Replicas: 2,
		// Partitions must fail commits with a typed outcome, not wedge
		// them: a short ack bound keeps the commit path live through the
		// fault windows.
		AckTimeout: 2 * sim.Second,
		NewImage: func() *engine.Database {
			dd := asdb.Build(acfg)
			byDB[dd.DB] = dd
			return dd.DB
		},
	}
	cl := repl.New(srv, rcfg)
	cf := serve.NewCluster(cl, d, func(db *engine.Database) *asdb.Dataset { return byDB[db] }, serve.ClusterConfig{})

	if fcfg.Enabled() {
		inj := fault.New(srv.Sim, fcfg, fault.Targets{
			Dev: srv.Dev, Log: srv.Log, BP: srv.BP, CPUs: srv.CPUs,
			Grants: srv, Repl: cl, Net: cf.Net, Crash: srv.Crash, Ctr: srv.Ctr,
		})
		inj.Start()
		srv.AddStopHook(inj.Stop)
	}
	srv.Start()
	cl.Start()
	if err := cf.Start(); err != nil {
		out.Err = err.Error()
		return out
	}

	horizon := opt.Warmup + opt.Measure
	var storm *openloop.Storm
	if spec.Storm {
		storm = &openloop.Storm{At: opt.Warmup + opt.Measure/4, Dur: opt.Measure / 2, X: 6}
	}
	plan := openloop.Build(openloop.Config{
		Rate: rate, Horizon: horizon, QueryFrac: 0.02, Storm: storm,
	}, srv.Sim.RNG().Fork())
	ccfg := client.RConfig{
		Endpoints:    []string{cf.Cfg.Addr, cf.Cfg.PromotedAddr},
		ReplyTimeout: 4 * sim.Second,
		HedgeAfter:   500 * sim.Millisecond,
		MaxAttempts:  6,
	}
	var st openloop.RStats
	openloop.RunResilient(srv.Sim, cf.Net, ccfg, plan, &st, srv.Sim.RNG().Fork())
	st.M.Register(srv.Tel)

	var frep *repl.FailoverReport
	var promoteErr, verifyErr error
	if spec.Crash {
		srv.Sim.Spawn("chaos-failover", func(p *sim.Proc) {
			for !srv.Crashed() && p.Now() < sim.Time(horizon) {
				p.Sleep(10 * sim.Millisecond)
			}
			if !srv.Crashed() {
				return
			}
			frep = cl.Failover(p)
			// Verify replay purity before the promoted node accepts new
			// writes (they would advance its log past the applied frontier).
			verifyErr = cl.VerifyFailover(frep)
			promoteErr = cf.Promote()
		})
	}

	end := sim.Time(horizon)
	srv.Sim.Run(end)
	// Let in-flight retries, backoffs, and post-failover re-dials finish.
	srv.Sim.Run(end + sim.Time(30*sim.Second))
	var quiesceErr string
	if !srv.Crashed() {
		_, quiesceErr = quiesceAndCheck(srv, cl, srv.Sim.Now())
		srv.Stop()
	}
	srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
	cf.Stop()
	cl.Shutdown()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(10*sim.Second))

	warm := sim.Time(opt.Warmup)
	var okN int64
	for _, s := range st.Samples {
		if s.OK && s.At > warm && s.At <= end+sim.Time(30*sim.Second) {
			okN++
		}
	}
	out.OfferedRPS = plan.OfferedRPS()
	out.GoodputRPS = float64(okN) / opt.Measure.Seconds()
	out.Acked = st.Acked
	out.Unknown = st.Unknown
	out.NotExecuted = st.NotExecuted
	out.Retries = st.M.Retries
	out.Reconnects = st.M.Reconnects
	out.Rotations = st.M.Rotations
	out.Resets = st.M.Resets
	out.DialFails = st.M.DialFails
	out.Hedges = st.M.HedgesSent
	out.BreakerOpen = st.M.BreakerOpen
	out.Telemetry = srv.Tel.Snapshot()

	// Liveness: first acked request after the last disruption clears.
	if disrupt := chaosDisruptEnd(spec, sched, crashAt); disrupt > 0 {
		firstOK := sim.Time(-1)
		for _, s := range st.Samples {
			if s.OK && s.At >= disrupt && (firstOK < 0 || s.At < firstOK) {
				firstOK = s.At
			}
		}
		if firstOK >= 0 {
			out.RecoveryMs = float64(firstOK-disrupt) / 1e6
		}
	} else {
		out.RecoveryMs = 0
	}

	// Safety: the crash cell must have fired, promoted, and preserved
	// every acked commit; fault-only cells must quiesce with matching
	// digests.
	if spec.Crash {
		if frep == nil {
			out.Err = "primary crash never fired"
			return out
		}
		out.FailoverMs = float64(frep.RTO) / 1e6
		if verifyErr != nil {
			out.Err = verifyErr.Error()
			return out
		}
		if promoteErr != nil {
			out.Err = "promote: " + promoteErr.Error()
			return out
		}
	} else if quiesceErr != "" {
		out.Err = quiesceErr
		return out
	}
	out.LostAcks, out.Err = chaosSafetyCheck(cl, cf, &st, spec.Crash)
	return out
}

// Chaos runs the seeded chaos matrix. Nil specs takes ChaosSpecs();
// rate <= 0 offers the serving sweep's mid-grid connection rate. Cells
// boot isolated simulations: results are bit-identical at any
// opt.Parallel.
func Chaos(sf int, opt Options, specs []ChaosSpec, rate float64) ChaosResult {
	if specs == nil {
		specs = ChaosSpecs()
	}
	if rate <= 0 {
		rate = ServingRates[len(ServingRates)/2]
	}
	points := Sweep(opt.Parallel, len(specs), func(i int) ChaosPoint {
		return runChaosCell(sf, opt, specs[i], rate)
	}, opt.Progress)
	return ChaosResult{SF: sf, Seed: opt.Seed, Rate: rate, Points: points}
}

// EmitChaos exports the matrix, one point record per cell metric plus
// each cell's telemetry series.
func EmitChaos(e *Emitter, r ChaosResult) {
	for _, p := range r.Points {
		point := func(metric string, v float64, unit string) {
			e.Emit(Record{
				Record: "point", Experiment: "chaos", Workload: "asdb", SF: r.SF,
				Metric: metric, Name: p.Spec.Name, X: p.OfferedRPS, Value: v, Unit: unit,
			})
		}
		point("goodput", p.GoodputRPS, "rps")
		point("acked_execs", float64(p.Acked), "requests")
		point("ambiguous_execs", float64(p.Unknown), "requests")
		point("client_retries", float64(p.Retries), "requests")
		point("reconnects", float64(p.Reconnects), "conns")
		point("resets", float64(p.Resets), "conns")
		point("lost_acks", float64(p.LostAcks), "commits")
		point("failover_ms", p.FailoverMs, "ms")
		point("recovery_ms", p.RecoveryMs, "ms")
		EmitTelemetry(e, "chaos", "asdb", r.SF, p.Spec.Name, p.Telemetry)
	}
}

// String renders the matrix as an aligned table.
func (r ChaosResult) String() string {
	s := fmt.Sprintf("chaos asdb sf=%d seed=%d rate=%g (schedule x crash x storm; quorum replication, resilient clients)\n",
		r.SF, r.Seed, r.Rate)
	s += fmt.Sprintf("%-18s %8s %8s %7s %6s %7s %7s %6s %5s %9s %9s %s\n",
		"cell", "offered", "goodput", "acked", "ambig", "retries", "reconn", "resets", "lost", "rto-ms", "recov-ms", "err")
	for _, p := range r.Points {
		s += fmt.Sprintf("%-18s %8.1f %8.1f %7d %6d %7d %7d %6d %5d %9.1f %9.1f %s\n",
			p.Spec.Name, p.OfferedRPS, p.GoodputRPS, p.Acked, p.Unknown, p.Retries,
			p.Reconnects, p.Resets, p.LostAcks, p.FailoverMs, p.RecoveryMs, p.Err)
	}
	return s
}

// Err returns the first failed cell, nil when every invariant held.
func (r ChaosResult) Err() error {
	names := make([]string, 0, len(r.Points))
	for _, p := range r.Points {
		if p.Err != "" {
			names = append(names, p.Spec.Name+": "+p.Err)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return fmt.Errorf("chaos: %d cells failed safety: %v", len(names), names)
}
