package harness

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sim"
)

// FaultSteps is the default fault-intensity axis of a resilience sweep.
// Intensity 0 is the recovery-enabled baseline the retention curve is
// normalized against; higher steps scale every fault axis's event rate.
var FaultSteps = []float64{0, 0.5, 1, 2, 4}

// ResiliencePoint is one intensity step's measurements.
type ResiliencePoint struct {
	Intensity  float64
	Throughput float64 // committed work only (retried successes count once)
	Retention  float64 // Throughput / step-0 Throughput

	FaultsInjected int64
	FaultIOErrors  int64
	IORetries      int64
	TxnRetries     int64
	QueryRetries   int64
	DeadlineKills  int64
	DegradedPlans  int64
	DegradedFailed int64 // QueriesFailed + QueriesCanceled
}

// ResilienceResult is one workload's throughput-retention curve.
type ResilienceResult struct {
	Workload Workload
	SF       int
	Points   []ResiliencePoint
}

// resilienceKnobs builds the knob set for one intensity step. Every step
// (including intensity 0) runs with the same statement deadline and retry
// policy, so retention isolates the impact of the faults themselves
// rather than of the recovery machinery.
func resilienceKnobs(opt Options, intensity float64) Knobs {
	fc := fault.DefaultConfig(opt.Seed)
	fc.Intensity = intensity
	return Knobs{
		Faults:      &fc,
		StmtTimeout: 30 * sim.Second,
		Retry:       engine.DefaultRetryPolicy(),
	}
}

// Resilience sweeps a workload across the fault-intensity axis and
// reports throughput retention plus the robustness counters. steps nil
// uses FaultSteps; step 0 (or the lowest step) anchors retention.
func Resilience(w Workload, sf int, opt Options, steps []float64) ResilienceResult {
	if steps == nil {
		steps = FaultSteps
	}
	rs := Sweep(opt.Parallel, len(steps), func(i int) Result {
		return runWorkload(w, sf, opt, resilienceKnobs(opt, steps[i]))
	}, opt.Progress)
	out := ResilienceResult{Workload: w, SF: sf}
	base := rs[0].Throughput
	for i, r := range rs {
		p := ResiliencePoint{
			Intensity:      steps[i],
			Throughput:     r.Throughput,
			FaultsInjected: r.Delta.FaultsInjected,
			FaultIOErrors:  r.Delta.FaultIOErrors,
			IORetries:      r.Delta.IORetries,
			TxnRetries:     r.Delta.TxnRetries,
			QueryRetries:   r.Delta.QueryRetries,
			DeadlineKills:  r.Delta.DeadlineKills,
			DegradedPlans:  r.Delta.DegradedPlans,
			DegradedFailed: r.Delta.QueriesFailed + r.Delta.QueriesCanceled,
		}
		if base > 0 {
			p.Retention = r.Throughput / base
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// String renders the curve as an aligned table.
func (r ResilienceResult) String() string {
	s := fmt.Sprintf("resilience %s sf=%d\n", r.Workload, r.SF)
	s += fmt.Sprintf("%9s %10s %9s %7s %8s %8s %8s %8s %7s %7s %7s\n",
		"intensity", "thruput", "retain%", "faults", "io-err", "io-rtry",
		"txn-rtry", "q-rtry", "dl-kill", "degrade", "failed")
	for _, p := range r.Points {
		s += fmt.Sprintf("%9.2f %10.2f %8.1f%% %7d %8d %8d %8d %8d %7d %7d %7d\n",
			p.Intensity, p.Throughput, p.Retention*100,
			p.FaultsInjected, p.FaultIOErrors, p.IORetries,
			p.TxnRetries, p.QueryRetries, p.DeadlineKills,
			p.DegradedPlans, p.DegradedFailed)
	}
	return s
}
