package harness

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func servingOpts() Options {
	opt := TestOptions()
	opt.Measure = 2 * sim.Second
	return opt
}

// TestServingSweepShedsPastSaturation checks the sweep's core claim:
// offered load rises monotonically across the grid, goodput saturates,
// and past saturation admission control sheds instead of letting the
// served tail collapse.
func TestServingSweepShedsPastSaturation(t *testing.T) {
	r := Serving(2000, servingOpts(), Knobs{}, nil)
	if len(r.Points) != len(ServingRates) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		if p.OfferedRPS <= 0 || p.Accepted == 0 {
			t.Fatalf("point %d inert: %+v", i, p)
		}
		if i > 0 && p.OfferedRPS <= r.Points[i-1].OfferedRPS {
			t.Fatalf("offered load not increasing at %d: %v then %v",
				i, r.Points[i-1].OfferedRPS, p.OfferedRPS)
		}
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.ShedRate != 0 {
		t.Fatalf("shedding at the lightest load: %+v", first)
	}
	if last.ShedRate == 0 {
		t.Fatalf("no shedding at %.0f offered rps: %+v", last.OfferedRPS, last)
	}
	if last.GoodputRPS <= 0 {
		t.Fatalf("goodput collapsed past saturation: %+v", last)
	}
	// Goodput retention: the overloaded point keeps a meaningful share of
	// the saturated goodput instead of spiraling down.
	peak := 0.0
	for _, p := range r.Points {
		if p.GoodputRPS > peak {
			peak = p.GoodputRPS
		}
	}
	if last.GoodputRPS < peak/3 {
		t.Fatalf("goodput retention %f of peak %f", last.GoodputRPS, peak)
	}
	if r.Storm.ShedRate == 0 || r.Storm.GoodputRPS <= 0 {
		t.Fatalf("storm cell: %+v", r.Storm)
	}
}

// TestServingSerialParallelIdentical is the sweep-isolation guarantee
// applied to the serving experiment: the emitted JSONL is byte-identical
// whether points run serially or on 4 workers.
func TestServingSerialParallelIdentical(t *testing.T) {
	emit := func(parallel int) []byte {
		opt := servingOpts()
		opt.Parallel = parallel
		opt.Telemetry = true
		var b bytes.Buffer
		e, err := NewEmitter(&b, "json")
		if err != nil {
			t.Fatal(err)
		}
		EmitServing(e, Serving(2000, opt, Knobs{}, []float64{4, 16, 64}))
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	serial := emit(1)
	par := emit(4)
	if !bytes.Equal(serial, par) {
		t.Fatalf("serial and parallel serving sweeps differ:\nserial %d bytes\nparallel %d bytes", len(serial), len(par))
	}
	if len(serial) == 0 {
		t.Fatal("empty emission")
	}
}

// TestServingDegradedEngagesUnderStorm checks the degrade-before-shed
// middle tier is reachable: under the storm cell's burst, some analytical
// requests run in degraded posture.
func TestServingDegradedEngagesUnderStorm(t *testing.T) {
	r := Serving(2000, servingOpts(), Knobs{}, []float64{16, 64})
	total := r.Storm.Degraded
	for _, p := range r.Points {
		total += p.Degraded
	}
	if total == 0 {
		t.Fatalf("degraded posture never engaged across the sweep")
	}
}
