// Package harness defines one experiment per table and figure in the
// paper's evaluation, wired to the engine, workloads, and the core
// sensitivity library. Each experiment point boots a fresh simulated
// server, applies the resource knobs (cpuset cores, CAT LLC mask, blkio
// bandwidth limits, MAXDOP, grant fraction), drives the workload through
// a warmup, and measures over a fixed window of simulated time.
package harness

import (
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload/asdb"
	"repro/internal/workload/htap"
	"repro/internal/workload/tpce"
	"repro/internal/workload/tpch"
)

// Knobs are the resource-allocation settings an experiment varies.
type Knobs struct {
	Cores          int     // logical cores in the cpuset (0 = all 32)
	LLCMB          int     // total CAT allocation in MB (0 = full 40)
	ReadLimitMBps  float64 // blkio read limit (0 = unlimited)
	WriteLimitMBps float64 // blkio write limit (0 = unlimited)
	MaxDOP         int     // resource-governor DOP cap (0 = cores)
	GrantPct       float64 // per-query memory grant fraction (0 = default 0.25)

	// Resilience knobs (the fault-injection experiments). All zero values
	// leave a point identical to a baseline run.
	Faults      *fault.Config      // fault injection (nil or disabled = none)
	StmtTimeout sim.Duration       // statement deadline (0 = none)
	Retry       engine.RetryPolicy // driver retry policy (zero = disabled)

	// Trace enables per-operator query tracing (engine.Config.Trace).
	Trace bool
}

// Options control scale-down density and measurement windows, so the
// same experiments run tiny in tests and denser in benchmarks.
type Options struct {
	// Density scales generated rows: tpch lineitem rows per SF,
	// tpce trades per customer, asdb rows per SF unit.
	Density int
	Warmup  sim.Duration
	Measure sim.Duration
	Users   int // OLTP users/clients override (0 = paper's counts)
	Streams int // TPC-H concurrent streams (0 = paper's 3)
	Seed    int64
	// MinQueries extends the measurement window (in Measure-sized hops,
	// up to 8) until at least this many queries complete — long-running
	// analytical points would otherwise quantize QPS badly.
	MinQueries int64
	// Parallel is how many worker goroutines sweeps fan experiment
	// points across (0 = GOMAXPROCS). Results are bit-identical at any
	// setting; see Sweep.
	Parallel int
	// Progress, when non-nil, receives per-point completion updates
	// during sweeps.
	Progress Progress

	// RowExec forces row-at-a-time execution for every point (the
	// default is the vectorized batch executor; engine.Config.RowExec).
	RowExec bool

	// Telemetry arms the engine-wide metric registry on every point
	// (engine.Config.Telemetry): each Result carries a sampled time-series
	// snapshot and sweep emitters export it as series records. Off, runs
	// are bit-identical to a build without telemetry.
	Telemetry bool
}

// DefaultOptions returns bench-scale settings.
func DefaultOptions() Options {
	return Options{
		Density:    200,
		Warmup:     2 * sim.Second,
		Measure:    10 * sim.Second,
		Seed:       1,
		MinQueries: 12,
	}
}

// TestOptions returns tiny settings for unit tests.
func TestOptions() Options {
	return Options{
		Density: 50,
		Warmup:  sim.Second,
		Measure: 3 * sim.Second,
		Users:   16,
		Streams: 2,
		Seed:    1,
	}
}

// Result is one experiment point's measurements.
type Result struct {
	Throughput float64 // queries/s (DSS), transactions/s (OLTP)
	OLTPTps    float64 // HTAP: transactional component
	DSSQps     float64 // HTAP: analytical component

	MPKI         float64
	IPC          float64
	SSDReadMBps  float64
	SSDWriteMBps float64
	DRAMMBps     float64

	ElapsedSecs float64 // actual measurement window (may exceed Measure)

	ReadBWSeries  []float64 // per-second SSD read MB/s (CDF material)
	WriteBWSeries []float64
	DRAMBWSeries  []float64

	WaitNs [metrics.NumWaitClasses]int64

	Delta metrics.Counters

	// QueryStats is the server's cumulative per-query-template statistics
	// at the end of the run (sorted by template label).
	QueryStats []metrics.QueryStatRow

	// Telemetry is the registry snapshot at the end of the run (nil
	// unless Options.Telemetry armed it).
	Telemetry *telemetry.Snapshot
}

// server builds and configures a server for the knobs.
func newServer(opt Options, k Knobs) *engine.Server {
	cfg := engine.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.MaxDOP = k.MaxDOP
	if k.GrantPct > 0 {
		cfg.GrantFrac = k.GrantPct
	}
	cfg.StmtTimeout = k.StmtTimeout
	cfg.Retry = k.Retry
	cfg.Trace = k.Trace
	cfg.RowExec = opt.RowExec
	cfg.Telemetry = opt.Telemetry
	srv := engine.NewServer(cfg)
	if k.Cores > 0 {
		srv.CPUs.AllowN(k.Cores)
	}
	if k.LLCMB > 0 {
		srv.M.SetCATMask(srv.M.CATMaskForMB(k.LLCMB))
	}
	if k.ReadLimitMBps > 0 {
		srv.BlkIO.SetReadLimit(k.ReadLimitMBps)
	}
	if k.WriteLimitMBps > 0 {
		srv.BlkIO.SetWriteLimit(k.WriteLimitMBps)
	}
	if k.Faults != nil && k.Faults.Enabled() {
		inj := fault.New(srv.Sim, *k.Faults, fault.Targets{
			Dev: srv.Dev, Log: srv.Log, BP: srv.BP, CPUs: srv.CPUs,
			Grants: srv, Ctr: srv.Ctr,
		})
		inj.Start()
		srv.AddStopHook(inj.Stop)
	}
	return srv
}

// driverHorizon is the furthest point drivers may run to: the base
// window plus every adaptive extension measure() might take. Drivers
// also stop as soon as the server is stopped.
func driverHorizon(opt Options) sim.Time {
	return sim.Time(opt.Warmup + 10*opt.Measure)
}

// measure runs the simulation through warmup and measurement, returning
// the measurement-window counter delta and bandwidth series.
func measure(srv *engine.Server, opt Options) Result {
	srv.Sim.Run(sim.Time(opt.Warmup))
	before := *srv.Ctr
	samplesBefore := len(srv.Smp.Samples)
	end := sim.Time(opt.Warmup + opt.Measure)
	srv.Sim.Run(end)
	delta := srv.Ctr.Sub(before)
	// Analytical points with few completions extend the window so QPS
	// does not quantize to multiples of 1/Measure.
	for hop := 0; opt.MinQueries > 0 &&
		delta.QueriesDone < opt.MinQueries && hop < 8; hop++ {
		end += sim.Time(opt.Measure)
		srv.Sim.Run(end)
		delta = srv.Ctr.Sub(before)
	}
	srv.Stop()
	srv.Sim.Run(end + sim.Time(600*sim.Second))

	secs := (sim.Duration(end) - opt.Warmup).Seconds()
	r := Result{Delta: delta, ElapsedSecs: secs}
	r.MPKI = delta.MPKI()
	if delta.Cycles > 0 {
		r.IPC = float64(delta.Instructions) / float64(delta.Cycles)
	}
	r.SSDReadMBps = float64(delta.SSDReadBytes) / 1e6 / secs
	r.SSDWriteMBps = float64(delta.SSDWriteBytes) / 1e6 / secs
	r.DRAMMBps = float64(delta.DRAMReadBytes+delta.DRAMWriteBytes) / 1e6 / secs
	r.WaitNs = delta.WaitNs
	r.QueryStats = srv.QStats.Snapshot()
	r.Telemetry = srv.Tel.Snapshot()
	for _, s := range srv.Smp.Samples[samplesBefore:] {
		if s.At > end {
			break
		}
		iv := s.Dur.Seconds()
		if iv <= 0 {
			iv = srv.Smp.Interval.Seconds()
		}
		r.ReadBWSeries = append(r.ReadBWSeries, float64(s.Delta.SSDReadBytes)/1e6/iv)
		r.WriteBWSeries = append(r.WriteBWSeries, float64(s.Delta.SSDWriteBytes)/1e6/iv)
		r.DRAMBWSeries = append(r.DRAMBWSeries, float64(s.Delta.DRAMReadBytes+s.Delta.DRAMWriteBytes)/1e6/iv)
	}
	return r
}

// RunTPCH measures TPC-H stream throughput (QPS) at one knob setting.
func RunTPCH(sf int, opt Options, k Knobs) Result {
	d := tpch.Build(tpch.Config{SF: sf, ActualLineitemPerSF: opt.Density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	streams := opt.Streams
	if streams <= 0 {
		streams = 3
	}
	var st tpch.StreamStats
	until := driverHorizon(opt)
	tpch.RunStreams(srv, d, streams, until, &st)
	r := measure(srv, opt)
	r.Throughput = float64(r.Delta.QueriesDone) / r.ElapsedSecs
	return r
}

// RunTPCE measures TPC-E throughput (TPS) at one knob setting.
func RunTPCE(customers int, opt Options, k Knobs) Result {
	opt.MinQueries = 0
	density := opt.Density / 25
	if density < 2 {
		density = 2
	}
	d := tpce.Build(tpce.Config{Customers: customers, ActualTradesPerCustomer: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	users := opt.Users
	if users <= 0 {
		users = 100
	}
	var st tpce.Stats
	until := driverHorizon(opt)
	tpce.RunUsers(srv, d, users, tpce.DefaultMix(), until, &st)
	r := measure(srv, opt)
	r.Throughput = float64(r.Delta.TxnCommits) / r.ElapsedSecs
	return r
}

// TPCEWaits runs TPC-E and returns the full wait-class breakdown plus
// per-object lock waits, for Table 3.
func TPCEWaits(customers int, opt Options, k Knobs) (Result, map[int]int64) {
	opt.MinQueries = 0
	density := opt.Density / 25
	if density < 2 {
		density = 2
	}
	d := tpce.Build(tpce.Config{Customers: customers, ActualTradesPerCustomer: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	users := opt.Users
	if users <= 0 {
		users = 100
	}
	var st tpce.Stats
	until := driverHorizon(opt)
	tpce.RunUsers(srv, d, users, tpce.DefaultMix(), until, &st)
	r := measure(srv, opt)
	r.Throughput = float64(r.Delta.TxnCommits) / r.ElapsedSecs
	return r, srv.Locks.WaitNsByObj
}

// RunASDB measures ASDB throughput (TPS) at one knob setting.
func RunASDB(sf int, opt Options, k Knobs) Result {
	opt.MinQueries = 0
	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	d := asdb.Build(asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	clients := opt.Users
	if clients <= 0 {
		clients = 128
	}
	var st asdb.Stats
	until := driverHorizon(opt)
	asdb.RunClients(srv, d, clients, asdb.DefaultMix(), until, &st)
	r := measure(srv, opt)
	r.Throughput = float64(r.Delta.TxnCommits) / r.ElapsedSecs
	return r
}

// buildASDB and buildTPCE expose raw database construction for Table 2.
func buildASDB(sf, density int, seed int64) *engine.Database {
	return asdb.Build(asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: seed}).DB
}

func buildTPCE(customers, density int, seed int64, withCSI bool) *engine.Database {
	return tpce.Build(tpce.Config{Customers: customers, ActualTradesPerCustomer: density, Seed: seed, WithCSI: withCSI}).DB
}

// RunHTAP measures the hybrid workload: TPS for the 99-user transactional
// component and QPS for the single analytical user.
func RunHTAP(customers int, opt Options, k Knobs) Result {
	density := opt.Density / 25
	if density < 2 {
		density = 2
	}
	d := htap.Build(htap.Config{Customers: customers, ActualTradesPerCustomer: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	users := opt.Users
	if users <= 0 {
		users = 99
	}
	var st htap.Stats
	until := driverHorizon(opt)
	htap.Run(srv, d, users, until, &st)
	r := measure(srv, opt)
	r.OLTPTps = float64(r.Delta.TxnCommits) / r.ElapsedSecs
	r.DSSQps = float64(r.Delta.QueriesDone) / r.ElapsedSecs
	r.Throughput = r.OLTPTps + r.DSSQps
	return r
}
