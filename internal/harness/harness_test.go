package harness

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestRunTPCHPointProducesSignal(t *testing.T) {
	opt := TestOptions()
	r := RunTPCH(1, opt, Knobs{})
	if r.Throughput <= 0 {
		t.Fatalf("QPS = %f", r.Throughput)
	}
	if r.MPKI <= 0 || r.DRAMMBps <= 0 {
		t.Fatalf("counters empty: mpki=%f dram=%f", r.MPKI, r.DRAMMBps)
	}
}

func TestCoreSweepScales(t *testing.T) {
	opt := TestOptions()
	// Tiny-scale queries correctly run serial plans (cost threshold), so
	// isolate inter-query parallelism: more streams than cores, MAXDOP
	// forced to 1 so plan changes cannot confound the sweep.
	opt.Streams = 8
	opt.Measure = 6 * sim.Second
	lo := RunTPCH(2, opt, Knobs{Cores: 1, MaxDOP: 1}).Throughput
	hi := RunTPCH(2, opt, Knobs{Cores: 8, MaxDOP: 1}).Throughput
	if hi <= lo {
		t.Fatalf("throughput did not scale with cores: 1c=%f 8c=%f", lo, hi)
	}
}

func TestLLCSweepHelps(t *testing.T) {
	opt := TestOptions()
	res := Fig2LLC(WTpch, []int{2}, []int{2, 40}, opt)
	perf := res.PerfBySF[2]
	small, _ := perf.At(2)
	full, _ := perf.At(40)
	if full < small {
		t.Fatalf("more cache slowed things down: 2MB=%f 40MB=%f", small, full)
	}
	mpki := res.MPKIBySF[2]
	mSmall, _ := mpki.At(2)
	mFull, _ := mpki.At(40)
	if mFull > mSmall {
		t.Fatalf("MPKI rose with more cache: 2MB=%f 40MB=%f", mSmall, mFull)
	}
}

func TestOLTPPointsRun(t *testing.T) {
	opt := TestOptions()
	if r := RunTPCE(300, opt, Knobs{Cores: 8}); r.Throughput <= 0 {
		t.Fatalf("TPC-E TPS = %f", r.Throughput)
	}
	if r := RunASDB(5, opt, Knobs{Cores: 8}); r.Throughput <= 0 {
		t.Fatalf("ASDB TPS = %f", r.Throughput)
	}
	r := RunHTAP(300, opt, Knobs{Cores: 8})
	if r.OLTPTps <= 0 || r.DSSQps <= 0 {
		t.Fatalf("HTAP components: tps=%f qps=%f", r.OLTPTps, r.DSSQps)
	}
}

func TestTable3ShowsIOShift(t *testing.T) {
	opt := TestOptions()
	res := Table3(200, 1500, opt)
	var lockRatio, ioRatio float64
	for _, r := range res.Ratios {
		switch r.Label {
		case metrics.WaitLock.String():
			lockRatio = r.Value()
		case metrics.WaitPageIOLatch.String():
			ioRatio = r.Value()
		}
	}
	if lockRatio >= 1 {
		t.Errorf("LOCK ratio = %.2f, want < 1 (less contention at larger SF)", lockRatio)
	}
	t.Logf("table3: ratios=%v sum=%v io=%v", res.Ratios, res.SumLockLatchPage.Value(), ioRatio)
}

func TestFig7PlanShapesDiffer(t *testing.T) {
	opt := TestOptions()
	small := Fig7(1, opt)
	if small.SerialShape == "" || small.ParShape == "" {
		t.Fatal("empty shapes")
	}
	t.Logf("sf1  serial=%s", small.SerialShape)
	t.Logf("sf1  dop32 =%s", small.ParShape)
	big := Fig7(300, opt)
	t.Logf("sf300 serial=%s", big.SerialShape)
	t.Logf("sf300 dop32 =%s", big.ParShape)
	if !strings.Contains(big.ParallelPlan, "⇉") && big.ParShape == big.SerialShape {
		t.Error("SF300 parallel plan identical to serial plan")
	}
}

func TestTable2RendersAllRows(t *testing.T) {
	opt := TestOptions()
	opt.Density = 30
	tb := Table2(opt)
	out := tb.Render()
	for _, name := range []string{"ASDB", "TPC-E", "HTAP", "TPC-H"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s in table:\n%s", name, out)
		}
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
	t.Logf("\n%s", out)
}

func TestExperimentDeterminism(t *testing.T) {
	opt := TestOptions()
	run := func() (float64, float64, int64) {
		r := RunTPCH(1, opt, Knobs{Cores: 8, LLCMB: 8})
		return r.Throughput, r.MPKI, r.Delta.Instructions
	}
	q1, m1, i1 := run()
	q2, m2, i2 := run()
	if q1 != q2 || m1 != m2 || i1 != i2 {
		t.Fatalf("same seed diverged: (%f,%f,%d) vs (%f,%f,%d)", q1, m1, i1, q2, m2, i2)
	}
}

func TestOLTPDeterminism(t *testing.T) {
	opt := TestOptions()
	a := RunASDB(5, opt, Knobs{Cores: 4})
	b := RunASDB(5, opt, Knobs{Cores: 4})
	if a.Delta.TxnCommits != b.Delta.TxnCommits || a.Delta.Instructions != b.Delta.Instructions {
		t.Fatalf("OLTP diverged: %d/%d vs %d/%d",
			a.Delta.TxnCommits, a.Delta.Instructions, b.Delta.TxnCommits, b.Delta.Instructions)
	}
}
