package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// CurveFamily is a set of curves keyed by scale factor — the shape of
// every Figure 2 panel.
type CurveFamily map[int]core.Curve

// sortedSFs returns the family's scale factors in ascending order.
func sortedSFs(m CurveFamily) []int {
	out := make([]int, 0, len(m))
	for sf := range m {
		out = append(out, sf)
	}
	sort.Ints(out)
	return out
}

// xValues returns the union of X coordinates across the family, sorted.
func xValues(m CurveFamily) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, c := range m {
		for _, p := range c.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// RenderFamily renders a curve family as an aligned text table with the
// knob values as columns (the dbsense output format).
func RenderFamily(title string, fam CurveFamily, knob string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", title)
	xs := xValues(fam)
	headers := []string{"SF \\ " + knob}
	for _, x := range xs {
		headers = append(headers, core.F(x))
	}
	t := core.Table{Headers: headers}
	for _, sf := range sortedSFs(fam) {
		row := []string{fmt.Sprint(sf)}
		c := fam[sf]
		for _, x := range xs {
			if y, ok := c.At(x); ok {
				row = append(row, core.F(y))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.Render())
	return b.String()
}

// WriteFamilyCSV writes the family as CSV (sf, x, y) rows for plotting.
func WriteFamilyCSV(w io.Writer, fam CurveFamily) error {
	if _, err := fmt.Fprintln(w, "sf,x,y"); err != nil {
		return err
	}
	for _, sf := range sortedSFs(fam) {
		for _, p := range fam[sf].Points {
			if _, err := fmt.Fprintf(w, "%d,%g,%g\n", sf, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCDFCSV writes a distribution's CDF as (value, fraction) CSV. Metric
// order is fixed so output is byte-stable run to run.
func WriteCDFCSV(w io.Writer, name string, res Fig4Result) error {
	if _, err := fmt.Fprintln(w, "metric,mbps,fraction"); err != nil {
		return err
	}
	for _, m := range []struct {
		label string
		d     interface{ CDF() [][2]float64 }
	}{
		{"dram", res.DRAM},
		{"ssd_read", res.SSDRead},
		{"ssd_write", res.SSDWrite},
	} {
		for _, pt := range m.d.CDF() {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", m.label, pt[0], pt[1]); err != nil {
				return err
			}
		}
	}
	_ = name
	return nil
}

// SpeedupMatrix renders a Fig6/Fig8-style per-query table.
type SpeedupMatrix struct {
	Title    string
	Cols     []string
	Queries  int
	SpeedupF func(query, col int) float64
}

// Render writes the matrix as an aligned table.
func (m SpeedupMatrix) Render() string {
	headers := append([]string{"query"}, m.Cols...)
	t := core.Table{Headers: headers}
	for q := 1; q <= m.Queries; q++ {
		row := []string{fmt.Sprintf("Q%d", q)}
		for c := range m.Cols {
			row = append(row, core.F(m.SpeedupF(q, c)))
		}
		t.AddRow(row...)
	}
	return fmt.Sprintf("-- %s --\n%s", m.Title, t.Render())
}
