package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func demoFamily() CurveFamily {
	a := core.Curve{Name: "a"}
	a.Add(2, 10)
	a.Add(8, 30)
	b := core.Curve{Name: "b"}
	b.Add(2, 5)
	b.Add(8, 12)
	return CurveFamily{10: a, 300: b}
}

func TestRenderFamily(t *testing.T) {
	out := RenderFamily("demo", demoFamily(), "cores")
	if !strings.Contains(out, "-- demo --") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "10") || !strings.HasPrefix(lines[4], "300") {
		t.Fatalf("rows not sorted by SF:\n%s", out)
	}
}

func TestRenderFamilyMissingPoints(t *testing.T) {
	fam := demoFamily()
	c := core.Curve{Name: "c"}
	c.Add(4, 7) // x=4 exists only here; 2 and 8 missing for this SF
	fam[30] = c
	out := RenderFamily("demo", fam, "cores")
	if !strings.Contains(out, "-") {
		t.Fatal("missing points should render as -")
	}
}

func TestWriteFamilyCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteFamilyCSV(&sb, demoFamily()); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "sf,x,y\n") {
		t.Fatalf("csv header missing: %q", got)
	}
	if !strings.Contains(got, "10,2,10\n") || !strings.Contains(got, "300,8,12\n") {
		t.Fatalf("csv rows wrong:\n%s", got)
	}
}

func TestWriteCDFCSV(t *testing.T) {
	res := Fig4Result{
		SSDRead:  metrics.NewDistribution([]float64{1, 2, 3}),
		SSDWrite: metrics.NewDistribution([]float64{4}),
		DRAM:     metrics.NewDistribution([]float64{5, 6}),
	}
	var sb strings.Builder
	if err := WriteCDFCSV(&sb, "x", res); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"metric,mbps,fraction", "ssd_read,", "ssd_write,4,1", "dram,"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestSpeedupMatrixRender(t *testing.T) {
	m := SpeedupMatrix{
		Title:   "demo",
		Cols:    []string{"dop1", "dop8"},
		Queries: 3,
		SpeedupF: func(q, c int) float64 {
			return float64(q) + float64(c)/10
		},
	}
	out := m.Render()
	if !strings.Contains(out, "Q3") || !strings.Contains(out, "dop8") {
		t.Fatalf("matrix render wrong:\n%s", out)
	}
}
