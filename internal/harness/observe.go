package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload/tpch"
)

// TraceResult is one traced query execution: the span tree plus the
// statement's attributed counters, ready to render or export.
type TraceResult struct {
	SF      int
	Query   int
	Elapsed sim.Duration
	Trace   *trace.Trace
	Stmt    *metrics.Counters
	Err     string // non-empty when the statement failed
}

// TraceTPCH runs one TPC-H query with tracing on and returns its
// EXPLAIN-ANALYZE material (the `dbsense trace` experiment).
func TraceTPCH(sf, qn int, opt Options) TraceResult {
	d := tpch.Build(tpch.Config{SF: sf, ActualLineitemPerSF: opt.Density, Seed: opt.Seed})
	srv := newServer(opt, Knobs{Trace: true})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	g := sim.NewRNG(opt.Seed)
	var res engine.QueryResult
	done := false
	srv.Sim.Spawn("trace-query", func(p *sim.Proc) {
		sess := srv.Open(p)
		defer sess.Close()
		res = sess.Query(d.Query(qn, g), engine.QueryOptions{})
		done = true
	})
	for hop := 0; hop < 10000 && !done; hop++ {
		srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
	}
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
	out := TraceResult{SF: sf, Query: qn, Elapsed: res.Elapsed, Trace: res.Trace, Stmt: res.Stmt}
	if res.Err != nil {
		out.Err = res.Err.Error()
	}
	return out
}

// Render returns the trace's actual-plan report.
func (t TraceResult) Render() string {
	if t.Trace == nil {
		return fmt.Sprintf("-- Q%d @ SF %d: no trace captured --\n", t.Query, t.SF)
	}
	s := t.Trace.Render()
	if t.Err != "" {
		s += fmt.Sprintf("-- statement failed: %s --\n", t.Err)
	}
	return s
}

// QStatsResult is the `dbsense qstats` experiment output: one measured
// run of a workload with the server's cumulative query statistics.
type QStatsResult struct {
	Workload Workload
	SF       int
	Result   Result
}

// RunQStats measures one workload at its default knobs and returns the
// query-stats snapshot alongside the usual point metrics.
func RunQStats(w Workload, sf int, opt Options) QStatsResult {
	return QStatsResult{Workload: w, SF: sf, Result: runWorkload(w, sf, opt, Knobs{})}
}

// QueryStatsTable renders a query-stats snapshot as the paper-style
// aligned table (the dm_exec_query_stats view).
func QueryStatsTable(rows []metrics.QueryStatRow) core.Table {
	t := core.Table{Headers: []string{
		"query", "execs", "err", "retry", "degr", "rows", "spills",
		"mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms", "top wait",
	}}
	for _, r := range rows {
		t.AddRow(
			r.Query,
			fmt.Sprint(r.Executions),
			fmt.Sprint(r.Errors),
			fmt.Sprint(r.Retries),
			fmt.Sprint(r.Degraded),
			fmt.Sprint(r.Rows),
			fmt.Sprint(r.Spills),
			core.F(r.Hist.Mean()/1e6),
			core.F(r.Hist.Quantile(0.50)/1e6),
			core.F(r.Hist.Quantile(0.95)/1e6),
			core.F(r.Hist.Quantile(0.99)/1e6),
			core.F(float64(r.MaxNs)/1e6),
			topWait(r.WaitNs),
		)
	}
	return t
}

// topWait names the wait class with the most time, or "-" when the row
// waited on nothing.
func topWait(waits [metrics.NumWaitClasses]int64) string {
	best, bestNs := metrics.WaitClass(0), int64(0)
	for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
		if waits[c] > bestNs {
			best, bestNs = c, waits[c]
		}
	}
	if bestNs == 0 {
		return "-"
	}
	return best.String()
}
