package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// SchemaVersion identifies the emitter record schema. Every record is
// stamped with it so mixed-version streams are detectable downstream
// (cmd/simstat refuses to aggregate across versions). Version 1 is the
// implicit pre-stamp schema; version 2 added the stamp itself plus the
// telemetry "series" record kind.
const SchemaVersion = 2

// Record is one exported observation. Every figure, table, time series,
// wait breakdown, query-stat row, and trace span flattens into this one
// schema, so downstream tooling parses a single shape regardless of the
// experiment. Unused fields are omitted (JSON) or empty (CSV). The field
// set is stable: additions append, nothing is renamed.
type Record struct {
	Record     string             `json:"record"`             // row type: point, curve_point, table_row, cdf_point, series_point, wait, query_stat, span
	Experiment string             `json:"experiment"`         // experiment id (fig2cores, table3, qstats, ...)
	Workload   string             `json:"workload,omitempty"` // tpch | tpce | asdb | htap
	SF         int                `json:"sf,omitempty"`       // scale factor
	Metric     string             `json:"metric,omitempty"`   // what Value measures (throughput, mpki, wait class, ...)
	Name       string             `json:"name,omitempty"`     // object label (curve name, query template, operator)
	Knob       string             `json:"knob,omitempty"`     // swept knob (cores, llc_mb, read_limit_mbps, ...)
	X          float64            `json:"x,omitempty"`        // knob setting / CDF value / series index
	Value      float64            `json:"value,omitempty"`    // measured value
	Unit       string             `json:"unit,omitempty"`     // Value's unit (qps, tps, MB/s, ms, ns, frac)
	Text       string             `json:"text,omitempty"`     // free-form cell payload (table rows)
	Fields     map[string]float64 `json:"fields,omitempty"`   // named sub-values (query-stat and span details)

	// SchemaVersion is stamped by Emit on every record (never set it at a
	// call site); appended last so older columns keep their positions.
	SchemaVersion int `json:"schema_version"`
}

// csvHeader is the fixed CSV column order; Fields flattens into the last
// column as "k=v;k=v" sorted by key.
var csvHeader = []string{
	"record", "experiment", "workload", "sf", "metric", "name",
	"knob", "x", "value", "unit", "text", "fields", "schema_version",
}

// Emitter writes Records as JSON Lines or CSV. Output is deterministic:
// JSON uses struct field order and sorted map keys, CSV a fixed column
// set, and no record carries wall-clock state — the same experiment at
// the same seed emits byte-identical output.
type Emitter struct {
	format string // "json" or "csv"
	w      io.Writer
	cw     *csv.Writer
	err    error
}

// NewEmitter creates an emitter for format "json" (JSONL) or "csv"
// (fixed-column, header row first).
func NewEmitter(w io.Writer, format string) (*Emitter, error) {
	e := &Emitter{format: format, w: w}
	switch format {
	case "json":
	case "csv":
		e.cw = csv.NewWriter(w)
		e.err = e.cw.Write(csvHeader)
	default:
		return nil, fmt.Errorf("harness: unknown emit format %q (want json or csv)", format)
	}
	return e, nil
}

// Emit writes one record. A nil emitter discards, so call sites need no
// guards. The first write error sticks and is returned by Close.
func (e *Emitter) Emit(r Record) {
	if e == nil || e.err != nil {
		return
	}
	r.SchemaVersion = SchemaVersion
	switch e.format {
	case "json":
		b, err := json.Marshal(r)
		if err != nil {
			e.err = err
			return
		}
		b = append(b, '\n')
		_, e.err = e.w.Write(b)
	case "csv":
		e.err = e.cw.Write([]string{
			r.Record, r.Experiment, r.Workload, itoa(r.SF), r.Metric, r.Name,
			r.Knob, ftoa(r.X), ftoa(r.Value), r.Unit, r.Text, flattenFields(r.Fields),
			strconv.Itoa(r.SchemaVersion),
		})
	}
}

// Close flushes buffered output and returns the first error seen.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	if e.cw != nil {
		e.cw.Flush()
		if e.err == nil {
			e.err = e.cw.Error()
		}
	}
	return e.err
}

func itoa(v int) string {
	if v == 0 {
		return ""
	}
	return strconv.Itoa(v)
}

// ftoa formats floats with 'g' at full precision so values round-trip
// and identical runs produce identical bytes.
func ftoa(v float64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func flattenFields(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.FormatFloat(m[k], 'g', -1, 64)
	}
	return strings.Join(parts, ";")
}

// EmitCurve exports a response curve as curve_point records.
func EmitCurve(e *Emitter, experiment, workload string, sf int, metric, knob, unit string, c core.Curve) {
	for _, p := range c.Points {
		e.Emit(Record{
			Record: "curve_point", Experiment: experiment, Workload: workload, SF: sf,
			Metric: metric, Name: c.Name, Knob: knob, X: p.X, Value: p.Y, Unit: unit,
		})
	}
}

// EmitFamily exports a curve family (one curve per scale factor).
func EmitFamily(e *Emitter, experiment, workload, metric, knob, unit string, fam CurveFamily) {
	for _, sf := range sortedSFs(fam) {
		EmitCurve(e, experiment, workload, sf, metric, knob, unit, fam[sf])
	}
}

// EmitTable exports a rendered table one table_row record per row, with
// cells packed into Text as "header=cell; ...".
func EmitTable(e *Emitter, experiment, name string, t core.Table) {
	if e == nil {
		return
	}
	for _, row := range t.Rows {
		parts := make([]string, 0, len(row))
		for i, cell := range row {
			h := ""
			if i < len(t.Headers) {
				h = t.Headers[i]
			}
			parts = append(parts, h+"="+cell)
		}
		e.Emit(Record{
			Record: "table_row", Experiment: experiment, Name: name,
			Text: strings.Join(parts, "; "),
		})
	}
}

// EmitDistribution exports a sample distribution: its CDF points plus a
// percentile summary record.
func EmitDistribution(e *Emitter, experiment, workload string, sf int, metric, unit string, d metrics.Distribution) {
	if e == nil {
		return
	}
	for _, pt := range d.CDF() {
		e.Emit(Record{
			Record: "cdf_point", Experiment: experiment, Workload: workload, SF: sf,
			Metric: metric, X: pt[0], Value: pt[1], Unit: unit,
		})
	}
	e.Emit(Record{
		Record: "point", Experiment: experiment, Workload: workload, SF: sf,
		Metric: metric + "_summary", Unit: unit,
		Fields: map[string]float64{
			"p10": d.Percentile(10), "p50": d.Percentile(50),
			"p90": d.Percentile(90), "p99": d.Percentile(99),
			"mean": d.Mean(), "n": float64(len(d.Sorted)),
		},
	})
}

// EmitResult exports one experiment point in full: the summary metrics,
// the per-interval bandwidth series, the wait-class breakdown, and the
// server's query-stats snapshot.
func EmitResult(e *Emitter, experiment, workload string, sf int, knob string, x float64, r Result) {
	if e == nil {
		return
	}
	e.Emit(Record{
		Record: "point", Experiment: experiment, Workload: workload, SF: sf,
		Knob: knob, X: x,
		Fields: map[string]float64{
			"throughput":     r.Throughput,
			"oltp_tps":       r.OLTPTps,
			"dss_qps":        r.DSSQps,
			"mpki":           r.MPKI,
			"ipc":            r.IPC,
			"ssd_read_mbps":  r.SSDReadMBps,
			"ssd_write_mbps": r.SSDWriteMBps,
			"dram_mbps":      r.DRAMMBps,
			"elapsed_secs":   r.ElapsedSecs,
		},
	})
	for _, s := range []struct {
		metric string
		vals   []float64
	}{
		{"ssd_read_mbps", r.ReadBWSeries},
		{"ssd_write_mbps", r.WriteBWSeries},
		{"dram_mbps", r.DRAMBWSeries},
	} {
		for i, v := range s.vals {
			e.Emit(Record{
				Record: "series_point", Experiment: experiment, Workload: workload, SF: sf,
				Metric: s.metric, Knob: knob, X: float64(i), Value: v, Unit: "MB/s",
			})
		}
	}
	EmitWaits(e, experiment, workload, sf, knob, x, r.WaitNs)
	EmitQueryStats(e, experiment, workload, sf, r.QueryStats)
	EmitTelemetry(e, experiment, workload, sf, knob, r.Telemetry)
}

// EmitWaits exports a wait-class breakdown, one wait record per class
// (zero classes included, so the schema is stable).
func EmitWaits(e *Emitter, experiment, workload string, sf int, knob string, x float64, waits [metrics.NumWaitClasses]int64) {
	if e == nil {
		return
	}
	for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
		e.Emit(Record{
			Record: "wait", Experiment: experiment, Workload: workload, SF: sf,
			Metric: c.String(), Knob: knob, X: x, Value: float64(waits[c]), Unit: "ns",
		})
	}
}

// EmitQueryStats exports a query-stats snapshot, one query_stat record
// per template with the cumulative counters and latency percentiles.
func EmitQueryStats(e *Emitter, experiment, workload string, sf int, rows []metrics.QueryStatRow) {
	if e == nil {
		return
	}
	for _, r := range rows {
		f := map[string]float64{
			"executions": float64(r.Executions),
			"errors":     float64(r.Errors),
			"kills":      float64(r.Kills),
			"retries":    float64(r.Retries),
			"degraded":   float64(r.Degraded),
			"rows":       float64(r.Rows),
			"spills":     float64(r.Spills),
			"total_ms":   float64(r.TotalNs) / 1e6,
			"max_ms":     float64(r.MaxNs) / 1e6,
			"mean_ms":    r.Hist.Mean() / 1e6,
			"p50_ms":     r.Hist.Quantile(0.50) / 1e6,
			"p95_ms":     r.Hist.Quantile(0.95) / 1e6,
			"p99_ms":     r.Hist.Quantile(0.99) / 1e6,
		}
		for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
			f["wait_"+strings.ToLower(c.String())+"_ms"] = float64(r.WaitNs[c]) / 1e6
		}
		e.Emit(Record{
			Record: "query_stat", Experiment: experiment, Workload: workload, SF: sf,
			Name: r.Query, Fields: f,
		})
	}
}

// EmitTelemetry exports a telemetry registry snapshot: one series record
// per sample with Metric = "subsystem.name" and X = the sample's
// simulated time in seconds, plus a summary point per histogram-backed
// series (counts, mean, and tail quantiles in ns).
func EmitTelemetry(e *Emitter, experiment, workload string, sf int, knob string, snap *telemetry.Snapshot) {
	if e == nil || snap == nil {
		return
	}
	for _, s := range snap.Series {
		m := s.Subsystem + "." + s.Name
		for _, pt := range s.Points {
			e.Emit(Record{
				Record: "series", Experiment: experiment, Workload: workload, SF: sf,
				Metric: m, Name: s.Kind, Knob: knob, X: pt.At.Seconds(), Value: pt.Value, Unit: s.Unit,
			})
		}
		if s.Hist != nil && s.Hist.N > 0 {
			e.Emit(Record{
				Record: "point", Experiment: experiment, Workload: workload, SF: sf,
				Metric: m + "_summary", Unit: "ns",
				Fields: map[string]float64{
					"n":      float64(s.Hist.N),
					"mean":   s.Hist.Mean(),
					"p50":    s.Hist.Quantile(0.50),
					"p95":    s.Hist.Quantile(0.95),
					"p99":    s.Hist.Quantile(0.99),
					"max_ns": float64(s.Hist.MaxNs),
				},
			})
		}
	}
}

// EmitTrace exports a query trace, one span record per operator in
// pre-order with its depth, so the tree reconstructs from the stream.
func EmitTrace(e *Emitter, experiment, workload string, sf int, tr *trace.Trace) {
	if e == nil || tr == nil || tr.Root == nil {
		return
	}
	var walk func(s *trace.Span, depth int)
	walk = func(s *trace.Span, depth int) {
		par := 0.0
		if s.Parallel {
			par = 1
		}
		e.Emit(Record{
			Record: "span", Experiment: experiment, Workload: workload, SF: sf,
			Metric: s.Op, Name: tr.Query, Text: s.Name,
			Fields: map[string]float64{
				"depth":         float64(depth),
				"parallel":      par,
				"est_rows":      s.EstRows,
				"act_rows":      float64(s.ActRows),
				"nom_rows":      float64(s.NomRows),
				"elapsed_ms":    s.Elapsed().Seconds() * 1e3,
				"self_ms":       s.SelfElapsed().Seconds() * 1e3,
				"buffer_hits":   float64(s.BufferHits),
				"buffer_misses": float64(s.BufferMisses),
				"spills":        float64(s.Spills),
				"wait_ms":       float64(s.TotalWaitNs()) / 1e6,
			},
		})
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(tr.Root, 0)
}
