package harness

import (
	"reflect"
	"testing"

	"repro/internal/repl"
)

// TestReplicationSweepVerifies runs a small replication sweep and
// requires every cell to quiesce with primary/standby digest equality.
func TestReplicationSweepVerifies(t *testing.T) {
	opt := TestOptions()
	r := Replication(1, opt, []repl.Mode{repl.ModeAsync, repl.ModeSync}, []float64{200}, []int{1})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Points {
		if p.TPS <= 0 || p.AppliedTxns == 0 || p.ShippedMB == 0 {
			t.Fatalf("dead cell: %+v", p)
		}
	}
	var syncAck, asyncAck float64
	for _, p := range r.Points {
		switch p.Mode {
		case repl.ModeSync:
			syncAck = p.CommitAckMs
		case repl.ModeAsync:
			asyncAck = p.CommitAckMs
		}
	}
	if asyncAck != 0 {
		t.Fatalf("async commits waited %.3fms for acks", asyncAck)
	}
	if syncAck <= 0 {
		t.Fatal("sync commits recorded no ack wait")
	}
}

// TestReplicationSweepDeterministicAcrossParallel checks that the sweep
// is bit-identical serial vs parallel — each cell boots an isolated sim.
func TestReplicationSweepDeterministicAcrossParallel(t *testing.T) {
	modes := []repl.Mode{repl.ModeAsync, repl.ModeQuorum, repl.ModeSync}
	opt := TestOptions()
	opt.Parallel = 1
	serial := Replication(1, opt, modes, []float64{200}, []int{1})
	opt.Parallel = 4
	parallel := Replication(1, opt, modes, []float64{200}, []int{1})
	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(parallel.Points))
	}
	for i := range serial.Points {
		if !reflect.DeepEqual(serial.Points[i], parallel.Points[i]) {
			t.Fatalf("point %d differs:\nserial:   %+v\nparallel: %+v",
				i, serial.Points[i], parallel.Points[i])
		}
	}
}

// TestFailoverSweepInvariants runs the failover sweep (crash, promote,
// verify, PITR) per commit mode and checks the robustness invariants.
func TestFailoverSweepInvariants(t *testing.T) {
	opt := TestOptions()
	r := Failover(1, opt, []repl.Mode{repl.ModeAsync, repl.ModeQuorum})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c.Failover.RTO <= 0 {
			t.Fatalf("mode %s: zero RTO", c.Mode)
		}
		if c.Failover.LostAckedCommits != 0 {
			t.Fatalf("mode %s: %d acked commits lost", c.Mode, c.Failover.LostAckedCommits)
		}
		if c.PITR.LandedLSN == 0 || c.PITR.LandedLSN != c.PITR.TargetLSN {
			t.Fatalf("mode %s: PITR landed at %d, target %d", c.Mode, c.PITR.LandedLSN, c.PITR.TargetLSN)
		}
		if c.Mode == repl.ModeQuorum && c.Failover.AckedCommits == 0 {
			t.Fatalf("mode %s: no commits acked before the crash", c.Mode)
		}
	}
}

// TestReplicatedHTAPRoutesReads runs the hybrid workload with analytical
// routing to standbys and verifies digests plus a nonzero routed share.
func TestReplicatedHTAPRoutesReads(t *testing.T) {
	opt := TestOptions()
	opt.Users = 8
	r := ReplicatedHTAP(40, opt, Knobs{}, repl.Config{Mode: repl.ModeAsync, Replicas: 1})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.OLTPTps <= 0 || r.DSSQps <= 0 {
		t.Fatalf("dead workload: oltp %.1f tps, dss %.2f qps", r.OLTPTps, r.DSSQps)
	}
	if r.ReplicaFrac <= 0 {
		t.Fatal("no analytical queries were routed to the standby")
	}
}
