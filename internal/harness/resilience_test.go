package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sim"
)

// TestFaultFreeKnobsMatchBaseline pins the tentpole's determinism
// guarantee: a disabled fault config must leave a run byte-identical to
// one that never mentions faults at all.
func TestFaultFreeKnobsMatchBaseline(t *testing.T) {
	opt := TestOptions()
	fc := fault.DefaultConfig(opt.Seed)
	fc.Intensity = 0 // disabled: the injector must not even start
	a := RunASDB(2, opt, Knobs{})
	b := RunASDB(2, opt, Knobs{Faults: &fc})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-free run diverged from baseline:\n%+v\nvs\n%+v", a.Delta, b.Delta)
	}
}

// TestFaultedRunDeterminism: same seed and fault config, identical
// results — including the fault timeline and every recovery counter.
func TestFaultedRunDeterminism(t *testing.T) {
	opt := TestOptions()
	knobs := func() Knobs {
		fc := fault.DefaultConfig(opt.Seed)
		fc.Intensity = 4
		return Knobs{
			Faults:      &fc,
			StmtTimeout: 30 * sim.Second,
			Retry:       engine.DefaultRetryPolicy(),
		}
	}
	a := RunASDB(2, opt, knobs())
	b := RunASDB(2, opt, knobs())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs diverged:\n%+v\nvs\n%+v", a.Delta, b.Delta)
	}
	if a.Delta.FaultsInjected == 0 {
		t.Fatal("no faults injected at intensity 4")
	}
	if a.Throughput <= 0 {
		t.Fatalf("throughput = %f under faults", a.Throughput)
	}
}

func TestResilienceSweepEndToEnd(t *testing.T) {
	opt := TestOptions()
	res := Resilience(WTpce, 200, opt, []float64{0, 2})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	p0, p1 := res.Points[0], res.Points[1]
	if p0.Retention != 1 {
		t.Fatalf("anchor retention = %f, want 1", p0.Retention)
	}
	if p0.FaultsInjected != 0 {
		t.Fatalf("anchor injected %d faults", p0.FaultsInjected)
	}
	if p1.FaultsInjected == 0 {
		t.Fatal("intensity 2 injected no faults")
	}
	if p1.Throughput <= 0 {
		t.Fatalf("throughput = %f under faults", p1.Throughput)
	}
	out := res.String()
	for _, col := range []string{"intensity", "retain%", "txn-rtry", "dl-kill"} {
		if !strings.Contains(out, col) {
			t.Fatalf("rendered table missing %q:\n%s", col, out)
		}
	}
}
