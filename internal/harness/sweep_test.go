package harness

import (
	"reflect"
	"testing"
	"time"
)

func TestSweepPreservesInputOrder(t *testing.T) {
	got := Sweep(4, 25, func(i int) int { return i * i }, nil)
	if len(got) != 25 {
		t.Fatalf("results = %d, want 25", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestSweepProgressReachesTotal(t *testing.T) {
	calls := 0
	last := 0
	Sweep(3, 7, func(i int) int { return i }, func(done, total int, elapsed time.Duration) {
		calls++
		last = done
		if total != 7 {
			t.Errorf("total = %d, want 7", total)
		}
		if elapsed < 0 {
			t.Errorf("elapsed = %v", elapsed)
		}
	})
	if calls != 7 || last != 7 {
		t.Fatalf("progress calls = %d (last done = %d), want 7/7", calls, last)
	}
}

func TestSweepHandlesEmptyAndSerial(t *testing.T) {
	if got := Sweep(8, 0, func(i int) int { return i }, nil); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
	got := Sweep(1, 3, func(i int) int { return i + 1 }, nil)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("serial sweep = %v", got)
	}
}

// TestSweepSerialParallelIdentical is the standing determinism check the
// parallel executor rests on: the same points measured serially and on a
// worker pool must produce bit-identical Results point-for-point. Run
// with -race (CI does) to also prove points share no mutable state.
func TestSweepSerialParallelIdentical(t *testing.T) {
	opt := TestOptions()
	points := []Point{
		{Workload: WTpch, SF: 1, Knobs: Knobs{Cores: 4}},
		{Workload: WTpch, SF: 2, Knobs: Knobs{LLCMB: 8}},
		{Workload: WAsdb, SF: 5, Knobs: Knobs{Cores: 8}},
		{Workload: WHtap, SF: 300, Knobs: Knobs{Cores: 8}},
	}
	opt.Parallel = 1
	serial := RunPoints(points, opt)
	opt.Parallel = 4
	par := RunPoints(points, opt)
	if len(serial) != len(points) || len(par) != len(points) {
		t.Fatalf("result lengths: serial=%d par=%d", len(serial), len(par))
	}
	for i := range points {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Errorf("point %d (%+v) diverged:\n serial: tput=%v mpki=%v instr=%v\n par:    tput=%v mpki=%v instr=%v",
				i, points[i],
				serial[i].Throughput, serial[i].MPKI, serial[i].Delta.Instructions,
				par[i].Throughput, par[i].MPKI, par[i].Delta.Instructions)
		}
	}
}

// TestFig6SerialParallelIdentical covers the per-query-timing sweeps
// (Fig6/Fig8 style), which do not go through RunPoints.
func TestFig6SerialParallelIdentical(t *testing.T) {
	opt := TestOptions()
	opt.Density = 30
	opt.Parallel = 1
	serial := Fig6(1, opt, []int{1, 4})
	opt.Parallel = 4
	par := Fig6(1, opt, []int{1, 4})
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Fig6 diverged between parallel=1 and parallel=4")
	}
}
