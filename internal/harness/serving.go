package harness

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload/asdb"
	"repro/internal/workload/openloop"
)

// ServingRates is the default offered-load grid (connection arrivals per
// second; each connection issues ~8 requests). The grid was calibrated
// once against the default front end (8 workers over the ASDB catalog)
// so it spans comfortable load through well past saturation.
var ServingRates = []float64{2, 4, 8, 16, 32, 64}

// ServingPoint is one offered-load cell of the serving sweep.
type ServingPoint struct {
	RatePerSec float64 // connection arrival rate driven
	OfferedRPS float64 // requests/s the plan offers (exact, from the schedule)
	GoodputRPS float64 // OK replies per second over the measure window

	P50Ms, P99Ms, P999Ms float64 // served-request latency percentiles

	ShedRate float64 // shed replies / all replies in the window
	Shed     int64   // CodeOverloaded replies observed by clients
	Refused  int64   // dials refused (accept backlog / listener down)
	Dropped  int64   // requests cut off by shutdown or transport teardown
	Degraded int64   // queries the front end ran in degraded posture
	Accepted int64   // connections accepted

	// Telemetry is the engine+serve registry snapshot (nil unless
	// Options.Telemetry armed it).
	Telemetry *telemetry.Snapshot
}

// ServingResult is the offered-load response surface plus one storm cell.
type ServingResult struct {
	SF     int
	Points []ServingPoint
	// Storm drives a mid-grid base rate with a 6x arrival burst through
	// the middle half of the measure window — the overload-resilience
	// scenario: admission control should shed through the burst and
	// recover, not collapse.
	Storm ServingPoint
}

func pctMs(sorted []sim.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(sim.Millisecond)
}

// runServingPoint boots an isolated simulation — engine, front end,
// transport, traffic plan — for one offered load.
func runServingPoint(sf int, opt Options, k Knobs, rate float64, storm *openloop.Storm) ServingPoint {
	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	d := asdb.Build(asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	f := serve.New(srv, d, serve.Config{})
	if err := f.Start(); err != nil {
		panic(err) // address collision cannot happen on a fresh network
	}

	horizon := opt.Warmup + opt.Measure
	plan := openloop.Build(openloop.Config{
		Rate: rate, Horizon: horizon, QueryFrac: 0.02, Storm: storm,
	}, srv.Sim.RNG().Fork())
	var st openloop.Stats
	openloop.Run(srv.Sim, f.Net, f.Cfg.Addr, plan, &st)

	end := sim.Time(horizon)
	srv.Sim.Run(end)
	// Let in-flight requests finish before stopping, so tail latencies
	// near the window edge are observed rather than cut off.
	srv.Sim.Run(end + sim.Time(10*sim.Second))
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))

	warm := sim.Time(opt.Warmup)
	var served []sim.Duration
	var okN, shedN, replies int64
	for _, s := range st.Samples {
		if s.At <= warm || s.At > end+sim.Time(10*sim.Second) {
			continue
		}
		replies++
		if s.OK {
			okN++
			served = append(served, s.Lat)
		} else {
			shedN++
		}
	}
	sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })

	p := ServingPoint{
		RatePerSec: rate,
		OfferedRPS: plan.OfferedRPS(),
		GoodputRPS: float64(okN) / opt.Measure.Seconds(),
		P50Ms:      pctMs(served, 0.50),
		P99Ms:      pctMs(served, 0.99),
		P999Ms:     pctMs(served, 0.999),
		Shed:       st.Shed,
		Refused:    st.Refused,
		Dropped:    st.Dropped,
		Degraded:   f.Ctr.Degraded,
		Accepted:   f.Ctr.Accepted,
		Telemetry:  srv.Tel.Snapshot(),
	}
	if replies > 0 {
		p.ShedRate = float64(shedN) / float64(replies)
	}
	return p
}

// ServeOnce runs a single serving cell at the given connection-arrival
// rate, optionally with the storm burst — the `dbsense serve` entry
// point.
func ServeOnce(sf int, opt Options, k Knobs, rate float64, storm bool) ServingPoint {
	var s *openloop.Storm
	if storm {
		s = &openloop.Storm{
			At:  opt.Warmup + opt.Measure/4,
			Dur: opt.Measure / 2,
			X:   6,
		}
	}
	return runServingPoint(sf, opt, k, rate, s)
}

// Serving sweeps offered load through saturation on the serving front
// end and runs the storm cell. Nil rates takes ServingRates. Cells boot
// isolated simulations: results are bit-identical at any opt.Parallel.
func Serving(sf int, opt Options, k Knobs, rates []float64) ServingResult {
	if rates == nil {
		rates = ServingRates
	}
	// The storm cell runs as one more sweep slot so it parallelizes with
	// the grid.
	n := len(rates) + 1
	stormRate := rates[len(rates)/2]
	points := Sweep(opt.Parallel, n, func(i int) ServingPoint {
		if i < len(rates) {
			return runServingPoint(sf, opt, k, rates[i], nil)
		}
		return runServingPoint(sf, opt, k, stormRate, &openloop.Storm{
			At:  opt.Warmup + opt.Measure/4,
			Dur: opt.Measure / 2,
			X:   6,
		})
	}, opt.Progress)
	return ServingResult{SF: sf, Points: points[:len(rates)], Storm: points[len(rates)]}
}

// EmitServing exports the sweep: goodput, latency-percentile, and
// shed-rate curves against offered load, the storm cell as point
// records, and (when armed) each cell's telemetry series.
func EmitServing(e *Emitter, r ServingResult) {
	curve := func(name, unit string, y func(ServingPoint) float64) {
		pts := make([]core.Point, len(r.Points))
		for i, p := range r.Points {
			pts[i] = core.Point{X: p.OfferedRPS, Y: y(p)}
		}
		EmitCurve(e, "serving", "asdb", r.SF, name, "offered_rps", unit, core.NewCurve(name, pts))
	}
	curve("goodput", "rps", func(p ServingPoint) float64 { return p.GoodputRPS })
	curve("p50", "ms", func(p ServingPoint) float64 { return p.P50Ms })
	curve("p99", "ms", func(p ServingPoint) float64 { return p.P99Ms })
	curve("p999", "ms", func(p ServingPoint) float64 { return p.P999Ms })
	curve("shed_rate", "frac", func(p ServingPoint) float64 { return p.ShedRate })
	curve("degraded", "requests", func(p ServingPoint) float64 { return float64(p.Degraded) })
	storm := func(metric string, v float64, unit string) {
		e.Emit(Record{
			Record: "point", Experiment: "serving", Workload: "asdb", SF: r.SF,
			Metric: metric, Name: "storm", X: r.Storm.OfferedRPS, Value: v, Unit: unit,
		})
	}
	storm("goodput", r.Storm.GoodputRPS, "rps")
	storm("p99", r.Storm.P99Ms, "ms")
	storm("shed_rate", r.Storm.ShedRate, "frac")
	storm("degraded", float64(r.Storm.Degraded), "requests")
	for _, p := range r.Points {
		EmitTelemetry(e, "serving", "asdb", r.SF,
			fmt.Sprintf("offered_rps=%g", p.OfferedRPS), p.Telemetry)
	}
	EmitTelemetry(e, "serving", "asdb", r.SF, "storm", r.Storm.Telemetry)
}

// String renders the sweep as an aligned table.
func (r ServingResult) String() string {
	s := fmt.Sprintf("serving asdb sf=%d (open-loop offered load; 8 workers, degrade-then-shed admission)\n", r.SF)
	s += fmt.Sprintf("%9s %9s %9s %8s %8s %8s %9s %7s %8s %8s\n",
		"offered", "goodput", "p50-ms", "p99-ms", "p999-ms", "shed%", "refused", "dropped", "degraded", "conns")
	row := func(p ServingPoint) string {
		return fmt.Sprintf("%9.1f %9.1f %9.3f %8.2f %8.2f %8.2f %9d %7d %8d %8d\n",
			p.OfferedRPS, p.GoodputRPS, p.P50Ms, p.P99Ms, p.P999Ms,
			100*p.ShedRate, p.Refused, p.Dropped, p.Degraded, p.Accepted)
	}
	for _, p := range r.Points {
		s += row(p)
	}
	s += "storm (6x burst through mid-window):\n"
	s += row(r.Storm)
	return s
}
