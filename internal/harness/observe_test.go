package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceTPCHCapturesSpans(t *testing.T) {
	opt := TestOptions()
	res := TraceTPCH(1, 14, opt)
	if res.Err != "" {
		t.Fatalf("traced query failed: %s", res.Err)
	}
	if res.Trace == nil || res.Trace.Root == nil {
		t.Fatal("no span tree captured")
	}
	root := res.Trace.Root
	if root.End <= root.Start {
		t.Fatalf("root span has no duration: %+v", root)
	}
	if len(root.Children) == 0 {
		t.Fatal("Q14 plan should have child operators")
	}
	if res.Stmt == nil || res.Stmt.Instructions == 0 {
		t.Fatal("statement counters not attributed")
	}

	out := res.Render()
	for _, want := range []string{"actual plan: tpch.Q14", "act ", "waits:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// Tracing reads the simulation, never drives it: a second identical
	// run renders the identical report.
	res2 := TraceTPCH(1, 14, opt)
	if out2 := res2.Render(); out2 != out {
		t.Fatalf("trace not deterministic:\n%s\nvs\n%s", out, out2)
	}

	var b bytes.Buffer
	e, err := NewEmitter(&b, "json")
	if err != nil {
		t.Fatal(err)
	}
	EmitTrace(e, "trace", "tpch", 1, res.Trace)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), `"record":"span"`); n < 2 {
		t.Fatalf("span records = %d, want the whole tree", n)
	}
}

// TestTracingDoesNotPerturbResults: the tentpole invariant — turning
// tracing and query-stats collection on must not move a single measured
// number, because spans only read the statement counters on the
// simulated clock.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	opt := TestOptions()
	a := RunTPCH(1, opt, Knobs{})
	b := RunTPCH(1, opt, Knobs{Trace: true})
	if a.Throughput != b.Throughput || a.MPKI != b.MPKI || a.SSDReadMBps != b.SSDReadMBps {
		t.Fatalf("tracing changed results: %+v vs %+v", a, b)
	}
}

func TestRunQStatsCollectsTemplates(t *testing.T) {
	opt := TestOptions()
	res := RunQStats(WAsdb, 5, opt)
	rows := res.Result.QueryStats
	if len(rows) == 0 {
		t.Fatal("no query-stats rows collected")
	}
	seen := map[string]bool{}
	var execs int64
	for i, r := range rows {
		if i > 0 && rows[i-1].Query >= r.Query {
			t.Fatalf("snapshot not sorted: %q then %q", rows[i-1].Query, r.Query)
		}
		seen[r.Query] = true
		execs += r.Executions
		if r.Hist.N != r.Executions {
			t.Fatalf("%s: histogram N=%d != executions %d", r.Query, r.Hist.N, r.Executions)
		}
	}
	if !seen["asdb.PointRead"] || !seen["asdb.Update"] {
		t.Fatalf("expected asdb templates, got %v", seen)
	}
	if execs == 0 {
		t.Fatal("no executions recorded")
	}
	table := QueryStatsTable(rows)
	if len(table.Rows) != len(rows) {
		t.Fatalf("table rows = %d, want %d", len(table.Rows), len(rows))
	}
}
