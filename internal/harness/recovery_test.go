package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/workload/asdb"
)

// runASDBRecording is RunASDB with the typed logical-record layer on:
// every transaction appends BEGIN/UPDATE/COMMIT/ABORT/CLR records with
// logical undo payloads and the txn registry is maintained. The pool is
// not armed — WAL-before-data is a modeled cost that delays checkpoint
// writes, so it only engages with full ArmRecovery.
func runASDBRecording(sf int, opt Options, k Knobs) Result {
	opt.MinQueries = 0
	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	d := asdb.Build(asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Log.Recording = true
	srv.Start()
	clients := opt.Users
	if clients <= 0 {
		clients = 128
	}
	var st asdb.Stats
	until := driverHorizon(opt)
	asdb.RunClients(srv, d, clients, asdb.DefaultMix(), until, &st)
	r := measure(srv, opt)
	r.Throughput = float64(r.Delta.TxnCommits) / r.ElapsedSecs
	return r
}

func emitResultJSONL(t *testing.T, r Result) []byte {
	t.Helper()
	var b bytes.Buffer
	e, err := NewEmitter(&b, "json")
	if err != nil {
		t.Fatal(err)
	}
	EmitResult(e, "recovery_det", "asdb", 100, "", 0, r)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// The logical-record layer must be invisible when no crash machinery
// needs it: a crash-free run with typed records and the txn registry
// enabled is byte-identical — through the JSONL emitter — to the plain
// byte-count baseline. Typed commits append the same byte lumps at the
// same instants, zero-byte records share their predecessor's LSN, and
// aborts write the same CLR volume, so the flush timeline is untouched.
func TestRecordingCrashFreeRunMatchesBaseline(t *testing.T) {
	opt := TestOptions()
	base := emitResultJSONL(t, RunASDB(100, opt, Knobs{}))
	armed := emitResultJSONL(t, runASDBRecording(100, opt, Knobs{}))
	if !bytes.Equal(base, armed) {
		i := 0
		for i < len(base) && i < len(armed) && base[i] == armed[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("recording crash-free run diverges from baseline at byte %d:\nbase:  ...%s\nrecording: ...%s",
			i, base[lo:min(i+80, len(base))], armed[lo:min(i+80, len(armed))])
	}
}

// The MTTR sweep must verify and be independent of the sweep
// parallelism: every cell boots an isolated simulation.
func TestRecoverySweepDeterministicAcrossParallel(t *testing.T) {
	opt := TestOptions()
	intervals := RecoveryCkptIntervals[:2]
	bws := []float64{50, 200}
	serial := Recovery(100, opt, intervals, bws)
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	for _, p := range serial.Points {
		if p.MTTRMs <= 0 {
			t.Fatalf("cell bw=%v ckpt=%v has no recovery time", p.BandwidthMBps, p.CkptInterval)
		}
		if p.Winners == 0 {
			t.Fatalf("cell bw=%v ckpt=%v classified no winners", p.BandwidthMBps, p.CkptInterval)
		}
	}
	opt.Parallel = 4
	parallel := Recovery(100, opt, intervals, bws)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep differs across -parallel:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// Every seeded crash point in the matrix must fire, recover, pass the
// invariant checker, and survive a deliberate re-recovery untouched.
func TestCrashMatrixInvariants(t *testing.T) {
	opt := TestOptions()
	at := opt.Warmup + opt.Measure
	plans := []fault.CrashPlan{
		{Point: fault.CrashMidFlush, Nth: 100},
		{Point: fault.CrashAppendGap, Nth: 200},
		{Point: fault.CrashMidCheckpoint, Nth: 1},
		{Point: fault.CrashDuringUndo, Nth: 1, At: at},
	}
	opt.Parallel = 4
	m := CrashMatrix(100, opt, plans)
	if err := m.Err(); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	for _, c := range m.Cells {
		rep := c.Run.Report
		if rep.Losers == 0 || rep.UndoRecords == 0 {
			t.Errorf("crash %v nth=%d exercised no ARIES undo (losers=%d undo=%d)",
				c.Plan.Point, c.Plan.Nth, rep.Losers, rep.UndoRecords)
		}
		if c.Plan.Point == fault.CrashDuringUndo && c.Run.Passes < 2 {
			t.Errorf("during-undo crash never interrupted recovery (passes=%d)", c.Run.Passes)
		}
	}
	serial := opt
	serial.Parallel = 1
	if m2 := CrashMatrix(100, serial, plans); !reflect.DeepEqual(m, m2) {
		t.Fatalf("crash matrix differs across -parallel:\n%s\nvs\n%s", m, m2)
	}
}
