package harness

import (
	"testing"

	"repro/internal/repl"
)

// TestTelemetryDoesNotPerturbResults: the tentpole invariant — arming the
// metric registry must not move a single measured number. The sampler
// process only sleeps and reads, and every hot-path mutator is a
// nil-receiver no-op when disarmed, so armed and off runs are
// bit-identical on the simulated clock.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	off := TestOptions()
	armed := TestOptions()
	armed.Telemetry = true
	a := RunTPCH(1, off, Knobs{})
	b := RunTPCH(1, armed, Knobs{})
	if a.Throughput != b.Throughput || a.MPKI != b.MPKI || a.SSDReadMBps != b.SSDReadMBps {
		t.Fatalf("telemetry changed results: %+v vs %+v", a, b)
	}
	if a.Telemetry != nil {
		t.Fatal("disarmed run produced a telemetry snapshot")
	}
	if b.Telemetry == nil {
		t.Fatal("armed run produced no telemetry snapshot")
	}
	subs := b.Telemetry.Subsystems()
	if len(subs) < 8 {
		t.Fatalf("only %d instrumented subsystems %v, want >= 8", len(subs), subs)
	}
	for _, s := range b.Telemetry.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s.%s has no samples", s.Subsystem, s.Name)
		}
	}
}

// TestReplicationCommitSpanDecomposition: traced sync commits yield span
// trees whose per-standby ship → replica-wal → apply phases are
// contiguous and, together with the ack trip, sum exactly to the
// observed commit latency.
func TestReplicationCommitSpanDecomposition(t *testing.T) {
	opt := TestOptions()
	opt.Telemetry = true
	r := Replication(1, opt, []repl.Mode{repl.ModeSync}, []float64{200}, []int{1})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	p := r.Points[0]
	if len(p.CommitSpans) == 0 {
		t.Fatal("no commit traces captured")
	}
	if p.Telemetry == nil {
		t.Fatal("no telemetry snapshot on the replication point")
	}
	hasRepl := false
	for _, s := range p.Telemetry.Subsystems() {
		if s == "repl" {
			hasRepl = true
		}
	}
	if !hasRepl {
		t.Fatalf("replication series missing from snapshot: %v", p.Telemetry.Subsystems())
	}
	for _, tr := range p.CommitSpans {
		root := tr.Root
		if root.Op != "Commit" || root.Elapsed() <= 0 {
			t.Fatalf("bad root span: %+v", root)
		}
		ack := root.Children[len(root.Children)-1]
		if ack.Op != "Ack" || ack.End != root.End {
			t.Fatalf("ack span does not close the commit: %+v", ack)
		}
		// With one sync standby it alone satisfies the quorum, so its
		// apply-end is the instant the ack trip starts and the four
		// phases tile the root exactly.
		decided := false
		for _, sb := range root.Children[:len(root.Children)-1] {
			if sb.Op != "Standby" {
				t.Fatalf("unexpected child op %q", sb.Op)
			}
			if len(sb.Children) != 3 || sb.Children[0].Op != "Ship" ||
				sb.Children[1].Op != "ReplicaWAL" || sb.Children[2].Op != "Apply" {
				t.Fatalf("standby phases wrong: %+v", sb.Children)
			}
			if sb.Children[0].Start != root.Start || sb.Children[2].End != sb.End {
				t.Fatalf("phases not anchored to the standby span: %+v", sb)
			}
			for i := 1; i < len(sb.Children); i++ {
				if sb.Children[i].Start != sb.Children[i-1].End {
					t.Fatalf("phases not contiguous: %+v then %+v", sb.Children[i-1], sb.Children[i])
				}
			}
			if sb.End == ack.Start {
				decided = true
				sum := sb.Children[0].Elapsed() + sb.Children[1].Elapsed() +
					sb.Children[2].Elapsed() + ack.Elapsed()
				if sum != root.Elapsed() {
					t.Fatalf("phases sum to %v, commit latency %v", sum, root.Elapsed())
				}
			}
		}
		if !decided {
			t.Fatalf("no standby's apply-end coincides with the ack start: %+v", root)
		}
	}
}

// TestFailoverRTODecomposition: the failover report's detect/replay/
// promote phases partition the RTO, and the span tree renders them as
// contiguous children.
func TestFailoverRTODecomposition(t *testing.T) {
	opt := TestOptions()
	r := Failover(1, opt, []repl.Mode{repl.ModeQuorum})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		f := c.Failover
		if f.Detect+f.Replay+f.Promote != f.RTO {
			t.Fatalf("mode %s: detect %v + replay %v + promote %v != RTO %v",
				c.Mode, f.Detect, f.Replay, f.Promote, f.RTO)
		}
		tr := f.TraceTree()
		root := tr.Root
		if root.Op != "Failover" || len(root.Children) != 3 {
			t.Fatalf("bad failover tree: %+v", root)
		}
		if root.Children[0].Start != root.Start || root.Children[2].End != root.End {
			t.Fatalf("phase spans not anchored: %+v", root)
		}
		for i := 1; i < 3; i++ {
			if root.Children[i].Start != root.Children[i-1].End {
				t.Fatalf("phase spans not contiguous: %+v", root)
			}
		}
	}
}
