package harness

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload/asdb"
)

// RecoveryCkptIntervals is the default checkpoint-cadence axis of the
// MTTR sweep: from aggressive fuzzy checkpoints to the pool default.
var RecoveryCkptIntervals = []sim.Duration{
	250 * sim.Millisecond, 500 * sim.Millisecond, sim.Second, 2 * sim.Second,
}

// RecoveryBandwidths is the default storage-bandwidth axis: the blkio
// read+write limit (MB/s) recovery I/O is subject to. Two settings are
// the minimum for the MTTR-vs-bandwidth comparison.
var RecoveryBandwidths = []float64{50, 200}

// RecoveryRun is one crash + ARIES-restart execution with its
// verification results.
type RecoveryRun struct {
	Crashed bool
	Commits int64 // commits before the crash

	Report engine.RecoveryReport // final recovery pass
	Passes int                   // passes until a pass ran uninterrupted

	Digest       uint64 // logical state digest after recovery
	DigestRerun  uint64 // digest after a deliberate second recovery
	InvariantErr string // empty when the recovered image checks out
}

// Idempotent reports whether the deliberate re-recovery left the logical
// state untouched.
func (r RecoveryRun) Idempotent() bool { return r.Digest == r.DigestRerun }

// runRecovery boots an ASDB server armed for crash recovery, drives the
// CRUD mix into the configured crash, restarts with ARIES recovery
// (re-entering recovery when a during-undo crash interrupts it), and
// verifies the recovered image. With rerun set it recovers a second time
// after success to demonstrate idempotence. ASDB is the write-heaviest
// mix (40% updates/inserts/deletes), so it exercises every record type.
func runRecovery(sf int, opt Options, k Knobs, ro engine.RecoveryOptions, rerun bool) RecoveryRun {
	density := opt.Density / 20
	if density < 2 {
		density = 2
	}
	d := asdb.Build(asdb.Config{SF: sf, ActualRowsPerSF: density, Seed: opt.Seed})
	srv := newServer(opt, k)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.ArmRecovery(ro)
	srv.Start()
	clients := opt.Users
	if clients <= 0 {
		clients = 128
	}
	var st asdb.Stats
	until := driverHorizon(opt)
	asdb.RunClients(srv, d, clients, asdb.DefaultMix(), until, &st)
	srv.Sim.Run(until + sim.Time(600*sim.Second))

	out := RecoveryRun{Crashed: srv.Crashed(), Commits: srv.Ctr.TxnCommits}
	if !out.Crashed {
		out.InvariantErr = "crash point never fired"
		return out
	}
	drain := func() { srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second)) }
	rep := srv.Recover()
	drain()
	out.Passes = 1
	for rep.Interrupted && out.Passes < 4 {
		rep = srv.Recover()
		drain()
		out.Passes++
	}
	out.Report = *rep
	if !rep.Done {
		out.InvariantErr = "recovery did not complete"
		return out
	}
	if err := srv.CheckRecoveryInvariants(); err != nil {
		out.InvariantErr = err.Error()
	}
	out.Digest = srv.StateDigest()
	out.DigestRerun = out.Digest
	if rerun {
		srv.Recover()
		drain()
		out.DigestRerun = srv.StateDigest()
		if err := srv.CheckRecoveryInvariants(); err != nil && out.InvariantErr == "" {
			out.InvariantErr = "after re-recovery: " + err.Error()
		}
	}
	return out
}

// RecoveryPoint is one (storage bandwidth, checkpoint interval) cell of
// the MTTR sweep.
type RecoveryPoint struct {
	BandwidthMBps float64
	CkptInterval  sim.Duration

	MTTRMs       float64 // recovery elapsed, the mean-time-to-recover sample
	LogScannedKB float64
	RedoPages    int64
	UndoRecords  int64
	CLRs         int64
	Winners      int
	Losers       int
	LostTxns     int
	Err          string
}

// RecoveryResult is the MTTR response surface: one curve of MTTR versus
// checkpoint interval per storage-bandwidth setting.
type RecoveryResult struct {
	SF     int
	Points []RecoveryPoint
}

// Recovery sweeps crash recovery across checkpoint intervals and storage
// bandwidths: every cell runs the same workload to the same timed crash,
// so MTTR differences isolate the knobs. intervals nil uses
// RecoveryCkptIntervals, bandwidths nil RecoveryBandwidths. Cells boot
// isolated simulations, so results are bit-identical at any opt.Parallel.
func Recovery(sf int, opt Options, intervals []sim.Duration, bandwidths []float64) RecoveryResult {
	if intervals == nil {
		intervals = RecoveryCkptIntervals
	}
	if bandwidths == nil {
		bandwidths = RecoveryBandwidths
	}
	type cell struct {
		bw float64
		iv sim.Duration
	}
	var cells []cell
	for _, bw := range bandwidths {
		for _, iv := range intervals {
			cells = append(cells, cell{bw, iv})
		}
	}
	crashAt := opt.Warmup + opt.Measure
	runs := Sweep(opt.Parallel, len(cells), func(i int) RecoveryRun {
		c := cells[i]
		k := Knobs{ReadLimitMBps: c.bw, WriteLimitMBps: c.bw}
		ro := engine.RecoveryOptions{
			CkptInterval:  c.iv,
			MaxFlushBytes: 4 << 10, // small batches leave partially flushed lumps: undo work
			Crash:         fault.CrashPlan{Point: fault.CrashAtTime, At: crashAt},
		}
		return runRecovery(sf, opt, k, ro, false)
	}, opt.Progress)
	out := RecoveryResult{SF: sf}
	for i, r := range runs {
		p := RecoveryPoint{
			BandwidthMBps: cells[i].bw,
			CkptInterval:  cells[i].iv,
			MTTRMs:        r.Report.Elapsed.Seconds() * 1e3,
			LogScannedKB:  float64(r.Report.LogScanned) / 1024,
			RedoPages:     r.Report.RedoPages,
			UndoRecords:   r.Report.UndoRecords,
			CLRs:          r.Report.CLRs,
			Winners:       r.Report.Winners,
			Losers:        r.Report.Losers,
			LostTxns:      r.Report.LostTxns,
			Err:           r.InvariantErr,
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// String renders the MTTR surface as an aligned table.
func (r RecoveryResult) String() string {
	s := fmt.Sprintf("recovery asdb sf=%d (MTTR vs checkpoint interval x storage bandwidth)\n", r.SF)
	s += fmt.Sprintf("%8s %8s %9s %9s %8s %8s %6s %7s %7s %8s %s\n",
		"bw-MB/s", "ckpt-ms", "mttr-ms", "log-KB", "redo-pg", "undo", "clrs",
		"winners", "losers", "lost-txn", "err")
	for _, p := range r.Points {
		s += fmt.Sprintf("%8.0f %8.0f %9.2f %9.1f %8d %8d %6d %7d %7d %8d %s\n",
			p.BandwidthMBps, p.CkptInterval.Seconds()*1e3, p.MTTRMs, p.LogScannedKB,
			p.RedoPages, p.UndoRecords, p.CLRs, p.Winners, p.Losers, p.LostTxns, p.Err)
	}
	return s
}

// Err returns the first cell error, nil when every cell verified.
func (r RecoveryResult) Err() error {
	for _, p := range r.Points {
		if p.Err != "" {
			return fmt.Errorf("recovery bw=%.0f ckpt=%v: %s", p.BandwidthMBps, p.CkptInterval, p.Err)
		}
	}
	return nil
}

// CrashCell is one seeded crash point's verified recovery.
type CrashCell struct {
	Plan fault.CrashPlan
	Run  RecoveryRun
}

// CrashMatrixResult is the crash-point grid.
type CrashMatrixResult struct {
	SF    int
	Cells []CrashCell
}

// CrashMatrixPlans returns the default seeded crash grid: two samples of
// each crash point. The during-undo plans need a timed initial crash to
// enter recovery, placed at the end of the measurement window.
func CrashMatrixPlans(opt Options) []fault.CrashPlan {
	at := opt.Warmup + opt.Measure
	return []fault.CrashPlan{
		{Point: fault.CrashMidFlush, Nth: 100},
		{Point: fault.CrashMidFlush, Nth: 800},
		{Point: fault.CrashAppendGap, Nth: 200},
		{Point: fault.CrashAppendGap, Nth: 1600},
		{Point: fault.CrashMidCheckpoint, Nth: 1},
		{Point: fault.CrashMidCheckpoint, Nth: 3},
		{Point: fault.CrashDuringUndo, Nth: 1, At: at},
		{Point: fault.CrashDuringUndo, Nth: 2, At: at},
	}
}

// CrashMatrix runs the seeded crash-point grid: each cell crashes the
// workload at its plan's point, recovers (twice when the plan crashes
// recovery itself), checks the recovery invariants, and re-recovers to
// verify idempotence. plans nil uses CrashMatrixPlans(opt). Checkpoints
// run every 500 ms so mid-checkpoint plans fire within short windows.
func CrashMatrix(sf int, opt Options, plans []fault.CrashPlan) CrashMatrixResult {
	if plans == nil {
		plans = CrashMatrixPlans(opt)
	}
	runs := Sweep(opt.Parallel, len(plans), func(i int) RecoveryRun {
		// A flush cap smaller than one commit lump (~0.5 KB here) puts the
		// durable boundary inside a lump most of the time, so the crash
		// leaves partially flushed transactions — the ARIES-loser case the
		// undo path (and the during-undo crash point) exists for. The write
		// throttle keeps a flush backlog at the crash instant.
		ro := engine.RecoveryOptions{
			CkptInterval:  250 * sim.Millisecond,
			MaxFlushBytes: 256,
			Crash:         plans[i],
		}
		return runRecovery(sf, opt, Knobs{WriteLimitMBps: 25}, ro, true)
	}, opt.Progress)
	out := CrashMatrixResult{SF: sf}
	for i, r := range runs {
		out.Cells = append(out.Cells, CrashCell{Plan: plans[i], Run: r})
	}
	return out
}

// String renders the matrix as an aligned table.
func (r CrashMatrixResult) String() string {
	s := fmt.Sprintf("crash matrix asdb sf=%d\n", r.SF)
	s += fmt.Sprintf("%-15s %4s %10s %8s %8s %7s %7s %8s %6s %6s %6s %5s %s\n",
		"crash-point", "nth", "crash-lsn", "lost-rec", "lost-txn", "winners",
		"losers", "redo-pg", "undo", "clrs", "passes", "idem", "invariants")
	for _, c := range r.Cells {
		verdict := "ok"
		if c.Run.InvariantErr != "" {
			verdict = c.Run.InvariantErr
		}
		idem := "yes"
		if !c.Run.Idempotent() {
			idem = "NO"
		}
		rep := c.Run.Report
		s += fmt.Sprintf("%-15s %4d %10d %8d %8d %7d %7d %8d %6d %6d %6d %5s %s\n",
			c.Plan.Point, c.Plan.Nth, rep.CrashLSN, rep.LostRecords, rep.LostTxns,
			rep.Winners, rep.Losers, rep.RedoPages, rep.UndoRecords, rep.CLRs,
			c.Run.Passes, idem, verdict)
	}
	return s
}

// Err returns the first failed cell (invariant violation or
// non-idempotent re-recovery), nil when the whole grid verified.
func (r CrashMatrixResult) Err() error {
	for _, c := range r.Cells {
		if c.Run.InvariantErr != "" {
			return fmt.Errorf("crash %v nth=%d: %s", c.Plan.Point, c.Plan.Nth, c.Run.InvariantErr)
		}
		if !c.Run.Idempotent() {
			return fmt.Errorf("crash %v nth=%d: re-recovery changed state digest", c.Plan.Point, c.Plan.Nth)
		}
	}
	return nil
}
