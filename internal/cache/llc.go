// Package cache implements a sampled set-associative last-level cache model
// with Intel CAT-style way-granular partitioning.
//
// The cache is simulated structurally: tags, per-set LRU state, and dirty
// bits, so miss-rate-versus-size knees emerge from the workload's actual
// reuse behaviour rather than from a fitted curve. To keep the model fast
// enough to sit under a whole-database simulation it is *sampled*, in the
// spirit of SHARDS: only 1 in SetSample cache lines is simulated (lines
// whose global line number is ≡ 0 mod SetSample), against a cache scaled
// down by the same factor, and all counters are scaled back up. A given
// line is either always sampled or never sampled, so temporal reuse across
// scans, probes, and operators is detected faithfully.
//
// CAT semantics follow the paper's description of the hardware: the way
// mask restricts *allocation and eviction* only — lookups search all ways,
// so data resident outside the current mask still hits.
package cache

// LineBytes is the cache line size.
const LineBytes = 64

// Config describes one socket's LLC.
type Config struct {
	SizeBytes int64 // total capacity, e.g. 20 MiB
	Ways      int   // associativity, one allocation unit ("way") each
	SetSample int   // simulate 1 in SetSample lines (>= 1)
}

// PaperLLC returns the per-socket LLC of the paper's Xeon E5-2620 v4:
// 20 MB, 20 ways (1 MB per way, matching CAT's 20-bit capacity bitmask).
func PaperLLC() Config {
	return Config{SizeBytes: 20 << 20, Ways: 20, SetSample: 64}
}

// Stats holds scaled access counters.
type Stats struct {
	Accesses   int64
	Misses     int64
	Writebacks int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
}

// MissRatio returns the fraction of accesses that missed, or 0 if none.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// LLC is one socket's simulated last-level cache.
type LLC struct {
	cfg     Config
	simSets int
	mask    uint64 // CAT way mask: bit i set => way i may be allocated into

	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	// age is a per-set monotonically increasing stamp; larger = more recent.
	age   [][]uint64
	stamp uint64

	stats Stats
}

// New creates an LLC with all ways allocated (full mask).
func New(cfg Config) *LLC {
	if cfg.SetSample < 1 {
		cfg.SetSample = 1
	}
	sets := int(cfg.SizeBytes / int64(LineBytes*cfg.Ways))
	if sets < 1 {
		sets = 1
	}
	simSets := sets / cfg.SetSample
	if simSets < 1 {
		simSets = 1
	}
	c := &LLC{
		cfg:     cfg,
		simSets: simSets,
		mask:    (uint64(1) << uint(cfg.Ways)) - 1,
	}
	c.tags = make([][]uint64, simSets)
	c.valid = make([][]bool, simSets)
	c.dirty = make([][]bool, simSets)
	c.age = make([][]uint64, simSets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.dirty[i] = make([]bool, cfg.Ways)
		c.age[i] = make([]uint64, cfg.Ways)
	}
	return c
}

// SetWayMask installs a CAT allocation mask. Bits beyond the way count are
// ignored; an empty mask is treated as the lowest single way (hardware
// forbids an empty COS mask).
func (c *LLC) SetWayMask(mask uint64) {
	mask &= (uint64(1) << uint(c.cfg.Ways)) - 1
	if mask == 0 {
		mask = 1
	}
	c.mask = mask
}

// WayMask returns the current allocation mask.
func (c *LLC) WayMask() uint64 { return c.mask }

// WayBytes returns the capacity of a single way.
func (c *LLC) WayBytes() int64 { return c.cfg.SizeBytes / int64(c.cfg.Ways) }

// AllocatedBytes returns the capacity covered by the current mask.
func (c *LLC) AllocatedBytes() int64 {
	return int64(c.AllocatedWays()) * c.WayBytes()
}

// AllocatedWays returns the way count in the current mask — the COS
// (class-of-service) width, used to label per-COS telemetry series.
func (c *LLC) AllocatedWays() int {
	n := 0
	for m := c.mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Flush invalidates the entire cache (the paper reboots between the
// largest and smallest allocation to shed out-of-mask residue).
func (c *LLC) Flush() {
	for i := range c.valid {
		for j := range c.valid[i] {
			c.valid[i][j] = false
			c.dirty[i][j] = false
		}
	}
}

// Stats returns the scaled counters accumulated so far.
func (c *LLC) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents.
func (c *LLC) ResetStats() { c.stats = Stats{} }

// accessLine simulates one sampled line access and returns (miss, writeback).
// Sampled lines are multiples of SetSample; dividing by the sampling factor
// before taking the set index makes consecutive sampled lines sweep the
// simulated sets round-robin, mirroring the balanced set mapping of real
// hardware for sequential data.
func (c *LLC) accessLine(line uint64, write bool) (bool, bool) {
	s := int((line / uint64(c.cfg.SetSample)) % uint64(c.simSets))
	tag := line
	c.stamp++
	// Lookup searches all ways: CAT does not restrict hits.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == tag {
			c.age[s][w] = c.stamp
			if write {
				c.dirty[s][w] = true
			}
			return false, false
		}
	}
	// Miss: fill into an allowed way, evicting LRU among allowed ways.
	victim, oldest := -1, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.mask&(1<<uint(w)) == 0 {
			continue
		}
		if !c.valid[s][w] {
			victim = w
			break
		}
		if c.age[s][w] < oldest {
			oldest = c.age[s][w]
			victim = w
		}
	}
	wb := false
	if victim >= 0 {
		wb = c.valid[s][victim] && c.dirty[s][victim]
		c.tags[s][victim] = tag
		c.valid[s][victim] = true
		c.dirty[s][victim] = write
		c.age[s][victim] = c.stamp
	}
	return true, wb
}

// maxSimPerTouch bounds the number of line accesses one bulk touch
// simulates. It is sized so that a touch larger than the cache still fully
// ages every simulated set (samples-per-set comfortably exceeds the
// associativity), preserving the pollution effect of large scans.
const maxSimPerTouch = 1 << 14

// maxSimNonStreaming is the higher bound used for touches that are not
// clearly streaming: those must be sampled at the full 1/SetSample rate or
// the SHARDS size invariant breaks and reuse is over-estimated.
const maxSimNonStreaming = 1 << 17

// maxSimRandomTouch bounds one bulk Random touch (see Random).
const maxSimRandomTouch = 1 << 12

// record folds simulated results back into scaled stats.
func (c *LLC) record(total, simulated, misses, wbs int64) Stats {
	if simulated == 0 {
		return Stats{Accesses: total}
	}
	scale := float64(total) / float64(simulated)
	st := Stats{
		Accesses:   total,
		Misses:     int64(float64(misses)*scale + 0.5),
		Writebacks: int64(float64(wbs)*scale + 0.5),
	}
	c.stats.Add(st)
	return st
}

// Sequential simulates a sequential touch of length bytes starting at byte
// address base and returns scaled counters. Sampled lines are those whose
// global line number is a multiple of SetSample, so repeated scans of the
// same region observe their own reuse.
func (c *LLC) Sequential(base uint64, bytes int64, write bool) Stats {
	if bytes <= 0 {
		return Stats{}
	}
	lines := (bytes + LineBytes - 1) / LineBytes
	start := base / LineBytes
	ss := uint64(c.cfg.SetSample)
	first := (start + ss - 1) / ss * ss // first sampled line >= start
	sampledAvail := int64(0)
	if first < start+uint64(lines) {
		sampledAvail = int64((start + uint64(lines) - first + ss - 1) / ss)
	}
	if sampledAvail == 0 {
		// Touch too small to include a sampled line; probe the nearest
		// sampled representative so tiny hot structures still exercise
		// the model.
		m, w := c.accessLine(start/ss*ss, write)
		var misses, wbs int64
		if m {
			misses++
		}
		if w {
			wbs++
		}
		return c.record(lines, 1, misses, wbs)
	}
	streaming := bytes > 2*c.AllocatedBytes()
	limit := int64(maxSimNonStreaming)
	if streaming {
		limit = maxSimPerTouch
	}
	step := ss
	if sampledAvail > limit {
		step = ss * uint64((sampledAvail+limit-1)/limit)
	}
	var misses, wbs, simulated int64
	for line := first; line < start+uint64(lines); line += step {
		m, w := c.accessLine(line, write)
		simulated++
		if m {
			misses++
		}
		if w {
			wbs++
		}
	}
	if step > ss && streaming {
		// Capped streaming touch: the walk above ages the cache, but its
		// sub-rate sampling would overstate reuse on revisits. A region
		// far larger than the allocation cannot be retained, so count the
		// stream as missing throughout. A streamed write dirties every
		// line and each is eventually evicted, so it writes back in full;
		// a streamed read writes back whatever dirty data it displaces.
		swbs := scaleBy(wbs, lines, simulated)
		if write {
			swbs = lines
		}
		return c.record2(lines, lines, swbs)
	}
	return c.record(lines, simulated, misses, wbs)
}

func scaleBy(n, total, simulated int64) int64 {
	if simulated == 0 {
		return 0
	}
	return int64(float64(n)*float64(total)/float64(simulated) + 0.5)
}

// record2 records pre-scaled stats.
func (c *LLC) record2(accesses, misses, wbs int64) Stats {
	st := Stats{Accesses: accesses, Misses: misses, Writebacks: wbs}
	c.stats.Add(st)
	return st
}

// Strided simulates count accesses starting at base separated by
// strideBytes (e.g. reading one column out of wide rows). Sampling picks
// every SetSample-th visited element, which keeps repeated identical scans
// consistent with each other.
func (c *LLC) Strided(base uint64, count int64, strideBytes int64, write bool) Stats {
	if count <= 0 {
		return Stats{}
	}
	if strideBytes < LineBytes {
		strideBytes = LineBytes
	}
	strideLines := uint64(strideBytes / LineBytes)
	start := base / LineBytes
	ss := int64(c.cfg.SetSample)
	sampledAvail := count / ss
	if sampledAvail < 1 {
		sampledAvail = 1
	}
	span := count * strideBytes
	streaming := span > 2*c.AllocatedBytes()
	limit := int64(maxSimNonStreaming)
	if streaming {
		limit = maxSimPerTouch
	}
	stepK := ss
	if sampledAvail > limit {
		stepK = count / limit
	}
	var misses, wbs, simulated int64
	for k := int64(0); k < count; k += stepK {
		line := start + uint64(k)*strideLines
		// Snap to the line's sampling representative so that the same
		// element observed through different patterns aliases consistently.
		line = line / uint64(c.cfg.SetSample) * uint64(c.cfg.SetSample)
		m, w := c.accessLine(line, write)
		simulated++
		if m {
			misses++
		}
		if w {
			wbs++
		}
	}
	if stepK > ss && streaming {
		swbs := scaleBy(wbs, count, simulated)
		if write {
			swbs = count
		}
		return c.record2(count, count, swbs)
	}
	return c.record(count, simulated, misses, wbs)
}

// Random simulates count single-line accesses over a region of regionBytes
// starting at base; positions come from posFn, which must return values in
// [0, 1) (uniform or skewed — the caller owns the distribution). Sampling
// accepts draws that land on sampled lines, so hot lines keep their
// temporal locality.
func (c *LLC) Random(base uint64, regionBytes int64, count int64, write bool, posFn func() float64) Stats {
	if count <= 0 || regionBytes <= 0 {
		return Stats{}
	}
	regionLines := regionBytes / LineBytes
	if regionLines < 1 {
		regionLines = 1
	}
	ss := uint64(c.cfg.SetSample)
	want := count / int64(ss)
	if want < 1 {
		want = 1
	}
	// Random touches use a tighter cap than sequential ones: random
	// draws have no deterministic-revisit hazard, so sub-rate sampling
	// stays statistically sound, and bulk random touches (hash builds
	// and probes) are the hottest call site in whole-workload runs.
	if want > maxSimRandomTouch {
		want = maxSimRandomTouch
	}
	// Each draw is quantized to its sampling representative (the nearest
	// lower line ≡ 0 mod SetSample), the same representatives Sequential
	// and Strided touch, so hot data keeps consistent identity across
	// access patterns. One simulated access stands for SetSample real ones.
	var misses, wbs int64
	start := base / LineBytes
	for i := int64(0); i < want; i++ {
		off := uint64(float64(regionLines) * posFn())
		if off >= uint64(regionLines) {
			off = uint64(regionLines) - 1
		}
		line := (start + off) / ss * ss
		m, w := c.accessLine(line, write)
		if m {
			misses++
		}
		if w {
			wbs++
		}
	}
	return c.record(count, want, misses, wbs)
}
