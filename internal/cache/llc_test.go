package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testLLC(sample int) *LLC {
	return New(Config{SizeBytes: 20 << 20, Ways: 20, SetSample: sample})
}

func TestAllocatedBytesFollowsMask(t *testing.T) {
	c := testLLC(64)
	if got := c.AllocatedBytes(); got != 20<<20 {
		t.Fatalf("full mask allocation = %d", got)
	}
	c.SetWayMask(0x3) // 2 ways = 2 MB
	if got := c.AllocatedBytes(); got != 2<<20 {
		t.Fatalf("2-way allocation = %d", got)
	}
	c.SetWayMask(0) // forbidden; clamps to one way
	if got := c.AllocatedBytes(); got != 1<<20 {
		t.Fatalf("empty mask allocation = %d", got)
	}
}

func TestSmallWorkingSetHitsAfterWarmup(t *testing.T) {
	c := testLLC(16)
	const ws = 4 << 20 // 4 MB working set inside a 20 MB cache
	c.Sequential(0, ws, false)
	st := c.Sequential(0, ws, false)
	if r := st.MissRatio(); r > 0.02 {
		t.Fatalf("second pass miss ratio = %.3f, want ~0", r)
	}
}

func TestLargeWorkingSetThrashes(t *testing.T) {
	c := testLLC(16)
	const ws = 200 << 20 // 10x the cache
	c.Sequential(0, ws, false)
	st := c.Sequential(0, ws, false)
	if r := st.MissRatio(); r < 0.9 {
		t.Fatalf("streaming miss ratio = %.3f, want ~1", r)
	}
}

func TestMissRatioMonotoneInAllocation(t *testing.T) {
	const ws = 16 << 20
	prev := 2.0
	for _, ways := range []int{2, 6, 12, 20} {
		c := testLLC(16)
		c.SetWayMask((1 << uint(ways)) - 1)
		c.Flush()
		// Warm up then measure three passes.
		c.Sequential(0, ws, false)
		c.ResetStats()
		for i := 0; i < 3; i++ {
			c.Sequential(0, ws, false)
		}
		r := c.Stats().MissRatio()
		if r > prev+0.05 {
			t.Fatalf("miss ratio increased with more ways: %d ways -> %.3f (prev %.3f)", ways, r, prev)
		}
		prev = r
	}
	if prev > 0.05 {
		t.Fatalf("full-cache miss ratio for 16MB working set = %.3f, want ~0", prev)
	}
}

func TestHitsAllowedOutsideMask(t *testing.T) {
	c := testLLC(16)
	const ws = 8 << 20
	c.Sequential(0, ws, false) // fill with full mask
	c.SetWayMask(0x1)          // shrink to 1 way
	st := c.Sequential(0, ws, false)
	if r := st.MissRatio(); r > 0.1 {
		t.Fatalf("resident data should still hit outside mask; miss ratio = %.3f", r)
	}
}

func TestMaskRestrictsNewAllocations(t *testing.T) {
	c := testLLC(16)
	c.SetWayMask(0x1) // 1 MB only
	const ws = 8 << 20
	c.Sequential(0, ws, false)
	st := c.Sequential(0, ws, false)
	if r := st.MissRatio(); r < 0.7 {
		t.Fatalf("8MB working set in 1MB allocation: miss ratio = %.3f, want high", r)
	}
}

func TestDirtyEvictionProducesWritebacks(t *testing.T) {
	c := testLLC(16)
	const ws = 200 << 20
	c.Sequential(0, ws, true)        // write the region
	st := c.Sequential(0, ws, false) // stream again, evicting dirty lines
	_ = st
	if c.Stats().Writebacks == 0 {
		t.Fatal("no writebacks after evicting written data")
	}
}

func TestRandomHotSetLocality(t *testing.T) {
	c := testLLC(16)
	g := sim.NewRNG(5)
	// 2 MB hot region accessed randomly inside the full mask: after warmup,
	// almost everything should hit.
	c.Random(0, 2<<20, 1<<16, false, g.Float64)
	st := c.Random(0, 2<<20, 1<<16, false, g.Float64)
	if r := st.MissRatio(); r > 0.1 {
		t.Fatalf("hot random set miss ratio = %.3f", r)
	}
}

func TestRandomVsSequentialConsistentRepresentatives(t *testing.T) {
	c := testLLC(16)
	g := sim.NewRNG(5)
	const ws = 4 << 20
	c.Sequential(0, ws, false) // warm sequentially
	st := c.Random(0, ws, 1<<14, false, g.Float64)
	if r := st.MissRatio(); r > 0.1 {
		t.Fatalf("random reads of sequentially-warmed data missed: %.3f", r)
	}
}

func TestStridedTouch(t *testing.T) {
	c := testLLC(16)
	// Stride of 256 bytes over 1M elements = 256 MB span: streaming misses.
	st := c.Strided(0, 1<<20, 256, false)
	if st.Accesses != 1<<20 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if r := st.MissRatio(); r < 0.5 {
		t.Fatalf("large strided stream miss ratio = %.3f", r)
	}
}

func TestFlushInvalidates(t *testing.T) {
	c := testLLC(16)
	const ws = 4 << 20
	c.Sequential(0, ws, false)
	c.Flush()
	st := c.Sequential(0, ws, false)
	if r := st.MissRatio(); r < 0.9 {
		t.Fatalf("post-flush miss ratio = %.3f, want ~1", r)
	}
}

func TestScaledCountersProperty(t *testing.T) {
	f := func(kb uint16, write bool) bool {
		c := testLLC(16)
		bytes := int64(kb%2048+1) * 1024
		st := c.Sequential(0, bytes, write)
		lines := (bytes + LineBytes - 1) / LineBytes
		return st.Accesses == lines && st.Misses >= 0 && st.Misses <= st.Accesses*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSupersetMasksPreserveResidency(t *testing.T) {
	// The paper grows allocations as supersets (1, 3, 7, ... bitmasks):
	// growing the mask must never lose already-resident data.
	c := testLLC(16)
	const ws = 1 << 20
	c.SetWayMask(0x1)
	c.Sequential(0, ws, false)
	c.SetWayMask(0x3)
	st := c.Sequential(0, ws, false)
	if r := st.MissRatio(); r > 0.05 {
		t.Fatalf("data lost when growing mask: miss ratio %.3f", r)
	}
}
