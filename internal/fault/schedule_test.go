package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestBuildNamedScheduleDeterministic(t *testing.T) {
	const w, m = 1 * sim.Second, 10 * sim.Second
	for _, name := range ScheduleNames() {
		a, err := BuildNamedSchedule(name, 42, w, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := BuildNamedSchedule(name, 42, w, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different plans:\n%v\n%v", name, a, b)
		}
		if name == "none" {
			if a != nil {
				t.Fatalf("none: non-empty plan %v", a)
			}
			continue
		}
		c, err := BuildNamedSchedule(name, 43, w, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical plans (no jitter?)", name)
		}
		// Every named plan must pass validation as-is.
		cfg := Config{Seed: 1, Schedule: a}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: built plan fails Validate: %v", name, err)
		}
	}
	if _, err := BuildNamedSchedule("nope", 1, w, m); err == nil {
		t.Fatal("unknown schedule name accepted")
	}
}

func TestValidateRejectsMalformedConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative-rate", Config{IOStall: Axis{Rate: -1}}, "negative rate"},
		{"negative-axis-dur", Config{WALSlow: Axis{DurNs: -5}}, "negative duration"},
		{"negative-axis-mag", Config{NetLoss: Axis{Magnitude: -0.1}}, "negative magnitude"},
		{"unknown-axis", Config{Schedule: Schedule{{Axis: "gremlins"}}}, "unknown axis"},
		{"negative-at", Config{Schedule: Schedule{{Axis: "net-loss", At: -sim.Second}}}, "negative start"},
		{"negative-dur", Config{Schedule: Schedule{{Axis: "net-loss", Dur: -sim.Second}}}, "negative duration"},
		{"negative-mag", Config{Schedule: Schedule{{Axis: "net-loss", Magnitude: -1}}}, "negative magnitude"},
		{"partition-mode", Config{Schedule: Schedule{{Axis: "net-partition", Magnitude: 7}}}, "not a mode"},
		{"same-axis-overlap", Config{Schedule: Schedule{
			{Axis: "net-loss", At: sim.Second, Dur: 2 * sim.Second, Magnitude: 0.1},
			{Axis: "net-loss", At: 2 * sim.Second, Dur: sim.Second, Magnitude: 0.2},
		}}, "overlapping"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted a malformed config", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Different axes may overlap freely: that is the composability contract.
	ok := Config{Schedule: Schedule{
		{Axis: "net-partition", At: sim.Second, Dur: 2 * sim.Second, Magnitude: 1},
		{Axis: "repl-link-stall", At: sim.Second, Dur: 2 * sim.Second},
		{Axis: "conn-reset", At: 2 * sim.Second, Magnitude: 1},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("cross-axis overlap rejected: %v", err)
	}
}

func TestScheduledEventsFireInOrderAndClear(t *testing.T) {
	sm := sim.New(1)
	ctr := &metrics.Counters{}
	tg, dev := devTargets(sm, ctr)
	cfg := Config{Seed: 9, Schedule: Schedule{
		{At: sim.Second, Dur: sim.Second, Axis: "io-stall", Magnitude: 5e6},
		{At: 3 * sim.Second, Dur: sim.Second, Axis: "io-stall", Magnitude: 2e6},
	}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	in := New(sm, cfg, tg)
	in.Start()
	probe := func(at sim.Time, want float64) {
		sm.Spawn("probe", func(p *sim.Proc) {
			p.Sleep(sim.Duration(at - p.Now()))
			f := dev.FaultState()
			if f == nil {
				t.Errorf("at %v: no fault state", at)
				return
			}
			if f.ReadStallNs != want {
				t.Errorf("at %v: ReadStallNs = %g, want %g", at, f.ReadStallNs, want)
			}
		})
	}
	probe(sim.Time(1500*sim.Millisecond), 5e6) // inside event 1
	probe(sim.Time(2500*sim.Millisecond), 0)   // between events: cleared
	probe(sim.Time(3500*sim.Millisecond), 2e6) // inside event 2
	sm.Run(sim.Time(10 * sim.Second))
	if ctr.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", ctr.FaultsInjected)
	}
	if f := dev.FaultState(); f.ReadStallNs != 0 {
		t.Fatalf("stall left active after schedule drained: %+v", f)
	}
}

func TestScheduleArmedButUnfiredInjectsNothing(t *testing.T) {
	// A schedule whose events lie beyond the run window arms walker procs
	// but never fires: the injector must leave no trace (the chaos-off
	// byte-identity story depends on armed-but-idle machinery being inert).
	sm := sim.New(1)
	ctr := &metrics.Counters{}
	tg, dev := devTargets(sm, ctr)
	cfg := Config{Seed: 5, Schedule: Schedule{
		{At: 100 * sim.Second, Dur: sim.Second, Axis: "io-stall", Magnitude: 1e6},
	}}
	in := New(sm, cfg, tg)
	in.Start()
	var total sim.Duration
	sm.Spawn("reader", func(p *sim.Proc) {
		for p.Now() < sim.Time(5*sim.Second) {
			total += dev.Read(p, 64<<10)
		}
	})
	sm.Run(sim.Time(5 * sim.Second))
	in.Stop()
	if ctr.FaultsInjected != 0 {
		t.Fatalf("FaultsInjected = %d before any scheduled event", ctr.FaultsInjected)
	}
	if f := dev.FaultState(); f != nil && (f.ReadStallNs != 0 || f.ReadErrProb != 0) {
		t.Fatalf("armed schedule perturbed the device: %+v", f)
	}
	if total == 0 {
		t.Fatal("reader made no progress")
	}
}
