package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Event is one scripted fault: at simulated time At (relative to run
// start) the named axis applies with Magnitude; after Dur it clears.
// Dur 0 fires one-shot axes (conn-reset, archive-loss, crash) or
// applies-and-clears a stateful axis instantaneously.
type Event struct {
	At        sim.Duration
	Dur       sim.Duration
	Axis      string
	Magnitude float64
}

// Schedule is an ordered, composable fault timeline. Events on
// different axes may overlap (each axis runs its own walker proc);
// events on the same axis are exclusive — each axis holds a single
// state — and overlap is rejected by Validate.
type Schedule []Event

// AxisNames lists every axis name a schedule entry may reference, in
// canonical order. "crash" is schedule-only (it fires Targets.Crash).
func AxisNames() []string {
	return []string{
		"io-stall", "io-error", "wal-slow", "buffer-spike", "grant-starve",
		"cpuset-shrink", "repl-link-stall", "replica-slow", "archive-loss",
		"net-partition", "net-loss", "net-degrade", "conn-reset", "crash",
	}
}

func knownAxis(name string) bool {
	for _, n := range AxisNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Validate checks the config before any side effect: negative rates,
// durations, or magnitudes on any Poisson axis; unknown axis names,
// negative times, or overlapping same-axis events in the schedule.
func (c Config) Validate() error {
	for _, a := range c.axes() {
		if a.ax.Rate < 0 {
			return fmt.Errorf("fault: axis %s: negative rate %g", a.name, a.ax.Rate)
		}
		if a.ax.DurNs < 0 {
			return fmt.Errorf("fault: axis %s: negative duration %g", a.name, a.ax.DurNs)
		}
		if a.ax.Magnitude < 0 {
			return fmt.Errorf("fault: axis %s: negative magnitude %g", a.name, a.ax.Magnitude)
		}
	}
	byAxis := map[string][]Event{}
	for i, ev := range c.Schedule {
		if !knownAxis(ev.Axis) {
			return fmt.Errorf("fault: schedule[%d]: unknown axis %q (known: %v)", i, ev.Axis, AxisNames())
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: schedule[%d] (%s): negative start %v", i, ev.Axis, ev.At)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("fault: schedule[%d] (%s): negative duration %v", i, ev.Axis, ev.Dur)
		}
		if ev.Magnitude < 0 {
			return fmt.Errorf("fault: schedule[%d] (%s): negative magnitude %g", i, ev.Axis, ev.Magnitude)
		}
		if ev.Axis == "net-partition" {
			if m := int(ev.Magnitude); m < 0 || m > 3 {
				return fmt.Errorf("fault: schedule[%d]: net-partition magnitude %g is not a mode (0/1 full, 2 to-server, 3 to-client)", i, ev.Magnitude)
			}
		}
		byAxis[ev.Axis] = append(byAxis[ev.Axis], ev)
	}
	for axis, evs := range byAxis {
		sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At+evs[i-1].Dur {
				return fmt.Errorf("fault: schedule: overlapping events on exclusive axis %s (at %v and %v)",
					axis, evs[i-1].At, evs[i].At)
			}
		}
	}
	return nil
}

// startSchedule spawns one walker proc per scheduled axis (axis-name
// order, so spawn order is deterministic). Each walker applies its
// axis's events in time order; different axes therefore compose freely
// while same-axis events stay exclusive.
func (in *Injector) startSchedule(acts map[string]axisAction) {
	if len(in.cfg.Schedule) == 0 {
		return
	}
	byAxis := map[string]Schedule{}
	for _, ev := range in.cfg.Schedule {
		byAxis[ev.Axis] = append(byAxis[ev.Axis], ev)
	}
	names := make([]string, 0, len(byAxis))
	for name := range byAxis {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		act, ok := acts[name]
		if !ok {
			continue // target absent: the scripted axis has nothing to act on
		}
		evs := byAxis[name]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		in.sm.Spawn("fault-sched-"+name, func(p *sim.Proc) {
			for _, ev := range evs {
				if !in.sleepUntil(p, sim.Time(ev.At)) {
					return
				}
				in.t.Ctr.FaultsInjected++
				act.apply(ev.Magnitude)
				if ev.Dur > 0 {
					ok := in.sleep(p, ev.Dur)
					act.clear()
					if !ok {
						return
					}
				} else {
					act.clear()
				}
			}
		})
	}
}

// sleepUntil sleeps to absolute sim time t (Stop-aware, like sleep).
func (in *Injector) sleepUntil(p *sim.Proc, t sim.Time) bool {
	d := sim.Duration(t - p.Now())
	if d <= 0 {
		return !in.stopped
	}
	return in.sleep(p, d)
}

// ScheduleNames lists the named chaos scenarios BuildNamedSchedule
// accepts, in canonical order. "none" is the empty timeline (the
// chaos-off leg of a matrix).
func ScheduleNames() []string {
	return []string{"none", "partition", "flaky", "degrade", "reset-storm", "split-burst"}
}

// BuildNamedSchedule expands a named chaos scenario into a concrete
// timeline over a warmup+measure window. Event times carry a small
// seeded jitter so different seeds explore different alignments while
// the same seed always reproduces the same plan (DeepEqual-identical).
func BuildNamedSchedule(name string, seed int64, warmup, measure sim.Duration) (Schedule, error) {
	rng := sim.NewRNG(seed ^ 0x73636865) // "sche": private stream per plan
	jit := func(at sim.Duration) sim.Duration {
		// ±measure/40 of jitter, never crossing into warmup.
		j := sim.Duration(rng.Float64() * float64(measure) / 20)
		at += j - measure/40
		if at < warmup {
			at = warmup
		}
		return at
	}
	w, m := warmup, measure
	switch name {
	case "none":
		return nil, nil
	case "partition":
		// Full partition early, asymmetric client→server cut later.
		return Schedule{
			{At: jit(w + m/4), Dur: m / 8, Axis: "net-partition", Magnitude: 1},
			{At: jit(w + 5*m/8), Dur: m / 8, Axis: "net-partition", Magnitude: 2},
		}, nil
	case "flaky":
		// Background frame loss with a mid-window reset wave.
		return Schedule{
			{At: jit(w + m/5), Dur: m / 5, Axis: "net-loss", Magnitude: 0.05},
			{At: jit(w + m/2), Dur: 0, Axis: "conn-reset", Magnitude: 0.5},
			{At: jit(w + 7*m/10), Dur: m / 6, Axis: "net-loss", Magnitude: 0.15},
		}, nil
	case "degrade":
		// Sustained 4x bandwidth/latency degradation through mid-window.
		return Schedule{
			{At: jit(w + m/4), Dur: m / 2, Axis: "net-degrade", Magnitude: 4},
		}, nil
	case "reset-storm":
		// Three full reset waves in quick succession.
		return Schedule{
			{At: jit(w + m/3), Dur: 0, Axis: "conn-reset", Magnitude: 1},
			{At: jit(w + m/2), Dur: 0, Axis: "conn-reset", Magnitude: 1},
			{At: jit(w + 2*m/3), Dur: 0, Axis: "conn-reset", Magnitude: 1},
		}, nil
	case "split-burst":
		// The ISSUE's marquee scenario: partition the serving segment
		// and the replication link together during the storm window,
		// then reset the survivors as the partition heals.
		start := jit(w + m/4)
		return Schedule{
			{At: start, Dur: m / 6, Axis: "net-partition", Magnitude: 1},
			{At: start, Dur: m / 6, Axis: "repl-link-stall", Magnitude: 1},
			{At: start + m/6 + m/50, Dur: 0, Axis: "conn-reset", Magnitude: 1},
		}, nil
	}
	return nil, fmt.Errorf("fault: unknown schedule %q (known: %v)", name, ScheduleNames())
}
