package fault

import "repro/internal/sim"

// CrashPoint names a deterministic crash site inside the engine. Crash
// points are hooks on the durability path: the engine calls Crasher.Hit
// at each site and the Nth hit of the selected point triggers the crash.
type CrashPoint int

// Crash points.
const (
	CrashNone          CrashPoint = iota
	CrashMidFlush                 // between the log device write and the flushed-LSN advance
	CrashMidCheckpoint            // between CKPT_BEGIN and CKPT_END, after a chunk write
	CrashAppendGap                // after a commit lump appends, before its flush wait
	CrashDuringUndo               // inside recovery's undo pass, between CLR batches
	CrashAtTime                   // at an absolute simulated time (At)
)

// String names the crash point.
func (c CrashPoint) String() string {
	switch c {
	case CrashNone:
		return "none"
	case CrashMidFlush:
		return "mid-flush"
	case CrashMidCheckpoint:
		return "mid-checkpoint"
	case CrashAppendGap:
		return "append-gap"
	case CrashDuringUndo:
		return "during-undo"
	case CrashAtTime:
		return "at-time"
	default:
		return "crash(?)"
	}
}

// CrashPlan selects one seeded crash. The plan is fully deterministic:
// the Nth hit of Point crashes (Nth <= 0 means the first), or, for
// CrashAtTime, the crash fires at simulated time At.
type CrashPlan struct {
	Point CrashPoint
	Nth   int
	At    sim.Duration // CrashAtTime only: crash at this simulated time
}

// Enabled reports whether the plan crashes at all.
func (p CrashPlan) Enabled() bool { return p.Point != CrashNone }

// Crasher counts crash-point hits and fires the trigger exactly once.
type Crasher struct {
	plan      CrashPlan
	hits      int
	triggered bool
	onTrigger func()
}

// NewCrasher builds a crasher for the plan; onTrigger is the engine's
// crash entry point (it must be safe to call from any proc).
func NewCrasher(plan CrashPlan, onTrigger func()) *Crasher {
	if plan.Nth <= 0 {
		plan.Nth = 1
	}
	return &Crasher{plan: plan, onTrigger: onTrigger}
}

// Plan returns the crash plan.
func (c *Crasher) Plan() CrashPlan { return c.plan }

// Triggered reports whether the crash has fired.
func (c *Crasher) Triggered() bool { return c.triggered }

// Rearm resets the trigger so a follow-up crash (e.g. during-undo in a
// second recovery) can fire again; the hit count keeps accumulating.
func (c *Crasher) Rearm() { c.triggered = false }

// Hit reports a crash-point visit; it fires the trigger on the Nth visit
// of the planned point.
func (c *Crasher) Hit(p CrashPoint) {
	if c == nil || c.triggered || p != c.plan.Point {
		return
	}
	c.hits++
	if c.hits >= c.plan.Nth {
		c.triggered = true
		c.onTrigger()
	}
}
