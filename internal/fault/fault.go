// Package fault implements seeded, deterministic fault injection for the
// simulated engine. An Injector schedules transient fault events off the
// sim clock — IO stalls and errors, WAL-device slowdowns, buffer-pool
// pressure spikes, workspace-grant starvation, mid-run cpuset shrinks,
// and network misbehavior (partitions, frame loss, link degradation,
// connection resets) — so resilience experiments reproduce
// bit-identically: the same seed and config yield the same fault
// timeline, and a disabled config injects nothing at all (no procs
// spawned, no RNG draws), leaving fault-free runs byte-for-byte
// identical to a build without the injector.
//
// Events arrive two ways: per-axis Poisson processes (the resilience
// sweep's background noise) and a scripted Schedule — an ordered,
// composable timeline of named-axis events that reproduces a specific
// scenario ("partition the segment during a connection storm, then
// reset every connection") from one config.
//
// The injector draws from its own RNG seeded independently of the
// simulation's, so enabling faults never perturbs the workload's random
// streams — throughput differences between a faulted and a fault-free run
// are attributable to the faults alone.
package fault

import (
	"repro/internal/buffer"
	"repro/internal/cgroup"
	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Axis configures one class of fault event. Events arrive as a Poisson
// process at Rate events per simulated second (scaled by the config's
// Intensity) and last an exponentially distributed duration with mean
// DurNs. Magnitude is the axis-specific severity while an event is
// active. A zero Rate disables the axis.
type Axis struct {
	Rate      float64 // mean events per simulated second (before Intensity)
	DurNs     float64 // mean event duration in nanoseconds
	Magnitude float64 // axis-specific severity (see Config field docs)
}

// Config selects which fault axes run and how hard.
type Config struct {
	// Seed seeds the injector's private RNG. Runs with equal seeds and
	// configs produce identical fault timelines.
	Seed int64

	// Intensity is a master multiplier on every axis's Rate: the x-axis
	// of a resilience sweep. Zero (or negative) disables all Poisson
	// injection (a non-empty Schedule still runs).
	Intensity float64

	IOStall      Axis // Magnitude: extra ns added to every device request
	IOError      Axis // Magnitude: per-request transient failure probability
	WALSlow      Axis // Magnitude: extra ns charged to every log flush
	BufferSpike  Axis // Magnitude: fraction of buffer capacity stolen (0..1)
	GrantStarve  Axis // Magnitude: fraction of workspace reserved away (0..1)
	CpusetShrink Axis // Magnitude: fraction of allowed cores removed (0..1)

	// Replication axes (need Targets.Repl).
	ReplLinkStall Axis // link down while active (Magnitude unused)
	ReplicaSlow   Axis // Magnitude: extra ns per replica WAL flush while active
	ArchiveLoss   Axis // Magnitude: archive segments destroyed per event

	// Network axes (need Targets.Net).
	NetPartition Axis // Magnitude: partition mode (0/1 full, 2 to-server, 3 to-client)
	NetLoss      Axis // Magnitude: per-frame loss probability (0..1)
	NetDegrade   Axis // Magnitude: bandwidth/latency degradation factor (≥1)
	ConnReset    Axis // Magnitude: fraction of live connections reset per event

	// Schedule is a scripted fault timeline layered over (or instead of)
	// the Poisson axes: ordered events on named axes, validated up front
	// by Validate. Events on different axes may overlap; events on the
	// same axis may not (each axis holds one exclusive state).
	Schedule Schedule
}

// DefaultConfig returns the standard fault mix used by the resilience
// sweep at Intensity 1: a few transient events per second, each lasting
// hundreds of milliseconds — the cadence of noisy-neighbour interference
// rather than hard failures.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Intensity:    1,
		IOStall:      Axis{Rate: 0.5, DurNs: 200e6, Magnitude: 2e6},
		IOError:      Axis{Rate: 0.3, DurNs: 100e6, Magnitude: 0.3},
		WALSlow:      Axis{Rate: 0.3, DurNs: 300e6, Magnitude: 500e3},
		BufferSpike:  Axis{Rate: 0.2, DurNs: 500e6, Magnitude: 0.5},
		GrantStarve:  Axis{Rate: 0.2, DurNs: 500e6, Magnitude: 0.6},
		CpusetShrink: Axis{Rate: 0.1, DurNs: 1e9, Magnitude: 0.5},
	}
}

// axes returns every Poisson axis with its canonical name, in the fixed
// injector order.
func (c *Config) axes() []struct {
	name string
	ax   Axis
} {
	return []struct {
		name string
		ax   Axis
	}{
		{"io-stall", c.IOStall},
		{"io-error", c.IOError},
		{"wal-slow", c.WALSlow},
		{"buffer-spike", c.BufferSpike},
		{"grant-starve", c.GrantStarve},
		{"cpuset-shrink", c.CpusetShrink},
		{"repl-link-stall", c.ReplLinkStall},
		{"replica-slow", c.ReplicaSlow},
		{"archive-loss", c.ArchiveLoss},
		{"net-partition", c.NetPartition},
		{"net-loss", c.NetLoss},
		{"net-degrade", c.NetDegrade},
		{"conn-reset", c.ConnReset},
	}
}

// Enabled reports whether this config injects anything at all.
func (c Config) Enabled() bool {
	if len(c.Schedule) > 0 {
		return true
	}
	if c.Intensity <= 0 {
		return false
	}
	for _, a := range c.axes() {
		if a.ax.Rate > 0 {
			return true
		}
	}
	return false
}

// GrantTarget is the slice of the engine server the grant-starvation axis
// needs. It is an interface so this package does not import the engine
// (which imports the packages this one targets).
type GrantTarget interface {
	// WorkspaceBytes returns the configured workspace size.
	WorkspaceBytes() int64
	// SetFaultReserve reserves bytes of workspace away from queries
	// (0 clears the reservation and wakes grant waiters).
	SetFaultReserve(bytes int64)
}

// ReplTarget is the slice of a replication cluster the repl axes need
// (an interface for the same import-cycle reason as GrantTarget:
// internal/repl imports this package's config types via the harness).
type ReplTarget interface {
	// SetLinkDown partitions (true) or heals (false) every replication
	// link; shippers park while down and commit-mode acks stop arriving.
	SetLinkDown(down bool)
	// SetReplicaFlushPenalty charges extra ns to every standby WAL flush
	// (0 clears it) — the slow-replica degradation mode.
	SetReplicaFlushPenalty(ns float64)
	// DropOldestArchiveSegment destroys one archived WAL segment,
	// reporting whether one existed — the archive-loss axis PITR must
	// detect as a gap.
	DropOldestArchiveSegment() bool
}

// Targets are the subsystems the injector acts on. Nil targets disable
// the corresponding axes.
type Targets struct {
	Dev    *iodev.Device
	Log    *wal.Log
	BP     *buffer.Pool
	CPUs   *cgroup.CPUSet
	Grants GrantTarget
	Repl   ReplTarget
	Net    *net.Network
	Crash  func() // scripted "crash" events (schedule only)
	Ctr    *metrics.Counters
}

// axisAction is one axis's apply/clear pair, shared by the Poisson loop
// and the scripted schedule so a scheduled event and a Poisson event on
// the same axis behave identically (the scheduled one carries its own
// magnitude).
type axisAction struct {
	apply func(mag float64)
	clear func()
}

// Injector drives the fault timeline for one simulation run.
type Injector struct {
	sm  *sim.Sim
	cfg Config
	t   Targets

	// One forked stream per axis, plus one for the device fault state's
	// per-request draws. Forked unconditionally in a fixed order so that
	// enabling or tuning one axis never shifts another's stream. The
	// replication axes fork after devRNG, and the network axes after
	// those (each family arrived later; forking it earlier would shift
	// every pre-existing stream).
	axisRNG [6]*sim.RNG
	devRNG  *sim.RNG
	replRNG [3]*sim.RNG
	netRNG  [4]*sim.RNG

	stopped bool
}

// New creates an injector. Nothing runs until Start.
func New(sm *sim.Sim, cfg Config, t Targets) *Injector {
	in := &Injector{sm: sm, cfg: cfg, t: t}
	root := sim.NewRNG(cfg.Seed)
	for i := range in.axisRNG {
		in.axisRNG[i] = root.Fork()
	}
	in.devRNG = root.Fork()
	for i := range in.replRNG {
		in.replRNG[i] = root.Fork()
	}
	for i := range in.netRNG {
		in.netRNG[i] = root.Fork()
	}
	return in
}

// Stop ends injection: axis procs exit at their next wakeup, restoring
// their targets on the way out.
func (in *Injector) Stop() { in.stopped = true }

// buildActions binds every axis whose target is present to its
// apply/clear pair. Absent targets simply have no entry.
func (in *Injector) buildActions() map[string]axisAction {
	acts := make(map[string]axisAction)
	if in.t.Dev != nil {
		devFault := iodev.NewFault(in.devRNG)
		in.t.Dev.SetFault(devFault)
		acts["io-stall"] = axisAction{
			apply: func(m float64) { devFault.ReadStallNs, devFault.WriteStallNs = m, m },
			clear: func() { devFault.ReadStallNs, devFault.WriteStallNs = 0, 0 },
		}
		acts["io-error"] = axisAction{
			apply: func(m float64) {
				devFault.ReadErrProb, devFault.WriteErrProb = m, m
				devFault.RetryNs = 1e6 // driver retry penalty per failed attempt
			},
			clear: func() { devFault.ReadErrProb, devFault.WriteErrProb, devFault.RetryNs = 0, 0, 0 },
		}
	}
	if in.t.Log != nil {
		acts["wal-slow"] = axisAction{
			apply: func(m float64) { in.t.Log.SetFlushPenalty(m) },
			clear: func() { in.t.Log.SetFlushPenalty(0) },
		}
	}
	if in.t.BP != nil {
		acts["buffer-spike"] = axisAction{
			apply: func(m float64) { in.t.BP.SetCapacityFrac(1 - clampFrac(m)) },
			clear: func() { in.t.BP.SetCapacityFrac(1) },
		}
	}
	if in.t.Grants != nil {
		acts["grant-starve"] = axisAction{
			apply: func(m float64) {
				in.t.Grants.SetFaultReserve(int64(clampFrac(m) * float64(in.t.Grants.WorkspaceBytes())))
			},
			clear: func() { in.t.Grants.SetFaultReserve(0) },
		}
	}
	if in.t.CPUs != nil {
		var saved []int
		acts["cpuset-shrink"] = axisAction{
			apply: func(m float64) {
				saved = append(saved[:0], in.t.CPUs.Allowed()...)
				n := int(float64(len(saved)) * (1 - clampFrac(m)))
				if n < 1 {
					n = 1
				}
				in.t.CPUs.AllowN(n)
			},
			clear: func() {
				if len(saved) > 0 {
					in.t.CPUs.Allow(saved)
				}
			},
		}
	}
	if in.t.Repl != nil {
		acts["repl-link-stall"] = axisAction{
			apply: func(float64) {
				in.t.Ctr.ReplLinkStalls++
				in.t.Repl.SetLinkDown(true)
			},
			clear: func() { in.t.Repl.SetLinkDown(false) },
		}
		acts["replica-slow"] = axisAction{
			apply: func(m float64) { in.t.Repl.SetReplicaFlushPenalty(m) },
			clear: func() { in.t.Repl.SetReplicaFlushPenalty(0) },
		}
		acts["archive-loss"] = axisAction{
			apply: func(m float64) {
				drop := int(m)
				if drop < 1 {
					drop = 1
				}
				for i := 0; i < drop; i++ {
					if !in.t.Repl.DropOldestArchiveSegment() {
						break
					}
					in.t.Ctr.ArchiveSegmentsLost++
				}
			},
			clear: func() {},
		}
	}
	if in.t.Net != nil {
		acts["net-partition"] = axisAction{
			apply: func(m float64) { in.t.Net.SetPartition(partitionMode(m)) },
			clear: func() { in.t.Net.SetPartition(net.PartitionNone) },
		}
		acts["net-loss"] = axisAction{
			apply: func(m float64) { in.t.Net.SetLossProb(m) },
			clear: func() { in.t.Net.SetLossProb(0) },
		}
		acts["net-degrade"] = axisAction{
			apply: func(m float64) { in.t.Net.SetDegrade(m) },
			clear: func() { in.t.Net.SetDegrade(1) },
		}
		acts["conn-reset"] = axisAction{
			apply: func(m float64) {
				if m <= 0 {
					m = 1
				}
				in.t.Net.ResetConns(m)
			},
			clear: func() {},
		}
	}
	if in.t.Crash != nil {
		acts["crash"] = axisAction{apply: func(float64) { in.t.Crash() }, clear: func() {}}
	}
	return acts
}

// partitionMode maps an event magnitude to a partition direction.
func partitionMode(m float64) net.PartitionMode {
	switch int(m) {
	case 2:
		return net.PartitionToServer
	case 3:
		return net.PartitionToClient
	default:
		return net.PartitionBoth
	}
}

// Start spawns one proc per enabled axis plus one per scheduled axis
// timeline. A disabled config spawns nothing, preserving baseline
// determinism.
func (in *Injector) Start() {
	if !in.cfg.Enabled() {
		return
	}
	acts := in.buildActions()
	// Spawn order reproduces the historical sequence exactly (proc spawn
	// order is part of the sim's determinism): the five original axes,
	// the replication family, cpuset-shrink (which always trailed repl),
	// then the network family, then the schedule walkers. Each axis keeps
	// its historical RNG stream.
	spawn := []struct {
		name string
		ax   Axis
		rng  *sim.RNG
	}{
		{"io-stall", in.cfg.IOStall, in.axisRNG[0]},
		{"io-error", in.cfg.IOError, in.axisRNG[1]},
		{"wal-slow", in.cfg.WALSlow, in.axisRNG[2]},
		{"buffer-spike", in.cfg.BufferSpike, in.axisRNG[3]},
		{"grant-starve", in.cfg.GrantStarve, in.axisRNG[4]},
		{"repl-link-stall", in.cfg.ReplLinkStall, in.replRNG[0]},
		{"replica-slow", in.cfg.ReplicaSlow, in.replRNG[1]},
		{"archive-loss", in.cfg.ArchiveLoss, in.replRNG[2]},
		{"cpuset-shrink", in.cfg.CpusetShrink, in.axisRNG[5]},
		{"net-partition", in.cfg.NetPartition, in.netRNG[0]},
		{"net-loss", in.cfg.NetLoss, in.netRNG[1]},
		{"net-degrade", in.cfg.NetDegrade, in.netRNG[2]},
		{"conn-reset", in.cfg.ConnReset, in.netRNG[3]},
	}
	for _, a := range spawn {
		act, ok := acts[a.name]
		if !ok {
			continue
		}
		mag := a.ax.Magnitude
		in.axis(a.name, a.ax, a.rng, func() { act.apply(mag) }, act.clear)
	}
	in.startSchedule(acts)
}

func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// axis spawns the event loop for one fault axis: exponential gaps between
// events, exponential event durations, apply/clear around each event.
// clear always runs after apply, including on shutdown mid-event.
func (in *Injector) axis(name string, ax Axis, rng *sim.RNG, apply, clear func()) {
	rate := ax.Rate * in.cfg.Intensity
	if rate <= 0 {
		return
	}
	meanGapNs := 1e9 / rate
	in.sm.Spawn("fault-"+name, func(p *sim.Proc) {
		for {
			if !in.sleep(p, sim.Duration(rng.Exp(meanGapNs))) {
				return
			}
			in.t.Ctr.FaultsInjected++
			apply()
			ok := in.sleep(p, sim.Duration(rng.Exp(ax.DurNs)))
			clear()
			if !ok {
				return
			}
		}
	})
}

// sleep sleeps for d in bounded hops so the proc notices Stop promptly
// (the post-Stop drain window is finite). It reports false once stopped.
func (in *Injector) sleep(p *sim.Proc, d sim.Duration) bool {
	const hop = 5 * sim.Second
	for d > 0 {
		if in.stopped {
			return false
		}
		h := d
		if h > hop {
			h = hop
		}
		p.Sleep(h)
		d -= h
	}
	return !in.stopped
}
