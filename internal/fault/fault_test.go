package fault

import (
	"testing"

	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func devTargets(sm *sim.Sim, ctr *metrics.Counters) (Targets, *iodev.Device) {
	dev := iodev.New(iodev.PaperSSD(), ctr)
	return Targets{Dev: dev, Ctr: ctr}, dev
}

func TestDisabledConfigInjectsNothing(t *testing.T) {
	sm := sim.New(1)
	ctr := &metrics.Counters{}
	tg, dev := devTargets(sm, ctr)
	cfg := DefaultConfig(7)
	cfg.Intensity = 0
	if cfg.Enabled() {
		t.Fatal("intensity 0 should disable the config")
	}
	New(sm, cfg, tg).Start()
	sm.Run(sim.Time(30 * sim.Second))
	if ctr.FaultsInjected != 0 {
		t.Fatalf("FaultsInjected = %d with disabled config", ctr.FaultsInjected)
	}
	if dev.FaultState() != nil {
		t.Fatal("disabled injector installed a device fault state")
	}
}

func TestInjectorTimelineDeterministic(t *testing.T) {
	run := func() (int64, int64, sim.Duration) {
		sm := sim.New(1)
		ctr := &metrics.Counters{}
		tg, dev := devTargets(sm, ctr)
		cfg := DefaultConfig(7)
		cfg.Intensity = 8
		in := New(sm, cfg, tg)
		in.Start()
		var total sim.Duration
		sm.Spawn("reader", func(p *sim.Proc) {
			for p.Now() < sim.Time(20*sim.Second) {
				total += dev.Read(p, 64<<10)
			}
		})
		sm.Run(sim.Time(20 * sim.Second))
		in.Stop()
		sm.Run(sim.Time(60 * sim.Second))
		return ctr.FaultsInjected, ctr.FaultIOErrors, total
	}
	f1, e1, t1 := run()
	f2, e2, t2 := run()
	if f1 != f2 || e1 != e2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", f1, e1, t1, f2, e2, t2)
	}
	if f1 == 0 {
		t.Fatal("no faults injected at intensity 8 over 20s")
	}
}

func TestInjectorStopsCleanly(t *testing.T) {
	sm := sim.New(1)
	ctr := &metrics.Counters{}
	tg, dev := devTargets(sm, ctr)
	cfg := DefaultConfig(3)
	cfg.Intensity = 16
	in := New(sm, cfg, tg)
	in.Start()
	sm.Run(sim.Time(10 * sim.Second))
	in.Stop()
	// All injector procs must drain within the post-stop window, leaving
	// no active fault behind (clear runs even when stopped mid-event).
	sm.Run(sim.Time(60 * sim.Second))
	f := dev.FaultState()
	if f == nil {
		t.Fatal("no device fault state installed")
	}
	if f.ReadStallNs != 0 || f.WriteStallNs != 0 || f.ReadErrProb != 0 || f.WriteErrProb != 0 {
		t.Fatalf("fault left active after stop: %+v", f)
	}
}
