package access

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/colstore"
	"repro/internal/hw"
	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
)

type fixture struct {
	sm  *sim.Sim
	m   *hw.Machine
	bp  *buffer.Pool
	ctr *metrics.Counters
}

func newFixture() *fixture {
	sm := sim.New(3)
	ctr := &metrics.Counters{}
	m := hw.New(sm, hw.PaperSpec(), ctr)
	dev := iodev.New(iodev.PaperSSD(), ctr)
	bp := buffer.New(sm, dev, ctr, 256<<20)
	return &fixture{sm: sm, m: m, bp: bp, ctr: ctr}
}

func (f *fixture) ctx(p *sim.Proc) *Ctx {
	return &Ctx{
		P: p, Core: 0, M: f.m, BP: f.bp, Ctr: f.ctr,
		Cost: DefaultCost(), RNG: sim.NewRNG(9),
		MetaBase: f.m.ReserveRegion(16 << 20),
	}
}

func (f *fixture) table(k int64, rows int64) *storage.Table {
	sch := storage.NewSchema("t",
		storage.Column{Name: "id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "v", Type: storage.TInt, Width: 8},
	)
	t := storage.NewTable(1, sch, k)
	for i := int64(0); i < rows; i++ {
		t.AppendLoad([]int64{i, i % 50})
	}
	t.Data.Region = f.m.ReserveRegion(t.NominalDataBytes())
	f.bp.Register(t.Data)
	return t
}

func TestHeapChargeScanCostsScaleWithRows(t *testing.T) {
	f := newFixture()
	tb := f.table(1000, 500) // 500k nominal rows
	var small, large sim.Duration
	f.sm.Spawn("w", func(p *sim.Proc) {
		ctx := f.ctx(p)
		start := p.Now()
		Heap{T: tb}.ChargeScan(ctx, 0, 50_000, 1)
		ctx.Flush()
		small = sim.Duration(p.Now() - start)
		start = p.Now()
		Heap{T: tb}.ChargeScan(ctx, 0, 500_000, 1)
		ctx.Flush()
		large = sim.Duration(p.Now() - start)
	})
	f.sm.Run(sim.Time(600 * sim.Second))
	if large < small*5 {
		t.Fatalf("10x rows cost only %v vs %v", large, small)
	}
	if f.ctr.Instructions == 0 || f.ctr.SSDReadBytes == 0 {
		t.Fatal("scan charged nothing")
	}
}

func TestHeapProbeWarmVsCold(t *testing.T) {
	f := newFixture()
	tb := f.table(1000, 500)
	var cold, warm sim.Duration
	f.sm.Spawn("w", func(p *sim.Proc) {
		ctx := f.ctx(p)
		start := p.Now()
		Heap{T: tb}.ProbePoint(ctx, 1234, false)
		ctx.Flush()
		cold = sim.Duration(p.Now() - start)
		start = p.Now()
		Heap{T: tb}.ProbePoint(ctx, 1234, false)
		ctx.Flush()
		warm = sim.Duration(p.Now() - start)
	})
	f.sm.Run(sim.Time(60 * sim.Second))
	if cold < warm*3 {
		t.Fatalf("cold probe %v should dwarf warm probe %v (device latency)", cold, warm)
	}
}

func TestBTIndexProbeFindsRows(t *testing.T) {
	f := newFixture()
	tb := f.table(100, 1000)
	ix := NewBTIndex(50, "pk", tb, []int{0}, true, true)
	ix.File.Region = f.m.ReserveRegion(ix.File.Bytes())
	f.bp.Register(ix.File)
	found, missed := 0, 0
	f.sm.Spawn("w", func(p *sim.Proc) {
		ctx := f.ctx(p)
		for i := int64(0); i < 50; i++ {
			if rowID, ok := ix.Probe(ctx, KeyFor(i*7), i*7*tb.K, false); ok {
				if tb.Get(rowID, 0) != i*7 {
					t.Errorf("probe returned wrong row")
				}
				found++
			}
		}
		if _, ok := ix.Probe(ctx, KeyFor(99999), 0, false); !ok {
			missed++
		}
		ctx.Flush()
	})
	f.sm.Run(sim.Time(60 * sim.Second))
	if found != 50 || missed != 1 {
		t.Fatalf("found=%d missed=%d", found, missed)
	}
}

func TestBTIndexLookupAllPrefix(t *testing.T) {
	f := newFixture()
	tb := f.table(1, 100)
	// Non-unique index on v = id % 50: two rows per value.
	ix := NewBTIndex(51, "ix_v", tb, []int{1}, false, false)
	got := ix.LookupAll(KeyFor(7))
	if len(got) != 2 {
		t.Fatalf("prefix matches = %d, want 2", len(got))
	}
	for _, r := range got {
		if tb.Get(r, 1) != 7 {
			t.Fatal("wrong row matched")
		}
	}
	if n := len(ix.LookupAll(KeyFor(999))); n != 0 {
		t.Fatalf("missing prefix matched %d", n)
	}
}

func TestBTIndexGeometryGrowsWithTable(t *testing.T) {
	f := newFixture()
	tb := f.table(1000, 100)
	ix := NewBTIndex(52, "pk", tb, []int{0}, true, false)
	before := ix.NominalBytes()
	for i := 0; i < 100_000; i++ {
		tb.InsertNominal([]int64{int64(i), 0})
	}
	ix.RefreshGeometry()
	if ix.NominalBytes() <= before {
		t.Fatalf("geometry did not grow: %d -> %d", before, ix.NominalBytes())
	}
}

func TestCSIChargeSegmentScan(t *testing.T) {
	f := newFixture()
	tb := f.table(1000, 2000)
	csi := NewCSI(colstore.Build(60, tb, []int{0, 1}))
	csi.Ix.File.Region = f.m.ReserveRegion(csi.Ix.File.Bytes() + (1 << 20))
	f.bp.Register(csi.Ix.File)
	var rows int64
	f.sm.Spawn("w", func(p *sim.Proc) {
		ctx := f.ctx(p)
		for sg := 0; sg < csi.Ix.Segments(); sg++ {
			rows += csi.ChargeSegmentScan(ctx, 0, sg, 0)
		}
		ctx.Flush()
	})
	f.sm.Run(sim.Time(60 * sim.Second))
	if rows != tb.NominalRows() {
		t.Fatalf("segment rows %d != nominal %d", rows, tb.NominalRows())
	}
	if f.ctr.SSDReadBytes == 0 {
		t.Fatal("cold segment scan read nothing")
	}
}

func TestCtxFlushesAtQuantum(t *testing.T) {
	f := newFixture()
	f.sm.Spawn("w", func(p *sim.Proc) {
		ctx := f.ctx(p)
		// Far more than one quantum of CPU: must auto-flush.
		ctx.CPU(10_000_000)
		if p.Now() == 0 {
			t.Error("quantum-sized work did not advance simulated time")
		}
	})
	f.sm.Run(sim.Time(60 * sim.Second))
	if f.ctr.Instructions == 0 {
		t.Fatal("instructions never flushed")
	}
}

func TestTouchMetaRespectsDisable(t *testing.T) {
	f := newFixture()
	f.sm.Spawn("w", func(p *sim.Proc) {
		ctx := f.ctx(p)
		ctx.MetaBase = 0
		before := f.ctr.LLCAccesses
		ctx.TouchMeta(1e6)
		if f.ctr.LLCAccesses != before {
			t.Error("disabled meta touch still accessed cache")
		}
		ctx.MetaBase = f.m.ReserveRegion(16 << 20)
		ctx.TouchMeta(1e6)
		if f.ctr.LLCAccesses == before {
			t.Error("enabled meta touch accessed nothing")
		}
	})
	f.sm.Run(sim.Time(60 * sim.Second))
}
