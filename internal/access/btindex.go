package access

import (
	"repro/internal/btree"
	"repro/internal/lock"
	"repro/internal/storage"
)

// BTIndex is a costed B-tree index. Clustered indexes use the table's
// data file as their leaf level (the SQL Server model); nonclustered
// indexes have their own leaf pages holding row references.
type BTIndex struct {
	Name      string
	Table     *storage.Table
	KeyCols   []int
	Unique    bool
	Clustered bool

	Tree *btree.Tree
	File *storage.File // internal levels (clustered) or whole index (NC)

	geom     btree.Geom
	internal int64 // internal page count within File
}

// NewBTIndex creates an index over the table's current contents.
func NewBTIndex(id int, name string, t *storage.Table, keyCols []int, unique, clustered bool) *BTIndex {
	var keyWidth int64
	for _, c := range keyCols {
		keyWidth += int64(t.Cols[c].Width)
	}
	rowRef := int64(9)
	if clustered {
		rowRef = 0
	}
	ix := &BTIndex{
		Name:      name,
		Table:     t,
		KeyCols:   keyCols,
		Unique:    unique,
		Clustered: clustered,
		Tree:      btree.New(),
		File:      &storage.File{ID: id, Name: name},
	}
	ix.refreshGeom(keyWidth, rowRef)
	n := t.ActualRows()
	for r := int64(0); r < n; r++ {
		ix.Tree.Insert(ix.keyOf(r), r)
	}
	return ix
}

func (ix *BTIndex) refreshGeom(keyWidth, rowRef int64) {
	ix.geom = btree.Geom{KeyWidth: keyWidth, RowRefWidth: rowRef, NominalRows: ix.Table.NominalRows()}
	if ix.Clustered {
		// Leaf level is the table's data file; this file holds only the
		// internal levels.
		ix.internal = ix.geom.Pages() - ix.geom.LeafPages()
		if ix.internal < 1 {
			ix.internal = 1
		}
		ix.File.Pages = ix.internal
	} else {
		ix.internal = ix.geom.Pages() - ix.geom.LeafPages()
		if ix.internal < 1 {
			ix.internal = 1
		}
		ix.File.Pages = ix.geom.Pages()
	}
}

// RefreshGeometry recomputes nominal geometry after table growth.
func (ix *BTIndex) RefreshGeometry() {
	ix.refreshGeom(ix.geom.KeyWidth, ix.geom.RowRefWidth)
}

// Geom returns the nominal geometry.
func (ix *BTIndex) Geom() btree.Geom { return ix.geom }

// NominalBytes returns the index's contribution to "index size":
// internal levels for clustered indexes (the leaf is the data), the whole
// tree for nonclustered ones.
func (ix *BTIndex) NominalBytes() int64 { return ix.File.Bytes() }

// keyOf builds the tree key for an actual row, appending the row ID for
// non-unique indexes so keys are distinct.
func (ix *BTIndex) keyOf(rowID int64) btree.Key {
	k := make(btree.Key, 0, len(ix.KeyCols)+1)
	for _, c := range ix.KeyCols {
		k = append(k, ix.Table.Get(rowID, c))
	}
	if !ix.Unique {
		k = append(k, rowID)
	}
	return k
}

// KeyFor builds a search key from explicit values.
func KeyFor(vals ...int64) btree.Key { return btree.Key(vals) }

// leafPage maps a nominal row position to its leaf page within File (NC)
// or within the table's data file (clustered).
func (ix *BTIndex) leafPage(nid int64) int64 {
	if ix.Clustered {
		return ix.Table.PageOfNominal(nid)
	}
	leaf := nid / ix.geom.LeafEntriesPerPage()
	max := ix.geom.LeafPages()
	if leaf >= max {
		leaf = max - 1
	}
	return ix.internal + leaf
}

// chargeTraverse charges the internal-level traversal: (height-1) random
// touches into the internal pages (a hot few-MB region) plus per-level
// instructions. Internal pages are assumed buffer-resident (they are tiny
// relative to the pool and pinned hot in practice).
func (ix *BTIndex) chargeTraverse(ctx *Ctx) {
	levels := ix.geom.Height() - 1
	if levels < 1 {
		levels = 1
	}
	ctx.TouchRandom(ix.File.Region, ix.internal*storage.PageBytes, levels*3, false, 1.5)
	ctx.TouchMeta(20) // lock/latch/schema structures per seek
	ctx.CPU(ctx.Cost.SeekInstr + float64(levels)*ctx.Cost.LevelInstr)
}

// Probe performs a costed point lookup: traverse internal levels, latch
// the leaf page (I/O if cold), and search the actual tree. nid positions
// the nominal leaf page; key is the actual search key. Returns the actual
// row ID.
func (ix *BTIndex) Probe(ctx *Ctx, key btree.Key, nid int64, write bool) (int64, bool) {
	ix.chargeTraverse(ctx)
	leaf := ix.leafPage(nid)
	file := ix.File
	if ix.Clustered {
		file = ix.Table.Data
	}
	ctx.BP.Probe(ctx.P, file, leaf, write, ctx.Cost.RowOverheadNs)
	ctx.TouchSeq(file.PageAddr(leaf), 256, write, 2)
	it := ix.Tree.Seek(key)
	if !it.Valid() {
		return 0, false
	}
	got := it.Key()
	for i, v := range key {
		if i >= len(got) || got[i] != v {
			return 0, false
		}
	}
	return it.Value(), true
}

// LockKeyOf returns the row-lock key for a nominal row of this index's
// table (key-level locking).
func (ix *BTIndex) LockKeyOf(nid int64) lock.Key {
	return lock.Key{Obj: ix.Table.ID, Row: nid}
}

// ChargeMaintenance charges inserting/deleting one nominal entry at
// nominal position nid (leaf latch + traversal). The functional tree
// mutation is the caller's business (only materialized rows mutate it).
func (ix *BTIndex) ChargeMaintenance(ctx *Ctx, nid int64) {
	ix.chargeTraverse(ctx)
	leaf := ix.leafPage(nid)
	file := ix.File
	if ix.Clustered {
		file = ix.Table.Data
	}
	ctx.BP.Probe(ctx.P, file, leaf, true, ctx.Cost.RowOverheadNs)
	ctx.TouchSeq(file.PageAddr(leaf), 128, true, 2)
	ctx.CPU(ctx.Cost.LevelInstr)
}

// MaintPage returns the (file ID, page) a maintenance write at nominal
// position nid dirties — the leaf within the table's data file for
// clustered indexes, the index's own leaf otherwise. The engine stamps
// it on index-maintenance log records so recovery redo charges the same
// pages the forward path touched.
func (ix *BTIndex) MaintPage(nid int64) (int, int64) {
	leaf := ix.leafPage(nid)
	if ix.Clustered {
		return ix.Table.Data.ID, leaf
	}
	return ix.File.ID, leaf
}

// InsertActual adds an actual row to the functional tree (after the table
// materialized it).
func (ix *BTIndex) InsertActual(rowID int64) {
	ix.Tree.Insert(ix.keyOf(rowID), rowID)
}

// LookupAll returns the actual row IDs of every entry whose key begins
// with prefix (functional part of a seek; cost via Probe/ChargeLeafRange).
func (ix *BTIndex) LookupAll(prefix btree.Key) []int64 {
	var out []int64
	it := ix.Tree.Seek(prefix)
	for it.Valid() {
		k := it.Key()
		match := true
		for i, v := range prefix {
			if i >= len(k) || k[i] != v {
				match = false
				break
			}
		}
		if !match {
			break
		}
		out = append(out, it.Value())
		it.Next()
	}
	return out
}

// RangeActual iterates actual rows with keys in [from, to) in key order,
// calling visit for each; visit returns false to stop. Costing is the
// caller's business (use ChargeScan on the underlying heap or leaf
// range).
func (ix *BTIndex) RangeActual(from, to btree.Key, visit func(rowID int64) bool) {
	it := ix.Tree.Seek(from)
	for it.Valid() {
		if to != nil && btree.Compare(it.Key(), to) >= 0 {
			return
		}
		if !visit(it.Value()) {
			return
		}
		it.Next()
	}
}

// ChargeLeafRange charges a leaf-level range scan of count nominal
// entries starting at nominal position nid.
func (ix *BTIndex) ChargeLeafRange(ctx *Ctx, nid, count int64) {
	ix.chargeTraverse(ctx)
	if count <= 0 {
		return
	}
	per := ix.geom.LeafEntriesPerPage()
	first := ix.leafPage(nid)
	last := ix.leafPage(nid + count - 1)
	file := ix.File
	if ix.Clustered {
		file = ix.Table.Data
	}
	ctx.BP.Scan(ctx.P, file, first, last-first+1, 32)
	ctx.TouchSeq(file.PageAddr(first), (last-first+1)*storage.PageBytes, false, 6)
	ctx.CPU(float64(count) * ctx.Cost.RowScanIPR * 0.6)
	_ = per
}
