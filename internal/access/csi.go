package access

import (
	"repro/internal/colstore"
	"repro/internal/storage"
)

// CSI is the costed access method for a columnstore index.
type CSI struct {
	Ix *colstore.Index

	// segPageOff caches each (colPos, seg) segment's page offset within
	// the index file; recomputed lazily when the segment count changes.
	segPageOff [][]int64
	segsSeen   int
}

// NewCSI wraps a columnstore index.
func NewCSI(ix *colstore.Index) *CSI {
	c := &CSI{Ix: ix}
	c.layout()
	return c
}

// layout assigns page offsets column-major: all of column 0's segments,
// then column 1's, etc.
func (c *CSI) layout() {
	c.segPageOff = make([][]int64, len(c.Ix.Cols))
	off := int64(0)
	for cp := range c.Ix.Cols {
		segs := c.Ix.Segments()
		c.segPageOff[cp] = make([]int64, segs)
		for sg := 0; sg < segs; sg++ {
			c.segPageOff[cp][sg] = off
			bytes := c.Ix.SegmentNominalBytes(cp, sg)
			off += (bytes + storage.PageBytes - 1) / storage.PageBytes
		}
	}
	c.segsSeen = c.Ix.Segments()
}

// ChargeSegmentScan charges reading and decompressing one column segment:
// buffer-pool reads of the compressed nominal pages, a sequential LLC
// touch, and batch-mode per-row instructions. Returns the nominal rows
// represented.
func (c *CSI) ChargeSegmentScan(ctx *Ctx, colPos, seg int, preds int) int64 {
	if c.segsSeen != c.Ix.Segments() {
		c.layout()
	}
	s := c.Ix.Segment(colPos, seg)
	nominalRows := int64(s.N) * c.Ix.Table.K
	bytes := c.Ix.SegmentNominalBytes(colPos, seg)
	pages := (bytes + storage.PageBytes - 1) / storage.PageBytes
	off := c.segPageOff[colPos][seg]
	ctx.BP.Scan(ctx.P, c.Ix.File, off, pages, 64)
	ctx.TouchSeq(c.Ix.File.PageAddr(off), pages*storage.PageBytes, false, 8)
	ctx.TouchMeta(float64(nominalRows) * 0.5) // batch mode amortizes engine state
	ctx.CPU(float64(nominalRows) * (ctx.Cost.ColScanIPR + float64(preds)*ctx.Cost.PredIPR*0.25))
	return nominalRows
}

// SegScanCursor charges one column segment's scan incrementally, batch
// by batch, totalling exactly one ChargeSegmentScan: buffer-pool pages
// are charged proportionally to the rows consumed (deduplicated at batch
// boundaries), per-row CPU and metadata touches accrue per batch, and
// the segment's sequential LLC touch is issued once at Close (the cache
// model samples coarse streaming touches; see ScanCursor).
type SegScanCursor struct {
	c        *CSI
	preds    int
	segRows  int64 // actual rows in the segment
	k        int64 // nominal rows per actual row
	bytes    int64 // compressed nominal bytes
	pages    int64
	off      int64 // first page of the segment in the index file
	nextPage int64 // next uncharged page, relative to off
}

// NewSegScanCursor starts an incremental charge of one column segment.
func (c *CSI) NewSegScanCursor(colPos, seg, preds int) *SegScanCursor {
	if c.segsSeen != c.Ix.Segments() {
		c.layout()
	}
	s := c.Ix.Segment(colPos, seg)
	bytes := c.Ix.SegmentNominalBytes(colPos, seg)
	return &SegScanCursor{
		c:       c,
		preds:   preds,
		segRows: int64(s.N),
		k:       c.Ix.Table.K,
		bytes:   bytes,
		pages:   (bytes + storage.PageBytes - 1) / storage.PageBytes,
		off:     c.segPageOff[colPos][seg],
	}
}

// ChargeRows charges actual segment rows [lo, hi), which must advance
// monotonically across calls.
func (sc *SegScanCursor) ChargeRows(ctx *Ctx, lo, hi int) {
	if hi <= lo || sc.segRows == 0 {
		return
	}
	// Pages covering the segment's byte range up to row hi.
	endByte := sc.bytes * int64(hi) / sc.segRows
	endPage := (endByte + storage.PageBytes - 1) / storage.PageBytes
	if int64(hi) >= sc.segRows || endPage > sc.pages {
		endPage = sc.pages
	}
	if endPage > sc.nextPage {
		ctx.BP.Scan(ctx.P, sc.c.Ix.File, sc.off+sc.nextPage, endPage-sc.nextPage, 64)
		sc.nextPage = endPage
	}
	nominalRows := int64(hi-lo) * sc.k
	ctx.TouchMeta(float64(nominalRows) * 0.5)
	ctx.CPU(float64(nominalRows) * (ctx.Cost.ColScanIPR + float64(sc.preds)*ctx.Cost.PredIPR*0.25))
}

// Close issues the segment's sequential LLC touch.
func (sc *SegScanCursor) Close(ctx *Ctx) {
	if sc.nextPage == 0 {
		return
	}
	ctx.TouchSeq(sc.c.Ix.File.PageAddr(sc.off), sc.nextPage*storage.PageBytes, false, 8)
}

// ChargeDeltaScan charges scanning the delta store (uncompressed
// row-store pages at the tail of the index file).
func (c *CSI) ChargeDeltaScan(ctx *Ctx) int64 {
	n := c.Ix.DeltaNominalRows()
	if n == 0 {
		return 0
	}
	bytes := n * c.Ix.Table.RowWidth()
	pages := (bytes + storage.PageBytes - 1) / storage.PageBytes
	off := c.Ix.File.Pages - pages
	if off < 0 {
		off = 0
	}
	ctx.BP.Scan(ctx.P, c.Ix.File, off, pages, 64)
	ctx.TouchSeq(c.Ix.File.PageAddr(off), pages*storage.PageBytes, false, 8)
	ctx.CPU(float64(n) * ctx.Cost.RowScanIPR)
	return n
}

// ChargeDeltaInsert charges one nominal trickle insert into the delta
// store (the HTAP write path: row lands in the delta rowgroup page).
func (c *CSI) ChargeDeltaInsert(ctx *Ctx) {
	bytes := c.Ix.DeltaNominalRows() * c.Ix.Table.RowWidth()
	page := c.Ix.File.Pages - 1 + bytes/storage.PageBytes // hotspot tail page
	if page < 0 {
		page = 0
	}
	ctx.BP.Probe(ctx.P, c.Ix.File, page, true, ctx.Cost.RowOverheadNs)
	ctx.CPU(ctx.Cost.InsertInstr * 0.4)
}
