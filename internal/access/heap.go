package access

import (
	"repro/internal/storage"
)

// Heap is the costed access method for a row-store table (the clustered
// heap / clustered-index leaf level).
type Heap struct {
	T *storage.Table
}

// ChargeScan charges the cost of scanning nominal rows [fromNominal,
// fromNominal+count): buffer-pool reads with readahead, a sequential LLC
// touch over the nominal byte range, and per-row scan instructions.
// The caller separately iterates the actual rows for the data.
func (h Heap) ChargeScan(ctx *Ctx, fromNominal, count int64, preds int) {
	if count <= 0 {
		return
	}
	t := h.T
	firstPage := t.PageOfNominal(fromNominal)
	lastPage := t.PageOfNominal(fromNominal + count - 1)
	nPages := lastPage - firstPage + 1
	ctx.BP.Scan(ctx.P, t.Data, firstPage, nPages, 64)
	base := t.Data.PageAddr(firstPage)
	ctx.TouchSeq(base, nPages*storage.PageBytes, false, 8)
	ctx.TouchMeta(float64(count))
	ctx.CPU(float64(count) * (ctx.Cost.RowScanIPR + float64(preds)*ctx.Cost.PredIPR))
}

// ScanCursor charges a heap scan incrementally, batch by batch, while
// keeping the total charge equal to one ChargeScan over the same range:
// buffer-pool pages are deduplicated across batches, per-row CPU and
// metadata touches accrue per batch, and the sequential LLC touch is
// issued once over the full range at Close. (The cache model samples
// coarse streaming touches — see internal/cache — so splitting the LLC
// touch per batch would multiply the simulated line work, not refine it.)
type ScanCursor struct {
	h        Heap
	preds    int
	started  bool
	basePage int64 // first page of the charged range
	nextPage int64 // first page not yet charged to the buffer pool
}

// NewScanCursor starts an incremental scan charge.
func (h Heap) NewScanCursor(preds int) *ScanCursor {
	return &ScanCursor{h: h, preds: preds}
}

// ChargeRows charges nominal rows [fromNominal, fromNominal+count), which
// must advance monotonically across calls.
func (sc *ScanCursor) ChargeRows(ctx *Ctx, fromNominal, count int64) {
	if count <= 0 {
		return
	}
	t := sc.h.T
	firstPage := t.PageOfNominal(fromNominal)
	lastPage := t.PageOfNominal(fromNominal + count - 1)
	if !sc.started {
		sc.started = true
		sc.basePage = firstPage
		sc.nextPage = firstPage
	}
	if firstPage < sc.nextPage {
		firstPage = sc.nextPage
	}
	if lastPage >= firstPage {
		ctx.BP.Scan(ctx.P, t.Data, firstPage, lastPage-firstPage+1, 64)
		sc.nextPage = lastPage + 1
	}
	ctx.TouchMeta(float64(count))
	ctx.CPU(float64(count) * (ctx.Cost.RowScanIPR + float64(sc.preds)*ctx.Cost.PredIPR))
}

// Close issues the sequential LLC touch over everything charged so far.
func (sc *ScanCursor) Close(ctx *Ctx) {
	if !sc.started {
		return
	}
	t := sc.h.T
	nPages := sc.nextPage - sc.basePage
	ctx.TouchSeq(t.Data.PageAddr(sc.basePage), nPages*storage.PageBytes, false, 8)
}

// ProbePoint charges a single-row access at nominal row nid: one page
// probe with latch semantics plus a couple of line touches.
func (h Heap) ProbePoint(ctx *Ctx, nid int64, write bool) {
	t := h.T
	page := t.PageOfNominal(nid)
	ctx.BP.Probe(ctx.P, t.Data, page, write, ctx.Cost.RowOverheadNs)
	addr := t.Data.PageAddr(page) + uint64(nid%t.RowsPerPage())*uint64(t.RowWidth())
	ctx.TouchSeq(addr, t.RowWidth(), write, 2)
	ctx.TouchMeta(16) // per-operation engine-state accesses
	if write {
		ctx.CPU(ctx.Cost.UpdateInstr)
	} else {
		ctx.CPU(ctx.Cost.SeekInstr * 0.3)
	}
}

// ChargeInsert charges appending one nominal row at the current end of
// the heap (the growing-table hotspot: consecutive inserts hit the same
// last page until it fills).
func (h Heap) ChargeInsert(ctx *Ctx) {
	t := h.T
	nid := t.NominalRows() // next row lands here
	page := t.PageOfNominal(nid)
	ctx.BP.Probe(ctx.P, t.Data, page, true, ctx.Cost.RowOverheadNs)
	ctx.TouchSeq(t.Data.PageAddr(page), t.RowWidth(), true, 2)
	ctx.CPU(ctx.Cost.InsertInstr)
}
