package access

import (
	"repro/internal/storage"
)

// Heap is the costed access method for a row-store table (the clustered
// heap / clustered-index leaf level).
type Heap struct {
	T *storage.Table
}

// ChargeScan charges the cost of scanning nominal rows [fromNominal,
// fromNominal+count): buffer-pool reads with readahead, a sequential LLC
// touch over the nominal byte range, and per-row scan instructions.
// The caller separately iterates the actual rows for the data.
func (h Heap) ChargeScan(ctx *Ctx, fromNominal, count int64, preds int) {
	if count <= 0 {
		return
	}
	t := h.T
	firstPage := t.PageOfNominal(fromNominal)
	lastPage := t.PageOfNominal(fromNominal + count - 1)
	nPages := lastPage - firstPage + 1
	ctx.BP.Scan(ctx.P, t.Data, firstPage, nPages, 64)
	base := t.Data.PageAddr(firstPage)
	ctx.TouchSeq(base, nPages*storage.PageBytes, false, 8)
	ctx.TouchMeta(float64(count))
	ctx.CPU(float64(count) * (ctx.Cost.RowScanIPR + float64(preds)*ctx.Cost.PredIPR))
}

// ProbePoint charges a single-row access at nominal row nid: one page
// probe with latch semantics plus a couple of line touches.
func (h Heap) ProbePoint(ctx *Ctx, nid int64, write bool) {
	t := h.T
	page := t.PageOfNominal(nid)
	ctx.BP.Probe(ctx.P, t.Data, page, write, ctx.Cost.RowOverheadNs)
	addr := t.Data.PageAddr(page) + uint64(nid%t.RowsPerPage())*uint64(t.RowWidth())
	ctx.TouchSeq(addr, t.RowWidth(), write, 2)
	ctx.TouchMeta(16) // per-operation engine-state accesses
	if write {
		ctx.CPU(ctx.Cost.UpdateInstr)
	} else {
		ctx.CPU(ctx.Cost.SeekInstr * 0.3)
	}
}

// ChargeInsert charges appending one nominal row at the current end of
// the heap (the growing-table hotspot: consecutive inserts hit the same
// last page until it fills).
func (h Heap) ChargeInsert(ctx *Ctx) {
	t := h.T
	nid := t.NominalRows() // next row lands here
	page := t.PageOfNominal(nid)
	ctx.BP.Probe(ctx.P, t.Data, page, true, ctx.Cost.RowOverheadNs)
	ctx.TouchSeq(t.Data.PageAddr(page), t.RowWidth(), true, 2)
	ctx.CPU(ctx.Cost.InsertInstr)
}
