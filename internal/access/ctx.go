// Package access provides the engine's access methods: costed wrappers
// around the functional storage structures (heaps, B-tree indexes,
// columnstore indexes). Every operation does the real work on the
// scaled-down data *and* charges nominal costs — instructions, LLC
// touches, buffer-pool page I/O — to the simulated machine.
package access

import (
	"repro/internal/buffer"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// CostModel carries the per-operation instruction costs. Fields are
// exported so ablation benchmarks can perturb them.
type CostModel struct {
	RowScanIPR    float64 // instructions per nominal row, row-store scan
	ColScanIPR    float64 // instructions per nominal row per column, batch mode
	PredIPR       float64 // per nominal row per predicate evaluation
	SeekInstr     float64 // per index seek (besides per-level page work)
	LevelInstr    float64 // per B-tree level traversed
	InsertInstr   float64 // per row insert (heap part)
	UpdateInstr   float64 // per row update
	HashBuildIPR  float64 // per nominal row inserted into a hash table
	HashProbeIPR  float64 // per nominal row probed
	SortIPR       float64 // per nominal row per merge pass
	AggIPR        float64 // per nominal row aggregated
	ExchangeIPR   float64 // per nominal row crossing an exchange
	WorkerStartNs float64 // parallel worker startup cost
	RowOverheadNs float64 // per-row-operation fixed latch hold
	TupleBytes    int64   // in-memory tuple overhead for hash/sort sizing
	BatchRows     int64   // actual rows per column batch in the vectorized executor

	// Per-statement and per-transaction fixed engine overheads: protocol
	// handling, parse/bind against the plan cache, execution-context
	// setup, commit processing. These dominate short OLTP statements in
	// real engines (tens of thousands of instructions) and are what makes
	// transactional throughput scale with cores rather than saturating on
	// the log device. StmtStallNs is the instruction-fetch/branch stall
	// component of a statement (OLTP code paths are famously front-end
	// stall-bound — Sirin et al., cited by the paper, measure >50% stall
	// cycles); a high stall fraction is also why hyper-threading helps
	// transactional workloads while hurting compute-bound analytics.
	StmtInstr   float64
	StmtStallNs float64
	TxnInstr    float64

	// Engine-metadata working set: every row processed touches shared
	// engine state (batch descriptors, dictionaries, plan and schema
	// caches, lock/latch structures) at MetaTouchPerRow random accesses
	// into a MetaBytes region. This is the hot set that makes tiny LLC
	// allocations disproportionately painful (the paper's knees at small
	// CAT masks) — per-query data structures alone would miss it.
	MetaTouchPerRow float64
	MetaBytes       int64
}

// DefaultCost returns the calibrated cost model.
func DefaultCost() *CostModel {
	return &CostModel{
		RowScanIPR:      35,
		ColScanIPR:      4.5,
		PredIPR:         6,
		SeekInstr:       350,
		LevelInstr:      120,
		InsertInstr:     700,
		UpdateInstr:     450,
		HashBuildIPR:    55,
		HashProbeIPR:    45,
		SortIPR:         30,
		AggIPR:          40,
		ExchangeIPR:     28,
		WorkerStartNs:   250_000,
		RowOverheadNs:   400,
		TupleBytes:      24,
		BatchRows:       1024,
		StmtInstr:       90_000,
		StmtStallNs:     45_000,
		TxnInstr:        140_000,
		MetaTouchPerRow: 0.14,
		MetaBytes:       14 << 20,
	}
}

// Ctx is one worker's execution context: it accumulates CPU work and
// memory stalls locally and flushes them to the machine in bursts, so the
// simulation pays one scheduling event per ~quantum of work rather than
// per row.
type Ctx struct {
	P    *sim.Proc
	Core int
	M    *hw.Machine
	BP   *buffer.Pool
	Ctr  *metrics.Counters
	Cost *CostModel
	RNG  *sim.RNG

	// MetaBase is the shared engine-metadata region (see CostModel).
	MetaBase uint64

	pendingInstr float64
	pendingStall float64
}

// flushThresholdNs is the accumulated-work quantum: roughly the SQLOS
// scheduling quantum, so CPU contention is modelled at realistic
// granularity.
const flushThresholdNs = 200_000

// CPU charges instructions.
func (c *Ctx) CPU(instr float64) {
	c.pendingInstr += instr
	c.maybeFlush()
}

// Stall charges memory stall nanoseconds (from Touch results).
func (c *Ctx) Stall(ns float64) {
	c.pendingStall += ns
	c.maybeFlush()
}

func (c *Ctx) estimateNs() float64 {
	// Rough conversion for the flush heuristic only; Exec computes the
	// real duration.
	return c.pendingInstr*c.Cost.cpiNs() + c.pendingStall
}

func (cm *CostModel) cpiNs() float64 { return 0.33 } // ~0.7 CPI at 2.1+ GHz

func (c *Ctx) maybeFlush() {
	if c.estimateNs() >= flushThresholdNs {
		c.Flush()
	}
}

// Flush executes the pending work on the machine. Call before any
// blocking operation (I/O, lock, latch) so that work and waits interleave
// in the right order.
func (c *Ctx) Flush() {
	if c.pendingInstr <= 0 && c.pendingStall <= 0 {
		return
	}
	instr := int64(c.pendingInstr)
	stall := c.pendingStall
	c.pendingInstr = 0
	c.pendingStall = 0
	c.M.Exec(c.P, c.Core, instr, stall)
}

// TouchSeq charges a sequential memory touch and accumulates its stall.
func (c *Ctx) TouchSeq(base uint64, bytes int64, write bool, mlp float64) {
	c.Stall(c.M.TouchSeq(c.Core, base, bytes, write, mlp))
}

// TouchRandom charges random accesses over a region.
func (c *Ctx) TouchRandom(base uint64, region, count int64, write bool, mlp float64) {
	c.Stall(c.M.TouchRandom(c.Core, base, region, count, write, mlp, c.RNG.Float64))
}

// TouchRandomSkewed charges accesses positioned by posFn.
func (c *Ctx) TouchRandomSkewed(base uint64, region, count int64, write bool, mlp float64, posFn func() float64) {
	c.Stall(c.M.TouchRandom(c.Core, base, region, count, write, mlp, posFn))
}

// TouchMeta charges the engine-metadata accesses for processing n
// nominal rows (see CostModel.MetaTouchPerRow).
func (c *Ctx) TouchMeta(rows float64) {
	if c.MetaBase == 0 || c.Cost.MetaTouchPerRow <= 0 {
		return
	}
	n := int64(rows * c.Cost.MetaTouchPerRow)
	if n <= 0 {
		return
	}
	c.TouchRandom(c.MetaBase, c.Cost.MetaBytes, n, false, 2)
}

// WaitIO records an explicit I/O wait (tempdb spills, etc.).
func (c *Ctx) WaitIO(d sim.Duration) {
	metrics.ChargeWait(c.P, c.Ctr, metrics.WaitIO, d)
}
