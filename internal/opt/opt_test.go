package opt

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/storage"
)

func simNewRNG(seed int64) *sim.RNG { return sim.NewRNG(seed) }

func table(name string, id int, k int64, rows int64, cols int) *storage.Table {
	var cs []storage.Column
	names := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < cols; i++ {
		cs = append(cs, storage.Column{Name: names[i], Type: storage.TInt, Width: 8})
	}
	t := storage.NewTable(id, storage.NewSchema(name, cs...), k)
	for i := int64(0); i < rows; i++ {
		row := make([]int64, cols)
		row[0] = i
		if cols > 1 {
			row[1] = i % 100
		}
		t.AppendLoad(row)
	}
	return t
}

func planner(dop int) *Planner {
	pl := NewPlanner(access.DefaultCost())
	pl.Dop = dop
	pl.WorkspaceBytes = 8 << 30
	pl.BufferBytes = 45 << 30
	pl.DBBytes = 40 << 30 // fits: warm
	return pl
}

func scanL(t *storage.Table, proj []int, sel float64) *LNode {
	return &LNode{Kind: LScan, Heap: access.Heap{T: t}, Proj: proj, Sel: sel, Name: t.Name}
}

func TestCheapQueriesStaySerial(t *testing.T) {
	small := table("small", 1, 1, 100, 2)
	pl := planner(32)
	node, info := pl.Plan(scanL(small, []int{0}, 1))
	if info.Dop != 1 || node.Parallel {
		t.Fatalf("tiny scan should be serial, got dop %d", info.Dop)
	}
}

func TestExpensiveQueriesGoParallel(t *testing.T) {
	big := table("big", 1, 100000, 5000, 2) // 500M nominal rows
	pl := planner(32)
	node, info := pl.Plan(scanL(big, []int{0}, 1))
	if info.Dop != 32 || !node.Parallel {
		t.Fatalf("big scan should be parallel, got dop %d", info.Dop)
	}
	if !strings.HasPrefix(node.Shape(), "p") {
		t.Fatalf("shape %q not parallel", node.Shape())
	}
}

func TestSmallerSideBuildsHashJoin(t *testing.T) {
	fact := table("fact", 1, 1000, 10000, 3)
	dim := table("dim", 2, 1, 100, 2)
	join := &LNode{
		Kind: LJoin, Left: scanL(fact, []int{0, 1}, 1), Right: scanL(dim, []int{0, 1}, 1),
		LeftKeys: []int{1}, RightKeys: []int{0}, JoinType: exec.InnerJoin, FK: true,
	}
	pl := planner(1)
	node, _ := pl.Plan(join)
	// dim (small) should be the build side = node.Left, probe = fact.
	if node.Kind != exec.KHashJoin {
		t.Fatalf("kind = %v", node.Kind)
	}
	if node.Left.Name != "dim" || node.Right.Name != "fact" {
		t.Fatalf("build = %s, probe = %s", node.Left.Name, node.Right.Name)
	}
}

func TestBuildOnLeftGetsReorderProjection(t *testing.T) {
	small := table("small", 1, 1, 50, 2)
	big := table("big", 2, 1000, 10000, 2)
	join := &LNode{
		Kind: LJoin, Left: scanL(small, []int{0, 1}, 1), Right: scanL(big, []int{0, 1}, 1),
		LeftKeys: []int{0}, RightKeys: []int{0}, JoinType: exec.InnerJoin, FK: true,
	}
	pl := planner(1)
	node, _ := pl.Plan(join)
	if node.Kind != exec.KProject {
		t.Fatalf("expected reorder projection, got %v (%s)", node.Kind, node.Shape())
	}
	if node.Left.Kind != exec.KHashJoin || node.Left.Left.Name != "small" {
		t.Fatalf("build side = %s", node.Left.Left.Name)
	}
}

func TestNLJoinChosenForSelectiveOuter(t *testing.T) {
	// A heavily filtered outer probing a large inner: scanning and
	// hashing the inner would dwarf a handful of index seeks.
	outer := table("outer", 1, 1, 1000, 3)
	inner := table("inner", 2, 10000, 5000, 2) // 50M nominal rows
	ix := access.NewBTIndex(10, "pk_inner", inner, []int{0}, true, true)
	join := &LNode{
		Kind: LJoin, Left: scanL(outer, []int{0, 1}, 0.01), Right: scanL(inner, []int{0, 1}, 1),
		LeftKeys: []int{1}, RightKeys: []int{0}, JoinType: exec.InnerJoin, FK: true,
		InnerIndex: ix, InnerProj: []int{0, 1},
	}
	pl := planner(1)
	node, _ := pl.Plan(join)
	if node.Kind != exec.KNLIndexJoin {
		t.Fatalf("expected NL join, got %s", node.Shape())
	}
}

func TestColdRandomIODiscouragesNLSerial(t *testing.T) {
	fact := table("fact", 1, 10000, 5000, 3) // 50M nominal outer rows
	dim := table("dim", 2, 10000, 5000, 2)   // huge inner: cold probes
	ix := access.NewBTIndex(10, "pk_dim", dim, []int{0}, true, true)
	join := &LNode{
		Kind: LJoin, Left: scanL(fact, []int{0, 1}, 1), Right: scanL(dim, []int{0, 1}, 1),
		LeftKeys: []int{1}, RightKeys: []int{0}, JoinType: exec.InnerJoin, FK: true,
		InnerIndex: ix, InnerProj: []int{0, 1},
	}
	pl := planner(1)
	pl.DBBytes = 130 << 30 // does not fit: cold probes are expensive
	node, _ := pl.Plan(join)
	if node.Kind == exec.KNLIndexJoin {
		t.Fatalf("cold serial NL should lose to hash, got %s", node.Shape())
	}
	// At high DOP the overlapped random I/O tilts back toward NL.
	pl32 := planner(32)
	pl32.DBBytes = 130 << 30
	node32, info := pl32.Plan(join)
	if info.Dop != 32 {
		t.Fatalf("expected parallel plan, dop = %d", info.Dop)
	}
	if node32.Shape() == node.Shape() {
		t.Log("plan shape did not change with DOP (acceptable if costs are close)")
	}
}

func TestGrantCappedAtFraction(t *testing.T) {
	big := table("big", 1, 100000, 5000, 3)
	agg := &LNode{
		Kind: LAgg, Left: scanL(big, []int{0, 1}, 1),
		Groups: []int{0}, Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
		NGroups: 1e9, // enormous group estimate
	}
	pl := planner(1)
	pl.WorkspaceBytes = 1 << 30
	pl.GrantFrac = 0.25
	_, info := pl.Plan(agg)
	if info.GrantBytes != (1<<30)/4 {
		t.Fatalf("grant = %d, want cap %d", info.GrantBytes, (1<<30)/4)
	}
	if info.MemNeed <= info.GrantBytes {
		t.Fatal("expected memory need above the cap")
	}
}

func TestEstimatesPropagate(t *testing.T) {
	tb := table("t", 1, 10, 1000, 2)
	pl := planner(1)
	node, _ := pl.Plan(scanL(tb, []int{0}, 0.1))
	if node.EstRows != 1000 {
		t.Fatalf("est rows = %f, want 1000 (10000 nominal * 0.1)", node.EstRows)
	}
	srt := &LNode{Kind: LTop, Left: scanL(tb, []int{0}, 1), Keys: []exec.SortKey{{Col: 0}}, Limit: 10}
	node, _ = pl.Plan(srt)
	if node.Kind != exec.KTop || node.Limit != 10 {
		t.Fatalf("top plan wrong: %s", node.Shape())
	}
}

func TestHistogramSelectivities(t *testing.T) {
	// 1000 values uniform over [0, 999].
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := BuildHistogram(vals, 32)
	if h.Total != 1000 || h.Min != 0 || h.Max != 999 {
		t.Fatalf("histogram meta: %+v", h)
	}
	if got := h.SelRange(0, 999); got < 0.99 {
		t.Fatalf("full range sel = %f", got)
	}
	if got := h.SelRange(0, 99); got < 0.07 || got > 0.14 {
		t.Fatalf("10%% range sel = %f", got)
	}
	if got := h.SelRange(500, 499); got != 0 {
		t.Fatalf("empty range sel = %f", got)
	}
	if got := h.SelEq(42); got < 0.0005 || got > 0.002 {
		t.Fatalf("eq sel = %f", got)
	}
	if got := h.SelLE(-5); got != 0 {
		t.Fatalf("below-min sel = %f", got)
	}
	// Skewed data: heavy value should not break bucket boundaries.
	skew := make([]int64, 0, 1000)
	for i := 0; i < 900; i++ {
		skew = append(skew, 7)
	}
	for i := 0; i < 100; i++ {
		skew = append(skew, int64(1000+i))
	}
	hs := BuildHistogram(skew, 16)
	if got := hs.SelRange(7, 7); got < 0.85 {
		t.Fatalf("hot value sel = %f", got)
	}
	empty := BuildHistogram(nil, 8)
	if empty.SelLE(5) != 0 || empty.SelEq(5) != 0 {
		t.Fatal("empty histogram should be all-zero")
	}
}

func TestHistogramSelMonotoneProperty(t *testing.T) {
	g := simNewRNG(3)
	f := func(seed uint16) bool {
		vals := make([]int64, 500)
		for i := range vals {
			vals[i] = g.Int64n(10000)
		}
		h := BuildHistogram(vals, 20)
		prev := -1.0
		for v := int64(0); v <= 10000; v += 500 {
			s := h.SelLE(v)
			if s < prev-1e-9 || s < 0 || s > 1 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsDrivePlanSelectivity(t *testing.T) {
	tb := table("t", 1, 10, 2000, 2)
	// Column 1 holds i%100: a range [0,9] covers ~10%.
	stats := CollectStats(tb, []int{1}, 32)
	pl := planner(1)
	node, _ := pl.Plan(&LNode{
		Kind: LScan, Heap: access.Heap{T: tb}, Proj: []int{0},
		Stats: stats, PredRanges: []ColRange{{Col: 1, Lo: 0, Hi: 9}},
		Name: "t",
	})
	nominal := float64(tb.NominalRows())
	if node.EstRows < nominal*0.05 || node.EstRows > nominal*0.2 {
		t.Fatalf("est rows = %f of %f nominal", node.EstRows, nominal)
	}
}
