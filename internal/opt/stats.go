package opt

import (
	"sort"

	"repro/internal/storage"
)

// Histogram is an equi-depth histogram over an int64 column — the
// statistics object a real optimizer builds with CREATE STATISTICS and
// reads for cardinality estimation.
type Histogram struct {
	// Bounds[i] is the upper bound (inclusive) of bucket i; buckets hold
	// roughly equal row counts.
	Bounds []int64
	Counts []int64
	Total  int64

	Min, Max int64
	// Distinct is an estimate of the number of distinct values.
	Distinct int64
}

// BuildHistogram collects an equi-depth histogram with the given number
// of buckets from a column sample.
func BuildHistogram(vals []int64, buckets int) *Histogram {
	h := &Histogram{}
	n := len(vals)
	if n == 0 {
		return h
	}
	if buckets < 1 {
		buckets = 1
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	h.Total = int64(n)
	h.Min, h.Max = s[0], s[n-1]
	distinct := int64(1)
	for i := 1; i < n; i++ {
		if s[i] != s[i-1] {
			distinct++
		}
	}
	h.Distinct = distinct

	per := n / buckets
	if per < 1 {
		per = 1
	}
	for i := per - 1; i < n; i += per {
		// Extend the bucket to the end of a run of equal values so a
		// value never straddles buckets.
		j := i
		for j+1 < n && s[j+1] == s[j] {
			j++
		}
		count := int64(j + 1)
		if len(h.Bounds) > 0 {
			var prev int64
			for _, c := range h.Counts {
				prev += c
			}
			count -= prev
		}
		if count <= 0 {
			i = j
			continue
		}
		h.Bounds = append(h.Bounds, s[j])
		h.Counts = append(h.Counts, count)
		i = j
	}
	// Ensure the last value is covered.
	var covered int64
	for _, c := range h.Counts {
		covered += c
	}
	if covered < int64(n) {
		h.Bounds = append(h.Bounds, s[n-1])
		h.Counts = append(h.Counts, int64(n)-covered)
	}
	return h
}

// SelLE estimates the fraction of rows with value <= v.
func (h *Histogram) SelLE(v int64) float64 {
	if h.Total == 0 {
		return 0
	}
	if v < h.Min {
		return 0
	}
	if v >= h.Max {
		return 1
	}
	var acc int64
	lo := h.Min
	for i, b := range h.Bounds {
		if v >= b {
			acc += h.Counts[i]
			lo = b
			continue
		}
		// Linear interpolation within the bucket.
		span := float64(b - lo)
		if span <= 0 {
			span = 1
		}
		frac := float64(v-lo) / span
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return (float64(acc) + frac*float64(h.Counts[i])) / float64(h.Total)
	}
	return 1
}

// SelRange estimates the fraction of rows with lo <= value <= hi.
func (h *Histogram) SelRange(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	s := h.SelLE(hi) - h.SelLE(lo-1)
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// SelEq estimates the fraction of rows equal to v (uniform within the
// distinct values of v's bucket).
func (h *Histogram) SelEq(v int64) float64 {
	if h.Total == 0 || h.Distinct == 0 || v < h.Min || v > h.Max {
		return 0
	}
	return 1 / float64(h.Distinct)
}

// ColRange is a declarative range predicate for cardinality estimation:
// Lo <= col <= Hi (math.MinInt64 / MaxInt64 for open ends).
type ColRange struct {
	Col    int
	Lo, Hi int64
}

// TableStats carries per-column histograms for one table.
type TableStats struct {
	Table *storage.Table
	Cols  map[int]*Histogram
}

// CollectStats builds histograms for the given columns of a table
// (default 64 buckets), sampling every actual row.
func CollectStats(t *storage.Table, cols []int, buckets int) *TableStats {
	if buckets <= 0 {
		buckets = 64
	}
	ts := &TableStats{Table: t, Cols: make(map[int]*Histogram, len(cols))}
	for _, c := range cols {
		ts.Cols[c] = BuildHistogram(t.Col(c), buckets)
	}
	return ts
}

// SelOfRanges estimates combined selectivity of conjunctive range
// predicates using attribute-independence (the standard assumption).
// Columns without statistics contribute a default factor.
func (ts *TableStats) SelOfRanges(ranges []ColRange) float64 {
	sel := 1.0
	for _, r := range ranges {
		h := ts.Cols[r.Col]
		if h == nil {
			sel *= 0.3
			continue
		}
		sel *= h.SelRange(r.Lo, r.Hi)
	}
	if sel < 0 {
		sel = 0
	}
	return sel
}
