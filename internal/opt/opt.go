// Package opt implements the engine's cost-based query optimizer.
//
// Queries arrive as logical trees (authored by the workload packages,
// standing in for parsed SQL) annotated with the statistics a real
// optimizer would read from histograms: predicate selectivities and group
// counts. The planner chooses the physical shape the paper studies:
//
//   - scan method (row store vs columnstore),
//   - join algorithm and order (hash join vs index nested loops; build
//     side by estimated cardinality),
//   - serial vs parallel execution — the whole plan is costed at DOP 1
//     and at the offered DOP, and the cheaper wall-time wins, reproducing
//     the paper's observation that small scale factors run serial plans
//     regardless of MAXDOP while large ones flip shape (Figure 7),
//   - the memory grant request (driving Figure 8's spill behaviour).
package opt

import (
	"math"

	"repro/internal/access"
	"repro/internal/exec"
)

// LKind is a logical operator kind.
type LKind int

// Logical operators.
const (
	LScan LKind = iota // table access (planner picks row vs columnstore)
	LJoin
	LAgg
	LSort
	LTop
	LProject
	LFilter
)

// LNode is a logical plan node with optimizer hints.
type LNode struct {
	Kind LKind

	// Label names the query template at the root node (e.g. "tpch.Q14");
	// the engine keys cumulative query statistics by it.
	Label string

	Left  *LNode
	Right *LNode

	// Scan.
	Heap     access.Heap
	CSI      *access.CSI // non-nil if a columnstore index exists
	Index    *access.BTIndex
	Proj     []int
	Pred     exec.Pred
	NPred    int
	PredCols []int
	Sel      float64 // predicate selectivity hint (1 = no filter)
	// Stats and PredRanges, when both set, let the planner estimate the
	// scan selectivity from column histograms instead of the Sel hint
	// (which remains the fallback and covers non-range predicates).
	Stats      *TableStats
	PredRanges []ColRange

	// Join: key ordinals within each child's OUTPUT rows. FK marks an
	// N:1 relationship from Left (many) to Right (one), the common
	// fact-to-dimension join.
	LeftKeys  []int
	RightKeys []int
	JoinType  exec.JoinType
	FK        bool
	// FanOut, when > 0, declares a 1:N join from Left to Right with N =
	// FanOut matches per outer row (e.g. part -> partsupp is 1:4).
	FanOut float64
	// InnerIndex, when set, allows an index nested-loops implementation
	// probing Right's table through this index; InnerProj lists the
	// inner table columns to emit. Only valid when Right is an
	// unfiltered LScan of the index's table whose Proj matches
	// InnerProj — the planner substitutes index probes for the scan.
	InnerIndex *access.BTIndex
	InnerProj  []int

	// Aggregate.
	Groups    []int
	Aggs      []exec.AggSpec
	NGroups   float64 // estimated group count (nominal)
	OutWeight int64   // nominal rows per actual output row after agg (default 1)

	// Sort / Top.
	Keys  []exec.SortKey
	Limit int

	// Project.
	Exprs []func(exec.Row) int64

	Name string
}

// Planner holds the system context the optimizer costs against.
type Planner struct {
	Cost           *access.CostModel
	WorkspaceBytes int64   // total query workspace memory
	GrantFrac      float64 // max grant fraction per query (default 0.25)
	BufferBytes    int64   // buffer pool capacity
	DBBytes        int64   // total database nominal size
	Dop            int     // offered DOP (min of MAXDOP and allowed cores)

	// CostThresholdNs mirrors "cost threshold for parallelism": serial
	// plans cheaper than this never go parallel.
	CostThresholdNs float64
}

// NewPlanner builds a planner with defaults.
func NewPlanner(cost *access.CostModel) *Planner {
	return &Planner{
		Cost:            cost,
		GrantFrac:       0.25,
		Dop:             1,
		CostThresholdNs: 6e8,
	}
}

// PlanInfo reports what the optimizer decided.
type PlanInfo struct {
	Dop        int
	EstCostNs  float64
	GrantBytes int64
	MemNeedNs  int64 // reserved; kept for symmetry
	MemNeed    int64
	Shape      string
}

// planned carries per-subtree planning results.
type planned struct {
	node     *exec.Node
	rows     float64 // nominal cardinality estimate
	weight   int64
	rowBytes int64
	costNs   float64 // cumulative wall-ns estimate at the planning DOP
	memNeed  int64   // peak workspace bytes below (inclusive)
}

const cpiNs = 0.33
const seqReadNsPerByte = 1.0 / 2.5 // 2500 MB/s
const randIONs = 90_000

// Plan optimizes a logical tree: it costs the whole query serially and at
// the offered DOP and returns the cheaper physical plan plus its grant.
func (pl *Planner) Plan(q *LNode) (*exec.Node, PlanInfo) {
	serial := pl.planAt(q, 1)
	if pl.Dop <= 1 || serial.costNs < pl.CostThresholdNs {
		return pl.finish(serial, 1)
	}
	par := pl.planAt(q, pl.Dop)
	if par.costNs < serial.costNs {
		return pl.finish(par, pl.Dop)
	}
	return pl.finish(serial, 1)
}

func (pl *Planner) finish(p planned, dop int) (*exec.Node, PlanInfo) {
	grant := pl.grantBytes(p.memNeed)
	return p.node, PlanInfo{
		Dop:        dop,
		EstCostNs:  p.costNs,
		GrantBytes: grant,
		MemNeed:    p.memNeed,
		Shape:      p.node.Shape(),
	}
}

// grantBytes caps the request at the per-query maximum.
func (pl *Planner) grantBytes(need int64) int64 {
	if pl.WorkspaceBytes <= 0 {
		return 0 // unlimited workspace configured
	}
	max := int64(float64(pl.WorkspaceBytes) * pl.GrantFrac)
	if need > max {
		return max
	}
	if need < 1<<20 {
		need = 1 << 20
	}
	return need
}

// coldFrac estimates the fraction of a file's pages that will need I/O.
func (pl *Planner) coldFrac(fileBytes int64) float64 {
	if pl.BufferBytes <= 0 || pl.DBBytes <= pl.BufferBytes {
		return 0.02 // everything warm after steady state
	}
	global := float64(pl.DBBytes-pl.BufferBytes) / float64(pl.DBBytes)
	// Small objects stay cached even under global pressure.
	smallness := float64(fileBytes) * 4 / float64(pl.BufferBytes)
	if smallness > 1 {
		smallness = 1
	}
	return global * smallness
}

func (pl *Planner) planAt(q *LNode, dop int) planned {
	p := pl.plan(q, dop)
	if dop > 1 {
		p.costNs += pl.Cost.WorkerStartNs * float64(dop)
	}
	return p
}

func (pl *Planner) plan(q *LNode, dop int) planned {
	switch q.Kind {
	case LScan:
		return pl.planScan(q, dop)
	case LJoin:
		return pl.planJoin(q, dop)
	case LAgg:
		return pl.planAgg(q, dop)
	case LSort, LTop:
		return pl.planSort(q, dop)
	case LProject:
		return pl.planProject(q, dop)
	case LFilter:
		return pl.planFilter(q, dop)
	default:
		panic("opt: unknown logical kind")
	}
}

func selOf(q *LNode) float64 {
	if q.Sel <= 0 || q.Sel > 1 {
		return 1
	}
	return q.Sel
}

func (pl *Planner) planScan(q *LNode, dop int) planned {
	t := q.Heap.T
	nominal := float64(t.NominalRows())
	sel := selOf(q)
	if q.Stats != nil && len(q.PredRanges) > 0 {
		sel = q.Stats.SelOfRanges(q.PredRanges)
		if q.Sel > 0 && q.Sel < 1 {
			// Residual non-range predicates keep their hinted factor.
			extra := q.Sel / maxF(sel, 1e-9)
			if extra < 1 {
				sel *= extra
			}
		}
	}
	outRows := nominal * sel
	rowBytes := int64(len(q.Proj))*8 + 8
	var node *exec.Node
	var cpuNs, ioNs float64
	if q.CSI != nil {
		node = &exec.Node{
			Kind: exec.KColScan, CSI: q.CSI, Proj: q.Proj,
			Pred: q.Pred, NPred: q.NPred, PredCols: q.PredCols,
			Weight: t.K, Name: q.Name,
		}
		cols := float64(len(q.Proj) + len(q.PredCols))
		ioBytes := float64(q.CSI.Ix.NominalBytes()) * cols / float64(len(q.CSI.Ix.Cols)+1)
		cpuNs = nominal * cols * pl.Cost.ColScanIPR * cpiNs
		ioNs = ioBytes * seqReadNsPerByte * pl.coldFrac(q.CSI.Ix.File.Bytes())
	} else {
		node = &exec.Node{
			Kind: exec.KRowScan, Heap: q.Heap, Proj: q.Proj,
			Pred: q.Pred, NPred: q.NPred, Weight: t.K, Name: q.Name,
		}
		cpuNs = nominal * (pl.Cost.RowScanIPR + float64(q.NPred)*pl.Cost.PredIPR) * cpiNs
		ioNs = float64(t.NominalDataBytes()) * seqReadNsPerByte * pl.coldFrac(t.NominalDataBytes())
	}
	node.EstRows = outRows
	node.RowBytes = rowBytes
	node.Parallel = dop > 1
	// CPU parallelizes across workers; sequential scan I/O is limited by
	// the shared device bandwidth and does not speed up with DOP.
	return planned{node: node, rows: outRows, weight: t.K, rowBytes: rowBytes,
		costNs: cpuNs/float64(dop) + ioNs}
}

func (pl *Planner) planJoin(q *LNode, dop int) planned {
	left := pl.plan(q.Left, dop)
	right := pl.plan(q.Right, dop)

	outRows := joinCard(q, left.rows, right.rows)
	outWeight := left.weight
	if right.weight > outWeight {
		outWeight = right.weight
	}
	outBytes := left.rowBytes + right.rowBytes

	// Candidate 1: hash join. The logical output contract is Left's
	// columns ++ Right's columns (Left only for semi/anti); the executor
	// emits probe ++ build, so building on the Right needs no reorder.
	// For inner joins the smaller side builds; a build on the Left gets a
	// reordering projection on top.
	buildIsLeft := q.JoinType == exec.InnerJoin && left.rows < right.rows
	build, probe := right, left
	buildKeys, probeKeys := q.RightKeys, q.LeftKeys
	if buildIsLeft {
		build, probe = left, right
		buildKeys, probeKeys = q.LeftKeys, q.RightKeys
	}
	buildBytes := int64(build.rows * float64(build.rowBytes+pl.Cost.TupleBytes))
	grant := pl.grantBytes(buildBytes)
	spillBytes := int64(0)
	if grant > 0 && buildBytes > grant {
		spillBytes = buildBytes - grant
	}
	hashCost := left.costNs + right.costNs +
		(build.rows*pl.Cost.HashBuildIPR+probe.rows*pl.Cost.HashProbeIPR)*cpiNs/float64(dop) +
		float64(2*spillBytes)*seqReadNsPerByte

	hashNode := &exec.Node{
		Kind: exec.KHashJoin,
		Left: build.node, Right: probe.node,
		BuildKeys: buildKeys, ProbeKeys: probeKeys,
		JoinType: q.JoinType,
		EstRows:  outRows, Weight: outWeight, RowBytes: outBytes,
		Parallel: dop > 1, Name: q.Name,
	}
	var hashRoot *exec.Node = hashNode
	if buildIsLeft {
		// Executor emits probe(Right) ++ build(Left); restore L ++ R.
		lw, rw := outputWidth(q.Left), outputWidth(q.Right)
		perm := make([]int, 0, lw+rw)
		for i := 0; i < lw; i++ {
			perm = append(perm, rw+i)
		}
		for i := 0; i < rw; i++ {
			perm = append(perm, i)
		}
		hashRoot = &exec.Node{
			Kind: exec.KProject, Left: hashNode,
			Exprs:   permExprs(perm),
			EstRows: outRows, Weight: outWeight, RowBytes: outBytes,
			Parallel: hashNode.Parallel, Name: "reorder",
		}
	}
	hashMem := maxI64(maxI64(left.memNeed, right.memNeed), buildBytes)

	best := planned{node: hashRoot, rows: outRows, weight: outWeight,
		rowBytes: outBytes, costNs: hashCost, memNeed: hashMem}

	// Candidate 2: index nested loops (outer = Left) when an index on the
	// inner table exists. Output is Left ++ InnerProj, which the query
	// author keeps aligned with Right's projection, so no reorder.
	if q.InnerIndex != nil {
		ix := q.InnerIndex
		seekNs := (pl.Cost.SeekInstr + float64(ix.Geom().Height())*pl.Cost.LevelInstr) * cpiNs
		cold := pl.coldFrac(ix.Table.NominalDataBytes())
		perProbeIO := cold * randIONs
		// Per-probe CPU divides by DOP. Random I/O overlaps through
		// per-worker prefetch queues (depth ~4 on NVMe), so total
		// overlap grows with the worker count — the mechanism that makes
		// a cold nested-loops plan unattractive serially but the winner
		// at high DOP (Figure 7's plan flip).
		overlap := 4 * float64(dop)
		if overlap > 128 {
			overlap = 128
		}
		nlCost := left.costNs +
			left.rows*seekNs/float64(dop) +
			left.rows*perProbeIO/overlap
		if nlCost < best.costNs {
			nlNode := &exec.Node{
				Kind: exec.KNLIndexJoin,
				Left: left.node, Index: ix,
				OuterKeys: q.LeftKeys, InnerProj: q.InnerProj,
				JoinType: q.JoinType,
				EstRows:  outRows, Weight: outWeight,
				RowBytes: left.rowBytes + int64(len(q.InnerProj))*8,
				Parallel: dop > 1, Name: q.Name,
			}
			best = planned{node: nlNode, rows: outRows, weight: outWeight,
				rowBytes: nlNode.RowBytes, costNs: nlCost, memNeed: left.memNeed}
		}
	}

	// Candidate 3: merge join. Sorts both sides (which spill
	// independently) and merges with no join-time workspace — the memory-
	// constrained alternative SQL Server swaps in when grants are tight.
	{
		lBytes := int64(left.rows * float64(left.rowBytes+pl.Cost.TupleBytes))
		rBytes := int64(right.rows * float64(right.rowBytes+pl.Cost.TupleBytes))
		grantM := pl.grantBytes(maxI64(lBytes, rBytes))
		spillM := int64(0)
		if grantM > 0 {
			if lBytes > grantM {
				spillM += lBytes - grantM
			}
			if rBytes > grantM {
				spillM += rBytes - grantM
			}
		}
		sortCost := func(rows float64) float64 {
			if rows < 2 {
				return 0
			}
			return rows * pl.Cost.SortIPR * math.Log2(rows) * cpiNs
		}
		mergeCost := left.costNs + right.costNs +
			(sortCost(left.rows)+sortCost(right.rows))/float64(dop) +
			(left.rows+right.rows)*pl.Cost.AggIPR*0.5*cpiNs +
			float64(2*spillM)*seqReadNsPerByte
		if mergeCost < best.costNs {
			mj := &exec.Node{
				Kind: exec.KMergeJoin,
				Left: left.node, Right: right.node,
				BuildKeys: q.LeftKeys, ProbeKeys: q.RightKeys,
				JoinType: q.JoinType,
				EstRows:  outRows, Weight: outWeight, RowBytes: outBytes,
				Parallel: dop > 1, Name: q.Name,
			}
			best = planned{node: mj, rows: outRows, weight: outWeight,
				rowBytes: outBytes, costNs: mergeCost,
				memNeed: maxI64(maxI64(left.memNeed, right.memNeed), maxI64(lBytes, rBytes))}
		}
	}
	return best
}

func permExprs(perm []int) []func(exec.Row) int64 {
	out := make([]func(exec.Row) int64, len(perm))
	for i, p := range perm {
		p := p
		out[i] = func(r exec.Row) int64 { return r[p] }
	}
	return out
}

// outputWidth computes the logical node's output column count.
func outputWidth(q *LNode) int {
	switch q.Kind {
	case LScan:
		return len(q.Proj)
	case LJoin:
		if q.JoinType != exec.InnerJoin {
			return outputWidth(q.Left)
		}
		if q.InnerIndex != nil {
			// May be planned as NL (Left ++ InnerProj) or hash (L ++ R);
			// both have the same width when InnerProj mirrors Right.Proj.
			return outputWidth(q.Left) + len(q.InnerProj)
		}
		return outputWidth(q.Left) + outputWidth(q.Right)
	case LAgg:
		return len(q.Groups) + len(q.Aggs)
	case LSort, LTop, LFilter:
		return outputWidth(q.Left)
	case LProject:
		return len(q.Exprs)
	}
	return 0
}

func joinCard(q *LNode, l, r float64) float64 {
	switch q.JoinType {
	case exec.SemiJoin:
		return l * 0.5
	case exec.AntiJoin:
		return l * 0.5
	default:
		if q.FanOut > 0 {
			return l * q.FanOut
		}
		if q.FK {
			return l
		}
		if r == 0 || l == 0 {
			return 0
		}
		return l * r / math.Max(math.Min(l, r), 1)
	}
}

func (pl *Planner) planAgg(q *LNode, dop int) planned {
	child := pl.plan(q.Left, dop)
	groups := q.NGroups
	if groups <= 0 {
		groups = math.Sqrt(child.rows) + 1
	}
	if groups > child.rows {
		groups = child.rows
	}
	w := q.OutWeight
	if w < 1 {
		w = 1
	}
	rowBytes := int64(len(q.Groups)+len(q.Aggs))*8 + 8
	memNeed := int64(groups * float64(rowBytes+pl.Cost.TupleBytes))
	hashNode := &exec.Node{
		Kind: exec.KHashAgg, Left: child.node,
		Groups: q.Groups, Aggs: q.Aggs,
		EstRows: groups, Weight: w, RowBytes: rowBytes,
		Parallel: dop > 1, Name: q.Name,
	}
	grant := pl.grantBytes(memNeed)
	hashSpill := int64(0)
	if grant > 0 && memNeed > grant {
		hashSpill = memNeed - grant
	}
	hashCost := child.costNs + child.rows*pl.Cost.AggIPR*cpiNs/float64(dop) +
		float64(2*hashSpill)*seqReadNsPerByte
	best := planned{node: hashNode, rows: groups, weight: w, rowBytes: rowBytes,
		costNs: hashCost, memNeed: maxI64(child.memNeed, memNeed)}

	// Stream aggregate: sort the input, fold sequentially — no group
	// table, so when the hash table far exceeds the grant the sort-based
	// plan (whose spill is the input, once) can win. Grouped queries
	// only; a scalar aggregate never builds a table worth spilling.
	if len(q.Groups) > 0 && child.rows > 2 {
		inBytes := int64(child.rows * float64(child.rowBytes+pl.Cost.TupleBytes))
		sSpill := int64(0)
		if grant > 0 && inBytes > grant {
			sSpill = inBytes - grant
		}
		streamCost := child.costNs +
			child.rows*(pl.Cost.SortIPR*math.Log2(child.rows)+pl.Cost.AggIPR*0.6)*cpiNs +
			float64(2*sSpill)*seqReadNsPerByte
		if streamCost < best.costNs {
			sNode := &exec.Node{
				Kind: exec.KStreamAgg, Left: child.node,
				Groups: q.Groups, Aggs: q.Aggs,
				EstRows: groups, Weight: w, RowBytes: rowBytes,
				Parallel: dop > 1, Name: q.Name,
			}
			best = planned{node: sNode, rows: groups, weight: w, rowBytes: rowBytes,
				costNs: streamCost, memNeed: maxI64(child.memNeed, inBytes)}
		}
	}
	return best
}

func (pl *Planner) planSort(q *LNode, dop int) planned {
	child := pl.plan(q.Left, dop)
	kind := exec.KSort
	if q.Kind == LTop {
		kind = exec.KTop
	}
	memNeed := int64(child.rows * float64(child.rowBytes+pl.Cost.TupleBytes))
	if q.Kind == LTop {
		memNeed = int64(q.Limit+1) * (child.rowBytes + pl.Cost.TupleBytes)
	}
	node := &exec.Node{
		Kind: kind, Left: child.node,
		Keys: q.Keys, Limit: q.Limit,
		EstRows: child.rows, Weight: child.weight, RowBytes: child.rowBytes,
		Parallel: dop > 1, Name: q.Name,
	}
	n := math.Max(child.rows, 2)
	cost := child.costNs + child.rows*pl.Cost.SortIPR*math.Log2(n)*cpiNs/float64(dop)
	return planned{node: node, rows: child.rows, weight: child.weight,
		rowBytes: child.rowBytes, costNs: cost, memNeed: maxI64(child.memNeed, memNeed)}
}

func (pl *Planner) planFilter(q *LNode, dop int) planned {
	child := pl.plan(q.Left, dop)
	rows := child.rows * selOf(q)
	node := &exec.Node{
		Kind: exec.KFilter, Left: child.node,
		Pred: q.Pred, NPred: q.NPred,
		EstRows: rows, Weight: child.weight, RowBytes: child.rowBytes,
		Parallel: dop > 1, Name: q.Name,
	}
	cost := child.costNs + child.rows*float64(maxIntOpt(q.NPred, 1))*pl.Cost.PredIPR*cpiNs/float64(dop)
	return planned{node: node, rows: rows, weight: child.weight,
		rowBytes: child.rowBytes, costNs: cost, memNeed: child.memNeed}
}

func maxIntOpt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (pl *Planner) planProject(q *LNode, dop int) planned {
	child := pl.plan(q.Left, dop)
	rowBytes := int64(len(q.Exprs))*8 + 8
	node := &exec.Node{
		Kind: exec.KProject, Left: child.node, Exprs: q.Exprs,
		EstRows: child.rows, Weight: child.weight, RowBytes: rowBytes,
		Parallel: dop > 1, Name: q.Name,
	}
	return planned{node: node, rows: child.rows, weight: child.weight,
		rowBytes: rowBytes, costNs: child.costNs, memNeed: child.memNeed}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
