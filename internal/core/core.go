// Package core is the paper's primary contribution as a reusable
// library: resource-sensitivity characterization. Given measurements of a
// workload under swept resource allocations (cores, LLC ways, bandwidth
// limits, DOP, memory grants), it derives the analyses the paper reports:
// normalized sensitivity curves, knees, sufficient-capacity thresholds
// (Table 4), speedup matrices (Figures 6 and 8), and linear-versus-actual
// response comparisons (Figure 5), plus paper-style text rendering.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one measurement: a knob setting X and an observed value Y.
type Point struct {
	X float64
	Y float64
}

// Curve is a named response curve, kept sorted by X.
type Curve struct {
	Name   string
	Points []Point
}

// NewCurve builds a curve, sorting by X.
func NewCurve(name string, pts []Point) Curve {
	c := Curve{Name: name, Points: append([]Point(nil), pts...)}
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].X < c.Points[j].X })
	return c
}

// Add appends a point, keeping order.
func (c *Curve) Add(x, y float64) {
	c.Points = append(c.Points, Point{x, y})
	sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].X < c.Points[j].X })
}

// At returns the Y at exactly x, or an interpolated value for x inside
// the domain; ok is false outside the domain.
func (c Curve) At(x float64) (float64, bool) {
	n := len(c.Points)
	if n == 0 || x < c.Points[0].X || x > c.Points[n-1].X {
		return 0, false
	}
	for i, p := range c.Points {
		if p.X == x {
			return p.Y, true
		}
		if p.X > x {
			prev := c.Points[i-1]
			frac := (x - prev.X) / (p.X - prev.X)
			return prev.Y + frac*(p.Y-prev.Y), true
		}
	}
	return c.Points[n-1].Y, true
}

// MaxY returns the largest Y.
func (c Curve) MaxY() float64 {
	max := math.Inf(-1)
	for _, p := range c.Points {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// Last returns the point with the largest X.
func (c Curve) Last() Point {
	if len(c.Points) == 0 {
		return Point{}
	}
	return c.Points[len(c.Points)-1]
}

// Normalized returns the curve scaled so that Y at the largest X is 1
// (the paper's "relative to full allocation" presentation).
func (c Curve) Normalized() Curve {
	base := c.Last().Y
	out := Curve{Name: c.Name}
	for _, p := range c.Points {
		y := 0.0
		if base != 0 {
			y = p.Y / base
		}
		out.Points = append(out.Points, Point{p.X, y})
	}
	return out
}

// SpeedupVs returns Y(x)/Y(refX) for every point (Figure 6/8 bars: each
// setting relative to a baseline setting).
func (c Curve) SpeedupVs(refX float64) (Curve, error) {
	ref, ok := c.At(refX)
	if !ok || ref == 0 {
		return Curve{}, fmt.Errorf("core: no baseline at x=%v for %q", refX, c.Name)
	}
	out := Curve{Name: c.Name}
	for _, p := range c.Points {
		out.Points = append(out.Points, Point{p.X, p.Y / ref})
	}
	return out, nil
}

// SufficientCapacity returns the smallest X whose Y reaches frac of the
// full-allocation Y (Table 4: LLC size for >= 90% / 95% performance).
// ok is false if no point qualifies.
func (c Curve) SufficientCapacity(frac float64) (float64, bool) {
	target := c.Last().Y * frac
	for _, p := range c.Points {
		if p.Y >= target {
			return p.X, true
		}
	}
	return 0, false
}

// Knee locates the curve's knee with the Kneedle-style max-distance
// method: the point farthest above the chord from first to last point
// (normalized). A sharp knee at small X is the paper's signature cache
// behaviour.
func (c Curve) Knee() (Point, bool) {
	n := len(c.Points)
	if n < 3 {
		return Point{}, false
	}
	first, last := c.Points[0], c.Points[n-1]
	dx, dy := last.X-first.X, last.Y-first.Y
	if dx == 0 {
		return Point{}, false
	}
	bestD, bestI := 0.0, -1
	for i := 1; i < n-1; i++ {
		p := c.Points[i]
		// Perpendicular-ish distance above the chord, normalized axes.
		t := (p.X - first.X) / dx
		chordY := first.Y + t*dy
		d := (p.Y - chordY) / math.Max(math.Abs(dy), 1e-12)
		if d > bestD {
			bestD, bestI = d, i
		}
	}
	if bestI < 0 {
		return Point{}, false
	}
	return c.Points[bestI], true
}

// MarginalGain returns the per-unit improvement between consecutive
// points: (Y_{i+1}-Y_i)/(X_{i+1}-X_i), reported at the right endpoint.
func (c Curve) MarginalGain() Curve {
	out := Curve{Name: c.Name + " (marginal)"}
	for i := 1; i < len(c.Points); i++ {
		a, b := c.Points[i-1], c.Points[i]
		if b.X == a.X {
			continue
		}
		out.Points = append(out.Points, Point{b.X, (b.Y - a.Y) / (b.X - a.X)})
	}
	return out
}

// LinearReference returns the straight line through the origin and the
// curve's last point, sampled at the curve's X values — Figure 5's
// hypothetical linear response.
func (c Curve) LinearReference() Curve {
	last := c.Last()
	out := Curve{Name: c.Name + " (linear)"}
	slope := 0.0
	if last.X != 0 {
		slope = last.Y / last.X
	}
	for _, p := range c.Points {
		out.Points = append(out.Points, Point{p.X, slope * p.X})
	}
	return out
}

// AllocationForTarget answers Figure 5's provisioning question: the
// smallest allocation reaching targetY under the actual curve, and the
// allocation a linear model would prescribe. The gap is the
// over-provisioning a linear assumption costs.
func (c Curve) AllocationForTarget(targetY float64) (actualX, linearX float64, ok bool) {
	last := c.Last()
	if last.X == 0 || last.Y <= 0 || len(c.Points) == 0 {
		return 0, 0, false
	}
	slope := last.Y / last.X
	linearX = targetY / slope
	// Actual: first X (interpolated) where Y >= target.
	prev := c.Points[0]
	if prev.Y >= targetY {
		return prev.X, linearX, true
	}
	for _, p := range c.Points[1:] {
		if p.Y >= targetY {
			frac := (targetY - prev.Y) / (p.Y - prev.Y)
			return prev.X + frac*(p.X-prev.X), linearX, true
		}
		prev = p
	}
	return 0, linearX, false
}

// Ratio is a labelled before/after ratio (Table 3 rows).
type Ratio struct {
	Label string
	Num   float64
	Den   float64
}

// Value returns Num/Den (0 when the denominator is 0).
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return r.Num / r.Den
}

// Table is a simple text table renderer producing the paper-style
// aligned output used by the harness and examples.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
