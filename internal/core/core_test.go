package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func kneeCurve() Curve {
	// Sharp knee at x=10: fast rise then slow tail (the paper's LLC shape).
	pts := []Point{}
	for x := 2.0; x <= 40; x += 2 {
		y := 1 - math.Exp(-x/5) + 0.002*x
		pts = append(pts, Point{x, y})
	}
	return NewCurve("llc", pts)
}

func TestAtInterpolates(t *testing.T) {
	c := NewCurve("c", []Point{{0, 0}, {10, 100}})
	if y, ok := c.At(5); !ok || y != 50 {
		t.Fatalf("At(5) = %v,%v", y, ok)
	}
	if _, ok := c.At(11); ok {
		t.Fatal("At outside domain should fail")
	}
	if y, ok := c.At(10); !ok || y != 100 {
		t.Fatalf("At(10) = %v,%v", y, ok)
	}
}

func TestNormalizedAndSpeedup(t *testing.T) {
	c := NewCurve("c", []Point{{1, 10}, {2, 15}, {4, 20}})
	n := c.Normalized()
	if n.Last().Y != 1 {
		t.Fatalf("normalized last = %v", n.Last().Y)
	}
	s, err := c.SpeedupVs(4)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s.At(1); got != 0.5 {
		t.Fatalf("speedup at 1 = %v", got)
	}
	if _, err := c.SpeedupVs(3.3); err == nil {
		// 3.3 interpolates fine, so this should actually succeed.
		t.Log("interpolated baseline accepted")
	}
}

func TestSufficientCapacity(t *testing.T) {
	c := kneeCurve()
	x90, ok := c.SufficientCapacity(0.90)
	if !ok {
		t.Fatal("no 90% point")
	}
	x95, ok := c.SufficientCapacity(0.95)
	if !ok {
		t.Fatal("no 95% point")
	}
	if x90 > x95 {
		t.Fatalf("90%% capacity %v > 95%% capacity %v", x90, x95)
	}
	if x90 >= 30 {
		t.Fatalf("knee curve 90%% point too late: %v", x90)
	}
}

func TestKneeDetection(t *testing.T) {
	c := kneeCurve()
	k, ok := c.Knee()
	if !ok {
		t.Fatal("no knee found")
	}
	if k.X < 4 || k.X > 16 {
		t.Fatalf("knee at %v, expected near 10", k.X)
	}
	flat := NewCurve("flat", []Point{{1, 1}, {2, 2}})
	if _, ok := flat.Knee(); ok {
		t.Fatal("two-point curve cannot have a knee")
	}
}

func TestLinearReferenceAndTarget(t *testing.T) {
	// Concave curve: actual allocation for a target is below linear.
	pts := []Point{}
	for x := 100.0; x <= 1000; x += 100 {
		pts = append(pts, Point{x, math.Sqrt(x)})
	}
	c := NewCurve("qps", pts)
	lin := c.LinearReference()
	if lin.Last().Y != c.Last().Y {
		t.Fatal("linear reference must agree at the endpoint")
	}
	target := c.Last().Y * 0.9
	actualX, linearX, ok := c.AllocationForTarget(target)
	if !ok {
		t.Fatal("no allocation found")
	}
	if actualX >= linearX {
		t.Fatalf("concave curve: actual %v should beat linear %v", actualX, linearX)
	}
	// The paper's example: ~20% savings.
	if savings := 1 - actualX/linearX; savings < 0.05 {
		t.Fatalf("savings = %.2f", savings)
	}
}

func TestMarginalGain(t *testing.T) {
	c := NewCurve("c", []Point{{0, 0}, {1, 10}, {2, 15}})
	m := c.MarginalGain()
	if len(m.Points) != 2 || m.Points[0].Y != 10 || m.Points[1].Y != 5 {
		t.Fatalf("marginal = %v", m.Points)
	}
}

func TestSufficientCapacityMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Any nondecreasing curve: capacity(0.9) <= capacity(0.95).
		pts := []Point{}
		y := 0.0
		for x := 1.0; x <= 20; x++ {
			y += math.Abs(math.Sin(float64(seed) + x))
			pts = append(pts, Point{x, y})
		}
		c := NewCurve("p", pts)
		a, okA := c.SufficientCapacity(0.9)
		b, okB := c.SufficientCapacity(0.95)
		return okA && okB && a <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndTable(t *testing.T) {
	r := Ratio{Label: "LOCK", Num: 15, Den: 100}
	if r.Value() != 0.15 {
		t.Fatalf("ratio = %v", r.Value())
	}
	if (Ratio{Num: 1}).Value() != 0 {
		t.Fatal("zero denominator should be 0")
	}
	tb := Table{Headers: []string{"Workload", "SF", "Perf>=90%"}}
	tb.AddRow("ASDB", "2000", "8 MB")
	tb.AddRow("TPC-H", "100", "16 MB")
	out := tb.Render()
	if !strings.Contains(out, "ASDB") || !strings.Contains(out, "----") {
		t.Fatalf("render = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
}

func TestF(t *testing.T) {
	if F(0) != "0" || F(1234) != "1234" || F(12.34) != "12.3" || F(0.123) != "0.123" {
		t.Fatalf("F formats: %s %s %s %s", F(0), F(1234), F(12.34), F(0.123))
	}
}
