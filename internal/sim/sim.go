// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated entities ("procs") run as goroutines that execute in strict
// lockstep with the scheduler: at any instant exactly one goroutine — the
// scheduler or a single proc — is active. Procs advance simulated time by
// blocking on kernel primitives (Sleep, WaitQueue, Resource); the scheduler
// pops the earliest pending event, advances the virtual clock, and resumes
// the corresponding proc. Because execution is serialized and all randomness
// flows through the kernel's seeded RNG, a simulation with a given seed and
// configuration reproduces identical results on every run.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute simulated time in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// DurationOf converts a floating-point number of seconds to a Duration.
func DurationOf(seconds float64) Duration { return Duration(seconds * float64(Second)) }

// Sim is a discrete-event simulation instance.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *RNG

	// yield is signalled by the currently-running proc when it blocks or
	// terminates, returning control to the scheduler loop.
	yield chan struct{}

	cur      *Proc // proc currently executing, nil when scheduler runs
	nlive    int   // procs spawned and not yet finished
	stopping bool
}

// New creates a simulation whose RNG is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{
		rng:   NewRNG(seed),
		yield: make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// RNG returns the simulation's deterministic random number generator.
func (s *Sim) RNG() *RNG { return s.rng }

type event struct {
	at    Time
	seq   uint64
	p     *Proc
	epoch uint64 // wakeup is valid only if the proc has not resumed since
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *Sim) schedule(at Time, p *Proc) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, p: p, epoch: p.epoch})
	p.pending++
}

// Proc is a simulated process. All Proc methods must be called from the
// proc's own goroutine while it is the active entity.
type Proc struct {
	sim     *Sim
	name    string
	resume  chan struct{}
	pending int    // scheduled wakeups not yet delivered
	waiting bool   // parked on a WaitQueue (woken by WakeOne/WakeAll)
	epoch   uint64 // increments on every resume; stale wakeups are dropped
	done    bool
	fail    error // errno-style sticky failure slot (see SetFail)
	attr    any   // opaque per-proc attribution slot (see SetAttr)
}

// SetAttr attaches an opaque attribution value to the proc. Higher layers
// use it to charge activity to the owning statement without threading a
// parameter through every call chain: the engine attaches a per-statement
// counter set before running a statement, layers that record waits or I/O
// look it up via their own typed accessor (e.g. metrics.StmtOf), and query
// workers propagate the coordinator's value at spawn. Because the
// simulation is strictly serialized, reads and writes never race.
func (p *Proc) SetAttr(v any) { p.attr = v }

// Attr returns the value attached with SetAttr, or nil.
func (p *Proc) Attr() any { return p.attr }

// SetFail records a sticky failure on the proc, errno-style: a layer that
// cannot return an error through its call chain (e.g. a buffer-pool read
// that exhausted its device retries) deposits it here, and a higher layer
// that owns the proc (the session, the query coordinator) collects it with
// TakeFail. The first failure wins until taken.
func (p *Proc) SetFail(err error) {
	if p.fail == nil {
		p.fail = err
	}
}

// TakeFail returns the recorded failure, if any, and clears the slot.
func (p *Proc) TakeFail() error {
	err := p.fail
	p.fail = nil
	return err
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation the proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.now }

// RNG returns the simulation RNG.
func (p *Proc) RNG() *RNG { return p.sim.rng }

// Spawn creates a new proc that runs fn. The proc starts at the current
// simulated time (it is scheduled as an event, so it begins when the
// scheduler next reaches now).
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nlive++
	go func() {
		<-p.resume // wait to be scheduled for the first time
		fn(p)
		p.done = true
		s.nlive--
		s.yield <- struct{}{}
	}()
	s.schedule(s.now, p)
	return p
}

// park transfers control back to the scheduler and blocks until the proc is
// resumed.
func (p *Proc) park() {
	if p.sim.cur != p {
		panic(fmt.Sprintf("sim: proc %q parked while not active", p.name))
	}
	p.sim.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the proc for d simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+Time(d), p)
	p.park()
}

// Yield reschedules the proc at the current time, letting same-time events
// that were scheduled earlier run first.
func (p *Proc) Yield() {
	p.sim.schedule(p.sim.now, p)
	p.park()
}

// Run executes events until no events remain or the clock would pass until.
// It returns the time at which it stopped. Procs that are still blocked on
// wait queues stay parked; long-running simulations should arrange a
// cooperative shutdown (broadcast a stop flag and WakeAll their queues) so
// procs unwind cleanly rather than leaking goroutines.
func (s *Sim) Run(until Time) Time {
	if Profiling() {
		return s.runProfiled(until)
	}
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		ev.p.pending--
		if ev.p.done {
			continue
		}
		if ev.epoch != ev.p.epoch {
			// The proc resumed (and possibly parked elsewhere) since this
			// wakeup was scheduled — e.g. a wait that timed out before its
			// queue wake arrived. Stale wakeups must not fire.
			continue
		}
		if ev.at > until {
			// Put it back and stop.
			s.seq++
			heap.Push(&s.events, event{at: ev.at, seq: ev.seq, p: ev.p, epoch: ev.epoch})
			ev.p.pending++
			s.now = until
			return s.now
		}
		s.now = ev.at
		ev.p.waiting = false
		ev.p.epoch++
		s.cur = ev.p
		ev.p.resume <- struct{}{}
		<-s.yield
		s.cur = nil
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// runProfiled is Run with wall-clock phase timers: dispatch overhead
// (heap pops, stale-wakeup filtering, channel handoff setup) accrues to
// sim.loop, the time between resume and yield — the proc actually
// executing — to sim.proc. Identical simulated behavior to Run; only
// host-side counters differ.
func (s *Sim) runProfiled(until Time) Time {
	start := s.now
	t0 := time.Now()
	defer func() {
		ProfLoop.Add(time.Since(t0), 1)
		profAddSim(Duration(s.now - start))
	}()
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		ev.p.pending--
		if ev.p.done {
			continue
		}
		if ev.epoch != ev.p.epoch {
			continue
		}
		if ev.at > until {
			s.seq++
			heap.Push(&s.events, event{at: ev.at, seq: ev.seq, p: ev.p, epoch: ev.epoch})
			ev.p.pending++
			s.now = until
			return s.now
		}
		s.now = ev.at
		ev.p.waiting = false
		ev.p.epoch++
		s.cur = ev.p
		pt := time.Now()
		ev.p.resume <- struct{}{}
		<-s.yield
		procWall := time.Since(pt)
		ProfProc.Add(procWall, 1)
		ProfLoop.Add(-procWall, 0) // proc time is inside the deferred total; carve it out
		s.cur = nil
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// Live returns the number of spawned procs that have not finished.
func (s *Sim) Live() int { return s.nlive }

// WaitQueue is a FIFO queue of blocked procs, the building block for
// condition-style synchronization. A proc calls Wait to park itself; another
// proc (or the same code path on a different proc) calls WakeOne or WakeAll
// to schedule parked procs at the current simulated time.
type WaitQueue struct {
	procs []*Proc
}

// Wait parks p on the queue until woken.
func (q *WaitQueue) Wait(p *Proc) {
	q.procs = append(q.procs, p)
	p.waiting = true
	p.park()
}

// WaitTimeout parks p on the queue until woken or until d elapses. It
// reports whether the wait timed out; on timeout, p has been removed
// from the queue. A timed-out wakeup that raced with a WakeOne/WakeAll
// is treated as woken (timedOut = false) when p was already dequeued.
func (q *WaitQueue) WaitTimeout(p *Proc, d Duration) (timedOut bool) {
	if d <= 0 {
		d = 1
	}
	p.sim.schedule(p.sim.now+Time(d), p) // timeout wakeup
	q.procs = append(q.procs, p)
	p.waiting = true
	p.park()
	// Either the timeout fired (p still queued) or a wake dequeued p
	// first; the loser's event is dropped by the epoch check.
	for i, qp := range q.procs {
		if qp == p {
			copy(q.procs[i:], q.procs[i+1:])
			q.procs = q.procs[:len(q.procs)-1]
			return true
		}
	}
	return false
}

// WakeOne wakes the proc at the head of the queue, if any. It reports
// whether a proc was woken.
func (q *WaitQueue) WakeOne(s *Sim) bool {
	if len(q.procs) == 0 {
		return false
	}
	p := q.procs[0]
	copy(q.procs, q.procs[1:])
	q.procs = q.procs[:len(q.procs)-1]
	s.schedule(s.now, p)
	return true
}

// WakeAll wakes every parked proc.
func (q *WaitQueue) WakeAll(s *Sim) {
	for _, p := range q.procs {
		s.schedule(s.now, p)
	}
	q.procs = q.procs[:0]
}

// Len returns the number of parked procs.
func (q *WaitQueue) Len() int { return len(q.procs) }

// Resource is a counted resource with FIFO-ish admission: procs that find
// the resource exhausted park on an internal queue and re-check when woken.
type Resource struct {
	capacity int
	inUse    int
	q        WaitQueue
}

// NewResource creates a resource with the given capacity (units).
func NewResource(capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{capacity: capacity}
}

// SetCapacity changes the capacity and wakes waiters that may now fit.
func (r *Resource) SetCapacity(s *Sim, capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	r.capacity = capacity
	r.q.WakeAll(s)
}

// Acquire blocks p until a unit is available, then takes it. It returns the
// simulated time spent waiting.
func (r *Resource) Acquire(p *Proc) Duration {
	start := p.sim.now
	for r.inUse >= r.capacity {
		r.q.Wait(p)
	}
	r.inUse++
	return Duration(p.sim.now - start)
}

// TryAcquire takes a unit if one is available without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.inUse++
	return true
}

// Release returns a unit and wakes one waiter.
func (r *Resource) Release(s *Sim) {
	if r.inUse <= 0 {
		panic("sim: Resource.Release without Acquire")
	}
	r.inUse--
	r.q.WakeOne(s)
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of procs parked waiting for a unit — the
// resource's instantaneous queue depth.
func (r *Resource) Waiting() int { return r.q.Len() }

// Capacity returns the current capacity.
func (r *Resource) Capacity() int { return r.capacity }
