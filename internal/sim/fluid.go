package sim

// FluidServer models a work-conserving FIFO server with a fluid service
// rate (bytes per second): each request occupies the server for
// size/rate seconds, and requests queue in arrival order. Because the
// queue is fluid, admission is computed in O(1) — the server keeps a
// "busy until" horizon that each request extends.
//
// It models both an I/O device channel (rate = device bandwidth) and a
// cgroup-style throttle (rate = configured limit).
type FluidServer struct {
	rate      float64 // units per second; <= 0 means unlimited
	busyUntil Time
}

// NewFluidServer creates a server with the given rate in units/second.
// A rate <= 0 means the server never delays requests.
func NewFluidServer(unitsPerSecond float64) *FluidServer {
	return &FluidServer{rate: unitsPerSecond}
}

// SetRate changes the service rate for subsequent requests.
func (f *FluidServer) SetRate(unitsPerSecond float64) { f.rate = unitsPerSecond }

// Rate returns the current service rate.
func (f *FluidServer) Rate() float64 { return f.rate }

// Serve blocks p until units of work have been served, honoring FIFO order
// with all earlier requests. It returns the total delay experienced.
func (f *FluidServer) Serve(p *Proc, units float64) Duration {
	d := f.Reserve(p.Now(), units)
	if d > 0 {
		p.Sleep(d)
	}
	return d
}

// Reserve computes, without blocking, the delay a request of the given
// size arriving at now would experience, and commits the reservation.
func (f *FluidServer) Reserve(now Time, units float64) Duration {
	if f.rate <= 0 || units <= 0 {
		return 0
	}
	start := f.busyUntil
	if start < now {
		start = now
	}
	service := Duration(units / f.rate * float64(Second))
	f.busyUntil = start + Time(service)
	return Duration(f.busyUntil - now)
}

// Backlog returns how far in the future the server is already committed.
func (f *FluidServer) Backlog(now Time) Duration {
	if f.busyUntil <= now {
		return 0
	}
	return Duration(f.busyUntil - now)
}

// Utilization estimators: RateMeter measures achieved throughput over
// fixed windows, for bandwidth-pressure feedback and PCM-style reporting.
type RateMeter struct {
	capacity float64 // units per second considered "full"
	window   Duration

	winStart Time
	winBytes float64
	lastRate float64
}

// NewRateMeter creates a meter with the given capacity and measurement
// window (typical: 1ms for feedback smoothing).
func NewRateMeter(capacityPerSecond float64, window Duration) *RateMeter {
	if window <= 0 {
		window = Millisecond
	}
	return &RateMeter{capacity: capacityPerSecond, window: window}
}

// Add records units of traffic at the given time.
func (m *RateMeter) Add(now Time, units float64) {
	m.roll(now)
	m.winBytes += units
}

func (m *RateMeter) roll(now Time) {
	if now-m.winStart < Time(m.window) {
		return
	}
	elapsed := Duration(now - m.winStart)
	m.lastRate = m.winBytes / elapsed.Seconds()
	m.winStart = now
	m.winBytes = 0
}

// Rate returns the most recent completed-window rate in units/second.
func (m *RateMeter) Rate(now Time) float64 {
	m.roll(now)
	return m.lastRate
}

// Utilization returns the most recent rate as a fraction of capacity,
// clamped to [0, 1].
func (m *RateMeter) Utilization(now Time) float64 {
	if m.capacity <= 0 {
		return 0
	}
	u := m.Rate(now) / m.capacity
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Capacity returns the configured capacity.
func (m *RateMeter) Capacity() float64 { return m.capacity }
