package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockAdvancesWithSleep(t *testing.T) {
	s := New(1)
	var at []Time
	s.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		at = append(at, p.Now())
		p.Sleep(5 * Millisecond)
		at = append(at, p.Now())
	})
	end := s.Run(Time(Second))
	if len(at) != 2 || at[0] != Time(10*Millisecond) || at[1] != Time(15*Millisecond) {
		t.Fatalf("wakeup times = %v", at)
	}
	if end != Time(Second) {
		t.Fatalf("end = %v, want %v", end, Time(Second))
	}
}

func TestSameTimeEventsRunFIFO(t *testing.T) {
	s := New(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Sleep(Millisecond)
			order = append(order, name)
		})
	}
	s.Run(Time(Second))
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	s := New(1)
	ran := false
	s.Spawn("late", func(p *Proc) {
		p.Sleep(2 * Second)
		ran = true
	})
	s.Run(Time(Second))
	if ran {
		t.Fatal("event past deadline executed")
	}
	if s.Now() != Time(Second) {
		t.Fatalf("now = %v", s.Now())
	}
	// Continuing past the deadline runs it.
	s.Run(Time(3 * Second))
	if !ran {
		t.Fatal("event not executed after extending deadline")
	}
}

func TestWaitQueueWakeOneIsFIFO(t *testing.T) {
	s := New(1)
	var q WaitQueue
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(Millisecond)
		for q.Len() > 0 {
			q.WakeOne(p.Sim())
			p.Sleep(Millisecond)
		}
	})
	s.Run(Time(Second))
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("order = %v", order)
	}
	if s.Live() != 0 {
		t.Fatalf("live procs = %d", s.Live())
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	s := New(1)
	r := NewResource(2)
	inUse, maxUse := 0, 0
	for i := 0; i < 6; i++ {
		s.Spawn("u", func(p *Proc) {
			r.Acquire(p)
			inUse++
			if inUse > maxUse {
				maxUse = inUse
			}
			p.Sleep(10 * Millisecond)
			inUse--
			r.Release(p.Sim())
		})
	}
	s.Run(Time(Second))
	if maxUse != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxUse)
	}
	if s.Live() != 0 {
		t.Fatalf("live procs = %d", s.Live())
	}
}

func TestResourceAcquireReportsWait(t *testing.T) {
	s := New(1)
	r := NewResource(1)
	var waited Duration
	s.Spawn("first", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(20 * Millisecond)
		r.Release(p.Sim())
	})
	s.Spawn("second", func(p *Proc) {
		p.Sleep(Millisecond)
		waited = r.Acquire(p)
		r.Release(p.Sim())
	})
	s.Run(Time(Second))
	if waited != 19*Millisecond {
		t.Fatalf("waited = %v, want 19ms", waited)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []int64 {
		s := New(42)
		var out []int64
		for i := 0; i < 5; i++ {
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(p.RNG().Int64n(int64(Millisecond))))
					out = append(out, int64(p.Now()))
				}
			})
		}
		s.Run(Time(Second))
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) || len(a) != 50 {
		t.Fatalf("trace lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	s := New(1)
	count := 0
	s.Spawn("parent", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sim().Spawn("child", func(c *Proc) {
				c.Sleep(Millisecond)
				count++
			})
			p.Sleep(Millisecond)
		}
	})
	s.Run(Time(Second))
	if count != 3 {
		t.Fatalf("children ran = %d, want 3", count)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(7)
	z := NewZipf(1000, 0.99)
	counts := make(map[int64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := z.Next(g)
		if v < 0 || v >= 1000 {
			t.Fatalf("draw out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest item should receive far more than the uniform share.
	if counts[0] < draws/100 {
		t.Fatalf("item 0 drawn %d times, expected heavy skew", counts[0])
	}
}

func TestZipfInRangeProperty(t *testing.T) {
	g := NewRNG(11)
	f := func(nRaw uint16, seed int64) bool {
		n := int64(nRaw%5000) + 1
		z := NewZipf(n, 0.8)
		for i := 0; i < 50; i++ {
			v := z.Next(g)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGHelpersWithinBounds(t *testing.T) {
	g := NewRNG(3)
	f := func(lo, span int16) bool {
		l, h := int64(lo), int64(lo)+int64(span&0x7fff)
		v := g.UniformInt(l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := g.Exp(5); v < 0 || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
		if v := g.Normal(10, 2); v < 2 || v > 18 {
			t.Fatalf("Normal clamp failed: %v", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRNG(9)
	b := a.Fork()
	c := a.Fork()
	if b.Int63() == c.Int63() {
		t.Fatal("forked streams identical on first draw")
	}
}

func TestWaitTimeout(t *testing.T) {
	s := New(1)
	var q WaitQueue
	var timedOut, wokenOut bool
	s.Spawn("sleeper", func(p *Proc) {
		timedOut = q.WaitTimeout(p, 10*Millisecond)
	})
	s.Run(Time(Second))
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if q.Len() != 0 {
		t.Fatal("timed-out waiter left in queue")
	}
	// A waiter woken before the deadline reports no timeout, and its
	// stale timeout event must not disturb a later park.
	var secondWake Time
	s.Spawn("w", func(p *Proc) {
		wokenOut = q.WaitTimeout(p, 50*Millisecond)
		p.Sleep(200 * Millisecond) // stale timeout would fire during this
		secondWake = p.Now()
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		q.WakeOne(p.Sim())
	})
	start := s.Now()
	s.Run(Time(10 * Second))
	if wokenOut {
		t.Fatal("woken waiter reported timeout")
	}
	if got := secondWake - start; got != Time(205*Millisecond) {
		t.Fatalf("stale timeout disturbed later sleep: woke after %v", Duration(got))
	}
}
