package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Self-profiling: host wall-clock phase timers around the simulator's own
// hot paths (event-loop dispatch, process execution, hardware charging,
// cache simulation). The counters are process-global and atomic so
// parallel sweeps aggregate into one report; they are written only when
// profiling is enabled and are never read by simulation code, so they
// cannot perturb simulated results — wall time flows out, never in.

var profEnabled atomic.Bool

// EnableProfiling arms the simulator's self-profiling phase timers.
func EnableProfiling() { profEnabled.Store(true) }

// DisableProfiling disarms the phase timers (accumulated totals remain;
// take ProfSnapshot deltas to scope a measurement). Benchmarks use this
// so a profiled run does not tax the rest of the suite.
func DisableProfiling() { profEnabled.Store(false) }

// Profiling reports whether phase timers are armed. Instrumented code
// guards on this so the disarmed cost is one atomic load.
func Profiling() bool { return profEnabled.Load() }

// ProfPhase accumulates wall time and entry counts for one simulator
// phase. Phases are fixed package-level variables; subsystem packages
// (hw, and through it cache) add to the ones they own.
type ProfPhase struct {
	Name   string
	wallNs atomic.Int64
	calls  atomic.Int64
}

// Add records one timed entry into the phase.
func (ph *ProfPhase) Add(wall time.Duration, calls int64) {
	ph.wallNs.Add(int64(wall))
	ph.calls.Add(calls)
}

// The simulator's profiled phases.
var (
	ProfLoop   = &ProfPhase{Name: "sim.loop"}  // event-loop scheduling overhead (heap ops, handoff)
	ProfProc   = &ProfPhase{Name: "sim.proc"}  // process execution between resume and yield
	ProfHWExec = &ProfPhase{Name: "hw.exec"}   // scheduler bookkeeping in Machine.Exec (excl. parked time)
	ProfCharge = &ProfPhase{Name: "hw.charge"} // miss charging: DRAM/QPI fluid reservations
	ProfCache  = &ProfPhase{Name: "cache.llc"} // LLC set-sampled access simulation
)

// profSimNs accumulates simulated time elapsed while profiling, the
// denominator of the wall-ms-per-sim-ms overhead ratios.
var profSimNs atomic.Int64

func profAddSim(d Duration) {
	if d > 0 {
		profSimNs.Add(int64(d))
	}
}

// ProfStat is one phase's aggregated numbers.
type ProfStat struct {
	Name   string
	WallNs int64
	Calls  int64
	SimNs  int64 // shared denominator: simulated ns covered by profiling
}

// WallPerSimMs returns host milliseconds spent in the phase per simulated
// millisecond — the overhead report's headline ratio.
func (s ProfStat) WallPerSimMs() float64 {
	if s.SimNs <= 0 {
		return 0
	}
	return float64(s.WallNs) / float64(s.SimNs)
}

// ProfSnapshot returns every phase's totals, sorted by name.
func ProfSnapshot() []ProfStat {
	simNs := profSimNs.Load()
	phases := []*ProfPhase{ProfLoop, ProfProc, ProfHWExec, ProfCharge, ProfCache}
	out := make([]ProfStat, 0, len(phases))
	for _, ph := range phases {
		out = append(out, ProfStat{Name: ph.Name, WallNs: ph.wallNs.Load(), Calls: ph.calls.Load(), SimNs: simNs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProfReport renders the per-subsystem overhead table: wall-ms spent in
// each simulator phase, entries, and wall-ms per simulated ms.
func ProfReport() string {
	stats := ProfSnapshot()
	var b strings.Builder
	var simNs int64
	if len(stats) > 0 {
		simNs = stats[0].SimNs
	}
	fmt.Fprintf(&b, "-- simulator self-profile: %.0f sim-ms covered --\n", float64(simNs)/1e6)
	fmt.Fprintf(&b, "%-12s %12s %12s %16s\n", "phase", "wall-ms", "entries", "wall-ms/sim-ms")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-12s %12.1f %12d %16.4f\n", s.Name, float64(s.WallNs)/1e6, s.Calls, s.WallPerSimMs())
	}
	return b.String()
}
