package sim

import "math"

// RNG is a deterministic random number generator with helpers for the
// distributions used by the workload generators and hardware models. It
// is a xoshiro256** generator: seeding and forking are O(1), which
// matters because the executor forks a stream per worker context.
// Because the simulation kernel serializes proc execution, draw order —
// and therefore every simulated outcome — is reproducible for a given
// seed.
type RNG struct {
	s [4]uint64
}

// splitmix64 expands a seed into stream state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG creates a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	g := &RNG{}
	x := uint64(seed)
	for i := range g.s {
		g.s[i] = splitmix64(&x)
	}
	return g
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (g *RNG) Uint64() uint64 {
	s := &g.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's state. Use it to give subsystems their own
// streams so that adding draws in one subsystem does not perturb another.
func (g *RNG) Fork() *RNG {
	return NewRNG(int64(g.Uint64()))
}

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return int64(g.Uint64() >> 1) }

// Intn returns an integer in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return int(g.Int64n(int64(n))) }

// Int64n returns an int64 in [0, n). n must be > 0.
func (g *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int64n with non-positive n")
	}
	return int64(g.Uint64() % uint64(n))
}

// Float64 returns a float in [0, 1).
func (g *RNG) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Uniform returns a float in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.Float64() }

// UniformInt returns an int64 in [lo, hi] inclusive.
func (g *RNG) UniformInt(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + g.Int64n(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	u := g.Float64()
	if u <= 0 {
		u = 1e-18
	}
	return -math.Log(1-u) * mean
}

// Normal returns a normally distributed value (Box-Muller) clamped to
// [mean-4sd, mean+4sd].
func (g *RNG) Normal(mean, sd float64) float64 {
	u1 := g.Float64()
	if u1 <= 0 {
		u1 = 1e-18
	}
	u2 := g.Float64()
	v := math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)*sd + mean
	if v < mean-4*sd {
		v = mean - 4*sd
	}
	if v > mean+4*sd {
		v = mean + 4*sd
	}
	return v
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.Float64() < p }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (g *RNG) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := g.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew theta in
// (0, 1); theta near 1 is highly skewed. It uses the standard inverse-CDF
// approximation used by YCSB-style generators.
type Zipf struct {
	n      int64
	theta  float64
	alpha  float64
	zetan  float64
	eta    float64
	zeta2  float64
	halfPw float64
}

// NewZipf builds a Zipf generator over n items with skew theta.
func NewZipf(n int64, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPw = 1 + math.Pow(0.5, theta)
	return z
}

func zeta(n int64, theta float64) float64 {
	// For large n use the integral approximation to keep construction O(1).
	if n <= 10000 {
		sum := 0.0
		for i := int64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	head := zeta(10000, theta)
	// Integral of x^-theta from 10000 to n.
	tail := (math.Pow(float64(n), 1-theta) - math.Pow(10000, 1-theta)) / (1 - theta)
	return head + tail
}

// Next draws the next value in [0, n).
func (z *Zipf) Next(g *RNG) int64 {
	u := g.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPw {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v < 0 {
		v = 0
	}
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// N returns the domain size.
func (z *Zipf) N() int64 { return z.n }
