package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFluidServerSerializesFIFO(t *testing.T) {
	s := New(1)
	f := NewFluidServer(1000) // 1000 units/s
	var done []Time
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			f.Serve(p, 500) // 0.5s each
			done = append(done, p.Now())
		})
	}
	s.Run(Time(10 * Second))
	if len(done) != 3 {
		t.Fatalf("done = %d", len(done))
	}
	for i, want := range []float64{0.5, 1.0, 1.5} {
		if got := done[i].Seconds(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("request %d done at %.3fs, want %.3fs", i, got, want)
		}
	}
}

func TestFluidServerUnlimited(t *testing.T) {
	s := New(1)
	f := NewFluidServer(0)
	var d Duration
	s.Spawn("w", func(p *Proc) {
		d = f.Serve(p, 1e12)
	})
	s.Run(Time(Second))
	if d != 0 {
		t.Fatalf("unlimited server delayed %v", d)
	}
}

func TestFluidServerRateChange(t *testing.T) {
	s := New(1)
	f := NewFluidServer(100)
	var first, second Time
	s.Spawn("w", func(p *Proc) {
		f.Serve(p, 100) // 1s at 100/s
		first = p.Now()
		f.SetRate(1000)
		f.Serve(p, 100) // 0.1s at 1000/s
		second = p.Now()
	})
	s.Run(Time(10 * Second))
	if math.Abs(first.Seconds()-1.0) > 1e-9 || math.Abs(second.Seconds()-1.1) > 1e-9 {
		t.Fatalf("times = %.3f, %.3f", first.Seconds(), second.Seconds())
	}
}

func TestFluidServerNeverExceedsRateProperty(t *testing.T) {
	g := NewRNG(5)
	f := func(nReq uint8) bool {
		s := New(1)
		rate := 1000.0
		srv := NewFluidServer(rate)
		n := int(nReq%20) + 1
		total := 0.0
		var last Time
		for i := 0; i < n; i++ {
			units := float64(g.Int64n(500) + 1)
			total += units
			s.Spawn("w", func(p *Proc) {
				srv.Serve(p, units)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		s.Run(Time(1000 * Second))
		// Completion of all work cannot beat total/rate.
		return last.Seconds() >= total/rate-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(1000, Millisecond)
	now := Time(0)
	m.Add(now, 500)
	// Rate reported once the window elapses, averaged over actual time.
	now += Time(Millisecond)
	if r := m.Rate(now); math.Abs(r-500_000) > 1 {
		t.Fatalf("rate = %f, want 500000/s", r)
	}
	if u := m.Utilization(now); u != 1 {
		t.Fatalf("utilization should clamp to 1, got %f", u)
	}
	m2 := NewRateMeter(0, Millisecond)
	if m2.Utilization(0) != 0 {
		t.Fatal("zero-capacity meter should report 0")
	}
}
