package metrics

import "repro/internal/sim"

// Per-statement attribution.
//
// The engine attaches a statement-local *Counters to the session proc
// (sim.Proc.SetAttr) before running a statement, and query workers inherit
// the coordinator's attachment at spawn. Layers that record waits or I/O —
// the lock manager, buffer pool, WAL, CPU scheduler, device — charge both
// their global counter set and, when present, the statement's, so waits
// are attributed to the owning statement the way SQL Server's
// sys.dm_exec_session_wait_stats attributes them to a session. With no
// attachment the cost is one nil interface check per charge.

// StmtOf returns the per-statement counter set attached to the proc, or
// nil when attribution is off.
func StmtOf(p *sim.Proc) *Counters {
	s, _ := p.Attr().(*Counters)
	return s
}

// ChargeWait records a wait on the global counters and on any statement
// counters attached to the proc.
func ChargeWait(p *sim.Proc, global *Counters, class WaitClass, ns sim.Duration) {
	global.AddWait(class, ns)
	if s := StmtOf(p); s != nil {
		s.AddWait(class, ns)
	}
}
