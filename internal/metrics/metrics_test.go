package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestSamplerCollectsIntervalDeltas(t *testing.T) {
	s := sim.New(1)
	ctr := &Counters{}
	smp := NewSampler(ctr)
	smp.Start(s)
	s.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			ctr.SSDReadBytes += 100e6
			ctr.Instructions += 1000
			ctr.LLCMisses += 50
			p.Sleep(sim.Second)
		}
	})
	s.Run(sim.Time(4500 * sim.Millisecond))
	smp.Stop()
	s.Run(sim.Time(10 * sim.Second))
	if len(smp.Samples) < 4 {
		t.Fatalf("samples = %d", len(smp.Samples))
	}
	bw := smp.BandwidthMBps(func(c Counters) int64 { return c.SSDReadBytes })
	for i, v := range bw[:4] {
		if math.Abs(v-100) > 1 {
			t.Fatalf("interval %d bandwidth = %.1f MB/s, want 100", i, v)
		}
	}
	d := smp.Samples[0].Delta
	if got := d.MPKI(); math.Abs(got-50) > 0.01 {
		t.Fatalf("MPKI = %f, want 50", got)
	}
}

// TestSamplerFlushesPartialTail checks that Stop mid-interval keeps the
// tail of the measurement window: the final sample carries its shorter
// duration and BandwidthMBps scales by it, so no observed bytes are lost
// and no rate is diluted.
func TestSamplerFlushesPartialTail(t *testing.T) {
	s := sim.New(1)
	ctr := &Counters{}
	smp := NewSampler(ctr)
	smp.Start(s)
	s.Spawn("load", func(p *sim.Proc) {
		p.Sleep(50 * sim.Millisecond) // offset off the sample boundaries
		for i := 0; i < 25; i++ {
			ctr.SSDReadBytes += 10e6 // steady 100 MB/s in 100ms steps
			p.Sleep(100 * sim.Millisecond)
		}
	})
	s.Run(sim.Time(2500 * sim.Millisecond))
	smp.Stop()
	s.Run(sim.Time(10 * sim.Second))

	if len(smp.Samples) != 3 {
		t.Fatalf("samples = %d, want 2 full + 1 tail", len(smp.Samples))
	}
	tail := smp.Samples[2]
	if tail.Dur != 500*sim.Millisecond {
		t.Fatalf("tail duration = %v, want 500ms", tail.Dur)
	}
	var total int64
	for _, sm := range smp.Samples {
		total += sm.Delta.SSDReadBytes
	}
	if total != 250e6 {
		t.Fatalf("bytes across samples = %d, want 250e6 (tail lost?)", total)
	}
	bw := smp.BandwidthMBps(func(c Counters) int64 { return c.SSDReadBytes })
	for i, v := range bw {
		if math.Abs(v-100) > 1 {
			t.Fatalf("interval %d = %.1f MB/s, want 100 (tail must scale by its own duration)", i, v)
		}
	}
}

func TestDistributionPercentiles(t *testing.T) {
	d := NewDistribution([]float64{5, 1, 3, 2, 4})
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Fatalf("p100 = %f", got)
	}
	if got := d.Percentile(50); got != 3 {
		t.Fatalf("p50 = %f", got)
	}
	if got := d.Mean(); got != 3 {
		t.Fatalf("mean = %f", got)
	}
	cdf := d.CDF()
	if len(cdf) != 5 || cdf[4][1] != 1.0 {
		t.Fatalf("cdf = %v", cdf)
	}
	empty := NewDistribution(nil)
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Fatal("empty distribution should return zeros")
	}
}

func TestCountersSubAndWaits(t *testing.T) {
	a := Counters{Instructions: 100, TxnCommits: 5}
	a.AddWait(WaitLock, 20)
	a.AddWait(WaitLock, -3) // ignored
	b := Counters{Instructions: 40, TxnCommits: 2}
	d := a.Sub(b)
	if d.Instructions != 60 || d.TxnCommits != 3 || d.WaitNs[WaitLock] != 20 {
		t.Fatalf("delta = %+v", d)
	}
	if WaitPageIOLatch.String() != "PAGEIOLATCH" || WaitLock.String() != "LOCK" {
		t.Fatal("wait class names wrong")
	}
}
