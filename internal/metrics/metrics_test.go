package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestSamplerCollectsIntervalDeltas(t *testing.T) {
	s := sim.New(1)
	ctr := &Counters{}
	smp := NewSampler(ctr)
	smp.Start(s)
	s.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			ctr.SSDReadBytes += 100e6
			ctr.Instructions += 1000
			ctr.LLCMisses += 50
			p.Sleep(sim.Second)
		}
	})
	s.Run(sim.Time(4500 * sim.Millisecond))
	smp.Stop()
	s.Run(sim.Time(10 * sim.Second))
	if len(smp.Samples) < 4 {
		t.Fatalf("samples = %d", len(smp.Samples))
	}
	bw := smp.BandwidthMBps(func(c Counters) int64 { return c.SSDReadBytes })
	for i, v := range bw[:4] {
		if math.Abs(v-100) > 1 {
			t.Fatalf("interval %d bandwidth = %.1f MB/s, want 100", i, v)
		}
	}
	d := smp.Samples[0].Delta
	if got := d.MPKI(); math.Abs(got-50) > 0.01 {
		t.Fatalf("MPKI = %f, want 50", got)
	}
}

func TestDistributionPercentiles(t *testing.T) {
	d := NewDistribution([]float64{5, 1, 3, 2, 4})
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Fatalf("p100 = %f", got)
	}
	if got := d.Percentile(50); got != 3 {
		t.Fatalf("p50 = %f", got)
	}
	if got := d.Mean(); got != 3 {
		t.Fatalf("mean = %f", got)
	}
	cdf := d.CDF()
	if len(cdf) != 5 || cdf[4][1] != 1.0 {
		t.Fatalf("cdf = %v", cdf)
	}
	empty := NewDistribution(nil)
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Fatal("empty distribution should return zeros")
	}
}

func TestCountersSubAndWaits(t *testing.T) {
	a := Counters{Instructions: 100, TxnCommits: 5}
	a.AddWait(WaitLock, 20)
	a.AddWait(WaitLock, -3) // ignored
	b := Counters{Instructions: 40, TxnCommits: 2}
	d := a.Sub(b)
	if d.Instructions != 60 || d.TxnCommits != 3 || d.WaitNs[WaitLock] != 20 {
		t.Fatalf("delta = %+v", d)
	}
	if WaitPageIOLatch.String() != "PAGEIOLATCH" || WaitLock.String() != "LOCK" {
		t.Fatal("wait class names wrong")
	}
}
