package metrics

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// fillCounters sets every int64 field (and every WaitNs element) to a
// distinct value of the form base+k via reflection, so tests over the
// full field set keep covering fields added later.
func fillCounters(t *testing.T, base int64) Counters {
	t.Helper()
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	n := base
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			n++
			f.SetInt(n)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				n++
				f.Index(j).SetInt(n)
			}
		default:
			t.Fatalf("Counters field %s has unhandled kind %s", v.Type().Field(i).Name, f.Kind())
		}
	}
	return c
}

// TestCountersSubCoversEveryField guards Sub's hand-written field list:
// a and b differ by exactly delta in every field, so any field Sub (or
// the add dual) forgets shows up as a zero in the difference.
func TestCountersSubCoversEveryField(t *testing.T) {
	const delta = 1000
	a := fillCounters(t, delta)
	b := fillCounters(t, 0)
	check := func(name string, got Counters, want int64) {
		v := reflect.ValueOf(got)
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			fname := v.Type().Field(i).Name
			switch f.Kind() {
			case reflect.Int64:
				if f.Int() != want {
					t.Errorf("%s misses field %s: got %d, want %d", name, fname, f.Int(), want)
				}
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					if f.Index(j).Int() != want {
						t.Errorf("%s misses %s[%d]: got %d, want %d", name, fname, j, f.Index(j).Int(), want)
					}
				}
			}
		}
	}
	check("Sub", a.Sub(b), delta)
	// add is implemented via Sub, so this also fails if either drifts.
	sum := b.add(b)
	want := fillCounters(t, 0)
	v := reflect.ValueOf(&want).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(f.Int() * 2)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(f.Index(j).Int() * 2)
			}
		}
	}
	if sum != want {
		t.Errorf("add dropped a field: got %+v, want %+v", sum, want)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should return zeros")
	}

	h.Observe(0)
	h.Observe(-5 * sim.Nanosecond) // clamps to 0
	h.Observe(1)                   // [1,2) -> bucket 1
	h.Observe(1000)                // [512,1024) -> bucket 10
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[10] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Counts[:12])
	}
	if h.N != 4 || h.SumNs != 1001 || h.MaxNs != 1000 {
		t.Fatalf("N=%d SumNs=%d MaxNs=%d", h.N, h.SumNs, h.MaxNs)
	}

	// Interpolated quantiles stay inside the containing bucket and are
	// clamped to the observed maximum.
	var one Histogram
	one.Observe(700)
	if q := one.Quantile(1); q != 700 {
		t.Fatalf("p100 = %f, want max 700", q)
	}
	if q := one.Quantile(0.5); q < 512 || q > 700 {
		t.Fatalf("p50 = %f, want within [512, 700]", q)
	}
	prev := -1.0
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.9, 0.99, 1, 2} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%f: %f < %f", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 4; i++ {
		a.Observe(1000)
	}
	for i := 0; i < 6; i++ {
		b.Observe(1e6)
	}
	a.Merge(b)
	if a.N != 10 || a.SumNs != 4*1000+6*1e6 || a.MaxNs != 1e6 {
		t.Fatalf("merged N=%d SumNs=%d MaxNs=%d", a.N, a.SumNs, a.MaxNs)
	}
	if got := a.Mean(); math.Abs(got-600400) > 1 {
		t.Fatalf("merged mean = %f", got)
	}
	if q := a.Quantile(0.99); q < 5e5 || q > 1e6 {
		t.Fatalf("merged p99 = %f, want in the slow mode", q)
	}
	if q := a.Quantile(0.2); q > 1024 {
		t.Fatalf("merged p20 = %f, want in the fast mode", q)
	}
}

func TestQueryStatsRecordAndSnapshot(t *testing.T) {
	qs := NewQueryStats()
	stmt := &Counters{Spills: 2, BufferHits: 10}
	stmt.WaitNs[WaitLock] = 500

	qs.Record("b.Q2", Exec{Elapsed: 2 * sim.Millisecond, Rows: 7, Stmt: stmt})
	qs.Record("a.Q1", Exec{Elapsed: sim.Millisecond, Rows: 3, Failed: true, Killed: true, Degraded: true})
	qs.Record("b.Q2", Exec{Elapsed: 4 * sim.Millisecond, Rows: 1, Stmt: stmt})
	qs.AddRetry("b.Q2")
	qs.Record("", Exec{}) // empty labels are dropped, not stored

	rows := qs.Snapshot()
	if len(rows) != 2 || rows[0].Query != "a.Q1" || rows[1].Query != "b.Q2" {
		t.Fatalf("snapshot order wrong: %+v", rows)
	}
	a, b := rows[0], rows[1]
	if a.Executions != 1 || a.Errors != 1 || a.Kills != 1 || a.Degraded != 1 || a.Rows != 3 {
		t.Fatalf("a.Q1 row = %+v", a)
	}
	if b.Executions != 2 || b.Rows != 8 || b.Retries != 1 {
		t.Fatalf("b.Q2 row = %+v", b)
	}
	if b.Spills != 4 || b.WaitNs[WaitLock] != 1000 || b.Counters.BufferHits != 20 {
		t.Fatalf("b.Q2 attribution = spills %d, lockwait %d, bufhits %d",
			b.Spills, b.WaitNs[WaitLock], b.Counters.BufferHits)
	}
	if b.TotalNs != int64(6*sim.Millisecond) || b.MaxNs != int64(4*sim.Millisecond) || b.Hist.N != 2 {
		t.Fatalf("b.Q2 timing = %+v", b)
	}

	// Snapshot is a copy: mutating it must not leak back into the store.
	rows[1].Executions = 999
	if qs.Snapshot()[1].Executions != 2 {
		t.Fatal("snapshot aliases store state")
	}

	// nil store is inert everywhere the engine calls it.
	var nilQS *QueryStats
	nilQS.Record("x", Exec{})
	nilQS.AddRetry("x")
	if nilQS.Snapshot() != nil {
		t.Fatal("nil snapshot should be nil")
	}
}
