package metrics

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// HistBuckets is the number of log2 latency buckets: bucket i counts
// observations in [2^(i-1), 2^i) nanoseconds (bucket 0 is [0, 1)).
const HistBuckets = telemetry.HistBuckets

// Histogram is the shared log2-bucketed latency histogram; the canonical
// implementation lives in internal/telemetry so query statistics and the
// metric registry use one set of bucket/quantile math.
type Histogram = telemetry.Histogram

// QueryStatRow is one query template's cumulative execution statistics —
// the dm_exec_query_stats analogue, extended with the wait attribution
// and robustness counters this engine tracks.
type QueryStatRow struct {
	Query string // template label, e.g. "tpch.Q14" or "tpce.TradeOrder"

	Executions int64 // completed executions (each retry attempt counts)
	Errors     int64 // executions that failed (IO, deadline, canceled, abort)
	Kills      int64 // executions killed at the statement deadline
	Retries    int64 // driver-level retry attempts of this template
	Degraded   int64 // executions re-planned at lower DOP/grant

	Rows     int64 // rows returned, cumulative
	Spills   int64 // workspace spills, cumulative
	TotalNs  int64 // simulated elapsed time, cumulative
	MaxNs    int64 // slowest execution
	WaitNs   [NumWaitClasses]int64
	Hist     Histogram
	Counters Counters // full attributed counter deltas, cumulative
}

// Exec describes one finished execution for QueryStats.Record.
type Exec struct {
	Elapsed  sim.Duration
	Rows     int64
	Failed   bool
	Killed   bool
	Degraded bool
	Stmt     *Counters // statement-attributed counters (nil = none captured)
}

// QueryStats is the cumulative per-query-template statistics store. One
// store belongs to one server (and thus one simulation), so access is
// serialized by the simulation kernel and needs no locking.
type QueryStats struct {
	rows map[string]*QueryStatRow
}

// NewQueryStats creates an empty store.
func NewQueryStats() *QueryStats {
	return &QueryStats{rows: make(map[string]*QueryStatRow)}
}

func (qs *QueryStats) row(query string) *QueryStatRow {
	r := qs.rows[query]
	if r == nil {
		r = &QueryStatRow{Query: query}
		qs.rows[query] = r
	}
	return r
}

// Record folds one execution into the template's row.
func (qs *QueryStats) Record(query string, e Exec) {
	if qs == nil || query == "" {
		return
	}
	r := qs.row(query)
	r.Executions++
	if e.Failed {
		r.Errors++
	}
	if e.Killed {
		r.Kills++
	}
	if e.Degraded {
		r.Degraded++
	}
	r.Rows += e.Rows
	r.TotalNs += int64(e.Elapsed)
	if int64(e.Elapsed) > r.MaxNs {
		r.MaxNs = int64(e.Elapsed)
	}
	r.Hist.Observe(e.Elapsed)
	if e.Stmt != nil {
		r.Spills += e.Stmt.Spills
		for i, ns := range e.Stmt.WaitNs {
			r.WaitNs[i] += ns
		}
		r.Counters = r.Counters.add(*e.Stmt)
	}
}

// AddRetry counts a driver-level retry attempt of the template.
func (qs *QueryStats) AddRetry(query string) {
	if qs == nil || query == "" {
		return
	}
	qs.row(query).Retries++
}

// Snapshot returns a deep copy of every row, sorted by query label, so
// reports and exporters iterate deterministically.
func (qs *QueryStats) Snapshot() []QueryStatRow {
	if qs == nil {
		return nil
	}
	out := make([]QueryStatRow, 0, len(qs.rows))
	for _, r := range qs.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// add returns c + o field-wise (the cumulative-fold dual of Sub).
func (c Counters) add(o Counters) Counters {
	zero := Counters{}
	// c - (0 - o) computes c + o while reusing Sub's field coverage, so a
	// counter added to the struct cannot be summed here but missed there.
	return c.Sub(zero.Sub(o))
}
