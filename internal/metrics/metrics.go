// Package metrics collects the observability surface the paper reads:
// PCM-like processor counters (instructions, LLC misses, DRAM bandwidth),
// iostat-like device counters (SSD read/write bytes), and SQL-Server-DMV
// style cumulative wait statistics. A Sampler snapshots the counters at
// simulated 1-second intervals, yielding the per-interval series the
// paper's bandwidth CDFs (Figure 4) are built from.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// WaitClass identifies a wait-statistics bucket, mirroring the wait types
// in the paper's Table 3 plus the scheduler and I/O waits the engine adds.
type WaitClass int

// Wait classes.
const (
	WaitLock        WaitClass = iota // row/key lock waits (LOCK_M_*)
	WaitLatch                        // non-buffer latch waits (LATCH_*)
	WaitPageLatch                    // buffer latch, non-I/O (PAGELATCH_*)
	WaitPageIOLatch                  // buffer latch, I/O (PAGEIOLATCH_*)
	WaitResourceSem                  // query memory grant queue (RESOURCE_SEMAPHORE)
	WaitWriteLog                     // log flush (WRITELOG)
	WaitCPU                          // runnable, waiting for a scheduler
	WaitIO                           // direct I/O waits outside the buffer pool
	WaitRecovery                     // crash-recovery work (analysis/redo/undo)
	WaitReplAck                      // commit waiting on replica acknowledgements
	WaitReplApply                    // standby apply work (redo on the replica)
	NumWaitClasses
)

// String returns the SQL-Server-style name of the wait class.
func (w WaitClass) String() string {
	switch w {
	case WaitLock:
		return "LOCK"
	case WaitLatch:
		return "LATCH"
	case WaitPageLatch:
		return "PAGELATCH"
	case WaitPageIOLatch:
		return "PAGEIOLATCH"
	case WaitResourceSem:
		return "RESOURCE_SEMAPHORE"
	case WaitWriteLog:
		return "WRITELOG"
	case WaitCPU:
		return "SOS_SCHEDULER_YIELD"
	case WaitIO:
		return "IO_COMPLETION"
	case WaitRecovery:
		return "RECOVERY"
	case WaitReplAck:
		return "REPL_ACK"
	case WaitReplApply:
		return "REPL_APPLY"
	default:
		return fmt.Sprintf("WAIT(%d)", int(w))
	}
}

// Counters is the cumulative counter set. All fields only ever increase.
type Counters struct {
	Instructions int64
	Cycles       int64

	LLCAccesses int64
	LLCMisses   int64

	DRAMReadBytes  int64
	DRAMWriteBytes int64
	QPIBytes       int64

	SSDReadBytes  int64
	SSDWriteBytes int64
	SSDReadOps    int64
	SSDWriteOps   int64

	TxnCommits  int64
	TxnAborts   int64
	QueriesDone int64

	BufferHits   int64
	BufferMisses int64
	Spills       int64

	// Robustness counters: fault injection, error recovery, and graceful
	// degradation under transient resource faults.
	FaultsInjected  int64 // fault events started by the injector
	FaultIOErrors   int64 // device requests failed transiently by a fault
	IORetries       int64 // storage-layer retries of failed device reads
	TxnRetries      int64 // driver-level transaction retries (victim/IO)
	QueryRetries    int64 // driver-level analytical query retries
	DeadlineKills   int64 // statements aborted at their deadline
	DegradedPlans   int64 // queries re-planned at lower DOP/grant
	QueriesFailed   int64 // queries that returned a QueryError
	QueriesCanceled int64 // queries bailed out at server shutdown
	CpusetFallbacks int64 // core picks that fell back to core 0 (empty cpuset)

	// Crash-recovery counters (ARIES-style restart).
	Crashes             int64 // simulated crashes taken
	Recoveries          int64 // recovery passes completed
	RecoveryRedoPages   int64 // distinct pages read back during redo
	RecoveryRedoRecords int64 // durable records scanned in the redo pass
	RecoveryUndoRecords int64 // loser records undone during undo
	RecoveryCLRs        int64 // compensation records written by recovery
	RecoveryElapsedNs   int64 // simulated time spent in recovery passes
	CommitsNotDurable   int64 // commits that lost durability to stop/crash
	CrashLostTxns       int64 // in-flight txns wiped by a crash (no durable trace)
	CrashLostRecords    int64 // appended-but-unflushed records lost at crash

	// Replication / archiving counters.
	ReplShippedBatches  int64 // record batches shipped primary -> standby
	ReplShippedBytes    int64 // WAL bytes shipped over replication links
	ReplAppliedTxns     int64 // committed transactions applied on standbys
	ReplUnackedCommits  int64 // durable commits whose replica ack never arrived
	ReplLinkStalls      int64 // replication-link stall/partition fault events
	ArchivedSegments    int64 // WAL segments sealed into the archive
	ArchivedBytes       int64 // WAL bytes archived
	ArchiveSegmentsLost int64 // archived segments destroyed by fault injection
	PITRRestores        int64 // point-in-time restores completed

	WaitNs [NumWaitClasses]int64
}

// AddWait records w nanoseconds of wait time in the given class.
func (c *Counters) AddWait(class WaitClass, ns sim.Duration) {
	if ns > 0 {
		c.WaitNs[class] += int64(ns)
	}
}

// Sub returns the delta c - o.
func (c Counters) Sub(o Counters) Counters {
	d := Counters{
		Instructions:   c.Instructions - o.Instructions,
		Cycles:         c.Cycles - o.Cycles,
		LLCAccesses:    c.LLCAccesses - o.LLCAccesses,
		LLCMisses:      c.LLCMisses - o.LLCMisses,
		DRAMReadBytes:  c.DRAMReadBytes - o.DRAMReadBytes,
		DRAMWriteBytes: c.DRAMWriteBytes - o.DRAMWriteBytes,
		QPIBytes:       c.QPIBytes - o.QPIBytes,
		SSDReadBytes:   c.SSDReadBytes - o.SSDReadBytes,
		SSDWriteBytes:  c.SSDWriteBytes - o.SSDWriteBytes,
		SSDReadOps:     c.SSDReadOps - o.SSDReadOps,
		SSDWriteOps:    c.SSDWriteOps - o.SSDWriteOps,
		TxnCommits:     c.TxnCommits - o.TxnCommits,
		TxnAborts:      c.TxnAborts - o.TxnAborts,
		QueriesDone:    c.QueriesDone - o.QueriesDone,
		BufferHits:     c.BufferHits - o.BufferHits,
		BufferMisses:   c.BufferMisses - o.BufferMisses,
		Spills:         c.Spills - o.Spills,

		FaultsInjected:  c.FaultsInjected - o.FaultsInjected,
		FaultIOErrors:   c.FaultIOErrors - o.FaultIOErrors,
		IORetries:       c.IORetries - o.IORetries,
		TxnRetries:      c.TxnRetries - o.TxnRetries,
		QueryRetries:    c.QueryRetries - o.QueryRetries,
		DeadlineKills:   c.DeadlineKills - o.DeadlineKills,
		DegradedPlans:   c.DegradedPlans - o.DegradedPlans,
		QueriesFailed:   c.QueriesFailed - o.QueriesFailed,
		QueriesCanceled: c.QueriesCanceled - o.QueriesCanceled,
		CpusetFallbacks: c.CpusetFallbacks - o.CpusetFallbacks,

		Crashes:             c.Crashes - o.Crashes,
		Recoveries:          c.Recoveries - o.Recoveries,
		RecoveryRedoPages:   c.RecoveryRedoPages - o.RecoveryRedoPages,
		RecoveryRedoRecords: c.RecoveryRedoRecords - o.RecoveryRedoRecords,
		RecoveryUndoRecords: c.RecoveryUndoRecords - o.RecoveryUndoRecords,
		RecoveryCLRs:        c.RecoveryCLRs - o.RecoveryCLRs,
		RecoveryElapsedNs:   c.RecoveryElapsedNs - o.RecoveryElapsedNs,
		CommitsNotDurable:   c.CommitsNotDurable - o.CommitsNotDurable,
		CrashLostTxns:       c.CrashLostTxns - o.CrashLostTxns,
		CrashLostRecords:    c.CrashLostRecords - o.CrashLostRecords,

		ReplShippedBatches:  c.ReplShippedBatches - o.ReplShippedBatches,
		ReplShippedBytes:    c.ReplShippedBytes - o.ReplShippedBytes,
		ReplAppliedTxns:     c.ReplAppliedTxns - o.ReplAppliedTxns,
		ReplUnackedCommits:  c.ReplUnackedCommits - o.ReplUnackedCommits,
		ReplLinkStalls:      c.ReplLinkStalls - o.ReplLinkStalls,
		ArchivedSegments:    c.ArchivedSegments - o.ArchivedSegments,
		ArchivedBytes:       c.ArchivedBytes - o.ArchivedBytes,
		ArchiveSegmentsLost: c.ArchiveSegmentsLost - o.ArchiveSegmentsLost,
		PITRRestores:        c.PITRRestores - o.PITRRestores,
	}
	for i := range d.WaitNs {
		d.WaitNs[i] = c.WaitNs[i] - o.WaitNs[i]
	}
	return d
}

// MPKI returns LLC misses per thousand instructions.
func (c Counters) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.Instructions) * 1000
}

// Sample is one interval snapshot.
type Sample struct {
	At    sim.Time
	Dur   sim.Duration // interval length; the final flushed sample may be shorter
	Delta Counters     // change over the interval ending at At
}

// Sampler periodically snapshots a Counters and stores per-interval deltas.
type Sampler struct {
	C        *Counters
	Interval sim.Duration
	Samples  []Sample

	sm      *sim.Sim
	prev    Counters
	lastAt  sim.Time
	stopped bool
}

// Stop flushes the final partial interval (so short measure windows do not
// silently lose their tail) and makes the sampling proc exit at its next
// wakeup, so simulations can drain cleanly instead of leaking the sampler
// goroutine.
func (s *Sampler) Stop() {
	s.stopped = true
	s.flushTail()
}

// flushTail appends the delta accumulated since the last full sample as a
// short final sample. A tail of zero duration (Stop landing exactly on an
// interval boundary) adds nothing.
func (s *Sampler) flushTail() {
	if s.sm == nil || s.sm.Now() <= s.lastAt {
		return
	}
	now := s.sm.Now()
	cur := *s.C
	s.Samples = append(s.Samples, Sample{At: now, Dur: sim.Duration(now - s.lastAt), Delta: cur.Sub(s.prev)})
	s.prev = cur
	s.lastAt = now
}

// NewSampler creates a sampler over c with the paper's 1-second interval.
func NewSampler(c *Counters) *Sampler {
	return &Sampler{C: c, Interval: sim.Second}
}

// Start spawns the sampling proc; it runs until Stop or the simulation
// deadline.
func (s *Sampler) Start(sm *sim.Sim) {
	s.sm = sm
	s.prev = *s.C
	s.lastAt = sm.Now()
	sm.Spawn("metrics-sampler", func(p *sim.Proc) {
		for !s.stopped {
			p.Sleep(s.Interval)
			if s.stopped {
				// Stop already flushed the tail; sampling past it would
				// fold post-measurement drain activity into the series.
				break
			}
			cur := *s.C
			s.Samples = append(s.Samples, Sample{At: p.Now(), Dur: s.Interval, Delta: cur.Sub(s.prev)})
			s.prev = cur
			s.lastAt = p.Now()
		}
	})
}

// Series extracts one per-interval value from every sample.
func (s *Sampler) Series(f func(Counters) float64) []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = f(sm.Delta)
	}
	return out
}

// BandwidthMBps converts per-interval byte deltas into MB/s using each
// sample's own duration (the flushed tail may be shorter than Interval).
func (s *Sampler) BandwidthMBps(bytes func(Counters) int64) []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		secs := sm.Dur.Seconds()
		if secs <= 0 {
			secs = s.Interval.Seconds()
		}
		out[i] = float64(bytes(sm.Delta)) / 1e6 / secs
	}
	return out
}

// Distribution summarizes a sample series for CDF plots (Figure 4).
type Distribution struct {
	Sorted []float64
}

// NewDistribution copies and sorts values.
func NewDistribution(values []float64) Distribution {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return Distribution{Sorted: s}
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation, or 0 for an empty distribution. The math is shared with
// the telemetry series summaries.
func (d Distribution) Percentile(p float64) float64 {
	return telemetry.PercentileSorted(d.Sorted, p)
}

// Mean returns the arithmetic mean, or 0 for an empty distribution.
func (d Distribution) Mean() float64 { return telemetry.MeanOf(d.Sorted) }

// CDF returns (value, cumulative fraction) points suitable for plotting.
func (d Distribution) CDF() [][2]float64 {
	n := len(d.Sorted)
	out := make([][2]float64, n)
	for i, v := range d.Sorted {
		out[i] = [2]float64{v, float64(i+1) / float64(n)}
	}
	return out
}
