// Package hw models the paper's test machine: a dual-socket Xeon E5-2620
// v4 (Broadwell) with 8 physical cores and 20 MB LLC per socket, SMT-2
// ("hyper-threading"), DDR4 memory channels, a QPI inter-socket link, and
// turbo frequency scaling.
//
// Simulated database workers charge work to the machine in three
// currencies:
//
//   - instructions, executed on a logical core (Exec) — subject to SMT
//     sibling interference and turbo frequency;
//   - memory touches (TouchSeq / TouchRandom / TouchStrided) — filtered
//     through the socket's simulated LLC; misses consume DRAM and QPI
//     bandwidth and convert to stall time, amortized by the access
//     pattern's memory-level parallelism;
//   - I/O, which lives in package iodev and is charged separately.
package hw

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Spec describes a machine. The zero value is not usable; start from
// PaperSpec and override fields for ablations.
type Spec struct {
	Sockets       int
	PhysPerSocket int
	SMT           int // logical threads per physical core

	NominalGHz float64
	TurboGHz   float64

	LLC cache.Config // per socket

	DRAMGBps float64 // achievable per-socket DRAM bandwidth
	QPIGBps  float64 // inter-socket link bandwidth

	// Microarchitectural cost model.
	BaseCPI       float64 // cycles per instruction with no LLC misses
	LLCMissNs     float64 // local memory latency per LLC miss
	RemoteExtraNs float64 // additional latency for a remote-socket miss

	// SMT interference: when both hyperthreads of a physical core are
	// busy, each runs at share = HTShareBase + HTShareStall*stallFraction
	// of the core's single-thread issue rate, and its CPI is inflated by
	// HTCPIPenalty (private-cache pressure). Stall-heavy workloads
	// overlap well (combined throughput up to ~1.7x); compute-bound ones
	// are a net LOSS (2 x 0.50 / 1.15 ≈ 0.87x) — the paper's finding
	// that hyper-threading degrades in-memory analytical workloads.
	HTShareBase  float64
	HTShareStall float64
	HTCPIPenalty float64
}

// PaperSpec returns the paper's Lenovo ThinkStation P710 configuration.
// DRAM bandwidth: the paper notes only one third of the channels are
// populated, so achievable bandwidth is well under the 68.3 GB/s peak.
func PaperSpec() Spec {
	return Spec{
		Sockets:       2,
		PhysPerSocket: 8,
		SMT:           2,
		NominalGHz:    2.1,
		TurboGHz:      3.0,
		LLC:           cache.PaperLLC(),
		DRAMGBps:      20.0,
		QPIGBps:       32.0,
		BaseCPI:       0.70,
		LLCMissNs:     85,
		RemoteExtraNs: 60,
		HTShareBase:   0.50,
		HTShareStall:  0.38,
		HTCPIPenalty:  1.15,
	}
}

// LogicalCores returns the number of logical cores.
func (s Spec) LogicalCores() int { return s.Sockets * s.PhysPerSocket * s.SMT }

// PhysCores returns the number of physical cores.
func (s Spec) PhysCores() int { return s.Sockets * s.PhysPerSocket }

// Core is one logical core.
type Core struct {
	ID     int
	Socket int
	Phys   int // global physical core index
	Thread int // SMT thread index on the physical core

	slot *sim.Resource // one runnable worker at a time (an SQLOS scheduler)
}

// Machine is a simulated machine instance bound to one simulation.
type Machine struct {
	Spec Spec
	Ctr  *metrics.Counters

	sm    *sim.Sim
	cores []*Core

	physBusy     []int // running bursts per physical core
	socketActive []int // physical cores with >=1 busy thread, per socket

	llcs []*cache.LLC
	dram []*sim.FluidServer
	qpi  *sim.FluidServer

	remoteFrac float64 // fraction of misses homed on the remote socket

	nextRegion uint64
}

// New creates a machine on the given simulation.
func New(sm *sim.Sim, spec Spec, ctr *metrics.Counters) *Machine {
	m := &Machine{
		Spec:         spec,
		Ctr:          ctr,
		sm:           sm,
		physBusy:     make([]int, spec.PhysCores()),
		socketActive: make([]int, spec.Sockets),
		qpi:          sim.NewFluidServer(spec.QPIGBps * 1e9),
		nextRegion:   1 << 30,
	}
	for i := 0; i < spec.Sockets; i++ {
		m.llcs = append(m.llcs, cache.New(spec.LLC))
		m.dram = append(m.dram, sim.NewFluidServer(spec.DRAMGBps*1e9))
	}
	for id := 0; id < spec.LogicalCores(); id++ {
		sock, phys, thr := m.Locate(id)
		m.cores = append(m.cores, &Core{
			ID:     id,
			Socket: sock,
			Phys:   sock*spec.PhysPerSocket + phys,
			Thread: thr,
			slot:   sim.NewResource(1),
		})
	}
	return m
}

// Locate maps a logical core ID to (socket, physical-core-in-socket,
// thread). IDs follow the paper's allocation order: 0–7 are socket 0's
// first hyperthreads, 8–15 socket 1's, 16–31 are the second hyperthreads
// in the same order — so "the first n cores" reproduces the paper's
// allocation policy for every n.
func (m *Machine) Locate(id int) (socket, phys, thread int) {
	perThread := m.Spec.PhysCores()
	thread = id / perThread
	rem := id % perThread
	socket = rem / m.Spec.PhysPerSocket
	phys = rem % m.Spec.PhysPerSocket
	return
}

// Core returns the logical core with the given ID.
func (m *Machine) Core(id int) *Core { return m.cores[id] }

// LLC returns the given socket's cache (for CAT mask programming).
func (m *Machine) LLC(socket int) *cache.LLC { return m.llcs[socket] }

// SetCATMask programs the same CAT way mask on every socket, as the paper
// does (allocations divided equally between sockets).
func (m *Machine) SetCATMask(mask uint64) {
	for _, c := range m.llcs {
		c.SetWayMask(mask)
	}
}

// CATMaskForMB returns the contiguous low mask whose total allocation
// across sockets is totalMB (e.g. 4 MB => 2 ways => mask 0b11 on each of
// 2 sockets with 1 MB ways).
func (m *Machine) CATMaskForMB(totalMB int) uint64 {
	wayMB := m.llcs[0].WayBytes() >> 20
	perSocket := int64(totalMB) / int64(m.Spec.Sockets) / wayMB
	if perSocket < 1 {
		perSocket = 1
	}
	if perSocket > int64(m.Spec.LLC.Ways) {
		perSocket = int64(m.Spec.LLC.Ways)
	}
	return (uint64(1) << uint(perSocket)) - 1
}

// FlushCaches empties all LLCs (the paper's reboot between sweeps).
func (m *Machine) FlushCaches() {
	for _, c := range m.llcs {
		c.Flush()
	}
}

// SetRemoteFraction sets the fraction of LLC misses served by the remote
// socket. The engine sets 0 when all allocated cores are on one socket
// (memory is allocated locally) and 0.5 when the allocation spans sockets
// (interleaved allocation).
func (m *Machine) SetRemoteFraction(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	m.remoteFrac = f
}

// ReserveRegion allocates a synthetic physical address range of the given
// nominal size, used to give tables and indexes distinct cache identities.
func (m *Machine) ReserveRegion(bytes int64) uint64 {
	base := m.nextRegion
	sz := uint64(bytes)
	const align = 1 << 20
	sz = (sz + align - 1) / align * align
	m.nextRegion += sz + align
	return base
}

// freq returns the current effective frequency in GHz for a socket, using
// a linear turbo droop from TurboGHz (one active core) to NominalGHz (all
// physical cores active).
func (m *Machine) freq(socket int) float64 {
	active := m.socketActive[socket]
	if active < 1 {
		active = 1
	}
	n := m.Spec.PhysPerSocket
	if n <= 1 {
		return m.Spec.TurboGHz
	}
	frac := float64(active-1) / float64(n-1)
	return m.Spec.TurboGHz - (m.Spec.TurboGHz-m.Spec.NominalGHz)*frac
}

// Exec runs a CPU burst of instr instructions with stallNs of memory
// stall time on the given logical core, blocking p for the burst's
// duration (including any wait for the core's run slot). stallNs should
// come from the Touch methods' returned stall estimates.
func (m *Machine) Exec(p *sim.Proc, coreID int, instr int64, stallNs float64) {
	if instr <= 0 && stallNs <= 0 {
		return
	}
	core := m.cores[coreID]
	wait := core.slot.Acquire(p)
	metrics.ChargeWait(p, m.Ctr, metrics.WaitCPU, wait)

	// Self-profile the scheduler bookkeeping on both sides of the burst
	// sleep; parked time (slot wait, the burst itself) is never counted,
	// so the phase measures pure simulator overhead.
	prof := sim.Profiling()
	var t0 time.Time
	if prof {
		t0 = time.Now()
	}

	siblingBusy := m.physBusy[core.Phys] > 0
	m.physBusy[core.Phys]++
	if m.physBusy[core.Phys] == 1 {
		m.socketActive[core.Socket]++
	}

	freq := m.freq(core.Socket)
	cpi := m.Spec.BaseCPI
	share := 1.0
	if siblingBusy {
		total := float64(instr)*cpi/freq + stallNs
		stallFrac := 0.0
		if total > 0 {
			stallFrac = stallNs / total
		}
		share = m.Spec.HTShareBase + m.Spec.HTShareStall*stallFrac
		cpi *= m.Spec.HTCPIPenalty
	}
	instrNs := float64(instr) * cpi / (freq * share)
	dur := sim.Duration(instrNs + stallNs)

	cycles := int64(float64(instr)*cpi + stallNs*freq)
	m.Ctr.Instructions += instr
	m.Ctr.Cycles += cycles
	if s := metrics.StmtOf(p); s != nil {
		s.Instructions += instr
		s.Cycles += cycles
	}

	if prof {
		sim.ProfHWExec.Add(time.Since(t0), 1)
	}
	p.Sleep(dur)
	if prof {
		t0 = time.Now()
	}

	m.physBusy[core.Phys]--
	if m.physBusy[core.Phys] == 0 {
		m.socketActive[core.Socket]--
	}
	core.slot.Release(p.Sim())
	if prof {
		sim.ProfHWExec.Add(time.Since(t0), 0)
	}
}

// RunQueueDepth returns the number of procs parked waiting for any
// logical core's run slot — the scheduler's instantaneous run-queue
// depth, summed across cores.
func (m *Machine) RunQueueDepth() int {
	n := 0
	for _, c := range m.cores {
		n += c.slot.Waiting()
	}
	return n
}

// BusyCores returns the number of logical cores currently executing a
// burst; with LogicalCores it yields instantaneous core occupancy.
func (m *Machine) BusyCores() int {
	n := 0
	for _, b := range m.physBusy {
		n += b
	}
	return n
}

// LogicalCores returns the machine's logical core count.
func (m *Machine) LogicalCores() int { return len(m.cores) }

// chargeMisses converts cache stats into DRAM/QPI traffic and stall time.
// mlp is the access pattern's memory-level parallelism (overlapping
// in-flight misses): sequential scans sustain high MLP, dependent pointer
// chases ~1.
func (m *Machine) chargeMisses(socket int, st cache.Stats, mlp float64) float64 {
	if sim.Profiling() {
		t0 := time.Now()
		defer func() { sim.ProfCharge.Add(time.Since(t0), 1) }()
	}
	if mlp < 1 {
		mlp = 1
	}
	readBytes := st.Misses * cache.LineBytes
	writeBytes := st.Writebacks * cache.LineBytes
	m.Ctr.LLCAccesses += st.Accesses
	m.Ctr.LLCMisses += st.Misses
	m.Ctr.DRAMReadBytes += readBytes
	m.Ctr.DRAMWriteBytes += writeBytes

	now := m.sm.Now()
	total := float64(readBytes + writeBytes)
	// Bandwidth queueing: the reservation beyond this batch's own transfer
	// time is time spent behind other traffic.
	own := sim.Duration(0)
	if m.dram[socket].Rate() > 0 {
		own = sim.Duration(total / m.dram[socket].Rate() * float64(sim.Second))
	}
	qd := m.dram[socket].Reserve(now, total)
	queueNs := float64(qd - own)
	if queueNs < 0 {
		queueNs = 0
	}

	remoteBytes := total * m.remoteFrac
	if remoteBytes > 0 {
		m.Ctr.QPIBytes += int64(remoteBytes)
		qq := m.qpi.Reserve(now, remoteBytes)
		qown := sim.Duration(remoteBytes / m.qpi.Rate() * float64(sim.Second))
		extra := float64(qq - qown)
		if extra > 0 {
			queueNs += extra
		}
	}

	lat := m.Spec.LLCMissNs + m.remoteFrac*m.Spec.RemoteExtraNs
	return float64(st.Misses)*lat/mlp + queueNs
}

// TouchSeq charges a sequential touch of bytes at base through the
// socket's LLC, returning the stall time in ns to fold into Exec.
func (m *Machine) TouchSeq(coreID int, base uint64, bytes int64, write bool, mlp float64) float64 {
	core := m.cores[coreID]
	st := m.timedAccess(core.Socket, func(l *cache.LLC) cache.Stats {
		return l.Sequential(base, bytes, write)
	})
	return m.chargeMisses(core.Socket, st, mlp)
}

// timedAccess runs one LLC access batch, accruing its wall time to the
// cache.llc self-profile phase when profiling is armed.
func (m *Machine) timedAccess(socket int, fn func(*cache.LLC) cache.Stats) cache.Stats {
	if !sim.Profiling() {
		return fn(m.llcs[socket])
	}
	t0 := time.Now()
	st := fn(m.llcs[socket])
	sim.ProfCache.Add(time.Since(t0), 1)
	return st
}

// TouchStrided charges count accesses of stride strideBytes from base.
func (m *Machine) TouchStrided(coreID int, base uint64, count, strideBytes int64, write bool, mlp float64) float64 {
	core := m.cores[coreID]
	st := m.timedAccess(core.Socket, func(l *cache.LLC) cache.Stats {
		return l.Strided(base, count, strideBytes, write)
	})
	return m.chargeMisses(core.Socket, st, mlp)
}

// TouchRandom charges count randomly-positioned accesses over a region.
// posFn returns positions in [0,1); pass rng.Float64 for uniform access
// or a Zipf-backed function for skewed access.
func (m *Machine) TouchRandom(coreID int, base uint64, regionBytes, count int64, write bool, mlp float64, posFn func() float64) float64 {
	core := m.cores[coreID]
	st := m.timedAccess(core.Socket, func(l *cache.LLC) cache.Stats {
		return l.Random(base, regionBytes, count, write, posFn)
	})
	return m.chargeMisses(core.Socket, st, mlp)
}

// String summarizes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%d sockets x %d cores x SMT-%d @ %.1f-%.1f GHz, %d MB LLC/socket, %.0f GB/s DRAM/socket",
		m.Spec.Sockets, m.Spec.PhysPerSocket, m.Spec.SMT,
		m.Spec.NominalGHz, m.Spec.TurboGHz,
		m.Spec.LLC.SizeBytes>>20, m.Spec.DRAMGBps)
}
