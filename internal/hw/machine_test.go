package hw

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func newMachine() (*sim.Sim, *Machine, *metrics.Counters) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	m := New(s, PaperSpec(), ctr)
	return s, m, ctr
}

func TestLocateFollowsPaperAllocationOrder(t *testing.T) {
	_, m, _ := newMachine()
	// 0..7: socket 0 thread 0; 8..15: socket 1 thread 0; 16..: thread 1.
	cases := []struct{ id, socket, phys, thread int }{
		{0, 0, 0, 0}, {7, 0, 7, 0}, {8, 1, 0, 0}, {15, 1, 7, 0},
		{16, 0, 0, 1}, {24, 1, 0, 1}, {31, 1, 7, 1},
	}
	for _, c := range cases {
		s, ph, th := m.Locate(c.id)
		if s != c.socket || ph != c.phys || th != c.thread {
			t.Errorf("Locate(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.id, s, ph, th, c.socket, c.phys, c.thread)
		}
	}
	// Core 0 and core 16 share a physical core.
	if m.Core(0).Phys != m.Core(16).Phys {
		t.Error("core 0 and 16 should be SMT siblings")
	}
	if m.Core(7).Phys == m.Core(8).Phys {
		t.Error("core 7 and 8 should be on different sockets")
	}
}

func TestExecSingleThreadTurboSpeed(t *testing.T) {
	s, m, _ := newMachine()
	var dur sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		m.Exec(p, 0, 3_000_000_000, 0) // 3G instructions
		dur = p.Now() - start
	})
	s.Run(sim.Time(10 * sim.Second))
	// 3G instr * 0.7 CPI / 3.0 GHz = 0.7 s.
	want := 0.7
	if got := dur.Seconds(); math.Abs(got-want) > 0.01 {
		t.Fatalf("single-thread exec took %.3fs, want %.3fs", got, want)
	}
}

func TestSMTSiblingsInterfere(t *testing.T) {
	elapsed := func(core1, core2 int) float64 {
		s, m, _ := newMachine()
		var maxEnd sim.Time
		for _, c := range []int{core1, core2} {
			c := c
			s.Spawn("w", func(p *sim.Proc) {
				m.Exec(p, c, 2_000_000_000, 0)
				if p.Now() > maxEnd {
					maxEnd = p.Now()
				}
			})
		}
		s.Run(sim.Time(100 * sim.Second))
		return maxEnd.Seconds()
	}
	separate := elapsed(0, 1)  // two physical cores
	siblings := elapsed(0, 16) // SMT pair
	if siblings < separate*1.6 {
		t.Fatalf("SMT siblings %.3fs vs separate cores %.3fs: expected strong interference", siblings, separate)
	}
	// Compute-bound SMT is modelled as a net loss (the paper's HT
	// detriment), but bounded: no worse than ~2.6x.
	if siblings > separate*2.6 {
		t.Fatalf("SMT siblings %.3fs: interference implausibly strong vs %.3fs", siblings, separate)
	}
}

func TestSMTHelpsStallHeavyWork(t *testing.T) {
	// With high stall fraction, SMT pairs overlap stalls: combined
	// throughput should be much better than for compute-bound pairs.
	run := func(stallNs float64) float64 {
		s, m, _ := newMachine()
		var maxEnd sim.Time
		for _, c := range []int{0, 16} {
			c := c
			s.Spawn("w", func(p *sim.Proc) {
				m.Exec(p, c, 1_000_000_000, stallNs)
				if p.Now() > maxEnd {
					maxEnd = p.Now()
				}
			})
		}
		s.Run(sim.Time(100 * sim.Second))
		return maxEnd.Seconds()
	}
	computeBound := run(0)
	stallHeavy := run(0.5e9) // 0.5s of stalls on top of ~0.23s of compute
	// Compare against the single-thread times to get slowdown factors.
	singleCompute := 1_000_000_000 * 0.7 / 3.0 / 1e9
	singleStall := singleCompute + 0.5
	slowCompute := computeBound / singleCompute
	slowStall := stallHeavy / singleStall
	if slowStall >= slowCompute {
		t.Fatalf("stall-heavy SMT slowdown %.2f should beat compute-bound %.2f", slowStall, slowCompute)
	}
}

func TestTurboDroopWithManyCores(t *testing.T) {
	perWorker := func(n int) float64 {
		s, m, _ := newMachine()
		var last sim.Time
		for i := 0; i < n; i++ {
			core := i
			s.Spawn("w", func(p *sim.Proc) {
				m.Exec(p, core, 1_000_000_000, 0)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		s.Run(sim.Time(100 * sim.Second))
		return last.Seconds()
	}
	one := perWorker(1)
	eight := perWorker(8)
	if eight <= one*1.2 {
		t.Fatalf("8 active cores (%.3fs) should droop below turbo (1 core: %.3fs)", eight, one)
	}
	// At nominal 2.1 GHz the slowdown is bounded by 3.0/2.1.
	if eight > one*(3.0/2.1)*1.05 {
		t.Fatalf("8-core droop too strong: %.3fs vs %.3fs", eight, one)
	}
}

func TestTouchMissesCauseStallAndDRAMTraffic(t *testing.T) {
	s, m, ctr := newMachine()
	base := m.ReserveRegion(1 << 30)
	var coldStall, warmStall float64
	s.Spawn("w", func(p *sim.Proc) {
		coldStall = m.TouchSeq(0, base, 8<<20, false, 8)
		warmStall = m.TouchSeq(0, base, 8<<20, false, 8)
	})
	s.Run(sim.Time(sim.Second))
	if coldStall <= 0 {
		t.Fatal("cold touch produced no stall")
	}
	if warmStall > coldStall*0.2 {
		t.Fatalf("warm touch stall %.0fns vs cold %.0fns: cache not retaining", warmStall, coldStall)
	}
	if ctr.DRAMReadBytes == 0 || ctr.LLCMisses == 0 {
		t.Fatal("counters not charged")
	}
}

func TestSmallCATMaskIncreasesStall(t *testing.T) {
	run := func(maskMB int) float64 {
		s, m, _ := newMachine()
		m.SetCATMask(m.CATMaskForMB(maskMB))
		base := m.ReserveRegion(1 << 30)
		var stall float64
		s.Spawn("w", func(p *sim.Proc) {
			const ws = 12 << 20
			m.TouchSeq(0, base, ws, false, 8)
			for i := 0; i < 3; i++ {
				stall += m.TouchSeq(0, base, ws, false, 8)
			}
		})
		s.Run(sim.Time(sim.Second))
		return stall
	}
	small := run(2)
	large := run(40)
	if small < large*2 {
		t.Fatalf("2MB CAT stall %.0f should far exceed 40MB stall %.0f", small, large)
	}
}

func TestRemoteFractionChargesQPI(t *testing.T) {
	s, m, ctr := newMachine()
	m.SetRemoteFraction(0.5)
	base := m.ReserveRegion(1 << 30)
	s.Spawn("w", func(p *sim.Proc) {
		m.TouchSeq(0, base, 64<<20, false, 8)
	})
	s.Run(sim.Time(sim.Second))
	if ctr.QPIBytes == 0 {
		t.Fatal("remote misses should charge QPI bytes")
	}
	if ctr.QPIBytes > ctr.DRAMReadBytes+ctr.DRAMWriteBytes {
		t.Fatal("QPI bytes exceed total DRAM traffic")
	}
}

func TestCATMaskForMB(t *testing.T) {
	_, m, _ := newMachine()
	cases := []struct {
		mb   int
		want uint64
	}{
		{2, 0x1}, {4, 0x3}, {6, 0x7}, {40, 0xFFFFF}, {0, 0x1}, {100, 0xFFFFF},
	}
	for _, c := range cases {
		if got := m.CATMaskForMB(c.mb); got != c.want {
			t.Errorf("CATMaskForMB(%d) = %#x, want %#x", c.mb, got, c.want)
		}
	}
}

func TestReserveRegionDistinct(t *testing.T) {
	_, m, _ := newMachine()
	a := m.ReserveRegion(100 << 20)
	b := m.ReserveRegion(100 << 20)
	if a == b || b < a+(100<<20) {
		t.Fatalf("regions overlap: %#x %#x", a, b)
	}
}

func TestInstructionCounterAndMPKI(t *testing.T) {
	s, m, ctr := newMachine()
	base := m.ReserveRegion(1 << 30)
	s.Spawn("w", func(p *sim.Proc) {
		stall := m.TouchSeq(0, base, 32<<20, false, 8)
		m.Exec(p, 0, 1_000_000, stall)
	})
	s.Run(sim.Time(sim.Second))
	if ctr.Instructions != 1_000_000 {
		t.Fatalf("instructions = %d", ctr.Instructions)
	}
	if mpki := ctr.MPKI(); mpki <= 0 {
		t.Fatalf("MPKI = %f, want > 0", mpki)
	}
}
