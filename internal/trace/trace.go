// Package trace implements per-query span tracing on the simulated
// clock: each executed statement gets a tree of operator spans recording
// actual rows, simulated elapsed time, buffer traffic, spills, and wait
// deltas, yielding an EXPLAIN-ANALYZE-style actual-versus-estimated plan
// report — the per-operator attribution Sirin & Ailamaki perform for
// OLAP micro-architectural analysis, and the surface MAXDOP tuners (Fan
// et al.) consume. Tracing is opt-in: the executor skips all span work
// when no Trace is attached, so default runs pay nothing.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Span is one operator's execution record. Times and counter deltas are
// inclusive of the operator's children (the span covers the subtree the
// way showplan actual-stats rows do); Self* accessors subtract children.
type Span struct {
	Op       string  // operator name, e.g. "Hash Join"
	Name     string  // object label (table/index), if any
	Parallel bool    // ran with the plan's DOP
	EstRows  float64 // optimizer's nominal output-cardinality estimate
	ActRows  int64   // actual rows emitted
	NomRows  int64   // nominal rows represented (ActRows * Weight)
	Batches  int64   // column batches emitted (vectorized engine; 0 under row execution)

	Start, End sim.Time

	// Counter deltas attributed to the statement while the span was open
	// (inclusive of children): buffer traffic, spills, device I/O, waits.
	BufferHits   int64
	BufferMisses int64
	Spills       int64
	SSDReadBytes int64
	WaitNs       [metrics.NumWaitClasses]int64

	Children []*Span

	snap metrics.Counters // statement counters at Enter
}

// Elapsed returns the span's inclusive simulated duration.
func (s *Span) Elapsed() sim.Duration { return sim.Duration(s.End - s.Start) }

// SelfElapsed returns the span's duration minus its children's.
func (s *Span) SelfElapsed() sim.Duration {
	d := s.Elapsed()
	for _, c := range s.Children {
		d -= c.Elapsed()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// TotalWaitNs returns the sum across wait classes.
func (s *Span) TotalWaitNs() int64 {
	var t int64
	for _, ns := range s.WaitNs {
		t += ns
	}
	return t
}

// Trace is one statement's span tree plus its attributed counter set.
type Trace struct {
	Query string
	Stmt  *metrics.Counters // statement-attributed counters (shared with the engine)
	Root  *Span

	stack []*Span
}

// New creates a trace for the labelled statement. Stmt may be nil; span
// counter deltas are then zero and only rows/timing are recorded.
func New(query string, stmt *metrics.Counters) *Trace {
	return &Trace{Query: query, Stmt: stmt}
}

// Enter opens a span under the current innermost open span. Only the
// query coordinator walks the plan tree, so the stack needs no locking.
func (t *Trace) Enter(op, name string, parallel bool, estRows float64, now sim.Time) *Span {
	sp := &Span{Op: op, Name: name, Parallel: parallel, EstRows: estRows, Start: now}
	if t.Stmt != nil {
		sp.snap = *t.Stmt
	}
	if len(t.stack) == 0 {
		t.Root = sp
	} else {
		top := t.stack[len(t.stack)-1]
		top.Children = append(top.Children, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// Exit closes the span, recording output rows and the statement counter
// deltas accumulated while it was open.
func (t *Trace) Exit(sp *Span, actRows, nomRows int64, now sim.Time) {
	sp.ActRows = actRows
	sp.NomRows = nomRows
	sp.End = now
	if t.Stmt != nil {
		d := t.Stmt.Sub(sp.snap)
		sp.BufferHits = d.BufferHits
		sp.BufferMisses = d.BufferMisses
		sp.Spills = d.Spills
		sp.SSDReadBytes = d.SSDReadBytes
		sp.WaitNs = d.WaitNs
	}
	if len(t.stack) > 0 && t.stack[len(t.stack)-1] == sp {
		t.stack = t.stack[:len(t.stack)-1]
	}
}

// Elapsed returns the root span's duration (0 before the trace closes).
func (t *Trace) Elapsed() sim.Duration {
	if t.Root == nil {
		return 0
	}
	return t.Root.Elapsed()
}

// Render pretty-prints the actual-execution plan followed by the
// statement's wait breakdown, EXPLAIN ANALYZE style.
func (t *Trace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- actual plan: %s --\n", t.Query)
	if t.Root != nil {
		renderSpan(&b, t.Root, 0)
	}
	if t.Stmt != nil {
		b.WriteString(t.renderWaits())
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if s.Parallel {
		b.WriteString("⇉ ")
	} else {
		b.WriteString("→ ")
	}
	b.WriteString(s.Op)
	if s.Name != "" {
		fmt.Fprintf(b, " [%s]", s.Name)
	}
	fmt.Fprintf(b, " (est %.3g rows, act %d rows, %.3fms", s.EstRows, s.ActRows, s.Elapsed().Seconds()*1e3)
	if s.Batches > 0 {
		fmt.Fprintf(b, ", %d batches", s.Batches)
	}
	if s.BufferHits > 0 || s.BufferMisses > 0 {
		fmt.Fprintf(b, ", buf %d/%d hit", s.BufferHits, s.BufferHits+s.BufferMisses)
	}
	if s.Spills > 0 {
		fmt.Fprintf(b, ", spills %d", s.Spills)
	}
	if w := s.TotalWaitNs(); w > 0 {
		fmt.Fprintf(b, ", wait %.3fms", float64(w)/1e6)
	}
	b.WriteString(")\n")
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}

// renderWaits renders the statement-level wait-class breakdown.
func (t *Trace) renderWaits() string {
	var b strings.Builder
	total := int64(0)
	for _, ns := range t.Stmt.WaitNs {
		total += ns
	}
	fmt.Fprintf(&b, "-- waits: %.3fms total --\n", float64(total)/1e6)
	for c := metrics.WaitClass(0); c < metrics.NumWaitClasses; c++ {
		ns := t.Stmt.WaitNs[c]
		if ns == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-20s %10.3fms\n", c.String(), float64(ns)/1e6)
	}
	return b.String()
}
