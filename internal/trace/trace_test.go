package trace

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestSpanTreeDeltasAndTiming(t *testing.T) {
	stmt := &metrics.Counters{}
	tr := New("tpch.Q14", stmt)

	root := tr.Enter("Hash Join", "", true, 100, sim.Time(0))
	stmt.BufferHits += 5
	child := tr.Enter("Columnstore Scan", "lineitem", true, 400, sim.Time(10*sim.Millisecond))
	stmt.BufferMisses += 3
	stmt.Spills++
	stmt.SSDReadBytes += 4096
	stmt.AddWait(metrics.WaitPageIOLatch, 2*sim.Millisecond)
	tr.Exit(child, 400, 800, sim.Time(40*sim.Millisecond))
	stmt.BufferHits += 2
	tr.Exit(root, 90, 90, sim.Time(50*sim.Millisecond))

	if tr.Root != root || len(root.Children) != 1 || root.Children[0] != child {
		t.Fatal("span tree shape wrong")
	}
	if child.ActRows != 400 || child.NomRows != 800 || root.ActRows != 90 {
		t.Fatalf("rows: child act=%d nom=%d root act=%d", child.ActRows, child.NomRows, root.ActRows)
	}

	// The child sees only the deltas accumulated while it was open.
	if child.BufferHits != 0 || child.BufferMisses != 3 || child.Spills != 1 || child.SSDReadBytes != 4096 {
		t.Fatalf("child deltas = %+v", child)
	}
	if child.WaitNs[metrics.WaitPageIOLatch] != int64(2*sim.Millisecond) {
		t.Fatalf("child wait = %d", child.WaitNs[metrics.WaitPageIOLatch])
	}
	// The root is inclusive of its subtree, showplan-style.
	if root.BufferHits != 7 || root.BufferMisses != 3 || root.Spills != 1 {
		t.Fatalf("root deltas = %+v", root)
	}
	if root.TotalWaitNs() != int64(2*sim.Millisecond) {
		t.Fatalf("root wait = %d", root.TotalWaitNs())
	}

	if root.Elapsed() != 50*sim.Millisecond || child.Elapsed() != 30*sim.Millisecond {
		t.Fatalf("elapsed: root=%v child=%v", root.Elapsed(), child.Elapsed())
	}
	if root.SelfElapsed() != 20*sim.Millisecond || child.SelfElapsed() != 30*sim.Millisecond {
		t.Fatalf("self: root=%v child=%v", root.SelfElapsed(), child.SelfElapsed())
	}
	if tr.Elapsed() != 50*sim.Millisecond {
		t.Fatalf("trace elapsed = %v", tr.Elapsed())
	}

	out := tr.Render()
	for _, want := range []string{
		"actual plan: tpch.Q14",
		"Hash Join",
		"Columnstore Scan [lineitem]",
		"act 400 rows",
		"spills 1",
		"PAGEIOLATCH",
		"waits:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestNilStmtTrace: a trace without attached statement counters still
// records rows and timing, and renders without panicking.
func TestNilStmtTrace(t *testing.T) {
	tr := New("q", nil)
	sp := tr.Enter("Scan", "", false, 1, sim.Time(0))
	tr.Exit(sp, 1, 1, sim.Time(sim.Millisecond))
	if tr.Root != sp || sp.ActRows != 1 || sp.Elapsed() != sim.Millisecond {
		t.Fatalf("span = %+v", sp)
	}
	if sp.BufferHits != 0 || sp.TotalWaitNs() != 0 {
		t.Fatalf("nil-stmt span picked up deltas: %+v", sp)
	}
	if out := tr.Render(); !strings.Contains(out, "actual plan: q") {
		t.Fatalf("render: %s", out)
	}
}
