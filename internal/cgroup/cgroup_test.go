package cgroup

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func newMachine() *hw.Machine {
	s := sim.New(1)
	return hw.New(s, hw.PaperSpec(), &metrics.Counters{})
}

func TestAllowNClampsAndCounts(t *testing.T) {
	cs := NewCPUSet(newMachine())
	cs.AllowN(4)
	if cs.Count() != 4 {
		t.Fatalf("count = %d", cs.Count())
	}
	cs.AllowN(0)
	if cs.Count() != 1 {
		t.Fatalf("count after AllowN(0) = %d", cs.Count())
	}
	cs.AllowN(99)
	if cs.Count() != 32 {
		t.Fatalf("count after AllowN(99) = %d", cs.Count())
	}
}

func TestAllowRejectsBadIDs(t *testing.T) {
	cs := NewCPUSet(newMachine())
	if err := cs.Allow([]int{0, 99}); err == nil {
		t.Fatal("expected error for out-of-range core")
	}
	if err := cs.Allow(nil); err == nil {
		t.Fatal("expected error for empty set")
	}
	if err := cs.Allow([]int{3, 3, 1}); err != nil {
		t.Fatal(err)
	}
	if got := cs.Allowed(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("allowed = %v", got)
	}
}

func TestBlkIOAttachesThrottles(t *testing.T) {
	s := sim.New(1)
	d := iodev.New(iodev.PaperSSD(), &metrics.Counters{})
	b := NewBlkIO(d)
	b.SetReadLimit(50)
	var dur sim.Duration
	s.Spawn("r", func(p *sim.Proc) {
		dur = d.Read(p, 50e6)
	})
	s.Run(sim.Time(100 * sim.Second))
	if dur.Seconds() < 0.99 {
		t.Fatalf("50MB at 50MB/s took %.3fs", dur.Seconds())
	}
}
