// Package cgroup provides the resource-governance knobs the paper turns:
// a cpuset controller restricting which logical cores the database may
// schedule on, and a blkio controller imposing read/write bandwidth limits
// on the storage device (systemd's BlockIOReadBandwidth /
// BlockIOWriteBandwidth properties).
//
// The controllers do not enforce anything themselves; the engine's
// scheduler consults the cpuset, and the device consults the blkio
// throttles — exactly how Linux cgroups interpose on a real system.
package cgroup

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/iodev"
)

// CPUSet restricts the set of logical cores available to the database.
type CPUSet struct {
	machine *hw.Machine
	allowed []int
}

// NewCPUSet creates a cpuset allowing all of the machine's cores.
func NewCPUSet(m *hw.Machine) *CPUSet {
	cs := &CPUSet{machine: m}
	cs.AllowN(m.Spec.LogicalCores())
	return cs
}

// Allow sets the allowed core IDs explicitly.
func (c *CPUSet) Allow(ids []int) error {
	max := c.machine.Spec.LogicalCores()
	seen := make(map[int]bool, len(ids))
	var list []int
	for _, id := range ids {
		if id < 0 || id >= max {
			return fmt.Errorf("cgroup: core %d out of range [0,%d)", id, max)
		}
		if !seen[id] {
			seen[id] = true
			list = append(list, id)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("cgroup: empty cpuset")
	}
	sort.Ints(list)
	c.allowed = list
	c.updateTopology()
	return nil
}

// AllowN allows the first n cores in the paper's allocation order:
// socket 0's physical cores, then socket 1's, then all second
// hyperthreads. The machine's core numbering is laid out so this is
// simply cores [0, n).
func (c *CPUSet) AllowN(n int) {
	max := c.machine.Spec.LogicalCores()
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	c.allowed = ids
	c.updateTopology()
}

// updateTopology tells the machine whether the allocation spans sockets,
// which controls the remote-memory fraction of LLC misses.
func (c *CPUSet) updateTopology() {
	sockets := make(map[int]bool)
	for _, id := range c.allowed {
		s, _, _ := c.machine.Locate(id)
		sockets[s] = true
	}
	if len(sockets) > 1 {
		c.machine.SetRemoteFraction(0.5)
	} else {
		c.machine.SetRemoteFraction(0)
	}
}

// Allowed returns the allowed core IDs (sorted, do not mutate).
func (c *CPUSet) Allowed() []int { return c.allowed }

// Count returns the number of allowed cores.
func (c *CPUSet) Count() int { return len(c.allowed) }

// BlkIO carries the read and write bandwidth throttles for a device.
type BlkIO struct {
	Read  *iodev.Throttle
	Write *iodev.Throttle
}

// NewBlkIO creates an unlimited blkio controller and attaches it to dev.
func NewBlkIO(dev *iodev.Device) *BlkIO {
	b := &BlkIO{Read: iodev.NewThrottle(0), Write: iodev.NewThrottle(0)}
	dev.SetThrottles(b.Read, b.Write)
	return b
}

// SetReadLimit sets BlockIOReadBandwidth in MB/s (0 = unlimited).
func (b *BlkIO) SetReadLimit(mbps float64) { b.Read.SetLimit(mbps) }

// SetWriteLimit sets BlockIOWriteBandwidth in MB/s (0 = unlimited).
func (b *BlkIO) SetWriteLimit(mbps float64) { b.Write.SetLimit(mbps) }
