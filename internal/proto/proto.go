// Package proto defines the compact length-prefixed wire protocol the
// serving front end speaks over the simulated network: a handshake
// (Hello/HelloAck), request frames (Exec for OLTP transactions, Query
// for analytical statements), and reply frames (Result/Error). The
// encoding is deliberately tiny — a u32 length prefix, a kind byte, a
// u64 request id, and a typed payload — so frame sizes feed directly
// into the fluid link model and decoding edge cases (truncated frame,
// oversized frame, version mismatch) are enumerable and testable.
//
// Layout of one frame on the wire:
//
//	u32 length   // bytes after this field: 1 (kind) + 8 (id) + payload
//	u8  kind
//	u64 id       // request id, echoed on the reply; 0 for handshake
//	... payload  // kind-specific, see the payload types below
//
// All integers are little-endian. Strings are u16-length-prefixed.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies the protocol in the Hello frame; Version must match
// between client and server (there is exactly one version so far — the
// mismatch path exists so the handshake can reject it deterministically).
const (
	Magic   uint32 = 0x44425357 // "DBSW"
	Version uint16 = 1
)

// MaxFrameBytes bounds a frame (length-prefix value). A peer announcing
// a larger frame is faulty or hostile; the decoder rejects it before
// buffering.
const MaxFrameBytes = 1 << 20

// headerBytes is the fixed wire overhead per frame: length prefix, kind
// byte, request id.
const headerBytes = 4 + 1 + 8

// Kind discriminates frames.
type Kind uint8

// Frame kinds.
const (
	KHello    Kind = iota + 1 // client → server: handshake open
	KHelloAck                 // server → client: handshake accepted
	KExec                     // client → server: run an OLTP transaction
	KQuery                    // client → server: run an analytical query
	KResult                   // server → client: success reply
	KError                    // server → client: failure reply
	KGoodbye                  // client → server: orderly close
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KHello:
		return "hello"
	case KHelloAck:
		return "hello-ack"
	case KExec:
		return "exec"
	case KQuery:
		return "query"
	case KResult:
		return "result"
	case KError:
		return "error"
	case KGoodbye:
		return "goodbye"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Code classifies an Error frame.
type Code uint16

// Error codes.
const (
	CodeBadRequest Code = iota + 1 // malformed frame or unknown statement name
	CodeHandshake                  // magic/version mismatch
	CodeOverloaded                 // admission control shed the request
	CodeShutdown                   // server stopping; request not executed
	CodeExecFailed                 // statement ran and failed (aborted / killed)
	CodeFailover                   // primary crashed mid-session; request not committed
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeHandshake:
		return "handshake"
	case CodeOverloaded:
		return "overloaded"
	case CodeShutdown:
		return "shutdown"
	case CodeExecFailed:
		return "exec-failed"
	case CodeFailover:
		return "failover"
	default:
		return fmt.Sprintf("code(%d)", uint16(c))
	}
}

// Decode errors.
var (
	ErrTruncated = errors.New("proto: truncated frame")
	ErrTooLarge  = errors.New("proto: frame exceeds MaxFrameBytes")
	ErrBadFrame  = errors.New("proto: malformed frame")
	ErrHandshake = errors.New("proto: handshake mismatch")
)

// Frame is one decoded protocol frame.
type Frame struct {
	Kind    Kind
	ID      uint64
	Payload []byte
}

// Encode serializes the frame.
func Encode(f Frame) []byte {
	buf := make([]byte, headerBytes+len(f.Payload))
	binary.LittleEndian.PutUint32(buf, uint32(1+8+len(f.Payload)))
	buf[4] = uint8(f.Kind)
	binary.LittleEndian.PutUint64(buf[5:], f.ID)
	copy(buf[headerBytes:], f.Payload)
	return buf
}

// Decode parses one frame from the front of buf, returning the frame and
// the bytes consumed. ErrTruncated means buf holds a prefix of a valid
// frame (read more); ErrTooLarge and ErrBadFrame are terminal.
func Decode(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > MaxFrameBytes {
		return Frame{}, 0, ErrTooLarge
	}
	if n < 1+8 {
		return Frame{}, 0, ErrBadFrame
	}
	total := 4 + int(n)
	if len(buf) < total {
		return Frame{}, 0, ErrTruncated
	}
	f := Frame{
		Kind:    Kind(buf[4]),
		ID:      binary.LittleEndian.Uint64(buf[5:]),
		Payload: buf[headerBytes:total],
	}
	if f.Kind < KHello || f.Kind > KGoodbye {
		return Frame{}, 0, ErrBadFrame
	}
	return f, total, nil
}

// Hello is the handshake payload.
type Hello struct {
	Magic   uint32
	Version uint16
	Client  string // client name, for the server's accept log/telemetry
}

// EncodeHello builds the KHello frame.
func EncodeHello(h Hello) []byte {
	p := make([]byte, 0, 8+len(h.Client))
	p = binary.LittleEndian.AppendUint32(p, h.Magic)
	p = binary.LittleEndian.AppendUint16(p, h.Version)
	p = appendString(p, h.Client)
	return Encode(Frame{Kind: KHello, Payload: p})
}

// DecodeHello parses a KHello payload and validates magic/version,
// returning ErrHandshake on mismatch.
func DecodeHello(payload []byte) (Hello, error) {
	if len(payload) < 6 {
		return Hello{}, ErrBadFrame
	}
	h := Hello{
		Magic:   binary.LittleEndian.Uint32(payload),
		Version: binary.LittleEndian.Uint16(payload[4:]),
	}
	var err error
	h.Client, _, err = readString(payload[6:])
	if err != nil {
		return Hello{}, err
	}
	if h.Magic != Magic || h.Version != Version {
		return h, ErrHandshake
	}
	return h, nil
}

// Request is the Exec/Query payload: a named statement from the served
// catalog plus one argument (key, selectivity cell, …) — the serving
// layer ships statement names, not plans, the way a real wire protocol
// ships SQL text or prepared-statement ids.
type Request struct {
	Name string
	Arg  uint64
}

// EncodeRequest builds a KExec or KQuery frame.
func EncodeRequest(kind Kind, id uint64, r Request) []byte {
	p := make([]byte, 0, 10+len(r.Name))
	p = binary.LittleEndian.AppendUint64(p, r.Arg)
	p = appendString(p, r.Name)
	return Encode(Frame{Kind: kind, ID: id, Payload: p})
}

// DecodeRequest parses a KExec/KQuery payload.
func DecodeRequest(payload []byte) (Request, error) {
	if len(payload) < 8 {
		return Request{}, ErrBadFrame
	}
	r := Request{Arg: binary.LittleEndian.Uint64(payload)}
	var err error
	r.Name, _, err = readString(payload[8:])
	return r, err
}

// Result is the success payload.
type Result struct {
	Rows uint64 // rows produced (analytical) or 1 for a committed txn
}

// EncodeResult builds the KResult frame for request id.
func EncodeResult(id uint64, r Result) []byte {
	p := binary.LittleEndian.AppendUint64(nil, r.Rows)
	return Encode(Frame{Kind: KResult, ID: id, Payload: p})
}

// DecodeResult parses a KResult payload.
func DecodeResult(payload []byte) (Result, error) {
	if len(payload) < 8 {
		return Result{}, ErrBadFrame
	}
	return Result{Rows: binary.LittleEndian.Uint64(payload)}, nil
}

// EncodeError builds the KError frame for request id.
func EncodeError(id uint64, code Code, msg string) []byte {
	p := make([]byte, 0, 4+len(msg))
	p = binary.LittleEndian.AppendUint16(p, uint16(code))
	p = appendString(p, msg)
	return Encode(Frame{Kind: KError, ID: id, Payload: p})
}

// DecodeError parses a KError payload.
func DecodeError(payload []byte) (Code, string, error) {
	if len(payload) < 2 {
		return 0, "", ErrBadFrame
	}
	code := Code(binary.LittleEndian.Uint16(payload))
	msg, _, err := readString(payload[2:])
	return code, msg, err
}

// EncodeHelloAck builds the handshake acceptance.
func EncodeHelloAck() []byte { return Encode(Frame{Kind: KHelloAck}) }

// EncodeGoodbye builds the orderly-close frame.
func EncodeGoodbye() []byte { return Encode(Frame{Kind: KGoodbye}) }

func appendString(p []byte, s string) []byte {
	p = binary.LittleEndian.AppendUint16(p, uint16(len(s)))
	return append(p, s...)
}

func readString(p []byte) (string, int, error) {
	if len(p) < 2 {
		return "", 0, ErrBadFrame
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+n {
		return "", 0, ErrBadFrame
	}
	return string(p[2 : 2+n]), 2 + n, nil
}
