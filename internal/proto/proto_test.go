package proto

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Kind: KHello},
		{Kind: KHelloAck, ID: 0},
		{Kind: KExec, ID: 7, Payload: []byte("payload")},
		{Kind: KQuery, ID: 1 << 40, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: KResult, ID: 3, Payload: nil},
		{Kind: KGoodbye},
	} {
		buf := Encode(f)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d", f.Kind, n, len(buf))
		}
		if got.Kind != f.Kind || got.ID != f.ID || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("%v: round trip mismatch: %+v", f.Kind, got)
		}
	}
}

func TestDecodeFromStreamConsumesExactly(t *testing.T) {
	// Two frames back to back with trailing garbage: Decode must consume
	// exactly one frame at a time.
	buf := append(Encode(Frame{Kind: KExec, ID: 1, Payload: []byte("a")}),
		Encode(Frame{Kind: KResult, ID: 1, Payload: []byte("bbbb")})...)
	buf = append(buf, 0xFF, 0xFF) // stream residue (start of a next length)
	f1, n1, err := Decode(buf)
	if err != nil || f1.Kind != KExec {
		t.Fatalf("first: %v %v", f1, err)
	}
	f2, n2, err := Decode(buf[n1:])
	if err != nil || f2.Kind != KResult {
		t.Fatalf("second: %v %v", f2, err)
	}
	if _, _, err := Decode(buf[n1+n2:]); err != ErrTruncated {
		t.Fatalf("residue: err = %v, want ErrTruncated", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(Frame{Kind: KQuery, ID: 9, Payload: []byte("select")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut]); err != ErrTruncated {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeOversized(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	if _, _, err := Decode(hdr[:]); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// Exactly at the cap is accepted (given enough bytes follow).
	big := Encode(Frame{Kind: KExec, Payload: make([]byte, MaxFrameBytes-9)})
	if _, _, err := Decode(big); err != nil {
		t.Fatalf("at-cap frame rejected: %v", err)
	}
}

func TestDecodeBadFrame(t *testing.T) {
	// Length too small to hold kind+id.
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:], 4)
	if _, _, err := Decode(hdr[:]); err != ErrBadFrame {
		t.Fatalf("short length: err = %v, want ErrBadFrame", err)
	}
	// Unknown kind byte.
	buf := Encode(Frame{Kind: KExec, ID: 1})
	buf[4] = 0xEE
	if _, _, err := Decode(buf); err != ErrBadFrame {
		t.Fatalf("bad kind: err = %v, want ErrBadFrame", err)
	}
}

func TestHandshakeRoundTripAndMismatch(t *testing.T) {
	buf := EncodeHello(Hello{Magic: Magic, Version: Version, Client: "openloop-7"})
	f, _, err := Decode(buf)
	if err != nil || f.Kind != KHello {
		t.Fatalf("decode: %v %v", f, err)
	}
	h, err := DecodeHello(f.Payload)
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	if h.Client != "openloop-7" {
		t.Fatalf("client = %q", h.Client)
	}

	for _, bad := range []Hello{
		{Magic: Magic + 1, Version: Version},
		{Magic: Magic, Version: Version + 1},
	} {
		f, _, _ := Decode(EncodeHello(bad))
		if _, err := DecodeHello(f.Payload); err != ErrHandshake {
			t.Fatalf("%+v: err = %v, want ErrHandshake", bad, err)
		}
	}
}

func TestRequestResultErrorRoundTrip(t *testing.T) {
	f, _, _ := Decode(EncodeRequest(KExec, 12, Request{Name: "asdb.PointRead", Arg: 99}))
	r, err := DecodeRequest(f.Payload)
	if err != nil || r.Name != "asdb.PointRead" || r.Arg != 99 || f.ID != 12 {
		t.Fatalf("request: %+v %v", r, err)
	}
	f, _, _ = Decode(EncodeResult(12, Result{Rows: 451}))
	res, err := DecodeResult(f.Payload)
	if err != nil || res.Rows != 451 {
		t.Fatalf("result: %+v %v", res, err)
	}
	f, _, _ = Decode(EncodeError(12, CodeOverloaded, "run queue full"))
	code, msg, err := DecodeError(f.Payload)
	if err != nil || code != CodeOverloaded || msg != "run queue full" {
		t.Fatalf("error: %v %q %v", code, msg, err)
	}
}

// TestDecodeNeverPanicsOnRandomBytes is a seeded pseudo-fuzz pass: the
// decoder must classify arbitrary byte soup as one of its typed errors
// (or decode a valid frame) without panicking or over-reading.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	g := sim.NewRNG(1234)
	for trial := 0; trial < 20000; trial++ {
		n := int(g.Int64n(64))
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(g.Int64n(256))
		}
		f, consumed, err := Decode(buf)
		if err == nil {
			if consumed > len(buf) {
				t.Fatalf("consumed %d > len %d", consumed, len(buf))
			}
			if f.Kind < KHello || f.Kind > KGoodbye {
				t.Fatalf("accepted bad kind %d", f.Kind)
			}
			// Payload decoders must not panic either.
			_, _ = DecodeRequest(f.Payload)
			_, _ = DecodeResult(f.Payload)
			_, _, _ = DecodeError(f.Payload)
			_, _ = DecodeHello(f.Payload)
		}
	}
}

func FuzzDecode(f *testing.F) {
	f.Add(Encode(Frame{Kind: KExec, ID: 5, Payload: []byte("seed")}))
	f.Add(EncodeHello(Hello{Magic: Magic, Version: Version, Client: "fuzz"}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, consumed, err := Decode(data)
		if err == nil {
			if consumed > len(data) {
				t.Fatalf("consumed %d > len %d", consumed, len(data))
			}
			_, _ = DecodeRequest(fr.Payload)
			_, _ = DecodeResult(fr.Payload)
			_, _, _ = DecodeError(fr.Payload)
			_, _ = DecodeHello(fr.Payload)
		}
	})
}
