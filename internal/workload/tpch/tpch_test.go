package tpch

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// tinyServer builds an SF-1 dataset at very low density for fast tests.
func tinyServer(t *testing.T, seed int64) (*engine.Server, *Dataset) {
	t.Helper()
	d := Build(Config{SF: 1, ActualLineitemPerSF: 300, Seed: seed})
	srv := engine.NewServer(engine.Config{Seed: seed})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	return srv, d
}

func TestDatasetShape(t *testing.T) {
	d := Build(Config{SF: 1, ActualLineitemPerSF: 600})
	if d.L.ActualRows() != 600 {
		t.Fatalf("lineitem actual = %d", d.L.ActualRows())
	}
	if d.L.NominalRows() != 6_000_000 {
		t.Fatalf("lineitem nominal = %d", d.L.NominalRows())
	}
	if d.K != 10000 {
		t.Fatalf("K = %d", d.K)
	}
	// Proportional tables share K.
	for _, tb := range []int64{d.O.K, d.PS.K, d.P.K, d.S.K, d.C.K} {
		if tb != d.K {
			t.Fatalf("inconsistent K: %d vs %d", tb, d.K)
		}
	}
	if d.N.ActualRows() != 25 || d.R.ActualRows() != 5 {
		t.Fatal("nation/region wrong")
	}
	// Table 2 ballpark: SF-1 TPC-H is ~1 GB raw; the clustered
	// columnstore stores it compressed (paper ratio ~0.4).
	data := d.DB.DataBytes()
	if data < 250<<20 || data > 800<<20 {
		t.Fatalf("SF1 nominal data bytes = %d MB", data>>20)
	}
}

func TestAllQueriesExecuteSerialAndParallel(t *testing.T) {
	for qn := 1; qn <= NumQueries; qn++ {
		srv, d := tinyServer(t, int64(qn))
		g := sim.NewRNG(99)
		el := QueryTiming(srv, d, qn, 1, 0, g)
		if el <= 0 {
			t.Fatalf("Q%d serial produced no elapsed time", qn)
		}
		srv.Stop()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(10*sim.Second))

		srv2, d2 := tinyServer(t, int64(qn))
		g2 := sim.NewRNG(99)
		el2 := QueryTiming(srv2, d2, qn, 32, 0, g2)
		if el2 <= 0 {
			t.Fatalf("Q%d parallel produced no elapsed time", qn)
		}
		srv2.Stop()
		srv2.Sim.Run(srv2.Sim.Now() + sim.Time(10*sim.Second))
	}
}

func TestQueryResultsDeterministic(t *testing.T) {
	run := func() []int64 {
		srv, d := tinyServer(t, 7)
		g := sim.NewRNG(5)
		var out []int64
		srv.Sim.Spawn("q", func(p *sim.Proc) {
			res := srv.Open(p).Query(d.Query(1, g), engine.QueryOptions{})
			for _, r := range res.Rows {
				out = append(out, r...)
			}
		})
		srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
		srv.Stop()
		return out
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverges at %d", i)
		}
	}
}

func TestStreamsMakeProgress(t *testing.T) {
	srv, d := tinyServer(t, 11)
	var st StreamStats
	until := sim.Time(30 * sim.Second)
	RunStreams(srv, d, 3, until, &st)
	srv.Sim.Run(until)
	srv.Stop()
	srv.Sim.Run(until + sim.Time(600*sim.Second))
	if st.QueriesDone < 6 {
		t.Fatalf("streams completed only %d queries", st.QueriesDone)
	}
	if srv.Ctr.QueriesDone != int64(st.QueriesDone) {
		t.Fatalf("counter mismatch: %d vs %d", srv.Ctr.QueriesDone, st.QueriesDone)
	}
}

func TestQ20PlanFlip(t *testing.T) {
	// Figure 7: at SF 300 the optimizer must use a hash join for the
	// part/partsupp access in the serial plan but flip to a parallel
	// index nested loops at MAXDOP 32; at SF 10 the plan shape must not
	// change with MAXDOP.
	build := func(sf int) (*engine.Server, *Dataset) {
		d := Build(Config{SF: sf, ActualLineitemPerSF: 80, Seed: 1})
		srv := engine.NewServer(engine.Config{Seed: 1})
		srv.AttachDB(d.DB)
		return srv, d
	}
	srv, d := build(300)
	g := sim.NewRNG(1)
	q := d.Query(20, g)
	serialPlan, _ := srv.ExplainQuery(q, 1)
	parPlan, _ := srv.ExplainQuery(q, 32)
	if !strings.Contains(serialPlan.Shape(), "HJ(CScan,CScan)") {
		t.Errorf("SF300 serial plan should hash-join partsupp: %s", serialPlan.Shape())
	}
	if !strings.Contains(parPlan.Shape(), "pNL(pCScan)") {
		t.Errorf("SF300 parallel plan should use index NL: %s", parPlan.Shape())
	}
	srv.Stop()

	srv10, d10 := build(10)
	g10 := sim.NewRNG(1)
	q10 := d10.Query(20, g10)
	s10, _ := srv10.ExplainQuery(q10, 1)
	p10, _ := srv10.ExplainQuery(q10, 32)
	strip := func(s string) string { return strings.ReplaceAll(s, "p", "") }
	if strip(s10.Shape()) != strip(p10.Shape()) {
		t.Errorf("SF10 plan shape should be MAXDOP-stable: %s vs %s", s10.Shape(), p10.Shape())
	}
	srv10.Stop()
}
