// Package tpch implements a TPC-H-like decision-support workload: the
// 8-table schema, a seeded data generator following the spec's
// distributions, all 22 query templates expressed as logical plans, and
// stream drivers. Per the paper's DW configuration (Table 1), every table
// carries a columnstore index; B-tree primary keys are kept for key
// access so the optimizer can choose index nested loops (the Figure 7
// plan shapes).
//
// Scale mapping: paper scale factor SF implies the spec's nominal row
// counts (lineitem = 6,000,000 x SF, ...). Generated ("actual") rows are
// proportional — lineitem gets SF x ActualLineitemPerSF rows — so every
// proportional table shares one replication factor K and join weights
// stay consistent. Tiny tables (nation, region) generate at K = 1.
package tpch

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config selects a scale factor and down-scaling density.
type Config struct {
	SF                  int
	ActualLineitemPerSF int // generated lineitem rows per SF unit (default 600)
	Seed                int64
}

// Dates: day numbers since 1992-01-01; the spec's data spans 7 years.
const (
	DateLo = 0
	DateHi = 7 * 365
)

// Date returns the day number of year y (1992-1998), month m, day d
// (approximate months of 30.4 days; resolution is irrelevant to plan
// behaviour).
func Date(y, m, d int64) int64 {
	return (y-1992)*365 + (m-1)*30 + (d - 1)
}

// Dataset is a generated TPC-H database plus the handles queries need.
type Dataset struct {
	Cfg Config
	DB  *engine.Database

	L, O, PS, P, S, C, N, R *storage.Table

	PKOrders, PKPart, PKSupplier, PKCustomer, PKPartsupp *access.BTIndex

	// LStats carries lineitem histograms (shipdate, discount, quantity)
	// so range-heavy queries estimate selectivity from statistics rather
	// than author hints.
	LStats *opt.TableStats

	// K is the shared replication factor of the proportional tables.
	K int64

	rng *sim.RNG
}

var (
	colors = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
		"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
		"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green",
		"grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender",
		"lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium",
		"metallic", "midnight", "mint", "misty", "moccasin", "navajo", "navy",
		"olive", "orange", "orchid", "pale", "papaya", "peach", "peru", "pink",
		"plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal",
		"saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke",
		"snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
		"violet", "wheat", "white", "yellow"}
	typeSyl1  = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2  = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3  = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	segments  = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	modes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	prios     = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	nations   = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
		"ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ",
		"JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES"}
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	// nationRegion maps each nation to its region per the spec.
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	commentWords = []string{"carefully", "quickly", "furiously", "special",
		"requests", "packages", "accounts", "deposits", "instructions",
		"theodolites", "pending", "ironic", "regular", "express", "bold", "final"}
)

// Build generates the dataset.
func Build(cfg Config) *Dataset {
	if cfg.ActualLineitemPerSF <= 0 {
		cfg.ActualLineitemPerSF = 600
	}
	if cfg.SF <= 0 {
		cfg.SF = 1
	}
	d := &Dataset{Cfg: cfg, rng: sim.NewRNG(cfg.Seed + int64(cfg.SF)*7919)}
	db := engine.NewDatabase(fmt.Sprintf("tpch-sf%d", cfg.SF))
	d.DB = db

	sf := int64(cfg.SF)
	aL := sf * int64(cfg.ActualLineitemPerSF)
	// Nominal counts per the spec.
	nomL := sf * 6_000_000
	d.K = nomL / aL

	propRows := func(nominal int64) int64 {
		a := nominal / d.K
		if a < 1 {
			a = 1
		}
		return a
	}

	aO := propRows(sf * 1_500_000)
	aPS := propRows(sf * 800_000)
	aP := propRows(sf * 200_000)
	aS := propRows(sf * 10_000)
	aC := propRows(sf * 150_000)

	d.buildRegionNation(db)
	d.buildSupplier(db, aS)
	d.buildPart(db, aP)
	d.buildPartsupp(db, aPS, aP, aS)
	d.buildCustomer(db, aC)
	d.buildOrders(db, aO, aC)
	d.buildLineitem(db, aL, aO, aP, aS)

	// DW configuration: clustered columnstore on every table (Table 1,
	// "fully columnar formats"), B-tree PKs retained for key access.
	for _, t := range []*storage.Table{d.L, d.O, d.PS, d.P, d.S, d.C, d.N, d.R} {
		db.AddCSI(t)
		db.MarkCCI(t)
	}
	d.PKOrders = db.AddBTIndex("pk_orders", d.O, []string{"o_orderkey"}, true, true)
	d.PKPart = db.AddBTIndex("pk_part", d.P, []string{"p_partkey"}, true, true)
	d.PKSupplier = db.AddBTIndex("pk_supplier", d.S, []string{"s_suppkey"}, true, true)
	d.PKCustomer = db.AddBTIndex("pk_customer", d.C, []string{"c_custkey"}, true, true)
	d.PKPartsupp = db.AddBTIndex("pk_partsupp", d.PS, []string{"ps_partkey", "ps_suppkey"}, true, true)

	d.LStats = opt.CollectStats(d.L, []int{
		d.L.Schema.Col("l_shipdate"), d.L.Schema.Col("l_discount"), d.L.Schema.Col("l_quantity"),
	}, 64)
	return d
}

func (d *Dataset) buildRegionNation(db *engine.Database) {
	d.R = db.AddTable(storage.NewSchema("region",
		storage.Column{Name: "r_regionkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "r_name", Type: storage.TStr, Width: 25},
	), 1)
	rp := d.R.Pool(1)
	for i, r := range regions {
		d.R.AppendLoad([]int64{int64(i), rp.Code(r)})
	}
	d.N = db.AddTable(storage.NewSchema("nation",
		storage.Column{Name: "n_nationkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "n_name", Type: storage.TStr, Width: 25},
		storage.Column{Name: "n_regionkey", Type: storage.TInt, Width: 4},
	), 1)
	np := d.N.Pool(1)
	for i, n := range nations {
		d.N.AppendLoad([]int64{int64(i), np.Code(n), nationRegion[i]})
	}
}

func (d *Dataset) comment(pool *storage.StrPool) int64 {
	w := func() string { return commentWords[d.rng.Intn(len(commentWords))] }
	return pool.Code(w() + " " + w() + " " + w())
}

func (d *Dataset) buildSupplier(db *engine.Database, n int64) {
	d.S = db.AddTable(storage.NewSchema("supplier",
		storage.Column{Name: "s_suppkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "s_name", Type: storage.TStr, Width: 25},
		storage.Column{Name: "s_address", Type: storage.TStr, Width: 40},
		storage.Column{Name: "s_nationkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "s_phone", Type: storage.TStr, Width: 15},
		storage.Column{Name: "s_acctbal", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "s_comment", Type: storage.TStr, Width: 101},
	), d.K)
	name, addr, phone, com := d.S.Pool(1), d.S.Pool(2), d.S.Pool(4), d.S.Pool(6)
	for i := int64(0); i < n; i++ {
		d.S.AppendLoad([]int64{
			i,
			name.Code(fmt.Sprintf("Supplier#%09d", i)),
			addr.Code(fmt.Sprintf("addr-%d", i%997)),
			d.rng.Int64n(25),
			phone.Code(fmt.Sprintf("%02d-%03d", i%25+10, i%1000)),
			d.rng.Int64n(1100000) - 100000, // -999.99..9999.99 in cents
			d.comment(com),
		})
	}
}

func (d *Dataset) buildPart(db *engine.Database, n int64) {
	d.P = db.AddTable(storage.NewSchema("part",
		storage.Column{Name: "p_partkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "p_name", Type: storage.TStr, Width: 55},
		storage.Column{Name: "p_mfgr", Type: storage.TStr, Width: 25},
		storage.Column{Name: "p_brand", Type: storage.TStr, Width: 10},
		storage.Column{Name: "p_type", Type: storage.TStr, Width: 25},
		storage.Column{Name: "p_size", Type: storage.TInt, Width: 4},
		storage.Column{Name: "p_container", Type: storage.TStr, Width: 10},
		storage.Column{Name: "p_retailprice", Type: storage.TDecimal, Width: 8},
	), d.K)
	name, mfgr, brand, typ, cont := d.P.Pool(1), d.P.Pool(2), d.P.Pool(3), d.P.Pool(4), d.P.Pool(6)
	for i := int64(0); i < n; i++ {
		c1 := colors[d.rng.Intn(len(colors))]
		c2 := colors[d.rng.Intn(len(colors))]
		m := d.rng.Int64n(5) + 1
		b := m*10 + d.rng.Int64n(5) + 1
		d.P.AppendLoad([]int64{
			i,
			name.Code(c1 + " " + c2),
			mfgr.Code(fmt.Sprintf("Manufacturer#%d", m)),
			brand.Code(fmt.Sprintf("Brand#%d", b)),
			typ.Code(typeSyl1[d.rng.Intn(6)] + " " + typeSyl2[d.rng.Intn(5)] + " " + typeSyl3[d.rng.Intn(5)]),
			d.rng.Int64n(50) + 1,
			cont.Code(fmt.Sprintf("%s %s",
				[]string{"SM", "MED", "LG", "JUMBO", "WRAP"}[d.rng.Intn(5)],
				[]string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}[d.rng.Intn(8)])),
			90000 + i%200000 + d.rng.Int64n(10000),
		})
	}
}

func (d *Dataset) buildPartsupp(db *engine.Database, n, nPart, nSupp int64) {
	d.PS = db.AddTable(storage.NewSchema("partsupp",
		storage.Column{Name: "ps_partkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "ps_suppkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "ps_availqty", Type: storage.TInt, Width: 4},
		storage.Column{Name: "ps_supplycost", Type: storage.TDecimal, Width: 8},
	), d.K)
	for i := int64(0); i < n; i++ {
		d.PS.AppendLoad([]int64{
			i % nPart,
			(i + i/nPart) % nSupp,
			d.rng.Int64n(9999) + 1,
			d.rng.Int64n(100000) + 100,
		})
	}
}

func (d *Dataset) buildCustomer(db *engine.Database, n int64) {
	d.C = db.AddTable(storage.NewSchema("customer",
		storage.Column{Name: "c_custkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "c_name", Type: storage.TStr, Width: 25},
		storage.Column{Name: "c_address", Type: storage.TStr, Width: 40},
		storage.Column{Name: "c_nationkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "c_phone", Type: storage.TStr, Width: 15},
		storage.Column{Name: "c_acctbal", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "c_mktsegment", Type: storage.TStr, Width: 10},
		storage.Column{Name: "c_comment", Type: storage.TStr, Width: 117},
	), d.K)
	name, addr, phone, seg, com := d.C.Pool(1), d.C.Pool(2), d.C.Pool(4), d.C.Pool(6), d.C.Pool(7)
	for i := int64(0); i < n; i++ {
		nat := d.rng.Int64n(25)
		d.C.AppendLoad([]int64{
			i,
			name.Code(fmt.Sprintf("Customer#%09d", i)),
			addr.Code(fmt.Sprintf("caddr-%d", i%997)),
			nat,
			phone.Code(fmt.Sprintf("%02d-%03d", nat+10, i%1000)),
			d.rng.Int64n(1100000) - 100000,
			seg.Code(segments[d.rng.Intn(5)]),
			d.comment(com),
		})
	}
}

func (d *Dataset) buildOrders(db *engine.Database, n, nCust int64) {
	d.O = db.AddTable(storage.NewSchema("orders",
		storage.Column{Name: "o_orderkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "o_custkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "o_orderstatus", Type: storage.TInt, Width: 1},
		storage.Column{Name: "o_totalprice", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "o_orderdate", Type: storage.TDate, Width: 4},
		storage.Column{Name: "o_orderpriority", Type: storage.TStr, Width: 15},
		storage.Column{Name: "o_shippriority", Type: storage.TInt, Width: 4},
		storage.Column{Name: "o_comment", Type: storage.TStr, Width: 79},
	), d.K)
	prio, com := d.O.Pool(5), d.O.Pool(7)
	for i := int64(0); i < n; i++ {
		// A third of customers place no orders (spec); skew to the rest.
		cust := d.rng.Int64n(nCust*2/3+1) * 3 / 2
		if cust >= nCust {
			cust = nCust - 1
		}
		d.O.AppendLoad([]int64{
			i,
			cust,
			d.rng.Int64n(3), // F/O/P
			100000 + d.rng.Int64n(50000000),
			d.rng.Int64n(DateHi - 151), // leave room for ship/receipt
			prio.Code(prios[d.rng.Intn(5)]),
			0,
			d.comment(com),
		})
	}
}

func (d *Dataset) buildLineitem(db *engine.Database, n, nOrd, nPart, nSupp int64) {
	d.L = db.AddTable(storage.NewSchema("lineitem",
		storage.Column{Name: "l_orderkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "l_partkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "l_suppkey", Type: storage.TInt, Width: 4},
		storage.Column{Name: "l_linenumber", Type: storage.TInt, Width: 4},
		storage.Column{Name: "l_quantity", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "l_extendedprice", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "l_discount", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "l_tax", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "l_returnflag", Type: storage.TInt, Width: 1},
		storage.Column{Name: "l_linestatus", Type: storage.TInt, Width: 1},
		storage.Column{Name: "l_shipdate", Type: storage.TDate, Width: 4},
		storage.Column{Name: "l_commitdate", Type: storage.TDate, Width: 4},
		storage.Column{Name: "l_receiptdate", Type: storage.TDate, Width: 4},
		storage.Column{Name: "l_shipinstruct", Type: storage.TStr, Width: 25},
		storage.Column{Name: "l_shipmode", Type: storage.TStr, Width: 10},
	), d.K)
	instr, mode := d.L.Pool(13), d.L.Pool(14)
	orderDates := d.O.Col(4)
	for i := int64(0); i < n; i++ {
		ord := i % nOrd // ~4 lines per order, clustered by order
		odate := orderDates[ord]
		ship := odate + 1 + d.rng.Int64n(121)
		qty := d.rng.Int64n(50) + 1
		price := (90000 + d.rng.Int64n(110000)) * qty / 100
		rf := int64(2) // N
		if ship <= Date(1995, 6, 17) {
			rf = d.rng.Int64n(2) // R or A for shipped-by-cutoff
		}
		ls := int64(0) // O
		if ship <= Date(1995, 6, 17) {
			ls = 1 // F
		}
		d.L.AppendLoad([]int64{
			ord,
			d.rng.Int64n(nPart),
			d.rng.Int64n(nSupp),
			i % 7,
			qty * 100,
			price,
			d.rng.Int64n(11), // discount 0.00..0.10 in hundredths
			d.rng.Int64n(9),  // tax
			rf,
			ls,
			ship,
			odate + 1 + d.rng.Int64n(121),
			ship + 1 + d.rng.Int64n(30),
			instr.Code(instructs[d.rng.Intn(4)]),
			mode.Code(modes[d.rng.Intn(7)]),
		})
	}
}
