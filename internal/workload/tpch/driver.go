package tpch

import (
	"repro/internal/engine"
	"repro/internal/sim"
)

// StreamStats reports one throughput run.
type StreamStats struct {
	QueriesDone int
	Elapsed     sim.Duration
}

// QPS returns queries per second.
func (s StreamStats) QPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.QueriesDone) / s.Elapsed.Seconds()
}

// RunStreams drives `streams` concurrent query streams, each running the
// 22 queries in an independent random order repeatedly, until the
// simulation reaches `until`. Call after srv.Start; the caller advances
// the simulation clock.
func RunStreams(srv *engine.Server, d *Dataset, streams int, until sim.Time, done *StreamStats) {
	for i := 0; i < streams; i++ {
		srv.Sim.Spawn("tpch-stream", func(p *sim.Proc) {
			sess := srv.Open(p)
			defer sess.Close()
			g := srv.Sim.RNG().Fork()
			for !srv.Stopped() {
				for _, qi := range g.Perm(NumQueries) {
					if srv.Stopped() || p.Now() >= until {
						return
					}
					// Passing g arms the session's bounded retry with
					// backoff for deadline/IO failures; shutdown
					// cancellation is terminal.
					res := sess.Query(d.Query(qi+1, g), engine.QueryOptions{G: g})
					if res.Err == nil {
						done.QueriesDone++
					}
					done.Elapsed = sim.Duration(p.Now())
				}
			}
		})
	}
}

// QueryTiming runs a single query once and returns its elapsed time
// (Section 7 / Section 8 single-stream experiments).
func QueryTiming(srv *engine.Server, d *Dataset, qn, maxdop int, grantPct float64, g *sim.RNG) sim.Duration {
	var elapsed sim.Duration
	done := false
	srv.Sim.Spawn("tpch-single", func(p *sim.Proc) {
		sess := srv.Open(p)
		defer sess.Close()
		res := sess.Query(d.Query(qn, g), engine.QueryOptions{MaxDOP: maxdop, GrantPct: grantPct})
		elapsed = res.Elapsed
		done = true
	})
	// Advance in bounded hops: background procs (sampler, checkpointer)
	// generate events forever, so an unbounded Run would never return.
	for hop := 0; hop < 10000 && !done; hop++ {
		srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
	}
	return elapsed
}
