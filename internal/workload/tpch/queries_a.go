package tpch

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sim"
)

// Query returns the n-th TPC-H query template (1..22) with parameters
// drawn from g, as a logical plan ready for the optimizer. Each template
// preserves the published query's operator structure — join graph,
// aggregation, ordering — with predicates compiled against the generated
// data. DESIGN.md documents per-query simplifications.
func (d *Dataset) Query(n int, g *sim.RNG) *opt.LNode {
	q := d.query(n, g)
	q.Label = fmt.Sprintf("tpch.Q%d", n)
	return q
}

func (d *Dataset) query(n int, g *sim.RNG) *opt.LNode {
	switch n {
	case 1:
		return d.q1(g)
	case 2:
		return d.q2(g)
	case 3:
		return d.q3(g)
	case 4:
		return d.q4(g)
	case 5:
		return d.q5(g)
	case 6:
		return d.q6(g)
	case 7:
		return d.q7(g)
	case 8:
		return d.q8(g)
	case 9:
		return d.q9(g)
	case 10:
		return d.q10(g)
	case 11:
		return d.q11(g)
	case 12:
		return d.q12(g)
	case 13:
		return d.q13(g)
	case 14:
		return d.q14(g)
	case 15:
		return d.q15(g)
	case 16:
		return d.q16(g)
	case 17:
		return d.q17(g)
	case 18:
		return d.q18(g)
	case 19:
		return d.q19(g)
	case 20:
		return d.q20(g)
	case 21:
		return d.q21(g)
	case 22:
		return d.q22(g)
	default:
		panic("tpch: query number out of range")
	}
}

// NumQueries is the size of the query set.
const NumQueries = 22

// nomL etc. give nominal cardinalities for hints.
func (d *Dataset) nomL() float64  { return float64(d.L.NominalRows()) }
func (d *Dataset) nomO() float64  { return float64(d.O.NominalRows()) }
func (d *Dataset) nomPS() float64 { return float64(d.PS.NominalRows()) }
func (d *Dataset) nomP() float64  { return float64(d.P.NominalRows()) }
func (d *Dataset) nomS() float64  { return float64(d.S.NominalRows()) }
func (d *Dataset) nomC() float64  { return float64(d.C.NominalRows()) }

// nationCode returns the dictionary code of a nation name.
func (d *Dataset) nationCode(name string) int64 {
	c, _ := d.N.Pool(1).Lookup(name)
	return c
}

// Q1: pricing summary report. Scan ~97% of lineitem, compute derived
// prices, aggregate into a handful of (returnflag, linestatus) groups.
func (d *Dataset) q1(g *sim.RNG) *opt.LNode {
	delta := 60 + g.Int64n(61)
	cut := Date(1998, 12, 1) - delta
	sd := d.L.Schema.Col("l_shipdate")
	// Scan layout: 0=qty, 1=price, 2=disc, 3=tax, 4=rf, 5=ls.
	b := d.scan(d.L,
		[]string{"l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus"},
		func(r exec.Row) bool { return r[sd] <= cut }, 1, []string{"l_shipdate"},
		0.97).
		proj(
			colE("l_returnflag"), colE("l_linestatus"), colE("l_quantity"),
			colE("l_extendedprice"), colE("l_discount"),
			calc("disc_price", func(r exec.Row) int64 { return r[1] * (100 - r[2]) / 100 }),
			calc("charge", func(r exec.Row) int64 { return r[1] * (100 - r[2]) * (100 + r[3]) / 10000 }),
		)
	return b.groupBy(
		[]string{"l_returnflag", "l_linestatus"},
		[]aggSpec{
			sum("sum_qty", "l_quantity"), sum("sum_base_price", "l_extendedprice"),
			sum("sum_disc_price", "disc_price"), sum("sum_charge", "charge"),
			avg("avg_qty", "l_quantity"), avg("avg_price", "l_extendedprice"),
			avg("avg_disc", "l_discount"), cnt("count_order"),
		}, 6, 1).
		orderBy("l_returnflag", "l_linestatus").node
}

// Q2: minimum-cost supplier. Part filtered by size and type suffix joins
// partsupp, supplier, nation (region-restricted); the correlated min
// subquery becomes a group-by + rejoin.
func (d *Dataset) q2(g *sim.RNG) *opt.LNode {
	size := g.Int64n(50) + 1
	syl3 := typeSyl3[g.Intn(len(typeSyl3))]
	region := g.Int64n(5)
	pSize := d.P.Schema.Col("p_size")
	pType := d.P.Schema.Col("p_type")
	typeSet := d.P.Pool(pType).Match(func(s string) bool { return strings.HasSuffix(s, syl3) })
	nReg := d.N.Schema.Col("n_regionkey")

	part := d.scan(d.P, []string{"p_partkey", "p_mfgr"},
		func(r exec.Row) bool { return r[pSize] == size && typeSet[r[pType]] },
		2, []string{"p_size", "p_type"}, 1.0/50/5)
	ps := d.scan(d.PS, []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}, nil, 0, nil, 1)
	nat := d.scan(d.N, []string{"n_nationkey", "n_name"},
		func(r exec.Row) bool { return r[nReg] == region }, 1, []string{"n_regionkey"}, 0.2)
	sup := d.scan(d.S, []string{"s_suppkey", "s_name", "s_acctbal", "s_nationkey"}, nil, 0, nil, 1)

	a := ps.joinFK(part, "ps_partkey", "p_partkey", d.PKPart).
		joinFK(sup, "ps_suppkey", "s_suppkey", d.PKSupplier).
		join(nat, []string{"s_nationkey"}, []string{"n_nationkey"})
	mins := a.groupBy([]string{"ps_partkey"}, []aggSpec{mn("min_cost", "ps_supplycost")},
		d.nomP()/250, d.K)
	final := a.join(mins, []string{"ps_partkey", "ps_supplycost"}, []string{"ps_partkey", "min_cost"})
	return final.top(100, []string{"s_acctbal", "n_name", "s_name"}, []bool{true, false, false}).node
}

// Q3: shipping priority. Orders before a date join segment customers,
// then unshipped lineitems; top 10 revenue.
func (d *Dataset) q3(g *sim.RNG) *opt.LNode {
	seg := d.C.Pool(d.C.Schema.Col("c_mktsegment")).MatchPrefix(segments[g.Intn(5)])
	day := Date(1995, 3, 1) + g.Int64n(31)
	cSeg := d.C.Schema.Col("c_mktsegment")
	oDate := d.O.Schema.Col("o_orderdate")
	lShip := d.L.Schema.Col("l_shipdate")

	cust := d.scan(d.C, []string{"c_custkey"},
		func(r exec.Row) bool { return seg[r[cSeg]] }, 1, []string{"c_mktsegment"}, 0.2)
	ord := d.scan(d.O, []string{"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
		func(r exec.Row) bool { return r[oDate] < day }, 1, []string{"o_orderdate"},
		float64(day)/float64(DateHi))
	li := d.scan(d.L, []string{"l_orderkey", "l_extendedprice", "l_discount"},
		func(r exec.Row) bool { return r[lShip] > day }, 1, []string{"l_shipdate"},
		1-float64(day)/float64(DateHi))

	j := li.join(ord.semi(cust, []string{"o_custkey"}, []string{"c_custkey"}),
		[]string{"l_orderkey"}, []string{"o_orderkey"}).
		proj(colE("l_orderkey"), colE("o_orderdate"), colE("o_shippriority"),
			calc("rev", func(r exec.Row) int64 {
				return r[1] * (100 - r[2]) / 100
			}))
	agg := j.groupBy([]string{"l_orderkey", "o_orderdate", "o_shippriority"},
		[]aggSpec{sum("revenue", "rev")}, d.nomO()/10, d.K)
	return agg.top(10, []string{"revenue", "o_orderdate"}, []bool{true, false}).node
}

// Q4: order priority checking. Quarter of orders semi-joined with late
// lineitems, counted by priority.
func (d *Dataset) q4(g *sim.RNG) *opt.LNode {
	lo := Date(1993, 1, 1) + g.Int64n(58)*30
	hi := lo + 90
	oDate := d.O.Schema.Col("o_orderdate")
	lCommit := d.L.Schema.Col("l_commitdate")
	lReceipt := d.L.Schema.Col("l_receiptdate")

	ord := d.scan(d.O, []string{"o_orderkey", "o_orderpriority"},
		func(r exec.Row) bool { return r[oDate] >= lo && r[oDate] < hi },
		1, []string{"o_orderdate"}, 90.0/float64(DateHi))
	late := d.scan(d.L, []string{"l_orderkey"},
		func(r exec.Row) bool { return r[lCommit] < r[lReceipt] },
		1, []string{"l_commitdate", "l_receiptdate"}, 0.5)
	return ord.semi(late, []string{"o_orderkey"}, []string{"l_orderkey"}).
		groupBy([]string{"o_orderpriority"}, []aggSpec{cnt("order_count")}, 5, 1).
		orderBy("o_orderpriority").node
}

// Q5: local supplier volume. Six-way join restricted to one region and
// one year, requiring customer and supplier in the same nation.
func (d *Dataset) q5(g *sim.RNG) *opt.LNode {
	region := g.Int64n(5)
	yr := 1993 + g.Int64n(5)
	lo, hi := Date(yr, 1, 1), Date(yr+1, 1, 1)
	oDate := d.O.Schema.Col("o_orderdate")
	nReg := d.N.Schema.Col("n_regionkey")

	li := d.scan(d.L, []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}, nil, 0, nil, 1)
	ord := d.scan(d.O, []string{"o_orderkey", "o_custkey"},
		func(r exec.Row) bool { return r[oDate] >= lo && r[oDate] < hi },
		1, []string{"o_orderdate"}, 365.0/float64(DateHi))
	cust := d.scan(d.C, []string{"c_custkey", "c_nationkey"}, nil, 0, nil, 1)
	sup := d.scan(d.S, []string{"s_suppkey", "s_nationkey"}, nil, 0, nil, 1)
	nat := d.scan(d.N, []string{"n_nationkey", "n_name"},
		func(r exec.Row) bool { return r[nReg] == region }, 1, []string{"n_regionkey"}, 0.2)

	bb := li.joinFK(ord, "l_orderkey", "o_orderkey", d.PKOrders).
		joinFK(cust, "o_custkey", "c_custkey", d.PKCustomer).
		joinFK(sup, "l_suppkey", "s_suppkey", d.PKSupplier)
	cNat, sNat := bb.pos("c_nationkey"), bb.pos("s_nationkey")
	bb = bb.filter("same_nation", 1.0/25, 1, func(r exec.Row) bool { return r[cNat] == r[sNat] })
	bb = bb.join(nat, []string{"s_nationkey"}, []string{"n_nationkey"})
	ep, disc := bb.pos("l_extendedprice"), bb.pos("l_discount")
	bb = bb.proj(colE("n_name"), calc("rev", func(r exec.Row) int64 {
		return r[ep] * (100 - r[disc]) / 100
	}))
	return bb.groupBy([]string{"n_name"}, []aggSpec{sum("revenue", "rev")}, 5, 1).
		orderByDesc([]string{"revenue"}, []bool{true}).node
}

// Q6: forecasting revenue change. Pure scan-and-aggregate with tight
// range predicates.
func (d *Dataset) q6(g *sim.RNG) *opt.LNode {
	yr := 1993 + g.Int64n(5)
	lo, hi := Date(yr, 1, 1), Date(yr+1, 1, 1)
	disc := g.Int64n(8) + 2 // 0.02..0.09 in hundredths
	qty := 24 + g.Int64n(2)
	sd := d.L.Schema.Col("l_shipdate")
	ld := d.L.Schema.Col("l_discount")
	lq := d.L.Schema.Col("l_quantity")
	b := d.scan(d.L, []string{"l_extendedprice", "l_discount"},
		func(r exec.Row) bool {
			return r[sd] >= lo && r[sd] < hi &&
				r[ld] >= disc-1 && r[ld] <= disc+1 && r[lq] < qty*100
		}, 3, []string{"l_shipdate", "l_discount", "l_quantity"}, 0)
	// Selectivity comes from the lineitem histograms, as a real optimizer
	// would estimate this three-way conjunctive range.
	b.node.Stats = d.LStats
	b.node.PredRanges = []opt.ColRange{
		{Col: sd, Lo: lo, Hi: hi - 1},
		{Col: ld, Lo: disc - 1, Hi: disc + 1},
		{Col: lq, Lo: 0, Hi: qty*100 - 1},
	}
	b = b.proj(calc("rev", func(r exec.Row) int64 { return r[0] * r[1] / 100 }))
	return b.groupBy(nil, []aggSpec{sum("revenue", "rev")}, 1, 1).node
}

// Q7: volume shipping between two nations, grouped by year.
func (d *Dataset) q7(g *sim.RNG) *opt.LNode {
	n1 := g.Int64n(25)
	n2 := (n1 + 1 + g.Int64n(24)) % 25
	lo, hi := Date(1995, 1, 1), Date(1996, 12, 31)
	sd := d.L.Schema.Col("l_shipdate")
	sNat := d.S.Schema.Col("s_nationkey")
	cNat := d.C.Schema.Col("c_nationkey")

	li := d.scan(d.L, []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"},
		func(r exec.Row) bool { return r[sd] >= lo && r[sd] <= hi },
		1, []string{"l_shipdate"}, 730.0/float64(DateHi))
	sup := d.scan(d.S, []string{"s_suppkey", "s_nationkey"},
		func(r exec.Row) bool { return r[sNat] == n1 || r[sNat] == n2 },
		1, []string{"s_nationkey"}, 2.0/25)
	ord := d.scan(d.O, []string{"o_orderkey", "o_custkey"}, nil, 0, nil, 1)
	cust := d.scan(d.C, []string{"c_custkey", "c_nationkey"},
		func(r exec.Row) bool { return r[cNat] == n1 || r[cNat] == n2 },
		1, []string{"c_nationkey"}, 2.0/25)

	b := li.join(sup, []string{"l_suppkey"}, []string{"s_suppkey"}).
		joinFK(ord, "l_orderkey", "o_orderkey", d.PKOrders).
		join(cust, []string{"o_custkey"}, []string{"c_custkey"})
	sn, cn := b.pos("s_nationkey"), b.pos("c_nationkey")
	b = b.filter("cross_pair", 0.5, 1, func(r exec.Row) bool {
		return (r[sn] == n1 && r[cn] == n2) || (r[sn] == n2 && r[cn] == n1)
	})
	ep, disc, sdp := b.pos("l_extendedprice"), b.pos("l_discount"), b.pos("l_shipdate")
	b = b.proj(colE("s_nationkey"), colE("c_nationkey"),
		calc("l_year", func(r exec.Row) int64 { return r[sdp]/365 + 1992 }),
		calc("volume", func(r exec.Row) int64 { return r[ep] * (100 - r[disc]) / 100 }))
	return b.groupBy([]string{"s_nationkey", "c_nationkey", "l_year"},
		[]aggSpec{sum("revenue", "volume")}, 4, 1).
		orderBy("s_nationkey", "c_nationkey", "l_year").node
}

// Q8: national market share within a region for a part type.
func (d *Dataset) q8(g *sim.RNG) *opt.LNode {
	nation := g.Int64n(25)
	region := nationRegion[nation]
	typ := typeSyl1[g.Intn(6)] + " " + typeSyl2[g.Intn(5)] + " " + typeSyl3[g.Intn(5)]
	pType := d.P.Schema.Col("p_type")
	typeCode := code(d.P.Pool(pType), typ)
	oDate := d.O.Schema.Col("o_orderdate")
	nReg := d.N.Schema.Col("n_regionkey")
	lo, hi := Date(1995, 1, 1), Date(1996, 12, 31)

	part := d.scan(d.P, []string{"p_partkey"},
		func(r exec.Row) bool { return r[pType] == typeCode }, 1, []string{"p_type"}, 1.0/150)
	li := d.scan(d.L, []string{"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"}, nil, 0, nil, 1)
	ord := d.scan(d.O, []string{"o_orderkey", "o_custkey", "o_orderdate"},
		func(r exec.Row) bool { return r[oDate] >= lo && r[oDate] <= hi },
		1, []string{"o_orderdate"}, 730.0/float64(DateHi))
	cust := d.scan(d.C, []string{"c_custkey", "c_nationkey"}, nil, 0, nil, 1)
	natR := d.scan(d.N, []string{"n_nationkey"},
		func(r exec.Row) bool { return r[nReg] == region }, 1, []string{"n_regionkey"}, 0.2)
	sup := d.scan(d.S, []string{"s_suppkey", "s_nationkey"}, nil, 0, nil, 1)

	b := li.joinFK(part, "l_partkey", "p_partkey", d.PKPart).
		join(ord, []string{"l_orderkey"}, []string{"o_orderkey"}).
		joinFK(cust, "o_custkey", "c_custkey", d.PKCustomer).
		semi(natR, []string{"c_nationkey"}, []string{"n_nationkey"}).
		joinFK(sup, "l_suppkey", "s_suppkey", d.PKSupplier)
	ep, disc, od, sn := b.pos("l_extendedprice"), b.pos("l_discount"), b.pos("o_orderdate"), b.pos("s_nationkey")
	b = b.proj(
		calc("o_year", func(r exec.Row) int64 { return r[od]/365 + 1992 }),
		calc("volume", func(r exec.Row) int64 { return r[ep] * (100 - r[disc]) / 100 }),
		calc("nation_volume", func(r exec.Row) int64 {
			if r[sn] == nation {
				return r[ep] * (100 - r[disc]) / 100
			}
			return 0
		}))
	return b.groupBy([]string{"o_year"},
		[]aggSpec{sum("mkt_total", "volume"), sum("mkt_nation", "nation_volume")}, 2, 1).
		orderBy("o_year").node
}

// Q9: product type profit, grouped by nation and year.
func (d *Dataset) q9(g *sim.RNG) *opt.LNode {
	color := colors[g.Intn(len(colors))]
	pName := d.P.Schema.Col("p_name")
	nameSet := d.P.Pool(pName).MatchContains(color)

	part := d.scan(d.P, []string{"p_partkey"},
		func(r exec.Row) bool { return nameSet[r[pName]] }, 1, []string{"p_name"}, 2.0/float64(len(colors)))
	li := d.scan(d.L, []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"}, nil, 0, nil, 1)
	sup := d.scan(d.S, []string{"s_suppkey", "s_nationkey"}, nil, 0, nil, 1)
	ps := d.scan(d.PS, []string{"ps_partkey", "ps_suppkey", "ps_supplycost"}, nil, 0, nil, 1)
	ord := d.scan(d.O, []string{"o_orderkey", "o_orderdate"}, nil, 0, nil, 1)
	nat := d.scan(d.N, []string{"n_nationkey", "n_name"}, nil, 0, nil, 1)

	b := li.joinFK(part, "l_partkey", "p_partkey", d.PKPart).
		join(ps, []string{"l_partkey", "l_suppkey"}, []string{"ps_partkey", "ps_suppkey"}).
		joinFK(sup, "l_suppkey", "s_suppkey", d.PKSupplier).
		joinFK(ord, "l_orderkey", "o_orderkey", d.PKOrders).
		joinFK(nat, "s_nationkey", "n_nationkey", nil)
	ep, disc, qty, cost, od := b.pos("l_extendedprice"), b.pos("l_discount"), b.pos("l_quantity"), b.pos("ps_supplycost"), b.pos("o_orderdate")
	b = b.proj(colE("n_name"),
		calc("o_year", func(r exec.Row) int64 { return r[od]/365 + 1992 }),
		calc("amount", func(r exec.Row) int64 {
			return r[ep]*(100-r[disc])/100 - r[cost]*r[qty]/10000
		}))
	return b.groupBy([]string{"n_name", "o_year"}, []aggSpec{sum("sum_profit", "amount")}, 175, 1).
		orderByDesc([]string{"n_name", "o_year"}, []bool{false, true}).node
}

// Q10: returned item reporting. Top 20 customers by lost revenue.
func (d *Dataset) q10(g *sim.RNG) *opt.LNode {
	lo := Date(1993, 2, 1) + g.Int64n(24)*30
	hi := lo + 90
	oDate := d.O.Schema.Col("o_orderdate")
	lrf := d.L.Schema.Col("l_returnflag")

	li := d.scan(d.L, []string{"l_orderkey", "l_extendedprice", "l_discount"},
		func(r exec.Row) bool { return r[lrf] == 1 }, 1, []string{"l_returnflag"}, 0.25)
	ord := d.scan(d.O, []string{"o_orderkey", "o_custkey"},
		func(r exec.Row) bool { return r[oDate] >= lo && r[oDate] < hi },
		1, []string{"o_orderdate"}, 90.0/float64(DateHi))
	cust := d.scan(d.C, []string{"c_custkey", "c_name", "c_acctbal", "c_nationkey"}, nil, 0, nil, 1)
	nat := d.scan(d.N, []string{"n_nationkey", "n_name"}, nil, 0, nil, 1)

	b := li.join(ord, []string{"l_orderkey"}, []string{"o_orderkey"}).
		joinFK(cust, "o_custkey", "c_custkey", d.PKCustomer).
		joinFK(nat, "c_nationkey", "n_nationkey", nil)
	ep, disc := b.pos("l_extendedprice"), b.pos("l_discount")
	b = b.proj(colE("c_custkey"), colE("c_name"), colE("c_acctbal"), colE("n_name"),
		calc("rev", func(r exec.Row) int64 { return r[ep] * (100 - r[disc]) / 100 }))
	return b.groupBy([]string{"c_custkey", "c_name", "c_acctbal", "n_name"},
		[]aggSpec{sum("revenue", "rev")}, d.nomC()/20, d.K).
		top(20, []string{"revenue"}, []bool{true}).node
}

// Q11: important stock identification: group partsupp value by part for
// one nation, keep groups above a fraction of the total. The total is
// computed from statistics at plan time (the real query's second
// aggregation pass; see DESIGN.md).
func (d *Dataset) q11(g *sim.RNG) *opt.LNode {
	nation := g.Int64n(25)
	sNat := d.S.Schema.Col("s_nationkey")
	// Plan-time total for the HAVING threshold.
	var total int64
	supNat := d.S.Col(sNat)
	psS, psC, psQ := d.PS.Col(1), d.PS.Col(3), d.PS.Col(2)
	for i := range psS {
		if supNat[psS[i]%int64(len(supNat))] == nation {
			total += psC[i] * psQ[i]
		}
	}
	threshold := int64(float64(total*d.K) * 0.0001 / float64(d.Cfg.SF))

	sup := d.scan(d.S, []string{"s_suppkey"},
		func(r exec.Row) bool { return r[sNat] == nation }, 1, []string{"s_nationkey"}, 1.0/25)
	ps := d.scan(d.PS, []string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}, nil, 0, nil, 1)
	b := ps.semi(sup, []string{"ps_suppkey"}, []string{"s_suppkey"})
	qty, cost := b.pos("ps_availqty"), b.pos("ps_supplycost")
	b = b.proj(colE("ps_partkey"),
		calc("value", func(r exec.Row) int64 { return r[cost] * r[qty] / 100 }))
	b = b.groupBy([]string{"ps_partkey"}, []aggSpec{sum("value", "value")}, d.nomP()/25, d.K)
	v := b.pos("value")
	b = b.filter("having", 0.05, 1, func(r exec.Row) bool { return r[v] > threshold })
	return b.orderByDesc([]string{"value"}, []bool{true}).node
}
