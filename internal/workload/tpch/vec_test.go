package tpch

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// TestVectorizedDoesNotPerturbResults runs all 22 queries once under the
// row engine and once under the vectorized batch engine (the default) and
// requires bit-identical result rows. This is the end-to-end half of the
// differential gate; the operator-level half lives in internal/exec.
func TestVectorizedDoesNotPerturbResults(t *testing.T) {
	run := func(qn int, rowExec bool) [][]int64 {
		d := Build(Config{SF: 1, ActualLineitemPerSF: 300, Seed: int64(qn)})
		srv := engine.NewServer(engine.Config{Seed: int64(qn), RowExec: rowExec})
		srv.AttachDB(d.DB)
		srv.WarmBufferPool()
		srv.Start()
		g := sim.NewRNG(13)
		q := d.Query(qn, g)
		var rows [][]int64
		srv.Sim.Spawn("q", func(p *sim.Proc) {
			res := srv.Open(p).Query(q, engine.QueryOptions{})
			rows = res.Rows
		})
		srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
		srv.Stop()
		return rows
	}
	for qn := 1; qn <= NumQueries; qn++ {
		rowRes := run(qn, true)
		vecRes := run(qn, false)
		if len(rowRes) == 0 && len(vecRes) == 0 {
			continue
		}
		if !reflect.DeepEqual(rowRes, vecRes) {
			limit := func(r [][]int64) [][]int64 {
				if len(r) > 5 {
					return r[:5]
				}
				return r
			}
			t.Errorf("Q%d: row engine %d rows, vectorized %d rows\nrow: %v\nvec: %v",
				qn, len(rowRes), len(vecRes), limit(rowRes), limit(vecRes))
		}
	}
}
