package tpch

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/storage"
)

// code returns the dictionary code of s, or -1 when s was never interned
// (so a failed lookup can never alias a real value).
func code(p *storage.StrPool, s string) int64 {
	if c, ok := p.Lookup(s); ok {
		return c
	}
	return -1
}

// qb is a query-building helper that tracks the output column layout by
// name, so multi-join templates stay readable and ordinal bugs surface as
// panics at plan-construction time.
type qb struct {
	d    *Dataset
	node *opt.LNode
	lay  []string
}

func (b *qb) pos(name string) int {
	for i, n := range b.lay {
		if n == name {
			return i
		}
	}
	panic(fmt.Sprintf("tpch: column %q not in layout %v", name, b.lay))
}

func (b *qb) positions(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = b.pos(n)
	}
	return out
}

// scan starts a plan from a table scan with an optional predicate.
// pred receives a full-width table row; predCols names the columns the
// predicate reads (so the columnstore decodes them); sel is the
// selectivity hint.
func (d *Dataset) scan(t *storage.Table, cols []string, pred exec.Pred, npred int, predCols []string, sel float64) *qb {
	proj := make([]int, len(cols))
	for i, c := range cols {
		proj[i] = t.Schema.Col(c)
	}
	var pcs []int
	for _, c := range predCols {
		pcs = append(pcs, t.Schema.Col(c))
	}
	return &qb{
		d: d,
		node: &opt.LNode{
			Kind: opt.LScan,
			Heap: access.Heap{T: t},
			CSI:  d.DB.CSIOf(t),
			Proj: proj, Pred: pred, NPred: npred, PredCols: pcs,
			Sel: sel, Name: t.Name,
		},
		lay: append([]string(nil), cols...),
	}
}

// joinFK performs an inner N:1 join from the current (fact) side to dim:
// output layout is fact columns ++ dim columns. ix optionally enables an
// index nested-loops alternative (dim must then be an unfiltered scan
// matching innerCols).
func (b *qb) joinFK(dim *qb, leftKey, rightKey string, ix *access.BTIndex) *qb {
	n := &opt.LNode{
		Kind: opt.LJoin,
		Left: b.node, Right: dim.node,
		LeftKeys:  []int{b.pos(leftKey)},
		RightKeys: []int{dim.pos(rightKey)},
		JoinType:  exec.InnerJoin,
		FK:        true,
		Name:      "join_" + rightKey,
	}
	if ix != nil {
		n.InnerIndex = ix
		n.InnerProj = dim.node.Proj
	}
	return &qb{d: b.d, node: n, lay: append(append([]string(nil), b.lay...), dim.lay...)}
}

// joinIdx performs a 1:N inner join from the current side into table
// rows reached through ix (fanOut matches per outer row), giving the
// optimizer an index nested-loops alternative.
func (b *qb) joinIdx(r *qb, leftKeys, rightKeys []string, ix *access.BTIndex, fanOut float64) *qb {
	n := &opt.LNode{
		Kind: opt.LJoin,
		Left: b.node, Right: r.node,
		LeftKeys:   b.positions(leftKeys...),
		RightKeys:  r.positions(rightKeys...),
		JoinType:   exec.InnerJoin,
		FanOut:     fanOut,
		InnerIndex: ix, InnerProj: r.node.Proj,
		Name: "joinidx",
	}
	return &qb{d: b.d, node: n, lay: append(append([]string(nil), b.lay...), r.lay...)}
}

// join performs a general inner equi-join (possibly M:N).
func (b *qb) join(r *qb, leftKeys, rightKeys []string) *qb {
	n := &opt.LNode{
		Kind: opt.LJoin,
		Left: b.node, Right: r.node,
		LeftKeys:  b.positions(leftKeys...),
		RightKeys: r.positions(rightKeys...),
		JoinType:  exec.InnerJoin,
		Name:      "join",
	}
	return &qb{d: b.d, node: n, lay: append(append([]string(nil), b.lay...), r.lay...)}
}

// semi keeps rows of b whose keys appear in r.
func (b *qb) semi(r *qb, leftKeys, rightKeys []string) *qb {
	n := &opt.LNode{
		Kind: opt.LJoin,
		Left: b.node, Right: r.node,
		LeftKeys:  b.positions(leftKeys...),
		RightKeys: r.positions(rightKeys...),
		JoinType:  exec.SemiJoin,
		Name:      "semi",
	}
	return &qb{d: b.d, node: n, lay: append([]string(nil), b.lay...)}
}

// anti keeps rows of b whose keys do NOT appear in r.
func (b *qb) anti(r *qb, leftKeys, rightKeys []string) *qb {
	n := &opt.LNode{
		Kind: opt.LJoin,
		Left: b.node, Right: r.node,
		LeftKeys:  b.positions(leftKeys...),
		RightKeys: r.positions(rightKeys...),
		JoinType:  exec.AntiJoin,
		Name:      "anti",
	}
	return &qb{d: b.d, node: n, lay: append([]string(nil), b.lay...)}
}

// filter applies a predicate over the current layout.
func (b *qb) filter(name string, sel float64, npred int, pred exec.Pred) *qb {
	n := &opt.LNode{
		Kind: opt.LFilter, Left: b.node,
		Pred: pred, NPred: npred, Sel: sel, Name: name,
	}
	return &qb{d: b.d, node: n, lay: b.lay}
}

// expr is one computed output column.
type expr struct {
	name string
	fn   func(exec.Row) int64
}

// colExpr passes a column through.
func colE(name string) expr {
	return expr{name: name, fn: nil}
}

// calc computes a new column.
func calc(name string, fn func(exec.Row) int64) expr {
	return expr{name: name, fn: fn}
}

// proj projects/computes columns. Pass-through columns resolve by name.
func (b *qb) proj(exprs ...expr) *qb {
	fns := make([]func(exec.Row) int64, len(exprs))
	lay := make([]string, len(exprs))
	for i, e := range exprs {
		lay[i] = e.name
		if e.fn != nil {
			fns[i] = e.fn
		} else {
			c := b.pos(e.name)
			fns[i] = func(r exec.Row) int64 { return r[c] }
		}
	}
	n := &opt.LNode{Kind: opt.LProject, Left: b.node, Exprs: fns, Name: "project"}
	return &qb{d: b.d, node: n, lay: lay}
}

// aggSpec is one named aggregate.
type aggSpec struct {
	name string
	kind exec.AggKind
	col  string // ignored for count
}

func sum(name, col string) aggSpec { return aggSpec{name, exec.AggSum, col} }
func cnt(name string) aggSpec      { return aggSpec{name, exec.AggCount, ""} }
func mn(name, col string) aggSpec  { return aggSpec{name, exec.AggMin, col} }
func mx(name, col string) aggSpec  { return aggSpec{name, exec.AggMax, col} }
func avg(name, col string) aggSpec { return aggSpec{name, exec.AggAvg, col} }

// groupBy aggregates; output layout = groups ++ agg names. ngroups is the
// nominal group-count hint; outWeight the nominal rows per output row.
func (b *qb) groupBy(groups []string, aggs []aggSpec, ngroups float64, outWeight int64) *qb {
	specs := make([]exec.AggSpec, len(aggs))
	lay := append([]string(nil), groups...)
	for i, a := range aggs {
		col := 0
		if a.kind != exec.AggCount {
			col = b.pos(a.col)
		}
		specs[i] = exec.AggSpec{Kind: a.kind, Col: col}
		lay = append(lay, a.name)
	}
	n := &opt.LNode{
		Kind: opt.LAgg, Left: b.node,
		Groups: b.positions(groups...), Aggs: specs,
		NGroups: ngroups, OutWeight: outWeight, Name: "groupby",
	}
	return &qb{d: b.d, node: n, lay: lay}
}

// orderBy sorts by the named columns.
func (b *qb) orderBy(keys ...string) *qb {
	return b.orderByDesc(keys, nil)
}

// orderByDesc sorts with explicit descending flags.
func (b *qb) orderByDesc(keys []string, desc []bool) *qb {
	ks := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		ks[i] = exec.SortKey{Col: b.pos(k)}
		if desc != nil {
			ks[i].Desc = desc[i]
		}
	}
	n := &opt.LNode{Kind: opt.LSort, Left: b.node, Keys: ks, Name: "orderby"}
	return &qb{d: b.d, node: n, lay: b.lay}
}

// top keeps the first k rows by the named keys.
func (b *qb) top(k int, keys []string, desc []bool) *qb {
	ks := make([]exec.SortKey, len(keys))
	for i, key := range keys {
		ks[i] = exec.SortKey{Col: b.pos(key)}
		if desc != nil {
			ks[i].Desc = desc[i]
		}
	}
	n := &opt.LNode{Kind: opt.LTop, Left: b.node, Keys: ks, Limit: k, Name: "top"}
	return &qb{d: b.d, node: n, lay: b.lay}
}
