package tpch

import (
	"strings"

	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sim"
)

// Q12: shipping modes and order priority. Lineitem filtered on two ship
// modes and date sanity joins orders; counts split by priority class.
func (d *Dataset) q12(g *sim.RNG) *opt.LNode {
	mi := g.Intn(len(modes))
	mj := (mi + 1 + g.Intn(len(modes)-1)) % len(modes)
	yr := 1993 + g.Int64n(5)
	lo, hi := Date(yr, 1, 1), Date(yr+1, 1, 1)
	lm := d.L.Schema.Col("l_shipmode")
	lc := d.L.Schema.Col("l_commitdate")
	lr := d.L.Schema.Col("l_receiptdate")
	ls := d.L.Schema.Col("l_shipdate")
	m1 := code(d.L.Pool(lm), modes[mi])
	m2 := code(d.L.Pool(lm), modes[mj])
	li := d.scan(d.L, []string{"l_orderkey", "l_shipmode"},
		func(r exec.Row) bool {
			return (r[lm] == m1 || r[lm] == m2) &&
				r[lc] < r[lr] && r[ls] < r[lc] &&
				r[lr] >= lo && r[lr] < hi
		}, 4, []string{"l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate"},
		(2.0/7)*0.25*(365.0/float64(DateHi)))
	ord := d.scan(d.O, []string{"o_orderkey", "o_orderpriority"}, nil, 0, nil, 1)

	urgent := code(d.O.Pool(d.O.Schema.Col("o_orderpriority")), prios[0])
	high := code(d.O.Pool(d.O.Schema.Col("o_orderpriority")), prios[1])
	b := li.joinFK(ord, "l_orderkey", "o_orderkey", d.PKOrders)
	op := b.pos("o_orderpriority")
	b = b.proj(colE("l_shipmode"),
		calc("high_line", func(r exec.Row) int64 {
			if r[op] == urgent || r[op] == high {
				return 1
			}
			return 0
		}),
		calc("low_line", func(r exec.Row) int64 {
			if r[op] == urgent || r[op] == high {
				return 0
			}
			return 1
		}))
	return b.groupBy([]string{"l_shipmode"},
		[]aggSpec{sum("high_line_count", "high_line"), sum("low_line_count", "low_line")}, 2, 1).
		orderBy("l_shipmode").node
}

// Q13: customer distribution. Orders (excluding a comment pattern) are
// counted per customer in a very large hash aggregate, then the counts
// are histogrammed. (Zero-order customers are omitted; see DESIGN.md.)
func (d *Dataset) q13(g *sim.RNG) *opt.LNode {
	w1 := commentWords[g.Intn(len(commentWords))]
	w2 := commentWords[g.Intn(len(commentWords))]
	oc := d.O.Schema.Col("o_comment")
	excl := d.O.Pool(oc).Match(func(s string) bool {
		i := strings.Index(s, w1)
		return i >= 0 && strings.Contains(s[i:], w2)
	})
	ord := d.scan(d.O, []string{"o_custkey"},
		func(r exec.Row) bool { return !excl[r[oc]] }, 1, []string{"o_comment"}, 0.98)
	counts := ord.groupBy([]string{"o_custkey"}, []aggSpec{cnt("c_count")}, d.nomC(), d.K)
	return counts.groupBy([]string{"c_count"}, []aggSpec{cnt("custdist")}, 50, 1).
		orderByDesc([]string{"custdist", "c_count"}, []bool{true, true}).node
}

// Q14: promotion effect for one month of lineitem joined to part.
func (d *Dataset) q14(g *sim.RNG) *opt.LNode {
	lo := Date(1993, 1, 1) + g.Int64n(60)*30
	hi := lo + 30
	sd := d.L.Schema.Col("l_shipdate")
	pt := d.P.Schema.Col("p_type")
	promo := d.P.Pool(pt).MatchPrefix("PROMO")

	li := d.scan(d.L, []string{"l_partkey", "l_extendedprice", "l_discount"},
		func(r exec.Row) bool { return r[sd] >= lo && r[sd] < hi },
		1, []string{"l_shipdate"}, 30.0/float64(DateHi))
	part := d.scan(d.P, []string{"p_partkey", "p_type"}, nil, 0, nil, 1)
	b := li.joinFK(part, "l_partkey", "p_partkey", d.PKPart)
	ep, disc, ptp := b.pos("l_extendedprice"), b.pos("l_discount"), b.pos("p_type")
	b = b.proj(
		calc("rev", func(r exec.Row) int64 { return r[ep] * (100 - r[disc]) / 100 }),
		calc("promo_rev", func(r exec.Row) int64 {
			if promo[r[ptp]] {
				return r[ep] * (100 - r[disc]) / 100
			}
			return 0
		}))
	return b.groupBy(nil, []aggSpec{sum("promo_revenue", "promo_rev"), sum("total_revenue", "rev")}, 1, 1).node
}

// Q15: top supplier. Quarterly revenue per supplier; the max-revenue
// threshold comes from plan-time statistics (the view's second pass).
func (d *Dataset) q15(g *sim.RNG) *opt.LNode {
	lo := Date(1993, 1, 1) + g.Int64n(20)*90
	hi := lo + 90
	sd := d.L.Schema.Col("l_shipdate")
	// Plan-time max revenue per supplier for the outer filter.
	rev := make(map[int64]int64)
	lsupp, lship, lep, ldisc := d.L.Col(2), d.L.Col(10), d.L.Col(5), d.L.Col(6)
	var maxRev int64
	for i := range lsupp {
		if lship[i] >= lo && lship[i] < hi {
			rev[lsupp[i]] += lep[i] * (100 - ldisc[i]) / 100
		}
	}
	for _, v := range rev {
		if v > maxRev {
			maxRev = v
		}
	}
	threshold := maxRev * d.K * 99 / 100

	li := d.scan(d.L, []string{"l_suppkey", "l_extendedprice", "l_discount"},
		func(r exec.Row) bool { return r[sd] >= lo && r[sd] < hi },
		1, []string{"l_shipdate"}, 90.0/float64(DateHi))
	b := li.proj(colE("l_suppkey"),
		calc("rev", func(r exec.Row) int64 { return r[1] * (100 - r[2]) / 100 }))
	b = b.groupBy([]string{"l_suppkey"}, []aggSpec{sum("total_revenue", "rev")}, d.nomS(), d.K)
	tr := b.pos("total_revenue")
	b = b.filter("is_max", 1e-4, 1, func(r exec.Row) bool { return r[tr] >= threshold })
	sup := d.scan(d.S, []string{"s_suppkey", "s_name"}, nil, 0, nil, 1)
	return b.joinFK(sup, "l_suppkey", "s_suppkey", d.PKSupplier).
		orderBy("s_suppkey").node
}

// Q16: parts/supplier relationship. Partsupp joined to filtered parts,
// excluding suppliers with complaint comments.
func (d *Dataset) q16(g *sim.RNG) *opt.LNode {
	brandCode := code(d.P.Pool(d.P.Schema.Col("p_brand")), "Brand#45")
	syl := typeSyl2[g.Intn(5)]
	pt := d.P.Schema.Col("p_type")
	pb := d.P.Schema.Col("p_brand")
	psz := d.P.Schema.Col("p_size")
	typeSet := d.P.Pool(pt).Match(func(s string) bool { return !strings.Contains(s, syl) })
	sizes := map[int64]bool{}
	for len(sizes) < 8 {
		sizes[g.Int64n(50)+1] = true
	}
	sc := d.S.Schema.Col("s_comment")
	complaints := d.S.Pool(sc).Match(func(s string) bool {
		return strings.Contains(s, "special") && strings.Contains(s, "requests")
	})

	part := d.scan(d.P, []string{"p_partkey", "p_brand", "p_type", "p_size"},
		func(r exec.Row) bool {
			return r[pb] != brandCode && typeSet[r[pt]] && sizes[r[psz]]
		}, 3, []string{"p_brand", "p_type", "p_size"}, 0.8*(8.0/50))
	ps := d.scan(d.PS, []string{"ps_partkey", "ps_suppkey"}, nil, 0, nil, 1)
	bad := d.scan(d.S, []string{"s_suppkey"},
		func(r exec.Row) bool { return complaints[r[sc]] }, 1, []string{"s_comment"}, 0.01)

	b := ps.joinFK(part, "ps_partkey", "p_partkey", d.PKPart).
		anti(bad, []string{"ps_suppkey"}, []string{"s_suppkey"})
	return b.groupBy([]string{"p_brand", "p_type", "p_size"},
		[]aggSpec{cnt("supplier_cnt")}, 18000, 1).
		orderByDesc([]string{"supplier_cnt", "p_brand"}, []bool{true, false}).node
}

// Q17: small-quantity-order revenue: lineitems below 20% of their part's
// average quantity, for one brand and container.
func (d *Dataset) q17(g *sim.RNG) *opt.LNode {
	brand := "Brand#" + string(rune('1'+g.Intn(5))) + string(rune('1'+g.Intn(5)))
	container := []string{"SM CASE", "MED BOX", "LG JAR", "JUMBO PKG"}[g.Intn(4)]
	pb := d.P.Schema.Col("p_brand")
	pc := d.P.Schema.Col("p_container")
	brandCode := code(d.P.Pool(pb), brand)
	contCode := code(d.P.Pool(pc), container)

	part := d.scan(d.P, []string{"p_partkey"},
		func(r exec.Row) bool { return r[pb] == brandCode && r[pc] == contCode },
		2, []string{"p_brand", "p_container"}, 1.0/(25*40))
	li := d.scan(d.L, []string{"l_partkey", "l_quantity", "l_extendedprice"}, nil, 0, nil, 1)
	avgs := d.scan(d.L, []string{"l_partkey", "l_quantity"}, nil, 0, nil, 1).
		groupBy([]string{"l_partkey"}, []aggSpec{avg("avg_qty", "l_quantity")}, d.nomP(), d.K)

	b := li.semi(part, []string{"l_partkey"}, []string{"p_partkey"}).
		join(avgs, []string{"l_partkey"}, []string{"l_partkey"})
	lq, aq := b.pos("l_quantity"), b.pos("avg_qty")
	b = b.filter("below_avg", 0.2, 1, func(r exec.Row) bool { return r[lq]*5 < r[aq] })
	ep := b.pos("l_extendedprice")
	b = b.proj(calc("price", func(r exec.Row) int64 { return r[ep] / 7 }))
	return b.groupBy(nil, []aggSpec{sum("avg_yearly", "price")}, 1, 1).node
}

// Q18: large volume customers. The signature memory hog: a hash
// aggregate over every order's lineitems, filtered to huge orders, then
// joined back. The paper finds Q18 the most grant-sensitive query.
func (d *Dataset) q18(g *sim.RNG) *opt.LNode {
	qty := int64(312+g.Intn(3)) * 100
	big := d.scan(d.L, []string{"l_orderkey", "l_quantity"}, nil, 0, nil, 1).
		groupBy([]string{"l_orderkey"}, []aggSpec{sum("sum_qty", "l_quantity")}, d.nomO(), d.K)
	sq := big.pos("sum_qty")
	big = big.filter("huge", 0.005, 1, func(r exec.Row) bool { return r[sq] > qty })

	ord := d.scan(d.O, []string{"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"}, nil, 0, nil, 1)
	cust := d.scan(d.C, []string{"c_custkey", "c_name"}, nil, 0, nil, 1)
	b := big.join(ord, []string{"l_orderkey"}, []string{"o_orderkey"}).
		joinFK(cust, "o_custkey", "c_custkey", d.PKCustomer)
	return b.groupBy(
		[]string{"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
		[]aggSpec{sum("total_qty", "sum_qty")}, d.nomO()*0.005, d.K).
		top(100, []string{"o_totalprice", "o_orderdate"}, []bool{true, false}).node
}

// Q19: discounted revenue, a disjunction of three brand/container/
// quantity envelopes evaluated after the part join.
func (d *Dataset) q19(g *sim.RNG) *opt.LNode {
	q1 := int64(g.Intn(10)+1) * 100
	q2 := int64(g.Intn(10)+10) * 100
	q3 := int64(g.Intn(10)+20) * 100
	pb := d.P.Schema.Col("p_brand")
	pc := d.P.Schema.Col("p_container")
	brandCodes := make([]int64, 3)
	for i := range brandCodes {
		b := "Brand#" + string(rune('1'+g.Intn(5))) + string(rune('1'+g.Intn(5)))
		brandCodes[i] = code(d.P.Pool(pb), b)
	}
	smSet := d.P.Pool(pc).MatchPrefix("SM")
	medSet := d.P.Pool(pc).MatchPrefix("MED")
	lgSet := d.P.Pool(pc).MatchPrefix("LG")

	li := d.scan(d.L, []string{"l_partkey", "l_quantity", "l_extendedprice", "l_discount"},
		nil, 0, nil, 1)
	part := d.scan(d.P, []string{"p_partkey", "p_brand", "p_container", "p_size"}, nil, 0, nil, 1)
	b := li.joinFK(part, "l_partkey", "p_partkey", d.PKPart)
	lq := b.pos("l_quantity")
	bb, cc, ss := b.pos("p_brand"), b.pos("p_container"), b.pos("p_size")
	b = b.filter("envelopes", 0.002, 3, func(r exec.Row) bool {
		switch {
		case r[bb] == brandCodes[0] && smSet[r[cc]] && r[lq] >= q1 && r[lq] <= q1+1000 && r[ss] <= 5:
			return true
		case r[bb] == brandCodes[1] && medSet[r[cc]] && r[lq] >= q2 && r[lq] <= q2+1000 && r[ss] <= 10:
			return true
		case r[bb] == brandCodes[2] && lgSet[r[cc]] && r[lq] >= q3 && r[lq] <= q3+1000 && r[ss] <= 15:
			return true
		}
		return false
	})
	ep, disc := b.pos("l_extendedprice"), b.pos("l_discount")
	b = b.proj(calc("rev", func(r exec.Row) int64 { return r[ep] * (100 - r[disc]) / 100 }))
	return b.groupBy(nil, []aggSpec{sum("revenue", "rev")}, 1, 1).node
}

// Q20: potential part promotion (Listing 1). Suppliers in one nation
// holding excess stock of parts with a given name prefix. The part join
// carries an index alternative — this is the query whose plan shape
// flips with DOP and scale factor (Figure 7).
func (d *Dataset) q20(g *sim.RNG) *opt.LNode {
	color := colors[g.Intn(len(colors))]
	nation := g.Int64n(25)
	yr := 1993 + g.Int64n(5)
	lo, hi := Date(yr, 1, 1), Date(yr+1, 1, 1)
	pn := d.P.Schema.Col("p_name")
	nameSet := d.P.Pool(pn).MatchPrefix(color)
	sd := d.L.Schema.Col("l_shipdate")
	sNat := d.S.Schema.Col("s_nationkey")

	part := d.scan(d.P, []string{"p_partkey"},
		func(r exec.Row) bool { return nameSet[r[pn]] }, 1, []string{"p_name"},
		1.0/float64(len(colors)))
	ps := d.scan(d.PS, []string{"ps_partkey", "ps_suppkey", "ps_availqty"}, nil, 0, nil, 1)
	shipped := d.scan(d.L, []string{"l_partkey", "l_suppkey", "l_quantity"},
		func(r exec.Row) bool { return r[sd] >= lo && r[sd] < hi },
		1, []string{"l_shipdate"}, 365.0/float64(DateHi)).
		groupBy([]string{"l_partkey", "l_suppkey"}, []aggSpec{sum("sum_qty", "l_quantity")},
			d.nomPS()*0.8, d.K)

	// The filtered parts drive the partsupp access: the optimizer can
	// realize it as a hash join (scan partsupp) or as index nested loops
	// through pk_partsupp — the plan-shape flip of Figure 7.
	b := part.joinIdx(ps, []string{"p_partkey"}, []string{"ps_partkey"}, d.PKPartsupp, 4).
		join(shipped, []string{"ps_partkey", "ps_suppkey"}, []string{"l_partkey", "l_suppkey"})
	aq, sq := b.pos("ps_availqty"), b.pos("sum_qty")
	b = b.filter("excess", 0.5, 1, func(r exec.Row) bool { return r[aq]*100 > r[sq]/2 })

	sup := d.scan(d.S, []string{"s_suppkey", "s_name", "s_address", "s_nationkey"},
		func(r exec.Row) bool { return r[sNat] == nation }, 1, []string{"s_nationkey"}, 1.0/25)
	final := sup.semi(b, []string{"s_suppkey"}, []string{"ps_suppkey"})
	return final.orderBy("s_name").node
}

// Q21: suppliers who kept orders waiting: a multi-way self-join of
// lineitem with semi and anti branches.
func (d *Dataset) q21(g *sim.RNG) *opt.LNode {
	nation := g.Int64n(25)
	sNat := d.S.Schema.Col("s_nationkey")
	lr := d.L.Schema.Col("l_receiptdate")
	lc := d.L.Schema.Col("l_commitdate")
	oStat := d.O.Schema.Col("o_orderstatus")

	l1 := d.scan(d.L, []string{"l_orderkey", "l_suppkey"},
		func(r exec.Row) bool { return r[lr] > r[lc] },
		1, []string{"l_receiptdate", "l_commitdate"}, 0.5)
	sup := d.scan(d.S, []string{"s_suppkey", "s_name"},
		func(r exec.Row) bool { return r[sNat] == nation }, 1, []string{"s_nationkey"}, 1.0/25)
	ord := d.scan(d.O, []string{"o_orderkey"},
		func(r exec.Row) bool { return r[oStat] == 0 }, 1, []string{"o_orderstatus"}, 1.0/3)
	l2 := d.scan(d.L, []string{"l_orderkey"}, nil, 0, nil, 1)
	l3 := d.scan(d.L, []string{"l_orderkey"},
		func(r exec.Row) bool { return r[lr] > r[lc] },
		1, []string{"l_receiptdate", "l_commitdate"}, 0.5)

	b := l1.join(sup, []string{"l_suppkey"}, []string{"s_suppkey"}).
		semi(ord, []string{"l_orderkey"}, []string{"o_orderkey"}).
		semi(l2, []string{"l_orderkey"}, []string{"l_orderkey"}).
		anti(l3, []string{"l_orderkey"}, []string{"l_orderkey"})
	return b.groupBy([]string{"s_name"}, []aggSpec{cnt("numwait")}, d.nomS()/25, 1).
		top(100, []string{"numwait", "s_name"}, []bool{true, false}).node
}

// Q22: global sales opportunity. Customers from seven country codes with
// above-average balances and no orders. The average comes from plan-time
// statistics.
func (d *Dataset) q22(g *sim.RNG) *opt.LNode {
	codes := map[int64]bool{}
	for len(codes) < 7 {
		codes[g.Int64n(25)] = true
	}
	cNat := d.C.Schema.Col("c_nationkey")
	cBal := d.C.Schema.Col("c_acctbal")
	// Plan-time average positive balance among the selected codes.
	var total, n int64
	nats, bals := d.C.Col(cNat), d.C.Col(cBal)
	for i := range nats {
		if codes[nats[i]] && bals[i] > 0 {
			total += bals[i]
			n++
		}
	}
	avgBal := int64(0)
	if n > 0 {
		avgBal = total / n
	}

	cust := d.scan(d.C, []string{"c_custkey", "c_nationkey", "c_acctbal"},
		func(r exec.Row) bool { return codes[r[cNat]] && r[cBal] > avgBal },
		2, []string{"c_nationkey", "c_acctbal"}, (7.0/25)*0.4)
	ord := d.scan(d.O, []string{"o_custkey"}, nil, 0, nil, 1)
	b := cust.anti(ord, []string{"c_custkey"}, []string{"o_custkey"})
	return b.groupBy([]string{"c_nationkey"},
		[]aggSpec{cnt("numcust"), sum("totacctbal", "c_acctbal")}, 7, 1).
		orderBy("c_nationkey").node
}
