package tpch

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// runQuery executes one query on a fresh tiny server and returns its rows.
func runQuery(t *testing.T, qn int, seed int64) ([][]int64, *Dataset) {
	t.Helper()
	srv, d := tinyServer(t, seed)
	g := sim.NewRNG(seed)
	var rows [][]int64
	srv.Sim.Spawn("q", func(p *sim.Proc) {
		res := srv.Open(p).Query(d.Query(qn, g), engine.QueryOptions{})
		rows = res.Rows
	})
	srv.Sim.Run(srv.Sim.Now() + sim.Time(1200*sim.Second))
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
	return rows, d
}

// Structural assertions on query results: group counts, orderings, and
// limits that follow from each template regardless of the random
// parameters.
func TestQ1GroupsAndOrder(t *testing.T) {
	rows, _ := runQuery(t, 1, 2)
	if len(rows) < 3 || len(rows) > 6 {
		t.Fatalf("Q1 groups = %d, want 3..6 (returnflag x linestatus)", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]) {
			t.Fatalf("Q1 not ordered by (returnflag, linestatus)")
		}
	}
	for _, r := range rows {
		// count_order > 0 and sum_qty positive.
		if r[len(r)-1] <= 0 || r[2] <= 0 {
			t.Fatalf("Q1 row has empty aggregates: %v", r)
		}
	}
}

func TestQ3TopNRespectsLimitAndOrder(t *testing.T) {
	rows, _ := runQuery(t, 3, 3)
	if len(rows) > 10 {
		t.Fatalf("Q3 rows = %d, limit 10", len(rows))
	}
	// revenue (last col) descending.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][3] < rows[i][3] {
			t.Fatalf("Q3 revenue not descending")
		}
	}
}

func TestQ4AtMostFivePriorities(t *testing.T) {
	rows, _ := runQuery(t, 4, 4)
	if len(rows) > 5 {
		t.Fatalf("Q4 groups = %d, max 5 priorities", len(rows))
	}
	for _, r := range rows {
		if r[1] <= 0 {
			t.Fatalf("Q4 non-positive count: %v", r)
		}
	}
}

func TestQ6SingleRow(t *testing.T) {
	rows, _ := runQuery(t, 6, 6)
	if len(rows) != 1 {
		t.Fatalf("Q6 rows = %d, want 1 (scalar aggregate)", len(rows))
	}
	if rows[0][0] < 0 {
		t.Fatalf("Q6 negative revenue: %v", rows[0])
	}
}

func TestQ13CountsArePositive(t *testing.T) {
	rows, _ := runQuery(t, 13, 13)
	if len(rows) == 0 {
		t.Fatal("Q13 empty")
	}
	for _, r := range rows {
		if r[0] <= 0 || r[1] <= 0 {
			t.Fatalf("Q13 non-positive (c_count, custdist): %v", r)
		}
	}
}

func TestQ14SingleRowRevenueSplit(t *testing.T) {
	rows, _ := runQuery(t, 14, 14)
	if len(rows) != 1 {
		t.Fatalf("Q14 rows = %d", len(rows))
	}
	promo, total := rows[0][0], rows[0][1]
	if promo < 0 || promo > total {
		t.Fatalf("Q14 promo revenue %d outside [0, %d]", promo, total)
	}
}

func TestQ18TopNHugeOrders(t *testing.T) {
	rows, d := runQuery(t, 18, 18)
	if len(rows) > 100 {
		t.Fatalf("Q18 rows = %d, limit 100", len(rows))
	}
	_ = d
	// Every surviving group's total quantity exceeds the 312-unit floor
	// (31200 in hundredths at the minimum parameter).
	for _, r := range rows {
		if r[len(r)-1] <= 31200 {
			t.Fatalf("Q18 group below quantity threshold: %v", r)
		}
	}
}

func TestQ22GroupsBounded(t *testing.T) {
	rows, _ := runQuery(t, 22, 22)
	if len(rows) > 7 {
		t.Fatalf("Q22 groups = %d, max 7 country codes", len(rows))
	}
	for _, r := range rows {
		if r[1] <= 0 || r[2] <= 0 {
			t.Fatalf("Q22 empty group: %v", r)
		}
	}
}

func TestQ21OrderedByNumwaitDesc(t *testing.T) {
	rows, _ := runQuery(t, 21, 21)
	for i := 1; i < len(rows); i++ {
		if rows[i-1][1] < rows[i][1] {
			t.Fatalf("Q21 numwait not descending")
		}
	}
	if len(rows) > 100 {
		t.Fatalf("Q21 rows = %d, limit 100", len(rows))
	}
}
