package htap

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

func TestHybridRunsBothComponents(t *testing.T) {
	d := Build(Config{Customers: 300, ActualTradesPerCustomer: 4, Seed: 3})
	if d.TradeCSI == nil {
		t.Fatal("HTAP dataset must have the trade columnstore")
	}
	srv := engine.NewServer(engine.Config{Seed: 7})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	var st Stats
	until := sim.Time(2 * sim.Second)
	Run(srv, d, 20, until, &st)
	srv.Sim.Run(until)
	srv.Stop()
	srv.Sim.Run(until + sim.Time(300*sim.Second))
	if st.OLTP.Total < 100 {
		t.Fatalf("OLTP transactions = %d", st.OLTP.Total)
	}
	if st.DSSPasses < 1 {
		t.Fatalf("DSS passes = %d", st.DSSPasses)
	}
	if srv.Ctr.QueriesDone < int64(st.DSSPasses) {
		t.Fatal("query counter mismatch")
	}
	// Trickle inserts landed in the columnstore delta or were compressed.
	if d.TradeCSI.Ix.DeltaNominalRows() == 0 && d.TradeCSI.Ix.Segments() == 0 {
		t.Fatal("no trickle activity visible in columnstore")
	}
	if w := srv.Locks.WaitingLongest(srv.Sim.Now()); w > 0 {
		t.Fatalf("stuck waiter: %v", w)
	}
}
