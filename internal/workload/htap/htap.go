// Package htap implements the paper's hybrid workload (Section 2.3): the
// TPC-E transactional component run by 99 users concurrently with one
// analytical user cycling through four analytical queries against an
// updatable nonclustered columnstore index on the trade table.
package htap

import (
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload/tpce"
)

// Config mirrors the TPC-E scale factors.
type Config struct {
	Customers               int
	ActualTradesPerCustomer int
	Seed                    int64
}

// Build generates the TPC-E dataset with the columnstore index attached.
func Build(cfg Config) *tpce.Dataset {
	return tpce.Build(tpce.Config{
		Customers:               cfg.Customers,
		ActualTradesPerCustomer: cfg.ActualTradesPerCustomer,
		Seed:                    cfg.Seed,
		WithCSI:                 true,
	})
}

// Stats reports both components.
type Stats struct {
	OLTP      tpce.Stats
	DSSPasses int // completed analytical queries
}

// Run drives the hybrid workload: oltpUsers transactional terminals plus
// one analytical session running the four queries round-robin, until the
// given simulated time. The caller advances the clock and computes TPS /
// QPH from the engine counters.
func Run(srv *engine.Server, d *tpce.Dataset, oltpUsers int, until sim.Time, st *Stats) {
	tpce.RunUsers(srv, d, oltpUsers, tpce.DefaultMix(), until, &st.OLTP)
	srv.Sim.Spawn("htap-analyst", func(p *sim.Proc) {
		sess := srv.Open(p)
		defer sess.Close()
		g := srv.Sim.RNG().Fork()
		for qn := 0; !srv.Stopped() && p.Now() < until; qn++ {
			res := sess.Query(d.AnalyticalQuery(qn, g), engine.QueryOptions{G: g})
			if res.Err == nil {
				st.DSSPasses++
			}
		}
	})
}
