package asdb

// The serving front end ships statement names and one integer argument
// over the wire (internal/proto.Request); this file is the server-side
// catalog that resolves them. The statement bodies are shared with the
// closed-loop client methods in asdb.go — the only difference is who
// picks the key: the closed-loop client draws from its own RNG/Zipf,
// while a served request carries the key chosen by the remote client.

import (
	"repro/internal/access"
	"repro/internal/btree"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/storage"
)

func pk(t *storage.Table, nid int64) btree.Key {
	return btree.Key{t.Get(t.ToActual(nid), 0)}
}

// PointReadAt is a single-row select of big-table row nid.
func (d *Dataset) PointReadAt(sess *engine.Session, nid int64) bool {
	tx := sess.Begin()
	sess.Read(tx, d.PKBig, pk(d.Big, nid), nid)
	return sess.Commit(tx)
}

// RangeReadAt is a 50-row range scan of the small table starting at nid.
func (d *Dataset) RangeReadAt(sess *engine.Session, nid int64) bool {
	tx := sess.Begin()
	sess.ReadRange(tx, d.PKSmall, pk(d.Small, nid), nid, 50)
	return sess.Commit(tx)
}

// JoinReadAt reads fixed-table row fid and big-table row nid in one
// transaction.
func (d *Dataset) JoinReadAt(sess *engine.Session, fid, nid int64) bool {
	tx := sess.Begin()
	sess.Read(tx, d.PKFixed, pk(d.Fixed, fid), fid)
	sess.Read(tx, d.PKBig, pk(d.Big, nid), nid)
	return sess.Commit(tx)
}

// UpdateAt is a single-row update of big-table row nid.
func (d *Dataset) UpdateAt(sess *engine.Session, nid int64) bool {
	tx := sess.Begin()
	sess.Update(tx, d.PKBig, pk(d.Big, nid), nid, func(w *engine.RowWriter) {
		w.Add(1, 1)
	})
	return sess.Commit(tx)
}

// InsertRow appends one row to the growing table. Row payloads come from
// the dataset's generator RNG, as they do in the closed-loop driver.
func (d *Dataset) InsertRow(sess *engine.Session) bool {
	tx := sess.Begin()
	id := d.Growing.NominalRows()
	sess.Insert(tx, d.Growing, d.row(9, id),
		[]*access.BTIndex{d.PKGrowing, d.IXGrowing}, nil)
	return sess.Commit(tx)
}

// DeleteAt deletes growing-table row nid.
func (d *Dataset) DeleteAt(sess *engine.Session, nid int64) bool {
	tx := sess.Begin()
	sess.Delete(tx, d.PKGrowing, pk(d.Growing, nid), nid)
	return sess.Commit(tx)
}

// ExecOp dispatches a served OLTP statement by catalog name, mapping the
// wire argument onto a valid key for the target table. The bool pair is
// (statement outcome, name known).
func (d *Dataset) ExecOp(sess *engine.Session, name string, arg uint64) (bool, bool) {
	switch name {
	case "asdb.PointRead":
		return d.PointReadAt(sess, int64(arg%uint64(d.Big.NominalRows()))), true
	case "asdb.RangeRead":
		return d.RangeReadAt(sess, int64(arg%uint64(d.Small.NominalRows()))), true
	case "asdb.JoinRead":
		fid := int64(arg % uint64(d.Fixed.NominalRows()))
		nid := int64(arg % uint64(d.Big.NominalRows()))
		return d.JoinReadAt(sess, fid, nid), true
	case "asdb.Update":
		return d.UpdateAt(sess, int64(arg%uint64(d.Big.NominalRows()))), true
	case "asdb.Insert":
		return d.InsertRow(sess), true
	case "asdb.Delete":
		return d.DeleteAt(sess, int64(arg%uint64(d.Growing.NominalRows()))), true
	}
	return false, false
}

// SumBig builds the catalog's one analytical statement: a filtered
// scan-and-aggregate over the big scaling table (the operational store has
// no columnstore, so this is the row-scan HTAP query a reporting dashboard
// would run against the primary). sel is the predicate selectivity on v0.
func (d *Dataset) SumBig(sel float64) *opt.LNode {
	t := d.Big
	thr := int64(sel * float64(1<<30))
	v0 := t.Schema.Col("v0")
	scan := &opt.LNode{
		Kind: opt.LScan,
		Heap: access.Heap{T: t},
		CSI:  d.DB.CSIOf(t),
		Proj: []int{t.Schema.Col("id"), v0, t.Schema.Col("v1")},
		Pred: func(r exec.Row) bool { return r[v0] < thr },
		NPred: 1, PredCols: []int{v0},
		Sel: sel, Name: t.Name,
	}
	root := &opt.LNode{
		Kind: opt.LAgg, Left: scan,
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 2}, {Kind: exec.AggCount}},
		NGroups: 1, Name: "groupby",
	}
	root.Label = "asdb.SumBig"
	return root
}

// QueryOp resolves a served analytical statement by catalog name; the wire
// argument selects the selectivity cell in tenths (arg%8+1 → 0.1..0.8).
func (d *Dataset) QueryOp(name string, arg uint64) (*opt.LNode, bool) {
	if name != "asdb.SumBig" {
		return nil, false
	}
	return d.SumBig(float64(arg%8+1) / 10), true
}

// OpNames lists the served OLTP statement names in mix order; the serving
// workload generator picks from it with the closed-loop mix weights.
func OpNames() []string {
	return []string{
		"asdb.PointRead", "asdb.RangeRead", "asdb.JoinRead",
		"asdb.Update", "asdb.Insert", "asdb.Delete",
	}
}
