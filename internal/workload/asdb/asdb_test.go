package asdb

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

func tinyServer(t *testing.T, sf int) (*engine.Server, *Dataset) {
	t.Helper()
	d := Build(Config{SF: sf, ActualRowsPerSF: 10, Seed: 3})
	srv := engine.NewServer(engine.Config{Seed: 5})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	return srv, d
}

func TestScalingTables(t *testing.T) {
	d := Build(Config{SF: 10, ActualRowsPerSF: 10})
	if d.Big.ActualRows() != 100 {
		t.Fatalf("big actual = %d", d.Big.ActualRows())
	}
	if d.Big.NominalRows() != 10*bigRowsPerSF {
		t.Fatalf("big nominal = %d", d.Big.NominalRows())
	}
	d2 := Build(Config{SF: 30, ActualRowsPerSF: 10})
	if d2.DB.DataBytes() <= d.DB.DataBytes() {
		t.Fatal("data not scaling with SF")
	}
	// Index share is tiny (Table 2: 0.21 GB on 51 GB).
	if ratio := float64(d.DB.IndexBytes()) / float64(d.DB.DataBytes()); ratio > 0.05 {
		t.Fatalf("index/data ratio = %.3f, want small", ratio)
	}
}

func TestTable2SizeAnchor(t *testing.T) {
	// SF 2000 should land near the paper's 51.13 GB (within 25%).
	d := Build(Config{SF: 2000, ActualRowsPerSF: 2})
	gb := float64(d.DB.DataBytes()) / (1 << 30)
	if gb < 38 || gb > 64 {
		t.Fatalf("SF 2000 data = %.2f GB, want ~51 GB", gb)
	}
}

func TestMixRunsAllOps(t *testing.T) {
	srv, d := tinyServer(t, 10)
	var st Stats
	until := sim.Time(4 * sim.Second)
	RunClients(srv, d, 16, DefaultMix(), until, &st)
	srv.Sim.Run(until)
	srv.Stop()
	srv.Sim.Run(until + sim.Time(120*sim.Second))
	if st.Total < 50 {
		t.Fatalf("only %d ops", st.Total)
	}
	for _, name := range []string{"PointRead", "Update", "Insert", "Delete"} {
		if st.ByType[name] == 0 {
			t.Fatalf("op %s never ran: %v", name, st.ByType)
		}
	}
	if srv.Ctr.TxnCommits == 0 || srv.Ctr.SSDWriteBytes == 0 {
		t.Fatal("no commits or writes")
	}
	if w := srv.Locks.WaitingLongest(srv.Sim.Now()); w > 0 {
		t.Fatalf("stuck lock waiter: %v", w)
	}
	// Growing table grew.
	if d.Growing.NominalRows() <= int64(d.Cfg.SF)*growInitPerSF {
		t.Fatal("growing table did not grow")
	}
}
