// Package asdb implements a clone of the Azure SQL Database Benchmark
// (ASDB): a synthetic OLTP workload over fixed-size, scaling, and growing
// tables, driven by 128 client threads issuing a CRUD mix. The paper runs
// it at scale factors 2000 (51 GB, fits in memory) and 6000 (153 GB,
// does not).
//
// Scale mapping: scale factor units each contribute ~25.6 MB of nominal
// data (matching Table 2's 51.13 GB at SF 2000), split across two scaling
// tables; the growing table starts small and grows with inserts; fixed
// tables do not scale.
package asdb

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config selects the scale factor and generation density.
type Config struct {
	SF int
	// ActualRowsPerSF controls down-scaling of the scaling tables
	// (default 30 actual rows per SF unit for the big table).
	ActualRowsPerSF int
	Seed            int64
}

// Per-SF nominal cardinalities, tuned so SF 2000 lands near Table 2's
// 51.13 GB of data with ~0.21 GB of (clustered-internal) index.
const (
	bigRowsPerSF   = 60000 // x 320 B  = 19.2 MB/SF
	smallRowsPerSF = 40000 // x 160 B  = 6.4 MB/SF
	fixedRows      = 50000
	growInitPerSF  = 1000
)

// Dataset is a generated ASDB database.
type Dataset struct {
	Cfg Config
	DB  *engine.Database

	Fixed, Big, Small, Growing *storage.Table
	PKFixed, PKBig, PKSmall    *access.BTIndex
	PKGrowing, IXGrowing       *access.BTIndex

	rng *sim.RNG
}

func wideSchema(name string, payloadCols, colWidth int) *storage.Schema {
	cols := []storage.Column{{Name: "id", Type: storage.TInt, Width: 8}}
	for i := 0; i < payloadCols; i++ {
		cols = append(cols, storage.Column{
			Name: fmt.Sprintf("v%d", i), Type: storage.TInt, Width: colWidth,
		})
	}
	return storage.NewSchema(name, cols...)
}

// Build generates the dataset.
func Build(cfg Config) *Dataset {
	if cfg.SF <= 0 {
		cfg.SF = 10
	}
	if cfg.ActualRowsPerSF <= 0 {
		cfg.ActualRowsPerSF = 30
	}
	d := &Dataset{Cfg: cfg, rng: sim.NewRNG(cfg.Seed + int64(cfg.SF))}
	db := engine.NewDatabase(fmt.Sprintf("asdb-%d", cfg.SF))
	d.DB = db
	sf := int64(cfg.SF)

	// Fixed-size reference table.
	d.Fixed = db.AddTable(wideSchema("asdb_fixed", 6, 12), 50)
	for i := int64(0); i < fixedRows/50; i++ {
		d.Fixed.AppendLoad(d.row(7, i))
	}
	d.PKFixed = db.AddBTIndex("pk_fixed", d.Fixed, []string{"id"}, true, true)

	// Scaling tables: cardinality proportional to SF, constant during
	// the run.
	kBig := int64(bigRowsPerSF / cfg.ActualRowsPerSF)
	d.Big = db.AddTable(wideSchema("asdb_big", 12, 26), kBig)
	for i := int64(0); i < sf*int64(cfg.ActualRowsPerSF); i++ {
		d.Big.AppendLoad(d.row(13, i))
	}
	d.PKBig = db.AddBTIndex("pk_big", d.Big, []string{"id"}, true, true)

	kSmall := kBig
	d.Small = db.AddTable(wideSchema("asdb_small", 9, 17), kSmall)
	for i := int64(0); i < sf*smallRowsPerSF/kSmall; i++ {
		d.Small.AppendLoad(d.row(10, i))
	}
	d.PKSmall = db.AddBTIndex("pk_small", d.Small, []string{"id"}, true, true)

	// Growing table: sized like a scaling table initially, then grows and
	// shrinks during the run.
	d.Growing = db.AddTable(wideSchema("asdb_growing", 8, 20), kBig)
	for i := int64(0); i < sf*growInitPerSF/kBig+4; i++ {
		d.Growing.AppendLoad(d.row(9, i))
	}
	d.PKGrowing = db.AddBTIndex("pk_growing", d.Growing, []string{"id"}, true, true)
	d.IXGrowing = db.AddBTIndex("ix_growing_v0", d.Growing, []string{"v0"}, false, false)
	return d
}

func (d *Dataset) row(n int, id int64) []int64 {
	r := make([]int64, n)
	r[0] = id
	for i := 1; i < n; i++ {
		r[i] = d.rng.Int64n(1 << 30)
	}
	return r
}

// Mix is the ASDB operation mix in percent.
type Mix struct {
	PointRead float64 // single-row select on a scaling table
	RangeRead float64 // short range scan
	JoinRead  float64 // point read joined to the fixed table
	Update    float64 // single-row update
	Insert    float64 // insert into the growing table
	Delete    float64 // delete from the growing table
}

// DefaultMix returns the CRUD balance of the benchmark.
func DefaultMix() Mix {
	return Mix{
		PointRead: 35,
		RangeRead: 15,
		JoinRead:  10,
		Update:    20,
		Insert:    14,
		Delete:    6,
	}
}

// Stats counts operations.
type Stats struct {
	ByType map[string]int
	Total  int
}

type client struct {
	d    *Dataset
	sess *engine.Session
	g    *sim.RNG
	zBig *sim.Zipf
}

// The statement bodies live in serving.go so the network catalog can run
// them too; the closed-loop methods only pick the keys. Begin draws no
// randomness, so hoisting the key draw above it preserves the driver's
// RNG stream exactly.

func (c *client) pointRead() bool {
	return c.d.PointReadAt(c.sess, c.zBig.Next(c.g))
}

func (c *client) rangeRead() bool {
	return c.d.RangeReadAt(c.sess, c.g.Int64n(c.d.Small.NominalRows()))
}

func (c *client) joinRead() bool {
	fid := c.g.Int64n(c.d.Fixed.NominalRows())
	nid := c.zBig.Next(c.g)
	return c.d.JoinReadAt(c.sess, fid, nid)
}

func (c *client) update() bool {
	return c.d.UpdateAt(c.sess, c.zBig.Next(c.g))
}

func (c *client) insert() bool {
	return c.d.InsertRow(c.sess)
}

func (c *client) del() bool {
	return c.d.DeleteAt(c.sess, c.g.Int64n(c.d.Growing.NominalRows()))
}

// RunClients spawns the closed-loop client threads (the paper uses 128)
// until the given simulated time or server stop.
func RunClients(srv *engine.Server, d *Dataset, clients int, mix Mix, until sim.Time, st *Stats) {
	if st.ByType == nil {
		st.ByType = make(map[string]int)
	}
	type entry struct {
		name string
		w    float64
		fn   func(*client) bool
	}
	entries := []entry{
		{"PointRead", mix.PointRead, (*client).pointRead},
		{"RangeRead", mix.RangeRead, (*client).rangeRead},
		{"JoinRead", mix.JoinRead, (*client).joinRead},
		{"Update", mix.Update, (*client).update},
		{"Insert", mix.Insert, (*client).insert},
		{"Delete", mix.Delete, (*client).del},
	}
	var totalW float64
	for _, e := range entries {
		totalW += e.w
	}
	for i := 0; i < clients; i++ {
		srv.Sim.Spawn("asdb-client", func(p *sim.Proc) {
			c := &client{
				d:    d,
				sess: srv.Open(p).BindCtx(),
				g:    srv.Sim.RNG().Fork(),
				zBig: sim.NewZipf(d.Big.NominalRows(), 0.6),
			}
			defer c.sess.Close()
			for !srv.Stopped() && p.Now() < until {
				pick := c.g.Float64() * totalW
				for _, e := range entries {
					pick -= e.w
					if pick <= 0 {
						// Exec attaches per-attempt statement counters,
						// folds the attempt into the server's query stats
						// ("asdb.<OpName>"), and retries transient aborts
						// under the session policy.
						ok := c.sess.Exec("asdb."+e.name, c.g, func() bool { return e.fn(c) })
						// Without a retry policy, count every attempt as
						// the pre-retry driver did (aborts included).
						if ok || !c.sess.Retry.Enabled() {
							st.ByType[e.name]++
							st.Total++
						}
						break
					}
				}
			}
		})
	}
}
