// Package openloop generates open-loop traffic for the serving front
// end: connections arrive by a Poisson process (optionally multiplied
// through a storm window), each issues a geometrically-distributed number
// of requests separated by exponential think times, then disconnects —
// connection churn, not a fixed closed-loop fleet. Offered load is set by
// the arrival rate and does not back off when the server slows, which is
// what makes saturation and shedding observable.
//
// All randomness is drawn at Build time from one RNG in a fixed order,
// so a Plan is a pure function of (Config, seed): the spawner replays it
// without touching an RNG, and determinism is testable by comparing
// plans.
package openloop

import (
	"repro/internal/client"
	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload/asdb"
)

// Storm multiplies the arrival rate by X inside [At, At+Dur) — the
// burst/overload scenario.
type Storm struct {
	At  sim.Duration
	Dur sim.Duration
	X   float64
}

// Config shapes the offered load.
type Config struct {
	Rate       float64      // mean connection arrivals per second
	Horizon    sim.Duration // generate arrivals in [0, Horizon)
	ReqPerConn float64      // mean requests per connection (geometric, min 1; default 8)
	Think      sim.Duration // mean think time between requests (default 50ms)
	QueryFrac  float64      // fraction of requests that are analytical (default 0)
	Storm      *Storm       // optional burst window
}

func (c Config) withDefaults() Config {
	if c.ReqPerConn <= 0 {
		c.ReqPerConn = 8
	}
	if c.Think <= 0 {
		c.Think = 50 * sim.Millisecond
	}
	return c
}

// Req is one planned request.
type Req struct {
	Think sim.Duration // think time before issuing
	Query bool         // analytical (KQuery) vs OLTP (KExec)
	Name  string       // catalog statement name
	Arg   uint64       // wire argument (key / selectivity cell)
}

// ConnPlan is one planned connection.
type ConnPlan struct {
	At   sim.Time // arrival (dial) time
	Reqs []Req
}

// Plan is a fully-materialized traffic schedule.
type Plan struct {
	Cfg   Config
	Conns []ConnPlan
	NReq  int // total requests across all connections
}

// OfferedRPS is the average request rate the plan offers over the horizon.
func (pl *Plan) OfferedRPS() float64 {
	if pl.Cfg.Horizon <= 0 {
		return 0
	}
	return float64(pl.NReq) / pl.Cfg.Horizon.Seconds()
}

// expDur draws an exponential duration with the given mean.
func expDur(g *sim.RNG, mean float64) sim.Duration {
	return sim.DurationOf(g.Exp(mean))
}

// Build materializes the schedule. The key-skew of the closed-loop ASDB
// driver is preserved by drawing request keys from the same Zipf the
// clients use (over a fixed large domain; the server maps them onto
// table cardinalities).
func Build(cfg Config, g *sim.RNG) *Plan {
	cfg = cfg.withDefaults()
	pl := &Plan{Cfg: cfg}
	names := asdb.OpNames()
	mix := asdb.DefaultMix()
	weights := []float64{mix.PointRead, mix.RangeRead, mix.JoinRead,
		mix.Update, mix.Insert, mix.Delete}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	zKey := sim.NewZipf(1<<20, 0.6)

	var at sim.Duration
	for {
		rate := cfg.Rate
		if s := cfg.Storm; s != nil && at >= s.At && at < s.At+s.Dur && s.X > 0 {
			rate *= s.X
		}
		if rate <= 0 {
			break
		}
		at += expDur(g, 1/rate)
		if at >= cfg.Horizon {
			break
		}
		c := ConnPlan{At: sim.Time(at)}
		// Geometric request count with the configured mean, min 1.
		nreq := 1
		for g.Float64() > 1/cfg.ReqPerConn {
			nreq++
		}
		for r := 0; r < nreq; r++ {
			req := Req{Think: expDur(g, cfg.Think.Seconds())}
			if g.Float64() < cfg.QueryFrac {
				req.Query = true
				req.Name = "asdb.SumBig"
				req.Arg = uint64(g.Int64n(8))
			} else {
				pick := g.Float64() * totalW
				for i, w := range weights {
					pick -= w
					if pick <= 0 {
						req.Name = names[i]
						break
					}
				}
				req.Arg = uint64(zKey.Next(g))
			}
			c.Reqs = append(c.Reqs, req)
		}
		pl.Conns = append(pl.Conns, c)
		pl.NReq += nreq
	}
	return pl
}

// Sample is one completed request observation.
type Sample struct {
	At   sim.Time     // completion time
	Lat  sim.Duration // request latency (send to reply)
	OK   bool
	Code proto.Code // reply code when !OK
}

// Stats accumulates the run's observations. The sim's lockstep execution
// makes shared mutation from many procs safe.
type Stats struct {
	Sent    int64
	OK      int64
	Shed    int64 // CodeOverloaded replies
	Failed  int64 // other error replies
	Refused int64 // dials refused / failed handshakes
	Dropped int64 // transport errors mid-request (stop, close)
	Samples []Sample
}

// RStats accumulates a resilient-client run's observations: per-request
// outcomes at the client boundary, the client-side ack log, and the
// shared resilience metrics.
type RStats struct {
	Sent        int64
	Acked       int64 // execs acknowledged OK
	Failed      int64 // execs the server ran and failed
	NotExecuted int64 // execs that exhausted retries without executing
	Unknown     int64 // execs whose outcome is ambiguous (never retried)
	QueryOK     int64
	QueryFailed int64
	Samples     []Sample
	Acks        []client.AckKey // client-observed acks, in ack order
	M           client.Metrics
}

// RunResilient replays the plan through resilient clients: unlike Run,
// a connection survives resets, partitions, and failover — the client
// reconnects, rotates endpoints, and keeps issuing its script. Each
// connection's backoff-jitter stream forks from g in plan order.
func RunResilient(sm *sim.Sim, nw *net.Network, rcfg client.RConfig, pl *Plan, st *RStats, g *sim.RNG) {
	for i := range pl.Conns {
		cp := &pl.Conns[i]
		jg := g.Fork()
		sm.Spawn("resilient-conn", func(p *sim.Proc) {
			r := client.NewResilient(nw, rcfg, &st.M, jg, "chaos")
			r.OnAck = func(k client.AckKey) { st.Acks = append(st.Acks, k) }
			defer r.Close()
			if wait := cp.At - p.Now(); wait > 0 {
				p.Sleep(sim.Duration(wait))
			}
			for _, rq := range cp.Reqs {
				if rq.Think > 0 {
					p.Sleep(rq.Think)
				}
				t0 := p.Now()
				st.Sent++
				if rq.Query {
					rep, err := r.Query(p, rq.Name, rq.Arg)
					ok := err == nil && rep.OK
					st.Samples = append(st.Samples, Sample{
						At: p.Now(), Lat: sim.Duration(p.Now() - t0), OK: ok, Code: rep.Code,
					})
					if ok {
						st.QueryOK++
					} else {
						st.QueryFailed++
					}
					continue
				}
				rep, out := r.Exec(p, rq.Name, rq.Arg)
				st.Samples = append(st.Samples, Sample{
					At: p.Now(), Lat: sim.Duration(p.Now() - t0),
					OK: out == client.OutcomeAcked, Code: rep.Code,
				})
				switch out {
				case client.OutcomeAcked:
					st.Acked++
				case client.OutcomeFailed:
					st.Failed++
				case client.OutcomeNotExecuted:
					st.NotExecuted++
				case client.OutcomeUnknown:
					st.Unknown++
				}
			}
		})
	}
}

// Run spawns one proc per planned connection against addr on nw. The
// procs sleep to their arrival times, replay their request scripts, and
// record latency samples. Run returns immediately; the caller advances
// the simulated clock.
func Run(sm *sim.Sim, nw *net.Network, addr string, pl *Plan, st *Stats) {
	for i := range pl.Conns {
		cp := &pl.Conns[i]
		sm.Spawn("openloop-conn", func(p *sim.Proc) {
			if wait := cp.At - p.Now(); wait > 0 {
				p.Sleep(sim.Duration(wait))
			}
			cl, err := client.Dial(p, nw, addr, "openloop")
			if err != nil {
				st.Refused++
				return
			}
			defer cl.Close(p)
			for _, rq := range cp.Reqs {
				if rq.Think > 0 {
					p.Sleep(rq.Think)
				}
				t0 := p.Now()
				st.Sent++
				var rep client.Reply
				if rq.Query {
					rep, err = cl.Query(p, rq.Name, rq.Arg)
				} else {
					rep, err = cl.Exec(p, rq.Name, rq.Arg)
				}
				if err != nil {
					st.Dropped++
					return
				}
				s := Sample{At: p.Now(), Lat: sim.Duration(p.Now() - t0), OK: rep.OK, Code: rep.Code}
				st.Samples = append(st.Samples, s)
				switch {
				case rep.OK:
					st.OK++
				case rep.Code == proto.CodeOverloaded:
					st.Shed++
				case rep.Code == proto.CodeShutdown:
					st.Dropped++
					return
				default:
					st.Failed++
				}
			}
		})
	}
}
