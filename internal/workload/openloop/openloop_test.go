package openloop

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func plan(seed int64, cfg Config) *Plan {
	return Build(cfg, sim.NewRNG(seed))
}

// TestBuildIsDeterministic pins the generator's core contract: the plan
// is a pure function of (Config, seed).
func TestBuildIsDeterministic(t *testing.T) {
	cfg := Config{
		Rate: 200, Horizon: 5 * sim.Second, QueryFrac: 0.05,
		Storm: &Storm{At: 2 * sim.Second, Dur: sim.Second, X: 4},
	}
	a, b := plan(7, cfg), plan(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := plan(8, cfg)
	if reflect.DeepEqual(a.Conns, c.Conns) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestArrivalsRespectHorizonAndOrder(t *testing.T) {
	pl := plan(1, Config{Rate: 500, Horizon: 4 * sim.Second})
	if len(pl.Conns) == 0 {
		t.Fatal("no arrivals generated")
	}
	var prev sim.Time
	for _, c := range pl.Conns {
		if c.At < prev {
			t.Fatalf("arrivals out of order: %v after %v", c.At, prev)
		}
		if c.At >= sim.Time(4*sim.Second) {
			t.Fatalf("arrival %v past horizon", c.At)
		}
		if len(c.Reqs) == 0 {
			t.Fatal("connection with no requests")
		}
		prev = c.At
	}
	if pl.OfferedRPS() <= 0 {
		t.Fatalf("OfferedRPS = %v", pl.OfferedRPS())
	}
}

// TestStormMultipliesArrivalRate checks the burst window: arrivals per
// second inside the storm should be several times the base rate.
func TestStormMultipliesArrivalRate(t *testing.T) {
	cfg := Config{
		Rate: 200, Horizon: 9 * sim.Second,
		Storm: &Storm{At: 3 * sim.Second, Dur: 3 * sim.Second, X: 5},
	}
	pl := plan(3, cfg)
	inStorm, outStorm := 0, 0
	for _, c := range pl.Conns {
		at := sim.Duration(c.At)
		if at >= 3*sim.Second && at < 6*sim.Second {
			inStorm++
		} else {
			outStorm++
		}
	}
	// Storm window is 1/3 of the horizon at 5x rate: expect roughly
	// 5x the per-second density; require at least 3x to stay robust.
	if float64(inStorm) < 3*float64(outStorm)/2 {
		t.Fatalf("storm density too low: %d in, %d out", inStorm, outStorm)
	}
}

func TestRequestMixCoversCatalog(t *testing.T) {
	pl := plan(5, Config{Rate: 400, Horizon: 10 * sim.Second, QueryFrac: 0.1})
	seen := map[string]int{}
	queries := 0
	for _, c := range pl.Conns {
		for _, r := range c.Reqs {
			seen[r.Name]++
			if r.Query {
				queries++
				if r.Name != "asdb.SumBig" {
					t.Fatalf("query request named %q", r.Name)
				}
			}
		}
	}
	for _, name := range []string{"asdb.PointRead", "asdb.RangeRead",
		"asdb.JoinRead", "asdb.Update", "asdb.Insert", "asdb.Delete"} {
		if seen[name] == 0 {
			t.Fatalf("mix never produced %s: %v", name, seen)
		}
	}
	if queries == 0 {
		t.Fatal("QueryFrac produced no analytical requests")
	}
}
