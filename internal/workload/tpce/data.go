// Package tpce implements a TPC-E-like brokerage OLTP workload: the
// customer/account/trade schema core, a seeded generator, and a driver
// running a representative subset of the benchmark's transaction types
// with the spec's read/write balance (~77% reads). The paper runs TPC-E
// at scale factors 5000 and 15000 (customers).
//
// Scale mapping: customers, accounts, brokers, and securities generate at
// K = 1 (their cardinalities are modest and their *contention* behaviour
// — fewer customers means hotter rows — is exactly what Table 3
// measures). The trade history tables (trade, trade_history, settlement,
// cash_transaction) are the bulk of the 32–121 GB database and scale down
// with a shared replication factor.
package tpce

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config selects the scale factor (number of customers).
type Config struct {
	Customers int
	// ActualTradesPerCustomer controls down-scaling of the trade history
	// (nominal is 17,280 initial trades per customer). Default 4.
	ActualTradesPerCustomer int
	Seed                    int64
	// WithCSI adds an updatable nonclustered columnstore index on the
	// trade table (the HTAP configuration of Section 2.3).
	WithCSI bool
}

// Spec-derived per-customer cardinalities.
const (
	accountsPerCustomer = 5
	securitiesPer1000   = 685
	brokersPer100       = 1
	// The spec loads 125 initial trade days at 8 trades/customer/day
	// plus intra-day activity: ~17,280 initial trades per customer,
	// which lands the 5000-customer database near the paper's 32 GB.
	nominalTradesPerCust = 17280
	holdingsPerAccount   = 12
)

// Dataset is a generated TPC-E database.
type Dataset struct {
	Cfg Config
	DB  *engine.Database

	Customer, Account, Broker, Security, LastTrade   *storage.Table
	Trade, TradeHistory, Settlement, CashTx, Holding *storage.Table
	Company, DailyMarket                             *storage.Table

	PKCustomer, PKAccount, PKBroker, PKSecurity *access.BTIndex
	PKTrade, IXTradeAcct, IXTradeSec            *access.BTIndex
	PKLastTrade, PKHoldSum, PKCompany           *access.BTIndex
	IXHolding, PKDailyMarket                    *access.BTIndex
	HoldingSummary                              *storage.Table

	TradeCSI *access.CSI

	KTrade int64

	rng *sim.RNG
}

// Build generates the dataset.
func Build(cfg Config) *Dataset {
	if cfg.Customers <= 0 {
		cfg.Customers = 1000
	}
	if cfg.ActualTradesPerCustomer <= 0 {
		cfg.ActualTradesPerCustomer = 4
	}
	d := &Dataset{Cfg: cfg, rng: sim.NewRNG(cfg.Seed + int64(cfg.Customers))}
	db := engine.NewDatabase(fmt.Sprintf("tpce-%d", cfg.Customers))
	d.DB = db

	nCust := int64(cfg.Customers)
	nAcct := nCust * accountsPerCustomer
	nSec := nCust * securitiesPer1000 / 1000
	if nSec < 10 {
		nSec = 10
	}
	nBrok := nCust / 100
	if nBrok < 2 {
		nBrok = 2
	}
	d.KTrade = nominalTradesPerCust / int64(cfg.ActualTradesPerCustomer)
	nTradeActual := nCust * int64(cfg.ActualTradesPerCustomer)

	d.buildFixedSide(db, nCust, nAcct, nBrok, nSec)
	d.buildTradeSide(db, nTradeActual, nAcct, nSec, nBrok)

	if cfg.WithCSI {
		d.TradeCSI = db.AddCSI(d.Trade)
	}
	return d
}

func (d *Dataset) buildFixedSide(db *engine.Database, nCust, nAcct, nBrok, nSec int64) {
	d.Customer = db.AddTable(storage.NewSchema("customer",
		storage.Column{Name: "c_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "c_tax_id", Type: storage.TInt, Width: 12},
		storage.Column{Name: "c_name", Type: storage.TStr, Width: 50},
		storage.Column{Name: "c_tier", Type: storage.TInt, Width: 1},
		storage.Column{Name: "c_dob", Type: storage.TDate, Width: 4},
		storage.Column{Name: "c_area", Type: storage.TInt, Width: 60},
	), 1)
	cn := d.Customer.Pool(2)
	for i := int64(0); i < nCust; i++ {
		d.Customer.AppendLoad([]int64{i, i * 7, cn.Code(fmt.Sprintf("Cust#%08d", i)), d.rng.Int64n(3) + 1, d.rng.Int64n(20000), i % 1000})
	}
	d.PKCustomer = db.AddBTIndex("pk_customer", d.Customer, []string{"c_id"}, true, true)

	d.Account = db.AddTable(storage.NewSchema("customer_account",
		storage.Column{Name: "ca_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "ca_c_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "ca_b_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "ca_bal", Type: storage.TDecimal, Width: 12},
		storage.Column{Name: "ca_name", Type: storage.TStr, Width: 50},
	), 1)
	an := d.Account.Pool(4)
	for i := int64(0); i < nAcct; i++ {
		d.Account.AppendLoad([]int64{i, i / accountsPerCustomer, i % nBrok, 100000 + d.rng.Int64n(10000000), an.Code(fmt.Sprintf("Acct#%08d", i))})
	}
	d.PKAccount = db.AddBTIndex("pk_account", d.Account, []string{"ca_id"}, true, true)

	d.Broker = db.AddTable(storage.NewSchema("broker",
		storage.Column{Name: "b_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "b_name", Type: storage.TStr, Width: 49},
		storage.Column{Name: "b_num_trades", Type: storage.TInt, Width: 8},
		storage.Column{Name: "b_comm_total", Type: storage.TDecimal, Width: 12},
	), 1)
	bn := d.Broker.Pool(1)
	for i := int64(0); i < nBrok; i++ {
		d.Broker.AppendLoad([]int64{i, bn.Code(fmt.Sprintf("Broker#%04d", i)), 0, 0})
	}
	d.PKBroker = db.AddBTIndex("pk_broker", d.Broker, []string{"b_id"}, true, true)

	d.Company = db.AddTable(storage.NewSchema("company",
		storage.Column{Name: "co_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "co_name", Type: storage.TStr, Width: 60},
		storage.Column{Name: "co_sector", Type: storage.TInt, Width: 2},
	), 1)
	con := d.Company.Pool(1)
	for i := int64(0); i < nSec; i++ {
		d.Company.AppendLoad([]int64{i, con.Code(fmt.Sprintf("Company#%06d", i)), i % 12})
	}
	d.PKCompany = db.AddBTIndex("pk_company", d.Company, []string{"co_id"}, true, true)

	d.Security = db.AddTable(storage.NewSchema("security",
		storage.Column{Name: "s_symb", Type: storage.TInt, Width: 15},
		storage.Column{Name: "s_co_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "s_name", Type: storage.TStr, Width: 70},
		storage.Column{Name: "s_num_out", Type: storage.TInt, Width: 8},
	), 1)
	sn := d.Security.Pool(2)
	for i := int64(0); i < nSec; i++ {
		d.Security.AppendLoad([]int64{i, i, sn.Code(fmt.Sprintf("Sec#%06d", i)), 1000000 + d.rng.Int64n(1e9)})
	}
	d.PKSecurity = db.AddBTIndex("pk_security", d.Security, []string{"s_symb"}, true, true)

	d.LastTrade = db.AddTable(storage.NewSchema("last_trade",
		storage.Column{Name: "lt_s_symb", Type: storage.TInt, Width: 15},
		storage.Column{Name: "lt_price", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "lt_vol", Type: storage.TInt, Width: 8},
	), 1)
	for i := int64(0); i < nSec; i++ {
		d.LastTrade.AppendLoad([]int64{i, 2000 + d.rng.Int64n(10000), 0})
	}
	d.PKLastTrade = db.AddBTIndex("pk_last_trade", d.LastTrade, []string{"lt_s_symb"}, true, true)

	d.DailyMarket = db.AddTable(storage.NewSchema("daily_market",
		storage.Column{Name: "dm_s_symb", Type: storage.TInt, Width: 15},
		storage.Column{Name: "dm_date", Type: storage.TDate, Width: 4},
		storage.Column{Name: "dm_close", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "dm_vol", Type: storage.TInt, Width: 8},
	), 1)
	// Five years of daily history per security would dominate memory at
	// K=1; generate a 25-day window (costing uses nominal geometry).
	for i := int64(0); i < nSec; i++ {
		for day := int64(0); day < 25; day++ {
			d.DailyMarket.AppendLoad([]int64{i, day, 2000 + d.rng.Int64n(10000), d.rng.Int64n(1e7)})
		}
	}
	d.PKDailyMarket = db.AddBTIndex("pk_daily_market", d.DailyMarket, []string{"dm_s_symb", "dm_date"}, true, true)

	d.HoldingSummary = db.AddTable(storage.NewSchema("holding_summary",
		storage.Column{Name: "hs_ca_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "hs_s_symb", Type: storage.TInt, Width: 15},
		storage.Column{Name: "hs_qty", Type: storage.TInt, Width: 8},
	), 1)
	nSecL := nSec
	for i := int64(0); i < nAcct; i++ {
		// Two summary positions per account on average.
		for j := int64(0); j < 2; j++ {
			d.HoldingSummary.AppendLoad([]int64{i, (i*3 + j*7) % nSecL, d.rng.Int64n(800) + 100})
		}
	}
	d.PKHoldSum = db.AddBTIndex("pk_holding_summary", d.HoldingSummary, []string{"hs_ca_id", "hs_s_symb"}, true, true)
}

func (d *Dataset) buildTradeSide(db *engine.Database, nTrade, nAcct, nSec, nBrok int64) {
	d.Trade = db.AddTable(storage.NewSchema("trade",
		storage.Column{Name: "t_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "t_dts", Type: storage.TDate, Width: 8},
		storage.Column{Name: "t_st", Type: storage.TInt, Width: 4},
		storage.Column{Name: "t_tt", Type: storage.TInt, Width: 3},
		storage.Column{Name: "t_s_symb", Type: storage.TInt, Width: 15},
		storage.Column{Name: "t_qty", Type: storage.TInt, Width: 4},
		storage.Column{Name: "t_bid_price", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "t_ca_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "t_exec_name", Type: storage.TStr, Width: 49},
		storage.Column{Name: "t_trade_price", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "t_chrg", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "t_comm", Type: storage.TDecimal, Width: 8},
	), d.KTrade)
	en := d.Trade.Pool(8)
	execName := en.Code("exec")
	for i := int64(0); i < nTrade; i++ {
		price := 2000 + d.rng.Int64n(10000)
		// Keys and timestamps live at nominal scale (i * K) so that
		// window predicates over the nominal id space select correctly.
		d.Trade.AppendLoad([]int64{
			i * d.KTrade, i * d.KTrade, 2, d.rng.Int64n(5), d.rng.Int64n(nSec), (d.rng.Int64n(8) + 1) * 100,
			price, d.rng.Int64n(nAcct), execName, price, 1999, price / 100,
		})
	}
	d.PKTrade = db.AddBTIndex("pk_trade", d.Trade, []string{"t_id"}, true, true)
	d.IXTradeAcct = db.AddBTIndex("ix_trade_acct", d.Trade, []string{"t_ca_id", "t_dts"}, false, false)
	d.IXTradeSec = db.AddBTIndex("ix_trade_sec", d.Trade, []string{"t_s_symb", "t_dts"}, false, false)

	d.TradeHistory = db.AddTable(storage.NewSchema("trade_history",
		storage.Column{Name: "th_t_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "th_dts", Type: storage.TDate, Width: 8},
		storage.Column{Name: "th_st", Type: storage.TInt, Width: 4},
	), d.KTrade)
	for i := int64(0); i < nTrade*2; i++ {
		d.TradeHistory.AppendLoad([]int64{i / 2, i / 2, i % 2})
	}
	db.AddBTIndex("pk_trade_history", d.TradeHistory, []string{"th_t_id", "th_st"}, true, true)

	d.Settlement = db.AddTable(storage.NewSchema("settlement",
		storage.Column{Name: "se_t_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "se_cash", Type: storage.TInt, Width: 1},
		storage.Column{Name: "se_amt", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "se_due", Type: storage.TDate, Width: 4},
	), d.KTrade)
	for i := int64(0); i < nTrade; i++ {
		d.Settlement.AppendLoad([]int64{i, 1, d.rng.Int64n(1000000), i % 3650})
	}
	db.AddBTIndex("pk_settlement", d.Settlement, []string{"se_t_id"}, true, true)

	d.CashTx = db.AddTable(storage.NewSchema("cash_transaction",
		storage.Column{Name: "ct_t_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "ct_dts", Type: storage.TDate, Width: 8},
		storage.Column{Name: "ct_amt", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "ct_name", Type: storage.TStr, Width: 100},
	), d.KTrade)
	ctn := d.CashTx.Pool(3)
	ctName := ctn.Code("cash settlement")
	for i := int64(0); i < nTrade; i++ {
		d.CashTx.AppendLoad([]int64{i, i, d.rng.Int64n(1000000), ctName})
	}
	db.AddBTIndex("pk_cash_tx", d.CashTx, []string{"ct_t_id"}, true, true)

	d.Holding = db.AddTable(storage.NewSchema("holding",
		storage.Column{Name: "h_t_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "h_ca_id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "h_s_symb", Type: storage.TInt, Width: 15},
		storage.Column{Name: "h_price", Type: storage.TDecimal, Width: 8},
		storage.Column{Name: "h_qty", Type: storage.TInt, Width: 4},
	), d.KTrade/4+1)
	kHold := d.KTrade/4 + 1
	nHold := nAcct * holdingsPerAccount / kHold
	if nHold < nAcct/4 {
		nHold = nAcct / 4
	}
	if nHold < 16 {
		nHold = 16
	}
	for i := int64(0); i < nHold; i++ {
		d.Holding.AppendLoad([]int64{i, i % nAcct, d.rng.Int64n(nSec), 2000 + d.rng.Int64n(10000), (d.rng.Int64n(8) + 1) * 100})
	}
	d.IXHolding = db.AddBTIndex("ix_holding_acct", d.Holding, []string{"h_ca_id"}, false, false)
	db.AddBTIndex("pk_holding", d.Holding, []string{"h_t_id"}, true, true)

	_ = nBrok
}

// NSec returns the number of securities.
func (d *Dataset) NSec() int64 { return d.Security.ActualRows() }

// NAcct returns the number of accounts.
func (d *Dataset) NAcct() int64 { return d.Account.ActualRows() }

// NBroker returns the number of brokers.
func (d *Dataset) NBroker() int64 { return d.Broker.ActualRows() }
