package tpce

import (
	"repro/internal/access"
	"repro/internal/exec"
	"repro/internal/opt"
	"repro/internal/sim"
)

// Analytical queries for the HTAP configuration (Section 2.3): four
// distinct queries over the large, fast-growing trade table (through its
// updatable columnstore index), run sequentially by the analytical user.

// AnalyticalQuery returns query n (0..3).
func (d *Dataset) AnalyticalQuery(n int, g *sim.RNG) *opt.LNode {
	var q *opt.LNode
	switch n % 4 {
	case 0:
		q = d.qaVolumeBySector(g)
		q.Label = "tpce.QA.VolumeBySector"
	case 1:
		q = d.qaBrokerCommission(g)
		q.Label = "tpce.QA.BrokerCommission"
	case 2:
		q = d.qaDailyActivity(g)
		q.Label = "tpce.QA.DailyActivity"
	default:
		q = d.qaBigAccounts(g)
		q.Label = "tpce.QA.BigAccounts"
	}
	return q
}

// NumAnalytical is the number of HTAP analytical queries.
const NumAnalytical = 4

// qaVolumeBySector: total traded volume and value by company sector
// (trade ⋈ security ⋈ company, aggregate).
func (d *Dataset) qaVolumeBySector(g *sim.RNG) *opt.LNode {
	tSymb := d.Trade.Schema.Col("t_s_symb")
	tQty := d.Trade.Schema.Col("t_qty")
	tPrice := d.Trade.Schema.Col("t_trade_price")
	trade := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Trade}, CSI: d.TradeCSI,
		Proj: []int{tSymb, tQty, tPrice}, Sel: 1, Name: "trade",
	}
	sec := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Security},
		CSI:  d.DB.CSIOf(d.Security),
		Proj: []int{d.Security.Schema.Col("s_symb"), d.Security.Schema.Col("s_co_id")},
		Sel:  1, Name: "security",
	}
	co := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Company},
		CSI:  d.DB.CSIOf(d.Company),
		Proj: []int{d.Company.Schema.Col("co_id"), d.Company.Schema.Col("co_sector")},
		Sel:  1, Name: "company",
	}
	j1 := &opt.LNode{
		Kind: opt.LJoin, Left: trade, Right: sec,
		LeftKeys: []int{0}, RightKeys: []int{0},
		JoinType: exec.InnerJoin, FK: true,
		InnerIndex: d.PKSecurity, InnerProj: sec.Proj, Name: "t_sec",
	}
	// Layout: t_symb, t_qty, t_price, s_symb, s_co_id.
	j2 := &opt.LNode{
		Kind: opt.LJoin, Left: j1, Right: co,
		LeftKeys: []int{4}, RightKeys: []int{0},
		JoinType: exec.InnerJoin, FK: true,
		InnerIndex: d.PKCompany, InnerProj: co.Proj, Name: "sec_co",
	}
	// Layout: + co_id, co_sector (5, 6).
	proj := &opt.LNode{
		Kind: opt.LProject, Left: j2,
		Exprs: []func(exec.Row) int64{
			func(r exec.Row) int64 { return r[6] },              // sector
			func(r exec.Row) int64 { return r[1] },              // qty
			func(r exec.Row) int64 { return r[1] * r[2] / 100 }, // value
		},
		Name: "compute",
	}
	agg := &opt.LNode{
		Kind: opt.LAgg, Left: proj,
		Groups: []int{0},
		Aggs: []exec.AggSpec{
			{Kind: exec.AggSum, Col: 1}, {Kind: exec.AggSum, Col: 2}, {Kind: exec.AggCount},
		},
		NGroups: 12, Name: "by_sector",
	}
	return &opt.LNode{Kind: opt.LSort, Left: agg, Keys: []exec.SortKey{{Col: 0}}, Name: "order"}
}

// qaBrokerCommission: top brokers by commissions on completed trades.
func (d *Dataset) qaBrokerCommission(g *sim.RNG) *opt.LNode {
	tCA := d.Trade.Schema.Col("t_ca_id")
	tComm := d.Trade.Schema.Col("t_comm")
	tSt := d.Trade.Schema.Col("t_st")
	trade := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Trade}, CSI: d.TradeCSI,
		Proj: []int{tCA, tComm},
		Pred: func(r exec.Row) bool { return r[tSt] == 2 }, NPred: 1,
		PredCols: []int{tSt}, Sel: 0.8, Name: "trade",
	}
	acct := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Account},
		CSI:  d.DB.CSIOf(d.Account),
		Proj: []int{d.Account.Schema.Col("ca_id"), d.Account.Schema.Col("ca_b_id")},
		Sel:  1, Name: "account",
	}
	j := &opt.LNode{
		Kind: opt.LJoin, Left: trade, Right: acct,
		LeftKeys: []int{0}, RightKeys: []int{0},
		JoinType: exec.InnerJoin, FK: true,
		InnerIndex: d.PKAccount, InnerProj: acct.Proj, Name: "t_acct",
	}
	// Layout: t_ca_id, t_comm, ca_id, ca_b_id.
	agg := &opt.LNode{
		Kind: opt.LAgg, Left: j,
		Groups:  []int{3},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}, {Kind: exec.AggCount}},
		NGroups: float64(d.NBroker()), Name: "by_broker",
	}
	return &opt.LNode{
		Kind: opt.LTop, Left: agg,
		Keys: []exec.SortKey{{Col: 1, Desc: true}}, Limit: 20, Name: "top_brokers",
	}
}

// qaDailyActivity: trade counts and volume by day for a recent window.
func (d *Dataset) qaDailyActivity(g *sim.RNG) *opt.LNode {
	tDts := d.Trade.Schema.Col("t_dts")
	tQty := d.Trade.Schema.Col("t_qty")
	n := d.Trade.NominalRows()
	lo := n * 3 / 4 // recent quarter of the history
	trade := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Trade}, CSI: d.TradeCSI,
		Proj:  []int{tDts, tQty},
		Pred:  func(r exec.Row) bool { return r[tDts] >= lo },
		NPred: 1, PredCols: []int{tDts}, Sel: 0.25, Name: "trade",
	}
	proj := &opt.LNode{
		Kind: opt.LProject, Left: trade,
		Exprs: []func(exec.Row) int64{
			func(r exec.Row) int64 { return r[0] / 1000 }, // bucket
			func(r exec.Row) int64 { return r[1] },
		},
		Name: "bucket",
	}
	agg := &opt.LNode{
		Kind: opt.LAgg, Left: proj,
		Groups:  []int{0},
		Aggs:    []exec.AggSpec{{Kind: exec.AggCount}, {Kind: exec.AggSum, Col: 1}},
		NGroups: float64(n / 1000 / 4), Name: "by_day",
	}
	return &opt.LNode{Kind: opt.LSort, Left: agg, Keys: []exec.SortKey{{Col: 0}}, Name: "order"}
}

// qaBigAccounts: accounts with the largest traded value (trade grouped by
// account — a large aggregate).
func (d *Dataset) qaBigAccounts(g *sim.RNG) *opt.LNode {
	tCA := d.Trade.Schema.Col("t_ca_id")
	tQty := d.Trade.Schema.Col("t_qty")
	tPrice := d.Trade.Schema.Col("t_trade_price")
	trade := &opt.LNode{
		Kind: opt.LScan, Heap: access.Heap{T: d.Trade}, CSI: d.TradeCSI,
		Proj: []int{tCA, tQty, tPrice}, Sel: 1, Name: "trade",
	}
	proj := &opt.LNode{
		Kind: opt.LProject, Left: trade,
		Exprs: []func(exec.Row) int64{
			func(r exec.Row) int64 { return r[0] },
			func(r exec.Row) int64 { return r[1] * r[2] / 100 },
		},
		Name: "value",
	}
	agg := &opt.LNode{
		Kind: opt.LAgg, Left: proj,
		Groups:  []int{0},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
		NGroups: float64(d.NAcct()), OutWeight: 1, Name: "by_account",
	}
	return &opt.LNode{
		Kind: opt.LTop, Left: agg,
		Keys: []exec.SortKey{{Col: 1, Desc: true}}, Limit: 50, Name: "top_accounts",
	}
}
