package tpce

import (
	"repro/internal/engine"
	"repro/internal/sim"
)

// Mix is the transaction mix in percent. The default follows the TPC-E
// customer-emulator weights, with Trade-Result arriving at the market
// rate (paired with orders) and Market-Feed folded into Trade-Result.
type Mix struct {
	TradeOrder       float64
	TradeResult      float64
	TradeStatus      float64
	CustomerPosition float64
	MarketWatch      float64
	SecurityDetail   float64
	TradeLookup      float64
	TradeUpdate      float64
	BrokerVolume     float64
	MarketFeed       float64
	DataMaintenance  float64
}

// DefaultMix returns the spec-derived weights.
func DefaultMix() Mix {
	return Mix{
		TradeOrder:       10.1,
		TradeResult:      10.0,
		TradeStatus:      19.0,
		CustomerPosition: 13.0,
		MarketWatch:      17.0,
		SecurityDetail:   14.0,
		TradeLookup:      8.0,
		TradeUpdate:      2.0,
		BrokerVolume:     4.9,
		MarketFeed:       1.0,
		DataMaintenance:  0.2,
	}
}

// Stats counts executed transactions by type.
type Stats struct {
	ByType map[string]int
	Total  int
}

// RunUsers spawns `users` closed-loop terminals running the mix until the
// given simulated time (or server stop). The caller advances the clock.
func RunUsers(srv *engine.Server, d *Dataset, users int, mix Mix, until sim.Time, st *Stats) {
	if st.ByType == nil {
		st.ByType = make(map[string]int)
	}
	type entry struct {
		name string
		w    float64
		fn   func(*user) bool
	}
	entries := []entry{
		{"TradeOrder", mix.TradeOrder, (*user).tradeOrder},
		{"TradeResult", mix.TradeResult, (*user).tradeResult},
		{"TradeStatus", mix.TradeStatus, (*user).tradeStatus},
		{"CustomerPosition", mix.CustomerPosition, (*user).customerPosition},
		{"MarketWatch", mix.MarketWatch, (*user).marketWatch},
		{"SecurityDetail", mix.SecurityDetail, (*user).securityDetail},
		{"TradeLookup", mix.TradeLookup, (*user).tradeLookup},
		{"TradeUpdate", mix.TradeUpdate, (*user).tradeUpdate},
		{"BrokerVolume", mix.BrokerVolume, (*user).brokerVolume},
		{"MarketFeed", mix.MarketFeed, (*user).marketFeed},
		{"DataMaintenance", mix.DataMaintenance, (*user).dataMaintenance},
	}
	var totalW float64
	for _, e := range entries {
		totalW += e.w
	}
	for i := 0; i < users; i++ {
		srv.Sim.Spawn("tpce-user", func(p *sim.Proc) {
			u := &user{
				d:    d,
				sess: srv.Open(p).BindCtx(),
				g:    srv.Sim.RNG().Fork(),
				zA:   sim.NewZipf(d.NAcct(), 0.55),
			}
			defer u.sess.Close()
			for !srv.Stopped() && p.Now() < until {
				pick := u.g.Float64() * totalW
				for _, e := range entries {
					pick -= e.w
					if pick <= 0 {
						// Exec attaches per-attempt statement counters,
						// folds the attempt into the server's query stats
						// ("tpce.<TxnName>"), and retries transient aborts
						// under the session policy.
						ok := u.sess.Exec("tpce."+e.name, u.g, func() bool { return e.fn(u) })
						// Without a retry policy, count every attempt as
						// the pre-retry driver did (aborts included).
						if ok || !u.sess.Retry.Enabled() {
							st.ByType[e.name]++
							st.Total++
						}
						break
					}
				}
			}
		})
	}
}
