package tpce

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func tinyServer(t *testing.T, customers int, withCSI bool) (*engine.Server, *Dataset) {
	t.Helper()
	d := Build(Config{Customers: customers, ActualTradesPerCustomer: 4, Seed: 3, WithCSI: withCSI})
	srv := engine.NewServer(engine.Config{Seed: 5})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	return srv, d
}

func TestDatasetScaling(t *testing.T) {
	d := Build(Config{Customers: 1000, ActualTradesPerCustomer: 4})
	if d.Customer.ActualRows() != 1000 {
		t.Fatalf("customers = %d", d.Customer.ActualRows())
	}
	if d.Account.ActualRows() != 5000 {
		t.Fatalf("accounts = %d", d.Account.ActualRows())
	}
	if d.Trade.NominalRows() != 1000*nominalTradesPerCust {
		t.Fatalf("nominal trades = %d", d.Trade.NominalRows())
	}
	if d.Trade.ActualRows() != 4000 {
		t.Fatalf("actual trades = %d", d.Trade.ActualRows())
	}
	// Bigger scale factor => bigger database (Table 2's shading).
	d2 := Build(Config{Customers: 3000, ActualTradesPerCustomer: 4})
	if d2.DB.TotalBytes() <= d.DB.TotalBytes() {
		t.Fatal("database size not growing with SF")
	}
	if d.DB.IndexBytes() <= 0 {
		t.Fatal("no index bytes")
	}
}

func TestMixRunsAndCommits(t *testing.T) {
	srv, d := tinyServer(t, 500, false)
	var st Stats
	until := sim.Time(1 * sim.Second)
	RunUsers(srv, d, 20, DefaultMix(), until, &st)
	srv.Sim.Run(until)
	srv.Stop()
	srv.Sim.Run(until + sim.Time(300*sim.Second))
	if st.Total < 30 {
		t.Fatalf("only %d transactions completed", st.Total)
	}
	if srv.Ctr.TxnCommits+srv.Ctr.TxnAborts < int64(st.Total) {
		t.Fatalf("commits %d + aborts %d < transactions %d", srv.Ctr.TxnCommits, srv.Ctr.TxnAborts, st.Total)
	}
	// Victim aborts (lock-wait timeouts) exist but must stay rare.
	if srv.Ctr.TxnAborts*20 > srv.Ctr.TxnCommits {
		t.Fatalf("abort rate too high: %d aborts vs %d commits", srv.Ctr.TxnAborts, srv.Ctr.TxnCommits)
	}
	// The mix generates both reads and writes.
	if srv.Ctr.SSDWriteBytes == 0 {
		t.Fatal("no write traffic (log/checkpoint)")
	}
	// Lock manager liveness: nothing should still be waiting after drain.
	if w := srv.Locks.WaitingLongest(srv.Sim.Now()); w > 0 {
		t.Fatalf("lock waiter stuck for %v", w)
	}
	// All transaction types should have run.
	for _, name := range []string{"TradeOrder", "TradeResult", "TradeStatus", "MarketWatch"} {
		if st.ByType[name] == 0 {
			t.Fatalf("transaction type %s never ran (%v)", name, st.ByType)
		}
	}
}

func TestContentionDropsWithScale(t *testing.T) {
	run := func(customers int) float64 {
		srv, d := tinyServer(t, customers, false)
		var st Stats
		until := sim.Time(1 * sim.Second)
		RunUsers(srv, d, 30, DefaultMix(), until, &st)
		srv.Sim.Run(until)
		srv.Stop()
		srv.Sim.Run(until + sim.Time(300*sim.Second))
		lockNs := float64(srv.Ctr.WaitNs[metrics.WaitLock])
		commits := float64(srv.Ctr.TxnCommits)
		if commits == 0 {
			t.Fatal("no commits")
		}
		return lockNs / commits
	}
	small := run(200)
	large := run(2000)
	if large >= small {
		t.Fatalf("lock wait per txn should drop with more customers: small=%.0fns large=%.0fns", small, large)
	}
}

func TestAnalyticalQueriesExecute(t *testing.T) {
	srv, d := tinyServer(t, 500, true)
	if d.TradeCSI == nil {
		t.Fatal("HTAP config missing trade CSI")
	}
	g := sim.NewRNG(7)
	for qn := 0; qn < NumAnalytical; qn++ {
		got := 0
		srv.Sim.Spawn("analyst", func(p *sim.Proc) {
			res := srv.Open(p).Query(d.AnalyticalQuery(qn, g), engine.QueryOptions{})
			got = len(res.Rows)
		})
		srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
		if got == 0 {
			t.Fatalf("analytical query %d returned no rows", qn)
		}
	}
	srv.Stop()
}
