package tpce

import (
	"sort"

	"repro/internal/access"
	"repro/internal/btree"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/txn"
)

// Transactions follow a global lock-acquisition order — tables in catalog
// creation order, rows ascending within a table — so wait-for cycles
// cannot form (see package lock). Range reads that only gather values
// take table-level intent locks, which never conflict here.

// user is one terminal's state.
type user struct {
	d    *Dataset
	sess *engine.Session
	g    *sim.RNG
	zA   *sim.Zipf // account skew (customer tiers)
}

func (u *user) pickAccount() int64 {
	return u.zA.Next(u.g)
}

// key1 returns the PK search key for a nominal row of a K=1 table.
func key1(v int64) btree.Key { return btree.Key{v} }

// tradeKey maps a nominal trade id to the actual key stored in the tree.
func (u *user) tradeKey(nid int64) btree.Key {
	a := u.d.Trade.ToActual(nid)
	return btree.Key{u.d.Trade.Get(a, 0)}
}

func (u *user) hsKey(hsNid int64) btree.Key {
	a := u.d.HoldingSummary.ToActual(hsNid)
	return btree.Key{u.d.HoldingSummary.Get(a, 0), u.d.HoldingSummary.Get(a, 1)}
}

// tradeIndexes are the indexes maintained by a trade insert.
func (d *Dataset) tradeIndexes() []*access.BTIndex {
	return []*access.BTIndex{d.PKTrade, d.IXTradeAcct, d.IXTradeSec}
}

// tradeOrder executes a market buy/sell order: read the chain of
// customer, account, broker, and the security's last trade, update the
// account's holding summary, and insert the new trade (plus history).
func (u *user) tradeOrder() bool {
	d := u.d
	tx := u.sess.Begin()
	ca := u.pickAccount()
	cust := ca / accountsPerCustomer
	u.sess.Read(tx, d.PKCustomer, key1(cust), cust)
	u.sess.Read(tx, d.PKAccount, key1(ca), ca)
	broker := d.Account.Get(ca, 2)
	u.sess.Read(tx, d.PKBroker, key1(broker), broker)
	symb := u.g.Int64n(d.NSec())
	u.sess.Read(tx, d.PKLastTrade, key1(symb), symb)

	// Holding-summary position for this account: hot on small SFs.
	hsNid := ca * 2
	u.sess.Update(tx, d.PKHoldSum, u.hsKey(hsNid), hsNid, func(w *engine.RowWriter) {
		w.Add(2, 100)
	})

	price := d.LastTrade.Get(symb%d.LastTrade.ActualRows(), 1)
	tid := d.Trade.NominalRows()
	row := []int64{tid, tid, 0, u.g.Int64n(5), symb, (u.g.Int64n(8) + 1) * 100,
		price, ca, 0, price, 1999, price / 100}
	u.sess.Insert(tx, d.Trade, row, d.tradeIndexes(), d.TradeCSI)
	u.sess.Insert(tx, d.TradeHistory, []int64{tid, tid, 0},
		[]*access.BTIndex{d.DB.Index("pk_trade_history")}, nil)
	return u.sess.Commit(tx)
}

// tradeResult completes a recent order: update account and broker
// balances, post the execution price to last_trade, finalize the trade
// row, and insert settlement and cash records.
func (u *user) tradeResult() bool {
	d := u.d
	tx := u.sess.Begin()
	// A recently submitted trade.
	window := int64(10000)
	if n := d.Trade.NominalRows(); n < window {
		window = n
	}
	tid := d.Trade.NominalRows() - 1 - u.g.Int64n(window)
	if tid < 0 {
		tid = 0
	}
	a := d.Trade.ToActual(tid)
	ca := d.Trade.Get(a, 7)
	symb := d.Trade.Get(a, 4)

	// Table-order locking: account(2) -> broker(3) -> last_trade(6) ->
	// trade(9) -> inserts into higher tables.
	u.sess.Update(tx, d.PKAccount, key1(ca), ca, func(w *engine.RowWriter) {
		w.Add(3, 100)
	})
	broker := d.Account.Get(ca%d.Account.ActualRows(), 2)
	u.sess.Update(tx, d.PKBroker, key1(broker), broker, func(w *engine.RowWriter) {
		w.Add(2, 1)
		w.Add(3, 50)
	})
	u.sess.Update(tx, d.PKLastTrade, key1(symb), symb, func(w *engine.RowWriter) {
		w.Add(2, 100)
	})
	u.sess.Update(tx, d.PKTrade, u.tradeKey(tid), tid, func(w *engine.RowWriter) {
		w.Set(2, 2) // completed
	})
	u.sess.Insert(tx, d.TradeHistory, []int64{tid, tid, 1},
		[]*access.BTIndex{d.DB.Index("pk_trade_history")}, nil)
	u.sess.Insert(tx, d.Settlement, []int64{tid, 1, u.g.Int64n(1000000), 2},
		[]*access.BTIndex{d.DB.Index("pk_settlement")}, nil)
	u.sess.Insert(tx, d.CashTx, []int64{tid, tid, u.g.Int64n(1000000), 0},
		[]*access.BTIndex{d.DB.Index("pk_cash_tx")}, nil)

	// FIFO lot matching in the holding table (the spec's Trade-Result
	// frame 2): a sell consumes the account's oldest lot of the traded
	// security; a buy appends a new lot. Holding is the last table in
	// the lock order, so this stays deadlock-safe.
	if tx.Active() {
		u.matchHolding(tx, ca, symb)
	}
	return u.sess.Commit(tx)
}

// matchHolding consumes or creates a holding lot for (account, symbol).
func (u *user) matchHolding(tx *txn.Txn, ca, symb int64) {
	d := u.d
	sell := u.g.Bool(0.5)
	if sell {
		// Oldest lot for the account with this symbol (FIFO). LookupAll
		// returns h_t_id-appended entries in ascending key order, which
		// for the (h_ca_id) index means insertion order.
		for _, rowID := range d.IXHolding.LookupAll(btree.Key{ca}) {
			if d.Holding.Get(rowID, 2) != symb {
				continue
			}
			htid := d.Holding.Get(rowID, 0)
			nid := htid % d.Holding.NominalRows()
			u.sess.Update(tx, d.DB.Index("pk_holding"), btree.Key{htid}, nid, func(w *engine.RowWriter) {
				qty := w.Get(4) - 100
				if qty < 0 {
					qty = 0
				}
				w.Set(4, qty)
			})
			return
		}
		return // nothing to sell: fall through without a lot change
	}
	htid := d.Holding.NominalRows()
	u.sess.Insert(tx, d.Holding,
		[]int64{htid, ca, symb, 2000 + u.g.Int64n(10000), 100},
		[]*access.BTIndex{d.IXHolding, d.DB.Index("pk_holding")}, nil)
}

// tradeStatus reads the fifty most recent trades of an account.
func (u *user) tradeStatus() bool {
	d := u.d
	tx := u.sess.Begin()
	ca := u.pickAccount()
	u.sess.Read(tx, d.PKAccount, key1(ca), ca)
	nid := d.Trade.NominalRows() * ca / d.NAcct() // position within the index
	u.sess.ReadRange(tx, d.IXTradeAcct, btree.Key{ca}, nid, 50)
	return u.sess.Commit(tx)
}

// customerPosition reads a customer's accounts, their holding summaries,
// and current prices.
func (u *user) customerPosition() bool {
	d := u.d
	tx := u.sess.Begin()
	ca := u.pickAccount()
	cust := ca / accountsPerCustomer
	u.sess.Read(tx, d.PKCustomer, key1(cust), cust)
	var symbols []int64
	for acc := cust * accountsPerCustomer; acc < (cust+1)*accountsPerCustomer; acc++ {
		u.sess.Read(tx, d.PKAccount, key1(acc), acc)
		// Gather positions via an intent-locked range read.
		ids := u.sess.ReadRange(tx, d.PKHoldSum, btree.Key{acc}, acc*2, 2)
		for _, rid := range ids {
			symbols = append(symbols, d.HoldingSummary.Get(rid, 1))
		}
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	seen := int64(-1)
	for _, s := range symbols {
		if s == seen {
			continue
		}
		seen = s
		u.sess.Read(tx, d.PKLastTrade, key1(s), s)
	}
	return u.sess.Commit(tx)
}

// marketWatch reads the last trade of ~100 securities (ascending, to
// respect the lock order against tradeResult's updates).
func (u *user) marketWatch() bool {
	d := u.d
	tx := u.sess.Begin()
	n := d.NSec()
	count := int64(100)
	if count > n {
		count = n
	}
	start := u.g.Int64n(n)
	syms := make([]int64, 0, count)
	for i := int64(0); i < count; i++ {
		syms = append(syms, (start+i*7)%n)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	prev := int64(-1)
	for _, s := range syms {
		if s == prev {
			continue
		}
		prev = s
		u.sess.Read(tx, d.PKLastTrade, key1(s), s)
	}
	return u.sess.Commit(tx)
}

// securityDetail reads a security, its company, and daily market history.
func (u *user) securityDetail() bool {
	d := u.d
	tx := u.sess.Begin()
	symb := u.g.Int64n(d.NSec())
	u.sess.Read(tx, d.PKCompany, key1(symb), symb)
	u.sess.Read(tx, d.PKSecurity, key1(symb), symb)
	u.sess.ReadRange(tx, d.PKDailyMarket, btree.Key{symb}, symb*25, 25)
	return u.sess.Commit(tx)
}

// tradeLookup reads a batch of historical trades uniformly over the whole
// history — the cold-read path that drives PAGEIOLATCH at large scale
// factors.
func (u *user) tradeLookup() bool {
	d := u.d
	tx := u.sess.Begin()
	n := d.Trade.NominalRows()
	ids := make([]int64, 20)
	for i := range ids {
		ids[i] = u.g.Int64n(n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	prev := int64(-1)
	for _, tid := range ids {
		if tid == prev {
			continue
		}
		prev = tid
		u.sess.Read(tx, d.PKTrade, u.tradeKey(tid), tid)
	}
	// Follow a few into settlement and cash history (also cold).
	for _, tid := range ids[:5] {
		a := d.Settlement.ToActual(tid % d.Settlement.NominalRows())
		u.sess.Read(tx, d.DB.Index("pk_settlement"), btree.Key{d.Settlement.Get(a, 0)}, tid%d.Settlement.NominalRows())
	}
	return u.sess.Commit(tx)
}

// tradeUpdate rewrites historical trades' executor names (cold writes).
// Row IDs are sorted so multi-row X locks respect the global order.
func (u *user) tradeUpdate() bool {
	d := u.d
	tx := u.sess.Begin()
	n := d.Trade.NominalRows()
	ids := []int64{u.g.Int64n(n), u.g.Int64n(n), u.g.Int64n(n)}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	prev := int64(-1)
	for _, tid := range ids {
		if tid == prev {
			continue
		}
		prev = tid
		u.sess.Update(tx, d.PKTrade, u.tradeKey(tid), tid, nil)
	}
	return u.sess.Commit(tx)
}

// marketFeed applies a market-data tick batch: update last_trade for ~20
// securities (ascending, respecting the lock order) — the MEE's write
// path that contends with marketWatch readers.
func (u *user) marketFeed() bool {
	d := u.d
	tx := u.sess.Begin()
	n := d.NSec()
	count := int64(20)
	if count > n {
		count = n
	}
	start := u.g.Int64n(n)
	syms := make([]int64, 0, count)
	for i := int64(0); i < count; i++ {
		syms = append(syms, (start+i*11)%n)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	prev := int64(-1)
	for _, sm := range syms {
		if sm == prev {
			continue
		}
		prev = sm
		ok := u.sess.Update(tx, d.PKLastTrade, key1(sm), sm, func(w *engine.RowWriter) {
			w.Add(1, u.g.Int64n(21)-10)
			w.Add(2, 100)
		})
		if !ok {
			return false // victim: already aborted
		}
	}
	return u.sess.Commit(tx)
}

// dataMaintenance performs the spec's background row touch-ups: rewrite a
// company and daily-market row (cold, low frequency).
func (u *user) dataMaintenance() bool {
	d := u.d
	tx := u.sess.Begin()
	co := u.g.Int64n(d.Company.ActualRows())
	u.sess.Update(tx, d.PKCompany, key1(co), co, nil)
	dm := co*25 + u.g.Int64n(25)
	u.sess.Update(tx, d.PKDailyMarket,
		btree.Key{d.DailyMarket.Get(d.DailyMarket.ToActual(dm), 0), d.DailyMarket.Get(d.DailyMarket.ToActual(dm), 1)},
		dm, nil)
	return u.sess.Commit(tx)
}

// brokerVolume aggregates recent trade volume for a set of brokers.
func (u *user) brokerVolume() bool {
	d := u.d
	tx := u.sess.Begin()
	nb := d.NBroker()
	start := u.g.Int64n(nb)
	for i := int64(0); i < 3 && i < nb; i++ {
		b := (start + i) % nb
		u.sess.Read(tx, d.PKBroker, key1(b), b)
	}
	// Scan a slice of recent trades through the security index.
	symb := u.g.Int64n(d.NSec())
	nid := d.Trade.NominalRows() * symb / d.NSec()
	u.sess.ReadRange(tx, d.IXTradeSec, btree.Key{symb}, nid, 200)
	return u.sess.Commit(tx)
}
