package client

import (
	"errors"

	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Resilient-client errors.
var (
	ErrBreakerOpen = errors.New("client: circuit breaker open")
	ErrUnavailable = errors.New("client: no endpoint reachable")
)

// Outcome classifies one logical Exec at the client boundary. The
// distinction OutcomeNotExecuted vs OutcomeUnknown is what the chaos
// safety checker audits: the resilient client only ever retries a write
// after an outcome the server guarantees was not executed (shed,
// shutdown, failover-interrupted-before-dispatch, failed dial); a write
// whose transport died mid-flight is Unknown and is never resent.
type Outcome int

const (
	OutcomeAcked       Outcome = iota // OK reply observed: commit acknowledged
	OutcomeFailed                     // server answered: statement ran and failed
	OutcomeNotExecuted                // never executed (shed/shutdown/unreachable/breaker)
	OutcomeUnknown                    // transport died mid-request: may have committed
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAcked:
		return "acked"
	case OutcomeFailed:
		return "failed"
	case OutcomeNotExecuted:
		return "not-executed"
	case OutcomeUnknown:
		return "unknown"
	}
	return "outcome(?)"
}

// RConfig tunes the resilient client.
type RConfig struct {
	// Endpoints is the failover-aware dial list: on shutdown/failover
	// replies or dial failures the client rotates to the next address, so
	// it finds the promoted standby after repl.Failover.
	Endpoints []string

	BackoffBase sim.Duration // first reconnect backoff (default 20ms)
	BackoffMax  sim.Duration // backoff cap (default 2s)
	MaxAttempts int          // attempts per logical request, incl. the first (default 4)

	// BreakerThreshold consecutive breaker-keyed failures (CodeOverloaded,
	// CodeShutdown, resets, dial failures) open the circuit for
	// BreakerCooldown; while open, requests fail fast without dialing.
	BreakerThreshold int          // default 8
	BreakerCooldown  sim.Duration // default 1s

	// ReplyTimeout bounds each reply wait (lossy links would otherwise
	// hang a blocking Recv forever). 0 waits indefinitely.
	ReplyTimeout sim.Duration

	// HedgeAfter, when > 0, arms bounded hedged retries for idempotent
	// reads: a query with no reply after HedgeAfter is reissued on a
	// second connection and the first reply wins. Writes never hedge.
	HedgeAfter sim.Duration
}

func (c RConfig) withDefaults() RConfig {
	if len(c.Endpoints) == 0 {
		c.Endpoints = []string{"db"}
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 20 * sim.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * sim.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = sim.Second
	}
	return c
}

// Metrics is the shared accounting for every resilient client in one
// run (the sim is single-threaded, so plain fields suffice).
type Metrics struct {
	Dials       int64 // successful dial+handshake completions
	DialFails   int64 // failed dial attempts (refused/partitioned/no listener)
	Reconnects  int64 // dials after the first on a client
	Retries     int64 // request attempts after the first (safe retries only)
	Timeouts    int64 // reply waits that hit ReplyTimeout
	Resets      int64 // typed ErrPeerReset observations
	BackoffNs   int64 // total backoff slept
	BreakerOpen int64 // breaker open transitions
	BreakerShut int64 // breaker close (recovery) transitions
	HedgesSent  int64 // hedge legs issued
	HedgesWon   int64 // hedge leg answered first
	HedgesLost  int64 // primary leg answered first
	AckedExecs  int64 // execs acknowledged OK at the client boundary
	Ambiguous   int64 // execs with unknown outcome (never retried)
	Rotations   int64 // endpoint-list rotations (failover pursuit)
}

// Register exposes the client plane in the telemetry registry.
func (m *Metrics) Register(r *telemetry.Registry) {
	c := func(name, unit string, f func() int64) {
		r.CounterFunc("client", name, unit, func() float64 { return float64(f()) })
	}
	c("dials", "conns", func() int64 { return m.Dials })
	c("dial_fails", "conns", func() int64 { return m.DialFails })
	c("reconnects", "conns", func() int64 { return m.Reconnects })
	c("retries", "requests", func() int64 { return m.Retries })
	c("timeouts", "requests", func() int64 { return m.Timeouts })
	c("resets", "conns", func() int64 { return m.Resets })
	c("breaker_opens", "transitions", func() int64 { return m.BreakerOpen })
	c("breaker_closes", "transitions", func() int64 { return m.BreakerShut })
	c("hedges_sent", "requests", func() int64 { return m.HedgesSent })
	c("hedges_won", "requests", func() int64 { return m.HedgesWon })
	c("hedges_lost", "requests", func() int64 { return m.HedgesLost })
	c("acked_execs", "requests", func() int64 { return m.AckedExecs })
	c("ambiguous_execs", "requests", func() int64 { return m.Ambiguous })
	c("rotations", "endpoints", func() int64 { return m.Rotations })
	r.Gauge("client", "backoff_total", "ms", func() float64 { return float64(m.BackoffNs) / 1e6 })
}

// AckKey identifies one client-acknowledged exec: the transport pair id
// plus the request id, the same key the serving layer records with the
// commit LSN. The chaos checker joins the two views.
type AckKey struct {
	Pair uint64
	Req  uint64
}

// Resilient is a fault-tolerant protocol client: reconnect with
// jittered exponential backoff, a circuit breaker keyed on
// overload/shutdown/reset streaks, bounded hedged retries for
// idempotent reads, and a failover-aware endpoint list.
type Resilient struct {
	Cfg  RConfig
	Nw   *net.Network
	M    *Metrics
	G    *sim.RNG // backoff-jitter stream (required)
	Name string

	// OnAck, when set, observes every acknowledged exec (chaos harness
	// safety checker hookup).
	OnAck func(AckKey)

	conn     *Conn
	ep       int
	everUp   bool
	streak   int
	open     bool
	openTill sim.Time
}

// NewResilient builds a client; nothing dials until the first request.
func NewResilient(nw *net.Network, cfg RConfig, m *Metrics, g *sim.RNG, name string) *Resilient {
	return &Resilient{Cfg: cfg.withDefaults(), Nw: nw, M: m, G: g, Name: name}
}

// Endpoint returns the address the client currently favors.
func (r *Resilient) Endpoint() string { return r.Cfg.Endpoints[r.ep] }

func (r *Resilient) rotate() {
	if len(r.Cfg.Endpoints) > 1 {
		r.ep = (r.ep + 1) % len(r.Cfg.Endpoints)
		r.M.Rotations++
	}
}

// noteBad records one breaker-keyed failure.
func (r *Resilient) noteBad(p *sim.Proc) {
	r.streak++
	if r.streak >= r.Cfg.BreakerThreshold {
		if !r.open {
			r.open = true
			r.M.BreakerOpen++
		}
		r.openTill = p.Now() + sim.Time(r.Cfg.BreakerCooldown)
	}
}

func (r *Resilient) noteGood() {
	if r.open {
		r.open = false
		r.M.BreakerShut++
	}
	r.streak = 0
}

// breakerBlocked fails fast while the circuit is open; once the
// cooldown passes the next attempt probes half-open.
func (r *Resilient) breakerBlocked(p *sim.Proc) bool {
	return r.open && p.Now() < r.openTill
}

func (r *Resilient) backoff(p *sim.Proc, attempt int) {
	d := r.Cfg.BackoffBase << (attempt - 1)
	if d > r.Cfg.BackoffMax || d <= 0 {
		d = r.Cfg.BackoffMax
	}
	// Full jitter on the upper half keeps retry waves decorrelated.
	d = d/2 + sim.Duration(r.G.Float64()*float64(d/2))
	r.M.BackoffNs += int64(d)
	p.Sleep(d)
}

func (r *Resilient) dropConn() {
	if r.conn != nil {
		r.conn.Abandon()
		r.conn = nil
	}
}

// Close abandons the current connection.
func (r *Resilient) Close() { r.dropConn() }

// ensure dials the favored endpoint once if not connected. Dial
// failures are breaker-keyed and rotate the endpoint list.
func (r *Resilient) ensure(p *sim.Proc) error {
	if r.conn != nil && r.conn.Dead() {
		// Died between requests (reset event, server stop): nothing was
		// in flight, so dropping it here is unambiguous.
		r.dropConn()
	}
	if r.conn != nil {
		return nil
	}
	c, err := Dial(p, r.Nw, r.Endpoint(), r.Name)
	if err != nil {
		r.M.DialFails++
		if errors.Is(err, net.ErrPeerReset) {
			r.M.Resets++
		}
		r.noteBad(p)
		r.rotate()
		return err
	}
	r.M.Dials++
	if r.everUp {
		r.M.Reconnects++
	}
	r.everUp = true
	r.noteGood()
	r.conn = c
	return nil
}

// transportFail classifies a dead-connection error and drops the conn.
func (r *Resilient) transportFail(p *sim.Proc, err error) {
	if errors.Is(err, net.ErrPeerReset) {
		r.M.Resets++
	}
	if errors.Is(err, net.ErrTimeout) {
		r.M.Timeouts++
	}
	r.noteBad(p)
	r.dropConn()
}

// retryableCode reports whether an error reply guarantees the request
// was not executed (so even a write can safely be retried).
func retryableCode(code proto.Code) bool {
	switch code {
	case proto.CodeOverloaded, proto.CodeShutdown, proto.CodeFailover:
		return true
	}
	return false
}

// Exec runs one write statement with at-most-once effect semantics: it
// retries only outcomes the server guarantees were not executed and
// reports Unknown (without retrying) when the transport dies
// mid-request.
func (r *Resilient) Exec(p *sim.Proc, name string, arg uint64) (Reply, Outcome) {
	for attempt := 0; attempt < r.Cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.M.Retries++
			r.backoff(p, attempt)
		}
		if r.breakerBlocked(p) {
			continue
		}
		if r.ensure(p) != nil {
			continue
		}
		c := r.conn
		id, err := c.issue(p, proto.KExec, name, arg)
		if err != nil {
			// A send error cannot distinguish "died before transmit" from
			// "died after the frame crossed", so be conservative: the
			// write's outcome is unknown and it is never resent.
			r.transportFail(p, err)
			r.M.Ambiguous++
			return Reply{}, OutcomeUnknown
		}
		rep, err := c.await(p, id, r.Cfg.ReplyTimeout)
		if err != nil {
			r.transportFail(p, err)
			r.M.Ambiguous++
			return Reply{}, OutcomeUnknown
		}
		if rep.OK {
			r.noteGood()
			r.M.AckedExecs++
			if r.OnAck != nil {
				r.OnAck(AckKey{Pair: c.Pair(), Req: id})
			}
			return rep, OutcomeAcked
		}
		if retryableCode(rep.Code) {
			r.noteBad(p)
			if rep.Code != proto.CodeOverloaded {
				// Shutdown/failover: this endpoint is going away.
				r.dropConn()
				r.rotate()
			}
			continue
		}
		r.noteGood() // the server is responsive; the statement just failed
		return rep, OutcomeFailed
	}
	return Reply{}, OutcomeNotExecuted
}

// Query runs one idempotent read with retries on any failure and
// optional hedging. A non-nil error means no server reply was obtained
// within the attempt budget.
func (r *Resilient) Query(p *sim.Proc, name string, arg uint64) (Reply, error) {
	lastErr := error(ErrUnavailable)
	for attempt := 0; attempt < r.Cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.M.Retries++
			r.backoff(p, attempt)
		}
		if r.breakerBlocked(p) {
			lastErr = ErrBreakerOpen
			continue
		}
		if err := r.ensure(p); err != nil {
			lastErr = err
			continue
		}
		rep, err := r.queryOnce(p, name, arg)
		if err != nil {
			lastErr = err
			continue
		}
		if rep.OK || !retryableCode(rep.Code) {
			r.noteGood()
			return rep, nil
		}
		r.noteBad(p)
		if rep.Code != proto.CodeOverloaded {
			r.dropConn()
			r.rotate()
		}
		lastErr = errors.New("client: " + rep.Code.String())
	}
	return Reply{}, lastErr
}

// hedgeBox is the rendezvous between the main proc and the hedge legs.
type hedgeBox struct {
	wq      sim.WaitQueue
	posts   int
	legs    int
	winner  int // -1 until an OK-or-reply leg lands
	rep     Reply
	lastErr error
}

func (b *hedgeBox) post(sm *sim.Sim, leg int, rep Reply, err error) {
	b.posts++
	if err == nil && b.winner < 0 {
		b.winner = leg
		b.rep = rep
	}
	if err != nil {
		b.lastErr = err
	}
	b.wq.WakeAll(sm)
}

// queryOnce issues one read on the current connection, hedging onto a
// second connection if the reply is slow. Whatever happens, connections
// touched by a hedge are abandoned (a stale reply may still be in
// flight on them).
func (r *Resilient) queryOnce(p *sim.Proc, name string, arg uint64) (Reply, error) {
	c := r.conn
	id, err := c.issue(p, proto.KQuery, name, arg)
	if err != nil {
		r.transportFail(p, err)
		return Reply{}, err
	}
	// Reply wait budget: the configured timeout, or effectively unbounded.
	budget := r.Cfg.ReplyTimeout
	if r.Cfg.HedgeAfter <= 0 || (budget > 0 && budget <= r.Cfg.HedgeAfter) {
		rep, err := c.await(p, id, budget)
		if err != nil {
			r.transportFail(p, err)
			return Reply{}, err
		}
		return rep, nil
	}
	rep, err := c.await(p, id, r.Cfg.HedgeAfter)
	if err == nil {
		return rep, nil
	}
	if !errors.Is(err, net.ErrTimeout) {
		r.transportFail(p, err)
		return Reply{}, err
	}
	// Slow reply: hedge. The primary leg keeps waiting on a helper proc
	// while the main proc opens a second connection and reissues; the
	// first reply wins and both connections are then abandoned.
	r.M.HedgesSent++
	rem := budget - r.Cfg.HedgeAfter
	if budget <= 0 {
		rem = 10 * r.Cfg.HedgeAfter
	}
	sm := r.Nw.Sm
	box := &hedgeBox{winner: -1, legs: 1}
	r.conn = nil // both legs are single-use from here
	sm.Spawn("client-hedge-wait", func(hp *sim.Proc) {
		hrep, herr := c.await(hp, id, rem)
		box.post(sm, 0, hrep, herr)
	})
	hc, derr := Dial(p, r.Nw, r.Endpoint(), r.Name+"+hedge")
	if derr == nil {
		if hid, herr := hc.issue(p, proto.KQuery, name, arg); herr == nil {
			box.legs = 2
			sm.Spawn("client-hedge-leg", func(hp *sim.Proc) {
				hrep, herr := hc.await(hp, hid, rem)
				box.post(sm, 1, hrep, herr)
			})
		} else {
			hc.Abandon()
			hc = nil
		}
	} else {
		r.M.DialFails++
	}
	for box.winner < 0 && box.posts < box.legs {
		box.wq.Wait(p)
	}
	// Abandoning wakes any still-parked leg; it posts and exits.
	c.Abandon()
	if hc != nil {
		hc.Abandon()
	}
	if box.winner < 0 {
		r.noteBad(p)
		if box.lastErr == nil {
			box.lastErr = ErrUnavailable
		}
		return Reply{}, box.lastErr
	}
	if box.winner == 1 {
		r.M.HedgesWon++
	} else {
		r.M.HedgesLost++
	}
	return box.rep, nil
}
