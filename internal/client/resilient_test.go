package client

import (
	"errors"
	"testing"

	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/sim"
)

// fakeSrv is a scripted protocol server: it completes handshakes and
// answers each exec/query according to per-test hooks, counting how many
// statements it actually "applied" — the ground truth the no-double-
// effect assertions check against.
type fakeSrv struct {
	execSeen  int // exec frames received
	applied   int // execs acknowledged OK (the effect count)
	querySeen int

	// onExec scripts the n-th exec frame (1-based): reply OK, reply the
	// given error code, or hang up without replying (outcome ambiguity).
	onExec func(n int) (ok bool, code proto.Code, hangUp bool)
	// onQuery scripts the n-th query frame: delay before the OK reply.
	onQuery func(n int) sim.Duration
	// execDelay stalls every exec reply (slow-write scenarios).
	execDelay sim.Duration
}

func (fs *fakeSrv) listen(t *testing.T, sm *sim.Sim, nw *net.Network, addr string) {
	t.Helper()
	l, err := nw.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	sm.Spawn("fake-accept", func(p *sim.Proc) {
		for {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			sm.Spawn("fake-conn", func(cp *sim.Proc) { fs.serveConn(cp, c) })
		}
	})
}

func (fs *fakeSrv) serveConn(p *sim.Proc, c *net.Conn) {
	defer c.Close()
	for {
		buf, err := c.Recv(p)
		if err != nil {
			return
		}
		fr, _, derr := proto.Decode(buf)
		if derr != nil {
			return
		}
		switch fr.Kind {
		case proto.KHello:
			if c.Send(p, proto.EncodeHelloAck()) != nil {
				return
			}
		case proto.KExec:
			fs.execSeen++
			ok, code, hangUp := true, proto.Code(0), false
			if fs.onExec != nil {
				ok, code, hangUp = fs.onExec(fs.execSeen)
			}
			if hangUp {
				return
			}
			if fs.execDelay > 0 {
				p.Sleep(fs.execDelay)
			}
			if ok {
				fs.applied++
				if c.Send(p, proto.EncodeResult(fr.ID, proto.Result{Rows: 1})) != nil {
					return
				}
			} else if c.Send(p, proto.EncodeError(fr.ID, code, code.String())) != nil {
				return
			}
		case proto.KQuery:
			fs.querySeen++
			if fs.onQuery != nil {
				if d := fs.onQuery(fs.querySeen); d > 0 {
					p.Sleep(d)
				}
			}
			if c.Send(p, proto.EncodeResult(fr.ID, proto.Result{Rows: 10})) != nil {
				return
			}
		case proto.KGoodbye:
			return
		}
	}
}

func TestExecRetriesShedWritesExactlyOnceEffect(t *testing.T) {
	sm := sim.New(1)
	nw := net.New(sm, net.Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	fs := &fakeSrv{onExec: func(n int) (bool, proto.Code, bool) {
		// Shed twice (retry-safe: guaranteed not executed), then accept.
		if n <= 2 {
			return false, proto.CodeOverloaded, false
		}
		return true, proto.Code(0), false
	}}
	fs.listen(t, sm, nw, "db")
	var m Metrics
	var out Outcome
	sm.Spawn("client", func(p *sim.Proc) {
		r := NewResilient(nw, RConfig{Endpoints: []string{"db"}}, &m, sim.NewRNG(7), "t")
		defer r.Close()
		_, out = r.Exec(p, "asdb.Update", 1)
	})
	sm.Run(sim.Time(30 * sim.Second))
	if out != OutcomeAcked {
		t.Fatalf("outcome %v, want acked", out)
	}
	if m.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", m.Retries)
	}
	if fs.execSeen != 3 || fs.applied != 1 {
		t.Fatalf("server saw %d execs, applied %d; want 3 seen, exactly 1 applied", fs.execSeen, fs.applied)
	}
}

func TestExecAmbiguousIsNeverResent(t *testing.T) {
	sm := sim.New(1)
	nw := net.New(sm, net.Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	fs := &fakeSrv{onExec: func(n int) (bool, proto.Code, bool) {
		return false, proto.Code(0), true // hang up mid-request, every time
	}}
	fs.listen(t, sm, nw, "db")
	var m Metrics
	var out Outcome
	sm.Spawn("client", func(p *sim.Proc) {
		r := NewResilient(nw, RConfig{Endpoints: []string{"db"}, MaxAttempts: 6}, &m, sim.NewRNG(7), "t")
		defer r.Close()
		_, out = r.Exec(p, "asdb.Update", 1)
	})
	sm.Run(sim.Time(30 * sim.Second))
	if out != OutcomeUnknown {
		t.Fatalf("outcome %v, want unknown", out)
	}
	// The transport died after the frame crossed: the write may have
	// committed, so it must surface as ambiguous after ONE wire attempt.
	if fs.execSeen != 1 {
		t.Fatalf("server saw %d exec frames for one ambiguous write, want 1", fs.execSeen)
	}
	if m.Ambiguous != 1 || m.Retries != 0 {
		t.Fatalf("Ambiguous=%d Retries=%d, want 1 and 0", m.Ambiguous, m.Retries)
	}
}

func TestWritesNeverHedge(t *testing.T) {
	sm := sim.New(1)
	nw := net.New(sm, net.Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	// The exec reply is far slower than HedgeAfter: a hedging write would
	// show up as a second exec frame at the server.
	fs := &fakeSrv{execDelay: 200 * sim.Millisecond}
	fs.listen(t, sm, nw, "db")
	var m Metrics
	var out Outcome
	sm.Spawn("client", func(p *sim.Proc) {
		r := NewResilient(nw, RConfig{
			Endpoints:  []string{"db"},
			HedgeAfter: 10 * sim.Millisecond,
		}, &m, sim.NewRNG(7), "t")
		defer r.Close()
		_, out = r.Exec(p, "asdb.Update", 1)
	})
	sm.Run(sim.Time(30 * sim.Second))
	if out != OutcomeAcked {
		t.Fatalf("outcome %v, want acked", out)
	}
	if m.HedgesSent != 0 {
		t.Fatalf("a write hedged (HedgesSent=%d): hedging is reads-only", m.HedgesSent)
	}
	if fs.execSeen != 1 || fs.applied != 1 {
		t.Fatalf("server saw %d execs, applied %d; want exactly 1/1", fs.execSeen, fs.applied)
	}
}

func TestHedgedReadWinsWithoutDoubleCountingAnswers(t *testing.T) {
	sm := sim.New(1)
	nw := net.New(sm, net.Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	fs := &fakeSrv{onQuery: func(n int) sim.Duration {
		if n == 1 {
			return 500 * sim.Millisecond // first leg is slow
		}
		return 0 // hedge leg answers immediately
	}}
	fs.listen(t, sm, nw, "db")
	var m Metrics
	var rep Reply
	var qerr error
	sm.Spawn("client", func(p *sim.Proc) {
		r := NewResilient(nw, RConfig{
			Endpoints:  []string{"db"},
			HedgeAfter: 50 * sim.Millisecond,
		}, &m, sim.NewRNG(7), "t")
		defer r.Close()
		rep, qerr = r.Query(p, "asdb.SumBig", 2)
	})
	sm.Run(sim.Time(30 * sim.Second))
	if qerr != nil || !rep.OK {
		t.Fatalf("hedged query failed: %v %+v", qerr, rep)
	}
	if m.HedgesSent != 1 || m.HedgesWon != 1 {
		t.Fatalf("HedgesSent=%d HedgesWon=%d, want 1/1", m.HedgesSent, m.HedgesWon)
	}
	// Exactly one logical answer surfaced even though two legs ran.
	if fs.querySeen != 2 {
		t.Fatalf("server saw %d queries, want 2 (primary + hedge)", fs.querySeen)
	}
	if m.Retries != 0 {
		t.Fatalf("Retries = %d: a won hedge is not a retry", m.Retries)
	}
}

func TestFailoverReplyRotatesToPromotedEndpoint(t *testing.T) {
	sm := sim.New(1)
	nw := net.New(sm, net.Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	dying := &fakeSrv{onExec: func(n int) (bool, proto.Code, bool) {
		return false, proto.CodeFailover, false
	}}
	dying.listen(t, sm, nw, "db")
	promoted := &fakeSrv{}
	promoted.listen(t, sm, nw, "db1")
	var m Metrics
	var out Outcome
	var final string
	sm.Spawn("client", func(p *sim.Proc) {
		r := NewResilient(nw, RConfig{Endpoints: []string{"db", "db1"}}, &m, sim.NewRNG(7), "t")
		defer r.Close()
		_, out = r.Exec(p, "asdb.Update", 1)
		final = r.Endpoint()
	})
	sm.Run(sim.Time(30 * sim.Second))
	if out != OutcomeAcked {
		t.Fatalf("outcome %v, want acked after failover pursuit", out)
	}
	if final != "db1" || m.Rotations == 0 {
		t.Fatalf("endpoint %q rotations %d: client did not pursue the promoted address", final, m.Rotations)
	}
	if dying.applied != 0 || promoted.applied != 1 {
		t.Fatalf("applied dying=%d promoted=%d, want 0/1", dying.applied, promoted.applied)
	}
}

func TestBreakerOpensFailsFastThenRecovers(t *testing.T) {
	sm := sim.New(1)
	// No listener at all: every dial fails and feeds the breaker.
	nw := net.New(sm, net.Config{LinkMBps: 100, Latency: 100 * sim.Microsecond})
	var m Metrics
	fs := &fakeSrv{}
	var before error
	var after Reply
	var aerr error
	sm.Spawn("client", func(p *sim.Proc) {
		r := NewResilient(nw, RConfig{
			Endpoints:        []string{"db"},
			MaxAttempts:      4,
			BreakerThreshold: 3,
			BreakerCooldown:  500 * sim.Millisecond,
		}, &m, sim.NewRNG(7), "t")
		defer r.Close()
		_, before = r.Query(p, "asdb.SumBig", 0)
		if m.BreakerOpen == 0 {
			t.Error("breaker never opened across repeated dial failures")
		}
		// Server comes up; after the cooldown the half-open probe succeeds.
		fs.listen(t, sm, nw, "db")
		p.Sleep(sim.Second)
		after, aerr = r.Query(p, "asdb.SumBig", 0)
	})
	sm.Run(sim.Time(60 * sim.Second))
	if before == nil {
		t.Fatal("query with no server up unexpectedly succeeded")
	}
	if !errors.Is(before, net.ErrNoListener) && !errors.Is(before, ErrBreakerOpen) {
		t.Fatalf("down-phase error: %v", before)
	}
	if aerr != nil || !after.OK {
		t.Fatalf("post-recovery query: %v %+v", aerr, after)
	}
	if m.BreakerShut != 1 {
		t.Fatalf("BreakerShut = %d, want 1 recovery transition", m.BreakerShut)
	}
}
