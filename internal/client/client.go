// Package client is the wire client for the serving front end: it dials
// the simulated transport, performs the protocol handshake, and issues
// request/reply statement calls. The open-loop workload generator
// (internal/workload/openloop) drives it; tests use it directly.
package client

import (
	"errors"

	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Protocol-level client errors.
var (
	ErrHandshake = errors.New("client: handshake rejected")
	ErrProtocol  = errors.New("client: unexpected reply frame")
)

// Reply is the outcome of one statement call that produced a protocol
// reply (transport failures surface as errors instead).
type Reply struct {
	OK   bool
	Code proto.Code // set when !OK
	Msg  string     // server's error message when !OK
	Rows uint64     // set when OK
}

// Conn is an established protocol connection.
type Conn struct {
	c      *net.Conn
	nextID uint64
}

// Dial connects to addr and completes the Hello/HelloAck handshake.
func Dial(p *sim.Proc, nw *net.Network, addr, name string) (*Conn, error) {
	c, err := nw.Dial(p, addr)
	if err != nil {
		return nil, err
	}
	if err := c.Send(p, proto.EncodeHello(proto.Hello{
		Magic: proto.Magic, Version: proto.Version, Client: name,
	})); err != nil {
		c.Close()
		return nil, err
	}
	buf, err := c.Recv(p)
	if err != nil {
		c.Close()
		return nil, err
	}
	fr, _, derr := proto.Decode(buf)
	if derr != nil || fr.Kind != proto.KHelloAck {
		c.Close()
		return nil, ErrHandshake
	}
	return &Conn{c: c, nextID: 1}, nil
}

// Exec runs the named OLTP statement with the given argument.
func (cl *Conn) Exec(p *sim.Proc, name string, arg uint64) (Reply, error) {
	return cl.call(p, proto.KExec, name, arg)
}

// Query runs the named analytical statement with the given argument.
func (cl *Conn) Query(p *sim.Proc, name string, arg uint64) (Reply, error) {
	return cl.call(p, proto.KQuery, name, arg)
}

func (cl *Conn) call(p *sim.Proc, kind proto.Kind, name string, arg uint64) (Reply, error) {
	id := cl.nextID
	cl.nextID++
	if err := cl.c.Send(p, proto.EncodeRequest(kind, id, proto.Request{Name: name, Arg: arg})); err != nil {
		return Reply{}, err
	}
	buf, err := cl.c.Recv(p)
	if err != nil {
		return Reply{}, err
	}
	fr, _, derr := proto.Decode(buf)
	if derr != nil || fr.ID != id {
		return Reply{}, ErrProtocol
	}
	switch fr.Kind {
	case proto.KResult:
		res, rerr := proto.DecodeResult(fr.Payload)
		if rerr != nil {
			return Reply{}, ErrProtocol
		}
		return Reply{OK: true, Rows: res.Rows}, nil
	case proto.KError:
		code, msg, rerr := proto.DecodeError(fr.Payload)
		if rerr != nil {
			return Reply{}, ErrProtocol
		}
		return Reply{Code: code, Msg: msg}, nil
	}
	return Reply{}, ErrProtocol
}

// Close sends an orderly Goodbye and tears the connection down.
func (cl *Conn) Close(p *sim.Proc) {
	cl.c.Send(p, proto.EncodeGoodbye())
	cl.c.Close()
}
