// Package client is the wire client for the serving front end: it dials
// the simulated transport, performs the protocol handshake, and issues
// request/reply statement calls. The open-loop workload generator
// (internal/workload/openloop) drives it; tests use it directly.
package client

import (
	"errors"

	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Protocol-level client errors.
var (
	ErrHandshake = errors.New("client: handshake rejected")
	ErrProtocol  = errors.New("client: unexpected reply frame")
)

// Reply is the outcome of one statement call that produced a protocol
// reply (transport failures surface as errors instead).
type Reply struct {
	OK   bool
	Code proto.Code // set when !OK
	Msg  string     // server's error message when !OK
	Rows uint64     // set when OK
}

// Conn is an established protocol connection.
type Conn struct {
	c      *net.Conn
	nextID uint64
}

// Dial connects to addr and completes the Hello/HelloAck handshake.
func Dial(p *sim.Proc, nw *net.Network, addr, name string) (*Conn, error) {
	c, err := nw.Dial(p, addr)
	if err != nil {
		return nil, err
	}
	if err := c.Send(p, proto.EncodeHello(proto.Hello{
		Magic: proto.Magic, Version: proto.Version, Client: name,
	})); err != nil {
		c.Close()
		return nil, err
	}
	buf, err := c.Recv(p)
	if err != nil {
		c.Close()
		return nil, err
	}
	fr, _, derr := proto.Decode(buf)
	if derr != nil || fr.Kind != proto.KHelloAck {
		c.Close()
		return nil, ErrHandshake
	}
	return &Conn{c: c, nextID: 1}, nil
}

// Exec runs the named OLTP statement with the given argument.
func (cl *Conn) Exec(p *sim.Proc, name string, arg uint64) (Reply, error) {
	return cl.call(p, proto.KExec, name, arg)
}

// Query runs the named analytical statement with the given argument.
func (cl *Conn) Query(p *sim.Proc, name string, arg uint64) (Reply, error) {
	return cl.call(p, proto.KQuery, name, arg)
}

func (cl *Conn) call(p *sim.Proc, kind proto.Kind, name string, arg uint64) (Reply, error) {
	id, err := cl.issue(p, kind, name, arg)
	if err != nil {
		return Reply{}, err
	}
	return cl.await(p, id, 0)
}

// issue sends one request frame and returns its id without waiting for
// the reply — the resilient client's building block for timed waits and
// hedged reads.
func (cl *Conn) issue(p *sim.Proc, kind proto.Kind, name string, arg uint64) (uint64, error) {
	id := cl.nextID
	cl.nextID++
	if err := cl.c.Send(p, proto.EncodeRequest(kind, id, proto.Request{Name: name, Arg: arg})); err != nil {
		return 0, err
	}
	return id, nil
}

// await receives and decodes the reply for request id, waiting at most
// timeout (0 = forever). A timed-out or mismatched connection must be
// abandoned, not reused: the stale reply may still arrive.
func (cl *Conn) await(p *sim.Proc, id uint64, timeout sim.Duration) (Reply, error) {
	var buf []byte
	var err error
	if timeout > 0 {
		buf, err = cl.c.RecvTimeout(p, timeout)
	} else {
		buf, err = cl.c.Recv(p)
	}
	if err != nil {
		return Reply{}, err
	}
	fr, _, derr := proto.Decode(buf)
	if derr != nil || fr.ID != id {
		return Reply{}, ErrProtocol
	}
	switch fr.Kind {
	case proto.KResult:
		res, rerr := proto.DecodeResult(fr.Payload)
		if rerr != nil {
			return Reply{}, ErrProtocol
		}
		return Reply{OK: true, Rows: res.Rows}, nil
	case proto.KError:
		code, msg, rerr := proto.DecodeError(fr.Payload)
		if rerr != nil {
			return Reply{}, ErrProtocol
		}
		return Reply{Code: code, Msg: msg}, nil
	}
	return Reply{}, ErrProtocol
}

// Pair returns the transport pair id shared with the server's endpoint,
// so client-side acks can be joined with server-side commit records.
func (cl *Conn) Pair() uint64 { return cl.c.Pair() }

// Dead reports whether the underlying transport has closed.
func (cl *Conn) Dead() bool { return cl.c.Closed() }

// Close sends an orderly Goodbye and tears the connection down.
func (cl *Conn) Close(p *sim.Proc) {
	cl.c.Send(p, proto.EncodeGoodbye())
	cl.c.Close()
}

// Abandon tears the connection down with no Goodbye (and no wire time) —
// used after timeouts and hedge resolutions, where the connection may
// still carry a stale in-flight reply and must not be reused.
func (cl *Conn) Abandon() { cl.c.Close() }
