package storage

import "strings"

// StrPool is a dictionary mapping strings to dense int64 codes. String
// columns store codes; predicates over strings (equality, prefix LIKE)
// compile to code sets against the pool.
type StrPool struct {
	strs  []string
	codes map[string]int64
}

// NewStrPool creates an empty pool.
func NewStrPool() *StrPool {
	return &StrPool{codes: make(map[string]int64)}
}

// Code interns s and returns its code.
func (p *StrPool) Code(s string) int64 {
	if c, ok := p.codes[s]; ok {
		return c
	}
	c := int64(len(p.strs))
	p.strs = append(p.strs, s)
	p.codes[s] = c
	return c
}

// Lookup returns the code for s and whether it is interned.
func (p *StrPool) Lookup(s string) (int64, bool) {
	c, ok := p.codes[s]
	return c, ok
}

// Str returns the string for a code; out-of-range codes return "".
func (p *StrPool) Str(code int64) string {
	if code < 0 || code >= int64(len(p.strs)) {
		return ""
	}
	return p.strs[code]
}

// Len returns the number of interned strings.
func (p *StrPool) Len() int { return len(p.strs) }

// MatchPrefix returns the set of codes whose strings start with prefix
// (the compilation of `LIKE 'prefix%'`).
func (p *StrPool) MatchPrefix(prefix string) map[int64]bool {
	out := make(map[int64]bool)
	for i, s := range p.strs {
		if strings.HasPrefix(s, prefix) {
			out[int64(i)] = true
		}
	}
	return out
}

// Match returns the set of codes whose strings satisfy fn (the general
// LIKE-compilation hook for multi-wildcard patterns).
func (p *StrPool) Match(fn func(string) bool) map[int64]bool {
	out := make(map[int64]bool)
	for i, s := range p.strs {
		if fn(s) {
			out[int64(i)] = true
		}
	}
	return out
}

// MatchContains returns codes whose strings contain sub
// (the compilation of `LIKE '%sub%'`).
func (p *StrPool) MatchContains(sub string) map[int64]bool {
	out := make(map[int64]bool)
	for i, s := range p.strs {
		if strings.Contains(s, sub) {
			out[int64(i)] = true
		}
	}
	return out
}
