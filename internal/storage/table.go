package storage

import "fmt"

// PageBytes is the database page size (SQL Server uses 8 KB pages).
const PageBytes = 8192

// pageUsable is the payload per page after the 96-byte header.
const pageUsable = PageBytes - 96

// File describes one on-disk allocation unit (a table's data, or an
// index) for the buffer pool: its synthetic address region and its
// nominal page extent.
type File struct {
	ID     int
	Name   string
	Region uint64 // base address in the machine's synthetic address space
	Pages  int64  // nominal page count; owners update this as data grows
}

// PageAddr returns the synthetic memory address of a page, used to give
// buffer-pool pages stable cache identities.
func (f *File) PageAddr(pageNo int64) uint64 {
	return f.Region + uint64(pageNo)*PageBytes
}

// Bytes returns the file's nominal size.
func (f *File) Bytes() int64 { return f.Pages * PageBytes }

// Table is a row-store table: column-major actual storage plus nominal
// geometry. One actual row stands for K nominal rows.
type Table struct {
	*Schema
	ID int
	K  int64

	cols  [][]int64
	pools []*StrPool

	nominalRows int64 // high-water nominal cardinality (drives page count)
	liveNominal int64 // nominal cardinality net of deletes

	Data *File
}

// NewTable creates an empty table with replication factor k (>= 1).
func NewTable(id int, schema *Schema, k int64) *Table {
	if k < 1 {
		k = 1
	}
	t := &Table{
		Schema: schema,
		ID:     id,
		K:      k,
		cols:   make([][]int64, schema.NCols()),
		pools:  make([]*StrPool, schema.NCols()),
		Data:   &File{ID: id, Name: schema.Name + ".data"},
	}
	for i, c := range schema.Cols {
		if c.Type == TStr {
			t.pools[i] = NewStrPool()
		}
	}
	return t
}

// Pool returns the string pool for a string column (nil otherwise).
func (t *Table) Pool(col int) *StrPool { return t.pools[col] }

// AppendLoad bulk-loads one actual row (standing for K nominal rows) and
// returns its actual row ID. Used by data generators.
func (t *Table) AppendLoad(row []int64) int64 {
	if len(row) != t.NCols() {
		panic(fmt.Sprintf("storage: %s: row has %d values, want %d", t.Name, len(row), t.NCols()))
	}
	for i, v := range row {
		t.cols[i] = append(t.cols[i], v)
	}
	t.nominalRows += t.K
	t.liveNominal += t.K
	t.refreshPages()
	return int64(len(t.cols[0]) - 1)
}

// ActualRows returns the number of materialized rows.
func (t *Table) ActualRows() int64 {
	if len(t.cols) == 0 || t.cols[0] == nil {
		return 0
	}
	return int64(len(t.cols[0]))
}

// NominalRows returns the nominal (paper-scale) cardinality high-water mark.
func (t *Table) NominalRows() int64 { return t.nominalRows }

// LiveNominalRows returns the nominal cardinality net of deletes.
func (t *Table) LiveNominalRows() int64 { return t.liveNominal }

// RowsPerPage returns how many nominal rows fit a page.
func (t *Table) RowsPerPage() int64 {
	n := int64(pageUsable) / t.RowWidth()
	if n < 1 {
		n = 1
	}
	return n
}

// refreshPages recomputes the data file's nominal page extent.
func (t *Table) refreshPages() {
	t.Data.Pages = (t.nominalRows + t.RowsPerPage() - 1) / t.RowsPerPage()
}

// NominalDataBytes returns the table's nominal data size.
func (t *Table) NominalDataBytes() int64 { return t.Data.Bytes() }

// PageOfNominal returns the data page holding a nominal row.
func (t *Table) PageOfNominal(nid int64) int64 {
	return nid / t.RowsPerPage()
}

// ToActual maps a nominal row ID to its representative actual row.
func (t *Table) ToActual(nid int64) int64 {
	n := t.ActualRows()
	if n == 0 {
		return 0
	}
	a := nid / t.K
	if a >= n {
		a = a % n
	}
	return a
}

// Get returns one value.
func (t *Table) Get(row int64, col int) int64 { return t.cols[col][row] }

// Set updates one value in place.
func (t *Table) Set(row int64, col int, v int64) { t.cols[col][row] = v }

// Row copies an actual row into dst (allocating if nil) and returns it.
func (t *Table) Row(row int64, dst []int64) []int64 {
	if dst == nil {
		dst = make([]int64, t.NCols())
	}
	for i := range t.cols {
		dst[i] = t.cols[i][row]
	}
	return dst
}

// Col returns the backing slice for a column (do not append).
func (t *Table) Col(col int) []int64 { return t.cols[col] }

// InsertNominal inserts one nominal row, materializing an actual row each
// time a K boundary is crossed. It returns the new nominal row ID.
func (t *Table) InsertNominal(row []int64) int64 {
	nid := t.nominalRows
	t.nominalRows++
	t.liveNominal++
	if t.nominalRows%t.K == 0 || t.ActualRows() == 0 {
		for i, v := range row {
			t.cols[i] = append(t.cols[i], v)
		}
	}
	t.refreshPages()
	return nid
}

// InsertNominalReplay inserts one nominal row replaying a recorded
// materialization decision rather than re-deriving it: a replica
// applying a shipped WAL stream uses the primary's Materialized flag
// (and the primary's actual row position, at) so both images place
// actual rows identically even when commit order — the apply order —
// differs from the primary's insertion interleaving. Columns are
// zero-padded when a later position arrives first; the earlier insert
// fills the hole when its commit applies. It returns the new nominal
// row ID.
func (t *Table) InsertNominalReplay(row []int64, materialize bool, at int64) int64 {
	nid := t.nominalRows
	t.nominalRows++
	t.liveNominal++
	if materialize {
		for i, v := range row {
			for int64(len(t.cols[i])) <= at {
				t.cols[i] = append(t.cols[i], 0)
			}
			t.cols[i][at] = v
		}
	}
	t.refreshPages()
	return nid
}

// TableImage is a deep snapshot of a table's mutable state, sufficient
// to restore the table to the snapshot instant (incremental-backup
// payload for point-in-time recovery). String pools are append-only and
// never mutated by the logged operations, so they are not captured.
type TableImage struct {
	NominalRows int64
	LiveNominal int64
	Cols        [][]int64
}

// CaptureImage deep-copies the table's mutable state.
func (t *Table) CaptureImage() *TableImage {
	img := &TableImage{
		NominalRows: t.nominalRows,
		LiveNominal: t.liveNominal,
		Cols:        make([][]int64, len(t.cols)),
	}
	for i, c := range t.cols {
		img.Cols[i] = append([]int64(nil), c...)
	}
	return img
}

// RestoreImage overwrites the table's mutable state from a snapshot.
func (t *Table) RestoreImage(img *TableImage) {
	t.nominalRows = img.NominalRows
	t.liveNominal = img.LiveNominal
	for i := range t.cols {
		t.cols[i] = append(t.cols[i][:0:0], img.Cols[i]...)
	}
	t.refreshPages()
}

// DeleteNominal removes one nominal row. Space is not reclaimed (the page
// extent is a high-water mark, as with ghost records awaiting cleanup).
func (t *Table) DeleteNominal() {
	if t.liveNominal > 0 {
		t.liveNominal--
	}
}

// UndeleteNominal reverses a DeleteNominal: the ghost row is revived.
// Used by transaction rollback and crash recovery to undo deletes.
func (t *Table) UndeleteNominal() {
	if t.liveNominal < t.nominalRows {
		t.liveNominal++
	}
}
