// Package storage provides the database engine's physical storage layer:
// typed schemas, row-store tables, and the nominal-size bookkeeping that
// lets a scaled-down dataset stand in for the paper's 30–150 GB databases.
//
// Every value is represented as an int64: integers directly, decimals as
// fixed-point hundredths, dates as day numbers, and strings as codes into
// a per-column StrPool. This keeps rows compact and comparisons branch-free
// while remaining fully functional (joins, predicates, aggregation).
//
// Nominal sizing: each table is created with a replication factor K — one
// generated ("actual") row stands for K nominal rows. Page counts, I/O
// volumes, index heights, and cache footprints are computed from nominal
// bytes (schema widths × nominal row counts), so buffer-pool and bandwidth
// pressure follow the paper's data sizes even though the Go heap holds
// only the scaled-down rows.
package storage

import "fmt"

// ColType is a column's logical type.
type ColType int

// Column types.
const (
	TInt     ColType = iota // 64-bit integer
	TDecimal                // fixed-point, stored as hundredths
	TDate                   // day number
	TStr                    // code into the column's StrPool
)

// Column describes one column.
type Column struct {
	Name  string
	Type  ColType
	Width int // nominal on-disk bytes for sizing (e.g. 4, 8, 25)
}

// Schema is an ordered set of columns.
type Schema struct {
	Name string
	Cols []Column

	byName map[string]int
}

// NewSchema builds a schema, validating column names are unique.
func NewSchema(name string, cols ...Column) *Schema {
	s := &Schema{Name: name, Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("storage: duplicate column %q in %q", c.Name, name))
		}
		if c.Width <= 0 {
			panic(fmt.Sprintf("storage: column %q.%q has no width", name, c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// Col returns the index of the named column, panicking if absent — schema
// references are authored in code, so a miss is a programming error.
func (s *Schema) Col(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("storage: no column %q in %q", name, s.Name))
	}
	return i
}

// HasCol reports whether the named column exists.
func (s *Schema) HasCol(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// RowWidth returns the nominal stored row width in bytes, including the
// fixed per-row overhead (row header and slot-array entry).
func (s *Schema) RowWidth() int64 {
	const rowOverhead = 9
	w := int64(rowOverhead)
	for _, c := range s.Cols {
		w += int64(c.Width)
	}
	return w
}

// NCols returns the number of columns.
func (s *Schema) NCols() int { return len(s.Cols) }
