package storage

import (
	"testing"
	"testing/quick"
)

func demoSchema() *Schema {
	return NewSchema("demo",
		Column{Name: "id", Type: TInt, Width: 8},
		Column{Name: "price", Type: TDecimal, Width: 8},
		Column{Name: "day", Type: TDate, Width: 4},
		Column{Name: "name", Type: TStr, Width: 25},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := demoSchema()
	if s.RowWidth() != 9+8+8+4+25 {
		t.Fatalf("row width = %d", s.RowWidth())
	}
	if s.Col("day") != 2 {
		t.Fatalf("col index = %d", s.Col("day"))
	}
	if !s.HasCol("name") || s.HasCol("missing") {
		t.Fatal("HasCol wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Col on missing column should panic")
		}
	}()
	s.Col("missing")
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema("bad", Column{Name: "a", Type: TInt, Width: 8}, Column{Name: "a", Type: TInt, Width: 8})
}

func TestTableNominalGeometry(t *testing.T) {
	tb := NewTable(1, demoSchema(), 100) // 1 actual row = 100 nominal
	for i := int64(0); i < 50; i++ {
		tb.AppendLoad([]int64{i, i * 10, i, 0})
	}
	if tb.ActualRows() != 50 {
		t.Fatalf("actual = %d", tb.ActualRows())
	}
	if tb.NominalRows() != 5000 {
		t.Fatalf("nominal = %d", tb.NominalRows())
	}
	rpp := tb.RowsPerPage()
	if rpp != (8192-96)/54 {
		t.Fatalf("rows per page = %d", rpp)
	}
	wantPages := (5000 + rpp - 1) / rpp
	if tb.Data.Pages != wantPages {
		t.Fatalf("pages = %d, want %d", tb.Data.Pages, wantPages)
	}
	if tb.PageOfNominal(0) != 0 || tb.PageOfNominal(rpp) != 1 {
		t.Fatal("page mapping wrong")
	}
	if got := tb.NominalDataBytes(); got != wantPages*PageBytes {
		t.Fatalf("nominal bytes = %d", got)
	}
}

func TestToActualMapping(t *testing.T) {
	tb := NewTable(1, demoSchema(), 10)
	for i := int64(0); i < 20; i++ {
		tb.AppendLoad([]int64{i, 0, 0, 0})
	}
	if tb.ToActual(0) != 0 || tb.ToActual(9) != 0 || tb.ToActual(10) != 1 {
		t.Fatal("ToActual mapping wrong")
	}
	if a := tb.ToActual(205); a < 0 || a >= 20 {
		t.Fatalf("ToActual out of range: %d", a)
	}
}

func TestInsertNominalMaterializesEveryK(t *testing.T) {
	tb := NewTable(1, demoSchema(), 4)
	row := []int64{1, 2, 3, 0}
	for i := 0; i < 16; i++ {
		tb.InsertNominal(row)
	}
	if tb.NominalRows() != 16 {
		t.Fatalf("nominal = %d", tb.NominalRows())
	}
	// One materialized at the very first insert, then at every K boundary.
	if got := tb.ActualRows(); got != 4+1 {
		t.Fatalf("actual = %d, want 5", got)
	}
	tb.DeleteNominal()
	if tb.LiveNominalRows() != 15 || tb.NominalRows() != 16 {
		t.Fatal("delete should reduce live but not high-water")
	}
}

func TestRowGetSet(t *testing.T) {
	tb := NewTable(1, demoSchema(), 1)
	tb.AppendLoad([]int64{7, 100, 3, 0})
	if tb.Get(0, 1) != 100 {
		t.Fatal("Get wrong")
	}
	tb.Set(0, 1, 200)
	row := tb.Row(0, nil)
	if row[1] != 200 || row[0] != 7 {
		t.Fatalf("row = %v", row)
	}
	if len(tb.Col(0)) != 1 {
		t.Fatal("Col wrong")
	}
}

func TestStrPoolRoundTripProperty(t *testing.T) {
	p := NewStrPool()
	f := func(s string) bool {
		c := p.Code(s)
		c2 := p.Code(s) // interning is stable
		return c == c2 && p.Str(c) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if p.Str(-1) != "" || p.Str(1<<40) != "" {
		t.Fatal("out-of-range codes should be empty")
	}
}

func TestStrPoolMatchers(t *testing.T) {
	p := NewStrPool()
	lemon := p.Code("lemon chiffon")
	lime := p.Code("lime green")
	lemon2 := p.Code("lemonade pink")
	if _, ok := p.Lookup("lime green"); !ok {
		t.Fatal("lookup failed")
	}
	pre := p.MatchPrefix("lemon")
	if !pre[lemon] || !pre[lemon2] || pre[lime] {
		t.Fatalf("prefix match = %v", pre)
	}
	sub := p.MatchContains("green")
	if !sub[lime] || sub[lemon] {
		t.Fatalf("contains match = %v", sub)
	}
}

func TestFilePageAddr(t *testing.T) {
	f := &File{ID: 3, Region: 1 << 30, Pages: 100}
	if f.PageAddr(0) != 1<<30 {
		t.Fatal("page 0 addr")
	}
	if f.PageAddr(2)-f.PageAddr(1) != PageBytes {
		t.Fatal("page stride")
	}
	if f.Bytes() != 100*PageBytes {
		t.Fatal("file bytes")
	}
}
