// Package telemetry is the engine-wide metric layer: a typed, labeled
// registry of counters, gauges, and log2 histograms sampled on the
// simulated clock into ring-buffered time series. It is the single home
// for the percentile math shared by the per-template query statistics
// (metrics.QueryStats) and the harness CDF reports, and it is the
// substrate both exporters (harness.Emitter series records, Prometheus
// text exposition) read from.
//
// Everything here follows the engine's zero-cost-when-off discipline:
// all hot-path mutators are nil-receiver safe and allocation-free, so a
// subsystem holds a possibly-nil *Counter or *Hist and pays a single
// branch when telemetry is disarmed. Nothing in this package ever reads
// the host clock or mutates simulation state, so armed and disarmed
// runs produce bit-identical measured results.
package telemetry

import (
	"math"
	"math/bits"

	"repro/internal/sim"
)

// HistBuckets is the number of log2 latency buckets: bucket i counts
// observations in [2^(i-1), 2^i) nanoseconds (bucket 0 is [0, 1)).
const HistBuckets = 64

// Histogram is a log2-bucketed latency histogram. Buckets double in width,
// so it covers nanoseconds to hours in 64 fixed slots with bounded error;
// quantiles interpolate linearly inside a bucket. The zero value is ready
// to use, and merging is element-wise addition.
type Histogram struct {
	Counts [HistBuckets]int64
	N      int64
	SumNs  int64
	MaxNs  int64
}

// Observe records one latency.
func (h *Histogram) Observe(d sim.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.Counts[bits.Len64(uint64(ns))]++
	h.N++
	h.SumNs += ns
	if ns > h.MaxNs {
		h.MaxNs = ns
	}
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o Histogram) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.N += o.N
	h.SumNs += o.SumNs
	if o.MaxNs > h.MaxNs {
		h.MaxNs = o.MaxNs
	}
}

// Mean returns the mean latency in ns, or 0 when empty.
func (h Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.SumNs) / float64(h.N)
}

// Quantile returns the q-th quantile (q in [0,1]) in nanoseconds by linear
// interpolation within the containing bucket, or 0 when empty. The upper
// edge of the topmost populated bucket is clamped to the observed maximum.
func (h Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.N)
	cum := int64(0)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := bucketBounds(i)
			if hi > float64(h.MaxNs) {
				hi = float64(h.MaxNs)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(h.MaxNs)
}

// bucketBounds returns bucket i's [lo, hi) range in ns.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Exp2(float64(i - 1)), math.Exp2(float64(i))
}

// PercentileSorted returns the p-th percentile (p in [0,100]) of an
// ascending-sorted sample by linear interpolation between neighbours —
// the exact-sample dual of Histogram.Quantile, shared by the harness CDF
// reports and the series summaries. Returns 0 on an empty slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + (sorted[lo+1]-sorted[lo])*frac
}

// MeanOf returns the arithmetic mean of a sample, 0 when empty.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
