package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Metric kinds, as reported in snapshots and the text exposition.
const (
	KindCounter = "counter" // monotone total; sampled as per-interval delta
	KindGauge   = "gauge"   // instantaneous level; sampled as-is
	KindHist    = "hist"    // latency histogram; sampled as per-interval mean ns
)

// Point is one interval sample of a series on the simulated clock.
type Point struct {
	At    sim.Time // end of the sampling interval
	Value float64
}

// Counter is a registry-owned monotone counter. The nil receiver is a
// no-op, so subsystems embed a possibly-nil *Counter and call Add
// unconditionally; when telemetry is off the cost is one branch.
type Counter struct {
	v    int64
	prev int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the cumulative total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Hist is a registry-owned latency histogram. Like Counter, the nil
// receiver is a no-op so instrumented code never branches on arming.
type Hist struct {
	h         Histogram
	prevN     int64
	prevSumNs int64
}

// Observe records one latency.
func (h *Hist) Observe(d sim.Duration) {
	if h != nil {
		h.h.Observe(d)
	}
}

// Cum returns the cumulative histogram (zero value on nil).
func (h *Hist) Cum() Histogram {
	if h == nil {
		return Histogram{}
	}
	return h.h
}

// metric is one registered series plus its sampling state.
type metric struct {
	subsystem string
	name      string
	unit      string
	kind      string

	counter   *Counter       // KindCounter with owned storage
	counterFn func() float64 // KindCounter derived from a cumulative source
	prevF     float64        // counterFn value at the previous sample
	gaugeFn   func() float64 // KindGauge
	hist      *Hist          // KindHist

	// Ring buffer of interval samples.
	buf  []Point
	head int // next write slot once full
	n    int
}

func (m *metric) push(pt Point) {
	if cap(m.buf) == 0 {
		return
	}
	if m.n < cap(m.buf) {
		m.buf = append(m.buf, pt)
		m.n++
		return
	}
	m.buf[m.head] = pt
	m.head = (m.head + 1) % len(m.buf)
}

func (m *metric) points() []Point {
	out := make([]Point, 0, m.n)
	if m.n < cap(m.buf) {
		return append(out, m.buf...)
	}
	out = append(out, m.buf[m.head:]...)
	return append(out, m.buf[:m.head]...)
}

// sample takes one interval reading ending at the given time.
func (m *metric) sample(at sim.Time) {
	var v float64
	switch {
	case m.counter != nil:
		v = float64(m.counter.v - m.counter.prev)
		m.counter.prev = m.counter.v
	case m.counterFn != nil:
		cur := m.counterFn()
		v = cur - m.prevF
		m.prevF = cur
	case m.gaugeFn != nil:
		v = m.gaugeFn()
	case m.hist != nil:
		dn := m.hist.h.N - m.hist.prevN
		ds := m.hist.h.SumNs - m.hist.prevSumNs
		m.hist.prevN = m.hist.h.N
		m.hist.prevSumNs = m.hist.h.SumNs
		if dn > 0 {
			v = float64(ds) / float64(dn)
		}
	}
	m.push(Point{At: at, Value: v})
}

// total returns the metric's end-of-run headline value: cumulative total
// for counters, current level for gauges, cumulative mean for histograms.
func (m *metric) total() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.v)
	case m.counterFn != nil:
		return m.counterFn()
	case m.gaugeFn != nil:
		return m.gaugeFn()
	case m.hist != nil:
		return m.hist.h.Mean()
	}
	return 0
}

// Registry holds every registered series for one simulation and samples
// them at a fixed simulated interval from a dedicated sampler process.
// One registry belongs to one simulation, so access is serialized by the
// simulation kernel and needs no locking. A nil *Registry is inert:
// every registration method returns nil/no-ops, which is how the
// telemetry-off configuration is expressed.
type Registry struct {
	// Interval is the sampling period on the simulated clock.
	Interval sim.Duration
	// RingCap bounds each series' retained samples; older samples are
	// overwritten ring-buffer style.
	RingCap int

	metrics []*metric
	byName  map[string]bool

	lastAt  sim.Time
	stopped bool
}

// NewRegistry creates a registry sampling at 1 simulated second (the
// paper's counter-collection cadence), retaining up to 512 samples per
// series.
func NewRegistry() *Registry {
	return &Registry{Interval: sim.Second, RingCap: 512, byName: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	key := m.subsystem + "." + m.name
	if r.byName[key] {
		panic("telemetry: duplicate series " + key)
	}
	r.byName[key] = true
	m.buf = make([]Point, 0, r.RingCap)
	r.metrics = append(r.metrics, m)
}

// Counter registers an owned counter series, sampled as per-interval
// deltas. Returns nil on a nil registry.
func (r *Registry) Counter(subsystem, name, unit string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&metric{subsystem: subsystem, name: name, unit: unit, kind: KindCounter, counter: c})
	return c
}

// CounterFunc registers a counter series backed by an existing cumulative
// source (an LSN, a wait-ns total, a hit count); each sample records the
// delta since the previous one. No-op on a nil registry.
func (r *Registry) CounterFunc(subsystem, name, unit string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{subsystem: subsystem, name: name, unit: unit, kind: KindCounter, counterFn: fn})
}

// Gauge registers an instantaneous-level series read from fn at each
// sample. No-op on a nil registry.
func (r *Registry) Gauge(subsystem, name, unit string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{subsystem: subsystem, name: name, unit: unit, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers a latency histogram series; samples record the
// per-interval mean in ns, and the snapshot carries the full cumulative
// histogram for quantiles. Returns nil on a nil registry.
func (r *Registry) Histogram(subsystem, name string) *Hist {
	if r == nil {
		return nil
	}
	h := &Hist{}
	r.register(&metric{subsystem: subsystem, name: name, unit: "ns", kind: KindHist, hist: h})
	return h
}

// Start spawns the sampler process. Like the engine's counter sampler it
// only sleeps and reads, so its presence cannot perturb simulated
// results. No-op on a nil registry.
func (r *Registry) Start(sm *sim.Sim) {
	if r == nil {
		return
	}
	sm.Spawn("telemetry-sampler", func(p *sim.Proc) {
		for !r.stopped {
			p.Sleep(r.Interval)
			if r.stopped {
				return
			}
			r.sampleAll(p.Now())
		}
	})
}

// Stop halts sampling and, if the clock moved past the last full sample,
// takes one final partial-interval sample so trailing activity is
// retained. Safe on a nil registry.
func (r *Registry) Stop(now sim.Time) {
	if r == nil || r.stopped {
		return
	}
	r.stopped = true
	if now > r.lastAt {
		r.sampleAll(now)
	}
}

func (r *Registry) sampleAll(at sim.Time) {
	for _, m := range r.metrics {
		m.sample(at)
	}
	r.lastAt = at
}

// SeriesData is one series' exported form.
type SeriesData struct {
	Subsystem string
	Name      string
	Unit      string
	Kind      string
	Points    []Point
	Total     float64    // end-of-run headline value (see metric.total)
	Hist      *Histogram // cumulative histogram, KindHist only
}

// Snapshot is the registry's full exported state.
type Snapshot struct {
	Series []SeriesData
}

// Snapshot deep-copies every series, sorted by subsystem then name, so
// exporters iterate deterministically. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	out := &Snapshot{Series: make([]SeriesData, 0, len(r.metrics))}
	for _, m := range r.metrics {
		sd := SeriesData{
			Subsystem: m.subsystem,
			Name:      m.name,
			Unit:      m.unit,
			Kind:      m.kind,
			Points:    m.points(),
			Total:     m.total(),
		}
		if m.hist != nil {
			h := m.hist.h
			sd.Hist = &h
		}
		out.Series = append(out.Series, sd)
	}
	sort.Slice(out.Series, func(i, j int) bool {
		if out.Series[i].Subsystem != out.Series[j].Subsystem {
			return out.Series[i].Subsystem < out.Series[j].Subsystem
		}
		return out.Series[i].Name < out.Series[j].Name
	})
	return out
}

// Subsystems returns the distinct subsystem labels in the snapshot.
func (s *Snapshot) Subsystems() []string {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, sd := range s.Series {
		if !seen[sd.Subsystem] {
			seen[sd.Subsystem] = true
			out = append(out, sd.Subsystem)
		}
	}
	sort.Strings(out)
	return out
}

// promName converts "buffer"+"hit_ratio" to dbsense_buffer_hit_ratio.
func promName(subsystem, name string) string {
	s := "dbsense_" + subsystem + "_" + name
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
	return s
}

func promLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm writes the snapshot in Prometheus text exposition format.
// Counters export their cumulative total, gauges their last level, and
// histograms a count/sum pair plus interpolated p50/p95/p99 quantile
// samples. The extra labels (experiment, cell, ...) are attached to
// every sample so multiple sweep cells can share one output file.
func (s *Snapshot) WriteProm(w io.Writer, labels ...[2]string) error {
	if s == nil {
		return nil
	}
	ls := promLabels(labels)
	for _, sd := range s.Series {
		pn := promName(sd.Subsystem, sd.Name)
		switch sd.Kind {
		case KindHist:
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
				return err
			}
			h := sd.Hist
			for _, q := range []float64{0.5, 0.95, 0.99} {
				ql := append(append([][2]string{}, labels...), [2]string{"quantile", promFloat(q)})
				if _, err := fmt.Fprintf(w, "%s%s %s\n", pn, promLabels(ql), promFloat(h.Quantile(q))); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", pn, ls, h.SumNs, pn, ls, h.N); err != nil {
				return err
			}
		case KindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total%s %s\n", pn, pn, ls, promFloat(sd.Total)); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", pn, pn, ls, promFloat(sd.Total)); err != nil {
				return err
			}
		}
	}
	return nil
}
