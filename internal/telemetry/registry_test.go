package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNilSafety: every hot-path mutator and registration method must be
// a no-op on nil receivers, so disarmed servers need no guards.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("a", "b", "u") != nil {
		t.Fatal("nil registry returned a counter")
	}
	if r.Histogram("a", "b") != nil {
		t.Fatal("nil registry returned a hist")
	}
	r.CounterFunc("a", "b", "u", func() float64 { return 0 })
	r.Gauge("a", "b", "u", func() float64 { return 0 })
	r.Start(nil)
	r.Stop(0)
	if r.Snapshot() != nil {
		t.Fatal("nil registry returned a snapshot")
	}
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var h *Hist
	h.Observe(sim.Millisecond)
}

// TestHotPathAllocs pins the armed and disarmed hot-path mutators at
// zero allocations: telemetry must never add GC pressure to simulated
// hot loops.
func TestHotPathAllocs(t *testing.T) {
	var nilC *Counter
	var nilH *Hist
	c := &Counter{}
	h := &Hist{}
	for name, fn := range map[string]func(){
		"nil-counter": func() { nilC.Add(1) },
		"nil-hist":    func() { nilH.Observe(sim.Microsecond) },
		"counter":     func() { c.Add(1) },
		"hist":        func() { h.Observe(sim.Microsecond) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per op, want 0", name, allocs)
		}
	}
}

// TestDuplicateRegistrationPanics: series names are a flat namespace;
// re-registration is a programming error caught loudly.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal", "flushes", "ops")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("wal", "flushes", "ops", func() float64 { return 0 })
}

// buildSampledRegistry runs one deterministic sim with a registry
// sampling a counter, a gauge, and a histogram for 10 simulated seconds.
func buildSampledRegistry() *Snapshot {
	sm := sim.New(1)
	r := NewRegistry()
	ctr := r.Counter("txn", "commits", "ops")
	var level float64
	r.Gauge("grant", "occupancy", "frac", func() float64 { return level })
	h := r.Histogram("wal", "flush_latency")
	sm.Spawn("work", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(100 * sim.Millisecond)
			ctr.Add(int64(i % 7))
			level = float64(i%10) / 10
			h.Observe(sim.Duration(i+1) * sim.Microsecond)
		}
	})
	r.Start(sm)
	end := sm.Run(sim.Time(10*sim.Second + 50*sim.Millisecond))
	r.Stop(end)
	return r.Snapshot()
}

// TestRegistryDeterminism: two identical sims yield deep-equal
// snapshots (run under -race in CI, this also exercises the sampler
// proc for data races against the mutating proc).
func TestRegistryDeterminism(t *testing.T) {
	a, b := buildSampledRegistry(), buildSampledRegistry()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a, b)
	}
	if len(a.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(a.Series))
	}
	// Sorted by (subsystem, name).
	for i := 1; i < len(a.Series); i++ {
		prev, cur := a.Series[i-1], a.Series[i]
		if prev.Subsystem+"."+prev.Name >= cur.Subsystem+"."+cur.Name {
			t.Fatalf("snapshot not sorted: %q before %q", prev.Name, cur.Name)
		}
	}
}

// TestCounterSampledAsDeltas: counter series points are per-interval
// deltas whose sum equals the cumulative total.
func TestCounterSampledAsDeltas(t *testing.T) {
	snap := buildSampledRegistry()
	var counter *SeriesData
	for i := range snap.Series {
		if snap.Series[i].Kind == KindCounter {
			counter = &snap.Series[i]
		}
	}
	if counter == nil {
		t.Fatal("no counter series in snapshot")
	}
	var sum float64
	for _, pt := range counter.Points {
		sum += pt.Value
	}
	// 100 increments of i%7: 14 full cycles (0+...+6=21) + 0+1.
	want := float64(14*21 + 1)
	if sum != want || counter.Total != want {
		t.Fatalf("delta sum %.0f, total %.0f, want %.0f", sum, counter.Total, want)
	}
}

// TestRingBufferCaps: a registry with a tiny ring keeps only the newest
// points, oldest evicted first.
func TestRingBufferCaps(t *testing.T) {
	sm := sim.New(1)
	r := NewRegistry()
	r.RingCap = 4
	tick := 0.0
	r.Gauge("x", "t", "s", func() float64 { tick++; return tick })
	r.Start(sm)
	end := sm.Run(sim.Time(10 * sim.Second))
	r.Stop(end)
	pts := r.Snapshot().Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring held %d points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At <= pts[i-1].At {
			t.Fatal("ring points out of order")
		}
	}
	if pts[3].At != sim.Time(10*sim.Second) {
		t.Fatalf("newest point at %v, want 10s", pts[3].At)
	}
}

// TestWriteProm checks the Prometheus exposition shape: counters get
// _total, histograms render as summaries with quantiles, labels carry
// through, and output is deterministic.
func TestWriteProm(t *testing.T) {
	snap := buildSampledRegistry()
	var a, b bytes.Buffer
	if err := snap.WriteProm(&a, [2]string{"experiment", "test"}); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteProm(&b, [2]string{"experiment", "test"}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		`dbsense_txn_commits_total{experiment="test"} 295`,
		`# TYPE dbsense_txn_commits counter`,
		`# TYPE dbsense_grant_occupancy gauge`,
		`# TYPE dbsense_wal_flush_latency summary`,
		`quantile="0.99"`,
		`dbsense_wal_flush_latency_count{experiment="test"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSharedPercentileHelpers covers the helper shared with
// metrics.Distribution and the harness CDF path.
func TestSharedPercentileHelpers(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := PercentileSorted(sorted, c.p); got != c.want {
			t.Errorf("PercentileSorted(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if PercentileSorted(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	if got := MeanOf(sorted); got != 3 {
		t.Errorf("MeanOf = %v, want 3", got)
	}
}
