package serve

import (
	"errors"

	"repro/internal/engine"
	"repro/internal/net"
	"repro/internal/repl"
	"repro/internal/workload/asdb"
)

// ClusterConfig sizes a cluster front end.
type ClusterConfig struct {
	Config

	// PromotedAddr is the listen address the promoted standby's front end
	// binds after failover (default Addr+"1"); resilient clients carry it
	// in their endpoint list and re-dial it when the primary dies.
	PromotedAddr string

	// StalenessBytes bounds replica-read staleness for routed analytical
	// reads (<= 0 uses the replication config's bound).
	StalenessBytes int64
}

// Ack is one client-acknowledged exec recorded at the serving boundary:
// which front end acked it (epoch 0 = original primary, 1 = promoted
// standby), on which transport pair, for which request id, at which
// commit LSN. The chaos harness joins these against the client's own
// ack log and the surviving WAL.
type Ack struct {
	Epoch int
	Pair  uint64
	Req   uint64
	LSN   int64
}

// ClusterFrontend fronts a repl.Cluster instead of a single server: it
// serves the primary, sheds degraded analytical reads to caught-up
// replicas, folds replication health into admission posture, and — after
// repl.Failover promotes a standby — brings up a second front end on the
// promoted node so clients can re-dial and resume.
type ClusterFrontend struct {
	Cl   *repl.Cluster
	Cfg  ClusterConfig
	Net  *net.Network
	FE   *Frontend // epoch-0 front end on the original primary
	PFE  *Frontend // epoch-1 front end on the promoted standby (after Promote)
	DSOf func(*engine.Database) *asdb.Dataset

	// Acks is the append-only server-side ack log across both epochs.
	Acks  []Ack
	Epoch int
}

// NewCluster builds the cluster front end. primaryDS is the primary's
// bound dataset; dsOf maps a standby's database image to its dataset
// view (the same schema bound to a different image).
func NewCluster(cl *repl.Cluster, primaryDS *asdb.Dataset, dsOf func(*engine.Database) *asdb.Dataset, cfg ClusterConfig) *ClusterFrontend {
	cfg.Config = cfg.Config.withDefaults()
	if cfg.PromotedAddr == "" {
		cfg.PromotedAddr = cfg.Addr + "1"
	}
	nw := net.New(cl.Primary.Sim, cfg.Net)
	cf := &ClusterFrontend{Cl: cl, Cfg: cfg, Net: nw, DSOf: dsOf}
	fe := NewOn(nw, cl.Primary, primaryDS, cfg.Config)
	fe.OnExecOK = cf.recordAck(0)
	fe.Router = cf
	fe.ReplUnhealthy = cf.unhealthy
	cf.FE = fe
	return cf
}

// Start binds the primary's front end.
func (cf *ClusterFrontend) Start() error { return cf.FE.Start() }

// Frontend returns the currently-serving front end.
func (cf *ClusterFrontend) Frontend() *Frontend {
	if cf.Epoch > 0 {
		return cf.PFE
	}
	return cf.FE
}

func (cf *ClusterFrontend) recordAck(epoch int) func(pair, req uint64, lsn int64) {
	return func(pair, req uint64, lsn int64) {
		cf.Acks = append(cf.Acks, Ack{Epoch: epoch, Pair: pair, Req: req, LSN: lsn})
	}
}

// unhealthy reports a degraded replication plane: a partitioned link,
// or every standby lagging past the staleness bound. The front end
// halves its degrade threshold while true.
func (cf *ClusterFrontend) unhealthy() bool {
	if cf.Cl.LinkDown() {
		return true
	}
	bound := cf.Cfg.StalenessBytes
	if bound <= 0 {
		bound = cf.Cl.Cfg.StalenessBytes
	}
	return cf.Cl.BestLagBytes() > bound
}

// RouteQuery implements QueryRouter: degraded analytical reads go to
// the most caught-up standby when it is inside the staleness bound.
// After promotion the cluster is a single node again — no routing.
func (cf *ClusterFrontend) RouteQuery() (*engine.Server, *asdb.Dataset) {
	if cf.Epoch > 0 {
		return nil, nil
	}
	i := cf.Cl.RouteRead(cf.Cfg.StalenessBytes)
	if i < 0 {
		return nil, nil
	}
	s := cf.Cl.Standbys[i]
	return s.Srv, cf.DSOf(s.DB)
}

// Promote brings up a front end on the standby repl.Failover promoted,
// listening at PromotedAddr on the same network segment, and advances
// the ack epoch. Call after Cluster.Failover succeeds.
func (cf *ClusterFrontend) Promote() error {
	s := cf.Cl.PromotedStandby()
	if s == nil {
		return errors.New("serve: no promoted standby (run repl.Failover first)")
	}
	cfg := cf.Cfg.Config
	cfg.Addr = cf.Cfg.PromotedAddr
	fe := NewOn(cf.Net, s.Srv, cf.DSOf(s.DB), cfg)
	fe.OnExecOK = cf.recordAck(1)
	cf.PFE = fe
	cf.Epoch = 1
	return fe.Start()
}

// Stop stops whichever front ends were started.
func (cf *ClusterFrontend) Stop() {
	cf.FE.Stop()
	if cf.PFE != nil {
		cf.PFE.Stop()
	}
}
