package serve

import (
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/proto"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/workload/asdb"
)

func bootCluster(t *testing.T, cfg ClusterConfig, rcfg repl.Config) (*engine.Server, *repl.Cluster, *ClusterFrontend) {
	t.Helper()
	ecfg := engine.DefaultConfig()
	ecfg.Seed = 1
	srv := engine.NewServer(ecfg)
	acfg := asdb.Config{SF: 4, ActualRowsPerSF: 4, Seed: 1}
	d := asdb.Build(acfg)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.ArmRecovery(engine.RecoveryOptions{MaxFlushBytes: 4 << 10})

	byDB := make(map[*engine.Database]*asdb.Dataset)
	rcfg.NewImage = func() *engine.Database {
		dd := asdb.Build(acfg)
		byDB[dd.DB] = dd
		return dd.DB
	}
	cl := repl.New(srv, rcfg)
	cf := NewCluster(cl, d, func(db *engine.Database) *asdb.Dataset { return byDB[db] }, cfg)
	srv.Start()
	cl.Start()
	if err := cf.Start(); err != nil {
		t.Fatal(err)
	}
	return srv, cl, cf
}

// TestClusterFailoverServesAtPromotedAddr drives the full failover arc
// at the serving boundary: acked writes land in the epoch-0 ack log with
// their commit LSNs, the primary crash yields typed CodeFailover
// refusals, and after Failover+Promote a client reaches the promoted
// standby at PromotedAddr and its acks carry epoch 1.
func TestClusterFailoverServesAtPromotedAddr(t *testing.T) {
	srv, cl, cf := bootCluster(t, ClusterConfig{},
		repl.Config{Mode: repl.ModeQuorum, Quorum: 1, Replicas: 2})
	var preOK, postOK client.Reply
	var deadCode proto.Code
	srv.Sim.Spawn("driver", func(p *sim.Proc) {
		c, err := client.Dial(p, cf.Net, cf.Cfg.Addr, "t")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if preOK, err = c.Exec(p, "asdb.Update", 11); err != nil {
			t.Errorf("pre-crash exec: %v", err)
		}
		srv.Crash()
		// The epoch-0 front end is stopping: a fresh request must be
		// refused with the typed failover code, not hang or drop.
		if rep, err := c.Exec(p, "asdb.Update", 12); err == nil {
			deadCode = rep.Code
		} else {
			deadCode = proto.CodeFailover // conn torn down is acceptable too
		}
		c.Abandon()
		frep := cl.Failover(p)
		if verr := cl.VerifyFailover(frep); verr != nil {
			t.Errorf("verify failover: %v", verr)
		}
		if perr := cf.Promote(); perr != nil {
			t.Errorf("promote: %v", perr)
			return
		}
		pc, err := client.Dial(p, cf.Net, cf.Cfg.PromotedAddr, "t")
		if err != nil {
			t.Errorf("dial promoted: %v", err)
			return
		}
		if postOK, err = pc.Exec(p, "asdb.Update", 13); err != nil {
			t.Errorf("post-promote exec: %v", err)
		}
		pc.Close(p)
	})
	srv.Sim.Run(sim.Time(120 * sim.Second))
	cf.Stop()
	cl.Shutdown()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(10*sim.Second))

	if !preOK.OK || !postOK.OK {
		t.Fatalf("pre=%+v post=%+v", preOK, postOK)
	}
	if deadCode != proto.CodeFailover {
		t.Fatalf("crashed-primary refusal code = %v, want failover", deadCode)
	}
	if cf.Epoch != 1 || cf.Frontend() != cf.PFE {
		t.Fatalf("epoch %d: promoted front end not serving", cf.Epoch)
	}
	var e0, e1 int
	for _, a := range cf.Acks {
		switch a.Epoch {
		case 0:
			e0++
		case 1:
			e1++
		}
		if a.LSN == 0 {
			t.Fatalf("acked exec recorded with no commit LSN: %+v", a)
		}
	}
	if e0 != 1 || e1 != 1 {
		t.Fatalf("ack log epochs: %d epoch-0, %d epoch-1, want 1/1 (%+v)", e0, e1, cf.Acks)
	}
}

// TestClusterRoutesDegradedReadsToReplica pins read shedding: analytical
// reads admitted past DegradeDepth are routed to a caught-up standby at
// full resources instead of running degraded on the primary.
func TestClusterRoutesDegradedReadsToReplica(t *testing.T) {
	srv, cl, cf := bootCluster(t,
		ClusterConfig{Config: Config{Workers: 1, RunQueue: 16, DegradeDepth: 1}},
		repl.Config{Mode: repl.ModeAsync, Replicas: 1})
	ok := 0
	for i := 0; i < 6; i++ {
		srv.Sim.Spawn("dash", func(p *sim.Proc) {
			c, err := client.Dial(p, cf.Net, cf.Cfg.Addr, "dash")
			if err != nil {
				return
			}
			if rep, err := c.Query(p, "asdb.SumBig", 2); err == nil && rep.OK {
				ok++
			}
			c.Close(p)
		})
	}
	srv.Sim.Run(sim.Time(300 * sim.Second))
	if ok != 6 {
		t.Fatalf("ok = %d of 6, ctr=%+v", ok, cf.FE.Ctr)
	}
	if cf.FE.Ctr.Routed == 0 {
		t.Fatalf("no degraded reads routed to the replica: ctr=%+v", cf.FE.Ctr)
	}
	srv.Stop()
	cl.Shutdown()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
}

// TestReplUnhealthyTightensAdmission pins the posture coupling: with the
// replication link down, the degrade threshold halves, so a query depth
// that passes clean admission when healthy runs degraded when not.
func TestReplUnhealthyTightensAdmission(t *testing.T) {
	run := func(linkDown bool) int64 {
		srv, cl, cf := bootCluster(t,
			ClusterConfig{Config: Config{Workers: 1, RunQueue: 32, DegradeDepth: 8}},
			repl.Config{Mode: repl.ModeAsync, Replicas: 1})
		if linkDown {
			cl.SetLinkDown(true)
		}
		for i := 0; i < 8; i++ {
			srv.Sim.Spawn("dash", func(p *sim.Proc) {
				c, err := client.Dial(p, cf.Net, cf.Cfg.Addr, "dash")
				if err != nil {
					return
				}
				c.Query(p, "asdb.SumBig", 1)
				c.Close(p)
			})
		}
		srv.Sim.Run(sim.Time(300 * sim.Second))
		deg := cf.FE.Ctr.Degraded + cf.FE.Ctr.Routed
		cl.SetLinkDown(false)
		srv.Stop()
		cl.Shutdown()
		srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
		return deg
	}
	healthy, unhealthy := run(false), run(true)
	if healthy != 0 {
		t.Fatalf("healthy cluster degraded %d queries under DegradeDepth", healthy)
	}
	if unhealthy == 0 {
		t.Fatal("link-down cluster never tightened admission posture")
	}
}
