package serve

import (
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload/asdb"
)

func boot(t *testing.T, cfg Config) (*engine.Server, *Frontend) {
	t.Helper()
	ecfg := engine.DefaultConfig()
	ecfg.Seed = 1
	srv := engine.NewServer(ecfg)
	d := asdb.Build(asdb.Config{SF: 4, ActualRowsPerSF: 4, Seed: 1})
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.Start()
	f := New(srv, d, cfg)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	return srv, f
}

func TestServeRoundTrip(t *testing.T) {
	srv, f := boot(t, Config{Workers: 2})
	var exec, query client.Reply
	srv.Sim.Spawn("client", func(p *sim.Proc) {
		cl, err := client.Dial(p, f.Net, "db", "test")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if exec, err = cl.Exec(p, "asdb.PointRead", 17); err != nil {
			t.Errorf("exec: %v", err)
		}
		if query, err = cl.Query(p, "asdb.SumBig", 3); err != nil {
			t.Errorf("query: %v", err)
		}
		cl.Close(p)
	})
	srv.Sim.Run(sim.Time(60 * sim.Second))
	if !exec.OK || exec.Rows != 1 {
		t.Fatalf("exec reply = %+v", exec)
	}
	if !query.OK || query.Rows == 0 {
		t.Fatalf("query reply = %+v", query)
	}
	if f.Ctr.Served != 2 || f.Ctr.Accepted != 1 {
		t.Fatalf("counters = %+v", f.Ctr)
	}
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
}

func TestUnknownStatementRejected(t *testing.T) {
	srv, f := boot(t, Config{Workers: 1})
	var rep client.Reply
	srv.Sim.Spawn("client", func(p *sim.Proc) {
		cl, err := client.Dial(p, f.Net, "db", "test")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		rep, err = cl.Exec(p, "asdb.NoSuchOp", 0)
		if err != nil {
			t.Errorf("call: %v", err)
		}
		cl.Close(p)
	})
	srv.Sim.Run(sim.Time(60 * sim.Second))
	if rep.OK || rep.Code != proto.CodeBadRequest {
		t.Fatalf("reply = %+v", rep)
	}
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
}

// TestOverloadShedsPastRunQueue pins admission control: with one worker
// and a tiny run queue, a burst of concurrent requests is shed with
// CodeOverloaded instead of queueing without bound.
func TestOverloadShedsPastRunQueue(t *testing.T) {
	srv, f := boot(t, Config{Workers: 1, RunQueue: 2, DegradeDepth: 2})
	shed, served := 0, 0
	for i := 0; i < 16; i++ {
		srv.Sim.Spawn("client", func(p *sim.Proc) {
			cl, err := client.Dial(p, f.Net, "db", "burst")
			if err != nil {
				return
			}
			rep, err := cl.Exec(p, "asdb.Update", uint64(p.Now()))
			if err == nil {
				if rep.OK {
					served++
				} else if rep.Code == proto.CodeOverloaded {
					shed++
				}
			}
			cl.Close(p)
		})
	}
	srv.Sim.Run(sim.Time(120 * sim.Second))
	if shed == 0 {
		t.Fatalf("no requests shed: served=%d shed=%d ctr=%+v", served, shed, f.Ctr)
	}
	if served == 0 {
		t.Fatalf("no requests served under burst: ctr=%+v", f.Ctr)
	}
	if int(f.Ctr.Shed) != shed {
		t.Fatalf("Ctr.Shed = %d, clients saw %d", f.Ctr.Shed, shed)
	}
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(120*sim.Second))
}

// TestDegradeBeforeShed pins the middle admission tier: queries admitted
// past DegradeDepth run degraded (half DOP, quarter grant) but still
// succeed.
func TestDegradeBeforeShed(t *testing.T) {
	srv, f := boot(t, Config{Workers: 1, RunQueue: 16, DegradeDepth: 1})
	ok := 0
	for i := 0; i < 6; i++ {
		srv.Sim.Spawn("client", func(p *sim.Proc) {
			cl, err := client.Dial(p, f.Net, "db", "dash")
			if err != nil {
				return
			}
			rep, err := cl.Query(p, "asdb.SumBig", 2)
			if err == nil && rep.OK {
				ok++
			}
			cl.Close(p)
		})
	}
	srv.Sim.Run(sim.Time(300 * sim.Second))
	if ok != 6 {
		t.Fatalf("ok = %d of 6, ctr=%+v", ok, f.Ctr)
	}
	if f.Ctr.Degraded == 0 {
		t.Fatalf("no degraded queries: ctr=%+v", f.Ctr)
	}
	srv.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(120*sim.Second))
}

// TestStopUnderStorm is the regression for Server.Stop during an
// in-flight admission wait: requests sitting in the run queue when the
// server stops must be answered with CodeShutdown (not abandoned), every
// client loop must terminate, and the queue must drain to zero.
func TestStopUnderStorm(t *testing.T) {
	srv, f := boot(t, Config{Workers: 1, RunQueue: 64, DegradeDepth: 64})
	const clients = 24
	done := 0
	sawShutdown := 0
	for i := 0; i < clients; i++ {
		srv.Sim.Spawn("client", func(p *sim.Proc) {
			defer func() { done++ }()
			cl, err := client.Dial(p, f.Net, "db", "storm")
			if err != nil {
				return
			}
			defer cl.Close(p)
			for seq := uint64(0); ; seq++ {
				rep, err := cl.Exec(p, "asdb.PointRead", seq)
				if err != nil {
					return // connection torn down by Stop
				}
				if !rep.OK {
					if rep.Code == proto.CodeShutdown {
						sawShutdown++
					}
					return
				}
			}
		})
	}
	// Let the storm build a queue, then stop the server harness-style:
	// from outside any proc, mid-wait.
	srv.Sim.Run(sim.Time(2 * sim.Second))
	if f.QueueDepth() == 0 {
		t.Fatalf("storm never built a run queue; widen it")
	}
	queued := f.QueueDepth()
	srv.Stop()
	if f.QueueDepth() != 0 {
		t.Fatalf("run queue not drained by Stop: depth=%d", f.QueueDepth())
	}
	if int(f.Ctr.Shutdown) < queued {
		t.Fatalf("Shutdown replies %d < %d queued at stop", f.Ctr.Shutdown, queued)
	}
	// Drain: every client proc must observe shutdown and exit.
	srv.Sim.Run(srv.Sim.Now() + sim.Time(600*sim.Second))
	if done != clients {
		t.Fatalf("only %d of %d clients terminated after Stop", done, clients)
	}
	if sawShutdown == 0 {
		t.Fatalf("no client observed a CodeShutdown reply (queued=%d, ctr=%+v)", queued, f.Ctr)
	}
}

// TestStopIsIdempotent guards the double-stop path (engine Stop hook plus
// an explicit front-end Stop).
func TestStopIsIdempotent(t *testing.T) {
	srv, f := boot(t, Config{})
	srv.Sim.Run(sim.Time(sim.Second))
	f.Stop()
	srv.Stop() // runs f.Stop again via the stop hook
	f.Stop()
	srv.Sim.Run(srv.Sim.Now() + sim.Time(60*sim.Second))
}
