// Package serve is the network serving front end: it listens on the
// simulated transport (internal/net), speaks the wire protocol
// (internal/proto), and multiplexes client requests onto a bounded pool
// of engine.Session workers.
//
// Admission control is first-class and layered the way production
// engines do it:
//
//  1. the transport's accept backlog bounds pending connections (dials
//     past it are refused before a byte of protocol runs),
//  2. the run queue bounds admitted-but-unscheduled requests — a request
//     arriving past the bound is shed immediately with CodeOverloaded
//     rather than queued into a latency collapse,
//  3. before shedding, the front end degrades: once the run queue passes
//     DegradeDepth, analytical statements execute with half the offered
//     DOP and a quarter of the memory-grant fraction (the same
//     half-DOP/quarter-grant posture the engine's deadline governor
//     uses), trading per-query speed for goodput.
//
// Server.Stop during an in-flight admission wait is the failure mode the
// run-queue drain exists for: queued requests are answered with
// CodeShutdown (control-plane Deliver — the stop hook runs outside any
// proc), workers are woken to exit, and the listener closes.
package serve

import (
	"repro/internal/engine"
	"repro/internal/net"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload/asdb"
)

// Config sizes the front end.
type Config struct {
	Addr         string // listen address on the simulated network (default "db")
	Workers      int    // worker sessions executing requests (default 8)
	RunQueue     int    // admitted-request bound; past it requests are shed (default 4×Workers)
	DegradeDepth int    // queue depth past which queries run degraded (default 2×Workers)
	Net          net.Config
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "db"
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.RunQueue <= 0 {
		c.RunQueue = 4 * c.Workers
	}
	if c.DegradeDepth <= 0 {
		c.DegradeDepth = 2 * c.Workers
	}
	return c
}

// request is one admitted statement waiting for a worker.
type request struct {
	conn     *net.Conn
	kind     proto.Kind
	id       uint64
	req      proto.Request
	degraded bool // admitted past DegradeDepth: run with reduced resources
}

// Counters is the front end's cumulative accounting.
type Counters struct {
	Accepted   int64 // connections accepted
	Shed       int64 // requests rejected with CodeOverloaded (run queue full)
	Degraded   int64 // query requests executed in degraded posture
	Served     int64 // requests answered with KResult
	Failed     int64 // requests answered with CodeExecFailed
	BadRequest int64 // malformed frames / unknown statement names
	Shutdown   int64 // requests answered with CodeShutdown
	Failover   int64 // requests answered with CodeFailover (primary crashed)
	Routed     int64 // degraded queries shed to a read replica
}

// QueryRouter offers an alternate node for analytical reads under
// degraded posture — the cluster front end routes to the most
// caught-up read replica within a staleness bound. Returning nil runs
// the query locally.
type QueryRouter interface {
	RouteQuery() (*engine.Server, *asdb.Dataset)
}

// Frontend serves the ASDB statement catalog over the simulated network.
type Frontend struct {
	Srv *engine.Server
	D   *asdb.Dataset
	Cfg Config
	Net *net.Network
	Ctr Counters

	// OnExecOK, when set, observes every acknowledged exec before its
	// reply is sent: the transport pair id, the request id, and the
	// commit's WAL LSN — the server-side half of the acked-commit
	// safety checker's join.
	OnExecOK func(pair, req uint64, lsn int64)

	// Router, when set, may shed degraded-posture analytical reads to a
	// read replica (cluster front end).
	Router QueryRouter

	// ReplUnhealthy, when set and returning true, halves the degrade
	// threshold: a cluster whose replication plane is partitioned or
	// lagging degrades earlier, preserving headroom for the commit path.
	ReplUnhealthy func() bool

	ln      *net.Listener
	runq    []*request
	workq   sim.WaitQueue
	conns   map[*net.Conn]struct{}
	stopped bool
}

// New builds a front end for srv serving d's catalog on its own private
// network segment. Call Start before running the simulation.
func New(srv *engine.Server, d *asdb.Dataset, cfg Config) *Frontend {
	return NewOn(net.New(srv.Sim, cfg.withDefaults().Net), srv, d, cfg)
}

// NewOn builds a front end on an existing network segment, so several
// front ends (a primary and a promoted standby) can share one segment
// and one client population.
func NewOn(nw *net.Network, srv *engine.Server, d *asdb.Dataset, cfg Config) *Frontend {
	return &Frontend{
		Srv:   srv,
		D:     d,
		Cfg:   cfg.withDefaults(),
		Net:   nw,
		conns: make(map[*net.Conn]struct{}),
	}
}

// Start binds the listener, spawns the worker pool and accept loop, and
// hooks Stop into the engine's shutdown sequence.
func (f *Frontend) Start() error {
	ln, err := f.Net.Listen(f.Cfg.Addr)
	if err != nil {
		return err
	}
	f.ln = ln
	// Workers fork their session contexts here, in spawn order, so the
	// engine's RNG stream stays deterministic regardless of traffic.
	for i := 0; i < f.Cfg.Workers; i++ {
		f.Srv.Sim.Spawn("serve-worker", f.worker)
	}
	f.Srv.Sim.Spawn("serve-accept", f.acceptLoop)
	f.Srv.AddStopHook(f.Stop)
	f.registerTelemetry()
	return nil
}

func (f *Frontend) registerTelemetry() {
	r := f.Srv.Tel // nil receiver is a no-op registry
	r.Gauge("serve", "accept_queue", "conns", func() float64 { return float64(f.ln.Depth()) })
	r.Gauge("serve", "run_queue", "requests", func() float64 { return float64(len(f.runq)) })
	r.Gauge("serve", "active_sessions", "conns", func() float64 { return float64(len(f.conns)) })
	r.CounterFunc("serve", "accepted", "conns", func() float64 { return float64(f.Ctr.Accepted) })
	r.CounterFunc("serve", "refused", "conns", func() float64 { return float64(f.ln.Refused) })
	r.CounterFunc("serve", "shed", "requests", func() float64 { return float64(f.Ctr.Shed) })
	r.CounterFunc("serve", "degraded", "requests", func() float64 { return float64(f.Ctr.Degraded) })
	r.CounterFunc("serve", "served", "requests", func() float64 { return float64(f.Ctr.Served) })
	r.CounterFunc("serve", "routed_reads", "requests", func() float64 { return float64(f.Ctr.Routed) })
	f.Net.RegisterTelemetry(r)
}

// stopCode is the typed code for requests cut off by this front end
// going away: a crashed primary interrupts sessions with CodeFailover
// (the client may safely retry — nothing uncommitted survives), a
// planned stop with CodeShutdown.
func (f *Frontend) stopCode() (proto.Code, string) {
	if f.Srv.Crashed() {
		return proto.CodeFailover, "primary crashed"
	}
	return proto.CodeShutdown, "server stopping"
}

// Stop is idempotent and runs from the engine's stop hooks — outside any
// proc. It answers every queued request with CodeShutdown (zero-cost
// Deliver: nothing can park here), wakes the workers so they exit, and
// closes the listener so acceptors return.
func (f *Frontend) Stop() {
	if f.stopped {
		return
	}
	f.stopped = true
	code, msg := f.stopCode()
	for _, r := range f.runq {
		r.conn.Deliver(proto.EncodeError(r.id, code, msg))
		if code == proto.CodeFailover {
			f.Ctr.Failover++
		} else {
			f.Ctr.Shutdown++
		}
	}
	f.runq = nil
	f.workq.WakeAll(f.Srv.Sim)
	f.ln.Close()
	for c := range f.conns {
		c.Close()
	}
}

func (f *Frontend) acceptLoop(p *sim.Proc) {
	for {
		c, err := f.ln.Accept(p)
		if err != nil {
			return
		}
		f.Ctr.Accepted++
		f.conns[c] = struct{}{}
		f.Srv.Sim.Spawn("serve-conn", func(p *sim.Proc) { f.handle(p, c) })
	}
}

// handle is the per-connection protocol loop: handshake, then admission
// for each request frame. Replies for shed/malformed requests are sent
// inline (they still cost wire time); admitted requests are answered by
// whichever worker executes them.
func (f *Frontend) handle(p *sim.Proc, c *net.Conn) {
	defer func() {
		delete(f.conns, c)
		c.Close()
	}()
	buf, err := c.Recv(p)
	if err != nil {
		return
	}
	fr, _, derr := proto.Decode(buf)
	if derr != nil || fr.Kind != proto.KHello {
		f.Ctr.BadRequest++
		c.Send(p, proto.EncodeError(fr.ID, proto.CodeBadRequest, "expected hello"))
		return
	}
	if _, herr := proto.DecodeHello(fr.Payload); herr != nil {
		f.Ctr.BadRequest++
		c.Send(p, proto.EncodeError(fr.ID, proto.CodeHandshake, herr.Error()))
		return
	}
	if err := c.Send(p, proto.EncodeHelloAck()); err != nil {
		return
	}
	for {
		buf, err := c.Recv(p)
		if err != nil {
			return
		}
		fr, _, derr := proto.Decode(buf)
		if derr != nil {
			f.Ctr.BadRequest++
			c.Send(p, proto.EncodeError(0, proto.CodeBadRequest, derr.Error()))
			return
		}
		switch fr.Kind {
		case proto.KGoodbye:
			return
		case proto.KExec, proto.KQuery:
			req, rerr := proto.DecodeRequest(fr.Payload)
			if rerr != nil {
				f.Ctr.BadRequest++
				c.Send(p, proto.EncodeError(fr.ID, proto.CodeBadRequest, rerr.Error()))
				continue
			}
			f.admit(p, c, fr, req)
		default:
			f.Ctr.BadRequest++
			c.Send(p, proto.EncodeError(fr.ID, proto.CodeBadRequest, "unexpected "+fr.Kind.String()))
		}
	}
}

// admit applies the run-queue policy to one request: shutdown beats
// overload beats degrade beats normal admission.
func (f *Frontend) admit(p *sim.Proc, c *net.Conn, fr proto.Frame, req proto.Request) {
	if f.stopped || f.Srv.Stopped() {
		code, msg := f.stopCode()
		if code == proto.CodeFailover {
			f.Ctr.Failover++
		} else {
			f.Ctr.Shutdown++
		}
		c.Send(p, proto.EncodeError(fr.ID, code, msg))
		return
	}
	if len(f.runq) >= f.Cfg.RunQueue {
		f.Ctr.Shed++
		c.Send(p, proto.EncodeError(fr.ID, proto.CodeOverloaded, "run queue full"))
		return
	}
	degradeAt := f.Cfg.DegradeDepth
	if f.ReplUnhealthy != nil && f.ReplUnhealthy() {
		// Unhealthy replication: degrade earlier to preserve headroom.
		degradeAt /= 2
	}
	f.runq = append(f.runq, &request{
		conn: c, kind: fr.Kind, id: fr.ID, req: req,
		degraded: len(f.runq) >= degradeAt,
	})
	f.workq.WakeOne(f.Srv.Sim)
}

// workerState is one worker's session set: its primary session plus
// lazily-opened query-only sessions on any replica the Router sends
// reads to (opened without BindCtx — queries draw no session RNG).
type workerState struct {
	sess   *engine.Session
	routed map[*engine.Server]*engine.Session
}

func (ws *workerState) on(p *sim.Proc, tsrv *engine.Server) *engine.Session {
	if s, ok := ws.routed[tsrv]; ok {
		return s
	}
	s := tsrv.Open(p)
	ws.routed[tsrv] = s
	return s
}

func (f *Frontend) worker(p *sim.Proc) {
	ws := &workerState{
		sess:   f.Srv.Open(p).BindCtx(),
		routed: make(map[*engine.Server]*engine.Session),
	}
	defer func() {
		for _, s := range ws.routed {
			s.Close()
		}
		ws.sess.Close()
	}()
	for {
		for len(f.runq) == 0 && !f.stopped && !f.Srv.Stopped() {
			f.workq.Wait(p)
		}
		if f.stopped || f.Srv.Stopped() {
			return
		}
		r := f.runq[0]
		f.runq = f.runq[1:]
		f.execute(p, ws, r)
	}
}

// failCode types an execution failure: a crash mid-statement is a
// failover (retryable — the txn did not commit), anything else an
// exec failure.
func (f *Frontend) failCode(id uint64, msg string) []byte {
	if f.Srv.Crashed() {
		f.Ctr.Failover++
		return proto.EncodeError(id, proto.CodeFailover, "primary crashed")
	}
	f.Ctr.Failed++
	return proto.EncodeError(id, proto.CodeExecFailed, msg)
}

func (f *Frontend) execute(p *sim.Proc, ws *workerState, r *request) {
	sess := ws.sess
	var reply []byte
	switch r.kind {
	case proto.KExec:
		ok, known := f.D.ExecOp(sess, r.req.Name, r.req.Arg)
		switch {
		case !known:
			f.Ctr.BadRequest++
			reply = proto.EncodeError(r.id, proto.CodeBadRequest, "unknown statement "+r.req.Name)
		case ok:
			f.Ctr.Served++
			if f.OnExecOK != nil {
				f.OnExecOK(r.conn.Pair(), r.id, sess.LastCommitLSN)
			}
			reply = proto.EncodeResult(r.id, proto.Result{Rows: 1})
		default:
			reply = f.failCode(r.id, "aborted")
		}
	case proto.KQuery:
		qsrv, qd, qsess := f.Srv, f.D, sess
		if r.degraded && f.Router != nil {
			if tsrv, td := f.Router.RouteQuery(); tsrv != nil {
				// Shed the analytical read to a caught-up replica at
				// full resources rather than running degraded locally.
				f.Ctr.Routed++
				qsrv, qd, qsess = tsrv, td, ws.on(p, tsrv)
			}
		}
		q, known := qd.QueryOp(r.req.Name, r.req.Arg)
		if !known {
			f.Ctr.BadRequest++
			reply = proto.EncodeError(r.id, proto.CodeBadRequest, "unknown statement "+r.req.Name)
			break
		}
		var o engine.QueryOptions
		if r.degraded && qsrv == f.Srv {
			// The deadline governor's degraded posture, applied at
			// admission instead of mid-query: half DOP, quarter grant.
			f.Ctr.Degraded++
			if dop := f.Srv.EffectiveDop(0) / 2; dop > 0 {
				o.MaxDOP = dop
			}
			o.GrantPct = f.Srv.Cfg.GrantFrac / 4
		}
		res := qsess.Query(q, o)
		if res.Err != nil {
			reply = f.failCode(r.id, res.Err.Error())
		} else {
			f.Ctr.Served++
			reply = proto.EncodeResult(r.id, proto.Result{Rows: uint64(len(res.Rows))})
		}
	}
	// The connection may have died while the statement ran; the engine
	// work still happened, the reply is just undeliverable.
	if f.stopped {
		r.conn.Deliver(reply)
		return
	}
	r.conn.Send(p, reply)
}

// QueueDepth reports the current run-queue depth (for tests/telemetry).
func (f *Frontend) QueueDepth() int { return len(f.runq) }
