package lock

import (
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func setup() (*sim.Sim, *Manager, *metrics.Counters) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	return s, NewManager(s, ctr), ctr
}

func TestCompatibilityMatrixProperties(t *testing.T) {
	// Symmetric except (S,U)/(U,S) which are both true, and X conflicts
	// with everything including itself.
	modes := []Mode{IS, IX, S, U, X}
	for _, a := range modes {
		if compatible[a][X] || compatible[X][a] {
			t.Errorf("X must conflict with %v", a)
		}
	}
	if !compatible[S][U] || !compatible[U][S] {
		t.Error("U must be compatible with granted S and vice versa")
	}
	if compatible[U][U] {
		t.Error("U must conflict with U")
	}
	if !compatible[IS][IX] || !compatible[IX][IS] {
		t.Error("intent modes must be mutually compatible")
	}
	f := func(aRaw, bRaw uint8) bool {
		a, b := Mode(aRaw%5), Mode(bRaw%5)
		// covers(a,b) implies a granted alongside anything compatible
		// with a is also safe for b... at minimum, covers must be
		// reflexive and X covers all.
		return covers(a, a) && covers(X, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedLocksDoNotBlock(t *testing.T) {
	s, m, ctr := setup()
	k := Key{Obj: 1, Row: 5}
	done := 0
	for i := 0; i < 5; i++ {
		owner := int64(i + 1)
		s.Spawn("r", func(p *sim.Proc) {
			m.Acquire(p, owner, k, S)
			p.Sleep(10 * sim.Millisecond)
			m.Release(owner, k)
			done++
		})
	}
	s.Run(sim.Time(sim.Second))
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	if ctr.WaitNs[metrics.WaitLock] != 0 {
		t.Fatal("shared locks should not wait")
	}
}

func TestExclusiveBlocksAndFIFO(t *testing.T) {
	s, m, ctr := setup()
	k := Key{Obj: 1, Row: 5}
	var order []int64
	for i := 0; i < 4; i++ {
		owner := int64(i + 1)
		s.Spawn("w", func(p *sim.Proc) {
			p.Sleep(sim.Duration(owner) * sim.Millisecond) // stagger arrivals
			m.Acquire(p, owner, k, X)
			order = append(order, owner)
			p.Sleep(20 * sim.Millisecond)
			m.Release(owner, k)
		})
	}
	s.Run(sim.Time(sim.Second))
	if len(order) != 4 {
		t.Fatalf("granted %d", len(order))
	}
	for i, o := range order {
		if o != int64(i+1) {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
	if ctr.WaitNs[metrics.WaitLock] == 0 {
		t.Fatal("X contention recorded no LOCK waits")
	}
}

func TestReacquireAndRefCount(t *testing.T) {
	s, m, _ := setup()
	k := Key{Obj: 2, Row: 1}
	s.Spawn("a", func(p *sim.Proc) {
		m.Acquire(p, 1, k, S)
		m.Acquire(p, 1, k, S) // recount
		m.Release(1, k)
		if !m.Held(1, k) {
			t.Error("lock dropped after single release of double acquire")
		}
		m.Release(1, k)
		if m.Held(1, k) {
			t.Error("lock still held after full release")
		}
	})
	s.Run(sim.Time(sim.Second))
}

func TestUpdateLockConversion(t *testing.T) {
	s, m, _ := setup()
	k := Key{Obj: 3, Row: 7}
	sequence := ""
	// Reader holds S; updater takes U (compatible), converts to X after
	// the reader releases.
	s.Spawn("reader", func(p *sim.Proc) {
		m.Acquire(p, 1, k, S)
		p.Sleep(50 * sim.Millisecond)
		sequence += "r"
		m.Release(1, k)
	})
	s.Spawn("updater", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		m.Acquire(p, 2, k, U) // granted alongside S
		sequence += "u"
		m.Acquire(p, 2, k, X) // must wait for reader
		sequence += "x"
		m.Release(2, k)
		m.Release(2, k)
	})
	s.Run(sim.Time(sim.Second))
	if sequence != "urx" {
		t.Fatalf("sequence = %q, want urx", sequence)
	}
}

func TestUpdateLocksConflict(t *testing.T) {
	s, m, _ := setup()
	k := Key{Obj: 4, Row: 1}
	var got []int64
	for i := 0; i < 2; i++ {
		owner := int64(i + 1)
		s.Spawn("u", func(p *sim.Proc) {
			p.Sleep(sim.Duration(owner) * sim.Millisecond)
			m.Acquire(p, owner, k, U)
			got = append(got, owner)
			p.Sleep(30 * sim.Millisecond)
			m.Release(owner, k)
		})
	}
	s.Run(sim.Time(sim.Second))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("U grant order = %v", got)
	}
}

func TestIntentLocksAllowRowAccess(t *testing.T) {
	s, m, _ := setup()
	table := Key{Obj: 5, Row: -1}
	count := 0
	for i := 0; i < 3; i++ {
		owner := int64(i + 1)
		s.Spawn("t", func(p *sim.Proc) {
			m.Acquire(p, owner, table, IX)
			m.Acquire(p, owner, Key{Obj: 5, Row: owner}, X)
			p.Sleep(10 * sim.Millisecond)
			m.Release(owner, Key{Obj: 5, Row: owner})
			m.Release(owner, table)
			count++
		})
	}
	s.Run(sim.Time(sim.Second))
	if count != 3 {
		t.Fatalf("count = %d: IX locks must not serialize row writers", count)
	}
}

func TestWaitingLongestLiveness(t *testing.T) {
	s, m, _ := setup()
	k := Key{Obj: 6, Row: 1}
	s.Spawn("holder", func(p *sim.Proc) {
		m.Acquire(p, 1, k, X)
		p.Sleep(100 * sim.Millisecond)
		m.Release(1, k)
	})
	s.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		m.Acquire(p, 2, k, X)
		m.Release(2, k)
	})
	s.Run(sim.Time(50 * sim.Millisecond))
	if m.WaitingLongest(s.Now()) == 0 {
		t.Fatal("expected a waiter mid-run")
	}
	s.Run(sim.Time(sim.Second))
	if m.WaitingLongest(s.Now()) != 0 {
		t.Fatal("waiter stuck")
	}
}

func TestNamedLatchSerializes(t *testing.T) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	lt := NewNamedLatch("log-buffer", ctr)
	var last sim.Time
	for i := 0; i < 10; i++ {
		s.Spawn("l", func(p *sim.Proc) {
			lt.Do(p, 10_000) // 10us hold
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	s.Run(sim.Time(sim.Second))
	if last < sim.Time(100_000) {
		t.Fatalf("latch did not serialize: finished at %v", last)
	}
	if ctr.WaitNs[metrics.WaitLatch] == 0 {
		t.Fatal("no LATCH waits recorded")
	}
}
