// Package lock implements the engine's hierarchical lock manager (shared,
// update, exclusive, and intent modes with the SQL Server compatibility
// matrix) plus named latches for short-duration structure protection.
//
// Lock waits accumulate in the LOCK wait class and latch waits in LATCH,
// the two DMV buckets the paper's Table 3 compares across TPC-E scale
// factors.
//
// Deadlock discipline: the engine's transactions acquire row locks in a
// global (object, row) order, take U locks before converting to X, and
// compatible requests barge past the queue, so wait-for cycles cannot
// form. The residual hazard — converter starvation under a continuous
// reader stream — is broken by a lock-wait timeout that aborts the victim
// transaction, the observable equivalent of a deadlock-victim kill.
package lock

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	IS Mode = iota // intent shared
	IX             // intent exclusive
	S              // shared
	U              // update
	X              // exclusive
	numModes
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible[granted][requested] follows SQL Server's matrix: U is
// compatible with granted S (and vice versa), but U conflicts with U.
var compatible = [numModes][numModes]bool{
	IS: {IS: true, IX: true, S: true, U: true, X: false},
	IX: {IS: true, IX: true, S: false, U: false, X: false},
	S:  {IS: true, IX: false, S: true, U: true, X: false},
	U:  {IS: true, IX: false, S: true, U: false, X: false},
	X:  {IS: false, IX: false, S: false, U: false, X: false},
}

// covers reports whether holding mode a makes a request for mode b a
// no-op (a is at least as strong as b).
func covers(a, b Mode) bool {
	switch a {
	case X:
		return true
	case U:
		return b == U || b == S || b == IS || b == IX
	case S:
		return b == S || b == IS
	case IX:
		return b == IX || b == IS
	case IS:
		return b == IS
	}
	return false
}

// Key identifies a lockable resource: an object (table/index) and a row
// within it; Row < 0 means the object itself.
type Key struct {
	Obj int
	Row int64
}

type grant struct {
	owner int64
	mode  Mode
	count int
}

type waiter struct {
	owner int64
	mode  Mode
	since sim.Time
	ready bool
	q     *sim.WaitQueue
}

type entry struct {
	granted []grant
	queue   []*waiter
}

// Manager is a lock manager bound to one simulation.
type Manager struct {
	sm  *sim.Sim
	ctr *metrics.Counters

	entries map[Key]*entry

	// Timeout bounds any single lock wait; on expiry Acquire fails and
	// the transaction should abort and retry (the deadlock/starvation
	// victim mechanism — SQL Server picks victims via its detector, we
	// use a timeout with the same observable effect).
	Timeout sim.Duration

	// Timeouts counts lock waits that expired.
	Timeouts int64

	// WaitNsByObj breaks lock wait time down per object (table), the
	// DMV-style drill-down used to debug contention patterns.
	WaitNsByObj map[int]int64
}

// DefaultLockTimeout is the victim timeout for blocked lock requests.
const DefaultLockTimeout = 50 * sim.Millisecond

// NewManager creates a lock manager.
func NewManager(sm *sim.Sim, ctr *metrics.Counters) *Manager {
	return &Manager{
		sm: sm, ctr: ctr,
		entries:     make(map[Key]*entry),
		Timeout:     DefaultLockTimeout,
		WaitNsByObj: make(map[int]int64),
	}
}

// compatibleWithGranted reports whether owner may take mode given the
// entry's current grants (the owner's own grants never conflict).
func (e *entry) compatibleWithGranted(owner int64, mode Mode) bool {
	for _, g := range e.granted {
		if g.owner == owner {
			continue
		}
		if !compatible[g.mode][mode] {
			return false
		}
	}
	return true
}

func (e *entry) findGrant(owner int64) *grant {
	for i := range e.granted {
		if e.granted[i].owner == owner {
			return &e.granted[i]
		}
	}
	return nil
}

// Acquire takes the lock, blocking p until granted or until the
// manager's timeout expires. It returns the wait duration and whether
// the lock was granted; on false the caller must abort its transaction
// (it is the victim).
//
// Admission policy: requests compatible with all current grants are
// admitted even when the queue is non-empty ("barging"). Blocking new
// shared readers behind a queued conversion would let reader-converter
// cycles form; with barging plus the engine's ordered acquisition, wait
// chains advance monotonically and cycles are impossible. The residual
// hazard is converter starvation under a continuous reader stream, which
// the timeout converts into a victim abort.
func (m *Manager) Acquire(p *sim.Proc, owner int64, key Key, mode Mode) (sim.Duration, bool) {
	e := m.entries[key]
	if e == nil {
		e = &entry{}
		m.entries[key] = e
	}
	if g := e.findGrant(owner); g != nil {
		if covers(g.mode, mode) {
			g.count++
			return 0, true
		}
		// Conversion: upgrade in place if compatible with others.
		if e.compatibleWithGranted(owner, mode) {
			g.mode = mode
			g.count++
			return 0, true
		}
		// Conversion must wait; it goes to the head of the queue, as
		// converters do in SQL Server.
		w := &waiter{owner: owner, mode: mode, since: p.Now(), q: &sim.WaitQueue{}}
		e.queue = append([]*waiter{w}, e.queue...)
		return m.waitFor(p, key, e, w)
	}
	if e.compatibleWithGranted(owner, mode) {
		e.granted = append(e.granted, grant{owner: owner, mode: mode, count: 1})
		return 0, true
	}
	w := &waiter{owner: owner, mode: mode, since: p.Now(), q: &sim.WaitQueue{}}
	e.queue = append(e.queue, w)
	return m.waitFor(p, key, e, w)
}

// waitFor parks until the waiter is granted or the timeout expires.
func (m *Manager) waitFor(p *sim.Proc, key Key, e *entry, w *waiter) (sim.Duration, bool) {
	start := p.Now()
	deadline := start + sim.Time(m.Timeout)
	for !w.ready {
		remaining := sim.Duration(deadline - p.Now())
		if m.Timeout <= 0 {
			w.q.Wait(p)
			continue
		}
		if remaining <= 0 || w.q.WaitTimeout(p, remaining) {
			if w.ready {
				break // granted in the same instant the timeout fired
			}
			// Victim: withdraw the request.
			for i, qw := range e.queue {
				if qw == w {
					e.queue = append(e.queue[:i], e.queue[i+1:]...)
					break
				}
			}
			wait := sim.Duration(p.Now() - start)
			metrics.ChargeWait(p, m.ctr, metrics.WaitLock, wait)
			m.WaitNsByObj[key.Obj] += int64(wait)
			m.Timeouts++
			m.promote(key, e)
			return wait, false
		}
	}
	wait := sim.Duration(p.Now() - start)
	metrics.ChargeWait(p, m.ctr, metrics.WaitLock, wait)
	m.WaitNsByObj[key.Obj] += int64(wait)
	e.mergeGrant(w.owner, w.mode)
	return wait, true
}

// mergeGrant folds a newly granted request into the owner's grant entry
// (promote may have pre-registered it with count 0).
func (e *entry) mergeGrant(owner int64, mode Mode) {
	if g := e.findGrant(owner); g != nil {
		if !covers(g.mode, mode) {
			g.mode = mode
		}
		g.count++
		return
	}
	e.granted = append(e.granted, grant{owner: owner, mode: mode, count: 1})
}

// Release drops one reference to the owner's grant on key, removing the
// grant when the count reaches zero and promoting eligible waiters.
func (m *Manager) Release(owner int64, key Key) {
	e := m.entries[key]
	if e == nil {
		return
	}
	for i := range e.granted {
		if e.granted[i].owner == owner {
			e.granted[i].count--
			if e.granted[i].count <= 0 {
				e.granted = append(e.granted[:i], e.granted[i+1:]...)
			}
			break
		}
	}
	m.promote(key, e)
}

// promote grants queued waiters FIFO as long as they are compatible.
func (m *Manager) promote(key Key, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if !e.compatibleWithGranted(w.owner, w.mode) {
			break
		}
		e.queue = e.queue[1:]
		w.ready = true
		w.q.WakeAll(m.sm)
		// Tentatively record the grant so the next waiter's compatibility
		// check sees it (the woken proc will merge counts on wakeup).
		if g := e.findGrant(w.owner); g == nil {
			e.granted = append(e.granted, grant{owner: w.owner, mode: w.mode, count: 0})
		}
	}
	if len(e.granted) == 0 && len(e.queue) == 0 {
		delete(m.entries, key)
	}
}

// WaitingLongest returns the age of the oldest waiter, for liveness checks.
func (m *Manager) WaitingLongest(now sim.Time) sim.Duration {
	var max sim.Duration
	for _, e := range m.entries {
		for _, w := range e.queue {
			if d := sim.Duration(now - w.since); d > max {
				max = d
			}
		}
	}
	return max
}

// Held reports whether owner currently holds any grant on key.
func (m *Manager) Held(owner int64, key Key) bool {
	e := m.entries[key]
	if e == nil {
		return false
	}
	return e.findGrant(owner) != nil
}

// NamedLatch is a short-duration exclusive latch (allocation structures,
// log buffer, etc.). Waits are recorded in the LATCH class.
type NamedLatch struct {
	Name string
	res  *sim.Resource
	ctr  *metrics.Counters
}

// NewNamedLatch creates a latch.
func NewNamedLatch(name string, ctr *metrics.Counters) *NamedLatch {
	return &NamedLatch{Name: name, res: sim.NewResource(1), ctr: ctr}
}

// Do acquires the latch, holds it for holdNs of simulated time, and
// releases it.
func (l *NamedLatch) Do(p *sim.Proc, holdNs float64) {
	wait := l.res.Acquire(p)
	metrics.ChargeWait(p, l.ctr, metrics.WaitLatch, wait)
	if holdNs > 0 {
		p.Sleep(sim.Duration(holdNs))
	}
	l.res.Release(p.Sim())
}
