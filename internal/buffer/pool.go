// Package buffer implements the engine's buffer pool: the nominal-page
// cache between the row/column stores and the NVMe device.
//
// Residency is tracked with per-file bitsets (resident / referenced /
// dirty) and a CLOCK sweep for eviction, which keeps bookkeeping at a few
// bits per nominal page — essential when a "96 GB" database has twelve
// million nominal pages. Page latching is modelled with a striped latch
// table: concurrent point accesses to the same page (or, rarely, to a
// colliding stripe) serialize, producing the PAGELATCH waits of the
// paper's Table 3; latches held across device reads produce PAGEIOLATCH
// waits.
package buffer

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

// latchStripes is the size of the page-latch hash table. Collisions
// between distinct pages are possible but rare (as with real latch
// partitioning); same-page contention always collides, which is the
// behaviour under study.
const latchStripes = 1024

type latch struct {
	held bool
	inIO bool
	q    sim.WaitQueue
}

type fileState struct {
	file       *storage.File
	resident   []uint64
	referenced []uint64
	dirty      []uint64
	nResident  int64
}

func (fs *fileState) grow(pageNo int64) {
	words := int(pageNo/64) + 1
	for len(fs.resident) < words {
		fs.resident = append(fs.resident, 0)
		fs.referenced = append(fs.referenced, 0)
		fs.dirty = append(fs.dirty, 0)
	}
}

func (fs *fileState) bit(bits []uint64, pageNo int64) bool {
	w := pageNo / 64
	if w >= int64(len(bits)) {
		return false
	}
	return bits[w]&(1<<uint(pageNo%64)) != 0
}

func (fs *fileState) set(bits []uint64, pageNo int64, v bool) {
	fs.grow(pageNo)
	w := pageNo / 64
	if v {
		bits[w] |= 1 << uint(pageNo%64)
	} else {
		bits[w] &^= 1 << uint(pageNo%64)
	}
}

// Pool is a buffer pool bound to one simulation and device.
type Pool struct {
	sm  *sim.Sim
	dev *iodev.Device
	ctr *metrics.Counters

	basePages     int64 // configured capacity, before fault-injected shrinks
	capacityPages int64
	resident      int64

	files   []*fileState
	byID    map[int]*fileState
	latches [latchStripes]latch

	// CLOCK hand.
	handFile int
	handWord int

	// Checkpoint pacing.
	CheckpointInterval sim.Duration

	// CkptChunkHook, when set, runs after each checkpoint chunk write —
	// the seeded mid-checkpoint crash point (between the CKPT_BEGIN and
	// CKPT_END records).
	CkptChunkHook func()

	// Crash-recovery bookkeeping (armed runs only). recLSN is captured at
	// first-dirty, pageLSN at last-dirty (both as the append position at
	// modification time — the log record for the write joins the stream
	// at commit, so these are conservative lower bounds); durable is the
	// LSN the on-device page image reflects, advanced at writeback.
	armed      bool
	log        *wal.Log
	activeTxns func() []int64
	dirtyRec   map[pageKey]int64 // recLSN per dirty page
	dirtyLast  map[pageKey]int64 // pageLSN per dirty page
	durable    map[pageKey]int64 // LSN of the durable page image

	// Telemetry counters, always maintained (plain adds on paths that
	// already mutate pool state, so they cannot perturb simulation).
	evictions  int64 // pages evicted by the CLOCK hand
	ckptPages  int64 // pages written back by checkpoint rounds
	ckptRounds int64 // completed checkpoint rounds

	ckptQ   sim.WaitQueue // checkpointer parks here between rounds
	stopped bool
}

// Evictions returns the cumulative count of pages evicted by CLOCK.
func (p *Pool) Evictions() int64 { return p.evictions }

// CheckpointPages returns the cumulative pages written by checkpoints —
// the checkpoint-progress counter.
func (p *Pool) CheckpointPages() int64 { return p.ckptPages }

// CheckpointRounds returns the count of completed checkpoint rounds.
func (p *Pool) CheckpointRounds() int64 { return p.ckptRounds }

// pageKey names a page globally for the recovery maps.
type pageKey struct {
	file int
	page int64
}

// New creates a pool with the given capacity in bytes.
func New(sm *sim.Sim, dev *iodev.Device, ctr *metrics.Counters, capacityBytes int64) *Pool {
	p := &Pool{
		sm:                 sm,
		dev:                dev,
		ctr:                ctr,
		capacityPages:      capacityBytes / storage.PageBytes,
		byID:               make(map[int]*fileState),
		CheckpointInterval: 2 * sim.Second,
	}
	if p.capacityPages < 64 {
		p.capacityPages = 64
	}
	p.basePages = p.capacityPages
	return p
}

// SetCapacityFrac shrinks (or restores) the pool to frac of its configured
// capacity, evicting immediately to fit — the model for a fault-injected
// memory-pressure spike, where an external consumer steals buffer memory.
// frac is clamped to (0, 1]; the floor of 64 pages still applies.
func (p *Pool) SetCapacityFrac(frac float64) {
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	pages := int64(float64(p.basePages) * frac)
	if pages < 64 {
		pages = 64
	}
	p.capacityPages = pages
	p.makeRoom(0)
}

// ioAttempts bounds the buffer pool's retries of a transiently failing
// device read before giving up and depositing the error on the proc.
const ioAttempts = 3

// readPages reads bytes from the device with bounded retry. On success it
// returns true; after ioAttempts transient failures it records the error
// on the proc (sim.Proc.SetFail) and returns false, letting the query
// coordinator surface a typed IO error.
func (p *Pool) readPages(proc *sim.Proc, bytes int64) bool {
	var lastErr error
	for i := 0; i < ioAttempts; i++ {
		_, err := p.dev.ReadErr(proc, bytes)
		if err == nil {
			return true
		}
		lastErr = err
		if i < ioAttempts-1 {
			p.ctr.IORetries++
		}
	}
	proc.SetFail(lastErr)
	return false
}

// Register adds a file to the pool. Files must be registered before use.
func (p *Pool) Register(f *storage.File) {
	if _, dup := p.byID[f.ID]; dup {
		panic(fmt.Sprintf("buffer: file %d (%s) registered twice", f.ID, f.Name))
	}
	fs := &fileState{file: f}
	fs.grow(f.Pages + 63)
	p.files = append(p.files, fs)
	p.byID[f.ID] = fs
}

// CapacityPages returns the pool capacity in pages.
func (p *Pool) CapacityPages() int64 { return p.capacityPages }

// ResidentPages returns the current number of resident pages.
func (p *Pool) ResidentPages() int64 { return p.resident }

func (p *Pool) state(f *storage.File) *fileState {
	fs, ok := p.byID[f.ID]
	if !ok {
		panic(fmt.Sprintf("buffer: file %d (%s) not registered", f.ID, f.Name))
	}
	return fs
}

// stripeFor hashes (file, page) onto a latch stripe.
func (p *Pool) stripeFor(fileID int, pageNo int64) *latch {
	h := uint64(fileID)*0x9e3779b97f4a7c15 + uint64(pageNo)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return &p.latches[h%latchStripes]
}

func (p *Pool) acquireLatch(proc *sim.Proc, l *latch) {
	for l.held {
		wasIO := l.inIO
		start := proc.Now()
		l.q.Wait(proc)
		wait := sim.Duration(proc.Now() - start)
		if wasIO {
			metrics.ChargeWait(proc, p.ctr, metrics.WaitPageIOLatch, wait)
		} else {
			metrics.ChargeWait(proc, p.ctr, metrics.WaitPageLatch, wait)
		}
	}
	l.held = true
}

func (p *Pool) releaseLatch(l *latch) {
	l.held = false
	l.inIO = false
	l.q.WakeOne(p.sm)
}

// Probe performs a point access to one page with latch semantics: it
// waits for the page latch, performs device I/O if the page is not
// resident (PAGEIOLATCH for waiters), and marks the page
// referenced/dirty. Writers hold the latch exclusively for holdNs (the
// in-buffer row modification), which is what creates PAGELATCH
// contention on append hotspots; readers take a shared latch, so they
// only ever wait behind writers or in-flight I/O, never each other —
// and release immediately (their hold would not block anything).
// It reports whether the access was a buffer hit.
func (p *Pool) Probe(proc *sim.Proc, f *storage.File, pageNo int64, write bool, holdNs float64) bool {
	fs := p.state(f)
	fs.grow(pageNo)
	l := p.stripeFor(f.ID, pageNo)
	p.acquireLatch(proc, l)

	hit := fs.bit(fs.resident, pageNo)
	stmt := metrics.StmtOf(proc)
	if hit {
		p.ctr.BufferHits++
		if stmt != nil {
			stmt.BufferHits++
		}
	} else {
		p.ctr.BufferMisses++
		if stmt != nil {
			stmt.BufferMisses++
		}
		l.inIO = true
		ok := p.readPages(proc, storage.PageBytes)
		l.inIO = false
		if !ok {
			// The read never landed: the page is not resident, and the
			// failure is parked on the proc for the coordinator to collect.
			p.releaseLatch(l)
			return false
		}
		p.makeRoom(1)
		fs.set(fs.resident, pageNo, true)
		fs.nResident++
		p.resident++
	}
	fs.set(fs.referenced, pageNo, true)
	if write {
		fs.set(fs.dirty, pageNo, true)
		if p.armed {
			p.markDirty(pageKey{f.ID, pageNo})
		}
		if holdNs > 0 {
			proc.Sleep(sim.Duration(holdNs))
		}
	}
	p.releaseLatch(l)
	return hit
}

// Scan performs a bulk sequential access of nPages starting at startPage,
// reading missing runs with readahead-sized device requests. It returns
// the number of pages that missed. Bulk scans skip latch simulation (real
// scans latch each page briefly but essentially never contend).
func (p *Pool) Scan(proc *sim.Proc, f *storage.File, startPage, nPages, readaheadPages int64) int64 {
	if nPages <= 0 {
		return 0
	}
	if readaheadPages < 1 {
		readaheadPages = 1
	}
	fs := p.state(f)
	fs.grow(startPage + nPages)
	var missTotal, hitTotal int64
	stmt := metrics.StmtOf(proc)
	defer func() {
		if stmt != nil {
			stmt.BufferHits += hitTotal
			stmt.BufferMisses += missTotal
		}
	}()
	page := startPage
	end := startPage + nPages
	for page < end {
		// Collect the next run of missing pages (up to readahead).
		for page < end && fs.bit(fs.resident, page) {
			fs.set(fs.referenced, page, true)
			p.ctr.BufferHits++
			hitTotal++
			page++
			// Word-level fast path: whole 64-page blocks that are fully
			// resident are marked referenced and skipped in one step.
			for page%64 == 0 && end-page >= 64 {
				w := page / 64
				if fs.resident[w] != ^uint64(0) {
					break
				}
				fs.referenced[w] = ^uint64(0)
				p.ctr.BufferHits += 64
				hitTotal += 64
				page += 64
			}
		}
		if page >= end {
			break
		}
		runStart := page
		for page < end && page-runStart < readaheadPages && !fs.bit(fs.resident, page) {
			page++
		}
		run := page - runStart
		p.ctr.BufferMisses += run
		missTotal += run
		if !p.readPages(proc, run*storage.PageBytes) {
			// Abandon the scan; the failure is on the proc.
			return missTotal
		}
		p.makeRoom(run)
		for q := runStart; q < runStart+run; q++ {
			fs.set(fs.resident, q, true)
			fs.set(fs.referenced, q, true)
		}
		fs.nResident += run
		p.resident += run
	}
	return missTotal
}

// makeRoom evicts pages until n new pages fit, using a CLOCK sweep over
// all files' resident bitsets. Dirty victims are written back
// asynchronously (charged to the device's write channel).
func (p *Pool) makeRoom(n int64) {
	if len(p.files) == 0 {
		return
	}
	guard := 0
	for p.resident+n > p.capacityPages {
		fs := p.files[p.handFile]
		if p.handWord >= len(fs.resident) {
			p.handFile = (p.handFile + 1) % len(p.files)
			p.handWord = 0
			guard++
			if guard > 3*len(p.files) {
				// Two full sweeps without progress (everything referenced
				// and re-referenced): force-clear reference bits happens
				// naturally below, so this is a safety valve.
				break
			}
			continue
		}
		w := fs.resident[p.handWord]
		if w == 0 {
			p.handWord++
			continue
		}
		ref := fs.referenced[p.handWord]
		// Second-chance: clear reference bits for this word, evict the
		// unreferenced residents.
		evictable := w &^ ref
		fs.referenced[p.handWord] &^= w
		if evictable == 0 {
			p.handWord++
			continue
		}
		dirtyEvicted := evictable & fs.dirty[p.handWord]
		if p.armed && dirtyEvicted != 0 {
			// WAL-before-data: a dirty page whose pageLSN is past the
			// flushed LSN cannot be written back yet — skip it this sweep
			// (the eviction overshoots onto other victims instead).
			var blocked uint64
			for b := dirtyEvicted; b != 0; b &= b - 1 {
				bit := b & -b
				pg := int64(p.handWord)*64 + int64(bits.TrailingZeros64(bit))
				if p.dirtyLast[pageKey{fs.file.ID, pg}] > p.log.FlushedLSN() {
					blocked |= bit
				}
			}
			evictable &^= blocked
			dirtyEvicted &^= blocked
			if evictable == 0 {
				p.handWord++
				continue
			}
		}
		fs.dirty[p.handWord] &^= evictable
		fs.resident[p.handWord] &^= evictable
		cnt := int64(popcount(evictable))
		fs.nResident -= cnt
		p.resident -= cnt
		p.evictions += cnt
		if dirtyEvicted != 0 {
			if p.armed {
				for b := dirtyEvicted; b != 0; b &= b - 1 {
					pg := int64(p.handWord)*64 + int64(bits.TrailingZeros64(b&-b))
					p.markDurable(pageKey{fs.file.ID, pg})
				}
			}
			p.dev.WriteAsync(p.sm.Now(), int64(popcount(dirtyEvicted))*storage.PageBytes)
		}
		p.handWord++
		guard = 0
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// StartCheckpointer spawns the background checkpoint writer: every
// CheckpointInterval it walks the dirty bitsets and writes dirty pages
// back in 1 MB chunks using blocking writes, so it self-paces against the
// device and any blkio write throttle — competing with log flushes
// exactly as a real checkpoint does. With recovery armed each round is a
// fuzzy checkpoint: a CKPT_BEGIN record, a dirty-page-table and
// active-transaction-table snapshot, WAL-before-data writeback, and a
// CKPT_END record carrying the snapshot.
func (p *Pool) StartCheckpointer() {
	p.sm.Spawn("checkpoint", func(proc *sim.Proc) {
		for !p.stopped {
			p.ckptQ.WaitTimeout(proc, p.CheckpointInterval)
			if p.stopped {
				return
			}
			p.checkpoint(proc)
		}
	})
}

// checkpoint runs one checkpoint round. It may return early when the
// pool stops (or crashes) mid-round — the fuzzy checkpoint then has no
// CKPT_END record and recovery falls back to the previous complete one.
func (p *Pool) checkpoint(proc *sim.Proc) {
	const chunkPages = 128 // 1 MB
	var dpt []wal.PageRecLSN
	var att []int64
	if p.armed {
		p.log.AppendBatch([]*wal.Record{{Type: wal.RecCkptBegin}})
		dpt = p.snapshotDPT()
		if p.activeTxns != nil {
			att = p.activeTxns()
		}
	}
	// Pages whose dirty bit was cleared this round but whose chunk has
	// not been written yet (armed bookkeeping).
	var inFlight []pageKey
	var inFlightLSN int64
	written := func(n int64) {
		for ; n > 0 && len(inFlight) > 0; n-- {
			p.markDurable(inFlight[0])
			inFlight = inFlight[1:]
		}
	}
	for _, fs := range p.files {
		pending := int64(0)
		for wi := range fs.dirty {
			d := fs.dirty[wi] & fs.resident[wi]
			if d == 0 {
				continue
			}
			fs.dirty[wi] &^= d
			pending += int64(popcount(d))
			if p.armed {
				for b := d; b != 0; b &= b - 1 {
					pg := int64(wi)*64 + int64(bits.TrailingZeros64(b&-b))
					pk := pageKey{fs.file.ID, pg}
					inFlight = append(inFlight, pk)
					if l := p.dirtyLast[pk]; l > inFlightLSN {
						inFlightLSN = l
					}
				}
			}
			for pending >= chunkPages {
				if !p.flushBeforeData(proc, inFlightLSN) {
					return
				}
				p.dev.Write(proc, chunkPages*storage.PageBytes)
				written(chunkPages)
				p.ckptPages += chunkPages
				if p.CkptChunkHook != nil {
					p.CkptChunkHook()
				}
				pending -= chunkPages
				if p.stopped {
					return
				}
			}
		}
		if pending > 0 {
			if !p.flushBeforeData(proc, inFlightLSN) {
				return
			}
			p.dev.Write(proc, pending*storage.PageBytes)
			written(pending)
			p.ckptPages += pending
			if p.CkptChunkHook != nil {
				p.CkptChunkHook()
			}
		}
		if p.stopped {
			return
		}
	}
	if p.armed {
		p.log.AppendBatch([]*wal.Record{{Type: wal.RecCkptEnd, DPT: dpt, ATT: att}})
	}
	p.ckptRounds++
}

// flushBeforeData enforces WAL-before-data: the log must be durable past
// the highest pageLSN among the pages about to be written. It reports
// false when the log stopped before reaching it.
func (p *Pool) flushBeforeData(proc *sim.Proc, lsn int64) bool {
	if !p.armed || lsn == 0 {
		return true
	}
	_, err := p.log.WaitDurable(proc, lsn)
	return err == nil
}

// Stop makes background procs exit at their next wakeup; the
// checkpointer is woken so it notices immediately instead of sleeping
// out the rest of its interval.
func (p *Pool) Stop() {
	p.stopped = true
	p.ckptQ.WakeAll(p.sm)
}

// ArmRecovery switches the pool into crash-recovery mode: per-page
// recLSN/pageLSN tracking, WAL-before-data on writeback and eviction,
// and fuzzy-checkpoint records through the log. activeTxns supplies the
// active-transaction table captured by each checkpoint.
func (p *Pool) ArmRecovery(log *wal.Log, activeTxns func() []int64) {
	p.armed = true
	p.log = log
	p.activeTxns = activeTxns
	p.dirtyRec = make(map[pageKey]int64)
	p.dirtyLast = make(map[pageKey]int64)
	p.durable = make(map[pageKey]int64)
}

// markDirty records the append-position horizon of a page modification.
func (p *Pool) markDirty(pk pageKey) {
	lsn := p.log.AppendedLSN()
	if _, ok := p.dirtyRec[pk]; !ok {
		p.dirtyRec[pk] = lsn
	}
	p.dirtyLast[pk] = lsn
}

// markDurable advances a page's durable image to its last-dirty LSN.
func (p *Pool) markDurable(pk pageKey) {
	p.durable[pk] = p.dirtyLast[pk]
	delete(p.dirtyRec, pk)
	delete(p.dirtyLast, pk)
}

// snapshotDPT copies the dirty-page table, sorted for determinism.
func (p *Pool) snapshotDPT() []wal.PageRecLSN {
	dpt := make([]wal.PageRecLSN, 0, len(p.dirtyRec))
	for pk, rec := range p.dirtyRec {
		dpt = append(dpt, wal.PageRecLSN{Page: wal.PageID{File: pk.file, Page: pk.page}, RecLSN: rec})
	}
	sort.Slice(dpt, func(i, j int) bool {
		if dpt[i].Page.File != dpt[j].Page.File {
			return dpt[i].Page.File < dpt[j].Page.File
		}
		return dpt[i].Page.Page < dpt[j].Page.Page
	})
	return dpt
}

// DurablePageLSN returns the LSN the durable image of a page reflects
// (0 = the load-time image). Recovery's redo pass consults it to decide
// which pages must be read back.
func (p *Pool) DurablePageLSN(file int, page int64) int64 {
	return p.durable[pageKey{file, page}]
}

// DirtyPageLSNs returns a page's (recLSN, pageLSN), zero when clean.
func (p *Pool) DirtyPageLSNs(file int, page int64) (recLSN, pageLSN int64) {
	pk := pageKey{file, page}
	return p.dirtyRec[pk], p.dirtyLast[pk]
}

// WarmFile marks an entire file resident (up to pool capacity), modelling
// a post-load warm cache. Pages beyond capacity stay cold.
func (p *Pool) WarmFile(f *storage.File) {
	fs := p.state(f)
	fs.grow(f.Pages + 63)
	for pg := int64(0); pg < f.Pages && p.resident < p.capacityPages; pg++ {
		if !fs.bit(fs.resident, pg) {
			fs.set(fs.resident, pg, true)
			fs.nResident++
			p.resident++
		}
	}
}
