package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

func setup(capacityBytes int64) (*sim.Sim, *Pool, *metrics.Counters) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	dev := iodev.New(iodev.PaperSSD(), ctr)
	p := New(s, dev, ctr, capacityBytes)
	return s, p, ctr
}

func file(id int, pages int64) *storage.File {
	return &storage.File{ID: id, Name: "f", Region: uint64(id) << 40, Pages: pages}
}

func TestProbeMissThenHit(t *testing.T) {
	s, p, ctr := setup(10 << 20)
	f := file(1, 1000)
	p.Register(f)
	s.Spawn("w", func(proc *sim.Proc) {
		if p.Probe(proc, f, 42, false, 500) {
			t.Error("first probe should miss")
		}
		if !p.Probe(proc, f, 42, false, 500) {
			t.Error("second probe should hit")
		}
	})
	s.Run(sim.Time(sim.Second))
	if ctr.BufferMisses != 1 || ctr.BufferHits != 1 {
		t.Fatalf("hits=%d misses=%d", ctr.BufferHits, ctr.BufferMisses)
	}
	if ctr.SSDReadBytes != storage.PageBytes {
		t.Fatalf("read bytes = %d", ctr.SSDReadBytes)
	}
}

func TestScanReadaheadCoalesces(t *testing.T) {
	s, p, ctr := setup(100 << 20)
	f := file(1, 10000)
	p.Register(f)
	var misses int64
	s.Spawn("w", func(proc *sim.Proc) {
		misses = p.Scan(proc, f, 0, 1000, 64)
	})
	s.Run(sim.Time(10 * sim.Second))
	if misses != 1000 {
		t.Fatalf("misses = %d", misses)
	}
	// 1000 pages with 64-page readahead: ~16 I/O requests, not 1000.
	if ctr.SSDReadOps > 20 {
		t.Fatalf("read ops = %d, want coalesced", ctr.SSDReadOps)
	}
	// Rescan hits.
	s.Spawn("w2", func(proc *sim.Proc) {
		if m := p.Scan(proc, f, 0, 1000, 64); m != 0 {
			t.Errorf("rescan missed %d pages", m)
		}
	})
	s.Run(sim.Time(20 * sim.Second))
}

func TestEvictionUnderPressure(t *testing.T) {
	// Capacity 128 pages; scan 1000 pages: residency stays at capacity.
	s, p, _ := setup(128 * storage.PageBytes)
	f := file(1, 10000)
	p.Register(f)
	s.Spawn("w", func(proc *sim.Proc) {
		p.Scan(proc, f, 0, 1000, 32)
	})
	s.Run(sim.Time(100 * sim.Second))
	if p.ResidentPages() > p.CapacityPages() {
		t.Fatalf("resident %d exceeds capacity %d", p.ResidentPages(), p.CapacityPages())
	}
	// Re-scan misses heavily (thrashing).
	var misses int64
	s.Spawn("w2", func(proc *sim.Proc) {
		misses = p.Scan(proc, f, 0, 1000, 32)
	})
	s.Run(sim.Time(200 * sim.Second))
	if misses < 800 {
		t.Fatalf("rescan misses = %d, want thrashing", misses)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s, p, ctr := setup(128 * storage.PageBytes)
	f := file(1, 10000)
	p.Register(f)
	s.Spawn("w", func(proc *sim.Proc) {
		for i := int64(0); i < 300; i++ {
			p.Probe(proc, f, i, true, 0)
		}
	})
	s.Run(sim.Time(100 * sim.Second))
	if ctr.SSDWriteBytes == 0 {
		t.Fatal("dirty evictions produced no writes")
	}
}

func TestSamePageLatchContention(t *testing.T) {
	s, p, ctr := setup(100 << 20)
	f := file(1, 100)
	p.Register(f)
	// Warm the page so waits are PAGELATCH, not PAGEIOLATCH.
	s.Spawn("warm", func(proc *sim.Proc) {
		p.Probe(proc, f, 7, false, 0)
	})
	s.Run(sim.Time(sim.Second))
	for i := 0; i < 10; i++ {
		s.Spawn("w", func(proc *sim.Proc) {
			p.Probe(proc, f, 7, true, 5000) // 5us hold
		})
	}
	s.Run(sim.Time(10 * sim.Second))
	if ctr.WaitNs[metrics.WaitPageLatch] == 0 {
		t.Fatal("no PAGELATCH waits under same-page contention")
	}
}

func TestIOLatchWaitClassification(t *testing.T) {
	s, p, ctr := setup(100 << 20)
	f := file(1, 100)
	p.Register(f)
	// Two procs probe the same cold page; the second waits during the
	// first's I/O and must record PAGEIOLATCH.
	for i := 0; i < 2; i++ {
		s.Spawn("w", func(proc *sim.Proc) {
			p.Probe(proc, f, 9, false, 0)
		})
	}
	s.Run(sim.Time(10 * sim.Second))
	if ctr.WaitNs[metrics.WaitPageIOLatch] == 0 {
		t.Fatal("no PAGEIOLATCH wait recorded")
	}
	if ctr.BufferMisses != 1 || ctr.BufferHits != 1 {
		t.Fatalf("hits=%d misses=%d (second probe should hit after wait)", ctr.BufferHits, ctr.BufferMisses)
	}
}

func TestCheckpointerFlushesDirtyPages(t *testing.T) {
	s, p, ctr := setup(100 << 20)
	f := file(1, 1000)
	p.Register(f)
	p.CheckpointInterval = 100 * sim.Millisecond
	p.StartCheckpointer()
	s.Spawn("w", func(proc *sim.Proc) {
		for i := int64(0); i < 100; i++ {
			p.Probe(proc, f, i, true, 0)
		}
	})
	s.Run(sim.Time(sim.Second))
	p.Stop()
	s.Run(sim.Time(2 * sim.Second))
	if ctr.SSDWriteBytes < 100*storage.PageBytes {
		t.Fatalf("checkpoint wrote %d bytes, want >= %d", ctr.SSDWriteBytes, 100*storage.PageBytes)
	}
}

func TestWarmFileMakesScansHit(t *testing.T) {
	s, p, _ := setup(100 << 20)
	f := file(1, 1000)
	p.Register(f)
	p.WarmFile(f)
	var misses int64
	s.Spawn("w", func(proc *sim.Proc) {
		misses = p.Scan(proc, f, 0, 1000, 64)
	})
	s.Run(sim.Time(10 * sim.Second))
	if misses != 0 {
		t.Fatalf("warm scan missed %d", misses)
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	_, p, _ := setup(1 << 20)
	f := file(1, 10)
	p.Register(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Register(f)
}

func TestResidencyInvariantUnderRandomWorkloadProperty(t *testing.T) {
	f := func(seed int64, capPages uint8) bool {
		s := sim.New(seed)
		ctr := &metrics.Counters{}
		dev := iodev.New(iodev.PaperSSD(), ctr)
		p := New(s, dev, ctr, (int64(capPages%64)+64)*storage.PageBytes)
		f1 := &storage.File{ID: 1, Name: "a", Region: 1 << 30, Pages: 500}
		f2 := &storage.File{ID: 2, Name: "b", Region: 2 << 30, Pages: 500}
		p.Register(f1)
		p.Register(f2)
		g := sim.NewRNG(seed)
		ok := true
		s.Spawn("w", func(proc *sim.Proc) {
			for i := 0; i < 400; i++ {
				file := f1
				if g.Bool(0.5) {
					file = f2
				}
				if g.Bool(0.3) {
					p.Scan(proc, file, g.Int64n(400), g.Int64n(40)+1, 16)
				} else {
					p.Probe(proc, file, g.Int64n(500), g.Bool(0.4), 200)
				}
				if p.ResidentPages() > p.CapacityPages() {
					ok = false
					return
				}
			}
		})
		s.Run(sim.Time(3600 * sim.Second))
		// Hits + misses account for every access.
		return ok && ctr.BufferHits+ctr.BufferMisses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Stop must wake the checkpointer out of its between-checkpoint sleep:
// with a huge interval, the proc still exits promptly instead of sleeping
// the interval out.
func TestStopWakesCheckpointerPromptly(t *testing.T) {
	s, p, _ := setup(100 << 20)
	p.CheckpointInterval = 10000 * sim.Second
	p.StartCheckpointer()
	s.Run(sim.Time(sim.Second))
	if n := s.Live(); n != 1 {
		t.Fatalf("%d live procs, want the parked checkpointer", n)
	}
	p.Stop()
	s.Run(sim.Time(2 * sim.Second))
	if n := s.Live(); n != 0 {
		t.Fatalf("checkpointer still live %d after Stop", n)
	}
}

// Fuzzy checkpoints under recovery arming track per-page recLSN/pageLSN
// and refuse to write a page whose latest record is not yet durable
// before its data write (WAL-before-data).
func TestFuzzyCheckpointTracksRecLSN(t *testing.T) {
	s, p, ctr := setup(100 << 20)
	f := file(1, 1000)
	p.Register(f)
	dev := iodev.New(iodev.PaperSSD(), ctr)
	l := wal.New(s, dev, ctr)
	l.Recording = true
	l.Start()
	p.ArmRecovery(l, func() []int64 { return nil })
	p.CheckpointInterval = 100 * sim.Millisecond
	p.StartCheckpointer()
	s.Spawn("w", func(proc *sim.Proc) {
		l.AppendBatch([]*wal.Record{{Type: wal.RecUpdate, Txn: 1, Bytes: 400}})
		p.Probe(proc, f, 7, true, 0)
	})
	s.Run(sim.Time(sim.Second))
	p.Stop()
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
	if rec, last := p.DirtyPageLSNs(1, 7); rec != 0 || last != 0 {
		t.Fatalf("page still dirty after checkpoint (recLSN=%d pageLSN=%d)", rec, last)
	}
	if got := p.DurablePageLSN(1, 7); got != 400 {
		t.Fatalf("durable page LSN = %d, want 400 (appended LSN at dirtying)", got)
	}
	// The checkpoint's WAL records went through the log.
	var begins, ends int
	for _, r := range l.Records() {
		switch r.Type {
		case wal.RecCkptBegin:
			begins++
		case wal.RecCkptEnd:
			ends++
		}
	}
	if begins == 0 || ends == 0 {
		t.Fatalf("checkpoint records begin=%d end=%d, want both", begins, ends)
	}
}
