package txn

import (
	"testing"

	"repro/internal/iodev"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wal"
)

func setup() (*sim.Sim, *Manager, *metrics.Counters, *wal.Log) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	dev := iodev.New(iodev.PaperSSD(), ctr)
	l := wal.New(s, dev, ctr)
	l.Start()
	m := NewManager(lock.NewManager(s, ctr), l, ctr)
	return s, m, ctr, l
}

func TestCommitReleasesLocksAndCounts(t *testing.T) {
	s, m, ctr, l := setup()
	k := lock.Key{Obj: 1, Row: 1}
	s.Spawn("t1", func(p *sim.Proc) {
		tx := m.Begin()
		tx.Lock(p, k, lock.X)
		tx.LogWrite(300)
		tx.Commit(p)
	})
	s.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		tx := m.Begin()
		tx.Lock(p, k, lock.X) // must be granted after t1 commits
		tx.Commit(p)
	})
	s.Run(sim.Time(sim.Second))
	if ctr.TxnCommits != 2 {
		t.Fatalf("commits = %d", ctr.TxnCommits)
	}
	if m.Locks.Held(1, k) || m.Locks.Held(2, k) {
		t.Fatal("locks leaked")
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

func TestAbortReleasesWithoutFlushWait(t *testing.T) {
	s, m, ctr, l := setup()
	k := lock.Key{Obj: 1, Row: 2}
	s.Spawn("t", func(p *sim.Proc) {
		tx := m.Begin()
		tx.Lock(p, k, lock.X)
		tx.LogWrite(500)
		tx.Abort()
		if m.Locks.Held(tx.ID(), k) {
			t.Error("abort leaked lock")
		}
	})
	s.Run(sim.Time(sim.Second))
	if ctr.TxnAborts != 1 || ctr.TxnCommits != 0 {
		t.Fatalf("aborts=%d commits=%d", ctr.TxnAborts, ctr.TxnCommits)
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

func TestDoubleCommitIsNoOp(t *testing.T) {
	s, m, ctr, l := setup()
	s.Spawn("t", func(p *sim.Proc) {
		tx := m.Begin()
		tx.Commit(p)
		tx.Commit(p)
		tx.Abort()
	})
	s.Run(sim.Time(sim.Second))
	if ctr.TxnCommits != 1 || ctr.TxnAborts != 0 {
		t.Fatalf("commits=%d aborts=%d", ctr.TxnCommits, ctr.TxnAborts)
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

// TestConverterStarvationVictimRetries exercises the documented residual
// hazard of the barging admission policy: a U holder converting to X
// starves under a continuous stream of S readers, times out as the
// victim, aborts cleanly, and succeeds on retry once the stream drains.
func TestConverterStarvationVictimRetries(t *testing.T) {
	s, m, ctr, l := setup()
	k := lock.Key{Obj: 9, Row: 1}
	readersUntil := sim.Time(300 * sim.Millisecond)
	// Four staggered readers, each holding S for 20ms and immediately
	// re-acquiring: the granted S set never drains while they run.
	for i := 0; i < 4; i++ {
		off := sim.Duration(i) * 5 * sim.Millisecond
		s.Spawn("reader", func(p *sim.Proc) {
			p.Sleep(off)
			for p.Now() < readersUntil {
				tx := m.Begin()
				if !tx.Lock(p, k, lock.S) {
					continue
				}
				p.Sleep(20 * sim.Millisecond)
				tx.Commit(p)
			}
		})
	}
	victim, retried := false, false
	s.Spawn("converter", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		tx := m.Begin()
		if !tx.Lock(p, k, lock.U) {
			t.Error("U should be granted alongside S readers")
			return
		}
		if tx.Lock(p, k, lock.X) {
			t.Error("U->X conversion succeeded under a continuous S stream")
			return
		}
		victim = true
		if tx.Active() {
			t.Error("victim transaction still active after failed Lock")
		}
		if m.Locks.Held(tx.ID(), k) {
			t.Error("victim abort leaked its U lock")
		}
		// Clean retry after the reader stream drains.
		p.Sleep(sim.Duration(readersUntil-p.Now()) + 100*sim.Millisecond)
		tx2 := m.Begin()
		if !tx2.Lock(p, k, lock.U) || !tx2.Lock(p, k, lock.X) {
			t.Error("retry could not lock after readers drained")
			return
		}
		tx2.LogWrite(200)
		tx2.Commit(p)
		retried = true
	})
	s.Run(sim.Time(2 * sim.Second))
	if !victim {
		t.Fatal("converter was never made a victim")
	}
	if !retried {
		t.Fatal("retry did not commit")
	}
	if m.Locks.Timeouts < 1 {
		t.Fatalf("lock timeouts = %d, want >= 1", m.Locks.Timeouts)
	}
	if ctr.TxnAborts < 1 {
		t.Fatalf("aborts = %d, want >= 1", ctr.TxnAborts)
	}
	l.Stop()
	s.Run(sim.Time(3 * sim.Second))
}
