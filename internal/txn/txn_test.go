package txn

import (
	"testing"

	"repro/internal/iodev"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wal"
)

func setup() (*sim.Sim, *Manager, *metrics.Counters, *wal.Log) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	dev := iodev.New(iodev.PaperSSD(), ctr)
	l := wal.New(s, dev, ctr)
	l.Start()
	m := NewManager(lock.NewManager(s, ctr), l, ctr)
	return s, m, ctr, l
}

func TestCommitReleasesLocksAndCounts(t *testing.T) {
	s, m, ctr, l := setup()
	k := lock.Key{Obj: 1, Row: 1}
	s.Spawn("t1", func(p *sim.Proc) {
		tx := m.Begin()
		tx.Lock(p, k, lock.X)
		tx.LogWrite(300)
		tx.Commit(p)
	})
	s.Spawn("t2", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		tx := m.Begin()
		tx.Lock(p, k, lock.X) // must be granted after t1 commits
		tx.Commit(p)
	})
	s.Run(sim.Time(sim.Second))
	if ctr.TxnCommits != 2 {
		t.Fatalf("commits = %d", ctr.TxnCommits)
	}
	if m.Locks.Held(1, k) || m.Locks.Held(2, k) {
		t.Fatal("locks leaked")
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

func TestAbortReleasesWithoutFlushWait(t *testing.T) {
	s, m, ctr, l := setup()
	k := lock.Key{Obj: 1, Row: 2}
	s.Spawn("t", func(p *sim.Proc) {
		tx := m.Begin()
		tx.Lock(p, k, lock.X)
		tx.LogWrite(500)
		tx.Abort()
		if m.Locks.Held(tx.ID(), k) {
			t.Error("abort leaked lock")
		}
	})
	s.Run(sim.Time(sim.Second))
	if ctr.TxnAborts != 1 || ctr.TxnCommits != 0 {
		t.Fatalf("aborts=%d commits=%d", ctr.TxnAborts, ctr.TxnCommits)
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}

func TestDoubleCommitIsNoOp(t *testing.T) {
	s, m, ctr, l := setup()
	s.Spawn("t", func(p *sim.Proc) {
		tx := m.Begin()
		tx.Commit(p)
		tx.Commit(p)
		tx.Abort()
	})
	s.Run(sim.Time(sim.Second))
	if ctr.TxnCommits != 1 || ctr.TxnAborts != 0 {
		t.Fatalf("commits=%d aborts=%d", ctr.TxnCommits, ctr.TxnAborts)
	}
	l.Stop()
	s.Run(sim.Time(2 * sim.Second))
}
