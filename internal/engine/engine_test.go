package engine

import (
	"testing"

	"repro/internal/access"
	"repro/internal/btree"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testDB() *Database {
	db := NewDatabase("testdb")
	acct := db.AddTable(storage.NewSchema("account",
		storage.Column{Name: "id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "bal", Type: storage.TDecimal, Width: 8},
	), 10)
	for i := int64(0); i < 500; i++ {
		acct.AppendLoad([]int64{i, 1000})
	}
	db.AddBTIndex("pk_account", acct, []string{"id"}, true, true)
	hist := db.AddTable(storage.NewSchema("history",
		storage.Column{Name: "hid", Type: storage.TInt, Width: 8},
		storage.Column{Name: "aid", Type: storage.TInt, Width: 8},
		storage.Column{Name: "amt", Type: storage.TDecimal, Width: 8},
	), 10)
	db.AddBTIndex("pk_history", hist, []string{"hid"}, true, true)
	return db
}

func TestServerOLTPRoundTrip(t *testing.T) {
	s := NewServer(Config{Seed: 3})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	pk := db.Index("pk_account")
	hist := db.Table("history")
	hpk := db.Index("pk_history")

	const users = 8
	done := 0
	for u := 0; u < users; u++ {
		s.Sim.Spawn("user", func(p *sim.Proc) {
			sess := s.NewSession(p)
			for i := 0; i < 20; i++ {
				tx := sess.Begin()
				nid := sess.Ctx.RNG.Int64n(acct.NominalRows())
				actual := acct.ToActual(nid)
				key := btree.Key{acct.Get(actual, 0)}
				if _, ok := sess.Read(tx, pk, key, nid); !ok {
					t.Errorf("read miss for key %v", key)
				}
				sess.Update(tx, pk, key, nid, func(rowID int64) {
					acct.Set(rowID, 1, acct.Get(rowID, 1)+5)
				})
				sess.Insert(tx, hist, []int64{hist.NominalRows(), nid, 5}, []*access.BTIndex{hpk}, nil)
				sess.Commit(tx)
			}
			done++
		})
	}
	s.Sim.Run(sim.Time(60 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
	if done != users {
		t.Fatalf("finished %d/%d users", done, users)
	}
	if s.Ctr.TxnCommits != users*20 {
		t.Fatalf("commits = %d", s.Ctr.TxnCommits)
	}
	if s.Ctr.SSDWriteBytes == 0 {
		t.Fatal("no log writes")
	}
	if s.Ctr.Instructions == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestServerAnalyticalQuery(t *testing.T) {
	s := NewServer(Config{Seed: 4})
	db := testDB()
	csi := db.AddCSI(db.Table("account"))
	_ = csi
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	q := &opt.LNode{
		Kind: opt.LAgg,
		Left: &opt.LNode{
			Kind: opt.LScan,
			Heap: access.Heap{T: acct},
			CSI:  db.CSIOf(acct),
			Proj: []int{1},
			Name: "account",
		},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 0}, {Kind: exec.AggCount}},
		NGroups: 1,
	}
	var res QueryResult
	s.Sim.Spawn("analyst", func(p *sim.Proc) {
		res = s.RunQuery(p, q, 0, 0)
	})
	s.Sim.Run(sim.Time(60 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 500 actual rows * K=10 weight * 1000 balance.
	if res.Rows[0][0] != 500*10*1000 || res.Rows[0][1] != 5000 {
		t.Fatalf("agg = %v", res.Rows[0])
	}
	if s.Ctr.QueriesDone != 1 {
		t.Fatalf("queries done = %d", s.Ctr.QueriesDone)
	}
}

func TestEffectiveDopRespectsGovernor(t *testing.T) {
	s := NewServer(Config{Seed: 5, MaxDOP: 8})
	s.CPUs.AllowN(4)
	if d := s.EffectiveDop(0); d != 4 {
		t.Fatalf("dop = %d, want 4 (cpuset)", d)
	}
	s.CPUs.AllowN(32)
	if d := s.EffectiveDop(0); d != 8 {
		t.Fatalf("dop = %d, want 8 (MAXDOP)", d)
	}
	if d := s.EffectiveDop(2); d != 2 {
		t.Fatalf("dop = %d, want 2 (hint)", d)
	}
}

func TestTable2StyleSizes(t *testing.T) {
	db := testDB()
	if db.DataBytes() <= 0 || db.IndexBytes() <= 0 {
		t.Fatal("sizes not positive")
	}
	if db.TotalBytes() != db.DataBytes()+db.IndexBytes() {
		t.Fatal("total mismatch")
	}
}

func TestWorkspaceSemaphoreQueuesGrants(t *testing.T) {
	s := NewServer(Config{Seed: 9})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	// A query whose grant demand is large: grant requests serialize when
	// concurrent queries exceed the workspace.
	mkQuery := func() *opt.LNode {
		return &opt.LNode{
			Kind: opt.LAgg,
			Left: &opt.LNode{
				Kind: opt.LScan, Heap: access.Heap{T: acct},
				Proj: []int{0, 1}, Name: "account",
			},
			Groups:  []int{0},
			Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
			NGroups: 1e12, // force the grant to the per-query cap
		}
	}
	// Shrink workspace so the three 1MB-floor grants cannot coexist.
	s.workspace = 2 << 20
	s.Cfg.GrantFrac = 0.75
	done := 0
	for i := 0; i < 3; i++ {
		s.Sim.Spawn("q", func(p *sim.Proc) {
			s.RunQuery(p, mkQuery(), 0, 0.75)
			done++
		})
	}
	s.Sim.Run(sim.Time(600 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(1200 * sim.Second))
	if done != 3 {
		t.Fatalf("queries done = %d", done)
	}
	if s.Ctr.WaitNs[metrics.WaitResourceSem] == 0 {
		t.Fatal("no RESOURCE_SEMAPHORE waits despite over-committed workspace")
	}
}

func TestHugeGrantClampedAndCompletes(t *testing.T) {
	s := NewServer(Config{Seed: 12})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	q := &opt.LNode{
		Kind: opt.LAgg,
		Left: &opt.LNode{
			Kind: opt.LScan, Heap: access.Heap{T: acct},
			Proj: []int{0, 1}, Name: "account",
		},
		Groups:  []int{0},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
		NGroups: 1e12, // grant demand hits the per-query cap
	}
	// A grant fraction > 1 requests more than the whole workspace; the
	// request used to be unsatisfiable and the session waited forever.
	s.workspace = 1 << 20
	done := false
	s.Sim.Spawn("q", func(p *sim.Proc) {
		s.RunQuery(p, q, 0, 4.0)
		done = true
	})
	s.Sim.Run(sim.Time(600 * sim.Second))
	if !done {
		t.Fatal("huge-grant query did not complete (grant not clamped to workspace)")
	}
	if s.workspaceUse != 0 {
		t.Fatalf("workspaceUse = %d after release, want 0", s.workspaceUse)
	}
	s.Stop()
	s.Sim.Run(sim.Time(1200 * sim.Second))
}

func TestGrantWaiterAbandonedOnStopDoesNotCharge(t *testing.T) {
	s := NewServer(Config{Seed: 13})
	s.workspace = 1 << 20
	holder := int64(-1)
	waiter := int64(-1)
	s.Sim.Spawn("holder", func(p *sim.Proc) {
		holder = s.acquireWorkspace(p, 1<<20) // takes the whole workspace
	})
	s.Sim.Spawn("waiter", func(p *sim.Proc) {
		waiter = s.acquireWorkspace(p, 1<<19) // must park
	})
	s.Sim.Run(sim.Time(1 * sim.Second))
	if holder != 1<<20 {
		t.Fatalf("holder granted %d, want %d", holder, int64(1<<20))
	}
	if waiter != -1 {
		t.Fatalf("waiter returned %d while workspace was full", waiter)
	}
	s.Stop() // wakes the waiter; capacity still unavailable
	s.Sim.Run(sim.Time(2 * sim.Second))
	if waiter != 0 {
		t.Fatalf("abandoned waiter returned %d, want 0", waiter)
	}
	if s.workspaceUse != 1<<20 {
		t.Fatalf("workspaceUse = %d, want %d (only the holder's grant)", s.workspaceUse, int64(1<<20))
	}
}
