package engine

import (
	"testing"

	"repro/internal/access"
	"repro/internal/btree"
	"repro/internal/cgroup"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testDB() *Database {
	db := NewDatabase("testdb")
	acct := db.AddTable(storage.NewSchema("account",
		storage.Column{Name: "id", Type: storage.TInt, Width: 8},
		storage.Column{Name: "bal", Type: storage.TDecimal, Width: 8},
	), 10)
	for i := int64(0); i < 500; i++ {
		acct.AppendLoad([]int64{i, 1000})
	}
	db.AddBTIndex("pk_account", acct, []string{"id"}, true, true)
	hist := db.AddTable(storage.NewSchema("history",
		storage.Column{Name: "hid", Type: storage.TInt, Width: 8},
		storage.Column{Name: "aid", Type: storage.TInt, Width: 8},
		storage.Column{Name: "amt", Type: storage.TDecimal, Width: 8},
	), 10)
	db.AddBTIndex("pk_history", hist, []string{"hid"}, true, true)
	return db
}

func TestServerOLTPRoundTrip(t *testing.T) {
	s := NewServer(Config{Seed: 3})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	pk := db.Index("pk_account")
	hist := db.Table("history")
	hpk := db.Index("pk_history")

	const users = 8
	done := 0
	for u := 0; u < users; u++ {
		s.Sim.Spawn("user", func(p *sim.Proc) {
			sess := s.Open(p).BindCtx()
			for i := 0; i < 20; i++ {
				tx := sess.Begin()
				nid := sess.Ctx.RNG.Int64n(acct.NominalRows())
				actual := acct.ToActual(nid)
				key := btree.Key{acct.Get(actual, 0)}
				if _, ok := sess.Read(tx, pk, key, nid); !ok {
					t.Errorf("read miss for key %v", key)
				}
				sess.Update(tx, pk, key, nid, func(w *RowWriter) {
					w.Add(1, 5)
				})
				sess.Insert(tx, hist, []int64{hist.NominalRows(), nid, 5}, []*access.BTIndex{hpk}, nil)
				sess.Commit(tx)
			}
			done++
		})
	}
	s.Sim.Run(sim.Time(60 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
	if done != users {
		t.Fatalf("finished %d/%d users", done, users)
	}
	if s.Ctr.TxnCommits != users*20 {
		t.Fatalf("commits = %d", s.Ctr.TxnCommits)
	}
	if s.Ctr.SSDWriteBytes == 0 {
		t.Fatal("no log writes")
	}
	if s.Ctr.Instructions == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestServerAnalyticalQuery(t *testing.T) {
	s := NewServer(Config{Seed: 4})
	db := testDB()
	csi := db.AddCSI(db.Table("account"))
	_ = csi
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	q := &opt.LNode{
		Kind: opt.LAgg,
		Left: &opt.LNode{
			Kind: opt.LScan,
			Heap: access.Heap{T: acct},
			CSI:  db.CSIOf(acct),
			Proj: []int{1},
			Name: "account",
		},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 0}, {Kind: exec.AggCount}},
		NGroups: 1,
	}
	var res QueryResult
	s.Sim.Spawn("analyst", func(p *sim.Proc) {
		res = s.runQuery(p, q, 0, 0, s.Cfg.StmtTimeout)
	})
	s.Sim.Run(sim.Time(60 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 500 actual rows * K=10 weight * 1000 balance.
	if res.Rows[0][0] != 500*10*1000 || res.Rows[0][1] != 5000 {
		t.Fatalf("agg = %v", res.Rows[0])
	}
	if s.Ctr.QueriesDone != 1 {
		t.Fatalf("queries done = %d", s.Ctr.QueriesDone)
	}
}

func TestEffectiveDopRespectsGovernor(t *testing.T) {
	s := NewServer(Config{Seed: 5, MaxDOP: 8})
	s.CPUs.AllowN(4)
	if d := s.EffectiveDop(0); d != 4 {
		t.Fatalf("dop = %d, want 4 (cpuset)", d)
	}
	s.CPUs.AllowN(32)
	if d := s.EffectiveDop(0); d != 8 {
		t.Fatalf("dop = %d, want 8 (MAXDOP)", d)
	}
	if d := s.EffectiveDop(2); d != 2 {
		t.Fatalf("dop = %d, want 2 (hint)", d)
	}
}

func TestTable2StyleSizes(t *testing.T) {
	db := testDB()
	if db.DataBytes() <= 0 || db.IndexBytes() <= 0 {
		t.Fatal("sizes not positive")
	}
	if db.TotalBytes() != db.DataBytes()+db.IndexBytes() {
		t.Fatal("total mismatch")
	}
}

func TestWorkspaceSemaphoreQueuesGrants(t *testing.T) {
	s := NewServer(Config{Seed: 9})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	// A query whose grant demand is large: grant requests serialize when
	// concurrent queries exceed the workspace.
	mkQuery := func() *opt.LNode {
		return &opt.LNode{
			Kind: opt.LAgg,
			Left: &opt.LNode{
				Kind: opt.LScan, Heap: access.Heap{T: acct},
				Proj: []int{0, 1}, Name: "account",
			},
			Groups:  []int{0},
			Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
			NGroups: 1e12, // force the grant to the per-query cap
		}
	}
	// Shrink workspace so the three 1MB-floor grants cannot coexist.
	s.workspace = 2 << 20
	s.Cfg.GrantFrac = 0.75
	done := 0
	for i := 0; i < 3; i++ {
		s.Sim.Spawn("q", func(p *sim.Proc) {
			s.runQuery(p, mkQuery(), 0, 0.75, s.Cfg.StmtTimeout)
			done++
		})
	}
	s.Sim.Run(sim.Time(600 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(1200 * sim.Second))
	if done != 3 {
		t.Fatalf("queries done = %d", done)
	}
	if s.Ctr.WaitNs[metrics.WaitResourceSem] == 0 {
		t.Fatal("no RESOURCE_SEMAPHORE waits despite over-committed workspace")
	}
}

func TestHugeGrantClampedAndCompletes(t *testing.T) {
	s := NewServer(Config{Seed: 12})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	acct := db.Table("account")
	q := &opt.LNode{
		Kind: opt.LAgg,
		Left: &opt.LNode{
			Kind: opt.LScan, Heap: access.Heap{T: acct},
			Proj: []int{0, 1}, Name: "account",
		},
		Groups:  []int{0},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
		NGroups: 1e12, // grant demand hits the per-query cap
	}
	// A grant fraction > 1 requests more than the whole workspace; the
	// request used to be unsatisfiable and the session waited forever.
	s.workspace = 1 << 20
	done := false
	s.Sim.Spawn("q", func(p *sim.Proc) {
		s.runQuery(p, q, 0, 4.0, s.Cfg.StmtTimeout)
		done = true
	})
	s.Sim.Run(sim.Time(600 * sim.Second))
	if !done {
		t.Fatal("huge-grant query did not complete (grant not clamped to workspace)")
	}
	if s.workspaceUse != 0 {
		t.Fatalf("workspaceUse = %d after release, want 0", s.workspaceUse)
	}
	s.Stop()
	s.Sim.Run(sim.Time(1200 * sim.Second))
}

func TestGrantWaiterAbandonedOnStopDoesNotCharge(t *testing.T) {
	s := NewServer(Config{Seed: 13})
	s.workspace = 1 << 20
	holder := int64(-1)
	waiter := int64(-1)
	s.Sim.Spawn("holder", func(p *sim.Proc) {
		holder = s.acquireWorkspace(p, 1<<20) // takes the whole workspace
	})
	s.Sim.Spawn("waiter", func(p *sim.Proc) {
		waiter = s.acquireWorkspace(p, 1<<19) // must park
	})
	s.Sim.Run(sim.Time(1 * sim.Second))
	if holder != 1<<20 {
		t.Fatalf("holder granted %d, want %d", holder, int64(1<<20))
	}
	if waiter != -1 {
		t.Fatalf("waiter returned %d while workspace was full", waiter)
	}
	s.Stop() // wakes the waiter; capacity still unavailable
	s.Sim.Run(sim.Time(2 * sim.Second))
	if waiter != 0 {
		t.Fatalf("abandoned waiter returned %d, want 0", waiter)
	}
	if s.workspaceUse != 1<<20 {
		t.Fatalf("workspaceUse = %d, want %d (only the holder's grant)", s.workspaceUse, int64(1<<20))
	}
}

// bigGrantQuery builds a grouped aggregation whose grant demand hits the
// per-query cap, for grant-pressure tests.
func bigGrantQuery(db *Database) *opt.LNode {
	acct := db.Table("account")
	return &opt.LNode{
		Kind: opt.LAgg,
		Left: &opt.LNode{
			Kind: opt.LScan, Heap: access.Heap{T: acct},
			Proj: []int{0, 1}, Name: "account",
		},
		Groups:  []int{0},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 1}},
		NGroups: 1e12,
	}
}

func TestRunQueryCanceledAtShutdown(t *testing.T) {
	s := NewServer(Config{Seed: 21})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	s.workspace = 1 << 20
	s.Sim.Spawn("holder", func(p *sim.Proc) {
		s.acquireWorkspace(p, 1<<20) // takes the whole workspace, never releases
	})
	var res QueryResult
	returned := false
	s.Sim.Spawn("q", func(p *sim.Proc) {
		res = s.runQuery(p, bigGrantQuery(db), 0, 0.75, s.Cfg.StmtTimeout)
		returned = true
	})
	s.Sim.Run(sim.Time(sim.Second))
	if returned {
		t.Fatal("query returned while the workspace was full")
	}
	s.Stop()
	s.Sim.Run(sim.Time(2 * sim.Second))
	if !returned {
		t.Fatal("query still parked after Stop")
	}
	if res.Err == nil || res.Err.Kind != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", res.Err)
	}
	if res.Rows != nil {
		t.Fatalf("canceled query produced %d rows", len(res.Rows))
	}
	if res.Err.Retryable() {
		t.Fatal("shutdown cancellation must not be retryable")
	}
	if s.Ctr.QueriesCanceled != 1 || s.Ctr.QueriesDone != 0 {
		t.Fatalf("canceled=%d done=%d", s.Ctr.QueriesCanceled, s.Ctr.QueriesDone)
	}
	if s.workspaceUse != 1<<20 {
		t.Fatalf("workspaceUse = %d, want only the holder's grant", s.workspaceUse)
	}
}

func TestDeadlineDegradesGrantThenSucceeds(t *testing.T) {
	s := NewServer(Config{Seed: 22, StmtTimeout: 4 * sim.Second})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	// The holder owns the whole workspace past the half-deadline (2s), so
	// the query degrades; it releases before the full deadline (4s), so the
	// degraded plan's grant is satisfied and the query completes.
	s.workspace = 1 << 20
	s.Sim.Spawn("holder", func(p *sim.Proc) {
		got := s.acquireWorkspace(p, 1<<20)
		p.Sleep(3 * sim.Second)
		s.releaseWorkspace(got)
	})
	var res QueryResult
	s.Sim.Spawn("q", func(p *sim.Proc) {
		res = s.runQuery(p, bigGrantQuery(db), 0, 0.75, s.Cfg.StmtTimeout)
	})
	s.Sim.Run(sim.Time(60 * sim.Second))
	if res.Err != nil {
		t.Fatalf("degraded query failed: %v", res.Err)
	}
	if s.Ctr.DegradedPlans != 1 {
		t.Fatalf("DegradedPlans = %d, want 1", s.Ctr.DegradedPlans)
	}
	if s.Ctr.DeadlineKills != 0 || s.Ctr.QueriesDone != 1 {
		t.Fatalf("kills=%d done=%d", s.Ctr.DeadlineKills, s.Ctr.QueriesDone)
	}
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
}

func TestDeadlineKillsStarvedGrant(t *testing.T) {
	s := NewServer(Config{Seed: 23, StmtTimeout: 2 * sim.Second})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	s.workspace = 1 << 20
	s.Sim.Spawn("holder", func(p *sim.Proc) {
		s.acquireWorkspace(p, 1<<20)
	})
	var res QueryResult
	s.Sim.Spawn("q", func(p *sim.Proc) {
		res = s.runQuery(p, bigGrantQuery(db), 0, 0.75, s.Cfg.StmtTimeout)
	})
	s.Sim.Run(sim.Time(60 * sim.Second))
	if res.Err == nil || res.Err.Kind != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", res.Err)
	}
	if !res.Err.Retryable() {
		t.Fatal("deadline expiry should be retryable")
	}
	// The kill path must still have tried the degraded plan first.
	if s.Ctr.DegradedPlans != 1 || s.Ctr.DeadlineKills != 1 || s.Ctr.QueriesFailed != 1 {
		t.Fatalf("degraded=%d kills=%d failed=%d",
			s.Ctr.DegradedPlans, s.Ctr.DeadlineKills, s.Ctr.QueriesFailed)
	}
	if res.Elapsed < 2*sim.Second {
		t.Fatalf("killed after %v, before the 2s deadline", res.Elapsed)
	}
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
}

func TestDeadlineKillsExecution(t *testing.T) {
	// The deadline is far too short for the scan, but long enough that the
	// (instant) grant acquisition succeeds: the kill must come from the
	// executor's node/partition checks.
	s := NewServer(Config{Seed: 24, StmtTimeout: sim.Microsecond})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	var res QueryResult
	s.Sim.Spawn("q", func(p *sim.Proc) {
		res = s.runQuery(p, bigGrantQuery(db), 0, 0, s.Cfg.StmtTimeout)
	})
	s.Sim.Run(sim.Time(60 * sim.Second))
	if res.Err == nil || res.Err.Kind != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", res.Err)
	}
	if !res.Stats.Killed {
		t.Fatal("stats not marked killed")
	}
	if res.Rows != nil {
		t.Fatalf("killed query produced %d rows", len(res.Rows))
	}
	if s.Ctr.DeadlineKills != 1 || s.Ctr.QueriesDone != 0 {
		t.Fatalf("kills=%d done=%d", s.Ctr.DeadlineKills, s.Ctr.QueriesDone)
	}
	if s.workspaceUse != 0 {
		t.Fatalf("workspaceUse = %d after kill, want 0 (grant released)", s.workspaceUse)
	}
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
}

func TestPickCoreEmptyCpusetFallsBack(t *testing.T) {
	s := NewServer(Config{Seed: 25})
	s.CPUs = &cgroup.CPUSet{} // no allowed cores
	if c := s.PickCore(); c != 0 {
		t.Fatalf("core = %d, want fallback 0", c)
	}
	if s.Ctr.CpusetFallbacks != 1 {
		t.Fatalf("CpusetFallbacks = %d, want 1", s.Ctr.CpusetFallbacks)
	}
}

func TestFaultReserveStarvesAndReleasesGrants(t *testing.T) {
	s := NewServer(Config{Seed: 26})
	s.workspace = 1 << 20
	s.SetFaultReserve(1 << 20) // whole workspace reserved away
	granted := int64(-1)
	s.Sim.Spawn("q", func(p *sim.Proc) {
		granted = s.acquireWorkspace(p, 1<<19)
	})
	s.Sim.Run(sim.Time(sim.Second))
	if granted != -1 {
		t.Fatalf("grant returned %d while reserve held the workspace", granted)
	}
	s.SetFaultReserve(0) // clearing the reserve wakes the waiter
	s.Sim.Run(sim.Time(2 * sim.Second))
	if granted != 1<<19 {
		t.Fatalf("granted = %d after reserve cleared, want %d", granted, int64(1<<19))
	}
}
