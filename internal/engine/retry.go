package engine

import "repro/internal/sim"

// RetryPolicy bounds driver-level retries of failed statements and
// transactions: exponential backoff with full jitter, all on the sim
// clock so retry timing is deterministic. The zero value disables
// retries, keeping baseline (fault-free) runs identical to builds
// without a retry path.
type RetryPolicy struct {
	MaxAttempts int          // total attempts including the first (0 = no retry)
	Base        sim.Duration // backoff before the first retry
	Max         sim.Duration // backoff cap (0 = uncapped)
}

// DefaultRetryPolicy returns the resilience sweep's policy: up to four
// attempts, 1 ms initial backoff doubling to a 100 ms cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Base: sim.Millisecond, Max: 100 * sim.Millisecond}
}

// Enabled reports whether the policy retries at all.
func (r RetryPolicy) Enabled() bool { return r.MaxAttempts > 1 }

// Sleep blocks p for the backoff preceding retry number attempt (1 = the
// first retry). The delay doubles per attempt up to Max, then a uniform
// jitter in [d/2, d] spreads retriers so they do not stampede in sync.
func (r RetryPolicy) Sleep(p *sim.Proc, g *sim.RNG, attempt int) {
	d := r.Base
	if d <= 0 {
		d = sim.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if r.Max > 0 && d >= r.Max {
			d = r.Max
			break
		}
	}
	if r.Max > 0 && d > r.Max {
		d = r.Max
	}
	half := d / 2
	p.Sleep(half + sim.Duration(g.Int64n(int64(half)+1)))
}
