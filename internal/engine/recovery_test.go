package engine

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// A timed crash in the middle of an OLTP run must leave a recoverable
// image: ARIES restart completes, the invariant checker accepts the
// recovered state, a deliberate second pass changes nothing, and the
// recovery work is visible in counters, wait attribution, and qstats.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	s := NewServer(Config{Seed: 7})
	db := testDB()
	s.AttachDB(db)
	s.WarmBufferPool()
	s.ArmRecovery(RecoveryOptions{
		CkptInterval:  100 * sim.Millisecond,
		MaxFlushBytes: 256,
		Crash:         fault.CrashPlan{Point: fault.CrashAtTime, At: sim.Duration(2 * sim.Second)},
	})
	s.Start()
	acct := db.Table("account")
	pk := db.Index("pk_account")
	for u := 0; u < 8; u++ {
		s.Sim.Spawn("user", func(p *sim.Proc) {
			sess := s.Open(p).BindCtx()
			for !s.Crashed() {
				tx := sess.Begin()
				nid := sess.Ctx.RNG.Int64n(acct.NominalRows())
				key := btree.Key{acct.Get(acct.ToActual(nid), 0)}
				if _, ok := sess.Read(tx, pk, key, nid); !ok {
					sess.Abort(tx)
					continue
				}
				if !sess.Update(tx, pk, key, nid, func(w *RowWriter) { w.Add(1, 1) }) {
					continue
				}
				sess.Commit(tx)
			}
		})
	}
	s.Sim.Run(sim.Time(60 * sim.Second))
	if !s.Crashed() {
		t.Fatal("timed crash never fired")
	}
	if s.Ctr.Crashes != 1 {
		t.Fatalf("Crashes = %d", s.Ctr.Crashes)
	}
	commits := s.Ctr.TxnCommits
	if commits == 0 {
		t.Fatal("no commits before the crash")
	}

	drain := func() { s.Sim.Run(s.Sim.Now() + sim.Time(600*sim.Second)) }
	rep := s.Recover()
	drain()
	if !rep.Done {
		t.Fatalf("recovery did not complete: %+v", rep)
	}
	if rep.Winners == 0 {
		t.Fatal("no winners classified")
	}
	if rep.Elapsed <= 0 {
		t.Fatalf("recovery elapsed = %v", rep.Elapsed)
	}
	if err := s.CheckRecoveryInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	digest := s.StateDigest()

	// A deliberate second pass finds every loser already ended: no new
	// undo work, identical logical state.
	rep2 := s.Recover()
	drain()
	if !rep2.Done {
		t.Fatal("re-recovery did not complete")
	}
	if rep2.UndoRecords != 0 || rep2.CLRs != 0 {
		t.Fatalf("re-recovery redid undo work: undo=%d clrs=%d", rep2.UndoRecords, rep2.CLRs)
	}
	if got := s.StateDigest(); got != digest {
		t.Fatalf("re-recovery changed state digest: %d -> %d", digest, got)
	}
	if err := s.CheckRecoveryInvariants(); err != nil {
		t.Fatalf("invariants after re-recovery: %v", err)
	}

	// Recovery work surfaces in the counters, the wait attribution, and
	// the per-query statistics.
	if s.Ctr.Recoveries != 2 {
		t.Fatalf("Recoveries = %d", s.Ctr.Recoveries)
	}
	if s.Ctr.RecoveryRedoPages != rep.RedoPages+rep2.RedoPages {
		t.Fatalf("RecoveryRedoPages = %d, reports say %d + %d",
			s.Ctr.RecoveryRedoPages, rep.RedoPages, rep2.RedoPages)
	}
	if s.Ctr.RecoveryElapsedNs == 0 {
		t.Fatal("RecoveryElapsedNs not counted")
	}
	if s.Ctr.WaitNs[metrics.WaitRecovery] == 0 {
		t.Fatal("no WaitRecovery time attributed")
	}
	var row *metrics.QueryStatRow
	for _, r := range s.QStats.Snapshot() {
		if r.Query == "recovery" {
			row = &r
			break
		}
	}
	if row == nil {
		t.Fatal("no recovery row in query stats")
	}
	if row.Executions != 2 || row.TotalNs == 0 {
		t.Fatalf("recovery qstats row: executions=%d totalNs=%d", row.Executions, row.TotalNs)
	}
}
