package engine

import (
	"fmt"

	"repro/internal/sim"
)

// ErrKind classifies why a statement failed.
type ErrKind int

// Error kinds.
const (
	ErrCanceled   ErrKind = iota + 1 // server shutdown while the statement waited
	ErrDeadline                      // statement deadline expired
	ErrIO                            // transient device error exhausted its retries
	ErrVictim                        // chosen as a lock-wait victim
	ErrNotDurable                    // log stopped/crashed before the commit record flushed
	ErrOverloaded                    // admission control shed the request (run queue full)
)

// String returns a short name for the kind.
func (k ErrKind) String() string {
	switch k {
	case ErrCanceled:
		return "canceled"
	case ErrDeadline:
		return "deadline"
	case ErrIO:
		return "io"
	case ErrVictim:
		return "victim"
	case ErrNotDurable:
		return "not-durable"
	case ErrOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("errkind(%d)", int(k))
	}
}

// QueryError is the typed failure a statement reports instead of running
// unboundedly: drivers switch on Kind to decide whether to retry.
type QueryError struct {
	Kind ErrKind
	Op   string   // what was executing ("grant", "exec", "commit", ...)
	At   sim.Time // simulated time of the failure
}

// Error implements error.
func (e *QueryError) Error() string {
	return fmt.Sprintf("engine: %s during %s at %v", e.Kind, e.Op, e.At)
}

// Retryable reports whether a bounded retry is worthwhile. Shutdown
// cancellation and a not-durable commit (the log is gone) are terminal;
// everything else is transient.
func (e *QueryError) Retryable() bool {
	return e.Kind != ErrCanceled && e.Kind != ErrNotDurable
}
