package engine

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// RecoveryOptions arms a server for crash-recovery experiments.
type RecoveryOptions struct {
	// CkptInterval overrides the fuzzy-checkpoint cadence (0 keeps the
	// pool default).
	CkptInterval sim.Duration

	// MaxFlushBytes overrides the log's flush-batch cap (0 keeps the
	// 60 KB default). Small batches make a crash likely to land inside a
	// commit lump — the partially durable transactions ARIES undo exists
	// for.
	MaxFlushBytes int64

	// Crash selects the seeded crash point; a zero plan arms recovery
	// bookkeeping without crashing (used by the determinism test).
	Crash fault.CrashPlan
}

// ArmRecovery switches the server into crash-recovery mode: the WAL
// retains typed logical records, the buffer pool runs fuzzy checkpoints
// with per-page recLSN tracking and WAL-before-data, the transaction
// manager keeps the registry restart needs, and the configured crash
// point is wired into its hook. Must be called before Start. Baseline
// runs never call this, so none of the bookkeeping exists there.
func (s *Server) ArmRecovery(opt RecoveryOptions) {
	s.Log.Recording = true
	if opt.MaxFlushBytes > 0 {
		s.Log.MaxFlushBytes = opt.MaxFlushBytes
	}
	s.BP.ArmRecovery(s.Log, s.Txns.Active)
	if opt.CkptInterval > 0 {
		s.BP.CheckpointInterval = opt.CkptInterval
	}
	s.armed = true
	s.liveAtArm = make(map[int]int64)
	for _, t := range s.DB.Tables {
		s.liveAtArm[t.ID] = t.LiveNominalRows()
	}
	if !opt.Crash.Enabled() {
		return
	}
	s.crasher = fault.NewCrasher(opt.Crash, s.Crash)
	s.Log.MidFlushHook = func() {
		s.crasher.Hit(fault.CrashMidFlush)
		if opt.Crash.Point == fault.CrashDuringUndo && !s.stopped &&
			s.Sim.Now() >= sim.Time(opt.Crash.At) && s.Log.BoundaryStraddlesCommit() {
			// The initial crash of a during-undo plan must leave undo work
			// for its interrupt to land in, so rather than crashing blindly
			// at At it waits for the first flush past At whose boundary
			// strands a partially durable commit — a guaranteed ARIES loser.
			s.Crash()
		}
	}
	s.Log.AppendGapHook = func() { s.crasher.Hit(fault.CrashAppendGap) }
	s.BP.CkptChunkHook = func() { s.crasher.Hit(fault.CrashMidCheckpoint) }
	if opt.Crash.Point == fault.CrashAtTime && opt.Crash.At > 0 {
		s.Sim.Spawn("crash-timer", func(p *sim.Proc) {
			p.Sleep(opt.Crash.At)
			s.Crash()
		})
	}
}

// Crash fails the server at the current simulated instant: the log
// freezes (an in-flight flush batch is lost when the crash lands
// mid-flush), background services stop, and parked waiters are woken to
// observe the failure. Callers then drain the simulation and call
// Recover. A crash after a clean Stop is ignored, but a crash while
// recovery is in flight (the server is stopped yet not cleanly) is not:
// that is the during-undo crash point.
func (s *Server) Crash() {
	if s.crashed || s.cleanStop {
		return
	}
	s.crashed = true
	s.Ctr.Crashes++
	wasStopped := s.stopped
	s.stopped = true
	s.Log.Crash()
	s.BP.Stop()
	s.Smp.Stop()
	if !wasStopped {
		// Stop hooks run once; a crash during recovery already ran them.
		for _, fn := range s.stopHooks {
			fn()
		}
	}
	s.grantQ.WakeAll(s.Sim)
}

// Crashed reports whether the server took a crash.
func (s *Server) Crashed() bool { return s.crashed }

// RecoveryReport summarizes one ARIES restart pass.
type RecoveryReport struct {
	CrashLSN    int64 // durable LSN at the crash
	LostRecords int   // appended-but-unflushed records wiped by the crash
	LostTxns    int   // losers with no durable trace (reverted silently)
	Winners     int   // durably committed transactions
	Losers      int   // losers with durable records (ARIES undo)
	LogScanned  int64 // log bytes read during analysis + redo
	RedoRecords int64
	RedoPages   int64
	UndoRecords int64
	CLRs        int64
	Elapsed     sim.Duration
	Interrupted bool // a during-undo crash cut this pass short
	Done        bool
}

// Recover runs ARIES restart after a crash: the durable log image is
// truncated at the flushed LSN, losers with no durable trace are wiped,
// and a recovery proc performs analysis (log scan from the last complete
// checkpoint), redo (page reads for every durable record past the
// durable page image), and undo (loser rollback with CLR writes),
// charging all I/O to the simulated device so recovery time responds to
// storage bandwidth and the blkio throttle. The caller must drain the
// simulation first and run it again afterwards; Report.Done flips when
// the pass finishes. Recover is idempotent: a second pass finds every
// loser already ended and performs no new undo.
func (s *Server) Recover() *RecoveryReport {
	if !s.armed {
		panic("engine: Recover on a server without ArmRecovery")
	}
	rep := &RecoveryReport{}
	rep.LostRecords = s.Log.TruncateAtFlushed()
	s.Ctr.CrashLostRecords += int64(rep.LostRecords)
	flushed := s.Log.FlushedLSN()
	rep.CrashLSN = flushed
	s.crashed = false

	// Analysis over the durable image: transaction outcomes, compensation
	// coverage, and the last complete fuzzy checkpoint.
	committed := make(map[int64]bool)
	ended := make(map[int64]bool)
	comp := make(map[int64]bool) // forward LSNs already compensated by a durable CLR
	var lastCkpt *wal.Record
	for _, r := range s.Log.Records() {
		switch r.Type {
		case wal.RecCommit:
			committed[r.Txn] = true
		case wal.RecAbort:
			ended[r.Txn] = true
		case wal.RecCLR:
			if r.UndoOf > 0 {
				comp[r.UndoOf] = true
			}
		case wal.RecCkptEnd:
			lastCkpt = r
		}
	}

	// Classify the registry. Losers with no durable record never reached
	// the device in any form: their volatile effects are wiped in place,
	// with no recovery I/O — the durable image never knew them.
	var ariesLosers, volatile []*txn.Txn
	for _, t := range s.Txns.All() {
		id := t.ID()
		cr := t.CommitRec()
		if cr != nil && cr.LSN > 0 && committed[id] {
			rep.Winners++
			continue
		}
		if ended[id] {
			continue // in-flight abort or prior recovery already ended it
		}
		durableRecs := false
		for _, r := range t.Recs() {
			if r.LSN > 0 && r.LSN <= flushed {
				durableRecs = true
				break
			}
		}
		if !durableRecs {
			// Volatile loser (includes in-flight aborts whose CLR lump was
			// truncated: their memory image is already reverted, and
			// UndoNext skips what is already undone).
			if t.UndoneOps() < len(t.Ops()) {
				rep.LostTxns++
				s.Ctr.CrashLostTxns++
			}
			volatile = append(volatile, t)
			continue
		}
		rep.Losers++
		ariesLosers = append(ariesLosers, t)
	}
	// Volatile losers' writes can overlap: a commit that resolved
	// not-durable released its locks, so a later loser may have overwritten
	// the same cell. Physical undo (restore the pre-image) must therefore
	// follow global reverse op order across all of them, not
	// per-transaction order. Their ops all postdate any ARIES loser's ops
	// on shared cells (an ARIES loser held its locks into the crash), so
	// wiping them first is correct.
	for {
		var best *txn.Txn
		bestSeq := int64(-1)
		for _, t := range volatile {
			if op, ok := t.PeekUndo(); ok && op.Seq > bestSeq {
				bestSeq, best = op.Seq, t
			}
		}
		if best == nil {
			break
		}
		best.UndoNext()
	}
	// Undo newest-first (reverse begin order); loser write sets are
	// disjoint under strict 2PL, so this is both deterministic and
	// order-insensitive for the final state.
	sort.Slice(ariesLosers, func(i, j int) bool { return ariesLosers[i].ID() > ariesLosers[j].ID() })

	// redoLSN: the earliest recLSN in the last complete checkpoint's DPT
	// (everything older has a durable page image at least that fresh).
	redoLSN := int64(0)
	if lastCkpt != nil {
		redoLSN = lastCkpt.LSN
		for _, e := range lastCkpt.DPT {
			if e.RecLSN < redoLSN {
				redoLSN = e.RecLSN
			}
		}
	}

	s.Log.Restart()
	s.Sim.Spawn("recovery", func(p *sim.Proc) {
		stmt := &metrics.Counters{}
		prev := p.Attr()
		p.SetAttr(stmt)
		start := p.Now()
		finish := func() {
			rep.Elapsed = sim.Duration(p.Now() - start)
			s.Ctr.Recoveries++
			s.Ctr.RecoveryElapsedNs += int64(rep.Elapsed)
			s.Ctr.RecoveryRedoPages += rep.RedoPages
			s.Ctr.RecoveryRedoRecords += rep.RedoRecords
			s.Ctr.RecoveryUndoRecords += rep.UndoRecords
			s.Ctr.RecoveryCLRs += rep.CLRs
			metrics.ChargeWait(p, s.Ctr, metrics.WaitRecovery, rep.Elapsed)
			p.SetAttr(prev)
			s.QStats.Record("recovery", metrics.Exec{Elapsed: rep.Elapsed, Failed: rep.Interrupted, Stmt: stmt})
			rep.Done = true
		}

		// Analysis + redo scan the durable log from redoLSN once.
		rep.LogScanned = flushed - redoLSN
		if rep.LogScanned > 0 {
			s.Dev.Read(p, rep.LogScanned)
		}
		pagesRead := make(map[wal.PageID]bool)
		readPage := func(pg wal.PageID) {
			if pg.Zero() || pagesRead[pg] {
				return
			}
			pagesRead[pg] = true
			s.Dev.Read(p, storage.PageBytes)
			rep.RedoPages++
		}
		for _, r := range s.Log.Records() {
			if r.LSN < redoLSN || (r.Type != wal.RecUpdate && r.Type != wal.RecCLR) {
				continue
			}
			if r.Page.Zero() {
				continue
			}
			rep.RedoRecords++
			if s.BP.DurablePageLSN(r.Page.File, r.Page.Page) >= r.LSN {
				continue // durable image already reflects this record
			}
			readPage(r.Page)
		}

		// Undo: roll back each ARIES loser, newest record first, writing
		// one CLR per durable forward record and an abort end record,
		// flushed per transaction.
		for _, t := range ariesLosers {
			recs := t.Recs()
			opsFromTail := 0
			var clrs []*wal.Record
			for i := len(recs) - 1; i >= 0; i-- {
				r := recs[i]
				opsFromTail += len(r.Ops)
				for t.UndoneOps() < opsFromTail {
					t.UndoNext()
				}
				if r.LSN == 0 || r.LSN > flushed || comp[r.LSN] {
					continue // truncated or already compensated: no CLR
				}
				readPage(r.Page)
				rep.UndoRecords++
				clrs = append(clrs, &wal.Record{Type: wal.RecCLR, Txn: t.ID(), Bytes: r.Bytes, Page: r.Page, UndoOf: r.LSN})
				rep.CLRs++
				if s.crasher != nil {
					s.crasher.Hit(fault.CrashDuringUndo)
				}
				if s.crashed {
					rep.Interrupted = true
					finish()
					return
				}
			}
			clrs = append(clrs, &wal.Record{Type: wal.RecAbort, Txn: t.ID()})
			lsn := s.Log.AppendBatch(clrs)
			if _, err := s.Log.WaitDurable(p, lsn); err != nil {
				rep.Interrupted = true
				finish()
				return
			}
		}
		finish()
	})
	return rep
}

// CheckRecoveryInvariants verifies the recovered state against an
// independent replay of the logical op history: every durably committed
// transaction's effects are present, every loser is fully undone, and
// per-table live-row accounting matches the winners' net inserts. It
// returns nil when the image is consistent.
func (s *Server) CheckRecoveryInvariants() error {
	if !s.armed {
		return fmt.Errorf("recovery not armed")
	}
	flushed := s.Log.FlushedLSN()
	committed := make(map[int64]bool)
	for _, r := range s.Log.Records() {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
	}
	type cellKey struct {
		t   *storage.Table
		row int64
		col int
	}
	// Expected value per touched cell: the last winner's post-image, or
	// the first toucher's pre-image when only losers wrote it. Ops are
	// replayed in global Seq order, which totally orders same-cell writes
	// under strict 2PL.
	type opRef struct {
		op     wal.Op
		winner bool
	}
	var all []opRef
	liveDelta := make(map[*storage.Table]int64)
	undoneShort := 0
	for _, t := range s.Txns.All() {
		cr := t.CommitRec()
		winner := cr != nil && cr.LSN > 0 && cr.LSN <= flushed && committed[t.ID()]
		if !winner && t.UndoneOps() < len(t.Ops()) {
			undoneShort++
		}
		for _, op := range t.Ops() {
			all = append(all, opRef{op: op, winner: winner})
			if winner {
				switch op.Kind {
				case wal.OpInsert:
					liveDelta[op.T]++
				case wal.OpDelete:
					liveDelta[op.T]--
				}
			}
		}
	}
	if undoneShort > 0 {
		return fmt.Errorf("%d loser transactions not fully undone", undoneShort)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].op.Seq < all[j].op.Seq })
	base := make(map[cellKey]int64)
	final := make(map[cellKey]int64)
	haveFinal := make(map[cellKey]bool)
	for _, r := range all {
		if r.op.Kind != wal.OpSet {
			continue
		}
		k := cellKey{r.op.T, r.op.Row, r.op.Col}
		if _, seen := base[k]; !seen {
			base[k] = r.op.Old
		}
		if r.winner {
			final[k] = r.op.New
			haveFinal[k] = true
		}
	}
	bad := 0
	for k, b := range base {
		want := b
		if haveFinal[k] {
			want = final[k]
		}
		if got := k.t.Get(k.row, k.col); got != want {
			bad++
			if bad == 1 {
				return fmt.Errorf("cell %s[row %d, col %d] = %d, want %d",
					k.t.Schema.Name, k.row, k.col, got, want)
			}
		}
	}
	for _, t := range s.DB.Tables {
		want := s.liveAtArm[t.ID] + liveDelta[t]
		if got := t.LiveNominalRows(); got != want {
			return fmt.Errorf("table %s live rows = %d, want %d (loaded %d, winner delta %+d)",
				t.Schema.Name, got, want, s.liveAtArm[t.ID], liveDelta[t])
		}
	}
	return nil
}

// StateDigest hashes the full logical database image (cell values and
// row accounting); equal digests across repeated recoveries demonstrate
// idempotence.
func (s *Server) StateDigest() uint64 { return DigestDB(s.DB) }

// DigestDB hashes a database's logical image independent of any server —
// replication compares a primary's digest against a standby's, and PITR
// compares a restored image against the pre-crash one.
func DigestDB(db *Database) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, t := range db.Tables {
		w(int64(t.ID))
		w(t.NominalRows())
		w(t.LiveNominalRows())
		n := t.ActualRows()
		for c := range t.Schema.Cols {
			col := t.Col(c)
			for r := int64(0); r < n && r < int64(len(col)); r++ {
				w(col[r])
			}
		}
	}
	return h.Sum64()
}
