package engine

import (
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sim"
)

func analyticalQ(db *Database) *opt.LNode {
	acct := db.Table("account")
	return &opt.LNode{
		Kind: opt.LAgg,
		Left: &opt.LNode{
			Kind: opt.LScan,
			Heap: access.Heap{T: acct},
			CSI:  db.CSIOf(acct),
			Proj: []int{1},
			Name: "account",
		},
		Aggs:    []exec.AggSpec{{Kind: exec.AggSum, Col: 0}, {Kind: exec.AggCount}},
		NGroups: 1,
		Label:   "test.sum",
	}
}

// runOnFreshServer boots a same-seed server and runs fn as the only
// query-issuing proc, returning the result and final counters.
func runOnFreshServer(t *testing.T, fn func(s *Server, p *sim.Proc) QueryResult) (QueryResult, metrics.Counters) {
	t.Helper()
	s := NewServer(Config{Seed: 77})
	db := testDB()
	db.AddCSI(db.Table("account"))
	s.AttachDB(db)
	s.WarmBufferPool()
	s.Start()
	var res QueryResult
	s.Sim.Spawn("probe", func(p *sim.Proc) {
		res = fn(s, p)
	})
	s.Sim.Run(sim.Time(60 * sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(120 * sim.Second))
	return res, *s.Ctr
}

// TestSessionQueryMatchesDirectRunQuery is the API-redesign differential
// gate: a query issued through the Session front door must be
// bit-identical — rows, stats, elapsed time, and engine counters — to
// the same query issued through the internal runQuery path on a
// same-seed server.
func TestSessionQueryMatchesDirectRunQuery(t *testing.T) {
	direct, dctr := runOnFreshServer(t, func(s *Server, p *sim.Proc) QueryResult {
		return s.runQuery(p, analyticalQ(s.DB), 0, 0, s.Cfg.StmtTimeout)
	})
	viaSess, sctr := runOnFreshServer(t, func(s *Server, p *sim.Proc) QueryResult {
		sess := s.Open(p)
		defer sess.Close()
		return sess.Query(analyticalQ(s.DB), QueryOptions{})
	})
	if !reflect.DeepEqual(direct.Rows, viaSess.Rows) {
		t.Fatalf("rows differ: %v vs %v", direct.Rows, viaSess.Rows)
	}
	if direct.Elapsed != viaSess.Elapsed {
		t.Fatalf("elapsed differ: %v vs %v", direct.Elapsed, viaSess.Elapsed)
	}
	if !reflect.DeepEqual(direct.Stats, viaSess.Stats) {
		t.Fatalf("stats differ: %+v vs %+v", direct.Stats, viaSess.Stats)
	}
	if !reflect.DeepEqual(dctr, sctr) {
		t.Fatalf("engine counters differ:\ndirect:  %+v\nsession: %+v", dctr, sctr)
	}
}

// TestSessionQueryHintsMatchDirect repeats the differential with DOP and
// grant hints, the QueryTiming path.
func TestSessionQueryHintsMatchDirect(t *testing.T) {
	direct, dctr := runOnFreshServer(t, func(s *Server, p *sim.Proc) QueryResult {
		return s.runQuery(p, analyticalQ(s.DB), 2, 0.1, s.Cfg.StmtTimeout)
	})
	viaSess, sctr := runOnFreshServer(t, func(s *Server, p *sim.Proc) QueryResult {
		sess := s.Open(p)
		defer sess.Close()
		return sess.Query(analyticalQ(s.DB), QueryOptions{MaxDOP: 2, GrantPct: 0.1})
	})
	if !reflect.DeepEqual(direct.Rows, viaSess.Rows) || direct.Elapsed != viaSess.Elapsed {
		t.Fatalf("hinted query differs: %v/%v vs %v/%v",
			direct.Rows, direct.Elapsed, viaSess.Rows, viaSess.Elapsed)
	}
	if !reflect.DeepEqual(dctr, sctr) {
		t.Fatalf("engine counters differ under hints")
	}
}

// TestOpenDrawsNoRandomness pins the property every fork-order-sensitive
// driver relies on: Open is RNG-free, and only BindCtx forks the root
// stream.
func TestOpenDrawsNoRandomness(t *testing.T) {
	s := NewServer(Config{Seed: 9})
	db := testDB()
	s.AttachDB(db)
	s.Start()
	var probe uint64
	s.Sim.Spawn("probe", func(p *sim.Proc) {
		sess := s.Open(p)
		defer sess.Close()
		probe = s.Sim.RNG().Fork().Uint64()
	})
	s.Sim.Run(sim.Time(sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(2 * sim.Second))

	s2 := NewServer(Config{Seed: 9})
	db2 := testDB()
	s2.AttachDB(db2)
	s2.Start()
	var probe2 uint64
	s2.Sim.Spawn("probe", func(p *sim.Proc) {
		probe2 = s2.Sim.RNG().Fork().Uint64()
	})
	s2.Sim.Run(sim.Time(sim.Second))
	s2.Stop()
	s2.Sim.Run(sim.Time(2 * sim.Second))

	if probe != probe2 {
		t.Fatalf("Open perturbed the root RNG stream: %d vs %d", probe, probe2)
	}
}

// TestSessionCountsOpenClose checks the session telemetry counters.
func TestSessionCountsOpenClose(t *testing.T) {
	s := NewServer(Config{Seed: 3})
	db := testDB()
	s.AttachDB(db)
	s.Start()
	s.Sim.Spawn("probe", func(p *sim.Proc) {
		a := s.Open(p)
		b := s.Open(p)
		if s.sessActive != 2 || s.sessOpened != 2 {
			t.Errorf("active=%d opened=%d", s.sessActive, s.sessOpened)
		}
		a.Close()
		a.Close() // idempotent
		b.Close()
		if s.sessActive != 0 || s.sessOpened != 2 {
			t.Errorf("after close: active=%d opened=%d", s.sessActive, s.sessOpened)
		}
	})
	s.Sim.Run(sim.Time(sim.Second))
	s.Stop()
	s.Sim.Run(sim.Time(2 * sim.Second))
}
