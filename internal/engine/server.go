package engine

import (
	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/cgroup"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/iodev"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Config sizes a server. Zero values take the paper's defaults.
type Config struct {
	Seed int64

	Machine hw.Spec
	SSD     iodev.Spec

	// TotalMemoryBytes is the host memory (64 GB on the paper's box).
	// SQL Server gets ~80% of it; of that, the buffer pool takes
	// BufferFrac and the query workspace the rest.
	TotalMemoryBytes int64
	SQLMemFrac       float64
	BufferFrac       float64

	// Resource governor.
	MaxDOP          int     // 0 = number of allowed cores
	GrantFrac       float64 // per-query grant cap as a fraction of workspace
	CostThresholdNs float64

	// StmtTimeout is the statement deadline (0 = none, the baseline).
	// A statement that cannot finish by its deadline is killed with a
	// typed ErrDeadline QueryError; halfway to the deadline a query
	// still waiting on its grant is re-planned at lower DOP and grant
	// (graceful degradation) before being killed.
	StmtTimeout sim.Duration

	// Retry is the driver-visible retry policy. The zero value disables
	// retries; drivers consult it via Cfg.Retry.
	Retry RetryPolicy

	// Trace enables per-operator span tracing on analytical queries.
	// Off (the default) costs nothing; QueryResult.Trace is then nil.
	Trace bool

	// RowExec forces row-at-a-time execution. The default (false) runs
	// the vectorized batch executor; results are row-identical, and
	// charges move to per-batch granularity (see EXPERIMENTS.md).
	RowExec bool

	// Telemetry arms the unified metric registry: every subsystem's
	// counters/gauges/histograms sampled into time series at 1-second
	// simulated intervals (Server.Tel). Off (the default) allocates
	// nothing and leaves every hot-path handle nil, so runs are
	// bit-identical to a build without telemetry at all.
	Telemetry bool

	// ReplMode selects the replication commit mode when this server is
	// the primary of a repl.Cluster: "" or "async" (commit returns after
	// local group commit), "sync" (wait for every standby's WAL-durable
	// ack), or "quorum" (wait for ReplQuorum acks). The engine itself
	// only stores these; internal/repl reads them when wiring a cluster,
	// so a server with no cluster behaves identically regardless.
	ReplMode   string
	ReplQuorum int

	Cost *access.CostModel
}

// DefaultConfig returns the paper's testbed configuration.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Machine:          hw.PaperSpec(),
		SSD:              iodev.PaperSSD(),
		TotalMemoryBytes: 64 << 30,
		SQLMemFrac:       0.80,
		BufferFrac:       0.82,
		GrantFrac:        0.25,
		CostThresholdNs:  6e8,
		Cost:             access.DefaultCost(),
	}
}

// Server is one running database server inside one simulation.
type Server struct {
	Cfg Config

	Sim   *sim.Sim
	M     *hw.Machine
	Dev   *iodev.Device
	BlkIO *cgroup.BlkIO
	CPUs  *cgroup.CPUSet
	BP    *buffer.Pool
	Log   *wal.Log
	Locks *lock.Manager
	Txns  *txn.Manager
	Ctr   *metrics.Counters
	Smp   *metrics.Sampler

	// QStats is the cumulative per-query-template statistics store
	// (dm_exec_query_stats). Always on: recording is a few counter adds
	// per statement and changes no simulated behavior.
	QStats *metrics.QueryStats

	// Tel is the unified metric registry (nil unless Cfg.Telemetry).
	Tel *telemetry.Registry

	DB *Database

	logLatch   *lock.NamedLatch
	allocLatch map[int]*lock.NamedLatch

	workspace    int64 // query workspace bytes
	workspaceUse int64
	faultReserve int64 // workspace stolen by fault injection (grant starvation)
	grantQ       sim.WaitQueue

	nextCore   int
	sessOpened int64 // cumulative Open count
	sessActive int64 // currently open sessions

	stopped   bool
	cleanStop bool
	stopHooks []func()
	tempBase  uint64
	metaBase  uint64

	// Crash-recovery state (ArmRecovery only).
	armed     bool
	crashed   bool
	crasher   *fault.Crasher
	liveAtArm map[int]int64 // live rows per table at arm time (invariants)
}

// NewServer builds a server and its background services.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return NewServerOn(sim.New(cfg.Seed), cfg)
}

// NewServerOn builds a server inside an existing simulation — how a
// replication cluster places several machines (primary + standbys) on
// one sim clock. Each server still gets its own device, buffer pool,
// log, and lock space; only the clock and event loop are shared.
func NewServerOn(sm *sim.Sim, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctr := &metrics.Counters{}
	m := hw.New(sm, cfg.Machine, ctr)
	dev := iodev.New(cfg.SSD, ctr)
	sqlMem := int64(float64(cfg.TotalMemoryBytes) * cfg.SQLMemFrac)
	bufBytes := int64(float64(sqlMem) * cfg.BufferFrac)
	s := &Server{
		Cfg:        cfg,
		Sim:        sm,
		M:          m,
		Dev:        dev,
		BP:         buffer.New(sm, dev, ctr, bufBytes),
		Log:        wal.New(sm, dev, ctr),
		Locks:      lock.NewManager(sm, ctr),
		Ctr:        ctr,
		Smp:        metrics.NewSampler(ctr),
		QStats:     metrics.NewQueryStats(),
		logLatch:   lock.NewNamedLatch("LOG_BUFFER", ctr),
		allocLatch: make(map[int]*lock.NamedLatch),
		workspace:  sqlMem - bufBytes,
	}
	s.Txns = txn.NewManager(s.Locks, s.Log, ctr)
	s.CPUs = cgroup.NewCPUSet(m)
	s.BlkIO = cgroup.NewBlkIO(dev)
	s.tempBase = m.ReserveRegion(8 << 30)
	s.metaBase = m.ReserveRegion(cfg.Cost.MetaBytes + (1 << 20))
	if cfg.Telemetry {
		s.Tel = telemetry.NewRegistry()
		s.registerTelemetry()
	}
	return s
}

// withDefaults fills zero-valued fields from DefaultConfig, so callers
// may override only what an experiment varies.
func (cfg Config) withDefaults() Config {
	d := DefaultConfig()
	if cfg.Seed == 0 {
		cfg.Seed = d.Seed
	}
	if cfg.Machine.Sockets == 0 {
		cfg.Machine = d.Machine
	}
	if cfg.SSD.ReadMBps == 0 {
		cfg.SSD = d.SSD
	}
	if cfg.TotalMemoryBytes == 0 {
		cfg.TotalMemoryBytes = d.TotalMemoryBytes
	}
	if cfg.SQLMemFrac == 0 {
		cfg.SQLMemFrac = d.SQLMemFrac
	}
	if cfg.BufferFrac == 0 {
		cfg.BufferFrac = d.BufferFrac
	}
	if cfg.GrantFrac == 0 {
		cfg.GrantFrac = d.GrantFrac
	}
	if cfg.CostThresholdNs == 0 {
		cfg.CostThresholdNs = d.CostThresholdNs
	}
	if cfg.Cost == nil {
		cfg.Cost = d.Cost
	}
	return cfg
}

// Start launches background services (log writer, checkpointer, metrics
// sampler).
func (s *Server) Start() {
	s.Log.Start()
	s.BP.StartCheckpointer()
	s.Smp.Start(s.Sim)
	s.Tel.Start(s.Sim)
}

// Stop flags shutdown: background services exit at their next wakeup and
// workload drivers should consult Stopped.
func (s *Server) Stop() {
	s.stopped = true
	s.cleanStop = true
	s.Log.Stop()
	s.BP.Stop()
	s.Smp.Stop()
	s.Tel.Stop(s.Sim.Now())
	for _, fn := range s.stopHooks {
		fn()
	}
	s.grantQ.WakeAll(s.Sim) // let parked grant waiters observe shutdown
}

// AddStopHook registers fn to run during Stop — how auxiliary services
// bound to this server (e.g. a fault injector) are shut down with it.
func (s *Server) AddStopHook(fn func()) { s.stopHooks = append(s.stopHooks, fn) }

// WorkspaceBytes returns the configured query workspace size.
func (s *Server) WorkspaceBytes() int64 { return s.workspace }

// SetFaultReserve reserves bytes of workspace away from query grants (the
// fault injector's grant-starvation axis); 0 clears the reservation.
// Waiters are woken so they re-evaluate against the new capacity.
func (s *Server) SetFaultReserve(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	if bytes > s.workspace {
		bytes = s.workspace
	}
	s.faultReserve = bytes
	s.grantQ.WakeAll(s.Sim)
}

// Stopped reports whether shutdown was requested.
func (s *Server) Stopped() bool { return s.stopped }

// AttachDB registers a database's files with the buffer pool and gives
// every object a synthetic address region.
func (s *Server) AttachDB(db *Database) {
	s.DB = db
	for _, t := range db.Tables {
		t.Data.Region = s.M.ReserveRegion(t.NominalDataBytes() + (64 << 20))
		s.BP.Register(t.Data)
	}
	for _, ix := range db.BTrees {
		ix.File.Region = s.M.ReserveRegion(ix.File.Bytes() + (64 << 20))
		s.BP.Register(ix.File)
	}
	for _, csi := range db.CSIs {
		csi.Ix.File.Region = s.M.ReserveRegion(csi.Ix.File.Bytes() + (64 << 20))
		s.BP.Register(csi.Ix.File)
	}
}

// WarmBufferPool marks data resident post-load, as after the paper's
// load-then-run procedure (up to pool capacity). Primary storage warms
// first — columnstores and indexes, then row heaps of non-CCI tables —
// so what stays cold when the database exceeds memory is realistic.
func (s *Server) WarmBufferPool() {
	for _, csi := range s.DB.CSIs {
		s.BP.WarmFile(csi.Ix.File)
	}
	for _, ix := range s.DB.BTrees {
		s.BP.WarmFile(ix.File)
	}
	for _, t := range s.DB.Tables {
		if !s.DB.IsCCI(t) {
			s.BP.WarmFile(t.Data)
		}
	}
}

// PickCore assigns a session to an allowed core round-robin. An empty
// cpuset (possible transiently while a fault or reconfiguration swaps the
// allowed set) falls back to core 0 rather than panicking.
func (s *Server) PickCore() int {
	ids := s.CPUs.Allowed()
	if len(ids) == 0 {
		s.Ctr.CpusetFallbacks++
		return 0
	}
	c := ids[s.nextCore%len(ids)]
	s.nextCore++
	return c
}

// NewCtx builds an execution context for a session proc.
func (s *Server) NewCtx(p *sim.Proc) *access.Ctx {
	return &access.Ctx{
		P:        p,
		Core:     s.PickCore(),
		M:        s.M,
		BP:       s.BP,
		Ctr:      s.Ctr,
		Cost:     s.Cfg.Cost,
		RNG:      s.Sim.RNG().Fork(),
		MetaBase: s.metaBase,
	}
}

// EffectiveDop returns the DOP the resource governor offers a query.
func (s *Server) EffectiveDop(maxdopHint int) int {
	d := s.CPUs.Count()
	if s.Cfg.MaxDOP > 0 && s.Cfg.MaxDOP < d {
		d = s.Cfg.MaxDOP
	}
	if maxdopHint > 0 && maxdopHint < d {
		d = maxdopHint
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Planner builds an optimizer bound to current server state.
func (s *Server) Planner(dop int) *opt.Planner {
	pl := opt.NewPlanner(s.Cfg.Cost)
	pl.WorkspaceBytes = s.workspace
	pl.GrantFrac = s.Cfg.GrantFrac
	pl.BufferBytes = s.BP.CapacityPages() * 8192
	if s.DB != nil {
		pl.DBBytes = s.DB.TotalBytes()
	}
	pl.Dop = dop
	pl.CostThresholdNs = s.Cfg.CostThresholdNs
	return pl
}

// acquireWorkspace blocks until bytes of query workspace are available
// (RESOURCE_SEMAPHORE). Requests larger than the whole workspace are
// clamped — they could otherwise never be satisfied and the session
// would wait forever. It returns the bytes actually reserved: 0 when
// the wait was abandoned because the server stopped, in which case
// nothing was charged and nothing must be released.
func (s *Server) acquireWorkspace(p *sim.Proc, bytes int64) int64 {
	if bytes > s.workspace {
		bytes = s.workspace
	}
	start := p.Now()
	for s.workspaceUse+bytes > s.workspace-s.faultReserve && !s.stopped {
		s.grantQ.Wait(p)
	}
	metrics.ChargeWait(p, s.Ctr, metrics.WaitResourceSem, sim.Duration(p.Now()-start))
	if s.workspaceUse+bytes > s.workspace-s.faultReserve {
		return 0 // woken by Stop, not by capacity
	}
	s.workspaceUse += bytes
	return bytes
}

// acquireWorkspaceUntil is acquireWorkspace with a give-up time: when the
// grant is still unavailable at limit it returns (0, true) so the caller
// can degrade or kill the statement instead of queueing forever.
func (s *Server) acquireWorkspaceUntil(p *sim.Proc, bytes int64, limit sim.Time) (granted int64, timedOut bool) {
	if bytes > s.workspace {
		bytes = s.workspace
	}
	start := p.Now()
	for s.workspaceUse+bytes > s.workspace-s.faultReserve && !s.stopped {
		rem := sim.Duration(limit - p.Now())
		if rem <= 0 {
			timedOut = true
			break
		}
		s.grantQ.WaitTimeout(p, rem)
	}
	metrics.ChargeWait(p, s.Ctr, metrics.WaitResourceSem, sim.Duration(p.Now()-start))
	if timedOut {
		return 0, true
	}
	if s.workspaceUse+bytes > s.workspace-s.faultReserve {
		return 0, false // woken by Stop
	}
	s.workspaceUse += bytes
	return bytes, false
}

func (s *Server) releaseWorkspace(bytes int64) {
	s.workspaceUse -= bytes
	if s.workspaceUse < 0 {
		s.workspaceUse = 0
	}
	s.grantQ.WakeAll(s.Sim)
}

// QueryResult is one analytical query execution. Err is non-nil when the
// statement failed (canceled, deadline, IO); Rows are then nil.
type QueryResult struct {
	Rows    []exec.Row
	Stats   exec.QueryStats
	Info    opt.PlanInfo
	Elapsed sim.Duration
	Err     *QueryError

	// Stmt holds the counters attributed to this statement (waits, buffer
	// traffic, I/O, spills); Trace the per-operator span tree when
	// Cfg.Trace is on.
	Stmt  *metrics.Counters
	Trace *trace.Trace
}

// runQuery optimizes and executes a logical query on the session proc —
// the execution core behind Session.Query, which is the public surface.
// maxdopHint mirrors the MAXDOP query hint (0 = server setting); grantPct
// overrides the per-query grant cap when > 0 (the paper's Section 8
// query-memory-limit knob); timeout is the statement deadline (sessions
// pass their own, defaulted from Cfg.StmtTimeout).
//
// With a timeout set, the statement runs under a deadline: a query
// still waiting for its memory grant halfway to the deadline is
// re-planned at half the DOP and a quarter of the grant (degrading
// gracefully under sustained pressure instead of queueing forever); one
// that cannot start or finish by the deadline fails with ErrDeadline.
func (s *Server) runQuery(p *sim.Proc, q *opt.LNode, maxdopHint int, grantPct float64, timeout sim.Duration) (res QueryResult) {
	start := p.Now()
	var deadline sim.Time
	if timeout > 0 {
		deadline = start + sim.Time(timeout)
	}
	dop := s.EffectiveDop(maxdopHint)
	pl := s.Planner(dop)
	if grantPct > 0 {
		pl.GrantFrac = grantPct
	}
	plan, info := pl.Plan(q)

	// Attribute everything from here on — grant waits, worker I/O, spills —
	// to this statement. The session's previous attachment (e.g. a TP
	// transaction's) is restored on return.
	stmt := &metrics.Counters{}
	prevAttr := p.Attr()
	p.SetAttr(stmt)
	defer p.SetAttr(prevAttr)

	label := q.Label
	if label == "" {
		label = info.Shape
	}
	degraded := false
	defer func() {
		res.Stmt = stmt
		s.QStats.Record(label, metrics.Exec{
			Elapsed:  res.Elapsed,
			Rows:     int64(len(res.Rows)),
			Failed:   res.Err != nil,
			Killed:   res.Err != nil && res.Err.Kind == ErrDeadline,
			Degraded: degraded,
			Stmt:     stmt,
		})
	}()

	fail := func(kind ErrKind, op string) QueryResult {
		return QueryResult{
			Info: info, Elapsed: sim.Duration(p.Now() - start),
			Err: &QueryError{Kind: kind, Op: op, At: p.Now()},
		}
	}
	var granted int64
	if info.GrantBytes > 0 {
		if deadline == 0 {
			granted = s.acquireWorkspace(p, info.GrantBytes)
			if granted == 0 {
				// Woken by Stop with no capacity: executing anyway would run
				// an unreserved-memory query during shutdown.
				s.Ctr.QueriesCanceled++
				return fail(ErrCanceled, "grant")
			}
		} else {
			// Wait at most half the remaining deadline for the full grant.
			var timedOut bool
			granted, timedOut = s.acquireWorkspaceUntil(p, info.GrantBytes, start+(deadline-start)/2)
			if timedOut {
				// Degrade: re-plan at half the DOP and a quarter of the
				// grant, then wait out the rest of the deadline.
				s.Ctr.DegradedPlans++
				stmt.DegradedPlans++
				degraded = true
				if dop = info.Dop / 2; dop < 1 {
					dop = 1
				}
				pl = s.Planner(dop)
				gf := s.Cfg.GrantFrac
				if grantPct > 0 {
					gf = grantPct
				}
				pl.GrantFrac = gf / 4
				plan, info = pl.Plan(q)
				if info.GrantBytes > 0 {
					granted, timedOut = s.acquireWorkspaceUntil(p, info.GrantBytes, deadline)
					if timedOut {
						s.Ctr.DeadlineKills++
						s.Ctr.QueriesFailed++
						return fail(ErrDeadline, "grant")
					}
				}
			}
			if info.GrantBytes > 0 && granted == 0 {
				s.Ctr.QueriesCanceled++
				return fail(ErrCanceled, "grant")
			}
		}
		if granted > 0 {
			defer s.releaseWorkspace(granted)
		}
	}
	env := &exec.Env{
		Sim: s.Sim, M: s.M, BP: s.BP, Dev: s.Dev, Ctr: s.Ctr,
		Cost: s.Cfg.Cost, RNG: s.Sim.RNG().Fork(),
		Cores: s.CPUs.Allowed(), Dop: info.Dop,
		Grant:      &exec.Grant{Bytes: info.GrantBytes},
		TempRegion: s.tempBase,
		MetaBase:   s.metaBase,
		Home:       s.PickCore(),
		Deadline:   deadline,
		Vectorized: !s.Cfg.RowExec,
	}
	if s.Cfg.Trace {
		env.Trace = trace.New(label, stmt)
	}
	rows, st := exec.Run(p, env, plan)
	res = QueryResult{Rows: rows, Stats: st, Info: info, Elapsed: sim.Duration(p.Now() - start), Trace: env.Trace}
	if err := p.TakeFail(); err != nil {
		s.Ctr.QueriesFailed++
		res.Err = &QueryError{Kind: ErrIO, Op: "exec", At: p.Now()}
	} else if st.Killed {
		s.Ctr.DeadlineKills++
		s.Ctr.QueriesFailed++
		res.Err = &QueryError{Kind: ErrDeadline, Op: "exec", At: p.Now()}
	} else {
		s.Ctr.QueriesDone++
	}
	return res
}

// ExplainQuery returns the chosen plan without executing it (Figure 7).
func (s *Server) ExplainQuery(q *opt.LNode, maxdopHint int) (*exec.Node, opt.PlanInfo) {
	dop := s.EffectiveDop(maxdopHint)
	return s.Planner(dop).Plan(q)
}

func (s *Server) tableAllocLatch(t int) *lock.NamedLatch {
	l := s.allocLatch[t]
	if l == nil {
		l = lock.NewNamedLatch("ALLOC", s.Ctr)
		s.allocLatch[t] = l
	}
	return l
}
