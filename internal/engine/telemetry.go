package engine

import (
	"fmt"

	"repro/internal/metrics"
)

// registerTelemetry publishes every subsystem's uniform metric surface on
// the server's registry — the engine-wide equivalent of the paper's
// fixed PCM/iostat/DMV counter set, sampled at 1-second simulated
// intervals. Everything here is a read-only closure over existing state
// or a nil-able hot-path handle, so an armed registry observes without
// perturbing; a disarmed server never calls this.
func (s *Server) registerTelemetry() {
	r := s.Tel

	// Buffer manager: hit ratio, eviction pressure, checkpoint progress.
	r.Gauge("buffer", "hit_ratio", "frac", func() float64 {
		total := s.Ctr.BufferHits + s.Ctr.BufferMisses
		if total == 0 {
			return 0
		}
		return float64(s.Ctr.BufferHits) / float64(total)
	})
	r.CounterFunc("buffer", "evictions", "pages", func() float64 { return float64(s.BP.Evictions()) })
	r.CounterFunc("buffer", "checkpoint_pages", "pages", func() float64 { return float64(s.BP.CheckpointPages()) })
	r.Gauge("buffer", "resident_pages", "pages", func() float64 { return float64(s.BP.ResidentPages()) })

	// WAL: append/flush byte streams and per-flush latency.
	r.CounterFunc("wal", "append_bytes", "B", func() float64 { return float64(s.Log.AppendedLSN()) })
	r.CounterFunc("wal", "flush_bytes", "B", func() float64 { return float64(s.Log.FlushedLSN()) })
	r.CounterFunc("wal", "flushes", "ops", func() float64 { return float64(s.Log.Flushes()) })
	s.Log.FlushHist = r.Histogram("wal", "flush_latency")

	// Scheduler: run-queue depth and core occupancy.
	r.Gauge("sched", "run_queue", "procs", func() float64 { return float64(s.M.RunQueueDepth()) })
	r.Gauge("sched", "busy_cores", "cores", func() float64 { return float64(s.M.BusyCores()) })
	r.Gauge("sched", "occupancy", "frac", func() float64 {
		return float64(s.M.BusyCores()) / float64(s.M.LogicalCores())
	})

	// Device: fluid-channel backlog (queue depth in pending time) and
	// cgroup throttle-induced waits.
	r.Gauge("dev", "read_backlog_ms", "ms", func() float64 {
		rd, _ := s.Dev.Backlog(s.Sim.Now())
		return rd.Seconds() * 1e3
	})
	r.Gauge("dev", "write_backlog_ms", "ms", func() float64 {
		_, wr := s.Dev.Backlog(s.Sim.Now())
		return wr.Seconds() * 1e3
	})
	r.CounterFunc("dev", "throttle_wait_ns", "ns", func() float64 {
		rd, wr := s.Dev.ThrottleWaitNs()
		return float64(rd + wr)
	})

	// LLC: per-socket MPKI against the socket's current COS (way-mask)
	// width — the CAT sensitivity surface.
	for i := 0; i < s.Cfg.Machine.Sockets; i++ {
		sock := i
		r.Gauge("cache", fmt.Sprintf("llc%d_mpki", sock), "mpki", func() float64 {
			if s.Ctr.Instructions == 0 {
				return 0
			}
			return float64(s.M.LLC(sock).Stats().Misses) / float64(s.Ctr.Instructions) * 1000
		})
		r.Gauge("cache", fmt.Sprintf("llc%d_cos_ways", sock), "ways", func() float64 {
			return float64(s.M.LLC(sock).AllocatedWays())
		})
	}

	// Memory grants: workspace occupancy and queued grant requests.
	r.Gauge("grant", "occupancy", "frac", func() float64 {
		if s.workspace == 0 {
			return 0
		}
		return float64(s.workspaceUse) / float64(s.workspace)
	})
	r.Gauge("grant", "waiters", "procs", func() float64 { return float64(s.grantQ.Len()) })

	// Locks and latches: wait rates and timeouts.
	r.CounterFunc("lock", "wait_ns", "ns", func() float64 {
		return float64(s.Ctr.WaitNs[metrics.WaitLock])
	})
	r.CounterFunc("lock", "latch_wait_ns", "ns", func() float64 {
		return float64(s.Ctr.WaitNs[metrics.WaitLatch] +
			s.Ctr.WaitNs[metrics.WaitPageLatch] +
			s.Ctr.WaitNs[metrics.WaitPageIOLatch])
	})
	r.CounterFunc("lock", "timeouts", "ops", func() float64 { return float64(s.Locks.Timeouts) })

	// Sessions: currently open connections and cumulative opens.
	r.Gauge("session", "active", "sessions", func() float64 { return float64(s.sessActive) })
	r.CounterFunc("session", "opened", "sessions", func() float64 { return float64(s.sessOpened) })

	// Transactions: commit/abort rates.
	r.CounterFunc("txn", "commits", "ops", func() float64 { return float64(s.Ctr.TxnCommits) })
	r.CounterFunc("txn", "aborts", "ops", func() float64 { return float64(s.Ctr.TxnAborts) })
}
