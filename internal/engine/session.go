package engine

import (
	"repro/internal/access"
	"repro/internal/btree"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Session is the engine's single request entrypoint: one client
// connection — an in-process workload driver or a network front-end
// handler — issuing transactional statements (Begin/Read/Update/.../
// Commit, or whole transactions via Exec) and analytical queries
// (Query) on its proc. The session carries the connection-scoped
// context that used to live in every driver: the retry policy, the
// statement deadline, and the attribution hookup that charges waits and
// I/O to the running statement.
//
// Transport-agnostic by construction: the harness drivers and the
// internal/serve network workers go through exactly this surface, so a
// request behaves identically whether it arrived in-process or over the
// simulated wire.
type Session struct {
	S   *Server
	P   *sim.Proc
	Ctx *access.Ctx // OLTP execution context; nil until BindCtx

	// Retry is the session's statement/transaction retry policy,
	// initialized from Config.Retry at Open.
	Retry RetryPolicy

	// Timeout is the statement deadline applied to analytical queries,
	// initialized from Config.StmtTimeout at Open (0 = none). A session
	// may tighten or loosen it without affecting other connections.
	Timeout sim.Duration

	// LastCommitLSN is the WAL end-byte LSN of the session's most recent
	// durably acknowledged commit — 0 until one commits, and always 0
	// when recovery recording is off (commit records then carry no LSN).
	// The serving layer reads it to correlate a client-visible ack with
	// the exact log position the acked-commit safety checker audits.
	LastCommitLSN int64

	err    *QueryError // first statement failure since the last TakeErr
	closed bool
}

// Open opens a session for the proc. Opening is free: the OLTP
// execution context (scheduler core, buffer handles, a forked RNG
// stream) binds separately via BindCtx, so query-only sessions never
// consume a per-connection random stream.
func (s *Server) Open(p *sim.Proc) *Session {
	s.sessOpened++
	s.sessActive++
	return &Session{S: s, P: p, Retry: s.Cfg.Retry, Timeout: s.Cfg.StmtTimeout}
}

// BindCtx binds the session's OLTP execution context — what a connected
// client's login does. Closed-loop OLTP drivers bind at open time so
// the per-connection RNG stream is drawn from the root at the same
// position as in earlier revisions (fork order determines every
// downstream stream); it returns the session for chaining.
func (sess *Session) BindCtx() *Session {
	if sess.Ctx == nil {
		sess.Ctx = sess.S.NewCtx(sess.P)
	}
	return sess
}

// Close releases the session. Statement results remain valid; the
// session must not issue further statements.
func (sess *Session) Close() {
	if !sess.closed {
		sess.closed = true
		sess.S.sessActive--
	}
}

// QueryOptions tunes one analytical statement.
type QueryOptions struct {
	// MaxDOP mirrors the MAXDOP query hint (0 = server setting).
	MaxDOP int
	// GrantPct overrides the per-query grant cap when > 0 (the paper's
	// Section 8 query-memory-limit knob).
	GrantPct float64
	// G supplies the backoff-jitter stream for bounded retries of
	// retryable failures under the session's Retry policy. nil runs the
	// statement exactly once (how single-shot experiments pin timing).
	G *sim.RNG
}

// Query optimizes and executes a logical query on the session proc,
// retrying retryable failures with backoff when o.G is set and the
// session's Retry policy is enabled. Shutdown cancellation is terminal.
func (sess *Session) Query(q *opt.LNode, o QueryOptions) QueryResult {
	s, p := sess.S, sess.P
	res := s.runQuery(p, q, o.MaxDOP, o.GrantPct, sess.Timeout)
	if res.Err != nil && o.G != nil && sess.Retry.Enabled() {
		pol := sess.Retry
		for attempt := 1; attempt < pol.MaxAttempts &&
			res.Err != nil && res.Err.Retryable() && !s.Stopped(); attempt++ {
			s.Ctr.QueryRetries++
			s.QStats.AddRetry(q.Label)
			pol.Sleep(p, o.G, attempt)
			res = s.runQuery(p, q, o.MaxDOP, o.GrantPct, sess.Timeout)
		}
	}
	return res
}

// Exec runs one whole transaction (fn) as a labeled statement: a fresh
// counter set is attached for the duration so waits, buffer traffic and
// I/O attribute to it, the attempt is folded into the server's
// per-template query statistics under label, and transient aborts
// (victim, IO) are retried with backoff under the session's Retry
// policy using g for jitter. It reports whether the transaction
// ultimately committed; the caller can distinguish "failed with retries
// disabled" via sess.Retry.Enabled().
func (sess *Session) Exec(label string, g *sim.RNG, fn func() bool) bool {
	s, p := sess.S, sess.P
	run := func() bool {
		t0 := p.Now()
		stmt := &metrics.Counters{}
		prev := p.Attr()
		p.SetAttr(stmt)
		ok := fn()
		p.SetAttr(prev)
		s.QStats.Record(label, metrics.Exec{
			Elapsed: sim.Duration(p.Now() - t0),
			Failed:  !ok,
			Stmt:    stmt,
		})
		return ok
	}
	ok := run()
	pol := sess.Retry
	if !ok && pol.Enabled() {
		// Bounded retry with backoff for transient aborts (victim, IO);
		// shutdown and not-durable commits are terminal.
		for attempt := 1; attempt < pol.MaxAttempts && !s.Stopped(); attempt++ {
			if qe := sess.TakeErr(); qe != nil && !qe.Retryable() {
				break
			}
			s.Ctr.TxnRetries++
			s.QStats.AddRetry(label)
			pol.Sleep(p, g, attempt)
			if ok = run(); ok {
				break
			}
		}
		sess.TakeErr()
	}
	return ok
}

// setErr latches the first failure of the current transaction.
func (sess *Session) setErr(kind ErrKind, op string) {
	if sess.err == nil {
		sess.err = &QueryError{Kind: kind, Op: op, At: sess.P.Now()}
	}
}

// TakeErr returns the first failure since the last call and clears it.
// Drivers use it to decide whether (and how) to retry an aborted txn.
func (sess *Session) TakeErr() *QueryError {
	e := sess.err
	sess.err = nil
	return e
}

// Begin starts a transaction.
func (sess *Session) Begin() *txn.Txn {
	return sess.S.Txns.Begin()
}

// Commit charges commit processing, flushes pending work, and commits
// (group commit wait), taking the log-buffer latch briefly as the commit
// record is formatted. It reports whether the transaction actually
// committed: an unrecoverable device error during the transaction's
// statements (deposited on the proc by the buffer pool) aborts instead.
func (sess *Session) Commit(tx *txn.Txn) bool {
	if err := sess.P.TakeFail(); err != nil {
		sess.setErr(ErrIO, "commit")
		sess.Abort(tx)
		return false
	}
	// A victim-aborted transaction still pays the commit-statement charges
	// (the client issued COMMIT and the engine processed it) but reports
	// failure so drivers can retry.
	committed := tx.Active()
	sess.Ctx.CPU(sess.Ctx.Cost.TxnInstr)
	sess.Ctx.TouchMeta(3500)
	sess.Ctx.Flush()
	sess.S.logLatch.Do(sess.P, 300)
	durable := tx.Commit(sess.P)
	if committed && !durable {
		// The log stopped (or crashed) before the commit record flushed:
		// the transaction did not commit.
		sess.setErr(ErrNotDurable, "commit")
		return false
	}
	if committed {
		if rec := tx.CommitRec(); rec != nil {
			sess.LastCommitLSN = rec.LSN
		}
	}
	return committed
}

// stmtOverhead charges the fixed per-statement engine work (protocol,
// bind, plan-cache lookup, execution context).
func (sess *Session) stmtOverhead() {
	sess.Ctx.CPU(sess.Ctx.Cost.StmtInstr)
	sess.Ctx.Stall(sess.Ctx.Cost.StmtStallNs)
	// The statement's walk over shared engine state (plan cache, schema,
	// lock manager, TDS buffers) — the transactional working set whose
	// fit in a few MB of LLC produces Table 4's small sufficient sizes.
	sess.Ctx.TouchMeta(2800)
}

// Abort rolls back.
func (sess *Session) Abort(tx *txn.Txn) {
	sess.Ctx.Flush()
	tx.Abort()
}

// logRecord registers the log record for a modification (row image +
// header) with the page it covers and its logical undo payload.
func logRecord(tx *txn.Txn, t *storage.Table, page wal.PageID, ops []wal.Op) {
	tx.LogOp(t.RowWidth()+wal.RecHeaderBytes, page, ops)
}

// dataPage returns the PageID of a table's data page holding nominal row
// nid.
func dataPage(t *storage.Table, nid int64) wal.PageID {
	return wal.PageID{File: t.Data.ID, Page: t.PageOfNominal(nid)}
}

// RowWriter applies a row mutation and captures its logical undo
// payload. Update statements hand one to the driver's callback; the
// driver expresses the modification through Get/Set/Add instead of
// writing the table directly, which is how write statements register
// page + undo info on their WAL records.
type RowWriter struct {
	t   *storage.Table
	row int64
	rec bool // capture ops (crash-recovery bookkeeping armed)
	ops []wal.Op
}

// Row returns the actual row ID being modified.
func (w *RowWriter) Row() int64 { return w.row }

// Get reads a column of the row.
func (w *RowWriter) Get(col int) int64 { return w.t.Get(w.row, col) }

// Set overwrites a column, recording the pre-image for undo.
func (w *RowWriter) Set(col int, v int64) {
	if w.rec {
		w.ops = append(w.ops, wal.Op{
			Kind: wal.OpSet, T: w.t, Row: w.row, Col: col,
			Old: w.t.Get(w.row, col), New: v,
		})
	}
	w.t.Set(w.row, col, v)
}

// Add increments a column by delta.
func (w *RowWriter) Add(col int, delta int64) { w.Set(col, w.Get(col)+delta) }

// Read performs an index point read at nominal row nid: S row lock, index
// probe, base-row fetch for nonclustered indexes. It returns the actual
// row ID.
func (sess *Session) Read(tx *txn.Txn, ix *access.BTIndex, key btree.Key, nid int64) (int64, bool) {
	sess.stmtOverhead()
	if !tx.Lock(sess.P, lock.Key{Obj: ix.Table.ID, Row: nid}, lock.S) {
		sess.setErr(ErrVictim, "read")
		return 0, false
	}
	rowID, ok := ix.Probe(sess.Ctx, key, nid, false)
	if ok && !ix.Clustered {
		access.Heap{T: ix.Table}.ProbePoint(sess.Ctx, nid, false)
	}
	return rowID, ok
}

// ReadRange scans count nominal entries from nid through the index
// (shared intent on the table, no per-row locks — read-committed range
// read at scan isolation).
func (sess *Session) ReadRange(tx *txn.Txn, ix *access.BTIndex, from btree.Key, nid, count int64) []int64 {
	sess.stmtOverhead()
	if !tx.Lock(sess.P, lock.Key{Obj: ix.Table.ID, Row: -1}, lock.IS) {
		sess.setErr(ErrVictim, "read-range")
		return nil
	}
	ix.ChargeLeafRange(sess.Ctx, nid, count)
	var ids []int64
	limit := int(count/ix.Table.K) + 1
	ix.RangeActual(from, nil, func(rowID int64) bool {
		ids = append(ids, rowID)
		return len(ids) < limit
	})
	return ids
}

// Update performs a read-modify-write of one row: U lock converted to X
// (the conversion-safe discipline), probe for write, mutate via fn, log.
func (sess *Session) Update(tx *txn.Txn, ix *access.BTIndex, key btree.Key, nid int64, fn func(w *RowWriter)) bool {
	sess.stmtOverhead()
	if !tx.Lock(sess.P, lock.Key{Obj: ix.Table.ID, Row: nid}, lock.U) {
		sess.setErr(ErrVictim, "update")
		return false
	}
	rowID, ok := ix.Probe(sess.Ctx, key, nid, false)
	if !ok {
		return false
	}
	if !tx.Lock(sess.P, lock.Key{Obj: ix.Table.ID, Row: nid}, lock.X) {
		sess.setErr(ErrVictim, "update")
		return false
	}
	access.Heap{T: ix.Table}.ProbePoint(sess.Ctx, nid, true)
	w := &RowWriter{t: ix.Table, row: rowID, rec: sess.S.Txns.Recording()}
	if fn != nil {
		fn(w)
	}
	logRecord(tx, ix.Table, dataPage(ix.Table, nid), w.ops)
	return true
}

// Insert appends one nominal row: IX table lock, X lock on the new row,
// heap append (hot last page), maintenance on each index, optional
// columnstore delta insert, log. It returns the nominal row ID.
func (sess *Session) Insert(tx *txn.Txn, t *storage.Table, row []int64, indexes []*access.BTIndex, csi *access.CSI) int64 {
	sess.stmtOverhead()
	if !tx.Lock(sess.P, lock.Key{Obj: t.ID, Row: -1}, lock.IX) {
		sess.setErr(ErrVictim, "insert")
		return -1
	}
	heap := access.Heap{T: t}
	heap.ChargeInsert(sess.Ctx)
	crossesPage := (t.NominalRows()+1)%t.RowsPerPage() == 0
	if crossesPage {
		// Page allocation touches the allocation map under a latch.
		sess.S.tableAllocLatch(t.ID).Do(sess.P, 800)
	}
	before := t.ActualRows()
	nid := t.InsertNominal(row)
	if !tx.Lock(sess.P, lock.Key{Obj: t.ID, Row: nid}, lock.X) {
		// Victim mid-insert: the nominal append stands (a ghost row),
		// as after a rolled-back insert awaiting cleanup. The abort ran
		// inside the lock wait, before this op could be registered, so
		// the ghost is attached to the abort record's residue after the
		// fact — replicas must reproduce it.
		sess.setErr(ErrVictim, "insert")
		t.DeleteNominal()
		if sess.S.Txns.Recording() {
			tx.AddAbortResidue(wal.Op{
				Kind: wal.OpInsert, T: t, Row: t.ActualRows() - 1,
				Img: append([]int64(nil), row...), Materialized: t.ActualRows() > before,
			})
		}
		return -1
	}
	materialized := t.ActualRows() > before
	for _, ix := range indexes {
		ix.ChargeMaintenance(sess.Ctx, nid)
		if materialized {
			ix.InsertActual(t.ActualRows() - 1)
		}
		ixFile, ixPage := ix.MaintPage(nid)
		logRecord(tx, t, wal.PageID{File: ixFile, Page: ixPage}, nil)
	}
	if csi != nil {
		csi.ChargeDeltaInsert(sess.Ctx)
		csi.Ix.AppendDelta(row)
		csi.Ix.CompressDelta()
	}
	var ops []wal.Op
	if sess.S.Txns.Recording() {
		ops = []wal.Op{{
			Kind: wal.OpInsert, T: t, Row: t.ActualRows() - 1,
			Img: append([]int64(nil), row...), Materialized: materialized, Indexed: true,
		}}
	}
	logRecord(tx, t, dataPage(t, nid), ops)
	return nid
}

// Delete removes a nominal row through an index: X lock, probe, ghost the
// row, log. (Space reclaim is deferred, as with real ghost records.)
func (sess *Session) Delete(tx *txn.Txn, ix *access.BTIndex, key btree.Key, nid int64) bool {
	sess.stmtOverhead()
	if !tx.Lock(sess.P, lock.Key{Obj: ix.Table.ID, Row: nid}, lock.U) {
		sess.setErr(ErrVictim, "delete")
		return false
	}
	_, ok := ix.Probe(sess.Ctx, key, nid, false)
	if !ok {
		return false
	}
	if !tx.Lock(sess.P, lock.Key{Obj: ix.Table.ID, Row: nid}, lock.X) {
		sess.setErr(ErrVictim, "delete")
		return false
	}
	access.Heap{T: ix.Table}.ProbePoint(sess.Ctx, nid, true)
	ix.Table.DeleteNominal()
	var ops []wal.Op
	if sess.S.Txns.Recording() {
		ops = []wal.Op{{Kind: wal.OpDelete, T: ix.Table}}
	}
	logRecord(tx, ix.Table, dataPage(ix.Table, nid), ops)
	return true
}
