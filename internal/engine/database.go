// Package engine assembles the database server the paper measures: the
// simulated machine, buffer pool, WAL, lock manager, resource governor
// (cpuset / MAXDOP / memory grants), optimizer, and executor, plus the
// session API workloads drive.
package engine

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/colstore"
	"repro/internal/storage"
)

// Database is a catalog of tables and indexes.
type Database struct {
	Name string

	Tables   []*storage.Table
	BTrees   []*access.BTIndex
	CSIs     []*access.CSI
	byName   map[string]*storage.Table
	ixByName map[string]*access.BTIndex
	csiByTbl map[int]*access.CSI
	cci      map[int]bool // tables whose columnstore IS the primary storage

	nextID int
}

// NewDatabase creates an empty catalog.
func NewDatabase(name string) *Database {
	return &Database{
		Name:     name,
		byName:   make(map[string]*storage.Table),
		ixByName: make(map[string]*access.BTIndex),
		csiByTbl: make(map[int]*access.CSI),
		cci:      make(map[int]bool),
	}
}

func (db *Database) nextFileID() int {
	db.nextID++
	return db.nextID
}

// AddTable creates a table with replication factor k.
func (db *Database) AddTable(schema *storage.Schema, k int64) *storage.Table {
	if _, dup := db.byName[schema.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate table %q", schema.Name))
	}
	t := storage.NewTable(db.nextFileID(), schema, k)
	t.Data.ID = t.ID
	db.Tables = append(db.Tables, t)
	db.byName[schema.Name] = t
	return t
}

// Table returns a table by name, panicking if absent.
func (db *Database) Table(name string) *storage.Table {
	t, ok := db.byName[name]
	if !ok {
		panic(fmt.Sprintf("engine: no table %q", name))
	}
	return t
}

// AddBTIndex builds a B-tree index over the table's current rows.
func (db *Database) AddBTIndex(name string, t *storage.Table, keyCols []string, unique, clustered bool) *access.BTIndex {
	cols := make([]int, len(keyCols))
	for i, c := range keyCols {
		cols[i] = t.Schema.Col(c)
	}
	ix := access.NewBTIndex(db.nextFileID(), name, t, cols, unique, clustered)
	db.BTrees = append(db.BTrees, ix)
	db.ixByName[name] = ix
	return ix
}

// Index returns an index by name, panicking if absent.
func (db *Database) Index(name string) *access.BTIndex {
	ix, ok := db.ixByName[name]
	if !ok {
		panic(fmt.Sprintf("engine: no index %q", name))
	}
	return ix
}

// AddCSI builds a columnstore index over all of the table's columns.
func (db *Database) AddCSI(t *storage.Table) *access.CSI {
	cols := make([]int, t.NCols())
	for i := range cols {
		cols[i] = i
	}
	csi := access.NewCSI(colstore.Build(db.nextFileID(), t, cols))
	db.CSIs = append(db.CSIs, csi)
	db.csiByTbl[t.ID] = csi
	return csi
}

// CSIOf returns the table's columnstore index, or nil.
func (db *Database) CSIOf(t *storage.Table) *access.CSI { return db.csiByTbl[t.ID] }

// MarkCCI declares the table's columnstore as its primary (clustered)
// storage: the compressed columnstore is the data (the paper's DW
// configuration), and the row image does not count toward size.
func (db *Database) MarkCCI(t *storage.Table) {
	if db.csiByTbl[t.ID] == nil {
		panic("engine: MarkCCI before AddCSI")
	}
	db.cci[t.ID] = true
}

// IsCCI reports whether the table uses clustered columnstore storage.
func (db *Database) IsCCI(t *storage.Table) bool { return db.cci[t.ID] }

// DataBytes returns the nominal data size (Table 2's "Data" column).
// Clustered-columnstore tables count at their compressed size.
func (db *Database) DataBytes() int64 {
	var total int64
	for _, t := range db.Tables {
		if db.cci[t.ID] {
			total += db.csiByTbl[t.ID].Ix.NominalBytes()
		} else {
			total += t.NominalDataBytes()
		}
	}
	return total
}

// IndexBytes returns the nominal index size (Table 2's "Index" column).
// A clustered columnstore is data, not index; updatable NCCIs (the HTAP
// configuration) count as index.
func (db *Database) IndexBytes() int64 {
	var total int64
	for _, ix := range db.BTrees {
		total += ix.NominalBytes()
	}
	for _, csi := range db.CSIs {
		if !db.cci[csi.Ix.Table.ID] {
			total += csi.Ix.NominalBytes()
		}
	}
	return total
}

// TotalBytes returns data + index nominal size.
func (db *Database) TotalBytes() int64 { return db.DataBytes() + db.IndexBytes() }
