package repl

import (
	"repro/internal/access"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wal"
)

// applyState redoes a primary's typed record stream against an identical
// local dataset image. It is the committed-prefix interpretation of the
// ARIES log: update records accumulate per-transaction, a commit record
// applies them, an abort record applies only the transaction's ghost
// residue.
//
// Commit-LSN order is NOT always the per-cell write order: the engine
// locks by nominal row ID while the down-scaled tables alias many
// nominal rows onto one actual row, so two transactions can write the
// same physical cell under different locks and commit in the opposite
// order of their writes. Op.Seq (assigned at write registration) totally
// orders the writes to any one cell, so cell overwrites are gated on a
// per-cell Seq watermark — the same discipline restart recovery uses
// when redoing losers — and the image converges to the primary's
// last-writer-in-write-order state regardless of commit interleaving.
//
// The state is pure — no sim time, no I/O. Standby appliers charge
// device and buffer-pool costs separately (Cluster.chargeApply); the
// archiver's shadow image and PITR replay use it bare.
type applyState struct {
	db      *engine.Database
	tables  map[int]*storage.Table
	indexes map[int][]*access.BTIndex // by table ID
	csis    map[int]*access.CSI       // by table ID
	files   map[int]*storage.File     // by file ID, for page-charge remap

	// pending holds update ops whose transaction has not yet committed.
	pending map[int64][]wal.Op

	// cellSeq is the per-cell write watermark: the highest Op.Seq applied
	// to each (table, row, col). Older writes arriving later (commit-order
	// inversion under nominal-row lock aliasing) are stale and skipped.
	cellSeq map[cellKey]int64

	appliedTxns int64 // committed transactions applied
}

// cellKey names one physical cell across the catalog.
type cellKey struct {
	table int
	row   int64
	col   int
}

// newApplyState indexes the local catalog by the IDs the shipped records
// carry. Identical Build calls allocate identical table/index file IDs,
// so a primary record's table pointer remaps to the local replica of the
// same table by ID.
func newApplyState(db *engine.Database) *applyState {
	a := &applyState{
		db:      db,
		tables:  make(map[int]*storage.Table),
		indexes: make(map[int][]*access.BTIndex),
		csis:    make(map[int]*access.CSI),
		files:   make(map[int]*storage.File),
		pending: make(map[int64][]wal.Op),
		cellSeq: make(map[cellKey]int64),
	}
	for _, t := range db.Tables {
		a.tables[t.ID] = t
		a.files[t.Data.ID] = t.Data
		if csi := db.CSIOf(t); csi != nil {
			a.csis[t.ID] = csi
			a.files[csi.Ix.File.ID] = csi.Ix.File
		}
	}
	for _, ix := range db.BTrees {
		a.indexes[ix.Table.ID] = append(a.indexes[ix.Table.ID], ix)
		a.files[ix.File.ID] = ix.File
	}
	return a
}

// Apply interprets one record. Records must arrive in LSN order; the
// caller is responsible for not replaying a record twice (appliers gate
// on the standby WAL's appended LSN, PITR replays a clean range).
func (a *applyState) Apply(rec *wal.Record) {
	switch rec.Type {
	case wal.RecUpdate:
		a.pending[rec.Txn] = append(a.pending[rec.Txn], rec.Ops...)
	case wal.RecCommit:
		for _, op := range a.pending[rec.Txn] {
			a.applyOp(op)
		}
		delete(a.pending, rec.Txn)
		a.appliedTxns++
	case wal.RecAbort:
		// The transaction's forward work never applied here (its updates
		// are still pending), so there is nothing to undo — but rolled-back
		// inserts leave ghosts on the primary (high-water bumps, surviving
		// materialized rows, index entries), which the residue reproduces.
		for _, op := range rec.Residue {
			a.applyGhost(op)
		}
		delete(a.pending, rec.Txn)
	default:
		// Begin records carry no state; CLRs compensate forward records
		// this applier never applied; checkpoints are primary-local.
	}
}

// applyOp redoes one committed logical modification.
func (a *applyState) applyOp(op wal.Op) {
	t := a.tables[op.T.ID]
	if t == nil {
		return
	}
	switch op.Kind {
	case wal.OpSet:
		k := cellKey{table: op.T.ID, row: op.Row, col: op.Col}
		if op.Seq <= a.cellSeq[k] {
			return // stale: a later write to this cell already applied
		}
		a.cellSeq[k] = op.Seq
		t.Set(op.Row, op.Col, op.New)
	case wal.OpInsert:
		t.InsertNominalReplay(op.Img, op.Materialized, op.Row)
		a.maintainIndexes(t, op)
	case wal.OpDelete:
		t.DeleteNominal()
	}
}

// applyGhost reproduces a rolled-back insert: the nominal append stands
// with its live count immediately retracted, and — when the primary got
// as far as index maintenance before aborting — the index and
// columnstore entries stand too (rollback does not remove them; they
// await ghost cleanup exactly as on the primary).
func (a *applyState) applyGhost(op wal.Op) {
	t := a.tables[op.T.ID]
	if t == nil || op.Kind != wal.OpInsert {
		return
	}
	t.InsertNominalReplay(op.Img, op.Materialized, op.Row)
	t.DeleteNominal()
	a.maintainIndexes(t, op)
}

func (a *applyState) maintainIndexes(t *storage.Table, op wal.Op) {
	if !op.Indexed {
		return
	}
	if op.Materialized {
		for _, ix := range a.indexes[t.ID] {
			ix.InsertActual(op.Row)
		}
	}
	if csi := a.csis[t.ID]; csi != nil {
		csi.Ix.AppendDelta(op.Img)
		csi.Ix.CompressDelta()
	}
}
