package repl

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Cross-node commit tracing: when Config.TraceCommits is set, the first
// maxCommitTraces sync/quorum commits record per-standby timestamps as
// their records flow primary → link → standby WAL → apply, and the
// acknowledgement wait resolves. Each traced commit yields a span tree
// (trace.Span, the same type the per-operator tracer uses) whose root
// covers the whole observed commit latency and whose children decompose
// it per standby into ship (link serve + latency), replica-WAL (standby
// append + flush), and apply (redo through the standby buffer pool),
// plus the acknowledgement trip back.
//
// All hooks are passive timestamp reads on paths that already run; a
// cluster with tracing off keeps pendingTraces empty and every hook
// reduces to one empty-slice check, preserving bit-identical behavior.

// maxCommitTraces bounds retained traces (the first N commits).
const maxCommitTraces = 64

// standbyTimes are one standby's observed timestamps for a traced commit.
type standbyTimes struct {
	shipped  sim.Time // delivery of the batch containing the commit LSN
	durable  sim.Time // standby WAL flushed past the commit LSN (ack basis)
	applied  sim.Time // standby image caught up past the commit LSN
	applyEnd sim.Time // end of the applier iteration that covered it

	hasShipped, hasDurable, hasApplied, hasApplyEnd bool
}

// commitTrace is one traced commit's cross-node timeline.
type commitTrace struct {
	lsn      int64
	start    sim.Time // commitWait entry (local commit durable, locks held)
	quorumAt sim.Time // enough standbys durable; ack trip begins
	ackAt    sim.Time // commitWait return
	ok       bool     // acknowledged (false: timeout/shutdown)
	done     bool     // commitWait returned
	per      []standbyTimes
}

// traceRegister opens a trace for a commit entering commitWait. Standbys
// already past the LSN (possible after a reconnect re-ship) get
// zero-length phases anchored at start.
func (c *Cluster) traceRegister(lsn int64, now sim.Time) *commitTrace {
	if !c.Cfg.TraceCommits || len(c.pendingTraces)+len(c.commitTraces) >= maxCommitTraces {
		return nil
	}
	ct := &commitTrace{lsn: lsn, start: now, per: make([]standbyTimes, len(c.Standbys))}
	for i, s := range c.Standbys {
		st := &ct.per[i]
		if s.Srv.Log.FlushedLSN() >= lsn {
			st.shipped, st.hasShipped = now, true
			st.durable, st.hasDurable = now, true
		}
		if s.appliedLSN >= lsn {
			st.applied, st.hasApplied = now, true
			st.applyEnd, st.hasApplyEnd = now, true
		}
	}
	c.pendingTraces = append(c.pendingTraces, ct)
	return ct
}

// traceShipped marks traced commits whose LSN is covered by a batch just
// delivered to standby idx.
func (c *Cluster) traceShipped(idx int, maxLSN int64, now sim.Time) {
	for _, ct := range c.pendingTraces {
		st := &ct.per[idx]
		if !st.hasShipped && ct.lsn <= maxLSN {
			st.shipped, st.hasShipped = now, true
		}
	}
}

// traceDurable marks traced commits now durable in standby idx's WAL.
func (c *Cluster) traceDurable(idx int, flushedLSN int64, now sim.Time) {
	for _, ct := range c.pendingTraces {
		st := &ct.per[idx]
		if !st.hasDurable && ct.lsn <= flushedLSN {
			st.durable, st.hasDurable = now, true
		}
	}
}

// traceApplied marks traced commits now applied to standby idx's image.
func (c *Cluster) traceApplied(idx int, appliedLSN int64, now sim.Time) {
	for _, ct := range c.pendingTraces {
		st := &ct.per[idx]
		if !st.hasApplied && ct.lsn <= appliedLSN {
			st.applied, st.hasApplied = now, true
		}
	}
}

// traceApplyEnd marks the end of an applier iteration on standby idx: the
// instant the acknowledgement queue is woken, and the end of the apply
// phase for every traced commit the iteration covered.
func (c *Cluster) traceApplyEnd(idx int, appliedLSN int64, now sim.Time) {
	for _, ct := range c.pendingTraces {
		st := &ct.per[idx]
		if st.hasApplied && !st.hasApplyEnd && ct.lsn <= appliedLSN {
			st.applyEnd, st.hasApplyEnd = now, true
		}
	}
	c.reapTraces()
}

// traceResolve closes a trace as its commitWait returns.
func (c *Cluster) traceResolve(ct *commitTrace, quorumAt, ackAt sim.Time, ok bool) {
	if ct == nil {
		return
	}
	ct.quorumAt, ct.ackAt, ct.ok, ct.done = quorumAt, ackAt, ok, true
	c.commitTraces = append(c.commitTraces, ct)
	c.reapTraces()
}

// reapTraces drops fully-resolved traces from the pending list so the
// hook scans stay short.
func (c *Cluster) reapTraces() {
	live := c.pendingTraces[:0]
	for _, ct := range c.pendingTraces {
		resolved := ct.done
		for i := range ct.per {
			if !ct.per[i].hasApplyEnd {
				resolved = false
			}
		}
		if !resolved {
			live = append(live, ct)
		}
	}
	c.pendingTraces = live
}

// CommitTraces builds the span tree for every resolved traced commit, in
// commit order. The root span covers the full observed commit latency
// (entry to acknowledged); per-standby child spans decompose it into
// contiguous ship → replica-wal → apply phases, and an ack span covers
// the acknowledgement trip home. Timestamps a phase never reached clamp
// to the trace end, so partial traces (timeouts, shutdown) still render.
func (c *Cluster) CommitTraces() []*trace.Trace {
	out := make([]*trace.Trace, 0, len(c.commitTraces))
	for _, ct := range c.commitTraces {
		if !ct.done {
			continue
		}
		root := &trace.Span{Op: "Commit", Name: fmt.Sprintf("lsn=%d", ct.lsn), Start: ct.start, End: ct.ackAt}
		clamp := func(t sim.Time, has bool) sim.Time {
			if !has || t > ct.ackAt {
				return ct.ackAt
			}
			return t
		}
		for i := range ct.per {
			st := &ct.per[i]
			shipped := clamp(st.shipped, st.hasShipped)
			durable := clamp(st.durable, st.hasDurable)
			applyEnd := clamp(st.applyEnd, st.hasApplyEnd)
			sb := &trace.Span{Op: "Standby", Name: fmt.Sprintf("standby-%d", i), Start: ct.start, End: applyEnd}
			sb.Children = []*trace.Span{
				{Op: "Ship", Name: "link", Start: ct.start, End: shipped},
				{Op: "ReplicaWAL", Name: "flush", Start: shipped, End: durable},
				{Op: "Apply", Name: "redo", Start: durable, End: applyEnd},
			}
			root.Children = append(root.Children, sb)
		}
		root.Children = append(root.Children, &trace.Span{
			Op: "Ack", Name: "link", Start: clamp(ct.quorumAt, ct.ok), End: ct.ackAt,
		})
		out = append(out, &trace.Trace{Query: fmt.Sprintf("commit lsn=%d", ct.lsn), Root: root})
	}
	return out
}
