// Package repl implements log-shipping replication on the engine's typed
// logical WAL: one primary, N standbys, each standby a full simulated
// machine (its own device, bandwidth, buffer pool, and WAL) continuously
// applying the primary's durable record stream. Commit modes charge the
// cross-node acknowledgement path (sync / quorum(k) / async) through the
// simulated replication links and replica WAL devices — the commit-path
// placement question *OLTP on Hardware Islands* raises, run against the
// paper's storage-bandwidth throttles. WAL archiving, incremental
// snapshots, and point-in-time recovery layer on top (archive.go), and
// failover promotes the most caught-up standby with a measured RTO
// (failover.go).
//
// Everything runs on one sim clock, so replicated runs are bit-identical
// at any host parallelism; a server with no cluster attached behaves
// exactly as before this package existed.
package repl

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Mode is the replication commit mode.
type Mode int

// Commit modes.
const (
	// ModeAsync returns from commit after local group commit; standbys
	// apply in the background and lag is unbounded.
	ModeAsync Mode = iota
	// ModeSync holds each commit until every standby has the commit
	// record durable in its own WAL.
	ModeSync
	// ModeQuorum holds each commit until Quorum standbys are durable.
	ModeQuorum
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeQuorum:
		return "quorum"
	default:
		return "async"
	}
}

// ParseMode parses a commit-mode name ("sync", "async", "quorum").
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "sync":
		return ModeSync, true
	case "quorum":
		return ModeQuorum, true
	case "async", "":
		return ModeAsync, true
	}
	return ModeAsync, false
}

// ErrNoAck is returned through txn.Manager.CommitWait when a sync/quorum
// commit cannot collect its replica acknowledgements (link partitioned
// past the ack timeout, or the cluster shut down). The transaction is
// locally durable; the client must treat the outcome as unknown.
var ErrNoAck = errors.New("repl: commit acknowledgement timeout")

// Config sizes a cluster. Zero values take defaults.
type Config struct {
	Mode     Mode
	Quorum   int // acks required in ModeQuorum (clamped to [1, Replicas])
	Replicas int // number of standbys (default 1)

	LinkMBps    float64      // per-link shipping bandwidth (default 1000)
	LinkLatency sim.Duration // one-way link latency (default 200µs)
	AckTimeout  sim.Duration // bound on sync/quorum commit waits (default 10s)

	// StalenessBytes bounds how far (in WAL bytes) a standby may trail the
	// primary and still serve routed reads (default 4 MB).
	StalenessBytes int64

	// LagInterval is the replica-lag sampling period (default 100ms).
	LagInterval sim.Duration

	// FailDetect is the failure-detection delay charged before promotion
	// begins on a primary crash (default 500ms).
	FailDetect sim.Duration

	// TraceCommits records cross-node span trees for the first commits
	// that enter sync/quorum commit-wait (see trace.go / CommitTraces).
	// Off by default: with it off the cluster's behavior is bit-identical
	// to a build without tracing.
	TraceCommits bool

	// ArchiveSegBytes seals archive segments at this size; 0 disables
	// archiving (and PITR). SnapshotEvery takes an incremental snapshot
	// every that many sealed segments (default 4).
	ArchiveSegBytes int64
	SnapshotEvery   int

	// NewImage builds an identical copy of the primary's dataset —
	// the same Build call with the same parameters, which yields the same
	// table/index file IDs (the catalog allocates them deterministically).
	// Called once per standby, once for the archiver's shadow image, and
	// once per PITR restore.
	NewImage func() *engine.Database
}

func (cfg Config) withDefaults() Config {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = 1
	}
	if cfg.Quorum > cfg.Replicas {
		cfg.Quorum = cfg.Replicas
	}
	if cfg.LinkMBps <= 0 {
		cfg.LinkMBps = 1000
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 200 * sim.Microsecond
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 10 * sim.Second
	}
	if cfg.StalenessBytes <= 0 {
		cfg.StalenessBytes = 4 << 20
	}
	if cfg.LagInterval <= 0 {
		cfg.LagInterval = 100 * sim.Millisecond
	}
	if cfg.FailDetect <= 0 {
		cfg.FailDetect = 500 * sim.Millisecond
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 4
	}
	return cfg
}

// LagSample is one replica-lag measurement.
type LagSample struct {
	At    sim.Time
	Bytes int64 // primary flushed LSN - standby applied LSN
}

// Standby is one replica: a full engine.Server (own device, buffer pool,
// WAL) whose log holds an exact byte-for-byte prefix of the primary's
// LSN space — records are re-appended with their original byte sizes, so
// standby LSNs equal primary LSNs and lag is a byte subtraction.
type Standby struct {
	Srv *engine.Server
	DB  *engine.Database

	c    *Cluster
	idx  int
	link *sim.FluidServer

	reader *wal.StreamReader // over the primary's log

	inbox  []shipment // shipped, not yet appended/applied
	inboxQ sim.WaitQueue

	apply      *applyState
	appliedLSN int64 // highest LSN applied to the standby image

	shipperDone bool
	applierDone bool

	LagSamples []LagSample
}

// shipment is one delivered batch tagged with the primary-stream
// position of its first record. The standby log is a strict positional
// prefix of the primary's record stream, so positions — not LSNs, which
// zero-byte records share with their predecessors — are what the
// applier dedupes re-shipped batches by.
type shipment struct {
	pos  int
	recs []*wal.Record
}

// AppliedLSN returns the highest LSN applied to the standby's image.
func (s *Standby) AppliedLSN() int64 { return s.appliedLSN }

// DurableLSN returns the standby's WAL-durable LSN (the ack basis).
func (s *Standby) DurableLSN() int64 { return s.Srv.Log.FlushedLSN() }

// Cluster wires a primary to its standbys. Create with New after the
// primary has ArmRecovery'd (typed records are the replication stream)
// and AttachDB'd; call Start alongside the primary's Start.
type Cluster struct {
	Primary *engine.Server
	Cfg     Config

	Standbys []*Standby
	Arch     *Archiver // nil unless Cfg.ArchiveSegBytes > 0

	sm *sim.Sim

	linkDown bool
	linkQ    sim.WaitQueue // shippers park here while partitioned
	ackQ     sim.WaitQueue // sync/quorum commit waiters

	stopped  bool
	crashAt  sim.Time // primary crash instant (failover)
	promoted int      // standby index after Failover, else -1

	ackedLSNs []int64 // commit LSNs acknowledged to clients (sync/quorum)

	// Commit tracing (Cfg.TraceCommits; trace.go). pendingTraces is empty
	// whenever tracing is off, so the pipeline hooks reduce to one
	// empty-slice check.
	pendingTraces []*commitTrace
	commitTraces  []*commitTrace

	// ackHist, when the primary's telemetry registry is armed, observes
	// each acknowledged sync/quorum commit's end-to-end wait.
	ackHist *telemetry.Hist

	// Read-routing tallies (RouteRead).
	RoutedReplica int64
	RoutedPrimary int64
}

// New builds a cluster around an armed primary. The standbys' dataset
// images come from cfg.NewImage; each standby inherits the primary's
// server config (minus replication fields) on the shared sim clock.
func New(primary *engine.Server, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	if !primary.Log.Recording {
		panic("repl: primary must ArmRecovery before New (typed records are the stream)")
	}
	if cfg.NewImage == nil {
		panic("repl: Config.NewImage is required")
	}
	c := &Cluster{Primary: primary, Cfg: cfg, sm: primary.Sim, promoted: -1}
	scfg := primary.Cfg
	scfg.ReplMode, scfg.ReplQuorum = "", 0
	// Standbys don't run their own registries: replication telemetry
	// (per-standby lag, ack latency, shipped bytes) registers on the
	// primary's registry instead, so one sampler covers the cluster.
	scfg.Telemetry = false
	for i := 0; i < cfg.Replicas; i++ {
		img := cfg.NewImage()
		srv := engine.NewServerOn(primary.Sim, scfg)
		srv.Log.Recording = true
		srv.Log.MaxFlushBytes = primary.Log.MaxFlushBytes
		srv.AttachDB(img)
		srv.WarmBufferPool()
		s := &Standby{
			Srv:    srv,
			DB:     img,
			c:      c,
			idx:    i,
			link:   sim.NewFluidServer(cfg.LinkMBps * 1e6),
			reader: primary.Log.NewStreamReader(),
			apply:  newApplyState(img),
		}
		c.Standbys = append(c.Standbys, s)
	}
	if cfg.ArchiveSegBytes > 0 {
		c.Arch = newArchiver(c)
	}
	return c
}

// Start launches the replication pipeline: each standby's log writer,
// shipper, and applier, the lag sampler, the archiver, and — for sync /
// quorum modes — the primary's commit-wait hook. It also registers a
// stop hook on the primary so shutdown (or crash) propagates.
func (c *Cluster) Start() {
	for _, s := range c.Standbys {
		s.Srv.Log.Start()
		c.runShipper(s)
		c.runApplier(s)
	}
	if c.Arch != nil {
		c.Arch.run()
	}
	c.runLagSampler()
	c.registerTelemetry()
	if c.Cfg.Mode != ModeAsync {
		c.Primary.Txns.CommitWait = c.commitWait
	}
	c.Primary.AddStopHook(func() {
		c.stopped = true
		if c.crashAt == 0 {
			c.crashAt = c.sm.Now()
		}
		c.linkQ.WakeAll(c.sm)
		c.ackQ.WakeAll(c.sm)
	})
}

// Shutdown stops the standby servers. Call after the primary has stopped
// and the pipeline has drained (Quiesced, or the sim drain window).
func (c *Cluster) Shutdown() {
	for _, s := range c.Standbys {
		s.Srv.Stop()
		s.inboxQ.WakeAll(c.sm)
	}
}

// Quiesced reports whether the whole pipeline has caught up: every
// durable primary record shipped, appended durably, and applied on every
// standby, with nothing left in flight.
func (c *Cluster) Quiesced() bool {
	flushed := c.Primary.Log.FlushedLSN()
	if c.Primary.Log.AppendedLSN() != flushed {
		return false
	}
	for _, s := range c.Standbys {
		if len(s.inbox) > 0 || s.appliedLSN < flushed {
			return false
		}
	}
	return true
}

// CheckDigests compares every standby's state digest against the
// primary's. Valid at quiesce after all client transactions have ended
// cleanly (committed durable or aborted and undone); a mismatch means
// the apply path diverged.
func (c *Cluster) CheckDigests() error {
	want := engine.DigestDB(c.Primary.DB)
	for _, s := range c.Standbys {
		if got := engine.DigestDB(s.DB); got != want {
			return fmt.Errorf("repl: standby %d digest %016x != primary %016x (applied %d, primary flushed %d)",
				s.idx, got, want, s.appliedLSN, c.Primary.Log.FlushedLSN())
		}
	}
	return nil
}

// RouteRead picks the node to serve an analytical read within the
// staleness bound (in WAL bytes; <= 0 uses Config.StalenessBytes): the
// most caught-up standby when its lag fits the bound, else the primary.
// Returns -1 for the primary, otherwise a standby index.
func (c *Cluster) RouteRead(bound int64) int {
	if bound <= 0 {
		bound = c.Cfg.StalenessBytes
	}
	best, bestApplied := -1, int64(-1)
	for i, s := range c.Standbys {
		if s.appliedLSN > bestApplied {
			best, bestApplied = i, s.appliedLSN
		}
	}
	if best >= 0 && c.Primary.Log.FlushedLSN()-bestApplied <= bound {
		c.RoutedReplica++
		return best
	}
	c.RoutedPrimary++
	return -1
}

// runShipper spawns the per-standby shipping proc: it cursors the
// primary's durable record stream, charges link bandwidth + latency, and
// delivers batches to the standby inbox. A partitioned link parks the
// shipper; records becoming durable while partitioned are shipped on
// heal. When the primary's log stops (shutdown or crash), the remaining
// durable tail is shipped and the shipper exits.
func (c *Cluster) runShipper(s *Standby) {
	c.sm.Spawn(fmt.Sprintf("repl-ship-%d", s.idx), func(p *sim.Proc) {
		defer func() {
			s.shipperDone = true
			s.inboxQ.WakeAll(c.sm)
		}()
		for {
			batch, pos, ok := s.reader.NextBatch(p)
			if !ok {
				return
			}
			for c.linkDown && !c.stopped {
				c.linkQ.Wait(p)
			}
			if c.linkDown {
				return // primary died while partitioned: the tail never arrives
			}
			var bytes int64
			for _, r := range batch {
				bytes += r.Bytes
			}
			s.link.Serve(p, float64(bytes))
			p.Sleep(c.Cfg.LinkLatency)
			c.Primary.Ctr.ReplShippedBatches++
			c.Primary.Ctr.ReplShippedBytes += bytes
			s.inbox = append(s.inbox, shipment{pos: pos, recs: batch})
			if len(c.pendingTraces) > 0 {
				c.traceShipped(s.idx, batch[len(batch)-1].LSN, p.Now())
			}
			s.inboxQ.WakeAll(c.sm)
		}
	})
}

// runApplier spawns the per-standby apply proc: append shipped records
// to the standby's own WAL (same byte sizes, hence the same LSNs), wait
// for them to be durable on the standby's device, then redo committed
// transactions against the standby image, charging page I/O through the
// standby's buffer pool. Only the durable prefix is ever applied, so
// apply state always matches the standby's crash-surviving log; records
// already present (LSN <= the standby's appended LSN) are dropped, which
// makes a re-shipped batch after reconnect idempotent.
func (c *Cluster) runApplier(s *Standby) {
	c.sm.Spawn(fmt.Sprintf("repl-apply-%d", s.idx), func(p *sim.Proc) {
		defer func() {
			s.applierDone = true
			c.ackQ.WakeAll(c.sm)
		}()
		for {
			for len(s.inbox) == 0 && !s.shipperDone {
				s.inboxQ.Wait(p)
			}
			if len(s.inbox) == 0 {
				return
			}
			batch := s.inbox
			s.inbox = nil
			// The standby log must stay an exact positional prefix of the
			// primary stream: accept exactly the records at the next
			// expected positions. Earlier positions are duplicates
			// (re-shipped after a reconnect raced in-flight deliveries);
			// later ones are a gap — records lost to a standby crash that
			// the reconnecting shipper will re-ship.
			next := len(s.Srv.Log.Records())
			var copies []*wal.Record
			for _, sh := range batch {
				for i, r := range sh.recs {
					q := sh.pos + i
					if q < next {
						continue
					}
					if q > next {
						break
					}
					cp := *r // AppendBatch assigns LSNs in place; never mutate the primary's record
					copies = append(copies, &cp)
					next++
				}
			}
			if len(copies) == 0 {
				continue
			}
			end := s.Srv.Log.AppendBatch(copies)
			// Capture the assigned LSNs now: a standby crash zeroes the
			// LSNs of truncated records in place, and the durability check
			// below must keep seeing the original positions. FlushedLSN is
			// monotone (a crash freezes it, truncation rewinds only the
			// append position), so lsns[i] <= flushed is a stable predicate
			// even if the log crashes while this loop is parked in page I/O.
			lsns := make([]int64, len(copies))
			for i, r := range copies {
				lsns[i] = r.LSN
			}
			_, err := s.Srv.Log.WaitDurable(p, end)
			if len(c.pendingTraces) > 0 {
				c.traceDurable(s.idx, s.Srv.Log.FlushedLSN(), p.Now())
			}
			applyStart := p.Now()
			txns0 := s.apply.appliedTxns
			for i, r := range copies {
				if lsns[i] > s.Srv.Log.FlushedLSN() {
					// Lost to a standby crash before flushing; the
					// reconnecting shipper re-ships from the standby's
					// retained prefix.
					break
				}
				c.chargeApply(p, s, r)
				s.apply.Apply(r)
				s.appliedLSN = lsns[i]
				if len(c.pendingTraces) > 0 {
					c.traceApplied(s.idx, s.appliedLSN, p.Now())
				}
			}
			s.Srv.Ctr.ReplAppliedTxns += s.apply.appliedTxns - txns0
			metrics.ChargeWait(p, s.Srv.Ctr, metrics.WaitReplApply, sim.Duration(p.Now()-applyStart))
			// The apply-end timestamp is taken at the same instant the ack
			// queue is woken, so a commit whose quorum this iteration
			// satisfies observes quorumAt == applyEnd exactly and its span
			// phases sum to the measured commit latency.
			if len(c.pendingTraces) > 0 {
				c.traceApplyEnd(s.idx, s.appliedLSN, p.Now())
			}
			c.ackQ.WakeAll(c.sm)
			_ = err // a stopped/crashed standby log: keep draining; reconnect or shutdown decides
		}
	})
}

// chargeApply charges the standby-side redo cost of one record: the
// covered page goes through the standby's buffer pool (latch, device
// read on miss, dirtying) exactly as primary-side modifications do.
func (c *Cluster) chargeApply(p *sim.Proc, s *Standby, r *wal.Record) {
	if r.Page.Zero() {
		return
	}
	f := s.apply.files[r.Page.File]
	if f == nil {
		return
	}
	s.Srv.BP.Probe(p, f, r.Page.Page, true, s.Srv.Cfg.Cost.RowOverheadNs)
}

// Reconnect re-ships the stream to a standby after its WAL crashed and
// truncated: the shipper's cursor seeks back to the standby's retained
// record count (the standby log is a positional prefix of the primary
// stream), so everything the standby durably holds is skipped and
// everything it lost is re-shipped. The standby's log must have been
// Restarted. Safe against in-flight deliveries: the applier accepts
// records strictly by next expected position.
func (s *Standby) Reconnect() {
	s.reader.SeekPos(len(s.Srv.Log.Records()))
	s.c.linkQ.WakeAll(s.c.sm)
	s.c.Primary.Log.WakeStream()
}

// CrashRestart runs the full standby-crash protocol: crash the standby's
// WAL, truncate it to the durable prefix (losing the partially flushed
// tail), restart the log writer, and reconnect the shipper. It returns
// the number of records lost to the truncation.
//
// The yield between the crash and the restart is load-bearing: Crash
// wakes the applier parked in WaitDurable, but the wake is a scheduled
// event — restarting in the same event slice would clear the stop flag
// before the applier re-checks it, leaving it waiting on a flush target
// the truncation rewound away (and which only the applier's own future
// appends could recreate).
func (s *Standby) CrashRestart(p *sim.Proc) int {
	s.Srv.Log.Crash()
	lost := s.Srv.Log.TruncateAtFlushed()
	p.Yield() // let waiters parked on the standby log observe the crash
	s.Srv.Log.Restart()
	s.Reconnect()
	return lost
}

// commitWait is the txn.Manager hook for sync/quorum modes: it holds the
// committing proc (locks still held) until enough standbys report the
// commit record durable in their own WAL, then charges one link latency
// for the acknowledgement trip. The wait is bounded by AckTimeout so a
// partitioned link degrades to unacknowledged commits instead of
// wedging the workload.
func (c *Cluster) commitWait(p *sim.Proc, lsn int64) error {
	need := len(c.Standbys)
	if c.Cfg.Mode == ModeQuorum {
		need = c.Cfg.Quorum
	}
	start := p.Now()
	ct := c.traceRegister(lsn, start)
	deadline := start + sim.Time(c.Cfg.AckTimeout)
	ok := false
	var quorumAt sim.Time
	for !c.stopped {
		n := 0
		for _, s := range c.Standbys {
			if s.Srv.Log.FlushedLSN() >= lsn {
				n++
			}
		}
		if n >= need && !c.linkDown {
			ok = true
			quorumAt = p.Now()
			break
		}
		rem := sim.Duration(deadline - p.Now())
		if rem <= 0 {
			break
		}
		c.ackQ.WaitTimeout(p, rem)
	}
	if ok {
		p.Sleep(c.Cfg.LinkLatency) // the acknowledgement's trip back
		c.ackedLSNs = append(c.ackedLSNs, lsn)
		c.ackHist.Observe(sim.Duration(p.Now() - start))
	}
	c.traceResolve(ct, quorumAt, p.Now(), ok)
	metrics.ChargeWait(p, c.Primary.Ctr, metrics.WaitReplAck, sim.Duration(p.Now()-start))
	if !ok {
		return ErrNoAck
	}
	return nil
}

// registerTelemetry publishes the cluster's replication series on the
// primary's registry: shipping volume, per-standby apply lag, applied
// transactions, and acknowledged-commit latency. Registration methods
// are no-ops on a nil registry, so an unarmed primary skips all of it.
func (c *Cluster) registerTelemetry() {
	r := c.Primary.Tel
	r.CounterFunc("repl", "shipped_bytes", "B", func() float64 {
		return float64(c.Primary.Ctr.ReplShippedBytes)
	})
	r.CounterFunc("repl", "shipped_batches", "ops", func() float64 {
		return float64(c.Primary.Ctr.ReplShippedBatches)
	})
	c.ackHist = r.Histogram("repl", "ack_latency")
	for i, s := range c.Standbys {
		s := s
		r.Gauge("repl", fmt.Sprintf("standby%d_lag_bytes", i), "B", func() float64 {
			lag := c.Primary.Log.FlushedLSN() - s.appliedLSN
			if lag < 0 {
				lag = 0
			}
			return float64(lag)
		})
		r.CounterFunc("repl", fmt.Sprintf("standby%d_applied_txns", i), "ops", func() float64 {
			return float64(s.Srv.Ctr.ReplAppliedTxns)
		})
	}
}

// runLagSampler spawns the lag-tracking proc: every LagInterval it
// records each standby's apply lag in WAL bytes.
func (c *Cluster) runLagSampler() {
	c.sm.Spawn("repl-lag", func(p *sim.Proc) {
		for !c.stopped {
			p.Sleep(c.Cfg.LagInterval)
			if c.stopped {
				return
			}
			flushed := c.Primary.Log.FlushedLSN()
			for _, s := range c.Standbys {
				lag := flushed - s.appliedLSN
				if lag < 0 {
					lag = 0
				}
				s.LagSamples = append(s.LagSamples, LagSample{At: p.Now(), Bytes: lag})
			}
		}
	})
}

// MaxLagBytes returns the largest lag ever sampled on any standby.
func (c *Cluster) MaxLagBytes() int64 {
	var max int64
	for _, s := range c.Standbys {
		for _, l := range s.LagSamples {
			if l.Bytes > max {
				max = l.Bytes
			}
		}
	}
	return max
}

// AckedLSNs returns the commit LSNs acknowledged to clients under
// sync/quorum mode, in ack order — the cluster-side ground truth the
// chaos harness audits client-observed acks against.
func (c *Cluster) AckedLSNs() []int64 { return c.ackedLSNs }

// LinkDown reports whether the replication links are currently
// partitioned — the serving layer's replication-health posture input.
func (c *Cluster) LinkDown() bool { return c.linkDown }

// BestLagBytes returns the most-caught-up standby's current apply lag
// in WAL bytes (0 with no standbys).
func (c *Cluster) BestLagBytes() int64 {
	var bestApplied int64 = -1
	for _, s := range c.Standbys {
		if s.appliedLSN > bestApplied {
			bestApplied = s.appliedLSN
		}
	}
	if bestApplied < 0 {
		return 0
	}
	lag := c.Primary.Log.FlushedLSN() - bestApplied
	if lag < 0 {
		return 0
	}
	return lag
}

// SetLinkDown implements fault.ReplTarget: partition (true) or heal
// (false) every replication link. While down, shippers park, no batches
// arrive, and sync/quorum acks stop.
func (c *Cluster) SetLinkDown(down bool) {
	c.linkDown = down
	if !down {
		c.linkQ.WakeAll(c.sm)
		c.ackQ.WakeAll(c.sm)
	}
}

// SetReplicaFlushPenalty implements fault.ReplTarget: every standby WAL
// flush pays extra ns (0 clears) — the slow-replica degradation.
func (c *Cluster) SetReplicaFlushPenalty(ns float64) {
	for _, s := range c.Standbys {
		s.Srv.Log.SetFlushPenalty(ns)
	}
}

// DropOldestArchiveSegment implements fault.ReplTarget: destroy the
// oldest surviving archived segment, reporting whether one existed.
func (c *Cluster) DropOldestArchiveSegment() bool {
	if c.Arch == nil {
		return false
	}
	return c.Arch.dropOldest()
}
