package repl_test

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/workload/asdb"
)

type topo struct {
	srv *engine.Server
	cl  *repl.Cluster
	d   *asdb.Dataset
}

// build assembles a small replicated topology: an armed primary on a
// tiny ASDB dataset plus standbys per rcfg, all on one sim clock.
func build(seed int64, rcfg repl.Config, ro engine.RecoveryOptions) *topo {
	acfg := asdb.Config{SF: 1, ActualRowsPerSF: 2, Seed: seed}
	d := asdb.Build(acfg)
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	srv := engine.NewServer(cfg)
	srv.AttachDB(d.DB)
	srv.WarmBufferPool()
	srv.ArmRecovery(ro)
	rcfg.NewImage = func() *engine.Database { return asdb.Build(acfg).DB }
	cl := repl.New(srv, rcfg)
	srv.Start()
	cl.Start()
	return &topo{srv: srv, cl: cl, d: d}
}

// runWorkload drives closed-loop ASDB clients to the given simulated
// time. Clients finish their last transaction cleanly, so at return
// every transaction has ended (committed durable or aborted undone).
func (tp *topo) runWorkload(clients int, until sim.Time) {
	var st asdb.Stats
	asdb.RunClients(tp.srv, tp.d, clients, asdb.DefaultMix(), until, &st)
	tp.srv.Sim.Run(until)
}

// quiesce steps the sim until the replication pipeline has fully caught
// up (bounded), failing the test if it never does.
func (tp *topo) quiesce(t *testing.T) {
	t.Helper()
	deadline := tp.srv.Sim.Now() + sim.Time(600*sim.Second)
	for tp.srv.Sim.Now() < deadline && !tp.cl.Quiesced() {
		tp.srv.Sim.Run(tp.srv.Sim.Now() + sim.Time(sim.Second))
	}
	if !tp.cl.Quiesced() {
		t.Fatal("replication pipeline never quiesced")
	}
}

func (tp *topo) shutdown() {
	tp.srv.Stop()
	tp.srv.Sim.Run(tp.srv.Sim.Now() + sim.Time(2*sim.Second))
	tp.cl.Shutdown()
	tp.srv.Sim.Run(tp.srv.Sim.Now() + sim.Time(2*sim.Second))
}

// TestDigestEqualityAllModes checks the core replication invariant: at
// quiesce, every standby's in-memory dataset image is FNV-identical to
// the primary's, under every commit mode.
func TestDigestEqualityAllModes(t *testing.T) {
	for _, mode := range []repl.Mode{repl.ModeAsync, repl.ModeQuorum, repl.ModeSync} {
		t.Run(mode.String(), func(t *testing.T) {
			tp := build(1,
				repl.Config{Mode: mode, Quorum: 1, Replicas: 2},
				engine.RecoveryOptions{MaxFlushBytes: 4 << 10})
			tp.runWorkload(16, sim.Time(2*sim.Second))
			tp.quiesce(t)
			if err := tp.cl.CheckDigests(); err != nil {
				t.Fatal(err)
			}
			if tp.srv.Ctr.ReplShippedBatches == 0 {
				t.Fatal("nothing shipped")
			}
			var applied int64
			for _, s := range tp.cl.Standbys {
				applied += s.Srv.Ctr.ReplAppliedTxns
			}
			if applied == 0 {
				t.Fatal("no transactions applied on standbys")
			}
			if mode != repl.ModeAsync && tp.srv.Ctr.WaitNs[metrics.WaitReplAck] == 0 {
				t.Fatalf("%v commits recorded no replication-ack wait", mode)
			}
			if tp.srv.Ctr.ReplUnackedCommits != 0 {
				t.Fatalf("%d commits unacked on a healthy cluster", tp.srv.Ctr.ReplUnackedCommits)
			}
			tp.shutdown()
		})
	}
}

// TestReplicationDeterminism runs the identical replicated workload
// twice and requires bit-identical outcomes.
func TestReplicationDeterminism(t *testing.T) {
	run := func() (digest uint64, commits, shipped int64, at sim.Time) {
		tp := build(7,
			repl.Config{Mode: repl.ModeSync, Replicas: 1},
			engine.RecoveryOptions{MaxFlushBytes: 4 << 10})
		tp.runWorkload(8, sim.Time(sim.Second))
		tp.quiesce(t)
		if err := tp.cl.CheckDigests(); err != nil {
			t.Fatal(err)
		}
		digest = engine.DigestDB(tp.d.DB)
		commits = tp.srv.Ctr.TxnCommits
		shipped = tp.srv.Ctr.ReplShippedBytes
		at = tp.srv.Sim.Now()
		tp.shutdown()
		return
	}
	d1, c1, s1, t1 := run()
	d2, c2, s2, t2 := run()
	if d1 != d2 || c1 != c2 || s1 != s2 || t1 != t2 {
		t.Fatalf("replicated runs diverged: (%016x, %d commits, %d shipped, %v) vs (%016x, %d, %d, %v)",
			d1, c1, s1, t1, d2, c2, s2, t2)
	}
}

// TestPartitionUnackedCommits partitions the link under sync commit:
// commits during the partition time out as durable-but-unacked, and
// after healing the standby converges to the primary image anyway.
func TestPartitionUnackedCommits(t *testing.T) {
	tp := build(3,
		repl.Config{Mode: repl.ModeSync, Replicas: 1, AckTimeout: 20 * sim.Millisecond},
		engine.RecoveryOptions{MaxFlushBytes: 4 << 10})
	tp.srv.Sim.Spawn("partition", func(p *sim.Proc) {
		p.Sleep(500 * sim.Millisecond)
		tp.cl.SetLinkDown(true)
		p.Sleep(300 * sim.Millisecond)
		tp.cl.SetLinkDown(false)
	})
	tp.runWorkload(8, sim.Time(1500*sim.Millisecond))
	tp.quiesce(t)
	if tp.srv.Ctr.ReplUnackedCommits == 0 {
		t.Fatal("partition produced no unacked commits")
	}
	if err := tp.cl.CheckDigests(); err != nil {
		t.Fatalf("standby diverged after heal: %v", err)
	}
	tp.shutdown()
}

// TestFailoverAndPITR crashes the primary mid-workload, promotes the
// most caught-up standby, and checks the failover invariants plus an
// exact-LSN point-in-time restore from the archive — including that a
// destroyed segment inside the replay range surfaces ErrArchiveGap.
func TestFailoverAndPITR(t *testing.T) {
	tp := build(5,
		repl.Config{
			Mode: repl.ModeQuorum, Quorum: 1, Replicas: 2,
			ArchiveSegBytes: 32 << 10, SnapshotEvery: 2,
		},
		engine.RecoveryOptions{
			MaxFlushBytes: 4 << 10,
			Crash:         fault.CrashPlan{Point: fault.CrashAtTime, At: 1500 * sim.Millisecond},
		})
	var frep *repl.FailoverReport
	var prep *repl.PITRReport
	var target int64
	var pitrErr error
	tp.srv.Sim.Spawn("failover-driver", func(p *sim.Proc) {
		for !tp.srv.Crashed() {
			p.Sleep(10 * sim.Millisecond)
		}
		frep = tp.cl.Failover(p)
		target = tp.cl.CommitLSNNear(0.5)
		if target == 0 {
			pitrErr = errors.New("no durable commit to target")
			return
		}
		_, prep, pitrErr = tp.cl.Arch.RecoverTo(p, tp.cl.PromotedStandby().Srv.Dev, target)
	})
	tp.runWorkload(16, sim.Time(3*sim.Second))
	tp.srv.Sim.Run(tp.srv.Sim.Now() + sim.Time(600*sim.Second))

	if frep == nil {
		t.Fatal("primary never crashed / failover never ran")
	}
	if err := tp.cl.VerifyFailover(frep); err != nil {
		t.Fatal(err)
	}
	if frep.RTO < sim.Duration(tp.cl.Cfg.FailDetect) {
		t.Fatalf("RTO %v below the failure-detection delay %v", frep.RTO, tp.cl.Cfg.FailDetect)
	}
	if frep.AckedCommits == 0 {
		t.Fatal("no commits were acknowledged before the crash")
	}
	if pitrErr != nil {
		t.Fatalf("PITR failed: %v", pitrErr)
	}
	if err := tp.cl.Arch.VerifyPITR(prep); err != nil {
		t.Fatal(err)
	}

	// Restores are deterministic: an uncharged re-run lands identically.
	_, prep2, err := tp.cl.Arch.RecoverTo(nil, nil, target)
	if err != nil {
		t.Fatalf("repeat PITR failed: %v", err)
	}
	if prep2.Digest != prep.Digest || prep2.LandedLSN != prep.LandedLSN {
		t.Fatalf("repeat PITR diverged: %016x@%d vs %016x@%d",
			prep.Digest, prep.LandedLSN, prep2.Digest, prep2.LandedLSN)
	}

	// Destroy the archived history under the target: the restore must
	// refuse with ErrArchiveGap rather than silently skip the hole.
	if prep.Segments == 0 {
		t.Fatalf("restore to LSN %d read no segments; gap check needs a replay range", target)
	}
	dropped := 0
	for tp.cl.DropOldestArchiveSegment() {
		dropped++
	}
	if dropped == 0 {
		t.Fatal("no sealed segments to drop")
	}
	if _, _, err := tp.cl.Arch.RecoverTo(nil, nil, target); !errors.Is(err, repl.ErrArchiveGap) {
		t.Fatalf("restore over destroyed segments returned %v, expected ErrArchiveGap", err)
	}
	tp.cl.Shutdown()
	tp.srv.Sim.Run(tp.srv.Sim.Now() + sim.Time(2*sim.Second))
}

// TestStandbyCrashReship crashes a standby's log at a flush boundary
// that straddles a commit lump (a guaranteed partially durable batch),
// truncates it, restarts, and reconnects. The re-shipped stream must be
// applied idempotently: the standby log stays a strict positional
// prefix of the primary's and the images converge. This is the
// crash-at-flush-boundary redo-idempotency case on a replica.
func TestStandbyCrashReship(t *testing.T) {
	tp := build(11,
		repl.Config{Mode: repl.ModeAsync, Replicas: 1},
		engine.RecoveryOptions{MaxFlushBytes: 4 << 10})
	sb := tp.cl.Standbys[0]
	crashed := false
	lost := 0
	tp.srv.Sim.Spawn("standby-crasher", func(p *sim.Proc) {
		p.Sleep(500 * sim.Millisecond)
		for p.Now() < sim.Time(1800*sim.Millisecond) {
			if sb.Srv.Log.BoundaryStraddlesCommit() {
				lost = sb.CrashRestart(p)
				crashed = true
				return
			}
			p.Sleep(sim.Millisecond)
		}
	})
	tp.runWorkload(16, sim.Time(2*sim.Second))
	if !crashed {
		t.Fatal("no flush boundary ever straddled a commit on the standby")
	}
	if lost == 0 {
		t.Fatal("standby crash lost no records — not a partial batch")
	}
	tp.quiesce(t)
	if err := tp.cl.CheckDigests(); err != nil {
		t.Fatalf("standby diverged after crash + re-ship: %v", err)
	}
	prim := tp.srv.Log.Records()
	recs := sb.Srv.Log.Records()
	if len(recs) == 0 || len(recs) > len(prim) {
		t.Fatalf("standby log has %d records, primary %d", len(recs), len(prim))
	}
	for i, r := range recs {
		if r.Type != prim[i].Type || r.LSN != prim[i].LSN || r.Txn != prim[i].Txn {
			t.Fatalf("standby log diverges from primary stream at position %d: %v@%d txn %d vs %v@%d txn %d",
				i, r.Type, r.LSN, r.Txn, prim[i].Type, prim[i].LSN, prim[i].Txn)
		}
	}
	tp.shutdown()
}

// TestRouteRead checks staleness-bounded read routing: a caught-up
// standby serves bounded reads, a lagging one does not.
func TestRouteRead(t *testing.T) {
	tp := build(13,
		repl.Config{Mode: repl.ModeAsync, Replicas: 2},
		engine.RecoveryOptions{MaxFlushBytes: 4 << 10})
	tp.runWorkload(8, sim.Time(sim.Second))
	tp.quiesce(t)
	if node := tp.cl.RouteRead(0); node < 0 {
		t.Fatal("quiesced standby rejected a zero-staleness read")
	}
	// Partition the link and write more: standbys now lag.
	tp.cl.SetLinkDown(true)
	tp.runWorkload(8, tp.srv.Sim.Now()+sim.Time(300*sim.Millisecond))
	if node := tp.cl.RouteRead(0); node >= 0 {
		t.Fatal("lagging standby accepted a zero-staleness read")
	}
	if tp.cl.RoutedReplica == 0 || tp.cl.RoutedPrimary == 0 {
		t.Fatalf("routing tallies not maintained: replica %d primary %d",
			tp.cl.RoutedReplica, tp.cl.RoutedPrimary)
	}
	tp.cl.SetLinkDown(false)
	tp.quiesce(t)
	tp.shutdown()
}
