package repl

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/iodev"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrArchiveGap is returned by RecoverTo when a segment needed for the
// requested target was destroyed (the archive-loss fault axis) and no
// later snapshot covers the hole.
var ErrArchiveGap = errors.New("repl: archived WAL segment missing for requested recovery target")

// Segment is one archived run of the primary's durable record stream,
// covering LSNs in (From, To].
type Segment struct {
	From, To int64
	Bytes    int64
	Records  []*wal.Record
	Sealed   bool
	Dropped  bool // destroyed by the archive-loss fault axis
}

// Snapshot is an incremental backup: a deep image of every table plus
// the in-flight (update-logged but uncommitted) transaction state at a
// record boundary, so PITR replays only the archive tail past it.
type Snapshot struct {
	LSN     int64
	Bytes   int64
	images  map[int]*storage.TableImage
	pending map[int64][]wal.Op
	cellSeq map[cellKey]int64 // per-cell write watermark at the snapshot
}

// Archiver continuously archives the primary's durable WAL into sealed
// segments and takes a snapshot every Config.SnapshotEvery seals. It
// maintains its own shadow dataset image (a pure applyState) purely so
// snapshots can be captured at any boundary without touching the
// primary's or any standby's image.
type Archiver struct {
	c      *Cluster
	reader *wal.StreamReader
	shadow *applyState

	segs    []*Segment
	snaps   []*Snapshot
	cur     *Segment
	lastLSN int64 // archive horizon: highest archived record LSN
	seals   int
}

func newArchiver(c *Cluster) *Archiver {
	return &Archiver{
		c:      c,
		reader: c.Primary.Log.NewStreamReader(),
		shadow: newApplyState(c.Cfg.NewImage()),
	}
}

// run spawns the archiving proc. It consumes no simulated resources —
// the model is an archiver streaming the WAL to external storage off
// the database's critical path — so enabling it never perturbs the
// workload timeline.
func (a *Archiver) run() {
	a.c.sm.Spawn("repl-archive", func(p *sim.Proc) {
		for {
			batch, _, ok := a.reader.NextBatch(p)
			for _, r := range batch {
				a.archive(r)
			}
			if !ok {
				return
			}
		}
	})
}

func (a *Archiver) archive(r *wal.Record) {
	// Seal only when the incoming record's LSN strictly advances past the
	// segment: zero-byte records (begin, abort end records) share their
	// predecessor's end LSN, and splitting such a run across a segment —
	// or snapshotting inside it — would strand the trailing records on
	// the wrong side of the boundary during replay.
	if a.cur != nil && a.cur.Bytes >= a.c.Cfg.ArchiveSegBytes && r.LSN > a.cur.To {
		a.seal()
	}
	if a.cur == nil {
		a.cur = &Segment{From: a.lastLSN, To: a.lastLSN}
	}
	a.cur.Records = append(a.cur.Records, r)
	a.cur.Bytes += r.Bytes
	a.cur.To = r.LSN
	a.lastLSN = r.LSN
	a.shadow.Apply(r)
}

func (a *Archiver) seal() {
	a.cur.Sealed = true
	a.segs = append(a.segs, a.cur)
	a.c.Primary.Ctr.ArchivedSegments++
	a.c.Primary.Ctr.ArchivedBytes += a.cur.Bytes
	a.cur = nil
	a.seals++
	if a.seals%a.c.Cfg.SnapshotEvery == 0 {
		a.snapshot()
	}
}

// snapshot captures the shadow image and in-flight transaction state at
// the current archive horizon.
func (a *Archiver) snapshot() {
	s := &Snapshot{
		LSN:     a.lastLSN,
		images:  make(map[int]*storage.TableImage),
		pending: make(map[int64][]wal.Op),
		cellSeq: make(map[cellKey]int64, len(a.shadow.cellSeq)),
	}
	for k, v := range a.shadow.cellSeq {
		s.cellSeq[k] = v
	}
	for _, t := range a.shadow.db.Tables {
		img := t.CaptureImage()
		s.images[t.ID] = img
		for _, c := range img.Cols {
			s.Bytes += int64(len(c)) * 8
		}
	}
	for id, ops := range a.shadow.pending {
		s.pending[id] = append([]wal.Op(nil), ops...)
	}
	a.snaps = append(a.snaps, s)
}

// Horizon returns the highest archived LSN (the latest valid PITR target).
func (a *Archiver) Horizon() int64 { return a.lastLSN }

// Segments returns how many segments have been sealed.
func (a *Archiver) Segments() int { return len(a.segs) }

// Snapshots returns how many snapshots have been taken.
func (a *Archiver) Snapshots() int { return len(a.snaps) }

// dropOldest destroys the oldest surviving sealed segment (the
// archive-loss fault axis), reporting whether one existed.
func (a *Archiver) dropOldest() bool {
	for _, s := range a.segs {
		if s.Sealed && !s.Dropped {
			s.Dropped = true
			s.Records = nil
			return true
		}
	}
	return false
}

// PITRReport describes one point-in-time restore.
type PITRReport struct {
	TargetLSN int64
	LandedLSN int64 // last record applied — equals TargetLSN when the target is a record boundary
	SnapLSN   int64 // snapshot the restore started from (0 = empty base)
	Segments  int   // archived segments read
	Records   int   // records replayed
	Txns      int64 // committed transactions replayed
	Digest    uint64
	Elapsed   sim.Duration
}

func (r *PITRReport) String() string {
	return fmt.Sprintf("pitr: landed at LSN %d (target %d) from snapshot LSN %d, %d segments, %d records, %d txns, %.1fms, digest %016x",
		r.LandedLSN, r.TargetLSN, r.SnapLSN, r.Segments, r.Records, r.Txns, float64(r.Elapsed)/1e6, r.Digest)
}

// CommitLSNNear returns the durable commit-record LSN nearest frac
// (0..1) of the primary's durable LSN — a well-defined point-in-time
// recovery target. Returns 0 when no commit is durable.
func (c *Cluster) CommitLSNNear(frac float64) int64 {
	flushed := c.Primary.Log.FlushedLSN()
	target := int64(float64(flushed) * frac)
	var best, bestDist int64 = 0, -1
	for _, r := range c.Primary.Log.Records() {
		if r.Type != wal.RecCommit || r.LSN <= 0 || r.LSN > flushed {
			continue
		}
		dist := r.LSN - target
		if dist < 0 {
			dist = -dist
		}
		if bestDist < 0 || dist < bestDist {
			best, bestDist = r.LSN, dist
		}
	}
	return best
}

// VerifyPITR checks a completed restore against ground truth: the
// restore landed exactly at the requested LSN, and its digest equals an
// independent pure replay of the primary's durable log prefix through
// that LSN onto a fresh dataset image.
func (a *Archiver) VerifyPITR(rep *PITRReport) error {
	if rep.LandedLSN != rep.TargetLSN {
		return fmt.Errorf("repl: pitr landed at LSN %d, requested %d", rep.LandedLSN, rep.TargetLSN)
	}
	shadow := newApplyState(a.c.Cfg.NewImage())
	for _, r := range a.c.Primary.Log.Records() {
		if r.LSN > 0 && r.LSN <= rep.TargetLSN {
			shadow.Apply(r)
		}
	}
	if want := engine.DigestDB(shadow.db); rep.Digest != want {
		return fmt.Errorf("repl: pitr digest %016x != replay of primary log through LSN %d (%016x)",
			rep.Digest, rep.TargetLSN, want)
	}
	return nil
}

// RecoverTo restores a fresh dataset image to the requested LSN: load
// the latest snapshot at or before it, then replay archived records
// through the target. Restore I/O (snapshot pages plus segment bytes)
// is charged to dev when p and dev are non-nil — the restore target
// machine's device. Returns the restored database for inspection.
//
// The target must lie within the archive horizon; a destroyed segment
// inside the replay range fails with ErrArchiveGap (a snapshot past the
// hole narrows the replay range and can mask it, which is exactly the
// retention interplay the archive-loss axis probes).
func (a *Archiver) RecoverTo(p *sim.Proc, dev *iodev.Device, lsn int64) (*engine.Database, *PITRReport, error) {
	if lsn > a.lastLSN {
		return nil, nil, fmt.Errorf("repl: recovery target LSN %d beyond archive horizon %d", lsn, a.lastLSN)
	}
	var start sim.Time
	if p != nil {
		start = p.Now()
	}
	db := a.c.Cfg.NewImage()
	state := newApplyState(db)
	rep := &PITRReport{TargetLSN: lsn}
	for _, s := range a.snaps {
		if s.LSN <= lsn && s.LSN > rep.SnapLSN {
			rep.SnapLSN = s.LSN
			rep.LandedLSN = s.LSN
		}
	}
	if rep.SnapLSN > 0 {
		var snap *Snapshot
		for _, s := range a.snaps {
			if s.LSN == rep.SnapLSN {
				snap = s
			}
		}
		for _, t := range db.Tables {
			if img := snap.images[t.ID]; img != nil {
				t.RestoreImage(img)
			}
		}
		for id, ops := range snap.pending {
			state.pending[id] = append([]wal.Op(nil), ops...)
		}
		for k, v := range snap.cellSeq {
			state.cellSeq[k] = v
		}
		if p != nil && dev != nil {
			dev.Read(p, snap.Bytes)
		}
	}
	segs := append(append([]*Segment(nil), a.segs...), nil)
	segs[len(segs)-1] = a.cur
	for _, seg := range segs {
		if seg == nil || seg.To <= rep.SnapLSN || seg.From >= lsn {
			continue
		}
		if seg.Dropped {
			return nil, nil, fmt.Errorf("%w: segment (%d, %d]", ErrArchiveGap, seg.From, seg.To)
		}
		rep.Segments++
		if p != nil && dev != nil {
			dev.Read(p, seg.Bytes)
		}
		for _, r := range seg.Records {
			if r.LSN <= rep.SnapLSN || r.LSN > lsn {
				continue
			}
			state.Apply(r)
			rep.Records++
			rep.LandedLSN = r.LSN
		}
	}
	rep.Txns = state.appliedTxns
	rep.Digest = engine.DigestDB(db)
	if p != nil {
		rep.Elapsed = sim.Duration(p.Now() - start)
	}
	a.c.Primary.Ctr.PITRRestores++
	return db, rep, nil
}
