package repl

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
)

// FailoverReport measures one primary crash → standby promotion.
type FailoverReport struct {
	CrashAt    sim.Time
	PromotedAt sim.Time
	RTO        sim.Duration // detection + tail drain + promotion

	// RTO decomposition: RTO == Detect + Replay + Promote.
	Detect  sim.Duration // failure-detection delay
	Replay  sim.Duration // draining/applying the shipped durable tail
	Promote sim.Duration // promotion bookkeeping (picking + clearing state)

	Promoted    int   // promoted standby index
	PrimaryLSN  int64 // primary's durable LSN at the crash
	PromotedLSN int64 // promoted standby's applied (== durable) LSN

	// Commit outcomes across the failover boundary.
	AckedCommits     int64 // commits acknowledged under sync/quorum
	LostAckedCommits int64 // acked commits past the promoted LSN — must be 0
	LostCommits      int64 // primary-durable commits the standby never received
}

func (r *FailoverReport) String() string {
	return fmt.Sprintf("failover: standby %d promoted at LSN %d/%d, RTO %.1fms (detect %.1f + replay %.1f + promote %.1f), acked %d (lost %d), unreplicated commits %d",
		r.Promoted, r.PromotedLSN, r.PrimaryLSN, float64(r.RTO)/1e6,
		float64(r.Detect)/1e6, float64(r.Replay)/1e6, float64(r.Promote)/1e6,
		r.AckedCommits, r.LostAckedCommits, r.LostCommits)
}

// TraceTree renders the failover as a span tree — the RTO decomposed
// into contiguous detect → replay → promote phases — in the same shape
// commit traces and per-operator traces use, so one exporter handles all
// three.
func (r *FailoverReport) TraceTree() *trace.Trace {
	root := &trace.Span{
		Op: "Failover", Name: fmt.Sprintf("standby-%d", r.Promoted),
		Start: r.CrashAt, End: r.PromotedAt,
	}
	t := r.CrashAt
	for _, ph := range []struct {
		name string
		d    sim.Duration
	}{{"Detect", r.Detect}, {"Replay", r.Replay}, {"Promote", r.Promote}} {
		root.Children = append(root.Children, &trace.Span{Op: ph.name, Start: t, End: t + sim.Time(ph.d)})
		t += sim.Time(ph.d)
	}
	return &trace.Trace{Query: "failover", Root: root}
}

// Failover runs promotion after the primary has crashed (Server.Crash,
// typically via a seeded fault.Crasher): charge the failure-detection
// delay, wait for the shippers to drain whatever durable tail the link
// still delivered and for every applier to finish, promote the most
// caught-up standby, and discard its in-flight (uncommitted) pending
// state. RTO is measured from the crash instant to promotion.
func (c *Cluster) Failover(p *sim.Proc) *FailoverReport {
	crashAt := c.crashAt
	if crashAt == 0 {
		crashAt = p.Now()
	}
	p.Sleep(c.Cfg.FailDetect)
	detectEnd := p.Now()
	for !c.drained() {
		p.Sleep(sim.Millisecond)
	}
	replayEnd := p.Now()
	best := 0
	for i, s := range c.Standbys {
		if s.appliedLSN > c.Standbys[best].appliedLSN {
			best = i
		}
	}
	s := c.Standbys[best]
	// In-flight transactions die with the primary: their updates were
	// pending (never applied), so dropping them is the undo.
	s.apply.pending = make(map[int64][]wal.Op)
	c.promoted = best

	rep := &FailoverReport{
		CrashAt:      crashAt,
		PromotedAt:   p.Now(),
		RTO:          sim.Duration(p.Now() - crashAt),
		Detect:       sim.Duration(detectEnd - crashAt),
		Replay:       sim.Duration(replayEnd - detectEnd),
		Promote:      sim.Duration(p.Now() - replayEnd),
		Promoted:     best,
		PrimaryLSN:   c.Primary.Log.FlushedLSN(),
		PromotedLSN:  s.appliedLSN,
		AckedCommits: int64(len(c.ackedLSNs)),
	}
	for _, lsn := range c.ackedLSNs {
		if lsn > s.appliedLSN {
			rep.LostAckedCommits++
		}
	}
	for _, r := range c.Primary.Log.Records() {
		if r.Type == wal.RecCommit && r.LSN > 0 && r.LSN <= rep.PrimaryLSN && r.LSN > s.appliedLSN {
			rep.LostCommits++
		}
	}
	return rep
}

// PromotedStandby returns the promoted standby after Failover (nil before).
func (c *Cluster) PromotedStandby() *Standby {
	if c.promoted < 0 {
		return nil
	}
	return c.Standbys[c.promoted]
}

// drained reports whether the replication pipeline has fully shut down:
// every shipper and applier proc exited with empty inboxes.
func (c *Cluster) drained() bool {
	for _, s := range c.Standbys {
		if !s.shipperDone || !s.applierDone || len(s.inbox) > 0 {
			return false
		}
	}
	return true
}

// VerifyFailover checks the promotion invariants:
//
//   - durability: the promoted image equals an independent pure replay of
//     the standby's own durable log onto a fresh dataset image — every
//     committed-durable transaction the standby received survived, every
//     uncommitted transaction left nothing (its updates never applied);
//   - no acked commit lost: every commit acknowledged to a client under
//     sync/quorum lies within the promoted LSN (the promoted standby is
//     the most caught-up, and acks required durability on at least the
//     quorum).
func (c *Cluster) VerifyFailover(rep *FailoverReport) error {
	if rep.LostAckedCommits != 0 {
		return fmt.Errorf("repl: %d acknowledged commits lost in failover", rep.LostAckedCommits)
	}
	s := c.PromotedStandby()
	if s == nil {
		return fmt.Errorf("repl: no standby promoted")
	}
	if flushed := s.Srv.Log.FlushedLSN(); s.appliedLSN != flushed {
		return fmt.Errorf("repl: promoted standby applied LSN %d != its durable LSN %d", s.appliedLSN, flushed)
	}
	shadow := newApplyState(c.Cfg.NewImage())
	for _, r := range s.Srv.Log.Records() {
		if r.LSN > 0 && r.LSN <= s.Srv.Log.FlushedLSN() {
			shadow.Apply(r)
		}
	}
	want := engine.DigestDB(shadow.db)
	if got := engine.DigestDB(s.DB); got != want {
		return fmt.Errorf("repl: promoted image digest %016x != pure replay of its durable log %016x", got, want)
	}
	return nil
}
