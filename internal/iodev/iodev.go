// Package iodev models the paper's NVMe SSD (Intel 750 series, 1.2 TB):
// up to 2500 MB/s sequential read and 1200 MB/s sequential write. Reads
// and writes are served by independent fluid FIFO channels (NVMe has
// enough internal parallelism that reads and writes rarely serialize
// against each other), plus a fixed per-request device latency.
//
// A cgroup-style throttle (package cgroup) can be layered in front of the
// device to reproduce the paper's BlockIOReadBandwidth /
// BlockIOWriteBandwidth experiments.
package iodev

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// ErrTransient is the transient device failure surfaced by a fault. It
// models media retries, link resets, and the other recoverable errors a
// real NVMe driver reports; callers are expected to retry.
var ErrTransient = errors.New("iodev: transient device error")

// Fault is fault-injection state installed on a device by a fault
// injector (package fault). Fields are toggled by the injector while a
// fault event is active and zeroed between events; a nil *Fault on the
// device is the (default) fast path with no per-request overhead.
type Fault struct {
	ReadStallNs  float64 // extra latency added to every read while active
	WriteStallNs float64 // extra latency added to every write while active
	ReadErrProb  float64 // per-read transient failure probability
	WriteErrProb float64 // per-write transient failure probability
	RetryNs      float64 // device/driver retry penalty per failed attempt

	rng *sim.RNG
}

// maxErrProb caps failure probabilities so retry loops terminate quickly;
// a fault injector asking for certainty still leaves retries a way out.
const maxErrProb = 0.9

// NewFault creates fault state drawing from the given deterministic RNG.
func NewFault(rng *sim.RNG) *Fault {
	return &Fault{rng: rng}
}

// apply charges the fault's stall to p and reports whether this request
// fails transiently. It is called once per device request attempt.
func (f *Fault) apply(p *sim.Proc, stallNs, errProb float64, ctr *metrics.Counters) bool {
	if stallNs > 0 {
		p.Sleep(sim.Duration(stallNs))
	}
	if errProb > maxErrProb {
		errProb = maxErrProb
	}
	if errProb > 0 && f.rng.Bool(errProb) {
		ctr.FaultIOErrors++
		if f.RetryNs > 0 {
			p.Sleep(sim.Duration(f.RetryNs))
		}
		return true
	}
	return false
}

// Spec describes a device.
type Spec struct {
	Name        string
	ReadMBps    float64
	WriteMBps   float64
	ReadLatNs   float64 // fixed per-request latency, excluded from channel occupancy
	WriteLatNs  float64
	MaxRequestB int64 // requests larger than this are split (device MDTS)
}

// PaperSSD returns the paper's Intel 750 NVMe drive.
func PaperSSD() Spec {
	return Spec{
		Name:        "intel750-nvme",
		ReadMBps:    2500,
		WriteMBps:   1200,
		ReadLatNs:   80_000, // ~80us typical NVMe read latency
		WriteLatNs:  25_000, // writes land in the device buffer
		MaxRequestB: 1 << 20,
	}
}

// Throttle is a bandwidth limiter placed in front of a device direction.
// A nil *Throttle or a zero limit means unlimited.
type Throttle struct {
	server *sim.FluidServer
}

// NewThrottle creates a throttle with the given limit (0 = unlimited).
func NewThrottle(limitMBps float64) *Throttle {
	return &Throttle{server: sim.NewFluidServer(limitMBps * 1e6)}
}

// SetLimit changes the limit in MB/s (0 = unlimited).
func (t *Throttle) SetLimit(limitMBps float64) {
	t.server.SetRate(limitMBps * 1e6)
}

// Limit returns the current limit in MB/s (0 = unlimited).
func (t *Throttle) Limit() float64 { return t.server.Rate() / 1e6 }

// reserve commits throttle capacity without blocking; the caller overlaps
// the returned delay with the device's own service delay (a request flows
// through the throttle and the device as a pipeline, so sustained
// throughput is the minimum of the two rates, not their harmonic sum).
func (t *Throttle) reserve(now sim.Time, bytes int64) sim.Duration {
	if t == nil {
		return 0
	}
	return t.server.Reserve(now, float64(bytes))
}

// Device is a simulated NVMe drive bound to one simulation.
type Device struct {
	Spec Spec
	Ctr  *metrics.Counters

	readCh  *sim.FluidServer
	writeCh *sim.FluidServer

	readThrottle  *Throttle
	writeThrottle *Throttle

	// Cumulative ns by which a request's throttle reservation exceeded
	// the device's own service delay — the stall attributable purely to
	// the cgroup-style limit rather than device saturation.
	readThrottleWaitNs  int64
	writeThrottleWaitNs int64

	fault *Fault
}

// ThrottleWaitNs returns the cumulative read/write throttle-induced wait.
func (d *Device) ThrottleWaitNs() (read, write int64) {
	return d.readThrottleWaitNs, d.writeThrottleWaitNs
}

// Backlog returns how far into the future each channel is committed at
// now — the fluid model's instantaneous queue depth, in pending time.
func (d *Device) Backlog(now sim.Time) (read, write sim.Duration) {
	return d.readCh.Backlog(now), d.writeCh.Backlog(now)
}

// New creates a device.
func New(spec Spec, ctr *metrics.Counters) *Device {
	return &Device{
		Spec:    spec,
		Ctr:     ctr,
		readCh:  sim.NewFluidServer(spec.ReadMBps * 1e6),
		writeCh: sim.NewFluidServer(spec.WriteMBps * 1e6),
	}
}

// SetThrottles installs cgroup-style read/write limits (nil = none).
func (d *Device) SetThrottles(read, write *Throttle) {
	d.readThrottle = read
	d.writeThrottle = write
}

// SetFault installs fault-injection state (nil = no faults).
func (d *Device) SetFault(f *Fault) { d.fault = f }

// FaultState returns the installed fault state, if any.
func (d *Device) FaultState() *Fault { return d.fault }

// Read blocks p for the duration of a read of the given size and returns
// the total time spent (throttle + queue + transfer + latency). Transient
// fault-injected failures are absorbed here: the device retries until the
// request succeeds, charging the fault's retry penalty each attempt — the
// model for driver-level recovery invisible to the caller.
func (d *Device) Read(p *sim.Proc, bytes int64) sim.Duration {
	start := p.Now()
	for {
		if _, err := d.ReadErr(p, bytes); err == nil {
			return sim.Duration(p.Now() - start)
		}
	}
}

// ReadErr performs one read attempt: it charges the full transfer and any
// fault-injected stall, and returns ErrTransient when the installed fault
// fails the request. Callers that can propagate errors (the buffer pool)
// use this and own the retry policy; fire-and-forget callers use Read.
func (d *Device) ReadErr(p *sim.Proc, bytes int64) (sim.Duration, error) {
	if bytes <= 0 {
		return 0, nil
	}
	start := p.Now()
	tDelay := d.readThrottle.reserve(p.Now(), bytes)
	var devDone sim.Duration
	for remaining := bytes; remaining > 0; {
		chunk := remaining
		if d.Spec.MaxRequestB > 0 && chunk > d.Spec.MaxRequestB {
			chunk = d.Spec.MaxRequestB
		}
		devDone = d.readCh.Reserve(p.Now(), float64(chunk))
		remaining -= chunk
	}
	delay := devDone
	if tDelay > delay {
		delay = tDelay
		d.readThrottleWaitNs += int64(tDelay - devDone)
	}
	p.Sleep(delay + sim.Duration(d.Spec.ReadLatNs))
	d.Ctr.SSDReadBytes += bytes
	d.Ctr.SSDReadOps++
	if s := metrics.StmtOf(p); s != nil {
		s.SSDReadBytes += bytes
		s.SSDReadOps++
	}
	if f := d.fault; f != nil && f.apply(p, f.ReadStallNs, f.ReadErrProb, d.Ctr) {
		return sim.Duration(p.Now() - start), ErrTransient
	}
	return sim.Duration(p.Now() - start), nil
}

// WriteAsync charges a write to the device (and its throttle reservation)
// without blocking the caller — the model for background page cleaning,
// where the eviction path hands the page to an I/O completion port. The
// deferred work still occupies the write channel, delaying later
// synchronous writes such as log flushes.
func (d *Device) WriteAsync(now sim.Time, bytes int64) {
	if bytes <= 0 {
		return
	}
	if d.writeThrottle != nil {
		d.writeThrottle.server.Reserve(now, float64(bytes))
	}
	d.writeCh.Reserve(now, float64(bytes))
	d.Ctr.SSDWriteBytes += bytes
	d.Ctr.SSDWriteOps++
}

// Write blocks p for the duration of a write and returns the time spent.
// Like Read, transient fault-injected failures are retried internally
// until the write lands.
func (d *Device) Write(p *sim.Proc, bytes int64) sim.Duration {
	start := p.Now()
	for {
		if _, err := d.WriteErr(p, bytes); err == nil {
			return sim.Duration(p.Now() - start)
		}
	}
}

// WriteErr performs one write attempt, returning ErrTransient when the
// installed fault fails the request.
func (d *Device) WriteErr(p *sim.Proc, bytes int64) (sim.Duration, error) {
	if bytes <= 0 {
		return 0, nil
	}
	start := p.Now()
	tDelay := d.writeThrottle.reserve(p.Now(), bytes)
	var devDone sim.Duration
	for remaining := bytes; remaining > 0; {
		chunk := remaining
		if d.Spec.MaxRequestB > 0 && chunk > d.Spec.MaxRequestB {
			chunk = d.Spec.MaxRequestB
		}
		devDone = d.writeCh.Reserve(p.Now(), float64(chunk))
		remaining -= chunk
	}
	delay := devDone
	if tDelay > delay {
		delay = tDelay
		d.writeThrottleWaitNs += int64(tDelay - devDone)
	}
	p.Sleep(delay + sim.Duration(d.Spec.WriteLatNs))
	d.Ctr.SSDWriteBytes += bytes
	d.Ctr.SSDWriteOps++
	if s := metrics.StmtOf(p); s != nil {
		s.SSDWriteBytes += bytes
		s.SSDWriteOps++
	}
	if f := d.fault; f != nil && f.apply(p, f.WriteStallNs, f.WriteErrProb, d.Ctr) {
		return sim.Duration(p.Now() - start), ErrTransient
	}
	return sim.Duration(p.Now() - start), nil
}
