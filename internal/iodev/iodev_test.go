package iodev

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestReadTimeMatchesBandwidth(t *testing.T) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	d := New(PaperSSD(), ctr)
	var dur sim.Duration
	s.Spawn("r", func(p *sim.Proc) {
		dur = d.Read(p, 250<<20) // 250 MiB at 2500 MB/s ~ 0.105s
	})
	s.Run(sim.Time(10 * sim.Second))
	want := float64(250<<20)/(2500e6) + 80e-6
	if got := dur.Seconds(); math.Abs(got-want) > 0.01 {
		t.Fatalf("read took %.4fs, want %.4fs", got, want)
	}
	if ctr.SSDReadBytes != 250<<20 || ctr.SSDReadOps != 1 {
		t.Fatalf("counters: bytes=%d ops=%d", ctr.SSDReadBytes, ctr.SSDReadOps)
	}
}

func TestWritesSlowerThanReads(t *testing.T) {
	s := sim.New(1)
	d := New(PaperSSD(), &metrics.Counters{})
	var rd, wr sim.Duration
	s.Spawn("w", func(p *sim.Proc) {
		rd = d.Read(p, 100<<20)
		wr = d.Write(p, 100<<20)
	})
	s.Run(sim.Time(10 * sim.Second))
	if wr < rd*3/2 {
		t.Fatalf("write %.4fs should be ~2x read %.4fs", wr.Seconds(), rd.Seconds())
	}
}

func TestConcurrentReadsShareBandwidth(t *testing.T) {
	s := sim.New(1)
	d := New(PaperSSD(), &metrics.Counters{})
	var last sim.Time
	for i := 0; i < 4; i++ {
		s.Spawn("r", func(p *sim.Proc) {
			d.Read(p, 100<<20)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	s.Run(sim.Time(10 * sim.Second))
	// 400 MiB total at 2500 MB/s: everything completes in ~0.168s, not 0.042s.
	want := float64(400<<20) / 2500e6
	if got := last.Seconds(); got < want*0.95 {
		t.Fatalf("concurrent reads finished in %.4fs; device exceeded its bandwidth (min %.4fs)", got, want)
	}
}

func TestThrottleLimitsReadBandwidth(t *testing.T) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	d := New(PaperSSD(), ctr)
	th := NewThrottle(100) // 100 MB/s
	d.SetThrottles(th, nil)
	var dur sim.Duration
	s.Spawn("r", func(p *sim.Proc) {
		dur = d.Read(p, 100e6)
	})
	s.Run(sim.Time(100 * sim.Second))
	if got := dur.Seconds(); got < 0.99 {
		t.Fatalf("100MB at 100MB/s limit took %.3fs, want >= ~1s", got)
	}
	th.SetLimit(0) // unlimited again
	var dur2 sim.Duration
	s.Spawn("r2", func(p *sim.Proc) {
		dur2 = d.Read(p, 100e6)
	})
	s.Run(sim.Time(200 * sim.Second))
	if dur2.Seconds() > 0.1 {
		t.Fatalf("unthrottled read took %.3fs", dur2.Seconds())
	}
}

func TestReadAndWriteChannelsIndependent(t *testing.T) {
	s := sim.New(1)
	d := New(PaperSSD(), &metrics.Counters{})
	var rd sim.Duration
	s.Spawn("w", func(p *sim.Proc) {
		d.Write(p, 1<<30) // long write
	})
	s.Spawn("r", func(p *sim.Proc) {
		rd = d.Read(p, 10<<20)
	})
	s.Run(sim.Time(100 * sim.Second))
	if rd.Seconds() > 0.05 {
		t.Fatalf("read delayed by concurrent write: %.4fs", rd.Seconds())
	}
}

func TestZeroByteRequestsFree(t *testing.T) {
	s := sim.New(1)
	d := New(PaperSSD(), &metrics.Counters{})
	var rd, wr sim.Duration
	s.Spawn("z", func(p *sim.Proc) {
		rd = d.Read(p, 0)
		wr = d.Write(p, -5)
	})
	s.Run(sim.Time(sim.Second))
	if rd != 0 || wr != 0 {
		t.Fatalf("zero requests cost time: %v %v", rd, wr)
	}
}

func TestFaultStallSlowsRequests(t *testing.T) {
	s := sim.New(1)
	d := New(PaperSSD(), &metrics.Counters{})
	var clean, stalled sim.Duration
	s.Spawn("r", func(p *sim.Proc) {
		clean = d.Read(p, 1<<20)
		f := NewFault(sim.NewRNG(5))
		f.ReadStallNs = 5e6
		d.SetFault(f)
		stalled = d.Read(p, 1<<20)
	})
	s.Run(sim.Time(10 * sim.Second))
	if stalled < clean+sim.Duration(5e6) {
		t.Fatalf("stall not applied: clean=%v stalled=%v", clean, stalled)
	}
}

func TestFaultErrorsAbsorbedByRead(t *testing.T) {
	s := sim.New(1)
	ctr := &metrics.Counters{}
	d := New(PaperSSD(), ctr)
	f := NewFault(sim.NewRNG(5))
	f.ReadErrProb = 1 // capped internally below 1 so retries terminate
	f.RetryNs = 1e4
	d.SetFault(f)
	sawErr := false
	s.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if _, err := d.ReadErr(p, 4<<10); err != nil {
				if err != ErrTransient {
					t.Errorf("err = %v, want ErrTransient", err)
				}
				sawErr = true
			}
			// The absorbing variant must always succeed.
			d.Read(p, 4<<10)
		}
	})
	s.Run(sim.Time(60 * sim.Second))
	if !sawErr {
		t.Fatal("ReadErr never failed at ErrProb=1")
	}
	if ctr.FaultIOErrors == 0 {
		t.Fatal("FaultIOErrors not counted")
	}
}
