// Package exec implements the engine's query executor: physical plan
// trees evaluated by parallel worker procs over the costed access
// methods. Execution is real — scans produce rows, joins match keys,
// aggregates compute values — while every operator charges nominal CPU,
// cache, and I/O costs to the simulated machine.
//
// Parallel plans run as staged dataflow: each blocking boundary
// materializes, and within a stage DOP worker procs (each bound to one
// logical core) process static partitions. Exchanges charge per-row
// redistribution costs. This models SQL Server's batch/row parallel
// execution at the fidelity the paper measures (throughput, core
// utilization, memory-grant pressure), trading away intra-pipeline
// overlap; DESIGN.md discusses the simplification.
package exec

import (
	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/hw"
	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Row is one tuple.
type Row = []int64

// Env is everything a query needs to execute.
type Env struct {
	Sim  *sim.Sim
	M    *hw.Machine
	BP   *buffer.Pool
	Dev  *iodev.Device
	Ctr  *metrics.Counters
	Cost *access.CostModel
	RNG  *sim.RNG

	// Cores are the logical cores this query's workers may use; Dop caps
	// how many run concurrently (the effective degree of parallelism).
	Cores []int
	Dop   int

	// Grant is the query's workspace memory grant in nominal bytes.
	Grant *Grant

	// TempRegion gives tempdb spills a cache identity.
	TempRegion uint64

	// MetaBase is the shared engine-metadata region (access.CostModel).
	MetaBase uint64

	// Home is the logical core the session (coordinator) runs on; serial
	// stages and coordinator work execute there, so concurrent serial
	// queries from different sessions spread across the cpuset instead of
	// piling onto one scheduler.
	Home int

	// Deadline is the statement deadline (0 = none). Operators check it
	// at node boundaries and between partitions; once it passes, the
	// query stops doing work and reports QueryStats.Killed.
	Deadline sim.Time

	// Trace, when non-nil, records a span per plan node. The executor
	// checks it once per node, so untraced queries pay nothing.
	Trace *trace.Trace

	// Vectorized selects the batch-at-a-time column-vector engine.
	// Results are row-identical to the row engine; only the charging
	// granularity (and the executor's own allocation behaviour) differ.
	// The zero value runs the row engine, so exec-level tests exercise
	// the row path unless they opt in.
	Vectorized bool

	killed bool  // deadline expired mid-execution
	ioErr  error // first unrecoverable device error from any worker
}

// expired reports whether the deadline has passed, latching the killed
// flag on first expiry so every subsequent check short-circuits.
func (e *Env) expired(now sim.Time) bool {
	if e.killed {
		return true
	}
	if e.Deadline > 0 && now >= e.Deadline {
		e.killed = true
		return true
	}
	return false
}

// noteFail records the first unrecoverable failure seen by any worker.
func (e *Env) noteFail(err error) {
	if e.ioErr == nil {
		e.ioErr = err
	}
}

// home returns the coordinator core, defaulting to the first allowed.
// A Home outside the cpuset (e.g. assigned before AllowN shrank the set)
// must not be used: serial stages would otherwise run on disallowed
// cores, distorting core-allocation experiments.
func (e *Env) home() int {
	if e.Home > 0 && containsInt(e.Cores, e.Home) {
		return e.Home
	}
	return e.Cores[0]
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// EffectiveDop returns the number of parallel workers a stage uses.
func (e *Env) EffectiveDop() int {
	d := e.Dop
	if d < 1 {
		d = 1
	}
	if d > len(e.Cores) {
		d = len(e.Cores)
	}
	return d
}

// newCtx builds a worker context bound to a core.
func (e *Env) newCtx(p *sim.Proc, core int) *access.Ctx {
	return &access.Ctx{
		P:        p,
		Core:     core,
		M:        e.M,
		BP:       e.BP,
		Ctr:      e.Ctr,
		Cost:     e.Cost,
		RNG:      e.RNG.Fork(),
		MetaBase: e.MetaBase,
	}
}

// parallel runs f over nParts partitions using the stage's DOP. Worker w
// processes partitions w, w+dop, w+2*dop, ... With DOP 1 the stage runs
// inline on the coordinator's proc (a serial plan has no exchange or
// worker startup cost). The coordinator blocks until the stage finishes.
func (e *Env) parallel(p *sim.Proc, nParts int, f func(ctx *access.Ctx, part int)) {
	dop := e.EffectiveDop()
	if dop > nParts {
		dop = nParts
	}
	if dop <= 1 {
		ctx := e.newCtx(p, e.home())
		for part := 0; part < nParts; part++ {
			if e.expired(p.Now()) {
				break
			}
			f(ctx, part)
		}
		ctx.Flush()
		if err := p.TakeFail(); err != nil {
			e.noteFail(err)
		}
		return
	}
	remaining := dop
	var done sim.WaitQueue
	attr := p.Attr() // workers charge the coordinator's statement
	for w := 0; w < dop; w++ {
		w := w
		core := e.Cores[w%len(e.Cores)]
		e.Sim.Spawn("qworker", func(wp *sim.Proc) {
			wp.SetAttr(attr)
			ctx := e.newCtx(wp, core)
			// Thread startup / exchange setup cost.
			ctx.Stall(e.Cost.WorkerStartNs)
			for part := w; part < nParts; part += dop {
				if e.expired(wp.Now()) {
					break
				}
				f(ctx, part)
			}
			ctx.Flush()
			if err := wp.TakeFail(); err != nil {
				e.noteFail(err)
			}
			remaining--
			if remaining == 0 {
				done.WakeAll(e.Sim)
			}
		})
	}
	for remaining > 0 {
		done.Wait(p)
	}
}

// QueryStats summarizes one query execution.
type QueryStats struct {
	OutRows    int
	Batches    int // column batches emitted across all operators (vectorized engine)
	Spills     int
	SpillBytes int64
	GrantBytes int64
	UsedBytes  int64
	Killed     bool // statement deadline expired mid-execution
}

// Grant is a query's workspace memory grant (nominal bytes). Memory-
// consuming operators Reserve against it; over-reservation spills.
type Grant struct {
	Bytes int64
	used  int64
}

// Reserve takes want bytes from the grant and returns how many bytes did
// NOT fit (the operator's spill volume).
func (g *Grant) Reserve(want int64) (overflow int64) {
	if g == nil || g.Bytes <= 0 {
		return 0 // unlimited
	}
	avail := g.Bytes - g.used
	if avail < 0 {
		avail = 0
	}
	if want <= avail {
		g.used += want
		return 0
	}
	g.used = g.Bytes
	return want - avail
}

// Release returns bytes to the grant (operator teardown).
func (g *Grant) Release(bytes int64) {
	if g == nil {
		return
	}
	g.used -= bytes
	if g.used < 0 {
		g.used = 0
	}
}

// Used returns the current reservation.
func (g *Grant) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used
}
