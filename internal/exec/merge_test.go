package exec

import (
	"reflect"
	"testing"
)

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	for _, jt := range []JoinType{InnerJoin, SemiJoin, AntiJoin} {
		run := func(kind NodeKind) []Row {
			te := newTestEnv(4)
			orders := te.ordersTable()
			cust := te.custTable()
			var n *Node
			if kind == KMergeJoin {
				// Merge join preserves Left: orders ++ customer.
				n = &Node{
					Kind:      KMergeJoin,
					Left:      scanNode(orders, []int{0, 1, 2}, nil, 0, false),
					Right:     scanNode(cust, []int{0, 1}, nil, 0, false),
					BuildKeys: []int{1}, ProbeKeys: []int{0},
					JoinType: jt, Weight: orders.K, Parallel: true,
				}
			} else {
				// Hash join emits probe ++ build with build = customer.
				n = &Node{
					Kind:      KHashJoin,
					Left:      scanNode(cust, []int{0, 1}, nil, 0, false),
					Right:     scanNode(orders, []int{0, 1, 2}, nil, 0, false),
					BuildKeys: []int{0}, ProbeKeys: []int{1},
					JoinType: jt, Weight: orders.K,
				}
			}
			rows, _ := te.run(n)
			if jt != InnerJoin && kind == KHashJoin {
				// Hash semi/anti emits probe rows = orders; same layout.
				return rows
			}
			return rows
		}
		mj := run(KMergeJoin)
		hj := run(KHashJoin)
		sortRows(mj)
		sortRows(hj)
		if len(mj) != len(hj) {
			t.Fatalf("join type %v: merge join %d rows != hash join %d rows", jt, len(mj), len(hj))
		}
		if len(mj) > 0 && !reflect.DeepEqual(mj, hj) {
			t.Fatalf("join type %v: results differ", jt)
		}
	}
}

func TestMergeJoinSpillsUnderTinyGrant(t *testing.T) {
	te := newTestEnv(2)
	orders := te.ordersTable()
	cust := te.custTable()
	te.env.Grant = &Grant{Bytes: 64}
	n := &Node{
		Kind:      KMergeJoin,
		Left:      scanNode(orders, []int{0, 1}, nil, 0, false),
		Right:     scanNode(cust, []int{0, 1}, nil, 0, false),
		BuildKeys: []int{1}, ProbeKeys: []int{0},
		JoinType: InnerJoin, Weight: orders.K,
	}
	rows, st := te.run(n)
	if len(rows) != 200 {
		t.Fatalf("rows = %d", len(rows))
	}
	if st.Spills == 0 {
		t.Fatal("expected sort spills under tiny grant")
	}
}

func TestStreamAggMatchesHashAgg(t *testing.T) {
	run := func(kind NodeKind) []Row {
		te := newTestEnv(2)
		orders := te.ordersTable()
		n := &Node{
			Kind:   kind,
			Left:   scanNode(orders, []int{1, 2}, nil, 0, false),
			Groups: []int{0},
			Aggs: []AggSpec{
				{Kind: AggSum, Col: 1}, {Kind: AggCount},
				{Kind: AggMin, Col: 1}, {Kind: AggMax, Col: 1}, {Kind: AggAvg, Col: 1},
			},
			Weight: orders.K,
		}
		rows, _ := te.run(n)
		return rows
	}
	sa := run(KStreamAgg)
	ha := run(KHashAgg)
	if !reflect.DeepEqual(sa, ha) {
		t.Fatalf("stream agg != hash agg:\n%v\n%v", sa[:minInt2(3, len(sa))], ha[:minInt2(3, len(ha))])
	}
}

func TestStreamAggScalarEmptyInput(t *testing.T) {
	te := newTestEnv(1)
	orders := te.ordersTable()
	n := &Node{
		Kind:   KStreamAgg,
		Left:   scanNode(orders, []int{2}, func(r Row) bool { return false }, 1, false),
		Groups: nil,
		Aggs:   []AggSpec{{Kind: AggSum, Col: 0}, {Kind: AggCount}},
		Weight: orders.K,
	}
	rows, _ := te.run(n)
	if len(rows) != 1 || rows[0][0] != 0 || rows[0][1] != 0 {
		t.Fatalf("scalar stream agg on empty = %v", rows)
	}
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
