package exec

import (
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

// runMergeJoin sorts both inputs by their join keys and merges. Its
// memory behaviour differs from hash join the way the paper's Section 8
// cares about: the sorts spill independently and the merge itself needs
// no workspace, so the optimizer prefers it when the build side far
// exceeds the grant.
func runMergeJoin(p *sim.Proc, env *Env, n *Node, st *QueryStats, left, right []Row) []Row {
	sortSide := func(rows []Row, keys []int, weight int64, rowBytes int64) {
		needBytes := int64(len(rows)) * weight * rowBytes
		overflow := env.Grant.Reserve(needBytes)
		if overflow > 0 {
			spill(p, env, n, st, overflow, 0)
		}
		defer env.Grant.Release(needBytes - overflow)
		parts := stageDop(env, n)
		chunks := chunkRows(rows, parts)
		env.parallel(p, parts, func(ctx *access.Ctx, part int) {
			c := chunks[part]
			if len(c) == 0 {
				return
			}
			sort.SliceStable(c, func(i, j int) bool { return lessByCols(c[i], c[j], keys) })
			w := float64(int64(len(c)) * weight)
			ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(w+2))
			region := env.M.ReserveRegion(needBytes/int64(parts) + 1)
			ctx.TouchSeq(region, needBytes/int64(parts), true, 8)
		})
		// Final merge of the sorted chunks (coordinator).
		merged := mergeSortedBy(chunks, keys)
		copy(rows, merged)
	}
	sortSide(left, n.BuildKeys, n.Left.Weight, tupleBytes(env, n.Left))
	sortSide(right, n.ProbeKeys, n.Right.Weight, tupleBytes(env, n.Right))

	ctx := env.newCtx(p, env.home())
	w := int64(len(left))*maxI64(n.Left.Weight, 1) + int64(len(right))*maxI64(n.Right.Weight, 1)
	ctx.CPU(float64(w) * ctx.Cost.AggIPR * 0.5) // linear merge pass
	ctx.Flush()

	// Merge: left is the preserved side (output = left ++ right for
	// inner; left only for semi/anti).
	var out []Row
	j := 0
	for i := 0; i < len(left); i++ {
		l := left[i]
		for j < len(right) && colsLess(right[j], n.ProbeKeys, l, n.BuildKeys) {
			j++
		}
		matched := false
		for k := j; k < len(right) && colsEqual(right[k], n.ProbeKeys, l, n.BuildKeys); k++ {
			matched = true
			if n.JoinType == InnerJoin {
				out = append(out, concatRows(l, right[k]))
			} else {
				break
			}
		}
		switch n.JoinType {
		case SemiJoin:
			if matched {
				out = append(out, l)
			}
		case AntiJoin:
			if !matched {
				out = append(out, l)
			}
		}
	}
	return out
}

func lessByCols(a, b Row, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return a[c] < b[c]
		}
	}
	return false
}

func colsLess(a Row, ak []int, b Row, bk []int) bool {
	for i := range ak {
		if a[ak[i]] != b[bk[i]] {
			return a[ak[i]] < b[bk[i]]
		}
	}
	return false
}

func colsEqual(a Row, ak []int, b Row, bk []int) bool {
	for i := range ak {
		if a[ak[i]] != b[bk[i]] {
			return false
		}
	}
	return true
}

// mergeSortedBy merges sorted chunks by arbitrary columns with the
// shared k-way heap merge; equal keys resolve to the lower chunk index.
func mergeSortedBy(chunks [][]Row, cols []int) []Row {
	return kwayMerge(chunks, func(a, b Row) bool { return lessByCols(a, b, cols) })
}

// runStreamAgg aggregates input that it first sorts by the group columns,
// then folds sequentially — constant workspace beyond the sort, the
// operator SQL Server picks when a hash table would not fit the grant.
func runStreamAgg(p *sim.Proc, env *Env, n *Node, st *QueryStats, in []Row) []Row {
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	needBytes := int64(len(in)) * weight * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	if overflow > 0 {
		spill(p, env, n, st, overflow, 0)
	}
	defer env.Grant.Release(needBytes - overflow)

	ctx := env.newCtx(p, env.home())
	sort.SliceStable(in, func(i, j int) bool { return lessByCols(in[i], in[j], n.Groups) })
	w := float64(int64(len(in)) * weight)
	ctx.CPU(w * (ctx.Cost.SortIPR*math.Log2(w+2) + ctx.Cost.AggIPR*0.6))
	ctx.Flush()

	var out []Row
	var curKey Row
	var state []int64
	keyCols := seqInts(len(n.Groups))
	flush := func() {
		if curKey != nil {
			out = append(out, finalize(curKey, state, n.Aggs))
		}
	}
	for _, r := range in {
		if curKey == nil || !colsEqual(r, n.Groups, curKey, keyCols) {
			flush()
			curKey = project(r, n.Groups)
			state = newAggState(n.Aggs)
		}
		accumulate(state, n.Aggs, r, weight)
	}
	flush()
	if len(n.Groups) == 0 && len(out) == 0 {
		return []Row{finalize(nil, newAggState(n.Aggs), n.Aggs)}
	}
	return out
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
