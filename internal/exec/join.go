package exec

import (
	"repro/internal/access"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// hashRow hashes the key columns of a row.
func hashRow(r Row, keys []int) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range keys {
		h ^= uint64(r[c])
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return h
}

func keysEqual(a Row, ak []int, b Row, bk []int) bool {
	for i := range ak {
		if a[ak[i]] != b[bk[i]] {
			return false
		}
	}
	return true
}

// joinTable is one partition's hash table: hash -> indices of build rows.
type joinTable struct {
	buckets map[uint64][]int32
	rows    []Row
}

func newJoinTable() *joinTable {
	return &joinTable{buckets: make(map[uint64][]int32)}
}

func (jt *joinTable) insert(r Row, keys []int) {
	h := hashRow(r, keys)
	jt.buckets[h] = append(jt.buckets[h], int32(len(jt.rows)))
	jt.rows = append(jt.rows, r)
}

// runHashJoin materializes both children, builds partitioned hash tables
// over the build (left) side, and probes with the right side. Exceeding
// the memory grant spills partitions to tempdb (charged as write+read of
// the spilled nominal bytes).
func runHashJoin(p *sim.Proc, env *Env, n *Node, st *QueryStats, build, probe []Row) []Row {
	rowBytes := tupleBytes(env, n.Left)
	needBytes := int64(len(build)) * n.Left.Weight * rowBytes
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		spill(p, env, n, st, overflow, probeSpillShare(overflow, needBytes, int64(len(probe))*n.Right.Weight*tupleBytes(env, n.Right)))
	}

	region := env.M.ReserveRegion(needBytes + 1)
	parts := stageDop(env, n)
	tables := make([]*joinTable, parts)
	buildParts := partitionRows(build, n.BuildKeys, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		jt := newJoinTable()
		rows := buildParts[part]
		for _, r := range rows {
			jt.insert(r, n.BuildKeys)
		}
		w := int64(len(rows)) * n.Left.Weight
		ctx.CPU(float64(w) * ctx.Cost.HashBuildIPR)
		share := needBytes / int64(parts)
		if share < 1 {
			share = 1
		}
		ctx.TouchRandom(region+uint64(part)*uint64(share), share, w, true, 4)
		tables[part] = jt
	})

	probeParts := partitionRows(probe, n.ProbeKeys, parts)
	results := make([][]Row, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		jt := tables[part]
		rows := probeParts[part]
		w := int64(len(rows)) * n.Right.Weight
		ctx.CPU(float64(w) * ctx.Cost.HashProbeIPR)
		share := needBytes / int64(parts)
		if share < 1 {
			share = 1
		}
		ctx.TouchRandom(region+uint64(part)*uint64(share), share, w, false, 4)
		var out []Row
		for _, pr := range rows {
			h := hashRow(pr, n.ProbeKeys)
			matched := false
			for _, bi := range jt.buckets[h] {
				br := jt.rows[bi]
				if !keysEqual(br, n.BuildKeys, pr, n.ProbeKeys) {
					continue
				}
				matched = true
				if n.JoinType == InnerJoin {
					out = append(out, concatRows(pr, br))
				} else {
					break
				}
			}
			switch n.JoinType {
			case SemiJoin:
				if matched {
					out = append(out, pr)
				}
			case AntiJoin:
				if !matched {
					out = append(out, pr)
				}
			}
		}
		results[part] = out
	})
	return flatten(results)
}

// concatRows emits probe ++ build (the executor's join output layout).
func concatRows(probe, build Row) Row {
	out := make(Row, 0, len(probe)+len(build))
	out = append(out, probe...)
	out = append(out, build...)
	return out
}

// partitionRows splits rows by key hash for partitioned parallel stages;
// with one partition it passes rows through.
func partitionRows(rows []Row, keys []int, parts int) [][]Row {
	if parts <= 1 {
		return [][]Row{rows}
	}
	out := make([][]Row, parts)
	for _, r := range rows {
		p := int(hashRow(r, keys) % uint64(parts))
		out[p] = append(out[p], r)
	}
	return out
}

func tupleBytes(env *Env, n *Node) int64 {
	b := n.RowBytes
	if b <= 0 {
		b = env.Cost.TupleBytes
	}
	return b + env.Cost.TupleBytes
}

// probeSpillShare estimates how many probe-side bytes respill alongside
// the overflowing build partitions.
func probeSpillShare(overflow, needBytes, probeBytes int64) int64 {
	if needBytes <= 0 {
		return 0
	}
	return int64(float64(probeBytes) * float64(overflow) / float64(needBytes))
}

// spill charges a tempdb round trip for overflowBytes of build data plus
// the proportional probe share: written once, read once, with extra
// per-byte CPU.
func spill(p *sim.Proc, env *Env, n *Node, st *QueryStats, buildBytes, probeBytes int64) {
	total := buildBytes + probeBytes
	st.Spills++
	st.SpillBytes += total
	env.Ctr.Spills++
	if s := metrics.StmtOf(p); s != nil {
		s.Spills++
	}
	ctx := env.newCtx(p, env.home())
	ctx.Flush()
	d := env.Dev.Write(p, total)
	d += env.Dev.Read(p, total)
	ctx.WaitIO(d)
	ctx.TouchSeq(env.TempRegion, total, true, 8)
	ctx.CPU(float64(total) / 64 * 3)
	ctx.Flush()
}

// runNLIndexJoin probes the inner index once per outer row; matches fetch
// the inner base row. Parallel plans partition the outer rows.
func runNLIndexJoin(p *sim.Proc, env *Env, n *Node, st *QueryStats, outer []Row) []Row {
	ix := n.Index
	t := ix.Table
	heap := access.Heap{T: t}
	parts := stageDop(env, n)
	chunks := chunkRows(outer, parts)
	results := make([][]Row, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		var out []Row
		for _, or := range chunks[part] {
			key := n.probeKeyOf(or)
			matches := ix.LookupAll(key)
			// Position the probe at the first match's nominal location
			// (or a key-derived location on a miss).
			var nid int64
			if len(matches) > 0 {
				nid = matches[0] * t.K
			} else {
				nid = int64(hashRow(or, n.OuterKeys) % uint64(maxI64(t.NominalRows(), 1)))
			}
			ix.Probe(ctx, key, nid, false)
			matched := len(matches) > 0
			switch n.JoinType {
			case SemiJoin:
				if matched {
					out = append(out, or)
				}
				continue
			case AntiJoin:
				if !matched {
					out = append(out, or)
				}
				continue
			}
			for _, m := range matches {
				if len(n.InnerProj) > 0 && !ix.Clustered {
					// Non-covering: fetch the base row.
					heap.ProbePoint(ctx, m*t.K, false)
				}
				inner := make(Row, len(n.InnerProj))
				for i, c := range n.InnerProj {
					inner[i] = t.Get(m, c)
				}
				out = append(out, concatRows(or, inner))
			}
		}
		results[part] = out
	})
	return flatten(results)
}

func chunkRows(rows []Row, parts int) [][]Row {
	if parts <= 1 {
		return [][]Row{rows}
	}
	out := make([][]Row, parts)
	chunk := (len(rows) + parts - 1) / parts
	for i := 0; i < parts; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		out[i] = rows[lo:hi]
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
