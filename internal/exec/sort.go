package exec

import (
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

func lessByKeys(a, b Row, keys []SortKey) bool {
	for _, k := range keys {
		av, bv := a[k.Col], b[k.Col]
		if av == bv {
			continue
		}
		if k.Desc {
			return av > bv
		}
		return av < bv
	}
	return false
}

// runSort sorts the child's output. Parallel stages sort chunks; the
// coordinator merges. Input larger than the grant spills sort runs to
// tempdb.
func runSort(p *sim.Proc, env *Env, n *Node, st *QueryStats) []Row {
	in := runNode(p, env, n.Left, st)
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	needBytes := int64(len(in)) * weight * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		// External sort: spilled runs are written and re-read once.
		spill(p, env, n, st, overflow, 0)
	}

	parts := stageDop(env, n)
	chunks := chunkRows(in, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		rows := chunks[part]
		if len(rows) == 0 {
			return
		}
		sort.SliceStable(rows, func(i, j int) bool { return lessByKeys(rows[i], rows[j], n.Keys) })
		w := float64(int64(len(rows)) * weight)
		ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(w+2))
		region := env.M.ReserveRegion(needBytes/int64(parts) + 1)
		ctx.TouchSeq(region, needBytes/int64(parts), true, 8)
	})

	// Coordinator merge of sorted chunks.
	ctx := env.newCtx(p, env.home())
	out := mergeSorted(chunks, n.Keys)
	if parts > 1 {
		ctx.CPU(float64(int64(len(out))*weight) * ctx.Cost.SortIPR)
	}
	ctx.Flush()
	return out
}

func mergeSorted(chunks [][]Row, keys []SortKey) []Row {
	// Simple k-way merge by repeated selection (k is small = DOP).
	idx := make([]int, len(chunks))
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]Row, 0, total)
	for len(out) < total {
		best := -1
		for i, c := range chunks {
			if idx[i] >= len(c) {
				continue
			}
			if best < 0 || lessByKeys(c[idx[i]], chunks[best][idx[best]], keys) {
				best = i
			}
		}
		out = append(out, chunks[best][idx[best]])
		idx[best]++
	}
	return out
}

// runTop returns the first Limit rows by sort key, using selection
// against a bounded heap (cheaper than a full sort).
func runTop(p *sim.Proc, env *Env, n *Node, st *QueryStats) []Row {
	in := runNode(p, env, n.Left, st)
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	ctx := env.newCtx(p, env.home())
	limit := n.Limit
	if limit <= 0 || limit > len(in) {
		if len(n.Keys) > 0 {
			sort.SliceStable(in, func(i, j int) bool { return lessByKeys(in[i], in[j], n.Keys) })
		}
		if limit <= 0 || limit > len(in) {
			limit = len(in)
		}
	} else {
		sort.SliceStable(in, func(i, j int) bool { return lessByKeys(in[i], in[j], n.Keys) })
	}
	w := float64(int64(len(in)) * weight)
	ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(float64(limit)+2))
	ctx.Flush()
	return in[:limit]
}
