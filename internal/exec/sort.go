package exec

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

func lessByKeys(a, b Row, keys []SortKey) bool {
	for _, k := range keys {
		av, bv := a[k.Col], b[k.Col]
		if av == bv {
			continue
		}
		if k.Desc {
			return av > bv
		}
		return av < bv
	}
	return false
}

// runSort sorts the child's output. Parallel stages sort chunks; the
// coordinator merges. Input larger than the grant spills sort runs to
// tempdb.
func runSort(p *sim.Proc, env *Env, n *Node, st *QueryStats, in []Row) []Row {
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	needBytes := int64(len(in)) * weight * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		// External sort: spilled runs are written and re-read once.
		spill(p, env, n, st, overflow, 0)
	}

	parts := stageDop(env, n)
	chunks := chunkRows(in, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		rows := chunks[part]
		if len(rows) == 0 {
			return
		}
		sort.SliceStable(rows, func(i, j int) bool { return lessByKeys(rows[i], rows[j], n.Keys) })
		w := float64(int64(len(rows)) * weight)
		ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(w+2))
		region := env.M.ReserveRegion(needBytes/int64(parts) + 1)
		ctx.TouchSeq(region, needBytes/int64(parts), true, 8)
	})

	// Coordinator merge of sorted chunks.
	ctx := env.newCtx(p, env.home())
	out := mergeSorted(chunks, n.Keys)
	if parts > 1 {
		ctx.CPU(float64(int64(len(out))*weight) * ctx.Cost.SortIPR)
	}
	ctx.Flush()
	return out
}

// mergeSorted merges per-chunk sorted runs with a k-way heap merge.
// Ties across chunks break toward the lower chunk index, which is the
// order a stable serial sort of the concatenated input produces (chunks
// are contiguous input slices).
func mergeSorted(chunks [][]Row, keys []SortKey) []Row {
	return kwayMerge(chunks, func(a, b Row) bool { return lessByKeys(a, b, keys) })
}

// mergeHead is one chunk's read position inside the merge heap.
type mergeHead struct {
	chunk int
	pos   int
}

// mergeHeap is a container/heap k-way merge state over sorted chunks:
// the root is the smallest head element, with equal keys resolved by the
// lower chunk index so the merge is deterministic for any DOP.
type mergeHeap[T any] struct {
	heads  []mergeHead
	chunks [][]T
	less   func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int { return len(h.heads) }

func (h *mergeHeap[T]) Less(i, j int) bool {
	a, b := h.heads[i], h.heads[j]
	av, bv := h.chunks[a.chunk][a.pos], h.chunks[b.chunk][b.pos]
	if h.less(av, bv) {
		return true
	}
	if h.less(bv, av) {
		return false
	}
	return a.chunk < b.chunk
}

func (h *mergeHeap[T]) Swap(i, j int) { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }

func (h *mergeHeap[T]) Push(x any) { h.heads = append(h.heads, x.(mergeHead)) }

func (h *mergeHeap[T]) Pop() any {
	old := h.heads
	x := old[len(old)-1]
	h.heads = old[:len(old)-1]
	return x
}

// kwayMerge merges k sorted chunks in O(n log k). A single non-empty
// chunk is returned as-is (the serial fast path).
func kwayMerge[T any](chunks [][]T, less func(a, b T) bool) []T {
	total, nonEmpty, last := 0, 0, -1
	for i, c := range chunks {
		total += len(c)
		if len(c) > 0 {
			nonEmpty++
			last = i
		}
	}
	if nonEmpty == 0 {
		return make([]T, 0)
	}
	if nonEmpty == 1 {
		return chunks[last]
	}
	h := &mergeHeap[T]{chunks: chunks, less: less}
	for i, c := range chunks {
		if len(c) > 0 {
			h.heads = append(h.heads, mergeHead{chunk: i})
		}
	}
	heap.Init(h)
	out := make([]T, 0, total)
	for h.Len() > 0 {
		hd := h.heads[0]
		out = append(out, chunks[hd.chunk][hd.pos])
		hd.pos++
		if hd.pos < len(chunks[hd.chunk]) {
			h.heads[0] = hd
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// topHeap is a bounded max-heap of candidate indices under a total
// order: the root is the worst retained candidate, so a better incoming
// element replaces it in O(log limit).
type topHeap struct {
	idx    []int32
	before func(i, j int32) bool
}

func (h *topHeap) Len() int           { return len(h.idx) }
func (h *topHeap) Less(i, j int) bool { return h.before(h.idx[j], h.idx[i]) }
func (h *topHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *topHeap) Push(x any)         { h.idx = append(h.idx, x.(int32)) }
func (h *topHeap) Pop() any {
	old := h.idx
	x := old[len(old)-1]
	h.idx = old[:len(old)-1]
	return x
}

// topKIdx returns the indices of the limit smallest of n elements under
// less, ties broken toward the lower index (the stable order), sorted
// ascending. limit >= n degenerates to a full index sort; the bounded
// branch does O(n log limit) comparisons, matching the Top operator's
// charged cost.
func topKIdx(n, limit int, less func(i, j int32) bool) []int32 {
	if limit > n {
		limit = n
	}
	if limit <= 0 {
		return nil
	}
	before := func(i, j int32) bool {
		if less(i, j) {
			return true
		}
		if less(j, i) {
			return false
		}
		return i < j
	}
	var idx []int32
	if limit == n {
		idx = make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
	} else {
		h := &topHeap{idx: make([]int32, 0, limit), before: before}
		for i := 0; i < limit; i++ {
			h.idx = append(h.idx, int32(i))
		}
		heap.Init(h)
		for i := limit; i < n; i++ {
			if before(int32(i), h.idx[0]) {
				h.idx[0] = int32(i)
				heap.Fix(h, 0)
			}
		}
		idx = h.idx
	}
	sort.Slice(idx, func(a, b int) bool { return before(idx[a], idx[b]) })
	return idx
}

// runTop returns the first Limit rows of the input's stable order by the
// sort keys, selected against a bounded heap (O(n log limit), cheaper
// than a full sort) so the executed work matches the charged cost
// w·SortIPR·log2(limit+2).
func runTop(p *sim.Proc, env *Env, n *Node, st *QueryStats, in []Row) []Row {
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	ctx := env.newCtx(p, env.home())
	limit := n.Limit
	if limit <= 0 || limit > len(in) {
		limit = len(in)
	}
	idx := topKIdx(len(in), limit, func(i, j int32) bool { return lessByKeys(in[i], in[j], n.Keys) })
	out := make([]Row, len(idx))
	for i, ix := range idx {
		out[i] = in[ix]
	}
	w := float64(int64(len(in)) * weight)
	ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(float64(limit)+2))
	ctx.Flush()
	return out
}
