package exec

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/btree"
)

// NodeKind identifies a physical operator.
type NodeKind int

// Physical operators.
const (
	KRowScan NodeKind = iota
	KColScan
	KHashJoin
	KNLIndexJoin
	KMergeJoin
	KHashAgg
	KStreamAgg
	KSort
	KTop
	KFilter
	KProject
)

// String names the operator as in a showplan.
func (k NodeKind) String() string {
	switch k {
	case KRowScan:
		return "Table Scan"
	case KColScan:
		return "Columnstore Scan"
	case KHashJoin:
		return "Hash Join"
	case KNLIndexJoin:
		return "Nested Loops (Index Seek)"
	case KMergeJoin:
		return "Merge Join"
	case KHashAgg:
		return "Hash Aggregate"
	case KStreamAgg:
		return "Stream Aggregate"
	case KSort:
		return "Sort"
	case KTop:
		return "Top"
	case KFilter:
		return "Filter"
	case KProject:
		return "Compute Scalar"
	default:
		return fmt.Sprintf("Op(%d)", int(k))
	}
}

// JoinType selects join semantics.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	SemiJoin
	AntiJoin
)

// AggKind is an aggregate function.
type AggKind int

// Aggregates.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg // produced as sum; callers divide by the paired count
)

// AggSpec is one aggregate over a column of the child's output.
type AggSpec struct {
	Kind AggKind
	Col  int // column ordinal in child rows; ignored for AggCount
}

// SortKey is one ordering column.
type SortKey struct {
	Col  int
	Desc bool
}

// Pred is a row predicate.
type Pred func(Row) bool

// Node is a physical plan node. The optimizer sets the estimates and the
// Parallel flag; the executor reads them.
type Node struct {
	Kind NodeKind

	// Children: Left is the build/outer side, Right the probe side.
	Left  *Node
	Right *Node

	// Row-store scan.
	Heap access.Heap
	// Columnstore scan.
	CSI *access.CSI
	// Shared scan fields: Proj lists table column ordinals to emit; Pred
	// filters (applied to a full-width table row for scans, or to the
	// child's output row for KFilter); NPred is the predicate count for
	// costing; PredCols lists extra table columns the predicate reads
	// (so columnstore scans decode them).
	Proj     []int
	Pred     Pred
	NPred    int
	PredCols []int

	// Hash join: key ordinals within each child's output rows.
	BuildKeys []int
	ProbeKeys []int
	JoinType  JoinType

	// NL index join: the inner index, the outer-row ordinals forming the
	// probe key, and the inner table columns to emit.
	Index     *access.BTIndex
	OuterKeys []int
	InnerProj []int

	// Aggregate: group-by ordinals and aggregate specs; output rows are
	// groups ++ aggregates.
	Groups []int
	Aggs   []AggSpec

	// Sort / Top.
	Keys  []SortKey
	Limit int

	// Project.
	Exprs []func(Row) int64

	// Optimizer annotations.
	EstRows  float64 // nominal output cardinality estimate
	Weight   int64   // nominal rows represented per actual output row
	RowBytes int64   // nominal bytes per row (for grants/exchanges)
	Parallel bool    // runs with the plan's DOP (vs forced serial)
	Name     string  // display label (table/index name)
}

// Inputs returns the non-nil children.
func (n *Node) Inputs() []*Node {
	var out []*Node
	if n.Left != nil {
		out = append(out, n.Left)
	}
	if n.Right != nil {
		out = append(out, n.Right)
	}
	return out
}

// Render pretty-prints the plan tree in showplan style (Figure 7's plan
// shapes). Parallel operators are marked with the double-arrow ⇉.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.Parallel {
		b.WriteString("⇉ ")
	} else {
		b.WriteString("→ ")
	}
	b.WriteString(n.Kind.String())
	if n.Name != "" {
		fmt.Fprintf(b, " [%s]", n.Name)
	}
	if n.EstRows > 0 {
		fmt.Fprintf(b, " (est %.3g rows)", n.EstRows)
	}
	b.WriteString("\n")
	for _, c := range n.Inputs() {
		c.render(b, depth+1)
	}
}

// Shape returns a compact structural signature of the plan: operator
// kinds in pre-order with parallel markers, e.g.
// "HJ(Scan,NL(Scan,IxSeek))". Tests use it to assert plan changes.
func (n *Node) Shape() string {
	var short string
	switch n.Kind {
	case KRowScan:
		short = "Scan"
	case KColScan:
		short = "CScan"
	case KHashJoin:
		short = "HJ"
	case KNLIndexJoin:
		short = "NL"
	case KMergeJoin:
		short = "MJ"
	case KHashAgg:
		short = "Agg"
	case KStreamAgg:
		short = "SAgg"
	case KSort:
		short = "Sort"
	case KTop:
		short = "Top"
	case KFilter:
		short = "Filter"
	case KProject:
		short = "Proj"
	}
	if n.Parallel {
		short = "p" + short
	}
	ins := n.Inputs()
	if len(ins) == 0 {
		return short
	}
	parts := make([]string, len(ins))
	for i, c := range ins {
		parts[i] = c.Shape()
	}
	return short + "(" + strings.Join(parts, ",") + ")"
}

// probeKeyOf builds the index probe key from an outer row.
func (n *Node) probeKeyOf(outer Row) btree.Key {
	k := make(btree.Key, len(n.OuterKeys))
	for i, c := range n.OuterKeys {
		k[i] = outer[c]
	}
	return k
}
