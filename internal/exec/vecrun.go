package exec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/sim"
)

// This file is the batch-at-a-time engine: operators consume and produce
// column-vector batches (vec.go) instead of materialized []Row. Both
// engines share the cost model and produce row-identical output in the
// same order; the batch engine charges CPU, buffer-pool pages, metadata
// touches and deadline checks per batch instead of per partition, and
// avoids the row engine's per-row allocations. Operator-region LLC
// touches (TouchSeq/TouchRandom) stay at partition granularity — the
// cache model samples coarse streaming touches, so both engines issue
// the same touch pattern (see access.ScanCursor).
//
// NL index join, merge join, and stream aggregate are row-bridged: their
// row-at-a-time bodies run unchanged between batch conversions, which
// keeps output identity trivially and costs one materialization at the
// operator boundary (where the row engine materializes anyway).

// runNodeVec mirrors runNode for the batch engine; spans additionally
// record the emitted batch count.
func runNodeVec(p *sim.Proc, env *Env, n *Node, st *QueryStats) []*Batch {
	if env.expired(p.Now()) {
		return nil
	}
	if env.Trace == nil {
		out := execNodeVec(p, env, n, st)
		st.Batches += len(out)
		return out
	}
	sp := env.Trace.Enter(n.Kind.String(), n.Name, n.Parallel, n.EstRows, p.Now())
	out := execNodeVec(p, env, n, st)
	st.Batches += len(out)
	sp.Batches = int64(len(out))
	rows := int64(batchRowCount(out))
	env.Trace.Exit(sp, rows, rows*n.Weight, p.Now())
	return out
}

func execNodeVec(p *sim.Proc, env *Env, n *Node, st *QueryStats) []*Batch {
	size := batchSize(env)
	switch n.Kind {
	case KRowScan:
		return vecRowScan(p, env, n)
	case KColScan:
		return vecColScan(p, env, n)
	case KHashJoin:
		build := runNodeVec(p, env, n.Left, st)
		probe := runNodeVec(p, env, n.Right, st)
		return vecHashJoin(p, env, n, st, build, probe)
	case KNLIndexJoin:
		outer := batchesToRows(runNodeVec(p, env, n.Left, st))
		return rowsToBatches(runNLIndexJoin(p, env, n, st, outer), size)
	case KMergeJoin:
		left := batchesToRows(runNodeVec(p, env, n.Left, st))
		right := batchesToRows(runNodeVec(p, env, n.Right, st))
		return rowsToBatches(runMergeJoin(p, env, n, st, left, right), size)
	case KHashAgg:
		in := runNodeVec(p, env, n.Left, st)
		return vecHashAgg(p, env, n, st, in)
	case KStreamAgg:
		in := batchesToRows(runNodeVec(p, env, n.Left, st))
		return rowsToBatches(runStreamAgg(p, env, n, st, in), size)
	case KSort:
		in := runNodeVec(p, env, n.Left, st)
		return vecSort(p, env, n, st, in)
	case KTop:
		in := runNodeVec(p, env, n.Left, st)
		return vecTop(p, env, n, in)
	case KFilter:
		in := runNodeVec(p, env, n.Left, st)
		return vecFilter(p, env, n, in)
	case KProject:
		in := runNodeVec(p, env, n.Left, st)
		return vecProject(p, env, n, in)
	default:
		panic(fmt.Sprintf("exec: unknown node kind %v", n.Kind))
	}
}

// vecRowScan scans the heap in batch-sized nominal ranges. Without a
// predicate it bulk-copies projected column ranges straight out of the
// column-major table storage and never materializes a row.
func vecRowScan(p *sim.Proc, env *Env, n *Node) []*Batch {
	t := n.Heap.T
	total := t.ActualRows()
	parts := stageDop(env, n)
	size := batchSize(env)
	results := make([][]*Batch, parts)
	chunk := (total + int64(parts) - 1) / int64(parts)
	srcCols := make([][]int64, len(n.Proj))
	for i, c := range n.Proj {
		srcCols[i] = t.Col(c)
	}
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		lo := int64(part) * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			return
		}
		cur := n.Heap.NewScanCursor(n.NPred)
		bb := newBatchBuilder(len(n.Proj), size)
		var buf Row
		if n.Pred != nil {
			buf = make(Row, t.NCols())
		}
		for blo := lo; blo < hi; blo += int64(size) {
			if env.expired(ctx.P.Now()) {
				break
			}
			bhi := blo + int64(size)
			if bhi > hi {
				bhi = hi
			}
			cur.ChargeRows(ctx, blo*t.K, (bhi-blo)*t.K)
			if n.Pred == nil {
				bb.appendSrcRange(srcCols, int(blo), int(bhi))
				continue
			}
			for r := blo; r < bhi; r++ {
				row := t.Row(r, buf)
				if !n.Pred(row) {
					continue
				}
				dst, i := bb.room()
				for c, tc := range n.Proj {
					dst.Cols[c][i] = row[tc]
				}
			}
		}
		cur.Close(ctx)
		if parts > 1 {
			ctx.CPU(float64(int64(bb.rows)*n.Weight) * ctx.Cost.ExchangeIPR)
		}
		results[part] = bb.finish()
	})
	return flattenBatches(results)
}

// vecColScan decodes each needed column segment in batch-sized row
// ranges (colstore.DecodeRange) into reused scratch vectors; the
// predicate-free path bulk-copies decoded ranges into output batches.
func vecColScan(p *sim.Proc, env *Env, n *Node) []*Batch {
	csi := n.CSI
	ix := csi.Ix
	segs := ix.Segments()
	size := batchSize(env)
	needCols := map[int]bool{}
	for _, c := range n.Proj {
		needCols[c] = true
	}
	for _, c := range n.PredCols {
		needCols[c] = true
	}
	var colPoss []int
	colOfPos := map[int]int{}
	for tc := range needCols {
		cp := ix.ColPos(tc)
		if cp < 0 {
			panic(fmt.Sprintf("exec: column %d not in columnstore %s", tc, ix.File.Name))
		}
		colPoss = append(colPoss, cp)
		colOfPos[tc] = cp
	}
	sort.Ints(colPoss)
	// COUNT(*)-shaped plans project no columns and filter on none;
	// segment row counts then come from the index's first column.
	countPos := 0
	if len(colPoss) > 0 {
		countPos = colPoss[0]
	}

	parts := segs
	if parts == 0 {
		parts = 1
	}
	results := make([][]*Batch, parts+1)
	env.parallel(p, parts, func(ctx *access.Ctx, seg int) {
		if segs == 0 {
			return
		}
		nrows := ix.Segment(countPos, seg).N
		curs := make([]*access.SegScanCursor, len(colPoss))
		for i, cp := range colPoss {
			curs[i] = csi.NewSegScanCursor(cp, seg, n.NPred)
		}
		dec := make(map[int][]int64, len(colPoss)) // decoded vectors by column position
		bb := newBatchBuilder(len(n.Proj), size)
		src := make([][]int64, len(n.Proj))
		var row Row
		if n.Pred != nil {
			row = make(Row, ix.Table.NCols())
		}
		for lo := 0; lo < nrows; lo += size {
			if env.expired(ctx.P.Now()) {
				break
			}
			hi := lo + size
			if hi > nrows {
				hi = nrows
			}
			for i, cp := range colPoss {
				curs[i].ChargeRows(ctx, lo, hi)
				dec[cp] = ix.Segment(cp, seg).DecodeRange(lo, hi, dec[cp])
			}
			if n.Pred == nil {
				for i, tc := range n.Proj {
					src[i] = dec[colOfPos[tc]]
				}
				bb.appendSrcRange(src, 0, hi-lo)
				continue
			}
			for r := 0; r < hi-lo; r++ {
				// Materialize only the needed columns into a sparse row.
				for tc, cp := range colOfPos {
					row[tc] = dec[cp][r]
				}
				if !n.Pred(row) {
					continue
				}
				dst, i := bb.room()
				for c, tc := range n.Proj {
					dst.Cols[c][i] = dec[colOfPos[tc]][r]
				}
			}
		}
		for _, cur := range curs {
			cur.Close(ctx)
		}
		if parts > 1 {
			ctx.CPU(float64(int64(bb.rows)*n.Weight) * ctx.Cost.ExchangeIPR)
		}
		results[seg] = bb.finish()
	})
	// Delta store scan (trickle inserts not yet compressed), serial.
	if ix.DeltaNominalRows() > 0 {
		ctx := env.newCtx(p, env.home())
		csi.ChargeDeltaScan(ctx)
		ctx.Flush()
		bb := newBatchBuilder(len(n.Proj), size)
		row := make(Row, ix.Table.NCols())
		for _, dr := range ix.DeltaRows() {
			for i := range row {
				row[i] = 0
			}
			for pos, tc := range ix.Cols {
				if pos < len(dr) {
					row[tc] = dr[pos]
				}
			}
			if n.Pred != nil && !n.Pred(row) {
				continue
			}
			dst, i := bb.room()
			for c, tc := range n.Proj {
				dst.Cols[c][i] = row[tc]
			}
		}
		results[parts] = bb.finish()
	}
	return flattenBatches(results)
}

// vecFilter attaches a selection vector instead of copying survivors.
func vecFilter(p *sim.Proc, env *Env, n *Node, in []*Batch) []*Batch {
	ctx := env.newCtx(p, env.home())
	out := make([]*Batch, 0, len(in))
	var scratch Row
	for _, b := range in {
		ctx.CPU(float64(int64(b.Rows())*n.Weight) * ctx.Cost.PredIPR * float64(maxInt(n.NPred, 1)))
		if n.Pred == nil {
			out = append(out, b)
			continue
		}
		if scratch == nil {
			scratch = make(Row, b.Width())
		}
		var sel []int32
		for i := 0; i < b.Rows(); i++ {
			ph := b.phys(i)
			for c := range b.Cols {
				scratch[c] = b.Cols[c][ph]
			}
			if n.Pred(scratch) {
				sel = append(sel, ph)
			}
		}
		switch {
		case len(sel) == 0:
			// Fully filtered: drop the batch.
		case len(sel) == b.Rows() && b.Sel == nil:
			out = append(out, b)
		default:
			out = append(out, &Batch{Cols: b.Cols, Sel: sel, n: b.n})
		}
	}
	ctx.Flush()
	return out
}

// vecProject evaluates scalar expressions into fresh output batches.
func vecProject(p *sim.Proc, env *Env, n *Node, in []*Batch) []*Batch {
	ctx := env.newCtx(p, env.home())
	bb := newBatchBuilder(len(n.Exprs), batchSize(env))
	var scratch Row
	for _, b := range in {
		ctx.CPU(float64(int64(b.Rows())*n.Weight) * float64(len(n.Exprs)) * 2)
		if scratch == nil && b.Width() > 0 {
			scratch = make(Row, b.Width())
		}
		for i := 0; i < b.Rows(); i++ {
			ph := b.phys(i)
			for c := range b.Cols {
				scratch[c] = b.Cols[c][ph]
			}
			dst, di := bb.room()
			for j, e := range n.Exprs {
				dst.Cols[j][di] = e(scratch)
			}
		}
	}
	ctx.Flush()
	return bb.finish()
}

// vecHashAgg is the batch twin of runHashAgg: partition-local aggTables
// fed straight from column vectors, merged and emitted in sorted group
// order by the shared finalizer.
func vecHashAgg(p *sim.Proc, env *Env, n *Node, st *QueryStats, in []*Batch) []*Batch {
	parts := stageDop(env, n)
	size := batchSize(env)
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}

	inParts := partitionBatches(in, n.Groups, parts, size)
	partials := make([]*aggTable, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		at := newAggTable(n.Groups, n.Aggs)
		var nrows int64
		for _, b := range inParts[part] {
			for i := 0; i < b.Rows(); i++ {
				ph := b.phys(i)
				accumulateCols(at.entCols(b.Cols, ph).state, n.Aggs, b.Cols, ph, weight)
			}
			nrows += int64(b.Rows())
		}
		w := nrows * weight
		ctx.CPU(float64(w) * ctx.Cost.AggIPR)
		groupBytes := int64(at.len()) * tupleBytes(env, n.Left)
		if groupBytes > 0 {
			region := env.M.ReserveRegion(groupBytes)
			ctx.TouchRandom(region, groupBytes, w, true, 4)
		}
		partials[part] = at
	})

	var totalGroups int64
	for _, at := range partials {
		if at != nil {
			totalGroups += int64(at.len())
		}
	}
	needBytes := totalGroups * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		spill(p, env, n, st, overflow, 0)
	}

	ctx := env.newCtx(p, env.home())
	out := finalizeAggTables(partials, n.Groups, n.Aggs)
	ctx.CPU(float64(totalGroups) * ctx.Cost.AggIPR)
	ctx.Flush()
	return rowsToBatches(out, size)
}

// vecJoinTable is one partition's hash table over columnar build rows.
type vecJoinTable struct {
	cols    [][]int64
	buckets map[uint64][]int32
	rows    int32
}

// keysEqualColsAt compares key columns of two columnar rows.
func keysEqualColsAt(acols [][]int64, ak []int, ai int32, bcols [][]int64, bk []int, bi int32) bool {
	for i := range ak {
		if acols[ak[i]][ai] != bcols[bk[i]][bi] {
			return false
		}
	}
	return true
}

// vecHashJoin is the batch twin of runHashJoin: the build side stays
// columnar in the hash table; inner matches are gathered column-wise
// into probe++build output batches.
func vecHashJoin(p *sim.Proc, env *Env, n *Node, st *QueryStats, build, probe []*Batch) []*Batch {
	size := batchSize(env)
	rowBytes := tupleBytes(env, n.Left)
	needBytes := int64(batchRowCount(build)) * n.Left.Weight * rowBytes
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		probeBytes := int64(batchRowCount(probe)) * n.Right.Weight * tupleBytes(env, n.Right)
		spill(p, env, n, st, overflow, probeSpillShare(overflow, needBytes, probeBytes))
	}

	region := env.M.ReserveRegion(needBytes + 1)
	parts := stageDop(env, n)
	buildW := batchWidth(build)
	tables := make([]*vecJoinTable, parts)
	buildParts := partitionBatches(build, n.BuildKeys, parts, size)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		jt := &vecJoinTable{cols: make([][]int64, buildW), buckets: make(map[uint64][]int32)}
		var nrows int64
		for _, b := range buildParts[part] {
			for i := 0; i < b.Rows(); i++ {
				ph := b.phys(i)
				h := hashCols(b.Cols, n.BuildKeys, ph)
				jt.buckets[h] = append(jt.buckets[h], jt.rows)
				for c := range jt.cols {
					jt.cols[c] = append(jt.cols[c], b.Cols[c][ph])
				}
				jt.rows++
			}
			nrows += int64(b.Rows())
		}
		w := nrows * n.Left.Weight
		ctx.CPU(float64(w) * ctx.Cost.HashBuildIPR)
		share := needBytes / int64(parts)
		if share < 1 {
			share = 1
		}
		ctx.TouchRandom(region+uint64(part)*uint64(share), share, w, true, 4)
		tables[part] = jt
	})

	probeW := batchWidth(probe)
	outW := probeW
	if n.JoinType == InnerJoin {
		outW = probeW + buildW
	}
	probeParts := partitionBatches(probe, n.ProbeKeys, parts, size)
	results := make([][]*Batch, parts)
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		jt := tables[part]
		if jt == nil {
			return // build stage was cut short by the deadline
		}
		var nrows int64
		for _, b := range probeParts[part] {
			nrows += int64(b.Rows())
		}
		w := nrows * n.Right.Weight
		ctx.CPU(float64(w) * ctx.Cost.HashProbeIPR)
		share := needBytes / int64(parts)
		if share < 1 {
			share = 1
		}
		ctx.TouchRandom(region+uint64(part)*uint64(share), share, w, false, 4)
		bb := newBatchBuilder(outW, size)
		for _, b := range probeParts[part] {
			for i := 0; i < b.Rows(); i++ {
				ph := b.phys(i)
				h := hashCols(b.Cols, n.ProbeKeys, ph)
				matched := false
				for _, bi := range jt.buckets[h] {
					if !keysEqualColsAt(jt.cols, n.BuildKeys, bi, b.Cols, n.ProbeKeys, ph) {
						continue
					}
					matched = true
					if n.JoinType == InnerJoin {
						dst, di := bb.room()
						for c := 0; c < probeW; c++ {
							dst.Cols[c][di] = b.Cols[c][ph]
						}
						for c := 0; c < buildW; c++ {
							dst.Cols[probeW+c][di] = jt.cols[c][bi]
						}
					} else {
						break
					}
				}
				switch n.JoinType {
				case SemiJoin:
					if matched {
						bb.appendBatchRow(b, ph)
					}
				case AntiJoin:
					if !matched {
						bb.appendBatchRow(b, ph)
					}
				}
			}
		}
		results[part] = bb.finish()
	})
	return flattenBatches(results)
}

// vecSort sorts a permutation over the compacted input instead of
// swapping rows: chunks of the permutation are stable-sorted in
// parallel, then k-way merged with the shared chunk-index tie-break, so
// the output order matches the row engine for any DOP.
func vecSort(p *sim.Proc, env *Env, n *Node, st *QueryStats, in []*Batch) []*Batch {
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	cs := concatBatches(in)
	total := cs.n
	needBytes := int64(total) * weight * tupleBytes(env, n.Left)
	overflow := env.Grant.Reserve(needBytes)
	defer env.Grant.Release(needBytes - overflow)
	if overflow > 0 {
		spill(p, env, n, st, overflow, 0)
	}

	parts := stageDop(env, n)
	chunk := (total + parts - 1) / parts
	perm := make([]int32, total)
	for i := range perm {
		perm[i] = int32(i)
	}
	permChunks := make([][]int32, parts)
	for i := 0; i < parts; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		permChunks[i] = perm[lo:hi]
	}
	env.parallel(p, parts, func(ctx *access.Ctx, part int) {
		seg := permChunks[part]
		if len(seg) == 0 {
			return
		}
		sort.SliceStable(seg, func(i, j int) bool { return lessKeysAt(cs.cols, n.Keys, seg[i], seg[j]) })
		w := float64(int64(len(seg)) * weight)
		ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(w+2))
		region := env.M.ReserveRegion(needBytes/int64(parts) + 1)
		ctx.TouchSeq(region, needBytes/int64(parts), true, 8)
	})
	merged := kwayMerge(permChunks, func(a, b int32) bool { return lessKeysAt(cs.cols, n.Keys, a, b) })
	ctx := env.newCtx(p, env.home())
	if parts > 1 {
		ctx.CPU(float64(int64(len(merged))*weight) * ctx.Cost.SortIPR)
	}
	ctx.Flush()
	return cs.gather(merged, batchSize(env))
}

// vecTop selects the limit smallest permutation indices with the shared
// bounded heap.
func vecTop(p *sim.Proc, env *Env, n *Node, in []*Batch) []*Batch {
	weight := n.Left.Weight
	if weight < 1 {
		weight = 1
	}
	ctx := env.newCtx(p, env.home())
	cs := concatBatches(in)
	limit := n.Limit
	if limit <= 0 || limit > cs.n {
		limit = cs.n
	}
	idx := topKIdx(cs.n, limit, func(i, j int32) bool { return lessKeysAt(cs.cols, n.Keys, i, j) })
	w := float64(int64(cs.n) * weight)
	ctx.CPU(w * ctx.Cost.SortIPR * math.Log2(float64(limit)+2))
	ctx.Flush()
	return cs.gather(idx, batchSize(env))
}
