package exec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/colstore"
	"repro/internal/hw"
	"repro/internal/iodev"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
)

type testEnv struct {
	sm  *sim.Sim
	env *Env
	ctr *metrics.Counters
}

func newTestEnv(cores int) *testEnv {
	sm := sim.New(42)
	ctr := &metrics.Counters{}
	m := hw.New(sm, hw.PaperSpec(), ctr)
	dev := iodev.New(iodev.PaperSSD(), ctr)
	bp := buffer.New(sm, dev, ctr, 1<<30)
	ids := make([]int, cores)
	for i := range ids {
		ids[i] = i
	}
	return &testEnv{
		sm:  sm,
		ctr: ctr,
		env: &Env{
			Sim: sm, M: m, BP: bp, Dev: dev, Ctr: ctr,
			Cost: access.DefaultCost(), RNG: sim.NewRNG(7),
			Cores: ids, Dop: cores,
			TempRegion: m.ReserveRegion(1 << 30),
		},
	}
}

// ordersTable: (okey, ckey, amount) with K=5; 200 actual rows.
func (te *testEnv) ordersTable() *storage.Table {
	sch := storage.NewSchema("orders",
		storage.Column{Name: "okey", Type: storage.TInt, Width: 8},
		storage.Column{Name: "ckey", Type: storage.TInt, Width: 8},
		storage.Column{Name: "amount", Type: storage.TInt, Width: 8},
	)
	t := storage.NewTable(1, sch, 5)
	for i := int64(0); i < 200; i++ {
		t.AppendLoad([]int64{i, i % 20, (i * 7) % 100})
	}
	t.Data.Region = te.env.M.ReserveRegion(t.NominalDataBytes())
	te.env.BP.Register(t.Data)
	return t
}

// custTable: (ckey, nation) with K=1; 20 rows.
func (te *testEnv) custTable() *storage.Table {
	sch := storage.NewSchema("customer",
		storage.Column{Name: "ckey", Type: storage.TInt, Width: 8},
		storage.Column{Name: "nation", Type: storage.TInt, Width: 8},
	)
	t := storage.NewTable(2, sch, 1)
	for i := int64(0); i < 20; i++ {
		t.AppendLoad([]int64{i, i % 5})
	}
	t.Data.Region = te.env.M.ReserveRegion(t.NominalDataBytes())
	te.env.BP.Register(t.Data)
	return t
}

func (te *testEnv) run(root *Node) ([]Row, QueryStats) {
	var rows []Row
	var st QueryStats
	te.sm.Spawn("q", func(p *sim.Proc) {
		rows, st = Run(p, te.env, root)
	})
	te.sm.Run(te.sm.Now() + sim.Time(3600*sim.Second))
	return rows, st
}

func scanNode(t *storage.Table, proj []int, pred Pred, npred int, par bool) *Node {
	return &Node{
		Kind: KRowScan, Heap: access.Heap{T: t}, Proj: proj,
		Pred: pred, NPred: npred, Weight: t.K, Parallel: par, Name: t.Name,
	}
}

func TestRowScanFilterProject(t *testing.T) {
	te := newTestEnv(1)
	tab := te.ordersTable()
	n := scanNode(tab, []int{0, 2}, func(r Row) bool { return r[1] == 3 }, 1, false)
	rows, _ := te.run(n)
	if len(rows) != 10 { // i%20==3 for 200 rows
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if len(r) != 2 || r[0]%20 != 3 {
			t.Fatalf("bad row %v", r)
		}
	}
	if te.ctr.Instructions == 0 || te.ctr.SSDReadBytes == 0 {
		t.Fatal("scan charged no work")
	}
}

func TestParallelScanSameResult(t *testing.T) {
	serial := func() []Row {
		te := newTestEnv(1)
		rows, _ := te.run(scanNode(te.ordersTable(), []int{0}, nil, 0, false))
		return rows
	}()
	par := func() []Row {
		te := newTestEnv(8)
		rows, _ := te.run(scanNode(te.ordersTable(), []int{0}, nil, 0, true))
		return rows
	}()
	sortRows(serial)
	sortRows(par)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel scan differs: %d vs %d rows", len(serial), len(par))
	}
}

func TestHashJoinMatchesReference(t *testing.T) {
	for _, dop := range []int{1, 4} {
		te := newTestEnv(dop)
		orders := te.ordersTable()
		cust := te.custTable()
		// build = customer (ckey, nation); probe = orders (okey, ckey, amount)
		join := &Node{
			Kind:      KHashJoin,
			Left:      scanNode(cust, []int{0, 1}, nil, 0, dop > 1),
			Right:     scanNode(orders, []int{0, 1, 2}, nil, 0, dop > 1),
			BuildKeys: []int{0}, ProbeKeys: []int{1},
			JoinType: InnerJoin, Weight: orders.K, Parallel: dop > 1,
		}
		rows, _ := te.run(join)
		if len(rows) != 200 {
			t.Fatalf("dop %d: join rows = %d, want 200", dop, len(rows))
		}
		for _, r := range rows {
			// layout: probe(okey,ckey,amount) ++ build(ckey,nation)
			if r[1] != r[3] {
				t.Fatalf("join key mismatch: %v", r)
			}
			if r[4] != r[3]%5 {
				t.Fatalf("wrong nation: %v", r)
			}
		}
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	te := newTestEnv(2)
	orders := te.ordersTable()
	cust := te.custTable()
	// Customers 0..9 only on build side.
	build := scanNode(cust, []int{0}, func(r Row) bool { return r[0] < 10 }, 1, false)
	probe := scanNode(orders, []int{0, 1}, nil, 0, false)
	semi := &Node{Kind: KHashJoin, Left: build, Right: probe,
		BuildKeys: []int{0}, ProbeKeys: []int{1}, JoinType: SemiJoin, Weight: orders.K}
	rows, _ := te.run(semi)
	if len(rows) != 100 {
		t.Fatalf("semi join rows = %d, want 100", len(rows))
	}
	te2 := newTestEnv(2)
	orders2 := te2.ordersTable()
	cust2 := te2.custTable()
	anti := &Node{Kind: KHashJoin,
		Left:      scanNode(cust2, []int{0}, func(r Row) bool { return r[0] < 10 }, 1, false),
		Right:     scanNode(orders2, []int{0, 1}, nil, 0, false),
		BuildKeys: []int{0}, ProbeKeys: []int{1}, JoinType: AntiJoin, Weight: orders2.K}
	rows2, _ := te2.run(anti)
	if len(rows2) != 100 {
		t.Fatalf("anti join rows = %d, want 100", len(rows2))
	}
}

func TestNLIndexJoinMatchesHashJoin(t *testing.T) {
	te := newTestEnv(4)
	orders := te.ordersTable()
	cust := te.custTable()
	ix := access.NewBTIndex(100, "pk_customer", cust, []int{0}, true, true)
	ix.File.Region = te.env.M.ReserveRegion(ix.File.Bytes())
	te.env.BP.Register(ix.File)
	nl := &Node{
		Kind:  KNLIndexJoin,
		Left:  scanNode(orders, []int{0, 1, 2}, nil, 0, true),
		Index: ix, OuterKeys: []int{1}, InnerProj: []int{0, 1},
		JoinType: InnerJoin, Weight: orders.K, Parallel: true,
	}
	rows, _ := te.run(nl)
	if len(rows) != 200 {
		t.Fatalf("NL join rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[1] != r[3] || r[4] != r[3]%5 {
			t.Fatalf("bad NL row %v", r)
		}
	}
}

func TestHashAggMatchesReference(t *testing.T) {
	for _, dop := range []int{1, 4} {
		te := newTestEnv(dop)
		orders := te.ordersTable()
		agg := &Node{
			Kind:   KHashAgg,
			Left:   scanNode(orders, []int{1, 2}, nil, 0, dop > 1),
			Groups: []int{0}, // ckey
			Aggs: []AggSpec{
				{Kind: AggSum, Col: 1},
				{Kind: AggCount},
				{Kind: AggMin, Col: 1},
				{Kind: AggMax, Col: 1},
			},
			Weight: orders.K, Parallel: dop > 1,
		}
		rows, _ := te.run(agg)
		if len(rows) != 20 {
			t.Fatalf("dop %d: groups = %d, want 20", dop, len(rows))
		}
		// Reference for group 3: orders with i%20==3, amount=(i*7)%100.
		var wantSum, wantCnt, wantMin, wantMax int64
		wantMin = 1 << 62
		for i := int64(3); i < 200; i += 20 {
			a := (i * 7) % 100
			wantSum += a * 5 // weight K=5
			wantCnt += 5
			if a < wantMin {
				wantMin = a
			}
			if a > wantMax {
				wantMax = a
			}
		}
		r := rows[3] // sorted by group key
		if r[0] != 3 || r[1] != wantSum || r[2] != wantCnt || r[3] != wantMin || r[4] != wantMax {
			t.Fatalf("dop %d: group 3 = %v, want [3 %d %d %d %d]", dop, r, wantSum, wantCnt, wantMin, wantMax)
		}
	}
}

func TestScalarAggOnEmptyInput(t *testing.T) {
	te := newTestEnv(1)
	orders := te.ordersTable()
	agg := &Node{
		Kind:   KHashAgg,
		Left:   scanNode(orders, []int{2}, func(r Row) bool { return false }, 1, false),
		Groups: nil,
		Aggs:   []AggSpec{{Kind: AggSum, Col: 0}, {Kind: AggCount}},
		Weight: orders.K,
	}
	rows, _ := te.run(agg)
	if len(rows) != 1 || rows[0][0] != 0 || rows[0][1] != 0 {
		t.Fatalf("scalar agg on empty = %v", rows)
	}
}

func TestSortAndTop(t *testing.T) {
	for _, dop := range []int{1, 4} {
		te := newTestEnv(dop)
		orders := te.ordersTable()
		srt := &Node{
			Kind:   KSort,
			Left:   scanNode(orders, []int{2, 0}, nil, 0, dop > 1),
			Keys:   []SortKey{{Col: 0, Desc: true}, {Col: 1}},
			Weight: orders.K, Parallel: dop > 1,
		}
		rows, _ := te.run(srt)
		if len(rows) != 200 {
			t.Fatalf("sort rows = %d", len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if rows[i-1][0] < rows[i][0] {
				t.Fatalf("dop %d: sort order violated at %d", dop, i)
			}
			if rows[i-1][0] == rows[i][0] && rows[i-1][1] > rows[i][1] {
				t.Fatalf("dop %d: tiebreak violated at %d", dop, i)
			}
		}
	}
	te := newTestEnv(2)
	orders := te.ordersTable()
	top := &Node{
		Kind:  KTop,
		Left:  scanNode(orders, []int{2, 0}, nil, 0, false),
		Keys:  []SortKey{{Col: 0, Desc: true}},
		Limit: 5, Weight: orders.K,
	}
	rows, _ := te.run(top)
	if len(rows) != 5 || rows[0][0] < rows[4][0] {
		t.Fatalf("top rows = %v", rows)
	}
}

func TestColScanMatchesRowScan(t *testing.T) {
	te := newTestEnv(4)
	orders := te.ordersTable()
	csi := access.NewCSI(colstore.Build(200, orders, []int{0, 1, 2}))
	csi.Ix.File.Region = te.env.M.ReserveRegion(csi.Ix.File.Bytes() + 1<<20)
	te.env.BP.Register(csi.Ix.File)
	n := &Node{
		Kind: KColScan, CSI: csi, Proj: []int{0, 2},
		Pred: func(r Row) bool { return r[1] == 3 }, NPred: 1, PredCols: []int{1},
		Weight: orders.K, Parallel: true, Name: "orders_csi",
	}
	rows, _ := te.run(n)
	if len(rows) != 10 {
		t.Fatalf("colscan rows = %d, want 10", len(rows))
	}
	sortRows(rows)
	for _, r := range rows {
		if r[0]%20 != 3 || r[1] != (r[0]*7)%100 {
			t.Fatalf("bad colscan row %v", r)
		}
	}
}

func TestHomeRespectsShrunkCpuset(t *testing.T) {
	// A session Home assigned before the cpuset shrank (AllowN) must not
	// be used once it is outside the allowed set — serial stages would
	// run on disallowed cores and distort core-allocation experiments.
	e := &Env{Cores: []int{0, 1, 2, 3}, Home: 6}
	if got := e.home(); got != 0 {
		t.Fatalf("home() = %d for Home=6 outside cpuset %v, want 0", got, e.Cores)
	}
	e.Home = 2
	if got := e.home(); got != 2 {
		t.Fatalf("home() = %d for Home=2 inside cpuset, want 2", got)
	}
	e = &Env{Cores: []int{4, 5}, Home: 0}
	if got := e.home(); got != 4 {
		t.Fatalf("home() = %d for Home=0 with cpuset %v, want 4", got, e.Cores)
	}
}

func TestColScanCountStarShape(t *testing.T) {
	// COUNT(*)-shaped plans project no columns and filter on none; the
	// scan must still report every row (via the index's first column)
	// instead of panicking on an empty column set.
	te := newTestEnv(4)
	orders := te.ordersTable()
	csi := access.NewCSI(colstore.Build(200, orders, []int{0, 1, 2}))
	csi.Ix.File.Region = te.env.M.ReserveRegion(csi.Ix.File.Bytes() + 1<<20)
	te.env.BP.Register(csi.Ix.File)
	n := &Node{
		Kind: KColScan, CSI: csi, Proj: nil,
		Weight: orders.K, Parallel: true, Name: "orders_csi",
	}
	rows, _ := te.run(n)
	if len(rows) != 200 {
		t.Fatalf("count(*) colscan rows = %d, want 200", len(rows))
	}
	for _, r := range rows {
		if len(r) != 0 {
			t.Fatalf("projected row not empty: %v", r)
		}
	}
}

func TestGrantOverflowSpills(t *testing.T) {
	te := newTestEnv(2)
	orders := te.ordersTable()
	cust := te.custTable()
	te.env.Grant = &Grant{Bytes: 64} // absurdly small grant
	join := &Node{
		Kind:      KHashJoin,
		Left:      scanNode(cust, []int{0, 1}, nil, 0, false),
		Right:     scanNode(orders, []int{0, 1, 2}, nil, 0, false),
		BuildKeys: []int{0}, ProbeKeys: []int{1}, JoinType: InnerJoin, Weight: orders.K,
	}
	rows, st := te.run(join)
	if len(rows) != 200 {
		t.Fatalf("spilled join rows = %d", len(rows))
	}
	if st.Spills == 0 || te.ctr.Spills == 0 || st.SpillBytes == 0 {
		t.Fatalf("expected spills, got %+v", st)
	}
	if te.ctr.SSDWriteBytes == 0 {
		t.Fatal("spill wrote nothing to device")
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	// Needs enough nominal work for DOP to amortize worker startup —
	// tiny inputs correctly run *slower* in parallel (the paper's Q20
	// effect at small scale factors).
	bigTable := func(te *testEnv) *storage.Table {
		sch := storage.NewSchema("big",
			storage.Column{Name: "okey", Type: storage.TInt, Width: 8},
			storage.Column{Name: "ckey", Type: storage.TInt, Width: 8},
			storage.Column{Name: "amount", Type: storage.TInt, Width: 8},
		)
		tb := storage.NewTable(9, sch, 100)
		for i := int64(0); i < 20000; i++ {
			tb.AppendLoad([]int64{i, i % 20, (i * 7) % 100})
		}
		tb.Data.Region = te.env.M.ReserveRegion(tb.NominalDataBytes())
		te.env.BP.Register(tb.Data)
		return tb
	}
	elapsed := func(dop int) float64 {
		te := newTestEnv(dop)
		orders := bigTable(te)
		agg := &Node{
			Kind:   KHashAgg,
			Left:   scanNode(orders, []int{1, 2}, nil, 0, dop > 1),
			Groups: []int{0},
			Aggs:   []AggSpec{{Kind: AggSum, Col: 1}},
			Weight: orders.K, Parallel: dop > 1,
		}
		var end sim.Time
		te.sm.Spawn("q", func(p *sim.Proc) {
			Run(p, te.env, agg)
			end = p.Now()
		})
		te.sm.Run(sim.Time(3600 * sim.Second))
		return end.Seconds()
	}
	s1 := elapsed(1)
	s8 := elapsed(8)
	if s8 >= s1 {
		t.Fatalf("dop 8 (%.6fs) not faster than serial (%.6fs)", s8, s1)
	}
}

func TestPlanRenderAndShape(t *testing.T) {
	te := newTestEnv(2)
	orders := te.ordersTable()
	cust := te.custTable()
	join := &Node{
		Kind:      KHashJoin,
		Left:      scanNode(cust, []int{0, 1}, nil, 0, false),
		Right:     scanNode(orders, []int{0, 1}, nil, 0, true),
		BuildKeys: []int{0}, ProbeKeys: []int{1}, JoinType: InnerJoin,
		Weight: orders.K, Parallel: true, Name: "join",
	}
	if got := join.Shape(); got != "pHJ(Scan,pScan)" {
		t.Fatalf("shape = %q", got)
	}
	r := join.Render()
	if len(r) == 0 || r[0] == ' ' {
		t.Fatalf("render = %q", r)
	}
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for c := range a {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return false
	})
}

func TestHashJoinMatchesBruteForceProperty(t *testing.T) {
	g := sim.NewRNG(21)
	f := func(seed uint16) bool {
		te := newTestEnv(2)
		// Small random tables registered with the buffer pool.
		mk := func(id int, rows int, keyMod int64) *storage.Table {
			sch := storage.NewSchema("t"+string(rune('a'+id)),
				storage.Column{Name: "k", Type: storage.TInt, Width: 8},
				storage.Column{Name: "p", Type: storage.TInt, Width: 8},
			)
			tb := storage.NewTable(10+id, sch, 3)
			for i := 0; i < rows; i++ {
				tb.AppendLoad([]int64{g.Int64n(keyMod), int64(i)})
			}
			tb.Data.Region = te.env.M.ReserveRegion(tb.NominalDataBytes() + 1<<20)
			te.env.BP.Register(tb.Data)
			return tb
		}
		l := mk(0, int(seed%40)+5, 12)
		r := mk(1, int(seed%25)+5, 12)
		join := &Node{
			Kind:      KHashJoin,
			Left:      scanNode(l, []int{0, 1}, nil, 0, false),
			Right:     scanNode(r, []int{0, 1}, nil, 0, false),
			BuildKeys: []int{0}, ProbeKeys: []int{0},
			JoinType: InnerJoin, Weight: 3,
		}
		rows, _ := te.run(join)
		// Brute force count.
		want := 0
		for i := int64(0); i < l.ActualRows(); i++ {
			for j := int64(0); j < r.ActualRows(); j++ {
				if l.Get(i, 0) == r.Get(j, 0) {
					want++
				}
			}
		}
		return len(rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSemiPlusAntiPartitionProbe(t *testing.T) {
	// For any key sets, semi(probe) + anti(probe) == probe rows.
	mk := func(jt JoinType) int {
		te := newTestEnv(2)
		orders := te.ordersTable()
		cust := te.custTable()
		n := &Node{
			Kind:      KHashJoin,
			Left:      scanNode(cust, []int{0}, func(r Row) bool { return r[0]%3 == 0 }, 1, false),
			Right:     scanNode(orders, []int{0, 1}, nil, 0, false),
			BuildKeys: []int{0}, ProbeKeys: []int{1},
			JoinType: jt, Weight: orders.K,
		}
		rows, _ := te.run(n)
		return len(rows)
	}
	semi := mk(SemiJoin)
	anti := mk(AntiJoin)
	if semi+anti != 200 {
		t.Fatalf("semi %d + anti %d != 200 (want semi=70)", semi, anti)
	}
}
