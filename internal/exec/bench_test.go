package exec

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// benchTable builds an (okey, ckey, amount) table with `rows` actual
// rows at K=5, large enough that executor per-row work dominates setup.
func benchTable(te *testEnv, rows int64) *storage.Table {
	sch := storage.NewSchema("bench_orders",
		storage.Column{Name: "okey", Type: storage.TInt, Width: 8},
		storage.Column{Name: "ckey", Type: storage.TInt, Width: 8},
		storage.Column{Name: "amount", Type: storage.TInt, Width: 8},
	)
	t := storage.NewTable(1, sch, 5)
	for i := int64(0); i < rows; i++ {
		t.AppendLoad([]int64{i, i % 97, (i * 13) % 1000})
	}
	t.Data.Region = te.env.M.ReserveRegion(t.NominalDataBytes())
	te.env.BP.Register(t.Data)
	return t
}

// benchPlan is the headline scan→filter→hash-agg shape: the pattern the
// vectorized engine is built for.
func benchPlan(tab *storage.Table) *Node {
	return &Node{
		Kind: KHashAgg,
		Left: scanNode(tab, []int{1, 2}, func(r Row) bool { return r[1] < 400 }, 1, true),
		Groups: []int{0},
		Aggs:   []AggSpec{{Kind: AggSum, Col: 1}, {Kind: AggCount}},
		Weight: tab.K, Parallel: true,
	}
}

const benchRows = 20_000

// runBench executes the plan once and returns the simulated elapsed
// time, which is deterministic across runs and machines.
func runBench(te *testEnv, root *Node) (simNs float64, outRows int) {
	var rows []Row
	var done, start = te.sm.Now(), te.sm.Now()
	te.sm.Spawn("q", func(p *sim.Proc) {
		rows, _ = Run(p, te.env, root)
		done = te.sm.Now()
	})
	te.sm.Run(start + sim.Time(3600*sim.Second))
	return float64(done - start), len(rows)
}

// BenchmarkExecEngines compares row-at-a-time and batch execution on the
// same plan. ns/op and B/op are wall-clock (machine-dependent); sim_ms
// is the simulated query latency and is fully deterministic.
func BenchmarkExecEngines(b *testing.B) {
	for _, eng := range []struct {
		name string
		vec  bool
	}{{"row", false}, {"vec", true}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			var simMs float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				te := newTestEnv(4)
				te.env.Vectorized = eng.vec
				root := benchPlan(benchTable(te, benchRows))
				b.StartTimer()
				ns, n := runBench(te, root)
				if n == 0 {
					b.Fatal("no output rows")
				}
				simMs = ns / 1e6
			}
			b.ReportMetric(simMs, "sim_ms")
		})
	}
}

// BenchmarkVectorizedSpeedup reports the headline trajectory metrics:
// alloc_reduction_x (deterministic, gated in CI) and vec_speedup_wall
// (wall-clock, informational only).
func BenchmarkVectorizedSpeedup(b *testing.B) {
	measure := func(vec bool) (wallNs float64, allocs uint64) {
		te := newTestEnv(4)
		te.env.Vectorized = vec
		root := benchPlan(benchTable(te, benchRows))
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		if _, n := runBench(te, root); n == 0 {
			b.Fatal("no output rows")
		}
		wallNs = float64(time.Since(t0))
		runtime.ReadMemStats(&after)
		return wallNs, after.Mallocs - before.Mallocs
	}
	var speedup, allocRatio float64
	for i := 0; i < b.N; i++ {
		rowWall, rowAllocs := measure(false)
		vecWall, vecAllocs := measure(true)
		speedup = rowWall / vecWall
		allocRatio = float64(rowAllocs) / float64(vecAllocs)
	}
	b.ReportMetric(speedup, "vec_speedup_wall")
	b.ReportMetric(allocRatio, "alloc_reduction_x")
	b.ReportMetric(0, "ns/op") // the per-engine times are what matter
}
